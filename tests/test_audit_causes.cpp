// cluster::Audit unplaced-cause classification (§V.B / Fig. 9): one fixture
// per UnplacedCause plus the priority-inversion counter, each asserting the
// derived ViolationPercent() / AntiAffinityShare() figures exactly.
#include <gtest/gtest.h>

#include "cluster/audit.h"
#include "cluster/resources.h"
#include "cluster/state.h"
#include "cluster/topology.h"
#include "trace/workload.h"

namespace aladdin::cluster {
namespace {

// kResources: the cluster is physically full — no machine could host the
// straggler even if every policy were waived.
class UnplacedResourcesTest : public ::testing::Test {
 protected:
  UnplacedResourcesTest()
      : topo_(Topology::Uniform(2, ResourceVector::Cores(32, 64))) {
    filler_ = wl_.AddApplication("filler", 2, ResourceVector::Cores(32, 64));
    starved_ = wl_.AddApplication("starved", 1, ResourceVector::Cores(1, 1));
  }

  Topology topo_;
  trace::Workload wl_;
  ApplicationId filler_, starved_;
};

TEST_F(UnplacedResourcesTest, ClassifiedAsResources) {
  ClusterState state = wl_.MakeState(topo_);
  state.Deploy(wl_.application(filler_).containers[0], MachineId(0));
  state.Deploy(wl_.application(filler_).containers[1], MachineId(1));

  const AuditReport report = Audit(state);
  EXPECT_EQ(report.total_containers, 3u);
  EXPECT_EQ(report.placed, 2u);
  EXPECT_EQ(report.unplaced, 1u);
  EXPECT_EQ(report.unplaced_resources, 1u);
  EXPECT_EQ(report.unplaced_anti_affinity, 0u);
  EXPECT_EQ(report.unplaced_scheduler, 0u);
  EXPECT_EQ(report.colocation_violations, 0u);
  EXPECT_EQ(report.priority_inversions, 0u);
  // 1 violation (the unplaced container) out of 3 containers.
  EXPECT_DOUBLE_EQ(report.ViolationPercent(), 100.0 / 3.0);
  // starved has no anti-affinity rule, so no violation is AA-typed.
  EXPECT_DOUBLE_EQ(report.AntiAffinityShare(), 0.0);
}

// kAntiAffinity: resources abound, but every machine with room hosts a
// conflicting application — the blacklist, not capacity, starves the victim.
class UnplacedAntiAffinityTest : public ::testing::Test {
 protected:
  UnplacedAntiAffinityTest()
      : topo_(Topology::Uniform(2, ResourceVector::Cores(32, 64))) {
    blocker_ = wl_.AddApplication("blocker", 2, ResourceVector::Cores(1, 2));
    victim_ = wl_.AddApplication("victim", 1, ResourceVector::Cores(1, 2));
    wl_.AddAntiAffinity(blocker_, victim_);
  }

  Topology topo_;
  trace::Workload wl_;
  ApplicationId blocker_, victim_;
};

TEST_F(UnplacedAntiAffinityTest, ClassifiedAsAntiAffinity) {
  ClusterState state = wl_.MakeState(topo_);
  state.Deploy(wl_.application(blocker_).containers[0], MachineId(0));
  state.Deploy(wl_.application(blocker_).containers[1], MachineId(1));

  const AuditReport report = Audit(state);
  EXPECT_EQ(report.unplaced, 1u);
  EXPECT_EQ(report.unplaced_anti_affinity, 1u);
  EXPECT_EQ(report.unplaced_resources, 0u);
  EXPECT_EQ(report.unplaced_scheduler, 0u);
  EXPECT_EQ(report.unplaced_aa_constrained, 1u);
  EXPECT_DOUBLE_EQ(report.ViolationPercent(), 100.0 / 3.0);
  // The single violation is anti-affinity-typed.
  EXPECT_DOUBLE_EQ(report.AntiAffinityShare(), 100.0);
}

// kScheduler: a machine satisfying both resources and policy sits idle; the
// scheduler simply failed to use it.
class UnplacedSchedulerTest : public ::testing::Test {
 protected:
  UnplacedSchedulerTest()
      : topo_(Topology::Uniform(2, ResourceVector::Cores(32, 64))) {
    placed_ = wl_.AddApplication("placed", 1, ResourceVector::Cores(4, 8));
    missed_ = wl_.AddApplication("missed", 1, ResourceVector::Cores(4, 8));
  }

  Topology topo_;
  trace::Workload wl_;
  ApplicationId placed_, missed_;
};

TEST_F(UnplacedSchedulerTest, ClassifiedAsScheduler) {
  ClusterState state = wl_.MakeState(topo_);
  state.Deploy(wl_.application(placed_).containers[0], MachineId(0));

  const AuditReport report = Audit(state);
  EXPECT_EQ(report.unplaced, 1u);
  EXPECT_EQ(report.unplaced_scheduler, 1u);
  EXPECT_EQ(report.unplaced_resources, 0u);
  EXPECT_EQ(report.unplaced_anti_affinity, 0u);
  EXPECT_DOUBLE_EQ(report.ViolationPercent(), 50.0);
  EXPECT_DOUBLE_EQ(report.AntiAffinityShare(), 0.0);
}

TEST_F(UnplacedSchedulerTest, PolicyFeasibleMachineTrumpsBlacklist) {
  // One machine blacklisted, another fully feasible: the cause is still the
  // scheduler, because it could have satisfied every constraint.
  trace::Workload wl;
  const auto blocker = wl.AddApplication("b", 1, ResourceVector::Cores(1, 2));
  const auto victim = wl.AddApplication("v", 1, ResourceVector::Cores(1, 2));
  wl.AddAntiAffinity(blocker, victim);
  ClusterState state = wl.MakeState(topo_);
  state.Deploy(wl.application(blocker).containers[0], MachineId(0));

  const AuditReport report = Audit(state);
  EXPECT_EQ(report.unplaced, 1u);
  EXPECT_EQ(report.unplaced_scheduler, 1u);
  EXPECT_EQ(report.unplaced_anti_affinity, 0u);
  // The victim's application carries an AA rule, so the violation is
  // AA-typed for Fig. 9(e) even though the proximate cause is the scheduler.
  EXPECT_EQ(report.unplaced_aa_constrained, 1u);
  EXPECT_DOUBLE_EQ(report.ViolationPercent(), 50.0);
  EXPECT_DOUBLE_EQ(report.AntiAffinityShare(), 100.0);
}

// Priority inversion: a starved high-priority container while a strictly
// lower-priority one holds capacity it could have used.
class PriorityInversionTest : public ::testing::Test {
 protected:
  PriorityInversionTest()
      : topo_(Topology::Uniform(1, ResourceVector::Cores(32, 64))) {
    low_ = wl_.AddApplication("low", 1, ResourceVector::Cores(32, 64),
                              /*priority=*/0);
    high_ = wl_.AddApplication("high", 1, ResourceVector::Cores(32, 64),
                               /*priority=*/2);
  }

  Topology topo_;
  trace::Workload wl_;
  ApplicationId low_, high_;
};

TEST_F(PriorityInversionTest, CountsInversionAndCause) {
  ClusterState state = wl_.MakeState(topo_);
  state.Deploy(wl_.application(low_).containers[0], MachineId(0));

  const AuditReport report = Audit(state);
  EXPECT_EQ(report.unplaced, 1u);
  EXPECT_EQ(report.unplaced_resources, 1u);  // machine is physically full
  EXPECT_EQ(report.priority_inversions, 1u);
  EXPECT_DOUBLE_EQ(report.ViolationPercent(), 50.0);
  EXPECT_DOUBLE_EQ(report.AntiAffinityShare(), 0.0);
}

TEST_F(PriorityInversionTest, NoInversionWhenStarvedIsLowest) {
  // Flip the roles: the high-priority container is placed, the lowest-
  // priority one starves — capacity scarcity, not an inversion.
  ClusterState state = wl_.MakeState(topo_);
  state.Deploy(wl_.application(high_).containers[0], MachineId(0));

  const AuditReport report = Audit(state);
  EXPECT_EQ(report.unplaced, 1u);
  EXPECT_EQ(report.priority_inversions, 0u);
  EXPECT_DOUBLE_EQ(report.ViolationPercent(), 50.0);
}

// Mixed scene touching every counter at once: the percentages must still be
// exact rational arithmetic over the raw counts.
TEST(AuditCausesMixed, ExactSharesAcrossAllCauses) {
  trace::Workload wl;
  const auto aa_pair = wl.AddApplication("aa", 2, ResourceVector::Cores(2, 4),
                                         /*priority=*/0,
                                         /*anti_affinity_within=*/true);
  // Unplaced by design: "missed" fits wide-open machine 1 (kScheduler),
  // "giant" fits nowhere (kResources).
  wl.AddApplication("missed", 1, ResourceVector::Cores(2, 4));
  wl.AddApplication("giant", 1, ResourceVector::Cores(64, 128));
  const Topology topo = Topology::Uniform(2, ResourceVector::Cores(32, 64));
  ClusterState state = wl.MakeState(topo);
  // Within-app violation: both aa containers on machine 0.
  state.Deploy(wl.application(aa_pair).containers[0], MachineId(0));
  state.Deploy(wl.application(aa_pair).containers[1], MachineId(0));

  const AuditReport report = Audit(state);
  EXPECT_EQ(report.total_containers, 4u);
  EXPECT_EQ(report.placed, 2u);
  EXPECT_EQ(report.colocation_violations, 1u);
  EXPECT_EQ(report.unplaced, 2u);
  EXPECT_EQ(report.unplaced_scheduler, 1u);
  EXPECT_EQ(report.unplaced_resources, 1u);
  EXPECT_EQ(report.unplaced_aa_constrained, 0u);
  EXPECT_EQ(report.TotalViolations(), 3u);
  // 3 violations over 4 containers; 1 of the 3 is anti-affinity-typed.
  EXPECT_DOUBLE_EQ(report.ViolationPercent(), 75.0);
  EXPECT_DOUBLE_EQ(report.AntiAffinityShare(), 100.0 / 3.0);
}

}  // namespace
}  // namespace aladdin::cluster

// Tests for the Kubernetes co-design layer (§IV.C, Fig. 6): the events
// handling center's coalescing, the model adaptor's object/scheduling
// translation, the resolver's binding/migration/preemption reconciliation,
// and the full simulator's mixed long-/short-lived lifecycle (§IV.D).
#include <gtest/gtest.h>

#include "cluster/audit.h"
#include "k8s/adaptor.h"
#include "k8s/events.h"
#include "k8s/resolver.h"
#include "common/rng.h"
#include "k8s/simulator.h"

namespace aladdin::k8s {
namespace {

using cluster::ResourceVector;

Pod MakePod(PodUid uid, const std::string& app, ResourceVector req,
            cluster::Priority priority = 0, bool anti_within = false) {
  Pod pod;
  pod.uid = uid;
  pod.name = app + "-" + std::to_string(uid);
  pod.spec.app = app;
  pod.spec.requests = req;
  pod.spec.priority = priority;
  pod.spec.anti_affinity_within = anti_within;
  return pod;
}

Event PodAdded(Pod pod) {
  Event e;
  e.type = EventType::kPodAdded;
  e.pod = std::move(pod);
  return e;
}

Event PodDeleted(PodUid uid) {
  Event e;
  e.type = EventType::kPodDeleted;
  e.pod.uid = uid;
  return e;
}

Event NodeAdded(const std::string& name, ResourceVector capacity,
                const std::string& rack = "r0",
                const std::string& zone = "z0") {
  Event e;
  e.type = EventType::kNodeAdded;
  e.node = Node{name, capacity, rack, zone};
  return e;
}

// ------------------------------------------------------------------ EHC ----

TEST(Ehc, DispatchesToSubscribersInOrder) {
  EventsHandlingCenter ehc;
  std::vector<std::string> log;
  ehc.Subscribe([&](const Event& e) { log.push_back(EventTypeName(e.type)); });
  ehc.Submit(NodeAdded("n0", ResourceVector::Cores(32, 64)));
  ehc.Submit(PodAdded(MakePod(1, "a", ResourceVector::Cores(1, 2))));
  EXPECT_EQ(ehc.pending(), 2u);
  EXPECT_EQ(ehc.DrainAndDispatch(), 2u);
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], "NodeAdded");
  EXPECT_EQ(log[1], "PodAdded");
  EXPECT_EQ(ehc.pending(), 0u);
}

TEST(Ehc, CoalescesAddThenDelete) {
  // A pod created and deleted in the same batch never reaches subscribers.
  EventsHandlingCenter ehc;
  int seen = 0;
  ehc.Subscribe([&](const Event&) { ++seen; });
  ehc.Submit(PodAdded(MakePod(1, "a", ResourceVector::Cores(1, 2))));
  ehc.Submit(PodDeleted(1));
  EXPECT_EQ(ehc.DrainAndDispatch(), 0u);
  EXPECT_EQ(seen, 0);
  EXPECT_EQ(ehc.coalesced_total(), 2);
}

TEST(Ehc, DeleteOfPreexistingPodPassesThrough) {
  EventsHandlingCenter ehc;
  std::vector<EventType> seen;
  ehc.Subscribe([&](const Event& e) { seen.push_back(e.type); });
  ehc.Submit(PodDeleted(42));  // pod existed before this batch
  EXPECT_EQ(ehc.DrainAndDispatch(), 1u);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], EventType::kPodDeleted);
}

TEST(Ehc, DuplicateAddsCollapse) {
  EventsHandlingCenter ehc;
  int seen = 0;
  ehc.Subscribe([&](const Event&) { ++seen; });
  ehc.Submit(PodAdded(MakePod(1, "a", ResourceVector::Cores(1, 2))));
  ehc.Submit(PodAdded(MakePod(1, "a", ResourceVector::Cores(1, 2))));
  EXPECT_EQ(ehc.DrainAndDispatch(), 1u);
  EXPECT_EQ(seen, 1);
}

TEST(Ehc, NodeAddRemoveCancels) {
  EventsHandlingCenter ehc;
  int seen = 0;
  ehc.Subscribe([&](const Event&) { ++seen; });
  ehc.Submit(NodeAdded("n0", ResourceVector::Cores(32, 64)));
  {
    Event e;
    e.type = EventType::kNodeRemoved;
    e.node.name = "n0";
    ehc.Submit(std::move(e));
  }
  EXPECT_EQ(ehc.DrainAndDispatch(), 0u);
  EXPECT_EQ(seen, 0);
}

// ---------------------------------------------------------------- adaptor ----

TEST(Adaptor, BuildsWorkloadFromOwners) {
  ModelAdaptor ma;
  ma.OnEvent(NodeAdded("n0", ResourceVector::Cores(32, 64)));
  ma.OnEvent(PodAdded(MakePod(1, "web", ResourceVector::Cores(4, 8), 2, true)));
  ma.OnEvent(PodAdded(MakePod(2, "web", ResourceVector::Cores(4, 8), 2, true)));
  ma.OnEvent(PodAdded(MakePod(3, "db", ResourceVector::Cores(8, 16))));

  const trace::Workload& wl = ma.workload();
  ASSERT_EQ(wl.application_count(), 2u);
  EXPECT_EQ(wl.applications()[0].name, "web");
  EXPECT_EQ(wl.applications()[0].containers.size(), 2u);
  EXPECT_TRUE(wl.applications()[0].anti_affinity_within);
  EXPECT_EQ(wl.applications()[1].name, "db");

  // uid <-> container translation is a bijection over live pods.
  for (PodUid uid : {PodUid{1}, PodUid{2}, PodUid{3}}) {
    const auto c = ma.ContainerOf(uid);
    ASSERT_TRUE(c.valid());
    EXPECT_EQ(ma.PodOfContainer(c), uid);
  }
}

TEST(Adaptor, CrossOwnerAntiAffinityResolved) {
  ModelAdaptor ma;
  Pod web = MakePod(1, "web", ResourceVector::Cores(4, 8));
  web.spec.anti_affinity_apps = {"db"};
  ma.OnEvent(PodAdded(web));
  ma.OnEvent(PodAdded(MakePod(2, "db", ResourceVector::Cores(8, 16))));
  const trace::Workload& wl = ma.workload();
  EXPECT_TRUE(wl.constraints().Conflicts(wl.applications()[0].id,
                                         wl.applications()[1].id));
}

TEST(Adaptor, TopologyFromLabels) {
  ModelAdaptor ma;
  ma.OnEvent(NodeAdded("a", ResourceVector::Cores(32, 64), "r0", "z0"));
  ma.OnEvent(NodeAdded("b", ResourceVector::Cores(32, 64), "r0", "z0"));
  ma.OnEvent(NodeAdded("c", ResourceVector::Cores(32, 64), "r1", "z0"));
  ma.OnEvent(NodeAdded("d", ResourceVector::Cores(16, 32), "r2", "z1"));
  const cluster::Topology& topo = ma.topology();
  EXPECT_EQ(topo.machine_count(), 4u);
  EXPECT_EQ(topo.rack_count(), 3u);
  EXPECT_EQ(topo.subcluster_count(), 2u);
  const auto m = ma.MachineOf("d");
  ASSERT_TRUE(m.valid());
  EXPECT_EQ(topo.machine(m).capacity, ResourceVector::Cores(16, 32));
  EXPECT_EQ(ma.NodeOfMachine(m), "d");
}

TEST(Adaptor, SnapshotVersionBumpsOnChange) {
  ModelAdaptor ma;
  ma.OnEvent(NodeAdded("n0", ResourceVector::Cores(32, 64)));
  (void)ma.workload();
  const auto v1 = ma.snapshot_version();
  (void)ma.workload();  // no change: same version
  EXPECT_EQ(ma.snapshot_version(), v1);
  ma.OnEvent(PodAdded(MakePod(1, "a", ResourceVector::Cores(1, 2))));
  (void)ma.workload();
  EXPECT_GT(ma.snapshot_version(), v1);
}

TEST(Adaptor, NodeRemovalUnbindsPods) {
  ModelAdaptor ma;
  ma.OnEvent(NodeAdded("n0", ResourceVector::Cores(32, 64)));
  Pod pod = MakePod(1, "a", ResourceVector::Cores(1, 2));
  pod.phase = PodPhase::kBound;
  pod.node = "n0";
  ma.OnEvent(PodAdded(pod));
  {
    Event e;
    e.type = EventType::kNodeRemoved;
    e.node.name = "n0";
    ma.OnEvent(e);
  }
  const Pod* stored = ma.FindPod(1);
  ASSERT_NE(stored, nullptr);
  EXPECT_EQ(stored->phase, PodPhase::kPending);
  EXPECT_TRUE(stored->node.empty());
}

// --------------------------------------------------------------- resolver ----

TEST(Resolver, BindsPendingPods) {
  ModelAdaptor ma;
  ma.OnEvent(NodeAdded("n0", ResourceVector::Cores(32, 64)));
  ma.OnEvent(NodeAdded("n1", ResourceVector::Cores(32, 64)));
  ma.OnEvent(PodAdded(MakePod(1, "web", ResourceVector::Cores(4, 8), 1, true)));
  ma.OnEvent(PodAdded(MakePod(2, "web", ResourceVector::Cores(4, 8), 1, true)));

  Resolver resolver(ma);
  std::vector<Binding> bindings;
  const ResolveStats stats = resolver.Resolve(1, &bindings);
  EXPECT_EQ(stats.new_bindings, 2u);
  EXPECT_EQ(stats.unschedulable, 0u);
  ASSERT_EQ(bindings.size(), 2u);
  // Anti-affinity within: the two replicas land on different nodes.
  EXPECT_NE(ma.FindPod(1)->node, ma.FindPod(2)->node);
  EXPECT_EQ(ma.FindPod(1)->phase, PodPhase::kBound);
}

TEST(Resolver, IncrementalRespectsExistingBindings) {
  ModelAdaptor ma;
  ma.OnEvent(NodeAdded("n0", ResourceVector::Cores(32, 64)));
  ma.OnEvent(PodAdded(MakePod(1, "a", ResourceVector::Cores(4, 8))));
  Resolver resolver(ma);
  resolver.Resolve(1);
  const std::string first_node = ma.FindPod(1)->node;
  // A second pod arrives; the first binding must not churn.
  ma.OnEvent(PodAdded(MakePod(2, "b", ResourceVector::Cores(4, 8))));
  const ResolveStats stats = resolver.Resolve(2);
  EXPECT_EQ(stats.new_bindings, 1u);
  EXPECT_EQ(stats.migrations, 0u);
  EXPECT_EQ(ma.FindPod(1)->node, first_node);
}

TEST(Resolver, MigratesBlockerForConstrainedArrival) {
  // The Fig. 3(b) scenario through the full stack: A bound on the big node
  // (the only node at the time); the small node joins later; then B
  // (anti-affine with A) arrives and only fits on big — A must migrate.
  ModelAdaptor ma;
  ma.OnEvent(NodeAdded("big", ResourceVector::Cores(32, 64)));
  Pod a = MakePod(1, "A", ResourceVector::Cores(8, 16), 1);
  a.spec.anti_affinity_apps = {"B"};
  ma.OnEvent(PodAdded(a));
  Resolver resolver(ma);
  resolver.Resolve(1);
  ASSERT_EQ(ma.FindPod(1)->node, "big");

  ma.OnEvent(NodeAdded("small", ResourceVector::Cores(8, 16)));
  ma.OnEvent(PodAdded(MakePod(2, "B", ResourceVector::Cores(24, 48))));
  const ResolveStats stats = resolver.Resolve(2);
  EXPECT_EQ(stats.new_bindings, 1u);
  EXPECT_EQ(stats.migrations, 1u);
  EXPECT_EQ(ma.FindPod(1)->node, "small");
  EXPECT_EQ(ma.FindPod(2)->node, "big");
}

TEST(Resolver, ReportsUnschedulable) {
  ModelAdaptor ma;
  ma.OnEvent(NodeAdded("n0", ResourceVector::Cores(8, 16)));
  ma.OnEvent(PodAdded(MakePod(1, "big", ResourceVector::Cores(16, 32))));
  Resolver resolver(ma);
  const ResolveStats stats = resolver.Resolve(1);
  EXPECT_EQ(stats.unschedulable, 1u);
  EXPECT_EQ(ma.FindPod(1)->phase, PodPhase::kPending);
}

// -------------------------------------------------------------- simulator ----

TEST(Simulator, EndToEndMixedWorkload) {
  ClusterSimulator sim;
  sim.AddNodes(8, ResourceVector::Cores(32, 64), "node", 4, 2);

  PodSpec web;
  web.requests = ResourceVector::Cores(8, 16);
  web.priority = 2;
  web.anti_affinity_within = true;
  sim.SubmitDeployment("web", 4, web);
  sim.SubmitBatchJob("etl", 12, ResourceVector::Cores(2, 4),
                     /*lifetime_ticks=*/2);

  const ResolveStats t1 = sim.Tick();
  EXPECT_EQ(t1.new_bindings, 16u);
  EXPECT_EQ(t1.unschedulable, 0u);

  // Batch tasks complete after two more ticks and release their resources.
  sim.Tick();
  sim.Tick();
  EXPECT_EQ(sim.completed_tasks(), 12);
  EXPECT_EQ(sim.adaptor().pod_count(), 4u);  // only the LLA remains
  for (PodUid uid : sim.adaptor().BoundPods()) {
    EXPECT_FALSE(sim.adaptor().FindPod(uid)->spec.short_lived());
  }
}

TEST(Simulator, BatchWavesReuseFreedCapacity) {
  ClusterSimulator sim;
  sim.AddNodes(2, ResourceVector::Cores(32, 64));
  // Each wave saturates the cluster; it must drain before the next fits.
  sim.SubmitBatchJob("wave1", 16, ResourceVector::Cores(4, 8), 1);
  const auto t1 = sim.Tick();
  EXPECT_EQ(t1.new_bindings, 16u);
  sim.SubmitBatchJob("wave2", 16, ResourceVector::Cores(4, 8), 1);
  const auto t2 = sim.Tick();  // wave1 completes this tick, wave2 binds
  EXPECT_EQ(t2.new_bindings, 16u);
  EXPECT_EQ(sim.completed_tasks(), 16);
  sim.Tick();
  EXPECT_EQ(sim.completed_tasks(), 32);
}

TEST(Simulator, ScaleDownRemovesNewestPods) {
  ClusterSimulator sim;
  sim.AddNodes(4, ResourceVector::Cores(32, 64));
  PodSpec spec;
  spec.requests = ResourceVector::Cores(2, 4);
  const auto uids = sim.SubmitDeployment("svc", 6, spec);
  sim.Tick();
  EXPECT_EQ(sim.ScaleDown("svc", 2), 2u);
  sim.Tick();
  EXPECT_EQ(sim.adaptor().pod_count(), 4u);
  // The two newest uids are gone.
  EXPECT_EQ(sim.adaptor().FindPod(uids.back()), nullptr);
  EXPECT_NE(sim.adaptor().FindPod(uids.front()), nullptr);
}

TEST(Simulator, NodeLossReschedulesPods) {
  ClusterSimulator sim;
  const auto names = sim.AddNodes(4, ResourceVector::Cores(32, 64));
  PodSpec spec;
  spec.requests = ResourceVector::Cores(4, 8);
  spec.anti_affinity_within = true;
  sim.SubmitDeployment("svc", 3, spec);
  sim.Tick();
  // Find a node hosting a replica and kill it.
  std::string victim;
  for (PodUid uid : sim.adaptor().BoundPods()) {
    victim = sim.adaptor().FindPod(uid)->node;
    break;
  }
  ASSERT_FALSE(victim.empty());
  sim.RemoveNode(victim);
  const ResolveStats stats = sim.Tick();
  EXPECT_EQ(stats.new_bindings, 1u);  // the displaced replica re-binds
  // All three replicas bound again, still on distinct nodes.
  std::set<std::string> nodes;
  for (PodUid uid : sim.adaptor().BoundPods()) {
    nodes.insert(sim.adaptor().FindPod(uid)->node);
  }
  EXPECT_EQ(nodes.size(), 3u);
}

TEST(Simulator, PriorityPreemptionThroughTheStack) {
  ClusterSimulator sim;
  sim.AddNodes(1, ResourceVector::Cores(32, 64));
  PodSpec low;
  low.requests = ResourceVector::Cores(16, 32);
  low.priority = 0;
  sim.SubmitDeployment("low", 2, low);
  sim.Tick();
  EXPECT_EQ(sim.adaptor().BoundPods().size(), 2u);

  PodSpec vip;
  vip.requests = ResourceVector::Cores(16, 32);
  vip.priority = 3;
  sim.SubmitDeployment("vip", 1, vip);
  const ResolveStats stats = sim.Tick();
  // The VIP pod displaces one low-priority pod (weighted flows, Eq. 3-5).
  EXPECT_EQ(stats.new_bindings, 1u);
  EXPECT_GE(stats.preemptions, 1u);
  bool vip_bound = false;
  for (PodUid uid : sim.adaptor().BoundPods()) {
    if (sim.adaptor().FindPod(uid)->spec.app == "vip") vip_bound = true;
  }
  EXPECT_TRUE(vip_bound);
}

TEST(Simulator, HistoryAccumulates) {
  ClusterSimulator sim;
  sim.AddNodes(2, ResourceVector::Cores(32, 64));
  sim.Tick();
  sim.Tick();
  EXPECT_EQ(sim.history().size(), 2u);
  EXPECT_EQ(sim.history()[0].tick, 1);
  EXPECT_EQ(sim.history()[1].tick, 2);
  EXPECT_EQ(sim.now(), 2);
}

TEST(Simulator, InterleavedBatchJobsCompleteIndependently) {
  ClusterSimulator sim;
  sim.AddNodes(4, ResourceVector::Cores(32, 64));
  sim.SubmitBatchJob("fast", 8, ResourceVector::Cores(1, 2), 1);
  sim.SubmitBatchJob("slow", 8, ResourceVector::Cores(1, 2), 3);
  sim.Tick();  // both bind
  EXPECT_EQ(sim.completed_tasks(), 0);
  sim.Tick();  // fast completes (bound t=1, lifetime 1)
  EXPECT_EQ(sim.completed_tasks(), 8);
  sim.Tick();
  EXPECT_EQ(sim.completed_tasks(), 8);  // slow still running
  sim.Tick();  // slow completes at t=4 (bound 1 + 3)
  EXPECT_EQ(sim.completed_tasks(), 16);
}

TEST(Adaptor, DeletingPendingPodRemovesIt) {
  ModelAdaptor ma;
  ma.OnEvent(NodeAdded("n0", ResourceVector::Cores(32, 64)));
  ma.OnEvent(PodAdded(MakePod(1, "a", ResourceVector::Cores(1, 2))));
  EXPECT_EQ(ma.PendingPods().size(), 1u);
  ma.OnEvent(PodDeleted(1));
  EXPECT_EQ(ma.PendingPods().size(), 0u);
  EXPECT_EQ(ma.FindPod(1), nullptr);
  // Snapshot reflects the deletion.
  EXPECT_EQ(ma.workload().container_count(), 0u);
}

TEST(Adaptor, PrototypeSpecIsCanonicalPerOwner) {
  // Pods of one owner are isomorphic by contract; the adaptor trusts the
  // first (lowest-uid) pod's spec if a divergent one sneaks in.
  ModelAdaptor ma;
  ma.OnEvent(PodAdded(MakePod(1, "svc", ResourceVector::Cores(2, 4), 1)));
  ma.OnEvent(PodAdded(MakePod(2, "svc", ResourceVector::Cores(8, 16), 3)));
  const trace::Workload& wl = ma.workload();
  ASSERT_EQ(wl.application_count(), 1u);
  EXPECT_EQ(wl.applications()[0].request, ResourceVector::Cores(2, 4));
  EXPECT_EQ(wl.applications()[0].priority, 1);
}

TEST(Resolver, ShortLivedPodsBypassConstraints) {
  // Task-path pods ignore anti-affinity (SS IV.D) but still respect
  // resources; the LLA path on the same resolve honours everything.
  ModelAdaptor ma;
  ma.OnEvent(NodeAdded("n0", ResourceVector::Cores(8, 16)));
  Pod lla = MakePod(1, "svc", ResourceVector::Cores(4, 8), 1, true);
  ma.OnEvent(PodAdded(lla));
  Pod batch = MakePod(2, "svc-batch", ResourceVector::Cores(4, 8));
  batch.spec.lifetime_ticks = 2;
  ma.OnEvent(PodAdded(batch));
  Resolver resolver(ma);
  const ResolveStats stats = resolver.Resolve(1);
  EXPECT_EQ(stats.new_bindings, 2u);
  EXPECT_EQ(ma.FindPod(1)->node, "n0");
  EXPECT_EQ(ma.FindPod(2)->node, "n0");
}

// ------------------------------------------------------- churn fuzzing ----

class ChurnFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(ChurnFuzzTest, RandomNodeAndPodChurnKeepsInvariants) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 77);
  ClusterSimulator sim;
  std::vector<std::string> nodes =
      sim.AddNodes(10, ResourceVector::Cores(32, 64));

  int app_counter = 0;
  for (int tick = 0; tick < 12; ++tick) {
    // Random workload churn.
    if (rng.Bernoulli(0.8)) {
      PodSpec spec;
      spec.requests = ResourceVector::Cores(rng.UniformInt(1, 8),
                                            rng.UniformInt(2, 16));
      spec.priority = static_cast<cluster::Priority>(rng.UniformInt(0, 3));
      spec.anti_affinity_within = rng.Bernoulli(0.5);
      sim.SubmitDeployment("fuzz-" + std::to_string(app_counter++),
                           static_cast<std::size_t>(rng.UniformInt(1, 5)),
                           spec);
    }
    if (rng.Bernoulli(0.4)) {
      sim.SubmitBatchJob("batch-" + std::to_string(tick),
                         static_cast<std::size_t>(rng.UniformInt(2, 10)),
                         ResourceVector::Cores(1, 2), rng.UniformInt(1, 3));
    }
    // Random infrastructure churn.
    if (rng.Bernoulli(0.25) && nodes.size() > 4) {
      const auto pick = static_cast<std::size_t>(rng.UniformInt(
          0, static_cast<std::int64_t>(nodes.size()) - 1));
      sim.RemoveNode(nodes[pick]);
      nodes.erase(nodes.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    if (rng.Bernoulli(0.25)) {
      const auto added = sim.AddNodes(2, ResourceVector::Cores(32, 64));
      nodes.insert(nodes.end(), added.begin(), added.end());
    }

    sim.Tick();

    // Invariants: every bound pod references a live node, and the
    // scheduling-side snapshot stays violation-free for LLAs.
    for (PodUid uid : sim.adaptor().BoundPods()) {
      const Pod* pod = sim.adaptor().FindPod(uid);
      ASSERT_TRUE(sim.adaptor().MachineOf(pod->node).valid())
          << "tick " << tick << " pod " << uid << " on dead node "
          << pod->node;
    }
    // Rebuild the state from bindings and audit it: bindings must at least
    // be resource-feasible (anti-affinity can be momentarily violated only
    // never — the resolver always places via the capacity function).
    const trace::Workload& wl = sim.adaptor().workload();
    const cluster::Topology& topo = sim.adaptor().topology();
    auto state = wl.MakeState(topo);
    for (PodUid uid : sim.adaptor().BoundPods()) {
      const Pod* pod = sim.adaptor().FindPod(uid);
      const auto c = sim.adaptor().ContainerOf(uid);
      const auto m = sim.adaptor().MachineOf(pod->node);
      ASSERT_TRUE(state.Fits(c, m)) << "over-committed binding at tick "
                                    << tick;
      state.Deploy(c, m);
    }
    // No long-lived pod may sit in a violating colocation.
    for (cluster::ContainerId offender :
         cluster::CollectColocationViolations(state)) {
      const PodUid uid = sim.adaptor().PodOfContainer(offender);
      EXPECT_TRUE(sim.adaptor().FindPod(uid)->spec.short_lived())
          << "LLA pod in violating colocation at tick " << tick;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnFuzzTest, ::testing::Range(1, 9));

}  // namespace
}  // namespace aladdin::k8s

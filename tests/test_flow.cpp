// Unit + property tests for the flow substrate: graph mechanics, max-flow
// solvers (with cross-validation EK vs Dinic vs min-cut), shortest paths
// (SPFA vs Bellman–Ford), min-cost max-flow optimality, and the
// multidimensional graph.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "flow/graph.h"
#include "flow/max_flow.h"
#include "flow/min_cost_flow.h"
#include "flow/multidim.h"
#include "flow/shortest_path.h"

namespace aladdin::flow {
namespace {

// ------------------------------------------------------------- graph ----

TEST(Graph, ArcTwinPairing) {
  Graph g;
  const VertexId a = g.AddVertex();
  const VertexId b = g.AddVertex();
  const ArcId fwd = g.AddArc(a, b, 10, 3);
  const ArcId rev = Graph::Reverse(fwd);
  EXPECT_EQ(g.arc(fwd).head, b);
  EXPECT_EQ(g.arc(rev).head, a);
  EXPECT_EQ(g.arc(fwd).cost, 3);
  EXPECT_EQ(g.arc(rev).cost, -3);
  EXPECT_EQ(g.Residual(fwd), 10);
  EXPECT_EQ(g.Residual(rev), 0);
  EXPECT_EQ(g.Tail(fwd), a);
  EXPECT_EQ(g.Tail(rev), b);
}

TEST(Graph, PushMovesFlowBothWays) {
  Graph g;
  const VertexId a = g.AddVertex();
  const VertexId b = g.AddVertex();
  const ArcId arc = g.AddArc(a, b, 10, 0);
  g.Push(arc, 4);
  EXPECT_EQ(g.Residual(arc), 6);
  EXPECT_EQ(g.Residual(Graph::Reverse(arc)), 4);
  g.Push(Graph::Reverse(arc), 1);
  EXPECT_EQ(g.Residual(arc), 7);
}

TEST(Graph, AddVerticesBulk) {
  Graph g;
  const VertexId first = g.AddVertices(5);
  EXPECT_EQ(first.value(), 0);
  EXPECT_EQ(g.vertex_count(), 5u);
}

TEST(Graph, ResetFlows) {
  Graph g;
  const VertexId a = g.AddVertex();
  const VertexId b = g.AddVertex();
  const ArcId arc = g.AddArc(a, b, 10, 0);
  g.Push(arc, 10);
  g.ResetFlows();
  EXPECT_EQ(g.Residual(arc), 10);
  EXPECT_EQ(g.arc(arc).flow, 0);
}

TEST(Graph, SetCapacity) {
  Graph g;
  const VertexId a = g.AddVertex();
  const VertexId b = g.AddVertex();
  const ArcId arc = g.AddArc(a, b, 10, 0);
  g.Push(arc, 5);
  g.SetCapacity(arc, 7);
  EXPECT_EQ(g.Residual(arc), 2);
}

TEST(Graph, ConsistencyHoldsAfterMaxFlow) {
  Graph g;
  const VertexId s = g.AddVertex();
  const VertexId t = g.AddVertex();
  const VertexId m = g.AddVertex();
  g.AddArc(s, m, 5, 0);
  g.AddArc(m, t, 3, 0);
  Dinic(g, s, t);
  const VertexId exempt[] = {s, t};
  EXPECT_TRUE(g.CheckConsistency(exempt));
}

// ---------------------------------------------------------- max flow ----

// CLRS Figure 26.1 classic network; max flow = 23.
Graph ClrsGraph(VertexId& s, VertexId& t) {
  Graph g;
  s = g.AddVertex();
  const VertexId v1 = g.AddVertex();
  const VertexId v2 = g.AddVertex();
  const VertexId v3 = g.AddVertex();
  const VertexId v4 = g.AddVertex();
  t = g.AddVertex();
  g.AddArc(s, v1, 16, 0);
  g.AddArc(s, v2, 13, 0);
  g.AddArc(v1, v3, 12, 0);
  g.AddArc(v2, v1, 4, 0);
  g.AddArc(v2, v4, 14, 0);
  g.AddArc(v3, v2, 9, 0);
  g.AddArc(v3, t, 20, 0);
  g.AddArc(v4, v3, 7, 0);
  g.AddArc(v4, t, 4, 0);
  return g;
}

TEST(MaxFlow, EdmondsKarpClrs) {
  VertexId s, t;
  Graph g = ClrsGraph(s, t);
  EXPECT_EQ(EdmondsKarp(g, s, t).value, 23);
}

TEST(MaxFlow, DinicClrs) {
  VertexId s, t;
  Graph g = ClrsGraph(s, t);
  EXPECT_EQ(Dinic(g, s, t).value, 23);
}

TEST(MaxFlow, DisconnectedIsZero) {
  Graph g;
  const VertexId s = g.AddVertex();
  const VertexId t = g.AddVertex();
  g.AddVertex();  // island
  EXPECT_EQ(Dinic(g, s, t).value, 0);
  EXPECT_EQ(EdmondsKarp(g, s, t).value, 0);
}

TEST(MaxFlow, ParallelArcsAccumulate) {
  Graph g;
  const VertexId s = g.AddVertex();
  const VertexId t = g.AddVertex();
  g.AddArc(s, t, 3, 0);
  g.AddArc(s, t, 4, 0);
  EXPECT_EQ(Dinic(g, s, t).value, 7);
}

TEST(MaxFlow, MinCutMatchesFlowValue) {
  VertexId s, t;
  Graph g = ClrsGraph(s, t);
  const Capacity value = Dinic(g, s, t).value;
  const auto reachable = ResidualReachable(g, s);
  EXPECT_TRUE(reachable[static_cast<std::size_t>(s.value())]);
  EXPECT_FALSE(reachable[static_cast<std::size_t>(t.value())]);
  // Sum of capacities crossing the cut equals the max flow.
  Capacity cut = 0;
  for (std::size_t v = 0; v < g.vertex_count(); ++v) {
    if (!reachable[v]) continue;
    for (std::int32_t raw :
         g.OutArcs(VertexId(static_cast<std::int32_t>(v)))) {
      const ArcId a{raw};
      if (raw % 2 != 0) continue;  // forward arcs only
      const VertexId head = g.arc(a).head;
      if (!reachable[static_cast<std::size_t>(head.value())]) {
        cut += g.arc(a).capacity;
      }
    }
  }
  EXPECT_EQ(cut, value);
}

Graph RandomGraph(Rng& rng, std::size_t vertices, std::size_t arcs,
                  VertexId& s, VertexId& t, bool with_costs) {
  Graph g;
  for (std::size_t i = 0; i < vertices; ++i) g.AddVertex();
  s = VertexId(0);
  t = VertexId(static_cast<std::int32_t>(vertices - 1));
  for (std::size_t i = 0; i < arcs; ++i) {
    const auto a = static_cast<std::int32_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(vertices) - 1));
    const auto b = static_cast<std::int32_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(vertices) - 1));
    if (a == b) continue;
    g.AddArc(VertexId(a), VertexId(b), rng.UniformInt(1, 20),
             with_costs ? rng.UniformInt(0, 9) : 0);
  }
  return g;
}

class MaxFlowPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MaxFlowPropertyTest, DinicEqualsEdmondsKarp) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  VertexId s, t;
  Graph g1 = RandomGraph(rng, 20, 60, s, t, false);
  Graph g2 = g1;
  const Capacity ek = EdmondsKarp(g1, s, t).value;
  const Capacity dn = Dinic(g2, s, t).value;
  EXPECT_EQ(ek, dn);
}

TEST_P(MaxFlowPropertyTest, FlowConservationAfterSolve) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 1000);
  VertexId s, t;
  Graph g = RandomGraph(rng, 15, 45, s, t, false);
  Dinic(g, s, t);
  const VertexId exempt[] = {s, t};
  EXPECT_TRUE(g.CheckConsistency(exempt));
  EXPECT_EQ(g.NetOutflow(s), -g.NetOutflow(t));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaxFlowPropertyTest,
                         ::testing::Range(1, 21));

// ------------------------------------------------------ shortest path ----

TEST(ShortestPath, BellmanFordSimpleChain) {
  Graph g;
  const VertexId a = g.AddVertex();
  const VertexId b = g.AddVertex();
  const VertexId c = g.AddVertex();
  g.AddArc(a, b, 1, 5);
  g.AddArc(b, c, 1, 7);
  g.AddArc(a, c, 1, 20);
  const auto tree = BellmanFord(g, a);
  EXPECT_EQ(tree.dist[static_cast<std::size_t>(c.value())], 12);
  EXPECT_FALSE(tree.negative_cycle);
}

TEST(ShortestPath, HandlesNegativeArcs) {
  Graph g;
  const VertexId a = g.AddVertex();
  const VertexId b = g.AddVertex();
  const VertexId c = g.AddVertex();
  g.AddArc(a, b, 1, 10);
  g.AddArc(b, c, 1, -7);
  g.AddArc(a, c, 1, 5);
  const auto bf = BellmanFord(g, a);
  const auto sp = Spfa(g, a);
  EXPECT_EQ(bf.dist[static_cast<std::size_t>(c.value())], 3);
  EXPECT_EQ(sp.dist[static_cast<std::size_t>(c.value())], 3);
}

TEST(ShortestPath, DetectsNegativeCycle) {
  Graph g;
  const VertexId a = g.AddVertex();
  const VertexId b = g.AddVertex();
  g.AddArc(a, b, 1, -5);
  g.AddArc(b, a, 1, 2);
  EXPECT_TRUE(BellmanFord(g, a).negative_cycle);
  EXPECT_TRUE(Spfa(g, a).negative_cycle);
}

TEST(ShortestPath, IgnoresSaturatedArcs) {
  Graph g;
  const VertexId a = g.AddVertex();
  const VertexId b = g.AddVertex();
  const ArcId cheap = g.AddArc(a, b, 1, 1);
  g.AddArc(a, b, 1, 10);
  g.Push(cheap, 1);  // saturate the cheap arc
  const auto tree = Spfa(g, a);
  EXPECT_EQ(tree.dist[static_cast<std::size_t>(b.value())], 10);
}

TEST(ShortestPath, UnreachableVertexMarked) {
  Graph g;
  const VertexId a = g.AddVertex();
  const VertexId b = g.AddVertex();
  (void)b;
  const auto tree = Spfa(g, a);
  EXPECT_GE(tree.dist[1], kUnreachable);
  EXPECT_TRUE(ExtractPath(g, tree, a, VertexId(1)).empty());
}

TEST(ShortestPath, ExtractPathArcsChain) {
  Graph g;
  const VertexId a = g.AddVertex();
  const VertexId b = g.AddVertex();
  const VertexId c = g.AddVertex();
  g.AddArc(a, b, 1, 1);
  g.AddArc(b, c, 1, 1);
  const auto tree = Spfa(g, a);
  const auto path = ExtractPath(g, tree, a, c);
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(g.Tail(path[0]), a);
  EXPECT_EQ(g.arc(path[0]).head, b);
  EXPECT_EQ(g.arc(path[1]).head, c);
}

class SpfaPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SpfaPropertyTest, SpfaMatchesBellmanFord) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 500);
  VertexId s, t;
  Graph g = RandomGraph(rng, 25, 80, s, t, true);
  const auto bf = BellmanFord(g, s);
  const auto sp = Spfa(g, s);
  ASSERT_FALSE(bf.negative_cycle);
  ASSERT_FALSE(sp.negative_cycle);
  for (std::size_t v = 0; v < g.vertex_count(); ++v) {
    EXPECT_EQ(bf.dist[v], sp.dist[v]) << "vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpfaPropertyTest, ::testing::Range(1, 21));

// ----------------------------------------------------- min cost flow ----

TEST(MinCostFlow, PrefersCheapPath) {
  Graph g;
  const VertexId s = g.AddVertex();
  const VertexId t = g.AddVertex();
  const VertexId m = g.AddVertex();
  g.AddArc(s, m, 10, 1);
  g.AddArc(m, t, 10, 1);
  g.AddArc(s, t, 10, 5);
  const auto result = MinCostMaxFlow(g, s, t);
  EXPECT_EQ(result.flow, 20);
  EXPECT_EQ(result.cost, 10 * 2 + 10 * 5);
}

TEST(MinCostFlow, RespectsFlowLimit) {
  Graph g;
  const VertexId s = g.AddVertex();
  const VertexId t = g.AddVertex();
  g.AddArc(s, t, 100, 2);
  const auto result = MinCostMaxFlow(g, s, t, 7);
  EXPECT_EQ(result.flow, 7);
  EXPECT_EQ(result.cost, 14);
}

TEST(MinCostFlow, AssignmentProblemOptimal) {
  // 2 tasks, 2 machines; costs: t0->m0=1, t0->m1=5, t1->m0=2, t1->m1=1.
  // Optimal assignment: t0->m0 (1) + t1->m1 (1) = 2.
  Graph g;
  const VertexId s = g.AddVertex();
  const VertexId t = g.AddVertex();
  const VertexId t0 = g.AddVertex();
  const VertexId t1 = g.AddVertex();
  const VertexId m0 = g.AddVertex();
  const VertexId m1 = g.AddVertex();
  g.AddArc(s, t0, 1, 0);
  g.AddArc(s, t1, 1, 0);
  g.AddArc(t0, m0, 1, 1);
  g.AddArc(t0, m1, 1, 5);
  g.AddArc(t1, m0, 1, 2);
  g.AddArc(t1, m1, 1, 1);
  g.AddArc(m0, t, 1, 0);
  g.AddArc(m1, t, 1, 0);
  const auto result = MinCostMaxFlow(g, s, t);
  EXPECT_EQ(result.flow, 2);
  EXPECT_EQ(result.cost, 2);
}

TEST(MinCostFlow, MaximalityMatchesDinic) {
  Rng rng(99);
  VertexId s, t;
  Graph g1 = RandomGraph(rng, 18, 60, s, t, true);
  Graph g2 = g1;
  EXPECT_EQ(MinCostMaxFlow(g1, s, t).flow, Dinic(g2, s, t).value);
}

TEST(MinCostFlow, GreedyPathOrderIsMonotoneInCost) {
  // Successive shortest paths augment in nondecreasing path-cost order; the
  // total cost must match a brute-force check on this small instance.
  Graph g;
  const VertexId s = g.AddVertex();
  const VertexId t = g.AddVertex();
  const VertexId a = g.AddVertex();
  const VertexId b = g.AddVertex();
  g.AddArc(s, a, 2, 1);
  g.AddArc(s, b, 2, 3);
  g.AddArc(a, t, 1, 1);
  g.AddArc(a, b, 2, 0);
  g.AddArc(b, t, 3, 1);
  const auto result = MinCostMaxFlow(g, s, t);
  EXPECT_EQ(result.flow, 4);
  // Cheapest routing: s->a->t (1u, cost 2), s->a->b->t (1u, cost 2),
  // s->b->t (2u, cost 4 each... cost 3+1=4) -> total 2+2+8 = 12.
  EXPECT_EQ(result.cost, 12);
}

// --------------------------------------------------- cut / decomposition ----

TEST(MinCut, ArcCapacitiesSumToFlowValue) {
  VertexId s, t;
  Graph g = ClrsGraph(s, t);
  const Capacity value = Dinic(g, s, t).value;
  Capacity cut_capacity = 0;
  for (ArcId a : MinCutArcs(g, s)) cut_capacity += g.arc(a).capacity;
  EXPECT_EQ(cut_capacity, value);
}

TEST(MinCut, SaturatedArcsOnly) {
  VertexId s, t;
  Graph g = ClrsGraph(s, t);
  Dinic(g, s, t);
  for (ArcId a : MinCutArcs(g, s)) {
    EXPECT_EQ(g.Residual(a), 0);
  }
}

TEST(Decompose, PathsSumToFlowValue) {
  VertexId s, t;
  Graph g = ClrsGraph(s, t);
  const Capacity value = Dinic(g, s, t).value;
  const auto paths = DecomposePaths(g, s, t);
  Capacity total = 0;
  for (const auto& p : paths) {
    total += p.amount;
    // Each path is a contiguous s -> t walk.
    ASSERT_FALSE(p.arcs.empty());
    EXPECT_EQ(g.Tail(p.arcs.front()), s);
    EXPECT_EQ(g.arc(p.arcs.back()).head, t);
    for (std::size_t i = 1; i < p.arcs.size(); ++i) {
      EXPECT_EQ(g.arc(p.arcs[i - 1]).head, g.Tail(p.arcs[i]));
    }
  }
  EXPECT_EQ(total, value);
  // The decomposition consumed all flow.
  const VertexId exempt[] = {s, t};
  EXPECT_TRUE(g.CheckConsistency(exempt));
  EXPECT_EQ(g.NetOutflow(s), 0);
}

TEST(Decompose, EmptyFlowYieldsNoPaths) {
  VertexId s, t;
  Graph g = ClrsGraph(s, t);
  EXPECT_TRUE(DecomposePaths(g, s, t).empty());
}

class DecomposePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(DecomposePropertyTest, RandomGraphsDecomposeExactly) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 900);
  VertexId s, t;
  Graph g = RandomGraph(rng, 15, 50, s, t, false);
  const Capacity value = Dinic(g, s, t).value;
  const auto paths = DecomposePaths(g, s, t);
  Capacity total = 0;
  for (const auto& p : paths) total += p.amount;
  EXPECT_EQ(total, value);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecomposePropertyTest, ::testing::Range(1, 11));

// ------------------------------------------------------------ multidim ----

TEST(MultiDim, VectorOps) {
  EXPECT_TRUE(DimLeq({1, 2}, {1, 3}));
  EXPECT_FALSE(DimLeq({2, 2}, {1, 3}));
  EXPECT_EQ(DimMin({1, 5}, {2, 3}), (DimVector{1, 3}));
  EXPECT_EQ(DimAdd({1, 2}, {3, 4}), (DimVector{4, 6}));
  EXPECT_EQ(DimSub({5, 5}, {2, 3}), (DimVector{3, 2}));
  EXPECT_TRUE(DimPositive({1, 1}));
  EXPECT_FALSE(DimPositive({1, 0}));
}

TEST(MultiDim, AugmentTakesComponentwiseBottleneck) {
  MultiDimGraph g(2);
  const VertexId s = g.AddVertex();
  const VertexId m = g.AddVertex();
  const VertexId t = g.AddVertex();
  g.AddArc(s, m, {4, 10});
  g.AddArc(m, t, {6, 3});
  const DimVector pushed = g.Augment(s, t);
  EXPECT_EQ(pushed, (DimVector{4, 3}));
}

TEST(MultiDim, ZeroDimensionBlocksPath) {
  MultiDimGraph g(2);
  const VertexId s = g.AddVertex();
  const VertexId t = g.AddVertex();
  g.AddArc(s, t, {5, 0});  // dimension 2 empty: no feasible flow
  EXPECT_TRUE(g.Augment(s, t).empty());
}

TEST(MultiDim, PredicateActsAsNonlinearCapacity) {
  MultiDimGraph g(1);
  const VertexId s = g.AddVertex();
  const VertexId a = g.AddVertex();
  const VertexId b = g.AddVertex();
  const VertexId t = g.AddVertex();
  g.AddArc(s, a, {5});
  const ArcId blocked = g.AddArc(a, t, {5});
  g.AddArc(s, b, {2});
  g.AddArc(b, t, {2});
  const auto predicate = [&](ArcId arc, VertexId, VertexId) {
    return arc != blocked;  // "blacklist" the direct a->t edge
  };
  const DimVector total = g.MaxFlow(s, t, predicate);
  EXPECT_EQ(total, (DimVector{2}));
}

TEST(MultiDim, SingleDimensionMatchesScalarSolver) {
  Rng rng(7);
  // Bipartite s -> u_i -> t with random capacities; compare against the
  // scalar graph. Multidim flow has no residual arcs, but on this DAG shape
  // augmenting paths never need them, so values agree.
  MultiDimGraph md(1);
  Graph scalar;
  const VertexId ms = md.AddVertex();
  const VertexId mt = md.AddVertex();
  const VertexId ss = scalar.AddVertex();
  const VertexId st = scalar.AddVertex();
  for (int i = 0; i < 10; ++i) {
    const std::int64_t c1 = rng.UniformInt(1, 9);
    const std::int64_t c2 = rng.UniformInt(1, 9);
    const VertexId mu = md.AddVertex();
    md.AddArc(ms, mu, {c1});
    md.AddArc(mu, mt, {c2});
    const VertexId su = scalar.AddVertex();
    scalar.AddArc(ss, su, c1, 0);
    scalar.AddArc(su, st, c2, 0);
  }
  const DimVector total = md.MaxFlow(ms, mt);
  EXPECT_EQ(total[0], Dinic(scalar, ss, st).value);
}

TEST(MultiDim, MaxFlowTerminates) {
  MultiDimGraph g(2);
  const VertexId s = g.AddVertex();
  const VertexId t = g.AddVertex();
  for (int i = 0; i < 50; ++i) {
    const VertexId v = g.AddVertex();
    g.AddArc(s, v, {3, 4});
    g.AddArc(v, t, {2, 5});
  }
  const DimVector total = g.MaxFlow(s, t);
  EXPECT_EQ(total, (DimVector{100, 200}));
}

// ------------------------------------------------------- CSR adjacency ----

// Randomized oracle test for the frozen CSR layout: a nested
// vector<vector<arc id>> adjacency — the legacy representation — is
// maintained side by side through interleaved vertex adds, arc adds, and
// adjacency reads (each read after a mutation forces a CSR re-freeze).
// The CSR must reproduce the legacy per-vertex arc order exactly; solver
// iteration order, and therefore every placement decision, rides on it.
TEST(GraphFuzz, CsrMatchesNestedAdjacencyAcrossFreezeCycles) {
  for (int seed = 1; seed <= 12; ++seed) {
    Rng rng(static_cast<std::uint64_t>(seed));
    Graph g;
    std::vector<std::vector<std::int32_t>> nested;
    std::int32_t vertices = static_cast<std::int32_t>(rng.UniformInt(2, 6));
    g.AddVertices(static_cast<std::size_t>(vertices));
    nested.resize(static_cast<std::size_t>(vertices));

    for (int round = 0; round < 8; ++round) {
      for (std::int64_t i = rng.UniformInt(0, 3); i > 0; --i) {
        g.AddVertex();
        nested.emplace_back();
        ++vertices;
      }
      for (std::int64_t i = rng.UniformInt(1, 12); i > 0; --i) {
        const auto tail = static_cast<std::int32_t>(
            rng.UniformInt(0, vertices - 1));
        const auto head = static_cast<std::int32_t>(
            rng.UniformInt(0, vertices - 1));
        const ArcId a = g.AddArc(VertexId(tail), VertexId(head),
                                 rng.UniformInt(1, 16), rng.UniformInt(0, 7));
        nested[static_cast<std::size_t>(tail)].push_back(a.value());
        nested[static_cast<std::size_t>(head)].push_back(
            Graph::Reverse(a).value());
      }
      EXPECT_FALSE(g.frozen()) << "AddArc must dirty the CSR";
      for (std::int32_t v = 0; v < vertices; ++v) {
        const auto arcs = g.OutArcs(VertexId(v));  // freezes on first read
        const std::vector<std::int32_t> got(arcs.begin(), arcs.end());
        ASSERT_EQ(got, nested[static_cast<std::size_t>(v)])
            << "seed " << seed << " round " << round << " vertex " << v;
      }
      EXPECT_TRUE(g.frozen());
      ASSERT_TRUE(g.ValidateInvariants())
          << "seed " << seed << " round " << round;
    }

    // Push some flow and re-validate: the CSR must stay consistent with the
    // arc table after solver-style mutations (which touch flows only).
    const VertexId s(0), t(1);
    (void)Dinic(g, s, t);
    const VertexId exempt[] = {s, t};
    ASSERT_TRUE(g.ValidateInvariants(exempt)) << "seed " << seed;
  }
}

}  // namespace
}  // namespace aladdin::flow

// Unit tests for src/common: ids, rng, stats, strings, csv, flags, table,
// thread pool, arena.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <numeric>
#include <sstream>
#include <thread>

#include "common/arena.h"
#include "common/csv.h"
#include "common/flags.h"
#include "common/ids.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/strings.h"
#include "common/table.h"
#include "common/log.h"
#include "common/thread_pool.h"
#include "common/timer.h"

namespace aladdin {
namespace {

// ---------------------------------------------------------------- ids ----

TEST(Ids, DefaultIsInvalid) {
  ContainerId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, ContainerId::Invalid());
}

TEST(Ids, ValueRoundTrip) {
  MachineId m(7);
  EXPECT_TRUE(m.valid());
  EXPECT_EQ(m.value(), 7);
}

TEST(Ids, Ordering) {
  EXPECT_LT(MachineId(1), MachineId(2));
  EXPECT_EQ(MachineId(3), MachineId(3));
  EXPECT_NE(MachineId(3), MachineId(4));
}

TEST(Ids, DistinctTagTypesDoNotMix) {
  // Compile-time property: MachineId and ContainerId are different types.
  static_assert(!std::is_same_v<MachineId, ContainerId>);
}

TEST(Ids, Hashable) {
  std::unordered_map<ContainerId, int> map;
  map[ContainerId(1)] = 10;
  map[ContainerId(2)] = 20;
  EXPECT_EQ(map.at(ContainerId(1)), 10);
  EXPECT_EQ(map.at(ContainerId(2)), 20);
}

// ---------------------------------------------------------------- rng ----

TEST(Rng, DeterministicPerSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = rng.UniformInt(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(9);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(42, 42), 42);
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(11);
  std::map<std::int64_t, int> counts;
  for (int i = 0; i < 10000; ++i) ++counts[rng.UniformInt(0, 9)];
  EXPECT_EQ(counts.size(), 10u);
  for (const auto& [v, n] : counts) {
    EXPECT_GT(n, 700) << "value " << v << " under-represented";
  }
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRoughlyCalibrated) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / 20000.0, 0.3, 0.02);
}

TEST(Rng, ZipfStaysInRange) {
  Rng rng(23);
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = rng.Zipf(100, 1.3);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 100);
  }
}

TEST(Rng, ZipfIsHeavyHeaded) {
  // P(X = 1) must dominate; for s = 1.5, n = 1000 it is about 38%.
  Rng rng(29);
  int ones = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) ones += rng.Zipf(1000, 1.5) == 1 ? 1 : 0;
  const double p1 = static_cast<double>(ones) / n;
  EXPECT_GT(p1, 0.30);
  EXPECT_LT(p1, 0.46);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(31);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 20000; ++i) ++counts[rng.WeightedIndex(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / 20000.0, 0.75, 0.02);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(37);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.Shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, ForkStreamsAreIndependentAndStable) {
  Rng a(41);
  Rng child1 = a.Fork();
  Rng child2 = a.Fork();
  EXPECT_NE(child1.Next(), child2.Next());
  // Same parent seed reproduces the same children, and the second fork
  // differs from the first deterministically.
  EXPECT_EQ(Rng(41).Fork().Next(), Rng(41).Fork().Next());
  Rng b1(41), b2(41);
  b1.Fork();
  b2.Fork();
  EXPECT_EQ(b1.Fork().Next(), b2.Fork().Next());
}

// -------------------------------------------------------------- stats ----

TEST(OnlineStats, BasicMoments) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, MergeMatchesSequential) {
  Rng rng(43);
  OnlineStats all, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.UniformDouble() * 10.0;
    all.Add(x);
    (i % 2 == 0 ? left : right).Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a, b;
  a.Add(1.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.Merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(Sample, PercentilesExact) {
  Sample s;
  for (int i = 1; i <= 100; ++i) s.Add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 100.0);
  EXPECT_NEAR(s.Percentile(50), 50.5, 1e-9);
  EXPECT_NEAR(s.Percentile(99), 99.01, 1e-9);
}

TEST(Sample, PercentileAfterInterleavedAdds) {
  Sample s;
  s.Add(3.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 3.0);
  s.Add(1.0);
  s.Add(2.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(Sample, EmptyReturnsZero) {
  Sample s;
  EXPECT_EQ(s.Percentile(50), 0.0);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.Add(0.5);   // bin 0
  h.Add(9.99);  // bin 9
  h.Add(-5.0);  // clamped to bin 0
  h.Add(42.0);  // clamped to bin 9
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.BinLow(3), 3.0);
  EXPECT_DOUBLE_EQ(h.BinHigh(3), 4.0);
}

TEST(BuildCdf, MonotoneAndComplete) {
  std::vector<double> samples;
  Rng rng(47);
  for (int i = 0; i < 1000; ++i) samples.push_back(rng.UniformDouble());
  const auto cdf = BuildCdf(samples, 32);
  ASSERT_FALSE(cdf.empty());
  EXPECT_DOUBLE_EQ(cdf.back().fraction, 1.0);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_LE(cdf[i - 1].value, cdf[i].value);
    EXPECT_LT(cdf[i - 1].fraction, cdf[i].fraction);
  }
}

TEST(BuildCdf, EmptyInput) { EXPECT_TRUE(BuildCdf({}).empty()); }

// ------------------------------------------------------------ strings ----

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitSingleField) {
  const auto parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, Trim) {
  EXPECT_EQ(Trim("  x \t\n"), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \t "), "");
  EXPECT_EQ(Trim("a b"), "a b");
}

TEST(Strings, ParseInt64) {
  std::int64_t v = 0;
  EXPECT_TRUE(ParseInt64("123", v));
  EXPECT_EQ(v, 123);
  EXPECT_TRUE(ParseInt64(" -42 ", v));
  EXPECT_EQ(v, -42);
  EXPECT_FALSE(ParseInt64("", v));
  EXPECT_FALSE(ParseInt64("12x", v));
  EXPECT_FALSE(ParseInt64("4.5", v));
}

TEST(Strings, ParseDouble) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("1.5", v));
  EXPECT_DOUBLE_EQ(v, 1.5);
  EXPECT_TRUE(ParseDouble("-3", v));
  EXPECT_DOUBLE_EQ(v, -3.0);
  EXPECT_FALSE(ParseDouble("abc", v));
  EXPECT_FALSE(ParseDouble("", v));
}

TEST(Strings, WithThousands) {
  EXPECT_EQ(WithThousands(0), "0");
  EXPECT_EQ(WithThousands(999), "999");
  EXPECT_EQ(WithThousands(1000), "1,000");
  EXPECT_EQ(WithThousands(1234567), "1,234,567");
  EXPECT_EQ(WithThousands(-9876), "-9,876");
}

TEST(Strings, FormatFixed) {
  EXPECT_EQ(FormatFixed(3.14159, 2), "3.14");
  EXPECT_EQ(FormatFixed(1.0, 0), "1");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(StartsWith("--flag", "--"));
  EXPECT_FALSE(StartsWith("-f", "--"));
  EXPECT_FALSE(StartsWith("", "--"));
}

// ---------------------------------------------------------------- csv ----

TEST(Csv, WriteReadRoundTrip) {
  std::stringstream ss;
  CsvWriter writer(ss);
  writer.Field("hello").Field(std::int64_t{42}).Field(2.5);
  writer.EndRow();
  writer.Field("with,comma").Field("with\"quote");
  writer.EndRow();

  CsvReader reader(ss);
  std::vector<std::string> row;
  ASSERT_TRUE(reader.NextRow(row));
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[0], "hello");
  EXPECT_EQ(row[1], "42");
  double v;
  ASSERT_TRUE(ParseDouble(row[2], v));
  EXPECT_DOUBLE_EQ(v, 2.5);

  ASSERT_TRUE(reader.NextRow(row));
  ASSERT_EQ(row.size(), 2u);
  EXPECT_EQ(row[0], "with,comma");
  EXPECT_EQ(row[1], "with\"quote");

  EXPECT_FALSE(reader.NextRow(row));
}

TEST(Csv, SkipsBlankLines) {
  std::stringstream ss("a,b\n\n\nc,d\n");
  CsvReader reader(ss);
  std::vector<std::string> row;
  ASSERT_TRUE(reader.NextRow(row));
  EXPECT_EQ(row[0], "a");
  ASSERT_TRUE(reader.NextRow(row));
  EXPECT_EQ(row[0], "c");
  EXPECT_FALSE(reader.NextRow(row));
}

TEST(Csv, HandlesCrLf) {
  std::stringstream ss("a,b\r\nc,d\r\n");
  CsvReader reader(ss);
  std::vector<std::string> row;
  ASSERT_TRUE(reader.NextRow(row));
  EXPECT_EQ(row[1], "b");
}

// -------------------------------------------------------------- flags ----

TEST(Flags, ParsesAllSyntaxes) {
  Flags flags;
  auto& n = flags.Int64("n", 1, "count");
  auto& x = flags.Double("x", 0.5, "ratio");
  auto& b = flags.Bool("b", false, "toggle");
  auto& s = flags.String("s", "def", "name");

  const char* argv[] = {"prog", "--n=5", "--x", "2.5", "--b", "--s=abc"};
  EXPECT_TRUE(flags.Parse(6, const_cast<char**>(argv)));
  EXPECT_EQ(n, 5);
  EXPECT_DOUBLE_EQ(x, 2.5);
  EXPECT_TRUE(b);
  EXPECT_EQ(s, "abc");
}

TEST(Flags, DefaultsPreservedWithoutArgs) {
  Flags flags;
  auto& n = flags.Int64("n", 7, "count");
  const char* argv[] = {"prog"};
  EXPECT_TRUE(flags.Parse(1, const_cast<char**>(argv)));
  EXPECT_EQ(n, 7);
}

TEST(Flags, RejectsUnknownFlag) {
  Flags flags;
  flags.Int64("n", 1, "count");
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv)));
}

TEST(Flags, RejectsBadValue) {
  Flags flags;
  flags.Int64("n", 1, "count");
  const char* argv[] = {"prog", "--n=abc"};
  EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv)));
}

TEST(Flags, HelpReturnsFalse) {
  Flags flags;
  flags.Int64("n", 1, "count");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv)));
}

TEST(Flags, BoolExplicitValues) {
  Flags flags;
  auto& b = flags.Bool("b", true, "toggle");
  const char* argv[] = {"prog", "--b=false"};
  EXPECT_TRUE(flags.Parse(2, const_cast<char**>(argv)));
  EXPECT_FALSE(b);
}

// -------------------------------------------------------------- table ----

TEST(Table, RendersAlignedColumns) {
  Table table({"name", "value"});
  table.Cell("a").Cell(std::int64_t{1}).EndRow();
  table.Cell("long-name").Cell(12345.678, 1).EndRow();
  const std::string out = table.Render();
  EXPECT_NE(out.find("| name "), std::string::npos);
  EXPECT_NE(out.find("12345.7"), std::string::npos);
  EXPECT_NE(out.find("long-name"), std::string::npos);
  // All lines equally wide.
  std::size_t width = 0;
  std::istringstream is(out);
  std::string line;
  while (std::getline(is, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
}

TEST(Table, PadsMissingCells) {
  Table table({"a", "b", "c"});
  table.Cell("only-one").EndRow();
  const std::string out = table.Render();
  EXPECT_NE(out.find("only-one"), std::string::npos);
}

// -------------------------------------------------------------- timer ----

TEST(Timer, MeasuresElapsedTime) {
  WallTimer timer;
  // Burn a little CPU deterministically.
  volatile double x = 1.0;
  for (int i = 0; i < 100000; ++i) x = x * 1.0000001;
  EXPECT_GT(timer.ElapsedSeconds(), 0.0);
  EXPECT_GE(timer.ElapsedMicros(), 0);
  EXPECT_NEAR(timer.ElapsedMillis(), timer.ElapsedSeconds() * 1e3,
              timer.ElapsedMillis() * 0.5 + 1.0);
}

TEST(Timer, ResetRestartsClock) {
  WallTimer timer;
  volatile double x = 1.0;
  for (int i = 0; i < 100000; ++i) x = x * 1.0000001;
  const double before = timer.ElapsedSeconds();
  timer.Reset();
  EXPECT_LE(timer.ElapsedSeconds(), before + 1e-3);
}

TEST(Timer, ScopedTimerAccumulates) {
  double sink = 0.0;
  {
    ScopedTimer t1(&sink);
    volatile double x = 1.0;
    for (int i = 0; i < 10000; ++i) x = x * 1.0000001;
  }
  const double after_first = sink;
  EXPECT_GT(after_first, 0.0);
  {
    ScopedTimer t2(&sink);
  }
  EXPECT_GE(sink, after_first);
}

// ---------------------------------------------------------------- log ----

TEST(Log, LevelGatingRoundTrip) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // These must be no-ops (nothing observable to assert beyond not crashing,
  // but the macros must still compile and evaluate their stream arguments
  // lazily).
  LOG_DEBUG << "suppressed " << 1;
  LOG_INFO << "suppressed " << 2;
  SetLogLevel(original);
}

TEST(Log, MacroDoesNotEvaluateStreamWhenSuppressed) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto count = [&] {
    ++evaluations;
    return "x";
  };
  LOG_DEBUG << count();
  EXPECT_EQ(evaluations, 0);
  SetLogLevel(original);
}

// -------------------------------------------------------- thread pool ----

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitDrainsQueue) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&] { ++counter; });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  ParallelFor(pool, 0, 257, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool touched = false;
  ParallelFor(pool, 5, 5, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(1);
  auto f = pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(SerialFor, MatchesParallelSemantics) {
  std::vector<int> hits(10, 0);
  SerialFor(2, 8, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i], (i >= 2 && i < 8) ? 1 : 0);
  }
}

// -------------------------------------------------------------- arena ----

TEST(Arena, AllocationsAreAligned) {
  Arena arena(128);
  for (std::size_t align : {1u, 2u, 8u, 16u, 64u}) {
    void* p = arena.Allocate(3, align);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
        << "align " << align;
  }
}

TEST(Arena, ResetRewindsToTheSameStorage) {
  Arena arena(256);
  void* first = arena.Allocate(64, 8);
  arena.Allocate(64, 8);
  EXPECT_EQ(arena.bytes_used(), 128u);
  arena.Reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  // Same chunk, same cursor: the steady-state tick re-walks warm memory.
  EXPECT_EQ(arena.Allocate(64, 8), first);
}

TEST(Arena, GrowthRetainsChunksAcrossResets) {
  Arena arena(64);
  arena.Allocate(200, 8);  // overflows the first chunk -> new chunk
  arena.Allocate(1000, 8);
  const std::size_t high_water = arena.bytes_reserved();
  EXPECT_GE(high_water, 1200u);
  arena.Reset();
  EXPECT_EQ(arena.bytes_reserved(), high_water);  // nothing freed
  // Replaying the same demand fits in retained chunks: no further growth.
  arena.Allocate(200, 8);
  arena.Allocate(1000, 8);
  EXPECT_EQ(arena.bytes_reserved(), high_water);
}

TEST(Arena, OversizedRequestGetsItsOwnChunk) {
  Arena arena(64);
  void* p = arena.Allocate(10000, 64);
  EXPECT_NE(p, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u);
  EXPECT_GE(arena.bytes_reserved(), 10000u);
}

TEST(ArenaVector, WorksAsATickScopedContainer) {
  Arena arena;
  for (int tick = 0; tick < 3; ++tick) {
    arena.Reset();
    ArenaVector<int> v{ArenaAllocator<int>(&arena)};
    v.reserve(100);
    for (int i = 0; i < 100; ++i) v.push_back(i);
    EXPECT_EQ(v.size(), 100u);
    EXPECT_EQ(v.front(), 0);
    EXPECT_EQ(v.back(), 99);
  }
  // Three identical ticks reuse the warm chunk: footprint equals one tick's.
  Arena one_tick;
  ArenaVector<int> v{ArenaAllocator<int>(&one_tick)};
  v.reserve(100);
  EXPECT_EQ(arena.bytes_reserved(), one_tick.bytes_reserved());
}

}  // namespace
}  // namespace aladdin

// aladdin-analyze fixture (L1, conforming): every mutable field in the
// mutex-holding class is guarded, atomic, const, or carries a justified
// `analyze:allow(L103) ...` marker.
#include <atomic>
#include <cstdint>

#define ALADDIN_GUARDED_BY(x)

namespace aladdin {
class Mutex {};
}  // namespace aladdin

namespace fixture {

class Registry {
 public:
  void Bump();

 private:
  aladdin::Mutex mu_;
  std::int64_t count_ ALADDIN_GUARDED_BY(mu_) = 0;
  std::atomic<bool> running_{false};  // atomics order themselves
  const int capacity_ = 64;           // immutable after construction
  int scratch_ = 0;  // analyze:allow(L103) confined to the owner thread
};

}  // namespace fixture

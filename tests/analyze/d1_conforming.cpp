// aladdin-analyze fixture (D1, conforming): the deterministic counterparts
// of d1_violating.cpp — ordered containers and explicit seeds pass clean.
#include <cstdint>
#include <map>

namespace fixture {

struct Scheduler {
  std::map<int, int> load_;  // ordered: iteration order is the key order

  int Sum() const {
    int total = 0;
    for (const auto& [machine, load] : load_) total += load;
    return total;
  }
};

struct Task {};
std::map<int, Task> task_by_id;  // keyed by a stable id, not a pointer

// The common/rng.h shape: explicit seed in, pure state transition — no
// random_device, no wall clock.
struct SplitMix {
  std::uint64_t state;
  explicit SplitMix(std::uint64_t seed) : state(seed) {}
  std::uint64_t Next() {
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    return z ^ (z >> 31);
  }
};

}  // namespace fixture

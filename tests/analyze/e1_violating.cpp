// aladdin-analyze fixture (E1, violating): switches over a closed enum
// that miss an enumerator or hide behind default:.
namespace fixture {

enum class Phase {  // analyze:closed_enum
  kSync,
  kSolve,
  kReconcile,
};

int Missing(Phase p) {
  switch (p) {  // E101: kReconcile unhandled
    case Phase::kSync:
      return 0;
    case Phase::kSolve:
      return 1;
  }
  return -1;
}

int Defaulted(Phase p) {
  switch (p) {  // E102: default swallows future enumerators
    case Phase::kSync:
      return 0;
    case Phase::kSolve:
      return 1;
    case Phase::kReconcile:
      return 2;
    default:
      return -1;
  }
}

}  // namespace fixture

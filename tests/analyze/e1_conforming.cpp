// aladdin-analyze fixture (E1, conforming): a closed enum handled
// exhaustively with no default, and an open enum where default is fine.
namespace fixture {

enum class Phase {  // analyze:closed_enum
  kSync,
  kSolve,
  kReconcile,
};

int Exhaustive(Phase p) {
  switch (p) {
    case Phase::kSync:
      return 0;
    case Phase::kSolve:
      return 1;
    case Phase::kReconcile:
      return 2;
  }
  return -1;  // unreachable; keeps -Wreturn-type quiet
}

enum class Verbosity { kQuiet, kNormal, kLoud };  // open: no marker

int Level(Verbosity v) {
  switch (v) {
    case Verbosity::kLoud:
      return 2;
    default:
      return 0;  // open enums may collapse cases
  }
}

}  // namespace fixture

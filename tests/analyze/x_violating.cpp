// aladdin-analyze fixture (X, suppression hygiene): a reasonless marker,
// an unknown code, a stale marker, and one valid suppression.
#include <cstdlib>

namespace fixture {

int Reasonless() {
  return std::rand();  // analyze:allow(D103)
}  // X001 (no reason), and the D103 above stays live

int Unknown() {
  return 1;  // analyze:allow(Q999) not a code from the catalog
}  // X001

int Stale() {
  return 2;  // analyze:allow(D103) nothing on this line to suppress
}  // X002

int Valid() {
  return std::rand();  // analyze:allow(D103) fixture demonstrating a marker
}

}  // namespace fixture

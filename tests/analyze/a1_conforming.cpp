// aladdin-analyze fixture (A1, conforming): the sanctioned shapes — scratch
// rooted in a Workspace, growth inside an exempt scratch class, and
// allocations in functions the hot closure never reaches.
#include <vector>

#define ALADDIN_HOT

namespace fixture {

struct Workspace {  // exempt scratch owner (config.A1_EXEMPT_CLASSES)
  std::vector<int> dist;
  void Reset() { dist.assign(dist.size(), 0); }
};

void Relax(Workspace& ws) {
  ws.dist.assign(ws.dist.size(), -1);  // ws-rooted: arena-backed scratch
}

ALADDIN_HOT void Tick(Workspace& ws) {
  Relax(ws);
  ws.Reset();
}

void ColdAudit() {
  std::vector<int> copy;  // unreachable from any hot root: no diagnostic
  copy.reserve(4);
}

}  // namespace fixture

// aladdin-analyze fixture (D1, violating): every construct below must trip
// a determinism diagnostic. Exercised by tools/test_analyze.py in --fixture
// mode; never compiled into the build.
#include <chrono>
#include <cstdlib>
#include <map>
#include <unordered_map>
#include <unordered_set>

namespace fixture {

struct Scheduler {
  std::unordered_map<int, int> load_;

  int Sum() const {
    int total = 0;
    for (const auto& [machine, load] : load_) total += load;  // D101
    return total;
  }
};

int First(const std::unordered_set<int>& ids) {
  std::unordered_set<int> pending = ids;
  return *pending.begin();  // D101
}

std::unordered_set<int> dirty_machines;  // namespace-scope global

int Drain() {
  int last = -1;
  for (int m : dirty_machines) last = m;  // D101
  return last;
}

struct Task {};
std::map<Task*, int> priority_by_task;  // D102

int Roll() {
  return std::rand();  // D103
}

long Seed() {
  return std::chrono::system_clock::now()  // D103
      .time_since_epoch()
      .count();
}

}  // namespace fixture

// aladdin-analyze fixture (L1, violating): a mutex guarding nothing, a
// guard naming a ghost mutex, an unguarded mutable field, and a raw
// std::mutex invisible to -Wthread-safety.
#include <cstdint>
#include <mutex>

#define ALADDIN_GUARDED_BY(x)  // expands to nothing outside clang

namespace aladdin {
class Mutex {};
}  // namespace aladdin

namespace fixture {

class Registry {
 public:
  void Bump();

 private:
  aladdin::Mutex mu_;       // L101: guards no field
  std::int64_t count_ = 0;  // L103: mutable and unguarded, no marker
};

class Queue {
 private:
  aladdin::Mutex queue_mu_;
  int depth_ ALADDIN_GUARDED_BY(other_mu_) = 0;  // L102: no such member
  int size_ ALADDIN_GUARDED_BY(queue_mu_) = 0;
};

std::mutex raw_mu;  // L104: use aladdin::Mutex (common/mutex.h)

}  // namespace fixture

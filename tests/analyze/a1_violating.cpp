// aladdin-analyze fixture (A1, violating): allocations reachable from an
// ALADDIN_HOT root, plus the nested-vector adjacency layout.
#include <memory>
#include <vector>

#define ALADDIN_HOT  // the lex backend keys on the literal token

namespace fixture {

void Helper(std::vector<int>& out) {
  out.resize(128);  // A103: growth on a plain vector, via Tick -> Helper
}

ALADDIN_HOT void Tick() {
  std::vector<int> scratch;  // A102: owning container built per call
  auto owned = std::make_unique<int>(7);  // A101
  int* raw = new int(3);                  // A101
  delete raw;
  (void)owned;
  Helper(scratch);
}

struct Graph {
  std::vector<std::vector<int>> adjacency;  // A104: pre-CSR layout
};

}  // namespace fixture

// Unit + property tests for src/trace: workload construction, the
// Alibaba-like generator's distributional guarantees (Fig. 8 / §V.A),
// arrival orders, serialization round-trips, and workload statistics.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "trace/alibaba_gen.h"
#include "trace/arrival.h"
#include "trace/serialize.h"
#include "trace/trace_stats.h"
#include "trace/workload.h"

namespace aladdin::trace {
namespace {

using cluster::ApplicationId;
using cluster::ContainerId;
using cluster::ResourceVector;

// ------------------------------------------------------------ workload ----

TEST(Workload, AddApplicationCreatesIsomorphicContainers) {
  Workload wl;
  const auto app = wl.AddApplication("a", 3, ResourceVector::Cores(2, 4), 1,
                                     /*anti_affinity_within=*/true);
  EXPECT_EQ(wl.application_count(), 1u);
  EXPECT_EQ(wl.container_count(), 3u);
  for (ContainerId c : wl.application(app).containers) {
    EXPECT_EQ(wl.container(c).request, ResourceVector::Cores(2, 4));
    EXPECT_EQ(wl.container(c).priority, 1);
    EXPECT_EQ(wl.container(c).app, app);
  }
  EXPECT_TRUE(wl.constraints().HasWithinAntiAffinity(app));
}

TEST(Workload, ContainerIdsAreDense) {
  Workload wl;
  wl.AddApplication("a", 2, ResourceVector::Cores(1, 1));
  wl.AddApplication("b", 3, ResourceVector::Cores(1, 1));
  for (std::size_t i = 0; i < wl.container_count(); ++i) {
    EXPECT_EQ(wl.containers()[i].id.value(), static_cast<std::int32_t>(i));
  }
}

TEST(Workload, TotalDemand) {
  Workload wl;
  wl.AddApplication("a", 2, ResourceVector::Cores(2, 4));
  wl.AddApplication("b", 1, ResourceVector::Cores(3, 6));
  EXPECT_EQ(wl.TotalDemand(), ResourceVector::Cores(7, 14));
}

TEST(Workload, ProjectCpuOnly) {
  Workload wl;
  wl.AddApplication("a", 2, ResourceVector::Cores(2, 4));
  wl.ProjectCpuOnly();
  EXPECT_EQ(wl.containers()[0].request.mem_mib(), 0);
  EXPECT_EQ(wl.containers()[0].request.cpu_millis(), 2000);
  EXPECT_EQ(wl.applications()[0].request.mem_mib(), 0);
}

TEST(Workload, AddAntiAffinityMarksWithinFlag) {
  Workload wl;
  const auto a = wl.AddApplication("a", 2, ResourceVector::Cores(1, 1));
  EXPECT_FALSE(wl.application(a).anti_affinity_within);
  wl.AddAntiAffinity(a, a);
  EXPECT_TRUE(wl.application(a).anti_affinity_within);
}

// ----------------------------------------------------------- generator ----

class GeneratorTest : public ::testing::Test {
 protected:
  static AlibabaTraceOptions SmallOptions() {
    AlibabaTraceOptions options;
    options.scale = 0.05;
    options.seed = 42;
    return options;
  }
};

TEST_F(GeneratorTest, PopulationCountsScale) {
  const Workload wl = GenerateAlibabaLike(SmallOptions());
  // 5% of 13,056 apps, 100k containers.
  EXPECT_NEAR(static_cast<double>(wl.application_count()), 653.0, 10.0);
  EXPECT_NEAR(static_cast<double>(wl.container_count()), 5000.0, 750.0);
}

TEST_F(GeneratorTest, SingleInstanceFraction) {
  const Workload wl = GenerateAlibabaLike(SmallOptions());
  const WorkloadStats stats = ComputeWorkloadStats(wl);
  EXPECT_NEAR(stats.SingleInstanceFraction(), 0.64, 0.06);
}

TEST_F(GeneratorTest, AntiAffinityFraction) {
  const Workload wl = GenerateAlibabaLike(SmallOptions());
  const WorkloadStats stats = ComputeWorkloadStats(wl);
  const double fraction = static_cast<double>(stats.apps_with_anti_affinity) /
                          static_cast<double>(stats.applications);
  EXPECT_NEAR(fraction, 9400.0 / 13056.0, 0.06);
}

TEST_F(GeneratorTest, PriorityFraction) {
  const Workload wl = GenerateAlibabaLike(SmallOptions());
  const WorkloadStats stats = ComputeWorkloadStats(wl);
  const double fraction = static_cast<double>(stats.apps_with_priority) /
                          static_cast<double>(stats.applications);
  EXPECT_NEAR(fraction, 2088.0 / 13056.0, 0.04);
}

TEST_F(GeneratorTest, RequestCapRespected) {
  const Workload wl = GenerateAlibabaLike(SmallOptions());
  const WorkloadStats stats = ComputeWorkloadStats(wl);
  EXPECT_LE(stats.max_request.cpu_millis(), 16000);
  EXPECT_LE(stats.max_request.mem_mib(), 32 * 1024);
}

TEST_F(GeneratorTest, GiantsExist) {
  const Workload wl = GenerateAlibabaLike(SmallOptions());
  const WorkloadStats stats = ComputeWorkloadStats(wl);
  // At scale the paper's ">2000 containers" becomes ~2% of the total.
  EXPECT_GE(stats.max_app_size,
            static_cast<std::size_t>(0.015 * 5000));
}

TEST_F(GeneratorTest, HeavyConflictersExist) {
  auto options = SmallOptions();
  const Workload wl = GenerateAlibabaLike(options);
  const auto threshold = static_cast<std::int64_t>(
      static_cast<double>(options.heavy_conflict_containers) * options.scale *
      0.9);
  const WorkloadStats stats = ComputeWorkloadStats(wl, threshold);
  EXPECT_GE(stats.heavy_conflicter_apps,
            static_cast<std::size_t>(options.heavy_conflicters));
}

TEST_F(GeneratorTest, CpuOnlyMode) {
  auto options = SmallOptions();
  options.cpu_only = true;
  const Workload wl = GenerateAlibabaLike(options);
  for (const auto& c : wl.containers()) {
    EXPECT_EQ(c.request.mem_mib(), 0);
    EXPECT_GT(c.request.cpu_millis(), 0);
  }
}

TEST_F(GeneratorTest, MemoryModeKeepsMemory) {
  auto options = SmallOptions();
  options.cpu_only = false;
  const Workload wl = GenerateAlibabaLike(options);
  bool any_mem = false;
  for (const auto& c : wl.containers()) {
    any_mem = any_mem || c.request.mem_mib() > 0;
  }
  EXPECT_TRUE(any_mem);
}

TEST_F(GeneratorTest, DeterministicPerSeed) {
  const Workload a = GenerateAlibabaLike(SmallOptions());
  const Workload b = GenerateAlibabaLike(SmallOptions());
  ASSERT_EQ(a.application_count(), b.application_count());
  ASSERT_EQ(a.container_count(), b.container_count());
  EXPECT_EQ(a.constraints().rule_count(), b.constraints().rule_count());
  for (std::size_t i = 0; i < a.application_count(); ++i) {
    EXPECT_EQ(a.applications()[i].containers.size(),
              b.applications()[i].containers.size());
    EXPECT_EQ(a.applications()[i].request, b.applications()[i].request);
    EXPECT_EQ(a.applications()[i].priority, b.applications()[i].priority);
  }
}

TEST_F(GeneratorTest, DifferentSeedsDiffer) {
  auto options = SmallOptions();
  const Workload a = GenerateAlibabaLike(options);
  options.seed = 43;
  const Workload b = GenerateAlibabaLike(options);
  bool any_difference =
      a.container_count() != b.container_count() ||
      a.constraints().rule_count() != b.constraints().rule_count();
  if (!any_difference) {
    for (std::size_t i = 0; i < a.application_count(); ++i) {
      if (a.applications()[i].containers.size() !=
          b.applications()[i].containers.size()) {
        any_difference = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST_F(GeneratorTest, HighPriorityAppsHaveLargerRequests) {
  const Workload wl = GenerateAlibabaLike(SmallOptions());
  double priority_sum = 0, priority_n = 0, normal_sum = 0, normal_n = 0;
  for (const auto& app : wl.applications()) {
    if (app.priority > 0) {
      priority_sum += static_cast<double>(app.request.cpu_millis());
      ++priority_n;
    } else {
      normal_sum += static_cast<double>(app.request.cpu_millis());
      ++normal_n;
    }
  }
  ASSERT_GT(priority_n, 0);
  ASSERT_GT(normal_n, 0);
  EXPECT_GT(priority_sum / priority_n, normal_sum / normal_n);
}

TEST_F(GeneratorTest, TinyScaleStillValid) {
  AlibabaTraceOptions options;
  options.scale = 0.002;  // ~26 apps
  const Workload wl = GenerateAlibabaLike(options);
  EXPECT_GE(wl.application_count(), 10u);
  EXPECT_GE(wl.container_count(), wl.application_count());
}

// ------------------------------------------------------------- arrival ----

class ArrivalTest : public ::testing::Test {
 protected:
  ArrivalTest() {
    AlibabaTraceOptions options;
    options.scale = 0.01;
    wl_ = GenerateAlibabaLike(options);
  }
  Workload wl_;
};

TEST_F(ArrivalTest, AllOrdersArePermutations) {
  for (ArrivalOrder order :
       {ArrivalOrder::kFifo, ArrivalOrder::kRandom,
        ArrivalOrder::kHighPriorityFirst, ArrivalOrder::kLowPriorityFirst,
        ArrivalOrder::kManyConflictsFirst, ArrivalOrder::kFewConflictsFirst}) {
    auto seq = MakeArrivalSequence(wl_, order);
    EXPECT_EQ(seq.size(), wl_.container_count());
    std::sort(seq.begin(), seq.end());
    for (std::size_t i = 0; i < seq.size(); ++i) {
      EXPECT_EQ(seq[i].value(), static_cast<std::int32_t>(i));
    }
  }
}

TEST_F(ArrivalTest, FifoIsIdentity) {
  const auto seq = MakeArrivalSequence(wl_, ArrivalOrder::kFifo);
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i].value(), static_cast<std::int32_t>(i));
  }
}

TEST_F(ArrivalTest, ChpSortsPrioritiesDescending) {
  const auto seq = MakeArrivalSequence(wl_, ArrivalOrder::kHighPriorityFirst);
  for (std::size_t i = 1; i < seq.size(); ++i) {
    EXPECT_GE(wl_.container(seq[i - 1]).priority,
              wl_.container(seq[i]).priority);
  }
}

TEST_F(ArrivalTest, ClpSortsPrioritiesAscending) {
  const auto seq = MakeArrivalSequence(wl_, ArrivalOrder::kLowPriorityFirst);
  for (std::size_t i = 1; i < seq.size(); ++i) {
    EXPECT_LE(wl_.container(seq[i - 1]).priority,
              wl_.container(seq[i]).priority);
  }
}

TEST_F(ArrivalTest, ClaSortsConflictMassDescending) {
  const auto seq = MakeArrivalSequence(wl_, ArrivalOrder::kManyConflictsFirst);
  const auto& apps = wl_.applications();
  auto mass = [&](ContainerId c) {
    return wl_.constraints().ConflictingContainerCount(wl_.container(c).app,
                                                       apps);
  };
  for (std::size_t i = 1; i < seq.size(); ++i) {
    EXPECT_GE(mass(seq[i - 1]), mass(seq[i]));
  }
}

TEST_F(ArrivalTest, CsaSortsConflictMassAscending) {
  const auto seq = MakeArrivalSequence(wl_, ArrivalOrder::kFewConflictsFirst);
  const auto& apps = wl_.applications();
  auto mass = [&](ContainerId c) {
    return wl_.constraints().ConflictingContainerCount(wl_.container(c).app,
                                                       apps);
  };
  for (std::size_t i = 1; i < seq.size(); ++i) {
    EXPECT_LE(mass(seq[i - 1]), mass(seq[i]));
  }
}

TEST_F(ArrivalTest, RandomIsSeedDeterministic) {
  const auto a = MakeArrivalSequence(wl_, ArrivalOrder::kRandom, 5);
  const auto b = MakeArrivalSequence(wl_, ArrivalOrder::kRandom, 5);
  const auto c = MakeArrivalSequence(wl_, ArrivalOrder::kRandom, 6);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(ArrivalOrderNames, AllDistinct) {
  EXPECT_STRNE(ArrivalOrderName(ArrivalOrder::kHighPriorityFirst),
               ArrivalOrderName(ArrivalOrder::kLowPriorityFirst));
  EXPECT_STRNE(ArrivalOrderName(ArrivalOrder::kManyConflictsFirst),
               ArrivalOrderName(ArrivalOrder::kFewConflictsFirst));
}

// ----------------------------------------------------------- serialize ----

TEST(Serialize, RoundTripPreservesEverything) {
  Workload original;
  const auto a = original.AddApplication("alpha", 3,
                                         ResourceVector::Cores(2, 4), 1, true);
  const auto b =
      original.AddApplication("beta,with comma", 1,
                              ResourceVector::Cores(16, 32), 3, false);
  const auto c = original.AddApplication("gamma", 5,
                                         ResourceVector(500, 100), 0, true);
  original.AddAntiAffinity(a, b);
  original.AddAntiAffinity(b, c);

  std::stringstream ss;
  SaveWorkload(original, ss);
  Workload loaded;
  ASSERT_TRUE(LoadWorkload(ss, loaded));

  ASSERT_EQ(loaded.application_count(), original.application_count());
  ASSERT_EQ(loaded.container_count(), original.container_count());
  for (std::size_t i = 0; i < original.application_count(); ++i) {
    const auto& lhs = original.applications()[i];
    const auto& rhs = loaded.applications()[i];
    EXPECT_EQ(lhs.name, rhs.name);
    EXPECT_EQ(lhs.containers.size(), rhs.containers.size());
    EXPECT_EQ(lhs.request, rhs.request);
    EXPECT_EQ(lhs.priority, rhs.priority);
    EXPECT_EQ(lhs.anti_affinity_within, rhs.anti_affinity_within);
  }
  EXPECT_EQ(loaded.constraints().rule_count(),
            original.constraints().rule_count());
  EXPECT_TRUE(loaded.constraints().Conflicts(a, b));
  EXPECT_TRUE(loaded.constraints().Conflicts(b, c));
  EXPECT_FALSE(loaded.constraints().Conflicts(a, c));
}

TEST(Serialize, GeneratedWorkloadRoundTrip) {
  AlibabaTraceOptions options;
  options.scale = 0.01;
  const Workload original = GenerateAlibabaLike(options);
  std::stringstream ss;
  SaveWorkload(original, ss);
  Workload loaded;
  ASSERT_TRUE(LoadWorkload(ss, loaded));
  EXPECT_EQ(loaded.container_count(), original.container_count());
  EXPECT_EQ(loaded.constraints().rule_count(),
            original.constraints().rule_count());
}

TEST(Serialize, RejectsMalformedRows) {
  {
    std::stringstream ss("#applications\n0,a,notanumber,1,1,0,0\n");
    Workload out;
    EXPECT_FALSE(LoadWorkload(ss, out));
  }
  {
    std::stringstream ss("#applications\n5,a,1,1,1,0,0\n");  // non-dense id
    Workload out;
    EXPECT_FALSE(LoadWorkload(ss, out));
  }
  {
    std::stringstream ss("#applications\n0,a,1,1,1,0,0\n#rules\n0,9\n");
    Workload out;
    EXPECT_FALSE(LoadWorkload(ss, out));  // rule references unknown app
  }
  {
    std::stringstream ss("0,a,1,1,1,0,0\n");  // data before a section header
    Workload out;
    EXPECT_FALSE(LoadWorkload(ss, out));
  }
}

TEST(Serialize, EmptyInputIsEmptyWorkload) {
  std::stringstream ss("");
  Workload out;
  EXPECT_TRUE(LoadWorkload(ss, out));
  EXPECT_EQ(out.application_count(), 0u);
}

// ----------------------------------------------------- topology (de)ser ----

TEST(SerializeTopology, RoundTripHeterogeneous) {
  cluster::Topology original;
  const auto g0 = original.AddSubCluster();
  const auto r0 = original.AddRack(g0);
  original.AddMachine(r0, ResourceVector::Cores(32, 64));
  original.AddMachine(r0, ResourceVector::Cores(64, 128));
  const auto r1 = original.AddRack(g0);
  original.AddMachine(r1, ResourceVector::Cores(16, 32));
  const auto g1 = original.AddSubCluster();
  const auto r2 = original.AddRack(g1);
  original.AddMachine(r2, ResourceVector(500, 100));

  std::stringstream ss;
  SaveTopology(original, ss);
  cluster::Topology loaded;
  ASSERT_TRUE(LoadTopology(ss, loaded));

  ASSERT_EQ(loaded.machine_count(), original.machine_count());
  EXPECT_EQ(loaded.rack_count(), original.rack_count());
  EXPECT_EQ(loaded.subcluster_count(), original.subcluster_count());
  for (std::size_t i = 0; i < original.machine_count(); ++i) {
    const auto& a = original.machines()[i];
    const auto& b = loaded.machines()[i];
    EXPECT_EQ(a.capacity, b.capacity);
    EXPECT_EQ(a.rack, b.rack);
    EXPECT_EQ(a.subcluster, b.subcluster);
  }
}

TEST(SerializeTopology, RoundTripGenerated) {
  const cluster::Topology original = MakeHeterogeneousCluster(120);
  std::stringstream ss;
  SaveTopology(original, ss);
  cluster::Topology loaded;
  ASSERT_TRUE(LoadTopology(ss, loaded));
  EXPECT_EQ(loaded.machine_count(), 120u);
  EXPECT_EQ(loaded.TotalCapacity(), original.TotalCapacity());
}

TEST(SerializeTopology, RejectsMalformed) {
  {
    std::stringstream ss("#machines\n0,0,notanumber,1\n");
    cluster::Topology out;
    EXPECT_FALSE(LoadTopology(ss, out));
  }
  {
    std::stringstream ss("0,0,1000,1024\n");  // missing section header
    cluster::Topology out;
    EXPECT_FALSE(LoadTopology(ss, out));
  }
  {
    std::stringstream ss("#machines\n0,5,1000,1024\n");  // non-dense rack
    cluster::Topology out;
    EXPECT_FALSE(LoadTopology(ss, out));
  }
}

// --------------------------------------------------------------- stats ----

TEST(TraceStats, HandBuiltWorkload) {
  Workload wl;
  const auto a = wl.AddApplication("a", 1, ResourceVector::Cores(1, 2));
  const auto b =
      wl.AddApplication("b", 60, ResourceVector::Cores(2, 4), 1, true);
  wl.AddApplication("c", 2, ResourceVector::Cores(16, 32), 0, false);
  wl.AddAntiAffinity(a, b);
  const WorkloadStats stats = ComputeWorkloadStats(wl, /*heavy=*/50);
  EXPECT_EQ(stats.applications, 3u);
  EXPECT_EQ(stats.containers, 63u);
  EXPECT_EQ(stats.single_instance_apps, 1u);
  EXPECT_EQ(stats.apps_below_50, 2u);
  EXPECT_EQ(stats.max_app_size, 60u);
  EXPECT_EQ(stats.apps_with_anti_affinity, 2u);  // a (cross) and b (within)
  EXPECT_EQ(stats.apps_with_priority, 1u);
  EXPECT_EQ(stats.max_request.cpu_millis(), 16000);
  // a conflicts with 60 containers of b -> heavy at threshold 50;
  // b conflicts with 1 (a) + 59 siblings = 60 -> heavy too.
  EXPECT_EQ(stats.heavy_conflicter_apps, 2u);
  ASSERT_FALSE(stats.app_size_cdf.empty());
  EXPECT_DOUBLE_EQ(stats.app_size_cdf.back().fraction, 1.0);
}

}  // namespace
}  // namespace aladdin::trace

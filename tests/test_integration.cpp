// Cross-scheduler integration and property tests: every engine run against
// generated workloads (parameterised over seeds and arrival orders) with
// invariants recounted by the independent auditor.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <set>
#include <sstream>

#include "baselines/firmament/scheduler.h"
#include "baselines/gokube/scheduler.h"
#include "baselines/medea/scheduler.h"
#include "cluster/audit.h"
#include "core/scheduler.h"
#include "sim/experiment.h"
#include "sim/metrics.h"
#include "trace/serialize.h"

namespace aladdin {
namespace {

constexpr double kScale = 0.02;

std::vector<std::unique_ptr<sim::Scheduler>> AllSchedulers() {
  std::vector<std::unique_ptr<sim::Scheduler>> out;
  out.push_back(std::make_unique<core::AladdinScheduler>());
  {
    baselines::FirmamentOptions fo;
    fo.reschd = 8;
    out.push_back(std::make_unique<baselines::FirmamentScheduler>(fo));
  }
  {
    baselines::MedeaOptions mo;
    mo.weights = {1, 1, 0};
    mo.local_search.max_iterations = 2000;
    out.push_back(std::make_unique<baselines::MedeaScheduler>(mo));
  }
  out.push_back(std::make_unique<baselines::GoKubeScheduler>());
  return out;
}

class SeededIntegrationTest : public ::testing::TestWithParam<int> {};

TEST_P(SeededIntegrationTest, AllSchedulersKeepInvariants) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const trace::Workload wl = sim::MakeBenchWorkload(kScale, seed);
  sim::ExperimentConfig config;
  config.machines = sim::BenchMachineCount(kScale);
  config.order = trace::ArrivalOrder::kRandom;

  for (const auto& scheduler : AllSchedulers()) {
    const sim::RunMetrics m = sim::RunExperiment(*scheduler, wl, config);
    // Accounting: every container is placed or reported unplaced.
    EXPECT_EQ(m.audit.placed + m.audit.unplaced, wl.container_count())
        << scheduler->name();
    EXPECT_EQ(m.audit.unplaced, m.outcome.unplaced.size())
        << scheduler->name();
    // Cause attribution partitions the unplaced set.
    EXPECT_EQ(m.audit.unplaced_resources + m.audit.unplaced_anti_affinity +
                  m.audit.unplaced_scheduler,
              m.audit.unplaced)
        << scheduler->name();
    EXPECT_LE(m.used_machines, config.machines) << scheduler->name();
  }
}

TEST_P(SeededIntegrationTest, AladdinZeroViolationsEveryOrder) {
  // The headline claim: Aladdin deploys every container without a single
  // constraint violation, regardless of the arrival characteristic.
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const trace::Workload wl = sim::MakeBenchWorkload(kScale, seed);
  sim::ExperimentConfig config;
  config.machines = sim::BenchMachineCount(kScale);
  for (trace::ArrivalOrder order : trace::kCharacteristicOrders) {
    config.order = order;
    core::AladdinScheduler scheduler;
    const sim::RunMetrics m = sim::RunExperiment(scheduler, wl, config);
    EXPECT_EQ(m.audit.unplaced, 0u) << trace::ArrivalOrderName(order);
    EXPECT_EQ(m.audit.colocation_violations, 0u)
        << trace::ArrivalOrderName(order);
    EXPECT_DOUBLE_EQ(m.audit.ViolationPercent(), 0.0)
        << trace::ArrivalOrderName(order);
  }
}

TEST_P(SeededIntegrationTest, NoSchedulerBeatsAladdinWhilePlacingAll) {
  // Resource efficiency (Fig. 10): any scheduler that places every
  // container needs at least as many machines as Aladdin (small slack for
  // heuristic noise).
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const trace::Workload wl = sim::MakeBenchWorkload(kScale, seed);
  sim::ExperimentConfig config;
  config.machines = sim::BenchMachineCount(kScale);
  config.order = trace::ArrivalOrder::kRandom;

  core::AladdinScheduler aladdin;
  const sim::RunMetrics reference = sim::RunExperiment(aladdin, wl, config);
  ASSERT_EQ(reference.audit.unplaced, 0u);
  for (const auto& scheduler : AllSchedulers()) {
    const sim::RunMetrics m = sim::RunExperiment(*scheduler, wl, config);
    if (m.audit.unplaced > 0) continue;  // incomplete placements excluded
    EXPECT_GE(m.used_machines + 5, reference.used_machines)
        << scheduler->name();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededIntegrationTest,
                         ::testing::Values(42, 7, 99));

TEST(Integration, SchedulersAreDeterministic) {
  const trace::Workload wl = sim::MakeBenchWorkload(kScale, 42);
  sim::ExperimentConfig config;
  config.machines = sim::BenchMachineCount(kScale);
  config.order = trace::ArrivalOrder::kRandom;
  for (const auto& scheduler : AllSchedulers()) {
    const sim::RunMetrics a = sim::RunExperiment(*scheduler, wl, config);
    const sim::RunMetrics b = sim::RunExperiment(*scheduler, wl, config);
    EXPECT_EQ(a.audit.placed, b.audit.placed) << scheduler->name();
    EXPECT_EQ(a.used_machines, b.used_machines) << scheduler->name();
    EXPECT_EQ(a.migrations, b.migrations) << scheduler->name();
  }
}

TEST(Integration, SerializedWorkloadSchedulesIdentically) {
  const trace::Workload original = sim::MakeBenchWorkload(kScale, 42);
  std::stringstream ss;
  trace::SaveWorkload(original, ss);
  trace::Workload loaded;
  ASSERT_TRUE(trace::LoadWorkload(ss, loaded));

  sim::ExperimentConfig config;
  config.machines = sim::BenchMachineCount(kScale);
  config.order = trace::ArrivalOrder::kFifo;
  core::AladdinScheduler s1, s2;
  const sim::RunMetrics a = sim::RunExperiment(s1, original, config);
  const sim::RunMetrics b = sim::RunExperiment(s2, loaded, config);
  EXPECT_EQ(a.used_machines, b.used_machines);
  EXPECT_EQ(a.audit.placed, b.audit.placed);
  EXPECT_EQ(a.migrations, b.migrations);
}

TEST(Integration, EfficiencyEquation10) {
  // Eq. 10 sanity on real runs: the best scheduler scores 0, others >= 0.
  const trace::Workload wl = sim::MakeBenchWorkload(kScale, 42);
  sim::ExperimentConfig config;
  config.machines = sim::BenchMachineCount(kScale);
  config.order = trace::ArrivalOrder::kRandom;
  std::vector<sim::RunMetrics> all;
  for (const auto& scheduler : AllSchedulers()) {
    all.push_back(sim::RunExperiment(*scheduler, wl, config));
  }
  std::size_t best = all[0].used_machines;
  for (const auto& m : all) best = std::min(best, m.used_machines);
  bool someone_is_best = false;
  for (const auto& m : all) {
    const double eff = m.EfficiencyVs(best);
    EXPECT_GE(eff, 0.0);
    if (eff == 0.0) someone_is_best = true;
  }
  EXPECT_TRUE(someone_is_best);
}

TEST(Integration, MemoryDimensionEnforcedWhenEnabled) {
  // With cpu_only=false, the second dimension binds: machines can run out
  // of memory before CPU and no scheduler may overcommit either dimension.
  trace::AlibabaTraceOptions options;
  options.scale = kScale;
  options.cpu_only = false;
  const trace::Workload wl = trace::GenerateAlibabaLike(options);
  sim::ExperimentConfig config;
  config.machines = sim::BenchMachineCount(kScale);
  config.order = trace::ArrivalOrder::kRandom;
  for (const auto& scheduler : AllSchedulers()) {
    const sim::RunMetrics m = sim::RunExperiment(*scheduler, wl, config);
    // VerifyResourceInvariant (checked inside RunExperimentOn via logging)
    // covers both dimensions; re-assert placement accounting here.
    EXPECT_EQ(m.audit.placed + m.audit.unplaced, wl.container_count())
        << scheduler->name();
  }
}

TEST(Integration, RunSweepMatchesSerialExecution) {
  // The parallel sweep helper must produce exactly what serial runs do.
  const trace::Workload wl = sim::MakeBenchWorkload(0.01, 42);
  sim::ExperimentConfig config;
  config.machines = sim::BenchMachineCount(0.01);
  config.order = trace::ArrivalOrder::kRandom;

  std::vector<std::function<sim::RunMetrics()>> jobs;
  for (int i = 0; i < 4; ++i) {
    jobs.emplace_back([&wl, config] {
      core::AladdinScheduler scheduler;
      return sim::RunExperiment(scheduler, wl, config);
    });
  }
  const auto parallel = sim::RunSweep(std::move(jobs), 3);
  core::AladdinScheduler reference_scheduler;
  const sim::RunMetrics reference =
      sim::RunExperiment(reference_scheduler, wl, config);
  ASSERT_EQ(parallel.size(), 4u);
  for (const auto& m : parallel) {
    EXPECT_EQ(m.used_machines, reference.used_machines);
    EXPECT_EQ(m.audit.placed, reference.audit.placed);
    EXPECT_EQ(m.migrations, reference.migrations);
  }
}

TEST(Integration, HeterogeneousClusterKeepsAladdinClean) {
  // §VII future work: mixed-SKU machines; the capacity function never
  // assumed homogeneity, so zero violations must carry over.
  const trace::Workload wl = sim::MakeBenchWorkload(kScale, 42);
  const cluster::Topology topo =
      trace::MakeHeterogeneousCluster(sim::BenchMachineCount(kScale));
  core::AladdinScheduler scheduler;
  const sim::RunMetrics m = sim::RunExperimentOn(
      scheduler, wl, topo, trace::ArrivalOrder::kRandom, 1);
  EXPECT_EQ(m.audit.unplaced, 0u);
  EXPECT_EQ(m.audit.colocation_violations, 0u);
}

TEST(Integration, HeterogeneousClusterShape) {
  const cluster::Topology topo = trace::MakeHeterogeneousCluster(200);
  EXPECT_EQ(topo.machine_count(), 200u);
  // The SKU mix has more capacity than 200 homogeneous 32-core machines.
  EXPECT_GT(topo.TotalCapacity().cpu_millis(), 200 * 32000);
  // Deterministic per seed.
  const cluster::Topology again = trace::MakeHeterogeneousCluster(200);
  for (std::size_t i = 0; i < 200; ++i) {
    EXPECT_EQ(topo.machines()[i].capacity, again.machines()[i].capacity);
  }
}

TEST(Integration, MemoryDimensionVariesPerContainer) {
  // With cpu_only=false the generator emits varied memory-per-core ratios,
  // so the second dimension genuinely binds for part of the population.
  trace::AlibabaTraceOptions options;
  options.scale = 0.01;
  options.cpu_only = false;
  const trace::Workload wl = trace::GenerateAlibabaLike(options);
  std::set<std::int64_t> ratios;
  for (const auto& c : wl.containers()) {
    if (c.request.cpu_millis() > 0 && c.request.mem_mib() < 32 * 1024) {
      ratios.insert(c.request.mem_mib() * 1000 / c.request.cpu_millis());
    }
  }
  EXPECT_GE(ratios.size(), 2u);
}

TEST(Integration, LatencyMetricPopulated) {
  const trace::Workload wl = sim::MakeBenchWorkload(0.01, 99);
  sim::ExperimentConfig config;
  config.machines = sim::BenchMachineCount(0.01);
  core::AladdinScheduler scheduler;
  const sim::RunMetrics m = sim::RunExperiment(scheduler, wl, config);
  EXPECT_GT(m.wall_seconds, 0.0);
  EXPECT_GT(m.latency_ms_per_container, 0.0);
  EXPECT_NEAR(m.latency_ms_per_container,
              m.wall_seconds * 1e3 / static_cast<double>(wl.container_count()),
              1e-9);
}

}  // namespace
}  // namespace aladdin

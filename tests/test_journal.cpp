// Decision provenance journal: serial-vs-parallel bit-identity of the JSONL
// stream, ring wraparound accounting, JSON round-trips, the guarantee that
// every unplaced container carries a structured (non-catch-all) cause, sink
// draining at tick boundaries, and the crash-time flight recorder.
#include <array>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "baselines/gokube/scheduler.h"
#include "common/check.h"
#include "core/scheduler.h"
#include "obs/journal.h"
#include "obs/runtime.h"
#include "sim/experiment.h"
#include "trace/alibaba_gen.h"
#include "trace/arrival.h"
#include "trace/workload.h"

namespace aladdin {
namespace {

using cluster::ResourceVector;
using cluster::Topology;
using trace::Workload;

// Journal state is process-global (like the metrics registry): every test
// starts from a fresh StartJournal and tears the mode bit down so a failing
// test cannot leak an armed journal into the next one.
class JournalTest : public ::testing::Test {
 protected:
  void TearDown() override {
    (void)obs::FinishJournal();
  }
};

obs::Decision MakeDecision(std::uint64_t seq) {
  obs::Decision d;
  d.seq = seq;
  d.tick = 7;
  d.kind = obs::DecisionKind::kMigrate;
  d.cause = obs::Cause::kMigratedForRepair;
  d.container = 42;
  d.machine = 3;
  d.other = 9;
  d.detail = -12345;
  return d;
}

// --- cause / kind vocabulary -------------------------------------------------

TEST(JournalVocabulary, CauseNamesRoundTripAndStayClosed) {
  for (std::size_t i = 0; i < static_cast<std::size_t>(obs::Cause::kCount);
       ++i) {
    const auto cause = static_cast<obs::Cause>(i);
    const std::string name = obs::CauseName(cause);
    EXPECT_NE(name, "?") << "cause " << i << " has no name";
    EXPECT_EQ(obs::CauseFromName(name), cause) << name;
  }
  EXPECT_EQ(obs::CauseFromName("not_a_cause"), obs::Cause::kCount);
  EXPECT_STREQ(obs::CauseName(obs::Cause::kCount), "?");
}

TEST(JournalVocabulary, DecisionKindNames) {
  for (std::size_t i = 0;
       i < static_cast<std::size_t>(obs::DecisionKind::kCount); ++i) {
    EXPECT_STRNE(obs::DecisionKindName(static_cast<obs::DecisionKind>(i)),
                 "?");
  }
}

// --- JSON round trip ---------------------------------------------------------

TEST(JournalJson, DecisionRoundTripsThroughJsonl) {
  const obs::Decision original = MakeDecision(123456789);
  const std::string line = obs::DecisionToJson(original);
  obs::Decision parsed;
  ASSERT_TRUE(obs::DecisionFromJson(line, &parsed)) << line;
  EXPECT_EQ(parsed.seq, original.seq);
  EXPECT_EQ(parsed.tick, original.tick);
  EXPECT_EQ(parsed.kind, original.kind);
  EXPECT_EQ(parsed.cause, original.cause);
  EXPECT_EQ(parsed.container, original.container);
  EXPECT_EQ(parsed.machine, original.machine);
  EXPECT_EQ(parsed.other, original.other);
  EXPECT_EQ(parsed.detail, original.detail);
}

TEST(JournalJson, MalformedLinesAreRejected) {
  obs::Decision d;
  EXPECT_FALSE(obs::DecisionFromJson("", &d));
  EXPECT_FALSE(obs::DecisionFromJson("{}", &d));
  EXPECT_FALSE(obs::DecisionFromJson(
      "{\"seq\":1,\"tick\":0,\"kind\":\"place\",\"cause\":\"bogus\","
      "\"container\":1,\"machine\":1,\"other\":-1,\"detail\":0}",
      &d));
  EXPECT_FALSE(obs::DecisionFromJson(
      "{\"seq\":1,\"tick\":0,\"kind\":\"bogus\",\"cause\":\"none\","
      "\"container\":1,\"machine\":1,\"other\":-1,\"detail\":0}",
      &d));
  // Missing a required field.
  EXPECT_FALSE(obs::DecisionFromJson(
      "{\"seq\":1,\"kind\":\"place\",\"cause\":\"none\","
      "\"container\":1,\"machine\":1,\"other\":-1,\"detail\":0}",
      &d));
}

// --- unplaced causes (always on, journal armed or not) -----------------------

TEST(UnplacedCauses, AladdinDiagnosesCapacityExhaustion) {
  // 5 x 32-core containers onto 3 x 32-core machines: two must strand, and
  // no machine has the CPU headroom for them.
  Workload wl;
  wl.AddApplication("big", 5, ResourceVector::Cores(32, 64));
  const Topology topo = Topology::Uniform(3, ResourceVector::Cores(32, 64));
  core::AladdinScheduler scheduler;
  const auto arrival =
      trace::MakeArrivalSequence(wl, trace::ArrivalOrder::kFifo);
  auto state = wl.MakeState(topo);
  sim::ScheduleRequest request{&wl, &arrival};
  const auto outcome = scheduler.Schedule(request, state);
  ASSERT_EQ(outcome.unplaced.size(), 2u);
  ASSERT_EQ(outcome.unplaced_causes.size(), outcome.unplaced.size());
  for (const obs::Cause cause : outcome.unplaced_causes) {
    EXPECT_EQ(cause, obs::Cause::kCapacityExhaustedCpu);
  }
}

TEST(UnplacedCauses, AladdinDiagnosesMemoryExhaustion) {
  // Memory hogs leave plenty of CPU but no memory for the victims.
  Workload wl;
  wl.AddApplication("hog", 3, ResourceVector::Cores(1, 60));
  wl.AddApplication("victim", 2, ResourceVector::Cores(1, 32));
  const Topology topo = Topology::Uniform(3, ResourceVector::Cores(32, 64));
  core::AladdinScheduler scheduler;
  const auto arrival =
      trace::MakeArrivalSequence(wl, trace::ArrivalOrder::kFifo);
  auto state = wl.MakeState(topo);
  sim::ScheduleRequest request{&wl, &arrival};
  const auto outcome = scheduler.Schedule(request, state);
  ASSERT_EQ(outcome.unplaced.size(), 2u);
  ASSERT_EQ(outcome.unplaced_causes.size(), 2u);
  for (const obs::Cause cause : outcome.unplaced_causes) {
    EXPECT_EQ(cause, obs::Cause::kCapacityExhaustedMem);
  }
}

TEST(UnplacedCauses, AladdinDiagnosesIntraAppAntiAffinity) {
  // 5 self-anti-affine replicas on 3 machines: two strand with their own
  // application blocking every machine (resources are ample).
  Workload wl;
  wl.AddApplication("web", 5, ResourceVector::Cores(2, 4), 1, true);
  const Topology topo = Topology::Uniform(3, ResourceVector::Cores(32, 64));
  core::AladdinScheduler scheduler;
  const auto arrival =
      trace::MakeArrivalSequence(wl, trace::ArrivalOrder::kFifo);
  auto state = wl.MakeState(topo);
  sim::ScheduleRequest request{&wl, &arrival};
  const auto outcome = scheduler.Schedule(request, state);
  ASSERT_EQ(outcome.unplaced.size(), 2u);
  ASSERT_EQ(outcome.unplaced_causes.size(), 2u);
  for (const obs::Cause cause : outcome.unplaced_causes) {
    EXPECT_EQ(cause, obs::Cause::kAntiAffinityIntraApp);
  }
}

TEST(UnplacedCauses, EveryUnplacedContainerGetsANonCatchAllCause) {
  // Undersized cluster at trace scale: whatever strands must carry a
  // specific diagnosis, never kNone / kNoAdmissiblePath / the baseline
  // catch-all — the acceptance bar for explain.py --why-unplaced.
  trace::AlibabaTraceOptions options;
  options.scale = 0.01;
  const Workload wl = trace::GenerateAlibabaLike(options);
  const Topology topo =
      trace::MakeAlibabaCluster(sim::BenchMachineCount(0.01) / 2);
  core::AladdinScheduler scheduler;
  const auto arrival =
      trace::MakeArrivalSequence(wl, trace::ArrivalOrder::kRandom);
  auto state = wl.MakeState(topo);
  sim::ScheduleRequest request{&wl, &arrival};
  const auto outcome = scheduler.Schedule(request, state);
  ASSERT_GT(outcome.unplaced.size(), 0u) << "halved cluster still fit all";
  ASSERT_EQ(outcome.unplaced_causes.size(), outcome.unplaced.size());
  for (std::size_t i = 0; i < outcome.unplaced.size(); ++i) {
    const obs::Cause cause = outcome.unplaced_causes[i];
    EXPECT_NE(cause, obs::Cause::kNone) << "container " << i;
    EXPECT_NE(cause, obs::Cause::kNoAdmissiblePath) << "container " << i;
    EXPECT_NE(cause, obs::Cause::kBaselineUnplaced) << "container " << i;
  }
}

TEST(UnplacedCauses, BaselinesReportTheCatchAllCause) {
  Workload wl;
  wl.AddApplication("big", 5, ResourceVector::Cores(32, 64));
  const Topology topo = Topology::Uniform(3, ResourceVector::Cores(32, 64));
  baselines::GoKubeScheduler scheduler;
  const auto arrival =
      trace::MakeArrivalSequence(wl, trace::ArrivalOrder::kFifo);
  auto state = wl.MakeState(topo);
  sim::ScheduleRequest request{&wl, &arrival};
  const auto outcome = scheduler.Schedule(request, state);
  ASSERT_GT(outcome.unplaced.size(), 0u);
  ASSERT_EQ(outcome.unplaced_causes.size(), outcome.unplaced.size());
  for (const obs::Cause cause : outcome.unplaced_causes) {
    EXPECT_EQ(cause, obs::Cause::kBaselineUnplaced);
  }
}

// Everything below emits through EmitDecision, which an ALADDIN_OBS=OFF
// build compiles to a no-op (JournalEnabled() is constant false there).
#if ALADDIN_OBS_ENABLED

// --- ring mechanics ----------------------------------------------------------

TEST_F(JournalTest, RingWraparoundKeepsNewestAndCountsDrops) {
  obs::JournalOptions options;
  options.ring_capacity = 8;
  obs::StartJournal(options);
  for (int i = 0; i < 100; ++i) {
    obs::EmitDecision(obs::DecisionKind::kEvent, obs::Cause::kNone,
                      /*container=*/i);
  }
  obs::StopJournal();
  const std::vector<obs::Decision> kept = obs::JournalSnapshot();
  ASSERT_EQ(kept.size(), 8u);
  // The newest 8 survive, in ascending seq order.
  for (std::size_t k = 0; k < kept.size(); ++k) {
    EXPECT_EQ(kept[k].seq, 92u + k);
    EXPECT_EQ(kept[k].container, static_cast<std::int32_t>(92 + k));
  }
  EXPECT_EQ(obs::DroppedJournalDecisions(), 92u);
  EXPECT_EQ(obs::EmittedJournalDecisions(), 100u);
}

TEST_F(JournalTest, DisarmedJournalEmitsNothing) {
  obs::StartJournal();
  obs::StopJournal();
  obs::EmitDecision(obs::DecisionKind::kEvent, obs::Cause::kNone, 1);
  EXPECT_TRUE(obs::JournalSnapshot().empty());
  EXPECT_EQ(obs::EmittedJournalDecisions(), 0u);
}

// --- sink draining -----------------------------------------------------------

TEST_F(JournalTest, TickBoundariesDrainToTheSink) {
  const std::string path = ::testing::TempDir() + "/journal_sink.jsonl";
  obs::JournalOptions options;
  options.ring_capacity = 4;  // tiny: only draining prevents wraparound
  options.jsonl_path = path;
  obs::StartJournal(options);
  for (std::int64_t tick = 1; tick <= 5; ++tick) {
    obs::SetJournalTick(tick);  // drains the previous tick's records
    for (int i = 0; i < 4; ++i) {
      obs::EmitDecision(obs::DecisionKind::kEvent, obs::Cause::kNone,
                        /*container=*/static_cast<std::int32_t>(tick));
    }
  }
  ASSERT_TRUE(obs::FinishJournal());
  EXPECT_EQ(obs::DroppedJournalDecisions(), 0u);
  EXPECT_EQ(obs::EmittedJournalDecisions(), 20u);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::uint64_t expected_seq = 0;
  std::int64_t last_tick = 0;
  while (std::getline(in, line)) {
    obs::Decision d;
    ASSERT_TRUE(obs::DecisionFromJson(line, &d)) << line;
    EXPECT_EQ(d.seq, expected_seq++);  // seq-ordered across drains
    EXPECT_GE(d.tick, last_tick);      // ticks monotone non-decreasing
    last_tick = d.tick;
  }
  EXPECT_EQ(expected_seq, 20u);
}

// --- determinism across thread counts ---------------------------------------

std::string RunJournalled(int threads, const Workload& wl,
                          const Topology& topo,
                          const std::vector<cluster::ContainerId>& arrival) {
  obs::StartJournal();  // flight-recorder mode: everything stays buffered
  core::AladdinOptions options;
  options.threads = threads;
  core::AladdinScheduler scheduler(options);
  auto state = wl.MakeState(topo);
  sim::ScheduleRequest request{&wl, &arrival};
  scheduler.Schedule(request, state);
  obs::StopJournal();
  std::string jsonl = obs::JournalToJsonl();
  EXPECT_EQ(obs::DroppedJournalDecisions(), 0u);
  return jsonl;
}

TEST_F(JournalTest, JsonlBitIdenticalSerialVsEightThreads) {
  trace::AlibabaTraceOptions options;
  options.scale = 0.01;
  const Workload wl = trace::GenerateAlibabaLike(options);
  // Undersized so the stream includes rejections, repairs and give-ups,
  // not just direct admissions.
  const Topology topo =
      trace::MakeAlibabaCluster(sim::BenchMachineCount(0.01) * 3 / 4);
  const auto arrival =
      trace::MakeArrivalSequence(wl, trace::ArrivalOrder::kRandom);
  const std::string serial = RunJournalled(1, wl, topo, arrival);
  const std::string parallel = RunJournalled(8, wl, topo, arrival);
  ASSERT_FALSE(serial.empty());
  // All emission sites sit in serial pipeline sections, so the global seq
  // is assigned in program order and the streams match byte for byte.
  EXPECT_EQ(serial, parallel);
}

// --- provenance completeness -------------------------------------------------

TEST_F(JournalTest, TerminalRecordsAgreeWithFinalState) {
  trace::AlibabaTraceOptions options;
  options.scale = 0.01;
  const Workload wl = trace::GenerateAlibabaLike(options);
  const Topology topo =
      trace::MakeAlibabaCluster(sim::BenchMachineCount(0.01) * 3 / 4);
  const auto arrival =
      trace::MakeArrivalSequence(wl, trace::ArrivalOrder::kRandom);

  obs::StartJournal();
  core::AladdinScheduler scheduler;
  auto state = wl.MakeState(topo);
  sim::ScheduleRequest request{&wl, &arrival};
  const auto outcome = scheduler.Schedule(request, state);
  obs::StopJournal();
  ASSERT_EQ(obs::DroppedJournalDecisions(), 0u);

  // Replay the stream the way tools/explain.py does: the last terminal
  // record per container decides its fate.
  enum class Fate { kUnknown, kPlaced, kUnplaced };
  std::vector<Fate> fate(wl.container_count(), Fate::kUnknown);
  std::vector<std::int32_t> on(wl.container_count(), -1);
  for (const obs::Decision& d : obs::JournalSnapshot()) {
    if (d.container < 0 ||
        d.container >= static_cast<std::int32_t>(fate.size())) {
      continue;
    }
    switch (d.kind) {
      case obs::DecisionKind::kPlace:
      case obs::DecisionKind::kMigrate:
        fate[d.container] = Fate::kPlaced;
        on[d.container] = d.machine;
        break;
      case obs::DecisionKind::kPreempt:
      case obs::DecisionKind::kUnplaced:
        fate[d.container] = Fate::kUnplaced;
        on[d.container] = -1;
        break;
      default:
        break;  // rejections and events are not terminal
    }
  }
  for (const auto& c : wl.containers()) {
    const auto i = static_cast<std::size_t>(c.id.value());
    if (state.IsPlaced(c.id)) {
      EXPECT_EQ(fate[i], Fate::kPlaced) << "container " << i;
      EXPECT_EQ(on[i], state.PlacementOf(c.id).value()) << "container " << i;
    } else {
      EXPECT_EQ(fate[i], Fate::kUnplaced) << "container " << i;
    }
  }
  // And every give-up in the outcome produced a kUnplaced record.
  std::set<std::int32_t> journalled_unplaced;
  for (const obs::Decision& d : obs::JournalSnapshot()) {
    if (d.kind == obs::DecisionKind::kUnplaced) {
      EXPECT_NE(d.cause, obs::Cause::kNone);
      journalled_unplaced.insert(d.container);
    }
  }
  for (const auto c : outcome.unplaced) {
    EXPECT_EQ(journalled_unplaced.count(c.value()), 1u)
        << "container " << c.value() << " missing its terminal record";
  }
}

// --- crash flight recorder ---------------------------------------------------

TEST_F(JournalTest, CheckFailureDumpsFlightRecorder) {
  const std::string sink = ::testing::TempDir() + "/journal_crash.jsonl";
  const std::string crash = sink + ".crash";
  std::remove(crash.c_str());
  EXPECT_DEATH(
      {
        obs::JournalOptions options;
        options.jsonl_path = sink;
        obs::StartJournal(options);
        obs::EmitDecision(obs::DecisionKind::kPlace,
                          obs::Cause::kAdmittedDirect, /*container=*/7,
                          /*machine=*/2);
        obs::EmitDecision(obs::DecisionKind::kUnplaced,
                          obs::Cause::kCapacityExhaustedCpu,
                          /*container=*/8);
        ALADDIN_CHECK(false) << "induced crash for the flight recorder";
      },
      "induced crash for the flight recorder");
  // The dying process left its last decisions next to the sink.
  std::ifstream in(crash);
  ASSERT_TRUE(in.good()) << crash << " was not written by the check hook";
  std::vector<obs::Decision> dumped;
  std::string line;
  while (std::getline(in, line)) {
    obs::Decision d;
    ASSERT_TRUE(obs::DecisionFromJson(line, &d)) << line;
    dumped.push_back(d);
  }
  ASSERT_EQ(dumped.size(), 2u);
  EXPECT_EQ(dumped[0].kind, obs::DecisionKind::kPlace);
  EXPECT_EQ(dumped[0].container, 7);
  EXPECT_EQ(dumped[1].cause, obs::Cause::kCapacityExhaustedCpu);
}

#endif  // ALADDIN_OBS_ENABLED

}  // namespace
}  // namespace aladdin

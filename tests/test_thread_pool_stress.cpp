// ThreadPool / ParallelFor stress tests.
//
// These are the TSan workhorses: every historically racy window in the pool
// (the pop/in_flight_ handoff that Wait() observes, concurrent Submit vs
// Wait, shutdown with a hot queue) is hammered here with enough iterations
// that ThreadSanitizer reliably interleaves the contending threads. The
// suite must stay green under `cmake --preset tsan`.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <future>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "flow/max_flow.h"
#include "flow/workspace.h"

namespace aladdin {

// Friend of ThreadPool: flips the shutdown flag as if a destructor had
// started, so the Submit-after-shutdown precondition is testable without
// racing object lifetime.
struct ThreadPoolTestPeer {
  static void BeginShutdown(ThreadPool& pool) {
    MutexLock lock(pool.mutex_);
    pool.stopping_ = true;
    pool.cv_.notify_all();
  }
};

namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 1000; ++i) {
    futures.push_back(pool.Submit([&] { ran.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(ran.load(), 1000);
}

TEST(ThreadPool, WaitObservesAllPriorWork) {
  // The classic missed-wakeup shape: Wait() must never return while a task
  // sits in the window between queue pop and in_flight_ increment. Both
  // happen under one lock acquisition; this would flake (and TSan would
  // flag the counter) if that ever regressed.
  ThreadPool pool(4);
  for (int round = 0; round < 200; ++round) {
    std::atomic<int> done{0};
    const int tasks = 16;
    for (int i = 0; i < tasks; ++i) {
      pool.Submit([&] { done.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(done.load(), tasks) << "Wait returned with work in flight";
  }
}

TEST(ThreadPool, ConcurrentSubmittersAndWaiters) {
  ThreadPool pool(4);
  std::atomic<int> executed{0};
  const int submitters = 4;
  const int per_submitter = 250;
  std::vector<std::thread> threads;
  threads.reserve(submitters + 1);
  for (int s = 0; s < submitters; ++s) {
    threads.emplace_back([&] {
      for (int i = 0; i < per_submitter; ++i) {
        pool.Submit([&] { executed.fetch_add(1); });
      }
    });
  }
  // A waiter thread polling Wait() concurrently with live submitters: each
  // return only promises that previously-submitted work finished, and must
  // never deadlock or tear pool state.
  threads.emplace_back([&] {
    for (int i = 0; i < 50; ++i) pool.Wait();
  });
  for (auto& t : threads) t.join();
  pool.Wait();
  EXPECT_EQ(executed.load(), submitters * per_submitter);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  // Shutdown with a hot queue: every task submitted before the destructor
  // must still run (workers drain the queue before exiting).
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 500; ++i) {
      pool.Submit([&] { ran.fetch_add(1); });
    }
  }
  EXPECT_EQ(ran.load(), 500);
}

TEST(ThreadPool, RapidConstructDestroyChurn) {
  for (int round = 0; round < 50; ++round) {
    ThreadPool pool(3);
    std::atomic<int> ran{0};
    for (int i = 0; i < 20; ++i) pool.Submit([&] { ran.fetch_add(1); });
    pool.Wait();
    EXPECT_EQ(ran.load(), 20);
  }
}

TEST(ThreadPool, TaskExceptionsSurfaceThroughFuture) {
  ThreadPool pool(2);
  auto ok = pool.Submit([] {});
  auto bad = pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_NO_THROW(ok.get());
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The pool survives a throwing task.
  std::atomic<int> ran{0};
  pool.Submit([&] { ran.fetch_add(1); }).get();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, NestedSubmitFromWorker) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  std::vector<std::future<void>> inner(8);
  std::vector<std::future<void>> outer;
  for (std::size_t i = 0; i < inner.size(); ++i) {
    outer.push_back(pool.Submit([&, i] {
      inner[i] = pool.Submit([&] { ran.fetch_add(1); });
    }));
  }
  for (auto& f : outer) f.get();
  pool.Wait();
  EXPECT_EQ(ran.load(), static_cast<int>(inner.size()));
}

TEST(ThreadPoolDeathTest, SubmitAfterShutdownDies) {
  // Regression for the latent Submit/stopping_ bug: the precondition used to
  // be a naked assert(), compiled out under NDEBUG — a Submit racing
  // destruction would enqueue a task that might never run and leave the
  // returned future permanently unresolved. It is an always-on
  // ALADDIN_CHECK now; ThreadPoolTestPeer flips stopping_ the way an
  // in-progress destructor would, without the use-after-free a real race
  // needs.
  EXPECT_DEATH(
      {
        ThreadPool pool(1);
        ThreadPoolTestPeer::BeginShutdown(pool);
        pool.Submit([] {});
      },
      "Submit after shutdown");
}

TEST(ParallelFor, CoversExactRangeOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(pool, 0, hits.size(),
              [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, EmptyAndSingletonRanges) {
  ThreadPool pool(4);
  int calls = 0;
  ParallelFor(pool, 5, 5, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  ParallelFor(pool, 7, 8, [&](std::size_t i) {
    ++calls;
    EXPECT_EQ(i, 7u);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, MatchesSerialSum) {
  ThreadPool pool(4);
  const std::size_t n = 10000;
  std::vector<std::int64_t> parallel_out(n), serial_out(n);
  ParallelFor(pool, 0, n, [&](std::size_t i) {
    parallel_out[i] = static_cast<std::int64_t>(i) * 3 + 1;
  });
  SerialFor(0, n, [&](std::size_t i) {
    serial_out[i] = static_cast<std::int64_t>(i) * 3 + 1;
  });
  EXPECT_EQ(parallel_out, serial_out);
  EXPECT_EQ(std::accumulate(parallel_out.begin(), parallel_out.end(),
                            std::int64_t{0}),
            std::accumulate(serial_out.begin(), serial_out.end(),
                            std::int64_t{0}));
}

TEST(ParallelFor, ConcurrentLoopsShareOnePool) {
  ThreadPool pool(4);
  std::atomic<std::int64_t> total{0};
  std::vector<std::thread> drivers;
  for (int d = 0; d < 3; ++d) {
    drivers.emplace_back([&] {
      for (int round = 0; round < 20; ++round) {
        ParallelFor(pool, 0, 100,
                    [&](std::size_t) { total.fetch_add(1); });
      }
    });
  }
  for (auto& t : drivers) t.join();
  EXPECT_EQ(total.load(), 3 * 20 * 100);
}

// --------------------------------------------------- workspace reuse ----

// Pool workers solving max flows concurrently, each over its own Graph copy
// with its own reused Workspace. The shared template graph is frozen before
// fan-out, so concurrent copies read an immutable CSR; each worker's
// workspace goes through many BeginRun cycles (the epoch-stamp reset path).
// Every solve must produce the serial reference value — and the suite runs
// under the tsan preset, so any sharing bug in the workspace or the frozen
// CSR shows up as a data race, not just a wrong answer.
TEST(WorkspaceStress, ConcurrentReusedWorkspacesMatchSerialDinic) {
  flow::Graph shared;
  const VertexId s = shared.AddVertex();
  const VertexId t = shared.AddVertex();
  Rng rng(11);
  constexpr std::int32_t kWidth = 48;
  const VertexId mids = shared.AddVertices(2 * kWidth);
  for (std::int32_t i = 0; i < kWidth; ++i) {
    const VertexId a(mids.value() + i);
    const VertexId b(mids.value() + kWidth + i);
    shared.AddArc(s, a, rng.UniformInt(1, 9));
    for (int d = 0; d < 4; ++d) {
      const VertexId target(mids.value() + kWidth +
                            static_cast<std::int32_t>(
                                rng.UniformInt(0, kWidth - 1)));
      shared.AddArc(a, target, rng.UniformInt(1, 9));
    }
    shared.AddArc(b, t, rng.UniformInt(1, 9));
  }
  shared.Freeze();

  flow::Capacity expected = 0;
  {
    flow::Graph g = shared;
    expected = flow::Dinic(g, s, t).value;
  }

  ThreadPool pool(4);
  constexpr std::size_t kTasks = 64;
  constexpr int kRunsPerTask = 8;
  std::vector<flow::Capacity> results(kTasks, -1);
  ParallelFor(pool, 0, kTasks, [&](std::size_t i) {
    flow::Graph local = shared;  // copies the frozen CSR
    flow::Workspace ws;
    flow::Capacity value = -1;
    for (int run = 0; run < kRunsPerTask; ++run) {
      local.ResetFlows();
      value = flow::Dinic(local, s, t, ws).value;  // ws reused across runs
    }
    results[i] = value;
  });
  for (std::size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(results[i], expected) << "task " << i;
  }

  // The per-thread default workspace path (no explicit ws) under the pool:
  // thread-local scratch, same answers.
  std::vector<flow::Capacity> tls_results(kTasks, -1);
  ParallelFor(pool, 0, kTasks, [&](std::size_t i) {
    flow::Graph local = shared;
    tls_results[i] = flow::Dinic(local, s, t).value;
  });
  for (std::size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(tls_results[i], expected) << "task " << i;
  }
}

}  // namespace
}  // namespace aladdin

// Oracle-based property and fuzz tests.
//
// Each test pits an optimised implementation against a brute-force oracle
// (or an invariant recomputed from first principles) across many random
// configurations:
//   * ClusterState under random operation sequences vs recomputed free
//     resources and blacklists;
//   * AggregatedNetwork::FindMachine vs exhaustive tightest-admissible scan;
//   * the repair engine's all-or-nothing transaction semantics;
//   * min-cost max-flow vs the plain max-flow value;
//   * the auditor's colocation count vs a quadratic recount;
//   * the trace generator's guarantees across a seed sweep.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "cluster/audit.h"
#include "common/rng.h"
#include "core/migration.h"
#include "core/network.h"
#include "core/scheduler.h"
#include "core/weights.h"
#include "flow/max_flow.h"
#include "flow/min_cost_flow.h"
#include "sim/experiment.h"
#include "trace/alibaba_gen.h"
#include "trace/trace_stats.h"

namespace aladdin {
namespace {

using cluster::ApplicationId;
using cluster::ContainerId;
using cluster::MachineId;
using cluster::ResourceVector;
using cluster::Topology;
using trace::Workload;

// Builds a random small workload with mixed constraints.
Workload RandomWorkload(Rng& rng, std::size_t apps) {
  Workload wl;
  for (std::size_t i = 0; i < apps; ++i) {
    const auto replicas = static_cast<std::size_t>(rng.UniformInt(1, 6));
    const ResourceVector request(rng.UniformInt(1, 8) * 1000,
                                 rng.UniformInt(1, 16) * 1024);
    const auto priority =
        static_cast<cluster::Priority>(rng.UniformInt(0, 3));
    wl.AddApplication("app-" + std::to_string(i), replicas, request, priority,
                      rng.Bernoulli(0.5));
  }
  // Sparse cross rules.
  for (std::size_t i = 0; i + 1 < apps; ++i) {
    if (rng.Bernoulli(0.3)) {
      const auto other = static_cast<std::int32_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(apps) - 1));
      wl.AddAntiAffinity(ApplicationId(static_cast<std::int32_t>(i)),
                         ApplicationId(other));
    }
  }
  return wl;
}

// Oracle: is `c` blacklisted on `m` by direct pairwise recount?
bool BlacklistOracle(const cluster::ClusterState& state, ContainerId c,
                     MachineId m) {
  const auto app =
      state.containers()[static_cast<std::size_t>(c.value())].app;
  for (ContainerId other : state.DeployedOn(m)) {
    const auto other_app =
        state.containers()[static_cast<std::size_t>(other.value())].app;
    if (state.constraints().Conflicts(app, other_app)) return true;
  }
  return false;
}

class FuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzTest, ClusterStateRandomOperationSequence) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const Workload wl = RandomWorkload(rng, 8);
  const Topology topo = Topology::Uniform(6, ResourceVector::Cores(16, 32));
  auto state = wl.MakeState(topo);

  std::vector<ContainerId> placed;
  std::vector<ContainerId> unplaced;
  for (const auto& c : wl.containers()) unplaced.push_back(c.id);

  for (int step = 0; step < 300; ++step) {
    const int op = static_cast<int>(rng.UniformInt(0, 3));
    if (op == 0 && !unplaced.empty()) {  // deploy somewhere it fits
      const auto pick = static_cast<std::size_t>(rng.UniformInt(
          0, static_cast<std::int64_t>(unplaced.size()) - 1));
      const ContainerId c = unplaced[pick];
      const MachineId m(static_cast<std::int32_t>(rng.UniformInt(0, 5)));
      if (state.Fits(c, m)) {
        state.Deploy(c, m);
        unplaced.erase(unplaced.begin() + static_cast<std::ptrdiff_t>(pick));
        placed.push_back(c);
      }
    } else if (op == 1 && !placed.empty()) {  // evict
      const auto pick = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(placed.size()) - 1));
      const ContainerId c = placed[pick];
      state.Evict(c);
      placed.erase(placed.begin() + static_cast<std::ptrdiff_t>(pick));
      unplaced.push_back(c);
    } else if (op == 2 && !placed.empty()) {  // migrate
      const auto pick = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(placed.size()) - 1));
      const ContainerId c = placed[pick];
      const MachineId to(static_cast<std::int32_t>(rng.UniformInt(0, 5)));
      if (to != state.PlacementOf(c) && state.Fits(c, to)) {
        // Fits() is against current free; after evicting c it only grows.
        state.Migrate(c, to);
      }
    } else if (op == 3 && !placed.empty()) {  // preempt
      const auto pick = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(placed.size()) - 1));
      const ContainerId c = placed[pick];
      state.Preempt(c);
      placed.erase(placed.begin() + static_cast<std::ptrdiff_t>(pick));
      unplaced.push_back(c);
    }
    // Invariants after every step.
    ASSERT_TRUE(state.VerifyResourceInvariant()) << "step " << step;
  }
  // Blacklist agrees with the pairwise oracle everywhere.
  for (const auto& c : wl.containers()) {
    if (state.IsPlaced(c.id)) continue;
    for (std::size_t mi = 0; mi < topo.machine_count(); ++mi) {
      const MachineId m(static_cast<std::int32_t>(mi));
      EXPECT_EQ(state.Blacklisted(c.id, m), BlacklistOracle(state, c.id, m));
    }
  }
}

TEST_P(FuzzTest, FindMachineMatchesBruteForceOracle) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 100);
  const Workload wl = RandomWorkload(rng, 10);
  const Topology topo = Topology::Uniform(8, ResourceVector::Cores(16, 32), 4, 2);
  auto state = wl.MakeState(topo);
  core::AggregatedNetwork network(topo);
  network.Attach(&state);
  core::SearchCounters counters;

  // Random pre-placement through the network (keeps indices coherent).
  for (const auto& c : wl.containers()) {
    if (!rng.Bernoulli(0.5)) continue;
    const MachineId m(static_cast<std::int32_t>(rng.UniformInt(0, 7)));
    if (state.Fits(c.id, m)) network.Deploy(c.id, m);
  }

  // Oracle: tightest admissible machine by exhaustive scan, ties by id.
  auto oracle = [&](ContainerId c) {
    MachineId best = MachineId::Invalid();
    std::int64_t best_free = 0;
    for (std::size_t mi = 0; mi < topo.machine_count(); ++mi) {
      const MachineId m(static_cast<std::int32_t>(mi));
      if (!state.CanPlace(c, m)) continue;
      const std::int64_t free = state.Free(m).cpu_millis();
      if (!best.valid() || free < best_free ||
          (free == best_free && m < best)) {
        best = m;
        best_free = free;
      }
    }
    return best;
  };

  for (const auto& c : wl.containers()) {
    if (state.IsPlaced(c.id)) continue;
    const MachineId expected = oracle(c.id);
    for (const core::SearchOptions& options :
         {core::SearchOptions{false, false}, core::SearchOptions{true, false},
          core::SearchOptions{true, true}}) {
      EXPECT_EQ(network.FindMachine(c.id, options, counters), expected)
          << "container " << c.id << " il=" << options.enable_il
          << " dl=" << options.enable_dl;
    }
  }
}

TEST_P(FuzzTest, RepairTransactionsNeverCorruptState) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 200);
  const Workload wl = RandomWorkload(rng, 12);
  const Topology topo = Topology::Uniform(5, ResourceVector::Cores(16, 32));
  auto state = wl.MakeState(topo);
  core::AggregatedNetwork network(topo);
  network.Attach(&state);
  core::SearchCounters counters;

  // Phase-1-style fill.
  std::vector<ContainerId> pending;
  for (const auto& c : wl.containers()) {
    const MachineId m =
        network.FindMachine(c.id, core::SearchOptions{}, counters);
    if (m.valid()) {
      network.Deploy(c.id, m);
    } else {
      pending.push_back(c.id);
    }
  }
  const core::PriorityWeights weights = core::ComputeMinimalWeights(wl);
  std::int64_t flow_before = 0;
  for (const auto& c : wl.containers()) {
    if (state.IsPlaced(c.id)) flow_before += weights.WeightedFlow(c);
  }

  core::RepairEngine repair(network, weights, core::RepairOptions{});
  const auto still_unplaced =
      repair.Repair(pending, core::SearchOptions{}, counters);

  EXPECT_TRUE(state.VerifyResourceInvariant());
  // Eq. 9 monotonicity: every repair transaction admits at least as much
  // weighted flow as it displaces, so the objective never shrinks.
  auto total_weighted_flow = [&] {
    std::int64_t total = 0;
    for (const auto& c : wl.containers()) {
      if (state.IsPlaced(c.id)) total += weights.WeightedFlow(c);
    }
    return total;
  };
  EXPECT_GE(total_weighted_flow(), flow_before);
  // Everything is accounted: placed + reported-unplaced == total.
  EXPECT_EQ(state.placed_count() + still_unplaced.size(),
            wl.container_count());
  // Repair introduces no constraint violations.
  EXPECT_TRUE(cluster::CollectColocationViolations(state).empty());
}

TEST_P(FuzzTest, MinCostFlowValueEqualsMaxFlow) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 300);
  flow::Graph g1;
  const std::size_t n = 12;
  for (std::size_t i = 0; i < n; ++i) g1.AddVertex();
  const VertexId s(0), t(static_cast<std::int32_t>(n - 1));
  for (int e = 0; e < 40; ++e) {
    const auto a = static_cast<std::int32_t>(rng.UniformInt(0, n - 1));
    const auto b = static_cast<std::int32_t>(rng.UniformInt(0, n - 1));
    if (a == b) continue;
    g1.AddArc(VertexId(a), VertexId(b), rng.UniformInt(1, 9),
              rng.UniformInt(0, 5));
  }
  flow::Graph g2 = g1;
  EXPECT_EQ(flow::MinCostMaxFlow(g1, s, t).flow, flow::Dinic(g2, s, t).value);
}

TEST_P(FuzzTest, AuditColocationsMatchQuadraticRecount) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 400);
  const Workload wl = RandomWorkload(rng, 10);
  const Topology topo = Topology::Uniform(4, ResourceVector::Cores(32, 64));
  auto state = wl.MakeState(topo);
  // Random constraint-oblivious placement (violations likely).
  for (const auto& c : wl.containers()) {
    const MachineId m(static_cast<std::int32_t>(rng.UniformInt(0, 3)));
    if (state.Fits(c.id, m)) state.Deploy(c.id, m);
  }
  // Quadratic oracle: every placed container that conflicts with any
  // earlier-id placed container on the same machine.
  std::set<ContainerId> offenders;
  for (const auto& a : wl.containers()) {
    if (!state.IsPlaced(a.id)) continue;
    for (const auto& b : wl.containers()) {
      if (b.id <= a.id || !state.IsPlaced(b.id)) continue;
      if (state.PlacementOf(a.id) != state.PlacementOf(b.id)) continue;
      if (wl.constraints().Conflicts(a.app, b.app)) {
        offenders.insert(b.id);  // blame the later id, as the auditor does
      }
    }
  }
  const auto reported = cluster::CollectColocationViolations(state);
  EXPECT_EQ(std::set<ContainerId>(reported.begin(), reported.end()),
            offenders);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Range(1, 26));

TEST(HeavyFuzz, SearchOracleAndRepairInvariantsAcrossVariedClusters) {
  // Broad-spectrum version of the per-seed fuzzers above: varied machine
  // counts AND capacities, denser conflict graphs, all three search
  // policies against the brute-force oracle, then repair invariants.
  int checked = 0;
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    Rng rng(seed * 31 + 5);
    Workload wl;
    const auto napps = static_cast<std::size_t>(rng.UniformInt(3, 16));
    for (std::size_t i = 0; i < napps; ++i) {
      wl.AddApplication(
          "a" + std::to_string(i),
          static_cast<std::size_t>(rng.UniformInt(1, 8)),
          ResourceVector(rng.UniformInt(1, 12) * 1000,
                         rng.UniformInt(1, 24) * 1024),
          static_cast<cluster::Priority>(rng.UniformInt(0, 3)),
          rng.Bernoulli(0.5));
    }
    for (int r = 0; r < 6; ++r) {
      wl.AddAntiAffinity(
          ApplicationId(static_cast<std::int32_t>(
              rng.UniformInt(0, static_cast<std::int64_t>(napps) - 1))),
          ApplicationId(static_cast<std::int32_t>(
              rng.UniformInt(0, static_cast<std::int64_t>(napps) - 1))));
    }
    const auto nmach = static_cast<std::size_t>(rng.UniformInt(2, 12));
    const Topology topo = Topology::Uniform(
        nmach, ResourceVector::Cores(rng.UniformInt(8, 64), 128), 3, 2);
    auto state = wl.MakeState(topo);
    core::AggregatedNetwork net(topo);
    net.Attach(&state);
    core::SearchCounters counters;
    for (const auto& c : wl.containers()) {
      if (!rng.Bernoulli(0.5)) continue;
      const MachineId m(static_cast<std::int32_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(nmach) - 1)));
      if (state.CanPlace(c.id, m)) net.Deploy(c.id, m);
    }
    for (const auto& c : wl.containers()) {
      if (state.IsPlaced(c.id)) continue;
      MachineId best = MachineId::Invalid();
      std::int64_t best_free = 0;
      for (std::size_t mi = 0; mi < nmach; ++mi) {
        const MachineId m(static_cast<std::int32_t>(mi));
        if (!state.CanPlace(c.id, m)) continue;
        const auto free = state.Free(m).cpu_millis();
        if (!best.valid() || free < best_free ||
            (free == best_free && m < best)) {
          best = m;
          best_free = free;
        }
      }
      for (auto opt :
           {core::SearchOptions{false, false}, core::SearchOptions{true, false},
            core::SearchOptions{true, true}}) {
        ASSERT_EQ(net.FindMachine(c.id, opt, counters), best)
            << "seed " << seed << " container " << c.id;
        ++checked;
      }
    }
    std::vector<ContainerId> pending;
    for (const auto& c : wl.containers()) {
      if (!state.IsPlaced(c.id)) pending.push_back(c.id);
    }
    const auto weights = core::ComputeMinimalWeights(wl);
    std::int64_t flow_before = 0;
    for (const auto& c : wl.containers()) {
      if (state.IsPlaced(c.id)) flow_before += weights.WeightedFlow(c);
    }
    core::RepairEngine repair(net, weights, core::RepairOptions{});
    const auto left = repair.Repair(pending, core::SearchOptions{}, counters);
    std::int64_t flow_after = 0;
    for (const auto& c : wl.containers()) {
      if (state.IsPlaced(c.id)) flow_after += weights.WeightedFlow(c);
    }
    ASSERT_TRUE(state.VerifyResourceInvariant()) << "seed " << seed;
    ASSERT_GE(flow_after, flow_before) << "seed " << seed;
    ASSERT_TRUE(cluster::CollectColocationViolations(state).empty())
        << "seed " << seed;
    ASSERT_EQ(state.placed_count() + left.size(), wl.container_count())
        << "seed " << seed;
  }
  EXPECT_GT(checked, 100);  // the sweep actually exercised the oracle
}

// ------------------------------------------------- generator seed sweep ----

class GeneratorSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(GeneratorSweepTest, InvariantsHoldAcrossSeeds) {
  trace::AlibabaTraceOptions options;
  options.scale = 0.03;
  options.seed = static_cast<std::uint64_t>(GetParam() * 1337 + 1);
  const Workload wl = trace::GenerateAlibabaLike(options);
  const trace::WorkloadStats stats = trace::ComputeWorkloadStats(wl);

  // Container total calibrated to +-4 % of target.
  EXPECT_NEAR(static_cast<double>(stats.containers), 3000.0, 120.0);
  // Singleton fraction near the paper's 64 %.
  EXPECT_NEAR(stats.SingleInstanceFraction(), 0.64, 0.08);
  // Demand calibrated to the target utilisation band of the matched
  // cluster (76 % +-5 %).
  const double demand =
      static_cast<double>(wl.TotalDemand().cpu_millis());
  const double capacity = 3000.0 * 3200.0;
  EXPECT_NEAR(demand / capacity, 0.76, 0.05);
  // Request cap respected.
  EXPECT_LE(stats.max_request.cpu_millis(), 16000);
  // No app exceeds the pigeonhole-safe size cap (6 % of containers).
  EXPECT_LE(stats.max_app_size, static_cast<std::size_t>(3000 * 6 / 100));
}

TEST_P(GeneratorSweepTest, AladdinPlacesEverythingAcrossSeeds) {
  trace::AlibabaTraceOptions options;
  options.scale = 0.03;
  options.seed = static_cast<std::uint64_t>(GetParam() * 1337 + 1);
  const Workload wl = trace::GenerateAlibabaLike(options);
  const Topology topo = trace::MakeAlibabaCluster(sim::BenchMachineCount(0.03));
  core::AladdinScheduler scheduler;
  const sim::RunMetrics m = sim::RunExperimentOn(
      scheduler, wl, topo, trace::ArrivalOrder::kRandom, 1);
  EXPECT_EQ(m.audit.unplaced, 0u) << "seed " << options.seed;
  EXPECT_EQ(m.audit.colocation_violations, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorSweepTest, ::testing::Range(1, 16));

}  // namespace
}  // namespace aladdin

// Cluster health watchdog: per-detector fire / no-fire unit feeds,
// hysteresis (no flapping on a boundary-riding signal), severity
// escalation, the alert-stream determinism fingerprint across thread and
// shard counts (via the drill scenarios), and the /alertz + /alertz.json
// endpoint contract over a live listener socket.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/watchdog.h"
#include "sim/drill.h"

namespace aladdin {
namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;

// Healthy tick: plenty of admissions within objective, nothing pending,
// steady solve effort, one steady give-up cause above the volume floors.
obs::WatchdogTickInput HealthyInput(std::int64_t tick) {
  obs::WatchdogTickInput input;
  input.tick = tick;
  input.slo_good = 100;
  input.slo_bad = 0;
  input.slo_budget_bp = 100;  // 99% objective
  input.pending_age_p99 = 2;
  input.pending_open = 4;
  input.solve_cost = 300;
  input.solve_wall_micros = 500;
  input.giveup_causes = {{obs::Cause::kCapacityExhaustedCpu, 40}};
  return input;
}

// Feeds `ticks` healthy ticks starting at `from`; returns the next tick.
std::int64_t WarmUp(obs::Watchdog& watchdog, std::int64_t ticks,
                    std::int64_t from = 0) {
  for (std::int64_t t = from; t < from + ticks; ++t) {
    watchdog.ObserveTick(HealthyInput(t));
  }
  return from + ticks;
}

TEST(Watchdog, QuietBaselineNeverFires) {
  obs::Watchdog watchdog;
  WarmUp(watchdog, 64);
  EXPECT_EQ(watchdog.opened_total(), 0);
  EXPECT_EQ(watchdog.open_now(), 0);
  // No transitions folded: the fingerprint is still the FNV-1a offset.
  EXPECT_EQ(watchdog.Fingerprint(), kFnvOffset);
}

TEST(Watchdog, SloBurnOpensAfterHysteresisAndResolves) {
  obs::Watchdog watchdog;
  std::int64_t t = WarmUp(watchdog, 16);
  // Sustained 100% violation rate: both windows burn >> 8x the 1% budget.
  for (int i = 0; i < 6; ++i) {
    obs::WatchdogTickInput input = HealthyInput(t++);
    input.slo_good = 0;
    input.slo_bad = 100;
    watchdog.ObserveTick(input);
  }
  ASSERT_EQ(watchdog.opened_total(), 1);
  {
    const obs::WatchdogSnapshot snapshot = watchdog.Snapshot();
    const obs::Alert& alert = snapshot.alerts.front();
    EXPECT_EQ(alert.kind, obs::AlertKind::kSloBurnRate);
    EXPECT_EQ(alert.state, obs::AlertState::kOpen);
    EXPECT_GT(alert.evidence.observed, alert.evidence.threshold);
    EXPECT_EQ(alert.evidence.window, watchdog.options().burn_fast_window);
  }
  // Back to healthy: the fast window clears in a few ticks and the alert
  // resolves after `resolve_after` clear ticks.
  WarmUp(watchdog, 12, t);
  EXPECT_EQ(watchdog.resolved_total(), 1);
  EXPECT_EQ(watchdog.open_now(), 0);
  const obs::WatchdogSnapshot snapshot = watchdog.Snapshot();
  EXPECT_EQ(snapshot.alerts.front().state, obs::AlertState::kResolved);
  EXPECT_GT(snapshot.alerts.front().resolved_tick,
            snapshot.alerts.front().opened_tick);
}

TEST(Watchdog, SingleBadTickDoesNotFireBurn) {
  obs::Watchdog watchdog;
  std::int64_t t = WarmUp(watchdog, 16);
  obs::WatchdogTickInput input = HealthyInput(t++);
  input.slo_good = 0;
  input.slo_bad = 100;
  watchdog.ObserveTick(input);
  WarmUp(watchdog, 8, t);
  EXPECT_EQ(watchdog.opened_total(), 0);
}

TEST(Watchdog, PendingDriftFiresOnSpikeAgainstTrailingBaseline) {
  obs::Watchdog watchdog;
  std::int64_t t = WarmUp(watchdog, 16);  // baseline p99 = 2
  for (int i = 0; i < 2; ++i) {
    obs::WatchdogTickInput input = HealthyInput(t++);
    input.pending_age_p99 = 12;  // 6x the trailing mean, above the floor
    watchdog.ObserveTick(input);
  }
  ASSERT_EQ(watchdog.opened_total(), 1);
  const obs::WatchdogSnapshot snapshot = watchdog.Snapshot();
  EXPECT_EQ(snapshot.alerts.front().kind, obs::AlertKind::kPendingAgeDrift);
  EXPECT_EQ(snapshot.alerts.front().evidence.observed, 12);
  EXPECT_EQ(snapshot.alerts.front().evidence.baseline, 2);
}

TEST(Watchdog, PendingDriftIgnoresGradualGrowth) {
  obs::Watchdog watchdog;
  // p99 creeps up one tick every other tick: the ratio to the trailing
  // mean never approaches 3x, so a slowly growing backlog stays quiet.
  for (std::int64_t t = 0; t < 64; ++t) {
    obs::WatchdogTickInput input = HealthyInput(t);
    input.pending_age_p99 = 10 + t / 2;
    watchdog.ObserveTick(input);
  }
  EXPECT_EQ(watchdog.opened_total(), 0);
}

TEST(Watchdog, AppFlappingOpensPerAppSubject) {
  obs::Watchdog watchdog;
  std::int64_t t = 0;
  for (int i = 0; i < 4; ++i) {
    obs::WatchdogTickInput input = HealthyInput(t++);
    input.app_reopens = {{3, 2}, {7, 2}};
    watchdog.ObserveTick(input);
  }
  // Both apps cross the window threshold; ids assigned in app order.
  ASSERT_EQ(watchdog.opened_total(), 2);
  const obs::WatchdogSnapshot snapshot = watchdog.Snapshot();
  EXPECT_EQ(snapshot.alerts[0].kind, obs::AlertKind::kAppFlapping);
  EXPECT_EQ(snapshot.alerts[0].subject, 3);
  EXPECT_EQ(snapshot.alerts[1].subject, 7);
  EXPECT_EQ(snapshot.open_by_kind[static_cast<std::size_t>(
                obs::AlertKind::kAppFlapping)],
            2);
}

TEST(Watchdog, ShardImbalanceFiresOnUtilSkewWithHottestSubject) {
  obs::Watchdog watchdog;
  for (std::int64_t t = 0; t < 3; ++t) {
    obs::WatchdogTickInput input = HealthyInput(t);
    input.shards = {{0, 8, 10, 0, 10, 100},
                    {1, 8, 10, 0, 10, 100},
                    {2, 8, 10, 0, 10, 900},   // 9x the median
                    {3, 8, 10, 0, 10, 100}};
    watchdog.ObserveTick(input);
  }
  ASSERT_EQ(watchdog.opened_total(), 1);
  const obs::WatchdogSnapshot snapshot = watchdog.Snapshot();
  EXPECT_EQ(snapshot.alerts.front().kind, obs::AlertKind::kShardImbalance);
  EXPECT_EQ(snapshot.alerts.front().subject, 2);
  EXPECT_EQ(snapshot.alerts.front().evidence.observed, 900);
  EXPECT_EQ(snapshot.alerts.front().evidence.baseline, 100);
}

TEST(Watchdog, ShardImbalanceFiresOnSpillRatio) {
  obs::Watchdog watchdog;
  for (std::int64_t t = 0; t < 3; ++t) {
    obs::WatchdogTickInput input = HealthyInput(t);
    // Balanced util (below the hot-shard floor) but 3/8 of routings spill.
    input.shards = {{0, 8, 20, 15, 20, 100},
                    {1, 8, 20, 0, 20, 100}};
    watchdog.ObserveTick(input);
  }
  ASSERT_EQ(watchdog.opened_total(), 1);
  const obs::WatchdogSnapshot snapshot = watchdog.Snapshot();
  EXPECT_EQ(snapshot.alerts.front().kind, obs::AlertKind::kShardImbalance);
  EXPECT_EQ(snapshot.alerts.front().subject, 0);  // spill-heaviest shard
}

TEST(Watchdog, SolveRegressionFiresOnEffortSpikeNotWallClock) {
  obs::Watchdog watchdog;
  std::int64_t t = WarmUp(watchdog, 16);  // baseline cost = 300
  for (int i = 0; i < 2; ++i) {
    obs::WatchdogTickInput input = HealthyInput(t++);
    input.solve_cost = 1200;  // 4x trailing mean
    input.solve_wall_micros = 123456;
    watchdog.ObserveTick(input);
  }
  ASSERT_EQ(watchdog.opened_total(), 1);
  const obs::WatchdogSnapshot snapshot = watchdog.Snapshot();
  EXPECT_EQ(snapshot.alerts.front().kind, obs::AlertKind::kSolveRegression);
  EXPECT_EQ(snapshot.alerts.front().evidence.observed, 1200);
  // Wall clock rides along as evidence only.
  EXPECT_EQ(snapshot.alerts.front().evidence.extra, 123456);
}

TEST(Watchdog, SolveRegressionRespectsAbsoluteEffortFloor) {
  obs::Watchdog watchdog;
  // Tiny baseline: a 10x spike that stays under latency_min_cost is noise.
  for (std::int64_t t = 0; t < 16; ++t) {
    obs::WatchdogTickInput input = HealthyInput(t);
    input.solve_cost = 10;
    watchdog.ObserveTick(input);
  }
  for (std::int64_t t = 16; t < 20; ++t) {
    obs::WatchdogTickInput input = HealthyInput(t);
    input.solve_cost = 100;
    watchdog.ObserveTick(input);
  }
  EXPECT_EQ(watchdog.opened_total(), 0);
}

TEST(Watchdog, CauseMixShiftFiresWhenTheHistogramFlips) {
  obs::Watchdog watchdog;
  std::int64_t t = WarmUp(watchdog, 16);  // all-CPU give-up mix
  for (int i = 0; i < 2; ++i) {
    obs::WatchdogTickInput input = HealthyInput(t++);
    input.giveup_causes = {{obs::Cause::kCapacityExhaustedMem, 40}};
    watchdog.ObserveTick(input);
  }
  ASSERT_EQ(watchdog.opened_total(), 1);
  const obs::WatchdogSnapshot snapshot = watchdog.Snapshot();
  EXPECT_EQ(snapshot.alerts.front().kind, obs::AlertKind::kCauseMixShift);
}

TEST(Watchdog, BoundaryRidingSignalNeverFlaps) {
  obs::Watchdog watchdog;
  std::int64_t t = WarmUp(watchdog, 16);
  // Alternating spike / normal p99: each spike tick breaches but the clear
  // tick in between resets the streak below open_after, so no alert ever
  // opens and the fingerprint stays untouched.
  for (int i = 0; i < 16; ++i) {
    obs::WatchdogTickInput input = HealthyInput(t++);
    input.pending_age_p99 = (i % 2 == 0) ? 12 : 2;
    watchdog.ObserveTick(input);
  }
  EXPECT_EQ(watchdog.opened_total(), 0);
  EXPECT_EQ(watchdog.Fingerprint(), kFnvOffset);
}

TEST(Watchdog, SeverityEscalatesFromWarningToCritical) {
  obs::Watchdog watchdog;
  std::int64_t t = WarmUp(watchdog, 16);  // drift baseline p99 = 2
  // Warning zone: above 3x the trailing mean but below 6x.
  for (int i = 0; i < 2; ++i) {
    obs::WatchdogTickInput input = HealthyInput(t++);
    input.pending_age_p99 = 7;
    watchdog.ObserveTick(input);
  }
  ASSERT_EQ(watchdog.opened_total(), 1);
  EXPECT_EQ(watchdog.Snapshot().alerts.front().severity,
            obs::AlertSeverity::kWarning);
  const std::uint64_t before = watchdog.Fingerprint();
  // Deep breach while open: escalates in place, no second alert.
  obs::WatchdogTickInput input = HealthyInput(t++);
  input.pending_age_p99 = 40;
  watchdog.ObserveTick(input);
  EXPECT_EQ(watchdog.opened_total(), 1);
  EXPECT_EQ(watchdog.Snapshot().alerts.front().severity,
            obs::AlertSeverity::kCritical);
  // Escalation is a folded transition: the fingerprint moves.
  EXPECT_NE(watchdog.Fingerprint(), before);
}

TEST(Watchdog, DisabledDetectorsStayQuiet) {
  obs::WatchdogOptions options;
  options.slo_burn = false;
  options.pending_drift = false;
  options.app_flapping = false;
  options.shard_imbalance = false;
  options.solve_regression = false;
  options.cause_mix = false;
  obs::Watchdog watchdog(options);
  for (std::int64_t t = 0; t < 32; ++t) {
    obs::WatchdogTickInput input = HealthyInput(t);
    input.slo_bad = 100;
    input.slo_good = 0;
    input.pending_age_p99 = 100;
    input.app_reopens = {{0, 10}};
    input.solve_cost = 100000;
    watchdog.ObserveTick(input);
  }
  EXPECT_EQ(watchdog.opened_total(), 0);
  EXPECT_EQ(watchdog.Fingerprint(), kFnvOffset);
}

TEST(Watchdog, IdenticalFeedsGiveIdenticalFingerprints) {
  obs::Watchdog a;
  obs::Watchdog b;
  for (std::int64_t t = 0; t < 20; ++t) {
    obs::WatchdogTickInput input = HealthyInput(t);
    if (t >= 16) input.pending_age_p99 = 12;
    a.ObserveTick(input);
    b.ObserveTick(input);
  }
  EXPECT_GT(a.opened_total(), 0);
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
  // A diverging feed (a flapping app only `a` sees) moves the fingerprint.
  for (std::int64_t t = 20; t < 24; ++t) {
    obs::WatchdogTickInput flapping = HealthyInput(t);
    flapping.app_reopens = {{9, 2}};
    a.ObserveTick(flapping);
    b.ObserveTick(HealthyInput(t));
  }
  EXPECT_GT(a.opened_total(), b.opened_total());
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
}

// ---------------------------------------------------------------------------
// Drill-driven integration: every scenario fires exactly its expected
// kinds, the baseline is alert-free, and the alert stream is bit-identical
// across thread counts and across shards 0 vs 1.

TEST(WatchdogDrills, EveryScenarioFiresExactlyItsExpectedKinds) {
  for (std::size_t i = 0;
       i < static_cast<std::size_t>(sim::DrillScenario::kCount); ++i) {
    sim::DrillOptions options;
    options.scenario = static_cast<sim::DrillScenario>(i);
    const sim::DrillReport report = sim::RunDrill(options);
    EXPECT_TRUE(report.fired_expected)
        << sim::DrillScenarioName(options.scenario)
        << " did not fire its expected kinds";
    EXPECT_TRUE(report.fired_only_expected)
        << sim::DrillScenarioName(options.scenario)
        << " fired an unexpected kind";
  }
}

TEST(WatchdogDrills, BaselineIsAlertFreeWithAllDetectorsArmed) {
  sim::DrillOptions options;
  options.scenario = sim::DrillScenario::kBaseline;
  const sim::DrillReport report = sim::RunDrill(options);
  EXPECT_EQ(report.watchdog.opened_total, 0);
  EXPECT_EQ(report.fingerprint, kFnvOffset);
}

TEST(WatchdogDrills, AlertStreamIsBitIdenticalAcrossThreadCounts) {
  sim::DrillOptions serial;
  serial.scenario = sim::DrillScenario::kDrainStorm;
  serial.threads = 1;
  sim::DrillOptions parallel = serial;
  parallel.threads = 8;
  const sim::DrillReport a = sim::RunDrill(serial);
  const sim::DrillReport b = sim::RunDrill(parallel);
  EXPECT_GT(a.watchdog.opened_total, 0);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.watchdog.opened_total, b.watchdog.opened_total);
  EXPECT_EQ(a.watchdog.resolved_total, b.watchdog.resolved_total);
}

TEST(WatchdogDrills, AlertStreamIsBitIdenticalAcrossShardsZeroVsOne) {
  sim::DrillOptions unsharded;
  unsharded.scenario = sim::DrillScenario::kDrainStorm;
  unsharded.shards = 0;
  sim::DrillOptions one_shard = unsharded;
  one_shard.shards = 1;
  const sim::DrillReport a = sim::RunDrill(unsharded);
  const sim::DrillReport b = sim::RunDrill(one_shard);
  EXPECT_GT(a.watchdog.opened_total, 0);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.watchdog.opened_total, b.watchdog.opened_total);
}

TEST(WatchdogDrills, FixedShardCountIsThreadCountInvariant) {
  sim::DrillOptions serial;
  serial.scenario = sim::DrillScenario::kRoutingSkew;  // forces shards >= 4
  serial.threads = 1;
  sim::DrillOptions parallel = serial;
  parallel.threads = 8;
  const sim::DrillReport a = sim::RunDrill(serial);
  const sim::DrillReport b = sim::RunDrill(parallel);
  EXPECT_GT(a.watchdog.opened_total, 0);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
}

// ---------------------------------------------------------------------------
// /alertz endpoint contract.

std::string HttpGet(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  (void)!::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

// A watchdog with one resolved drift alert and one open flapping alert.
obs::WatchdogSnapshot FiredSnapshot() {
  obs::Watchdog watchdog;
  std::int64_t t = WarmUp(watchdog, 16);
  for (int i = 0; i < 2; ++i) {
    obs::WatchdogTickInput input = HealthyInput(t++);
    input.pending_age_p99 = 12;
    watchdog.ObserveTick(input);
  }
  t = WarmUp(watchdog, 4, t);  // resolves the drift alert
  for (int i = 0; i < 4; ++i) {
    obs::WatchdogTickInput input = HealthyInput(t++);
    input.app_reopens = {{5, 2}};
    watchdog.ObserveTick(input);
  }
  return watchdog.Snapshot();
}

TEST(WatchdogEndpoints, AlertzServesTableAndJson) {
  obs::IntrospectionStatus status;
  status.tick = 26;
  status.watchdog = FiredSnapshot();
  ASSERT_EQ(status.watchdog.opened_total, 2);
  ASSERT_EQ(status.watchdog.resolved_total, 1);
  obs::PublishIntrospection(status);

  obs::PrometheusListener listener;
  ASSERT_TRUE(listener.Start(0));
  const std::uint16_t port = listener.port();
  ASSERT_GT(port, 0);

  const std::string alertz = HttpGet(port, "/alertz");
  EXPECT_NE(alertz.find("200 OK"), std::string::npos);
  EXPECT_NE(alertz.find("open=1 opened=2 resolved=1"), std::string::npos);
  EXPECT_NE(alertz.find("pending_age_drift"), std::string::npos);
  EXPECT_NE(alertz.find("app_flapping"), std::string::npos);

  const std::string json = HttpGet(port, "/alertz.json");
  EXPECT_NE(json.find("application/json"), std::string::npos);
  EXPECT_NE(json.find("\"enabled\":true"), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"app_flapping\""), std::string::npos);
  EXPECT_NE(json.find("\"evidence\":{\"observed\":"), std::string::npos);
  EXPECT_NE(json.find("\"state\":\"resolved\""), std::string::npos);

  listener.Stop();
}

TEST(WatchdogEndpoints, RenderersHandleDisabledAndEmptySnapshots) {
  const obs::WatchdogSnapshot disabled;  // resolver ran without --watchdog
  EXPECT_NE(obs::RenderAlertz(disabled).find("watchdog: disabled"),
            std::string::npos);
  EXPECT_NE(obs::RenderAlertsJson(disabled).find("\"enabled\":false"),
            std::string::npos);

  obs::Watchdog quiet;
  WarmUp(quiet, 4);
  const obs::WatchdogSnapshot empty = quiet.Snapshot();
  EXPECT_NE(obs::RenderAlertz(empty).find("no alerts"), std::string::npos);
  EXPECT_NE(obs::RenderAlertsJson(empty).find("\"alerts\":[]"),
            std::string::npos);
}

}  // namespace
}  // namespace aladdin

// Equivalence contract for the incremental/parallel hot path:
//
//   * incremental network reuse (AladdinOptions::incremental_network, the
//     resolver's persistent state) must produce placements bit-identical to
//     a rebuild-from-scratch run — the reuse is a pure optimisation;
//   * the pool-backed admissible-path search (AladdinOptions::threads) must
//     match the serial walk on placements AND search counters, for any
//     thread count — determinism is part of the API, not best-effort;
//   * the supporting machinery (dirty log, change journal, instance ids,
//     CancelArcFlow, IncrementalRelaxation, Dijkstra-with-potentials) must
//     agree with its from-scratch oracle.
//
// These tests run under the asan/tsan presets too; the parallel cases are
// the TSan workhorse for the search fan-out.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "cluster/audit.h"
#include "common/rng.h"
#include "core/relaxation.h"
#include "core/scheduler.h"
#include "flow/max_flow.h"
#include "flow/min_cost_flow.h"
#include "flow/workspace.h"
#include "k8s/simulator.h"
#include "obs/metrics.h"
#include "obs/runtime.h"
#include "trace/workload.h"

namespace aladdin {
namespace {

using cluster::ApplicationId;
using cluster::ContainerId;
using cluster::MachineId;
using cluster::ResourceVector;
using cluster::Topology;
using trace::Workload;

// ----------------------------------------------------- state journals ----

Workload TinyWorkload() {
  Workload wl;
  wl.AddApplication("a", 3, ResourceVector::Cores(2, 4));
  wl.AddApplication("b", 2, ResourceVector::Cores(4, 8), 1, true);
  return wl;
}

TEST(DirtyLog, RecordsMutationsSinceCursor) {
  const Workload wl = TinyWorkload();
  const Topology topo = Topology::Uniform(4, ResourceVector::Cores(32, 64));
  cluster::ClusterState state = wl.MakeState(topo);
  state.EnableDirtyLog();
  const std::uint64_t start = state.DirtyLogEnd();

  state.Deploy(ContainerId(0), MachineId(1));
  state.Deploy(ContainerId(1), MachineId(2));
  state.Evict(ContainerId(0));

  bool overflowed = true;
  const auto dirty = state.DirtySince(start, &overflowed);
  EXPECT_FALSE(overflowed);
  ASSERT_EQ(dirty.size(), 3u);
  EXPECT_EQ(dirty[0], MachineId(1));
  EXPECT_EQ(dirty[1], MachineId(2));
  EXPECT_EQ(dirty[2], MachineId(1));

  // A cursor at the end sees nothing; an entry later it sees just that one.
  const std::uint64_t end = state.DirtyLogEnd();
  EXPECT_TRUE(state.DirtySince(end, &overflowed).empty());
  state.Migrate(ContainerId(1), MachineId(3));  // marks machines 2 and 3
  EXPECT_EQ(state.DirtySince(end, &overflowed).size(), 2u);
}

TEST(DirtyLog, ClearForcesFullResync) {
  const Workload wl = TinyWorkload();
  const Topology topo = Topology::Uniform(4, ResourceVector::Cores(32, 64));
  cluster::ClusterState state = wl.MakeState(topo);
  state.EnableDirtyLog();
  const std::uint64_t cursor = state.DirtyLogEnd();
  state.Deploy(ContainerId(0), MachineId(0));
  state.Clear();
  bool overflowed = false;
  EXPECT_TRUE(state.DirtySince(cursor, &overflowed).empty());
  EXPECT_TRUE(overflowed) << "pre-Clear cursors must be told to rebuild";
}

TEST(DirtyLog, OverflowDropsOldestAndFlagsStragglers) {
  const Workload wl = TinyWorkload();
  const Topology topo = Topology::Uniform(4, ResourceVector::Cores(32, 64));
  cluster::ClusterState state = wl.MakeState(topo);
  state.EnableDirtyLog();
  const std::uint64_t stale = state.DirtyLogEnd();
  // Each Deploy+Evict pair appends two entries; push well past the cap.
  for (int i = 0; i < (1 << 16); ++i) {
    state.Deploy(ContainerId(0), MachineId(0));
    state.Evict(ContainerId(0));
  }
  bool overflowed = false;
  (void)state.DirtySince(stale, &overflowed);
  EXPECT_TRUE(overflowed);
  // A fresh cursor still works incrementally.
  const std::uint64_t now = state.DirtyLogEnd();
  state.Deploy(ContainerId(0), MachineId(3));
  const auto dirty = state.DirtySince(now, &overflowed);
  EXPECT_FALSE(overflowed);
  ASSERT_EQ(dirty.size(), 1u);
  EXPECT_EQ(dirty[0], MachineId(3));
}

TEST(ChangeJournal, DeduplicatesPerContainer) {
  const Workload wl = TinyWorkload();
  const Topology topo = Topology::Uniform(4, ResourceVector::Cores(32, 64));
  cluster::ClusterState state = wl.MakeState(topo);
  state.EnableChangeJournal();
  state.Deploy(ContainerId(0), MachineId(0));
  state.Evict(ContainerId(0));
  state.Deploy(ContainerId(2), MachineId(1));
  const auto changed = state.TakeChangedContainers();
  ASSERT_EQ(changed.size(), 2u);
  EXPECT_EQ(changed[0], ContainerId(0));  // first-touch order
  EXPECT_EQ(changed[1], ContainerId(2));
  EXPECT_TRUE(state.TakeChangedContainers().empty()) << "take must clear";
}

TEST(InstanceId, CopiesAreDistinctStates) {
  const Workload wl = TinyWorkload();
  const Topology topo = Topology::Uniform(4, ResourceVector::Cores(32, 64));
  const cluster::ClusterState state = wl.MakeState(topo);
  const cluster::ClusterState copy = state;  // NOLINT: copy intended
  EXPECT_NE(state.instance_id(), copy.instance_id());
  cluster::ClusterState moved = wl.MakeState(topo);
  const std::uint64_t id = moved.instance_id();
  const cluster::ClusterState stolen = std::move(moved);
  EXPECT_EQ(stolen.instance_id(), id) << "moves keep identity";
}

TEST(WorkloadGrowth, AppendedContainersEnterState) {
  Workload wl = TinyWorkload();
  const Topology topo = Topology::Uniform(4, ResourceVector::Cores(32, 64));
  cluster::ClusterState state = wl.MakeState(topo);
  const std::size_t before = wl.container_count();
  const ContainerId c = wl.AddContainer(ApplicationId(0));
  EXPECT_EQ(static_cast<std::size_t>(c.value()), before);
  state.SyncWorkloadGrowth();
  EXPECT_FALSE(state.IsPlaced(c));
  state.Deploy(c, MachineId(0));
  EXPECT_TRUE(state.IsPlaced(c));
  EXPECT_TRUE(state.CheckConsistency());
}

// ------------------------------------------------ scheduler equivalence ----

// Random mixed workload; `waves` batches of apps appended to `wl`, returning
// the container ids added per wave.
std::vector<ContainerId> GrowWave(Workload& wl, Rng& rng, int apps) {
  std::vector<ContainerId> added;
  for (int a = 0; a < apps; ++a) {
    const std::size_t count = static_cast<std::size_t>(rng.UniformInt(1, 6));
    const std::size_t first = wl.container_count();
    wl.AddApplication(
        "app-" + std::to_string(wl.application_count()), count,
        ResourceVector::Cores(rng.UniformInt(1, 8), rng.UniformInt(2, 16)),
        static_cast<cluster::Priority>(
            rng.Bernoulli(0.2) ? rng.UniformInt(1, 3) : 0),
        rng.Bernoulli(0.5));
    for (std::size_t i = first; i < wl.container_count(); ++i) {
      added.emplace_back(static_cast<std::int32_t>(i));
    }
  }
  return added;
}

std::vector<MachineId> Placements(const cluster::ClusterState& state,
                                  std::size_t containers) {
  std::vector<MachineId> out;
  out.reserve(containers);
  for (std::size_t i = 0; i < containers; ++i) {
    out.push_back(state.PlacementOf(ContainerId(static_cast<std::int32_t>(i))));
  }
  return out;
}

TEST(IncrementalNetwork, PlacementsMatchFreshRebuildAcrossWaves) {
  const Topology topo =
      Topology::Uniform(48, ResourceVector::Cores(32, 64), 8, 3);
  Workload wl;
  Rng rng(2024);

  core::AladdinOptions inc_options;  // repair + compaction on (defaults)
  inc_options.incremental_network = true;
  core::AladdinOptions fresh_options = inc_options;
  fresh_options.incremental_network = false;

  core::AladdinScheduler incremental(inc_options);  // one persistent engine
  cluster::ClusterState inc_state = wl.MakeState(topo);
  cluster::ClusterState fresh_state = wl.MakeState(topo);

  for (int wave = 0; wave < 6; ++wave) {
    const std::vector<ContainerId> arrivals = GrowWave(wl, rng, 4);
    inc_state.SyncWorkloadGrowth();
    fresh_state.SyncWorkloadGrowth();

    // External churn the network only learns about via the dirty log:
    // evict a slice of the placed containers directly on the state.
    std::vector<ContainerId> placed;
    for (const auto& c : wl.containers()) {
      if (inc_state.IsPlaced(c.id)) placed.push_back(c.id);
    }
    for (std::size_t i = 0; i < placed.size(); i += 5) {
      inc_state.Evict(placed[i]);
      fresh_state.Evict(placed[i]);
    }

    // Both schedulers see the same pending set (evictees + arrivals).
    std::vector<ContainerId> pending;
    for (const auto& c : wl.containers()) {
      if (!inc_state.IsPlaced(c.id)) pending.push_back(c.id);
    }
    const sim::ScheduleRequest request{&wl, &pending};
    const auto inc_outcome = incremental.Schedule(request, inc_state);
    core::AladdinScheduler fresh(fresh_options);  // new engine every wave
    const auto fresh_outcome = fresh.Schedule(request, fresh_state);

    EXPECT_EQ(Placements(inc_state, wl.container_count()),
              Placements(fresh_state, wl.container_count()))
        << "wave " << wave;
    EXPECT_EQ(inc_outcome.unplaced, fresh_outcome.unplaced)
        << "wave " << wave;
    ASSERT_TRUE(inc_state.CheckConsistency());
  }
}

// Pooled scratch identity: one persistent scheduler reuses its arena,
// repair scratch, workspaces, and CSR across waves; a throwaway engine
// built fresh per wave starts cold each time. The pooling is memory reuse
// only — identical placements and outcomes, wave after wave, or scratch
// state is leaking across ticks.
TEST(PooledScratch, PersistentEngineMatchesFreshEnginePerWave) {
  const Topology topo =
      Topology::Uniform(48, ResourceVector::Cores(32, 64), 8, 3);
  Workload wl;
  Rng rng(4711);

  const core::AladdinOptions options;  // defaults: repair + compaction on
  core::AladdinScheduler pooled(options);  // warm scratch across waves
  cluster::ClusterState pooled_state = wl.MakeState(topo);
  cluster::ClusterState fresh_state = wl.MakeState(topo);

  for (int wave = 0; wave < 6; ++wave) {
    const std::vector<ContainerId> arrivals = GrowWave(wl, rng, 6);
    pooled_state.SyncWorkloadGrowth();
    fresh_state.SyncWorkloadGrowth();

    std::vector<ContainerId> placed;
    for (const auto& c : wl.containers()) {
      if (pooled_state.IsPlaced(c.id)) placed.push_back(c.id);
    }
    for (std::size_t i = 0; i < placed.size(); i += 4) {
      pooled_state.Evict(placed[i]);
      fresh_state.Evict(placed[i]);
    }

    std::vector<ContainerId> pending;
    for (const auto& c : wl.containers()) {
      if (!pooled_state.IsPlaced(c.id)) pending.push_back(c.id);
    }
    const sim::ScheduleRequest request{&wl, &pending};
    const auto pooled_outcome = pooled.Schedule(request, pooled_state);
    core::AladdinScheduler fresh(options);  // cold scratch every wave
    const auto fresh_outcome = fresh.Schedule(request, fresh_state);

    EXPECT_EQ(Placements(pooled_state, wl.container_count()),
              Placements(fresh_state, wl.container_count()))
        << "wave " << wave;
    EXPECT_EQ(pooled_outcome.unplaced, fresh_outcome.unplaced)
        << "wave " << wave;
    // No search-counter assertion: the persistent engine's IL memo (and
    // incremental network) legitimately prune differently from a cold
    // engine — placements are the contract on this axis (see DESIGN §5).
    ASSERT_TRUE(pooled_state.CheckConsistency());
  }
}

TEST(ParallelSearch, PlacementsAndCountersMatchSerial) {
  const Topology topo =
      Topology::Uniform(40, ResourceVector::Cores(32, 64), 8, 3);
  struct Policy {
    bool il, dl;
  };
  for (const Policy policy : {Policy{false, false}, Policy{true, false},
                              Policy{true, true}}) {
    for (const int threads : {2, 4}) {
      Workload wl;
      Rng rng(99);
      (void)GrowWave(wl, rng, 24);
      std::vector<ContainerId> pending;
      for (const auto& c : wl.containers()) pending.push_back(c.id);
      const sim::ScheduleRequest request{&wl, &pending};

      core::AladdinOptions serial_options;
      serial_options.enable_il = policy.il;
      serial_options.enable_dl = policy.dl;
      serial_options.threads = 1;
      core::AladdinOptions parallel_options = serial_options;
      parallel_options.threads = threads;

      cluster::ClusterState serial_state = wl.MakeState(topo);
      cluster::ClusterState parallel_state = wl.MakeState(topo);
      core::AladdinScheduler serial(serial_options);
      core::AladdinScheduler parallel(parallel_options);
      const auto serial_outcome = serial.Schedule(request, serial_state);
      const auto parallel_outcome = parallel.Schedule(request, parallel_state);

      const std::string label = "il=" + std::to_string(policy.il) +
                                " dl=" + std::to_string(policy.dl) +
                                " threads=" + std::to_string(threads);
      EXPECT_EQ(Placements(serial_state, wl.container_count()),
                Placements(parallel_state, wl.container_count()))
          << label;
      EXPECT_EQ(serial_outcome.unplaced, parallel_outcome.unplaced) << label;
      // The determinism contract covers the instrumentation too.
      EXPECT_EQ(serial_outcome.explored_paths, parallel_outcome.explored_paths)
          << label;
      EXPECT_EQ(serial_outcome.il_prunes, parallel_outcome.il_prunes) << label;
      EXPECT_EQ(serial_outcome.dl_stops, parallel_outcome.dl_stops) << label;
    }
  }
}

// ------------------------------------------------- resolver equivalence ----

// Scripted mixed cluster: deployments, batch jobs, deletions, a node
// removal. Drives both resolver modes through identical event streams and
// expects identical bindings, stats, and final pod placement.
void RunScript(k8s::ClusterSimulator& sim, int ticks) {
  Rng rng(7);
  std::int64_t apps = 0;
  for (int t = 0; t < ticks; ++t) {
    for (int d = 0; d < 3; ++d) {
      k8s::PodSpec spec;
      spec.requests = cluster::ResourceVector::Cores(rng.UniformInt(1, 6),
                                                     rng.UniformInt(2, 12));
      spec.priority = rng.Bernoulli(0.2)
                          ? static_cast<cluster::Priority>(rng.UniformInt(1, 3))
                          : 0;
      spec.anti_affinity_within = rng.Bernoulli(0.6);
      sim.SubmitDeployment("svc-" + std::to_string(apps++),
                           static_cast<std::size_t>(rng.UniformInt(1, 5)),
                           spec);
    }
    sim.SubmitBatchJob("job-" + std::to_string(t), 12,
                       cluster::ResourceVector::Cores(1, 2),
                       /*lifetime_ticks=*/2);
    if (t == 3) sim.ScaleDown("svc-1", 2);
    if (t == 5) sim.RemoveNode("node-7");  // forces a topology rebuild
    sim.Tick();
  }
}

std::map<k8s::PodUid, std::string> FinalBindings(k8s::ClusterSimulator& sim) {
  std::map<k8s::PodUid, std::string> out;
  for (k8s::PodUid uid : sim.adaptor().BoundPods()) {
    out[uid] = sim.adaptor().FindPod(uid)->node;
  }
  return out;
}

TEST(ResolverEquivalence, IncrementalMatchesRebuildPerTick) {
  k8s::ResolverOptions inc_options;
  inc_options.aladdin = k8s::Resolver::DefaultOptions();
  inc_options.incremental = true;
  k8s::ResolverOptions rebuild_options = inc_options;
  rebuild_options.incremental = false;

  k8s::ClusterSimulator inc(inc_options);
  k8s::ClusterSimulator rebuild(rebuild_options);
  inc.AddNodes(16, cluster::ResourceVector::Cores(32, 64), "node", 4, 2);
  rebuild.AddNodes(16, cluster::ResourceVector::Cores(32, 64), "node", 4, 2);

  RunScript(inc, 9);
  RunScript(rebuild, 9);

  ASSERT_EQ(inc.history().size(), rebuild.history().size());
  for (std::size_t t = 0; t < inc.history().size(); ++t) {
    const auto& a = inc.history()[t];
    const auto& b = rebuild.history()[t];
    EXPECT_EQ(a.new_bindings, b.new_bindings) << "tick " << t;
    EXPECT_EQ(a.migrations, b.migrations) << "tick " << t;
    EXPECT_EQ(a.preemptions, b.preemptions) << "tick " << t;
    EXPECT_EQ(a.unschedulable, b.unschedulable) << "tick " << t;
  }
  EXPECT_EQ(FinalBindings(inc), FinalBindings(rebuild));
  EXPECT_EQ(inc.completed_tasks(), rebuild.completed_tasks());
}

TEST(ResolverEquivalence, ParallelResolverMatchesSerial) {
  k8s::ResolverOptions serial_options;
  serial_options.aladdin = k8s::Resolver::DefaultOptions();
  serial_options.aladdin.threads = 1;
  k8s::ResolverOptions parallel_options = serial_options;
  parallel_options.aladdin.threads = 3;

  k8s::ClusterSimulator serial(serial_options);
  k8s::ClusterSimulator parallel(parallel_options);
  serial.AddNodes(16, cluster::ResourceVector::Cores(32, 64), "node", 4, 2);
  parallel.AddNodes(16, cluster::ResourceVector::Cores(32, 64), "node", 4, 2);
  RunScript(serial, 7);
  RunScript(parallel, 7);
  EXPECT_EQ(FinalBindings(serial), FinalBindings(parallel));
}

// --------------------------------------------- incremental relaxation ----

TEST(IncrementalRelaxation, BoundMatchesFreshSolveUnderChurn) {
  const Topology topo =
      Topology::Uniform(24, ResourceVector::Cores(32, 64), 6, 2);
  Workload wl;
  Rng rng(4242);
  (void)GrowWave(wl, rng, 10);
  cluster::ClusterState state = wl.MakeState(topo);
  core::IncrementalRelaxation incremental;

  for (int round = 0; round < 8; ++round) {
    // Mutate: deploy some unplaced containers, evict some placed ones.
    for (const auto& c : wl.containers()) {
      if (!state.IsPlaced(c.id) && rng.Bernoulli(0.4)) {
        const MachineId m(rng.UniformInt(0, 23));
        if (state.Fits(c.id, m)) state.Deploy(c.id, m);
      } else if (state.IsPlaced(c.id) && rng.Bernoulli(0.15)) {
        state.Evict(c.id);
      }
    }
    if (round == 4) {  // workload growth without an application change
      for (int i = 0; i < 5; ++i) {
        wl.AddContainer(ApplicationId(rng.UniformInt(
            0, static_cast<std::int64_t>(wl.application_count()) - 1)));
      }
      state.SyncWorkloadGrowth();
    }
    const core::RelaxationBound fresh = core::SolveRelaxation(wl, state);
    const core::RelaxationBound warm = incremental.Solve(wl, state);
    EXPECT_EQ(warm.placeable_cpu_millis, fresh.placeable_cpu_millis)
        << "round " << round;
    EXPECT_EQ(warm.demand_cpu_millis, fresh.demand_cpu_millis)
        << "round " << round;
    if (round > 0) EXPECT_TRUE(incremental.reused_last()) << round;
  }

  // A new application forces (and survives) a rebuild.
  wl.AddApplication("late", 2, ResourceVector::Cores(2, 4));
  state.SyncWorkloadGrowth();
  const core::RelaxationBound fresh = core::SolveRelaxation(wl, state);
  const core::RelaxationBound warm = incremental.Solve(wl, state);
  EXPECT_FALSE(incremental.reused_last());
  EXPECT_EQ(warm.placeable_cpu_millis, fresh.placeable_cpu_millis);
}

// ------------------------------------------------------ flow substrate ----

flow::Graph LayeredGraph(std::int64_t width, VertexId& s, VertexId& t,
                         std::uint64_t seed, bool negative_costs = false) {
  flow::Graph g;
  s = g.AddVertex();
  t = g.AddVertex();
  const VertexId tasks = g.AddVertices(static_cast<std::size_t>(width));
  const VertexId machines = g.AddVertices(static_cast<std::size_t>(width));
  Rng rng(seed);
  for (std::int64_t i = 0; i < width; ++i) {
    const VertexId task(tasks.value() + static_cast<std::int32_t>(i));
    g.AddArc(s, task, rng.UniformInt(1, 8));
    for (int d = 0; d < 4; ++d) {
      const VertexId machine(machines.value() + static_cast<std::int32_t>(
                                                    rng.UniformInt(0, width - 1)));
      const flow::Cost cost =
          negative_costs ? rng.UniformInt(-16, 48) : rng.UniformInt(0, 48);
      g.AddArc(task, machine, rng.UniformInt(1, 8), cost);
    }
  }
  for (std::int64_t i = 0; i < width; ++i) {
    const VertexId machine(machines.value() + static_cast<std::int32_t>(i));
    g.AddArc(machine, t, rng.UniformInt(2, 16));
  }
  return g;
}

TEST(CancelArcFlow, WarmRestartMatchesColdSolveAfterCapacityCuts) {
  for (const std::uint64_t seed : {1u, 7u, 21u}) {
    VertexId s, t;
    flow::Graph warm = LayeredGraph(32, s, t, seed);
    flow::Graph cold = LayeredGraph(32, s, t, seed);  // identical arc ids
    flow::Dinic(warm, s, t);

    // Cut the capacity of every 3rd machine->sink arc below its flow.
    Rng rng(seed * 31 + 1);
    const auto arcs = static_cast<std::int32_t>(warm.arc_count());
    for (std::int32_t a = arcs - 64; a < arcs; a += 6) {
      const ArcId arc(a);
      const flow::Capacity want = rng.UniformInt(0, 4);
      if (warm.Flow(arc) > want) {
        const flow::Capacity excess = warm.Flow(arc) - want;
        EXPECT_EQ(flow::CancelArcFlow(warm, arc, excess, s, t), excess);
      }
      warm.SetCapacity(arc, want);
      cold.SetCapacity(arc, want);
      const VertexId exempt[] = {s, t};
      std::string error;
      ASSERT_TRUE(warm.ValidateInvariants(exempt, &error)) << error;
    }

    const flow::Capacity residual_value = flow::Dinic(warm, s, t).value;
    (void)residual_value;
    const flow::Capacity cold_value = flow::Dinic(cold, s, t).value;
    EXPECT_EQ(warm.NetOutflow(s), cold_value) << "seed " << seed;
  }
}

TEST(MinCostFlow, DijkstraWithPotentialsMatchesSpfa) {
  for (const std::uint64_t seed : {3u, 11u, 27u, 40u}) {
    for (const bool negative : {false, true}) {
      VertexId s, t;
      flow::Graph a = LayeredGraph(24, s, t, seed, negative);
      flow::Graph b = LayeredGraph(24, s, t, seed, negative);
      const auto spfa = flow::MinCostMaxFlow(a, s, t);
      flow::MinCostFlowOptions options;
      options.pathfinder = flow::MinCostFlowOptions::Pathfinder::kDijkstra;
      const auto dijkstra =
          flow::MinCostMaxFlow(b, s, t, flow::kInfiniteCapacity, options);
      EXPECT_FALSE(spfa.negative_cycle);
      EXPECT_FALSE(dijkstra.negative_cycle);
      EXPECT_EQ(dijkstra.flow, spfa.flow)
          << "seed " << seed << " negative=" << negative;
      EXPECT_EQ(dijkstra.cost, spfa.cost)
          << "seed " << seed << " negative=" << negative;
      const VertexId exempt[] = {s, t};
      EXPECT_TRUE(b.ValidateInvariants(exempt));
    }
  }
}

// ------------------------------------------------ zero-alloc witness ----

std::int64_t CounterValue(const char* name) {
  for (const auto& c : obs::Registry::Get().Snapshot().counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

// The tentpole's acceptance witness: after warmup ticks have grown every
// solver buffer to its high-water mark, further steady-state ticks must
// never grow a workspace again (flow/ws_grow flat) while still running
// solves (flow/ws_reuse advancing). Batch jobs complete after two ticks, so
// load is stationary — later ticks never exceed the warmup footprint.
// Solver-level witness: a reused Workspace grows its buffers on the first
// run over a graph and never again — every later BeginRun lands in the
// ws_reuse bucket. This is the zero-steady-state-allocation contract at the
// layer where the counters live.
TEST(ZeroAllocSteadyState, WorkspaceGrowthStopsAfterFirstSolve) {
  obs::Registry::Get().ResetAll();
  obs::SetMetricsEnabled(true);

  VertexId s{}, t{};
  flow::Graph g = LayeredGraph(64, s, t, 97);
  g.Freeze();
  flow::Workspace ws;

  const flow::Capacity expected = flow::Dinic(g, s, t, ws).value;
  const std::int64_t grow_warm = CounterValue("flow/ws_grow");
  const std::int64_t reuse_warm = CounterValue("flow/ws_reuse");
  EXPECT_GT(grow_warm, 0) << "first solve must size the workspace";

  for (int run = 0; run < 16; ++run) {
    g.ResetFlows();
    EXPECT_EQ(flow::Dinic(g, s, t, ws).value, expected) << "run " << run;
  }
  const std::int64_t grow_steady = CounterValue("flow/ws_grow");
  const std::int64_t reuse_steady = CounterValue("flow/ws_reuse");

  obs::SetMetricsEnabled(false);
  EXPECT_EQ(grow_steady, grow_warm)
      << "a steady-state solve grew a workspace buffer";
  EXPECT_GE(reuse_steady - reuse_warm, 16)
      << "every steady-state solve must land in the reuse bucket";
}

// Scheduler-level witness: after warmup ticks, further resolver ticks never
// grow a workspace buffer. (ws_reuse is not asserted here — the resolver
// invokes the flow solvers only when the relaxation bound actually needs a
// re-solve, which this small steady scenario may never trigger.)
TEST(ZeroAllocSteadyState, ResolverTicksStayGrowFlatAfterWarmup) {
  obs::Registry::Get().ResetAll();
  obs::SetMetricsEnabled(true);

  k8s::ResolverOptions options;
  options.aladdin = k8s::Resolver::DefaultOptions();
  k8s::ClusterSimulator sim(options);
  sim.AddNodes(24, cluster::ResourceVector::Cores(32, 64), "node", 4, 2);

  auto run_tick = [&sim](int t) {
    k8s::PodSpec spec;
    spec.requests = cluster::ResourceVector::Cores(2, 4);
    sim.SubmitDeployment("svc-" + std::to_string(t), 3, spec);
    sim.SubmitBatchJob("job-" + std::to_string(t), 10,
                       cluster::ResourceVector::Cores(1, 2),
                       /*lifetime_ticks=*/2);
    sim.Tick();
  };

  for (int t = 0; t < 4; ++t) run_tick(t);  // warmup

  const std::int64_t grow_warm = CounterValue("flow/ws_grow");
  for (int t = 4; t < 10; ++t) run_tick(t);
  const std::int64_t grow_steady = CounterValue("flow/ws_grow");

  obs::SetMetricsEnabled(false);
  EXPECT_EQ(grow_steady, grow_warm)
      << "a steady-state tick grew a workspace buffer";
}

}  // namespace
}  // namespace aladdin

// Tests for the simulation harness: metrics derivation (Eq. 10 / Eq. 11),
// the experiment driver's wiring, report table construction, and the bench
// workload/machine-count helpers.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/csv.h"

#include "core/scheduler.h"
#include "sim/experiment.h"
#include "sim/metrics.h"
#include "sim/report.h"

namespace aladdin::sim {
namespace {

using cluster::ResourceVector;
using cluster::Topology;

// ------------------------------------------------------------- metrics ----

TEST(Metrics, EfficiencyEquation10Math) {
  RunMetrics m;
  m.used_machines = 14211;
  // Paper's Go-Kube worst case vs Aladdin's 9,242: 14211/9242 - 1 = 0.5376.
  EXPECT_NEAR(m.EfficiencyVs(9242), 0.5376, 0.0005);
  m.used_machines = 9242;
  EXPECT_DOUBLE_EQ(m.EfficiencyVs(9242), 0.0);
}

TEST(Metrics, EfficiencyHandlesZeroes) {
  RunMetrics m;
  m.used_machines = 0;
  EXPECT_DOUBLE_EQ(m.EfficiencyVs(100), 0.0);
  m.used_machines = 100;
  EXPECT_DOUBLE_EQ(m.EfficiencyVs(0), 0.0);
}

TEST(Metrics, ComputeRunMetricsDerivesEverything) {
  trace::Workload wl;
  const auto app = wl.AddApplication("a", 4, ResourceVector::Cores(8, 16));
  const Topology topo = Topology::Uniform(4, ResourceVector::Cores(32, 64));
  auto state = wl.MakeState(topo);
  state.Deploy(wl.application(app).containers[0], cluster::MachineId(0));
  state.Deploy(wl.application(app).containers[1], cluster::MachineId(0));
  state.RecordMigrations(3);

  ScheduleOutcome outcome;
  outcome.unplaced = {wl.application(app).containers[2],
                      wl.application(app).containers[3]};
  const RunMetrics m =
      ComputeRunMetrics("test", state, std::move(outcome), /*wall=*/2.0);

  EXPECT_EQ(m.scheduler, "test");
  EXPECT_EQ(m.audit.placed, 2u);
  EXPECT_EQ(m.audit.unplaced, 2u);
  EXPECT_EQ(m.used_machines, 1u);
  EXPECT_EQ(m.migrations, 3);
  // Eq. 11: 2 s over 4 containers = 500 ms each.
  EXPECT_DOUBLE_EQ(m.latency_ms_per_container, 500.0);
  EXPECT_DOUBLE_EQ(m.util.max_share, 0.5);  // 16 of 32 cores
}

// ---------------------------------------------------------- experiment ----

TEST(Experiment, BenchMachineCountScalesLinearly) {
  EXPECT_EQ(BenchMachineCount(1.0), 10000u);
  EXPECT_EQ(BenchMachineCount(0.04), 400u);
  EXPECT_EQ(BenchMachineCount(0.0001), 16u);  // floor
}

TEST(Experiment, MakeBenchWorkloadIsSeeded) {
  const trace::Workload a = MakeBenchWorkload(0.01, 1);
  const trace::Workload b = MakeBenchWorkload(0.01, 1);
  const trace::Workload c = MakeBenchWorkload(0.01, 2);
  EXPECT_EQ(a.container_count(), b.container_count());
  EXPECT_EQ(a.constraints().rule_count(), b.constraints().rule_count());
  const bool differs =
      a.container_count() != c.container_count() ||
      a.constraints().rule_count() != c.constraints().rule_count();
  EXPECT_TRUE(differs);
}

TEST(Experiment, RunExperimentTimesTheScheduleOnly) {
  const trace::Workload wl = MakeBenchWorkload(0.01, 42);
  ExperimentConfig config;
  config.machines = BenchMachineCount(0.01);
  core::AladdinScheduler scheduler;
  const RunMetrics m = RunExperiment(scheduler, wl, config);
  EXPECT_GT(m.wall_seconds, 0.0);
  EXPECT_LT(m.wall_seconds, 30.0);
  EXPECT_EQ(m.scheduler, scheduler.name());
  EXPECT_EQ(m.audit.total_containers, wl.container_count());
}

TEST(Experiment, ArrivalSeedChangesRandomOrderOnly) {
  const trace::Workload wl = MakeBenchWorkload(0.02, 42);
  ExperimentConfig a;
  a.machines = BenchMachineCount(0.02);
  a.order = trace::ArrivalOrder::kRandom;
  a.arrival_seed = 1;
  ExperimentConfig b = a;
  b.arrival_seed = 2;
  // Aladdin re-sorts by weighted flow, so even different arrival seeds only
  // shuffle tie-breaking; the audited placement count must agree.
  core::AladdinScheduler s1, s2;
  const RunMetrics ra = RunExperiment(s1, wl, a);
  const RunMetrics rb = RunExperiment(s2, wl, b);
  EXPECT_EQ(ra.audit.placed, rb.audit.placed);
}

// --------------------------------------------------------------- report ----

TEST(Report, BuildRunTableContainsSchedulerRows) {
  RunMetrics m;
  m.scheduler = "TestSched";
  m.audit.total_containers = 100;
  m.audit.placed = 90;
  m.audit.unplaced = 10;
  m.used_machines = 42;
  const std::string out = BuildRunTable({m}).Render();
  EXPECT_NE(out.find("TestSched"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
  EXPECT_NE(out.find("violations%"), std::string::npos);
  // 10 violations of 100 containers = 10.0 %.
  EXPECT_NE(out.find("10.0"), std::string::npos);
}

TEST(Report, BuildRunTableWithPaperNotes) {
  RunMetrics m;
  m.scheduler = "X";
  const std::string out =
      BuildRunTable({m}, {"paper says 21.2"}).Render();
  EXPECT_NE(out.find("paper says 21.2"), std::string::npos);
  EXPECT_NE(out.find("| paper"), std::string::npos);
}

TEST(Report, BuildEfficiencyTableMarksBestAsZero) {
  RunMetrics best, worse;
  best.scheduler = "best";
  best.used_machines = 100;
  worse.scheduler = "worse";
  worse.used_machines = 150;
  const std::string out = BuildEfficiencyTable({worse, best}).Render();
  EXPECT_NE(out.find("0.000"), std::string::npos);
  EXPECT_NE(out.find("0.500"), std::string::npos);
}

TEST(Report, CsvExportRoundTrips) {
  RunMetrics m;
  m.scheduler = "Sched,WithComma";
  m.audit.total_containers = 10;
  m.audit.placed = 9;
  m.audit.unplaced = 1;
  m.used_machines = 3;
  m.wall_seconds = 0.5;

  const std::string path = ::testing::TempDir() + "/metrics_test.csv";
  std::remove(path.c_str());
  ASSERT_TRUE(AppendMetricsCsv(path, "fig9", "panel1", {m}));
  ASSERT_TRUE(AppendMetricsCsv(path, "fig9", "panel2", {m}));  // appends

  std::ifstream is(path);
  ASSERT_TRUE(is.good());
  CsvReader reader(is);
  std::vector<std::string> row;
  ASSERT_TRUE(reader.NextRow(row));  // header
  EXPECT_EQ(row[0], "experiment");
  ASSERT_TRUE(reader.NextRow(row));
  EXPECT_EQ(row[0], "fig9");
  EXPECT_EQ(row[1], "panel1");
  EXPECT_EQ(row[2], "Sched,WithComma");  // quoting survived
  ASSERT_TRUE(reader.NextRow(row));
  EXPECT_EQ(row[1], "panel2");
  EXPECT_FALSE(reader.NextRow(row));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace aladdin::sim

// Shared gtest main for every Aladdin test binary. Tests run with the log
// level at kWarn by default (common/log.h documents this contract) so
// expected-warning code paths don't drown the gtest output; export
// ALADDIN_LOG_LEVEL=debug|info|warn|error to override when chasing a
// failure.
#include <cstdlib>

#include "gtest/gtest.h"

#include "common/log.h"

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  aladdin::LogLevel level = aladdin::LogLevel::kWarn;
  const char* env = std::getenv("ALADDIN_LOG_LEVEL");
  const bool env_bad =
      env != nullptr && !aladdin::ParseLogLevel(env, &level);
  aladdin::SetLogLevel(level);
  if (env_bad) {
    LOG_WARN << "unrecognised ALADDIN_LOG_LEVEL=\"" << env
             << "\"; using \"warn\"";
  }
  return RUN_ALL_TESTS();
}

// Sharded scale-out contract (core::ShardedScheduler + cluster::ShardPlan):
//
//   * shards=1 is bit-identical to the unsharded AladdinScheduler —
//     placements, outcome counters AND the decision journal stream;
//   * for a fixed K the result is bit-identical for any solve-pool size
//     (threads is a throughput knob, never a behaviour knob);
//   * routing is a pure function of (workload, state, arrival order): two
//     fresh coordinators — a process restart in miniature — route and
//     place identically;
//   * the blacklist-exchange round steers anti-affinity-constrained
//     applications away from shards with zero eligible machines, so
//     cross-shard inter-app anti-affinity never produces colocation
//     violations or dead-on-arrival solves;
//   * spill rounds recover from a home shard that cannot hold an
//     application's whole wave;
//   * the supporting machinery (ShardPlan partitioning, scoped dirty logs)
//     agrees with its contracts in isolation.
//
// These tests run under the asan/tsan presets too; the threads>1 grid cases
// are the TSan workhorse for the parallel shard solves.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cluster/audit.h"
#include "cluster/shard.h"
#include "cluster/state.h"
#include "cluster/topology.h"
#include "common/rng.h"
#include "core/scheduler.h"
#include "core/sharded.h"
#include "k8s/simulator.h"
#include "obs/journal.h"
#include "trace/workload.h"

namespace aladdin {
namespace {

using cluster::ApplicationId;
using cluster::ContainerId;
using cluster::MachineId;
using cluster::RackId;
using cluster::ResourceVector;
using cluster::ShardPlan;
using cluster::SubClusterId;
using cluster::Topology;
using trace::Workload;

// ------------------------------------------------------------ ShardPlan ----

TEST(ShardPlan, KOneIsVerbatimCopy) {
  const Topology topo = Topology::Uniform(12, ResourceVector::Cores(32, 64),
                                          4, 2);
  const ShardPlan plan = ShardPlan::Build(topo, 1);
  ASSERT_EQ(plan.shard_count(), 1);
  EXPECT_EQ(plan.shard_topology(0).machine_count(), topo.machine_count());
  EXPECT_EQ(plan.shard_topology(0).rack_count(), topo.rack_count());
  EXPECT_EQ(plan.shard_topology(0).subcluster_count(),
            topo.subcluster_count());
  for (std::size_t m = 0; m < topo.machine_count(); ++m) {
    const MachineId id(static_cast<std::int32_t>(m));
    EXPECT_EQ(plan.ShardOf(id), 0);
    EXPECT_EQ(plan.LocalOf(id), id) << "K=1 local ids must equal global ids";
    EXPECT_EQ(plan.GlobalOf(0, id), id);
  }
}

TEST(ShardPlan, PartitionCoversEveryMachineExactlyOnce) {
  const Topology topo = Topology::Uniform(48, ResourceVector::Cores(32, 64),
                                          8, 3);
  for (const int k : {2, 4, 16, 48}) {
    const ShardPlan plan = ShardPlan::Build(topo, k);
    ASSERT_EQ(plan.shard_count(), k);
    std::vector<int> seen(topo.machine_count(), 0);
    std::size_t total = 0;
    for (int s = 0; s < k; ++s) {
      EXPECT_EQ(plan.shard_topology(s).machine_count(),
                plan.shard_machines(s).size());
      EXPECT_FALSE(plan.shard_machines(s).empty()) << "empty shard " << s;
      for (const MachineId g : plan.shard_machines(s)) {
        ++seen[static_cast<std::size_t>(g.value())];
        ++total;
        EXPECT_EQ(plan.ShardOf(g), s);
        // Roundtrip: global -> (shard, local) -> global.
        EXPECT_EQ(plan.GlobalOf(s, plan.LocalOf(g)), g);
        // The local machine keeps its capacity.
        EXPECT_EQ(plan.shard_topology(s).machine(plan.LocalOf(g)).capacity,
                  topo.machine(g).capacity);
      }
    }
    EXPECT_EQ(total, topo.machine_count()) << "k=" << k;
    for (const int count : seen) EXPECT_EQ(count, 1) << "k=" << k;
  }
}

TEST(ShardPlan, RackGranularitySplitKeepsRacksWhole) {
  // 6 racks, 2 subclusters: K=4 exceeds the subcluster count, so the split
  // falls back to rack granularity — every rack's machines stay together.
  const Topology topo = Topology::Uniform(48, ResourceVector::Cores(32, 64),
                                          8, 3);
  ASSERT_LT(topo.subcluster_count(), 4u);
  ASSERT_GE(topo.rack_count(), 4u);
  const ShardPlan plan = ShardPlan::Build(topo, 4);
  for (std::size_t r = 0; r < topo.rack_count(); ++r) {
    const auto machines =
        topo.RackMachines(RackId(static_cast<std::int32_t>(r)));
    ASSERT_FALSE(machines.empty());
    const std::int32_t shard = plan.ShardOf(machines.front());
    for (const MachineId m : machines) {
      EXPECT_EQ(plan.ShardOf(m), shard) << "rack " << r << " split apart";
    }
  }
  // Greedy balance at rack granularity: 6 equal racks over 4 shards means
  // no shard holds more than 2 racks' worth of machines.
  for (int s = 0; s < 4; ++s) {
    EXPECT_LE(plan.shard_machines(s).size(), 16u);
    EXPECT_GE(plan.shard_machines(s).size(), 8u);
  }
}

TEST(ShardPlan, ShardCountClampsToMachineCount) {
  const Topology topo = Topology::Uniform(5, ResourceVector::Cores(4, 8), 2, 2);
  const ShardPlan plan = ShardPlan::Build(topo, 64);
  EXPECT_EQ(plan.shard_count(), 5);
  for (int s = 0; s < 5; ++s) {
    EXPECT_EQ(plan.shard_machines(s).size(), 1u);
  }
}

// ---------------------------------------------------- scoped dirty logs ----

TEST(ScopedDirtyLog, OverflowOfOneScopeLeavesOthersIncremental) {
  Workload wl;
  wl.AddApplication("a", 4, ResourceVector::Cores(1, 2));
  const Topology topo = Topology::Uniform(4, ResourceVector::Cores(32, 64));
  cluster::ClusterState state = wl.MakeState(topo);
  // Machines 0,1 -> scope 0; machines 2,3 -> scope 1.
  state.ConfigureDirtyScopes({0, 0, 1, 1}, 2);
  const std::uint64_t cursor0 = state.ScopedDirtyLogEnd(0);
  const std::uint64_t cursor1 = state.ScopedDirtyLogEnd(1);

  state.Deploy(ContainerId(0), MachineId(3));  // one entry in scope 1
  // Overflow scope 0 only.
  for (int i = 0; i < (1 << 17); ++i) {
    state.Deploy(ContainerId(1), MachineId(0));
    state.Evict(ContainerId(1));
  }

  bool overflowed = false;
  (void)state.ScopedDirtySince(0, cursor0, &overflowed);
  EXPECT_TRUE(overflowed) << "scope 0 must report its own overflow";
  overflowed = true;
  const auto dirty1 = state.ScopedDirtySince(1, cursor1, &overflowed);
  EXPECT_FALSE(overflowed) << "scope 1 must be untouched by scope 0's churn";
  ASSERT_EQ(dirty1.size(), 1u);
  EXPECT_EQ(dirty1[0], MachineId(3));
}

TEST(ScopedDirtyLog, ReconfigureInvalidatesPriorCursors) {
  Workload wl;
  wl.AddApplication("a", 2, ResourceVector::Cores(1, 2));
  const Topology topo = Topology::Uniform(4, ResourceVector::Cores(32, 64));
  cluster::ClusterState state = wl.MakeState(topo);
  state.ConfigureDirtyScopes({0, 0, 1, 1}, 2);
  const std::uint64_t stale = state.ScopedDirtyLogEnd(0);
  state.ConfigureDirtyScopes({0, 1, 0, 1}, 2);  // re-partition
  bool overflowed = false;
  (void)state.ScopedDirtySince(0, stale, &overflowed);
  EXPECT_TRUE(overflowed)
      << "cursors from before a reconfigure must be told to rebuild";
}

// ------------------------------------------------- sharded equivalence ----

// Random mixed workload, same generator family as test_equivalence.
std::vector<ContainerId> GrowWave(Workload& wl, Rng& rng, int apps) {
  std::vector<ContainerId> added;
  for (int a = 0; a < apps; ++a) {
    const std::size_t first = wl.container_count();
    wl.AddApplication(
        "app-" + std::to_string(wl.application_count()),
        static_cast<std::size_t>(rng.UniformInt(1, 6)),
        ResourceVector::Cores(rng.UniformInt(1, 8), rng.UniformInt(2, 16)),
        static_cast<cluster::Priority>(
            rng.Bernoulli(0.2) ? rng.UniformInt(1, 3) : 0),
        rng.Bernoulli(0.5));
    for (std::size_t i = first; i < wl.container_count(); ++i) {
      added.emplace_back(static_cast<std::int32_t>(i));
    }
  }
  return added;
}

std::vector<MachineId> Placements(const cluster::ClusterState& state,
                                  std::size_t containers) {
  std::vector<MachineId> out;
  out.reserve(containers);
  for (std::size_t i = 0; i < containers; ++i) {
    out.push_back(state.PlacementOf(ContainerId(static_cast<std::int32_t>(i))));
  }
  return out;
}

// The journal stream as JSONL lines: a full-fidelity, diffable fingerprint
// (seq, tick, kind, cause, ids, detail, shard) of one run's decisions.
std::vector<std::string> JournalLines() {
  std::vector<std::string> lines;
  for (const obs::Decision& d : obs::JournalSnapshot()) {
    lines.push_back(obs::DecisionToJson(d));
  }
  return lines;
}

// Drives `scheduler` through `waves` waves of growth + scripted churn on
// `state`, journaling every decision. Returns the journal lines; placements
// stay in `state`. The churn script depends only on (wl, state), so two
// equivalent schedulers see identical inputs every wave.
std::vector<std::string> DriveWaves(sim::Scheduler& scheduler,
                                    Workload& wl,
                                    cluster::ClusterState& state, int waves,
                                    std::uint64_t seed,
                                    sim::ScheduleOutcome* last_outcome) {
  Rng rng(seed);
  obs::StartJournal();  // flight-recorder mode: in-memory ring only
  for (int wave = 0; wave < waves; ++wave) {
    obs::SetJournalTick(wave);
    (void)GrowWave(wl, rng, 4);
    state.SyncWorkloadGrowth();
    // External churn the coordinator only learns about via the dirty logs.
    std::vector<ContainerId> placed;
    for (const auto& c : wl.containers()) {
      if (state.IsPlaced(c.id)) placed.push_back(c.id);
    }
    for (std::size_t i = 0; i < placed.size(); i += 5) state.Evict(placed[i]);

    std::vector<ContainerId> pending;
    for (const auto& c : wl.containers()) {
      if (!state.IsPlaced(c.id)) pending.push_back(c.id);
    }
    const sim::ScheduleRequest request{&wl, &pending};
    const sim::ScheduleOutcome outcome = scheduler.Schedule(request, state);
    if (last_outcome != nullptr) *last_outcome = outcome;
    EXPECT_TRUE(state.CheckConsistency()) << "wave " << wave;
  }
  std::vector<std::string> lines = JournalLines();
  obs::StopJournal();
  return lines;
}

TEST(ShardedEquivalence, KOneMatchesUnshardedBitIdentical) {
  const Topology topo =
      Topology::Uniform(48, ResourceVector::Cores(32, 64), 8, 3);

  core::AladdinOptions inner;
  inner.threads = 1;  // the coordinator forces this on its shard solvers

  Workload wl_a;
  cluster::ClusterState state_a = wl_a.MakeState(topo);
  core::AladdinScheduler unsharded(inner);
  sim::ScheduleOutcome outcome_a;
  const std::vector<std::string> journal_a =
      DriveWaves(unsharded, wl_a, state_a, 6, 2024, &outcome_a);

  Workload wl_b;
  cluster::ClusterState state_b = wl_b.MakeState(topo);
  core::ShardedOptions sharded_options;
  sharded_options.shards = 1;
  sharded_options.aladdin = inner;
  core::ShardedScheduler sharded(sharded_options);
  sim::ScheduleOutcome outcome_b;
  const std::vector<std::string> journal_b =
      DriveWaves(sharded, wl_b, state_b, 6, 2024, &outcome_b);

  EXPECT_EQ(Placements(state_a, wl_a.container_count()),
            Placements(state_b, wl_b.container_count()));
  EXPECT_EQ(state_a.migrations(), state_b.migrations());
  EXPECT_EQ(state_a.preemptions(), state_b.preemptions());
  EXPECT_EQ(outcome_a.unplaced, outcome_b.unplaced);
  EXPECT_EQ(outcome_a.unplaced_causes, outcome_b.unplaced_causes);
  EXPECT_EQ(outcome_a.explored_paths, outcome_b.explored_paths);
  EXPECT_EQ(outcome_a.il_prunes, outcome_b.il_prunes);
  EXPECT_EQ(outcome_a.dl_stops, outcome_b.dl_stops);
  EXPECT_EQ(outcome_a.rounds, outcome_b.rounds);
  // Bit-identity extends to the provenance stream: same records, same seq
  // order, same JSON bytes (K=1 stamps shard=-1, exactly like unsharded).
  EXPECT_EQ(journal_a, journal_b);
}

TEST(ShardedEquivalence, FixedKIsIdenticalAcrossThreadCounts) {
  const Topology topo =
      Topology::Uniform(48, ResourceVector::Cores(32, 64), 8, 3);
  for (const int k : {1, 4, 16}) {
    std::vector<MachineId> reference_placements;
    std::vector<std::string> reference_journal;
    bool have_reference = false;
    for (const int threads : {1, 8}) {
      Workload wl;
      cluster::ClusterState state = wl.MakeState(topo);
      core::ShardedOptions options;
      options.shards = k;
      options.threads = threads;
      core::ShardedScheduler scheduler(options);
      const std::vector<std::string> journal =
          DriveWaves(scheduler, wl, state, 5, 7 + static_cast<std::uint64_t>(k),
                     nullptr);
      const std::vector<MachineId> placements =
          Placements(state, wl.container_count());
      if (!have_reference) {
        reference_placements = placements;
        reference_journal = journal;
        have_reference = true;
      } else {
        const std::string label =
            "k=" + std::to_string(k) + " threads=" + std::to_string(threads);
        EXPECT_EQ(placements, reference_placements) << label;
        EXPECT_EQ(journal, reference_journal) << label;
      }
    }
  }
}

TEST(ShardedEquivalence, RestartedCoordinatorRoutesIdentically) {
  // Two fresh coordinators — a process restart in miniature — must route
  // and place identically under every policy: routing may depend only on
  // the workload, the state and the arrival order, never on process state.
  const Topology topo =
      Topology::Uniform(48, ResourceVector::Cores(32, 64), 8, 3);
  for (const core::ShardRouting routing :
       {core::ShardRouting::kHash, core::ShardRouting::kLeastUtilized,
        core::ShardRouting::kConstraintDriven}) {
    core::ShardedOptions options;
    options.shards = 4;
    options.routing = routing;

    std::vector<MachineId> reference;
    for (int incarnation = 0; incarnation < 2; ++incarnation) {
      Workload wl;
      cluster::ClusterState state = wl.MakeState(topo);
      core::ShardedScheduler scheduler(options);
      Rng rng(11);
      for (int wave = 0; wave < 4; ++wave) {
        std::vector<ContainerId> pending = GrowWave(wl, rng, 5);
        state.SyncWorkloadGrowth();
        const sim::ScheduleRequest request{&wl, &pending};
        (void)scheduler.Schedule(request, state);
      }
      const std::vector<MachineId> placements =
          Placements(state, wl.container_count());
      if (incarnation == 0) {
        reference = placements;
      } else {
        EXPECT_EQ(placements, reference)
            << "routing=" << core::ShardRoutingName(routing);
      }
    }
  }
}

// ------------------------------------------ cross-shard anti-affinity ----

TEST(ShardedAntiAffinity, BlacklistExchangeVetoesFullyConflictedShard) {
  // Two subclusters -> two shards. Shard 0's machines are far bigger, so
  // least-utilized routing would pick shard 0 for everything — but app B
  // conflicts with app A, which occupies every shard-0 machine. The
  // blacklist-exchange round must veto shard 0 (zero eligible machines)
  // and land B on shard 1 with no colocation violation.
  Topology topo;
  const SubClusterId sub0 = topo.AddSubCluster();
  const RackId rack0 = topo.AddRack(sub0);
  const MachineId m0 = topo.AddMachine(rack0, ResourceVector::Cores(64, 128));
  const MachineId m1 = topo.AddMachine(rack0, ResourceVector::Cores(64, 128));
  const SubClusterId sub1 = topo.AddSubCluster();
  const RackId rack1 = topo.AddRack(sub1);
  (void)topo.AddMachine(rack1, ResourceVector::Cores(8, 16));
  (void)topo.AddMachine(rack1, ResourceVector::Cores(8, 16));

  Workload wl;
  const ApplicationId a =
      wl.AddApplication("a", 2, ResourceVector::Cores(2, 4));
  const ApplicationId b =
      wl.AddApplication("b", 2, ResourceVector::Cores(2, 4));
  wl.AddAntiAffinity(a, b);

  cluster::ClusterState state = wl.MakeState(topo);
  // App A occupies both shard-0 machines before the coordinator attaches.
  state.Deploy(ContainerId(0), m0);
  state.Deploy(ContainerId(1), m1);

  core::ShardedOptions options;
  options.shards = 2;
  options.routing = core::ShardRouting::kLeastUtilized;
  core::ShardedScheduler scheduler(options);
  ASSERT_EQ(scheduler.name(), "Aladdin-sharded(2xleast-utilized)");

  std::vector<ContainerId> pending = {ContainerId(2), ContainerId(3)};
  const sim::ScheduleRequest request{&wl, &pending};
  const sim::ScheduleOutcome outcome = scheduler.Schedule(request, state);

  EXPECT_TRUE(outcome.unplaced.empty())
      << "B must land on shard 1, not die on blacklisted shard 0";
  ASSERT_NE(scheduler.plan(), nullptr);
  for (const ContainerId c : {ContainerId(2), ContainerId(3)}) {
    const MachineId m = state.PlacementOf(c);
    ASSERT_TRUE(m.valid());
    EXPECT_EQ(scheduler.plan()->ShardOf(m), 1) << "container " << c.value();
  }
  EXPECT_TRUE(cluster::CollectColocationViolations(state).empty());
  EXPECT_EQ(cluster::Audit(state).colocation_violations, 0u);
  EXPECT_TRUE(state.CheckConsistency());
}

// ---------------------------------------------------------------- spill ----

TEST(ShardedSpill, OverflowingHomeShardSpillsToUntriedShard) {
  // Shard 0 (one 10-core machine) out-frees shard 1 (one 8-core machine),
  // so least-utilized homes the whole 16-container wave on shard 0. Only 10
  // fit; the spill round must re-route the remainder to shard 1.
  Topology topo;
  const SubClusterId sub0 = topo.AddSubCluster();
  (void)topo.AddMachine(topo.AddRack(sub0), ResourceVector::Cores(10, 100));
  const SubClusterId sub1 = topo.AddSubCluster();
  (void)topo.AddMachine(topo.AddRack(sub1), ResourceVector::Cores(8, 100));

  Workload wl;
  wl.AddApplication("wave", 16, ResourceVector::Cores(1, 1));
  cluster::ClusterState state = wl.MakeState(topo);

  core::ShardedOptions options;
  options.shards = 2;
  options.routing = core::ShardRouting::kLeastUtilized;
  core::ShardedScheduler scheduler(options);

  std::vector<ContainerId> pending;
  for (const auto& c : wl.containers()) pending.push_back(c.id);
  const sim::ScheduleRequest request{&wl, &pending};
  const sim::ScheduleOutcome outcome = scheduler.Schedule(request, state);

  EXPECT_TRUE(outcome.unplaced.empty())
      << "10 on shard 0 + 6 spilled to shard 1";
  std::size_t on_shard0 = 0;
  std::size_t on_shard1 = 0;
  for (const auto& c : wl.containers()) {
    const MachineId m = state.PlacementOf(c.id);
    ASSERT_TRUE(m.valid());
    (scheduler.plan()->ShardOf(m) == 0 ? on_shard0 : on_shard1) += 1;
  }
  EXPECT_EQ(on_shard0, 10u);
  EXPECT_EQ(on_shard1, 6u);
  EXPECT_TRUE(state.CheckConsistency());
}

TEST(ShardedSpill, ZeroRebalanceRoundsSurfacesUnplaced) {
  // Same scenario with spilling disabled: the bad routing choice must
  // surface as unplaced with a terminal cause, not silently re-route.
  Topology topo;
  (void)topo.AddMachine(topo.AddRack(topo.AddSubCluster()),
                        ResourceVector::Cores(10, 100));
  (void)topo.AddMachine(topo.AddRack(topo.AddSubCluster()),
                        ResourceVector::Cores(8, 100));

  Workload wl;
  wl.AddApplication("wave", 16, ResourceVector::Cores(1, 1));
  cluster::ClusterState state = wl.MakeState(topo);

  core::ShardedOptions options;
  options.shards = 2;
  options.rebalance_rounds = 0;
  core::ShardedScheduler scheduler(options);

  std::vector<ContainerId> pending;
  for (const auto& c : wl.containers()) pending.push_back(c.id);
  const sim::ScheduleRequest request{&wl, &pending};
  const sim::ScheduleOutcome outcome = scheduler.Schedule(request, state);
  EXPECT_EQ(outcome.unplaced.size(), 6u);
  ASSERT_EQ(outcome.unplaced_causes.size(), outcome.unplaced.size())
      << "causes stay parallel to unplaced";
  for (const obs::Cause cause : outcome.unplaced_causes) {
    EXPECT_NE(cause, obs::Cause::kNone);
  }
}

// ------------------------------------------------- resolver end-to-end ----

void RunScript(k8s::ClusterSimulator& sim, int ticks) {
  Rng rng(7);
  std::int64_t apps = 0;
  for (int t = 0; t < ticks; ++t) {
    for (int d = 0; d < 3; ++d) {
      k8s::PodSpec spec;
      spec.requests = cluster::ResourceVector::Cores(rng.UniformInt(1, 6),
                                                     rng.UniformInt(2, 12));
      spec.priority = rng.Bernoulli(0.2)
                          ? static_cast<cluster::Priority>(rng.UniformInt(1, 3))
                          : 0;
      spec.anti_affinity_within = rng.Bernoulli(0.6);
      sim.SubmitDeployment("svc-" + std::to_string(apps++),
                           static_cast<std::size_t>(rng.UniformInt(1, 5)),
                           spec);
    }
    sim.SubmitBatchJob("job-" + std::to_string(t), 12,
                       cluster::ResourceVector::Cores(1, 2),
                       /*lifetime_ticks=*/2);
    if (t == 3) sim.ScaleDown("svc-1", 2);
    if (t == 5) sim.RemoveNode("node-7");  // forces a topology rebuild
    sim.Tick();
  }
}

std::map<k8s::PodUid, std::string> FinalBindings(k8s::ClusterSimulator& sim) {
  std::map<k8s::PodUid, std::string> out;
  for (k8s::PodUid uid : sim.adaptor().BoundPods()) {
    out[uid] = sim.adaptor().FindPod(uid)->node;
  }
  return out;
}

TEST(ResolverSharded, OneShardMatchesUnshardedPerTick) {
  k8s::ResolverOptions unsharded_options;
  unsharded_options.aladdin = k8s::Resolver::DefaultOptions();
  unsharded_options.aladdin.threads = 1;
  k8s::ResolverOptions sharded_options = unsharded_options;
  sharded_options.shards = 1;

  k8s::ClusterSimulator unsharded(unsharded_options);
  k8s::ClusterSimulator sharded(sharded_options);
  unsharded.AddNodes(16, cluster::ResourceVector::Cores(32, 64), "node", 4, 2);
  sharded.AddNodes(16, cluster::ResourceVector::Cores(32, 64), "node", 4, 2);

  RunScript(unsharded, 9);
  RunScript(sharded, 9);

  ASSERT_EQ(unsharded.history().size(), sharded.history().size());
  for (std::size_t t = 0; t < unsharded.history().size(); ++t) {
    const auto& a = unsharded.history()[t];
    const auto& b = sharded.history()[t];
    EXPECT_EQ(a.new_bindings, b.new_bindings) << "tick " << t;
    EXPECT_EQ(a.migrations, b.migrations) << "tick " << t;
    EXPECT_EQ(a.preemptions, b.preemptions) << "tick " << t;
    EXPECT_EQ(a.unschedulable, b.unschedulable) << "tick " << t;
    EXPECT_EQ(a.unschedulable_causes, b.unschedulable_causes) << "tick " << t;
  }
  EXPECT_EQ(FinalBindings(unsharded), FinalBindings(sharded));
  EXPECT_EQ(unsharded.completed_tasks(), sharded.completed_tasks());
}

TEST(ResolverSharded, MultiShardRunStaysConsistent) {
  k8s::ResolverOptions options;
  options.aladdin = k8s::Resolver::DefaultOptions();
  options.shards = 4;

  k8s::ClusterSimulator sim(options);
  sim.AddNodes(16, cluster::ResourceVector::Cores(32, 64), "node", 4, 2);
  RunScript(sim, 9);

  ASSERT_FALSE(sim.history().empty());
  // Per-shard breakdown present and accounted: routed covers every shard.
  const auto& last = sim.history().back();
  ASSERT_EQ(last.shards.size(), 4u);
  std::size_t machines = 0;
  for (const auto& shard : last.shards) machines += shard.machines;
  EXPECT_EQ(machines, 15u) << "node-7 was removed at tick 5";
  std::size_t bound = 0;
  for (const auto& tick : sim.history()) bound += tick.new_bindings;
  EXPECT_GT(bound, 0u);
}

}  // namespace
}  // namespace aladdin

// Correctness-tooling tests: the ALADDIN_CHECK/ALADDIN_DCHECK macros, the
// deep flow-graph validator, and the cluster-state consistency audit — each
// invariant exercised positively (clean state passes) and negatively
// (deliberate corruption is caught, by error return or by death).
#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <string>
#include <vector>

#include "cluster/state.h"
#include "cluster/topology.h"
#include "common/check.h"
#include "flow/graph.h"
#include "flow/max_flow.h"
#include "trace/workload.h"

namespace aladdin::flow {

// Friend of Graph: reaches into private storage so tests can corrupt arcs
// and the frozen CSR adjacency to drive ValidateInvariants' failure paths.
struct GraphTestPeer {
  static Arc& arc(Graph& g, ArcId a) {
    return g.arcs_[static_cast<std::size_t>(a.value())];
  }
  // Mutable view of v's CSR slice. Freezes first so the corruption is not
  // erased by a lazy rebuild (ValidateInvariants' Freeze() is then a no-op).
  static std::span<std::int32_t> adjacency(Graph& g, VertexId v) {
    g.Freeze();
    const auto i = static_cast<std::size_t>(v.value());
    const auto begin = static_cast<std::size_t>(g.csr_offsets_[i]);
    const auto end = static_cast<std::size_t>(g.csr_offsets_[i + 1]);
    return {g.csr_arcs_.data() + begin, end - begin};
  }
  // The arc-count boundary check, callable with a synthetic slot count so
  // the int32 overflow limit is testable without 2^31 arcs of memory.
  static void CheckCanAddArcPair(std::size_t current_arc_slots) {
    Graph::CheckCanAddArcPair(current_arc_slots);
  }
};

}  // namespace aladdin::flow

namespace aladdin::cluster {

// Friend of ClusterState: corrupts the redundant bookkeeping views to drive
// CheckConsistency's failure paths.
struct ClusterStateTestPeer {
  static ResourceVector& free(ClusterState& s, MachineId m) {
    return s.free_[static_cast<std::size_t>(m.value())];
  }
  static std::vector<ContainerId>& deployed(ClusterState& s, MachineId m) {
    return s.deployed_[static_cast<std::size_t>(m.value())];
  }
  static ClusterState::AppCounts& apps_on(ClusterState& s, MachineId m) {
    return s.apps_on_[static_cast<std::size_t>(m.value())];
  }
  static MachineId& placement(ClusterState& s, ContainerId c) {
    return s.placement_[static_cast<std::size_t>(c.value())];
  }
  static std::size_t& placed_count(ClusterState& s) { return s.placed_count_; }
};

}  // namespace aladdin::cluster

namespace aladdin {
namespace {

using cluster::ClusterState;
using cluster::ClusterStateTestPeer;
using cluster::ContainerId;
using cluster::MachineId;
using cluster::ResourceVector;
using cluster::Topology;
using flow::Graph;
using flow::GraphTestPeer;

// ------------------------------------------------------ check macros ----

TEST(Check, PassingCheckIsSilent) {
  ALADDIN_CHECK(1 + 1 == 2) << "never evaluated";
  ALADDIN_DCHECK(true) << "never evaluated";
}

TEST(CheckDeathTest, FailingCheckAbortsWithContext) {
  const int arc = 42;
  EXPECT_DEATH(ALADDIN_CHECK(arc < 0) << "arc " << arc << " misbehaved",
               "ALADDIN_CHECK\\(arc < 0\\) failed.*arc 42 misbehaved");
}

TEST(CheckDeathTest, MessageIncludesFileAndLine) {
  EXPECT_DEATH(ALADDIN_CHECK(false), "test_invariants\\.cpp");
}

#if ALADDIN_DCHECK_IS_ON()
TEST(CheckDeathTest, ArmedDcheckAborts) {
  EXPECT_DEATH(ALADDIN_DCHECK(false) << "armed", "armed");
}
#else
TEST(Check, DisarmedDcheckNeitherEvaluatesNorAborts) {
  bool evaluated = false;
  ALADDIN_DCHECK([&] {
    evaluated = true;
    return false;
  }()) << "disarmed";
  EXPECT_FALSE(evaluated);
}
#endif

// ------------------------------------------------- graph invariants ----

// s -> a -> t with a side arc s -> t; saturating s->a->t leaves a clean
// conserved flow with only s and t imbalanced.
class GraphInvariantsTest : public ::testing::Test {
 protected:
  GraphInvariantsTest() {
    s_ = graph_.AddVertex();
    a_ = graph_.AddVertex();
    t_ = graph_.AddVertex();
    sa_ = graph_.AddArc(s_, a_, 10);
    at_ = graph_.AddArc(a_, t_, 10);
    st_ = graph_.AddArc(s_, t_, 5);
  }

  std::vector<VertexId> Endpoints() const { return {s_, t_}; }

  Graph graph_;
  VertexId s_, a_, t_;
  ArcId sa_, at_, st_;
};

TEST_F(GraphInvariantsTest, CleanGraphValidates) {
  std::string error;
  EXPECT_TRUE(graph_.ValidateInvariants(Endpoints(), &error)) << error;
  ASSERT_EQ(flow::EdmondsKarp(graph_, s_, t_).value, 15);
  EXPECT_TRUE(graph_.ValidateInvariants(Endpoints(), &error)) << error;
}

TEST_F(GraphInvariantsTest, DetectsConservationViolation) {
  graph_.Push(sa_, 3);  // flow enters a_ and never leaves
  std::string error;
  EXPECT_FALSE(graph_.ValidateInvariants(Endpoints(), &error));
  EXPECT_NE(error.find("conservation"), std::string::npos) << error;
  // Exempting the imbalanced vertex clears the complaint.
  const std::vector<VertexId> all = {s_, a_, t_};
  EXPECT_TRUE(graph_.ValidateInvariants(all, &error)) << error;
}

TEST_F(GraphInvariantsTest, DetectsFlowAboveCapacity) {
  GraphTestPeer::arc(graph_, sa_).flow = 11;
  std::string error;
  EXPECT_FALSE(graph_.ValidateInvariants(Endpoints(), &error));
  EXPECT_NE(error.find("outside [0, capacity="), std::string::npos) << error;
}

TEST_F(GraphInvariantsTest, DetectsBrokenTwinFlow) {
  graph_.Push(sa_, 4);
  GraphTestPeer::arc(graph_, Graph::Reverse(sa_)).flow = 0;
  std::string error;
  EXPECT_FALSE(graph_.ValidateInvariants(Endpoints(), &error));
  EXPECT_NE(error.find("twin flow"), std::string::npos) << error;
}

TEST_F(GraphInvariantsTest, DetectsBrokenTwinCost) {
  GraphTestPeer::arc(graph_, Graph::Reverse(at_)).cost = 7;
  std::string error;
  EXPECT_FALSE(graph_.ValidateInvariants(Endpoints(), &error));
  EXPECT_NE(error.find("twin cost"), std::string::npos) << error;
}

TEST_F(GraphInvariantsTest, DetectsNonzeroResidualCapacity) {
  GraphTestPeer::arc(graph_, Graph::Reverse(st_)).capacity = 1;
  std::string error;
  EXPECT_FALSE(graph_.ValidateInvariants(Endpoints(), &error));
  EXPECT_NE(error.find("residual twin has capacity"), std::string::npos)
      << error;
}

TEST_F(GraphInvariantsTest, DetectsDuplicateAdjacencyEntry) {
  // CSR slices are fixed-size, so a duplicate is injected by overwriting
  // s_'s second entry (st_) with its first (sa_): sa_ is now listed twice.
  auto adj_s = GraphTestPeer::adjacency(graph_, s_);
  ASSERT_EQ(adj_s.size(), 2u);
  adj_s[1] = sa_.value();
  std::string error;
  EXPECT_FALSE(graph_.ValidateInvariants(Endpoints(), &error));
  EXPECT_NE(error.find("more than once"), std::string::npos) << error;
}

TEST_F(GraphInvariantsTest, DetectsArcListedUnderWrongVertex) {
  auto adj_s = GraphTestPeer::adjacency(graph_, s_);
  auto adj_a = GraphTestPeer::adjacency(graph_, a_);
  // Swap at_ (tail a_) into s_'s slice and sa_ (tail s_) into a_'s: every
  // arc is still listed exactly once, but two sit under the wrong tail.
  auto slot_s = std::find(adj_s.begin(), adj_s.end(), sa_.value());
  auto slot_a = std::find(adj_a.begin(), adj_a.end(), at_.value());
  ASSERT_NE(slot_s, adj_s.end());
  ASSERT_NE(slot_a, adj_a.end());
  std::swap(*slot_s, *slot_a);
  std::string error;
  EXPECT_FALSE(graph_.ValidateInvariants(Endpoints(), &error));
  EXPECT_NE(error.find("but its tail is"), std::string::npos) << error;
}

TEST(GraphLimitsTest, ArcSlotLimitIsEnforcedAtTheInt32Boundary) {
  // Two slots per AddArc; the last legal pair lands exactly at kMaxArcSlots.
  GraphTestPeer::CheckCanAddArcPair(Graph::kMaxArcSlots - 2);  // last OK pair
  EXPECT_DEATH(GraphTestPeer::CheckCanAddArcPair(Graph::kMaxArcSlots - 1),
               "int32 id domain limit");
  EXPECT_DEATH(GraphTestPeer::CheckCanAddArcPair(Graph::kMaxArcSlots),
               "int32 id domain limit");
}

TEST(GraphLimitsTest, VertexLimitIsEnforced) {
  // AddVertices is an O(1) counter bump (CSR is built lazily), so the graph
  // can be driven to the id-domain edge without allocating per-vertex state.
  Graph g;
  EXPECT_EQ(g.AddVertices(Graph::kMaxVertices).value(), 0);
  EXPECT_EQ(g.vertex_count(), Graph::kMaxVertices);
  EXPECT_DEATH(g.AddVertex(), "int32 id domain");
  EXPECT_DEATH(g.AddVertices(1), "int32 id domain");
}

#if ALADDIN_DCHECK_IS_ON()
TEST_F(GraphInvariantsTest, PushBeyondResidualDies) {
  EXPECT_DEATH(graph_.Push(st_, 6), "exceeds residual");
}

TEST_F(GraphInvariantsTest, SetCapacityBelowFlowDies) {
  graph_.Push(sa_, 8);
  EXPECT_DEATH(graph_.SetCapacity(sa_, 7), "below flow");
}
#endif

// ----------------------------------------- cluster state consistency ----

class StateConsistencyTest : public ::testing::Test {
 protected:
  StateConsistencyTest()
      : topo_(Topology::Uniform(3, ResourceVector::Cores(32, 64), 2, 2)) {
    app_ = wl_.AddApplication("app", 3, ResourceVector::Cores(8, 16));
  }

  ContainerId C(std::size_t i) const {
    return wl_.application(app_).containers[i];
  }

  Topology topo_;
  trace::Workload wl_;
  ApplicationId app_;
};

TEST_F(StateConsistencyTest, CleanStatePasses) {
  ClusterState state = wl_.MakeState(topo_);
  std::string error;
  EXPECT_TRUE(state.CheckConsistency(&error)) << error;
  state.Deploy(C(0), MachineId(0));
  state.Deploy(C(1), MachineId(0));
  state.Migrate(C(1), MachineId(2));
  state.Evict(C(0));
  state.Deploy(C(0), MachineId(1));
  EXPECT_TRUE(state.CheckConsistency(&error)) << error;
}

TEST_F(StateConsistencyTest, DetectsCorruptedFreeVector) {
  ClusterState state = wl_.MakeState(topo_);
  state.Deploy(C(0), MachineId(0));
  ClusterStateTestPeer::free(state, MachineId(0)) -=
      ResourceVector::Cores(1, 0);
  std::string error;
  EXPECT_FALSE(state.CheckConsistency(&error));
  EXPECT_NE(error.find("cached free"), std::string::npos) << error;
}

TEST_F(StateConsistencyTest, DetectsContainerDeployedTwice) {
  ClusterState state = wl_.MakeState(topo_);
  state.Deploy(C(0), MachineId(0));
  ClusterStateTestPeer::deployed(state, MachineId(1)).push_back(C(0));
  std::string error;
  EXPECT_FALSE(state.CheckConsistency(&error));
  EXPECT_NE(error.find("deployed twice"), std::string::npos) << error;
}

TEST_F(StateConsistencyTest, DetectsPlacementMapDisagreement) {
  ClusterState state = wl_.MakeState(topo_);
  state.Deploy(C(0), MachineId(0));
  ClusterStateTestPeer::placement(state, C(0)) = MachineId(2);
  std::string error;
  EXPECT_FALSE(state.CheckConsistency(&error));
  EXPECT_NE(error.find("placement map says"), std::string::npos) << error;
}

TEST_F(StateConsistencyTest, DetectsPhantomPlacement) {
  ClusterState state = wl_.MakeState(topo_);
  state.Deploy(C(0), MachineId(0));
  // Placement map claims C(1) is on machine 1, but no deployed list,
  // free-vector debit, or app count backs that up.
  ClusterStateTestPeer::placement(state, C(1)) = MachineId(1);
  std::string error;
  EXPECT_FALSE(state.CheckConsistency(&error));
  EXPECT_NE(error.find("absent from its deployed list"), std::string::npos)
      << error;
}

TEST_F(StateConsistencyTest, DetectsAppCountDrift) {
  ClusterState state = wl_.MakeState(topo_);
  state.Deploy(C(0), MachineId(0));
  ++ClusterStateTestPeer::apps_on(state, MachineId(0)).front().second;
  std::string error;
  EXPECT_FALSE(state.CheckConsistency(&error));
  EXPECT_NE(error.find("app-count map"), std::string::npos) << error;
}

TEST_F(StateConsistencyTest, DetectsPlacedCountDrift) {
  ClusterState state = wl_.MakeState(topo_);
  state.Deploy(C(0), MachineId(0));
  ++ClusterStateTestPeer::placed_count(state);
  std::string error;
  EXPECT_FALSE(state.CheckConsistency(&error));
  EXPECT_NE(error.find("placed_count"), std::string::npos) << error;
}

TEST_F(StateConsistencyTest, DeployPreconditionsDie) {
  ClusterState state = wl_.MakeState(topo_);
  state.Deploy(C(0), MachineId(0));
  EXPECT_DEATH(state.Deploy(C(0), MachineId(1)), "already on machine");
  EXPECT_DEATH(state.Evict(C(1)), "not placed");
}

TEST_F(StateConsistencyTest, DeployWithoutFitDies) {
  trace::Workload wl;
  const auto huge = wl.AddApplication("huge", 1, ResourceVector::Cores(64, 1));
  ClusterState state = wl.MakeState(topo_);
  EXPECT_DEATH(state.Deploy(wl.application(huge).containers[0], MachineId(0)),
               "does not fit");
}

}  // namespace
}  // namespace aladdin

// Observability layer: sharded counters, histogram percentiles against the
// exact-order-statistics baseline in common/stats.h, phase capture/diff, and
// the trace writer's Chrome trace-event JSON contract (globally sorted
// timestamps, balanced B/E pairs per thread — including under ThreadPool
// stress and ring-buffer wraparound).
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "common/stats.h"
#include "common/thread_pool.h"
#include "k8s/simulator.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/runtime.h"
#include "obs/trace.h"

namespace aladdin {
namespace {

// Every test runs with metrics armed and a clean registry; tracing is torn
// down so a failing test can't leak an armed mode bit into the next one.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::SetMetricsEnabled(true);
    obs::Registry::Get().ResetAll();
  }
  void TearDown() override {
    obs::StopTracing();
    obs::SetMetricsEnabled(false);
    obs::Registry::Get().ResetAll();
  }
};

// --- counters / gauges -------------------------------------------------------

TEST_F(ObsTest, CounterSumsShardsExactlyAcrossThreads) {
  obs::Counter& counter = obs::Registry::Get().GetCounter("test/counter");
  ThreadPool pool(4);
  constexpr std::size_t kN = 10000;
  ParallelFor(pool, 0, kN, [&](std::size_t i) {
    counter.Add(static_cast<std::int64_t>(i % 7) + 1);
  });
  std::int64_t expected = 0;
  for (std::size_t i = 0; i < kN; ++i) {
    expected += static_cast<std::int64_t>(i % 7) + 1;
  }
  EXPECT_EQ(counter.Value(), expected);
}

TEST_F(ObsTest, CounterIdenticalSerialVsParallel) {
  obs::Counter& serial = obs::Registry::Get().GetCounter("test/serial");
  obs::Counter& parallel = obs::Registry::Get().GetCounter("test/parallel");
  constexpr std::size_t kN = 5000;
  auto delta = [](std::size_t i) {
    return static_cast<std::int64_t>((i * 2654435761u) % 97);
  };
  for (std::size_t i = 0; i < kN; ++i) serial.Add(delta(i));
  ThreadPool pool(4);
  ParallelFor(pool, 0, kN, [&](std::size_t i) { parallel.Add(delta(i)); });
  // Integer adds are exact, so the totals are bit-identical no matter how
  // the iterations were sharded — the property perf_compare.py relies on to
  // identity-check "count" metrics across --threads settings.
  EXPECT_EQ(serial.Value(), parallel.Value());
}

TEST_F(ObsTest, KillSwitchMakesMetricsNoOps) {
  obs::Counter& counter = obs::Registry::Get().GetCounter("test/gated");
  obs::Gauge& gauge = obs::Registry::Get().GetGauge("test/gated_gauge");
  obs::Histogram& histogram =
      obs::Registry::Get().GetHistogram("test/gated_hist");
  obs::SetMetricsEnabled(false);
  counter.Add(5);
  gauge.Set(7);
  histogram.Observe(1.0);
  EXPECT_EQ(counter.Value(), 0);
  EXPECT_EQ(gauge.Value(), 0);
  EXPECT_EQ(histogram.Snapshot().count, 0u);
  obs::SetMetricsEnabled(true);
  counter.Add(5);
  gauge.Set(7);
  gauge.Add(3);
  histogram.Observe(1.0);
  EXPECT_EQ(counter.Value(), 5);
  EXPECT_EQ(gauge.Value(), 10);
  EXPECT_EQ(histogram.Snapshot().count, 1u);
}

TEST_F(ObsTest, RegistryInternsByName) {
  obs::Counter& a = obs::Registry::Get().GetCounter("test/interned");
  obs::Counter& b = obs::Registry::Get().GetCounter("test/interned");
  EXPECT_EQ(&a, &b);
  a.Add(1);
  EXPECT_EQ(b.Value(), 1);
}

// --- histograms --------------------------------------------------------------

// Deterministic value stream spanning ~3 orders of magnitude.
double TestValue(std::size_t i) {
  return 0.05 * static_cast<double>((i * 37) % 400 + 1) *
         (1.0 + static_cast<double>(i % 11));
}

TEST_F(ObsTest, HistogramPercentilesTrackExactSample) {
  obs::Histogram& histogram =
      obs::Registry::Get().GetHistogram("test/latency", "ms");
  Sample exact;
  constexpr std::size_t kN = 4000;
  for (std::size_t i = 0; i < kN; ++i) {
    const double v = TestValue(i);
    histogram.Observe(v);
    exact.Add(v);
  }
  const obs::HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count, kN);
  EXPECT_DOUBLE_EQ(snap.min, exact.min());
  EXPECT_DOUBLE_EQ(snap.max, exact.max());
  EXPECT_NEAR(snap.mean(), exact.mean(), exact.mean() * 1e-9);
  // Geometric buckets with growth 2^(1/4) bound the relative quantile error
  // by growth - 1 ~= 18.9%; allow 20% against the exact order statistics.
  for (const double p : {10.0, 50.0, 90.0, 99.0}) {
    const double truth = exact.Percentile(p);
    EXPECT_NEAR(snap.Percentile(p), truth, truth * 0.20)
        << "p" << p << " diverged from the exact sample percentile";
  }
}

TEST_F(ObsTest, HistogramSnapshotMergeMatchesCombinedStream) {
  obs::Histogram& first = obs::Registry::Get().GetHistogram("test/merge_a");
  obs::Histogram& second = obs::Registry::Get().GetHistogram("test/merge_b");
  obs::Histogram& combined = obs::Registry::Get().GetHistogram("test/merge_c");
  constexpr std::size_t kN = 1000;
  for (std::size_t i = 0; i < kN; ++i) {
    const double v = TestValue(i);
    (i % 2 == 0 ? first : second).Observe(v);
    combined.Observe(v);
  }
  obs::HistogramSnapshot merged = first.Snapshot();
  merged.Merge(second.Snapshot());
  const obs::HistogramSnapshot truth = combined.Snapshot();
  EXPECT_EQ(merged.count, truth.count);
  EXPECT_DOUBLE_EQ(merged.min, truth.min);
  EXPECT_DOUBLE_EQ(merged.max, truth.max);
  EXPECT_NEAR(merged.sum, truth.sum, 1e-9 * truth.sum);
  ASSERT_EQ(merged.counts.size(), truth.counts.size());
  for (std::size_t b = 0; b < truth.counts.size(); ++b) {
    EXPECT_EQ(merged.counts[b], truth.counts[b]) << "bucket " << b;
  }
  for (const double p : {50.0, 99.0}) {
    EXPECT_DOUBLE_EQ(merged.Percentile(p), truth.Percentile(p));
  }
}

TEST_F(ObsTest, HistogramConcurrentObserveLosesNothing) {
  obs::Histogram& histogram =
      obs::Registry::Get().GetHistogram("test/concurrent");
  ThreadPool pool(4);
  constexpr std::size_t kN = 20000;
  // Integer-valued observations keep the CAS-accumulated sum exact
  // regardless of the order threads land their additions.
  ParallelFor(pool, 0, kN, [&](std::size_t i) {
    histogram.Observe(static_cast<double>(i % 128 + 1));
  });
  const obs::HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count, kN);
  double expected_sum = 0.0;
  for (std::size_t i = 0; i < kN; ++i) {
    expected_sum += static_cast<double>(i % 128 + 1);
  }
  EXPECT_DOUBLE_EQ(snap.sum, expected_sum);
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, 128.0);
}

// --- phases ------------------------------------------------------------------

TEST_F(ObsTest, PhaseCaptureDiffAndExclusiveCoverage) {
  obs::Phase& exclusive =
      obs::Registry::Get().GetPhase("test/phase_excl", /*exclusive=*/true);
  obs::Phase& nested =
      obs::Registry::Get().GetPhase("test/phase_nested", /*exclusive=*/false);
  obs::Phase& idle =
      obs::Registry::Get().GetPhase("test/phase_idle", /*exclusive=*/true);
  (void)idle;

  const std::vector<obs::PhaseDelta> before = obs::CapturePhases();
  exclusive.RecordUnchecked(5'000'000);
  exclusive.RecordUnchecked(5'000'000);
  nested.RecordUnchecked(1'000'000);
  std::vector<obs::PhaseDelta> delta =
      obs::DiffPhases(before, obs::CapturePhases());

  // Phases with no activity in the window are dropped from the diff.
  ASSERT_EQ(delta.size(), 2u);
  const auto find = [&](const std::string& name) -> const obs::PhaseDelta* {
    const auto it =
        std::find_if(delta.begin(), delta.end(),
                     [&](const obs::PhaseDelta& d) { return d.name == name; });
    return it == delta.end() ? nullptr : &*it;
  };
  const obs::PhaseDelta* excl_delta = find("test/phase_excl");
  ASSERT_NE(excl_delta, nullptr);
  EXPECT_EQ(excl_delta->ns, 10'000'000);
  EXPECT_EQ(excl_delta->calls, 2);
  EXPECT_TRUE(excl_delta->exclusive);
  const obs::PhaseDelta* nested_delta = find("test/phase_nested");
  ASSERT_NE(nested_delta, nullptr);
  EXPECT_EQ(nested_delta->ns, 1'000'000);
  EXPECT_FALSE(nested_delta->exclusive);

  // Only the exclusive phase counts toward tick coverage.
  EXPECT_DOUBLE_EQ(obs::ExclusiveSeconds(delta), 0.010);

  std::vector<obs::PhaseDelta> merged = delta;
  obs::MergePhaseDeltas(merged, delta);
  EXPECT_EQ(find("test/phase_excl")->ns, 10'000'000);  // delta untouched
  const auto it = std::find_if(
      merged.begin(), merged.end(),
      [](const obs::PhaseDelta& d) { return d.name == "test/phase_excl"; });
  ASSERT_NE(it, merged.end());
  EXPECT_EQ(it->ns, 20'000'000);
  EXPECT_EQ(it->calls, 4);
}

// Everything below exercises the ALADDIN_TRACE_* / ALADDIN_PHASE_* macros,
// which an ALADDIN_OBS=OFF build compiles down to nothing — the direct-API
// tests above still run there, these cannot.
#if ALADDIN_OBS_ENABLED

TEST_F(ObsTest, ScopedTraceFeedsPhaseAccumulators) {
  for (int i = 0; i < 10; ++i) {
    ALADDIN_TRACE_SCOPE("test/scoped_phase");
  }
  obs::Phase& phase = obs::Registry::Get().GetPhase("test/scoped_phase");
  EXPECT_EQ(phase.Calls(), 10);
  EXPECT_GE(phase.TotalNs(), 0);

  // With the whole obs layer off, a scope is a branch: no calls recorded.
  obs::SetMetricsEnabled(false);
  for (int i = 0; i < 10; ++i) {
    ALADDIN_TRACE_SCOPE("test/scoped_phase");
  }
  EXPECT_EQ(phase.Calls(), 10);
}

// --- trace JSON --------------------------------------------------------------

struct TraceEvent {
  std::string name;
  char ph = '?';
  double ts = 0.0;
  int tid = -1;
};

// TraceToJson() emits one event object per line; pull out the fields the
// contract is about without a JSON library.
std::vector<TraceEvent> ParseTrace(const std::string& json) {
  std::vector<TraceEvent> events;
  std::istringstream in(json);
  std::string line;
  while (std::getline(in, line)) {
    const auto name_pos = line.find("{\"name\":\"");
    if (name_pos == std::string::npos) continue;
    TraceEvent event;
    const auto name_begin = name_pos + 9;
    const auto name_end = line.find('"', name_begin);
    event.name = line.substr(name_begin, name_end - name_begin);
    const auto ph_pos = line.find("\"ph\":\"");
    if (ph_pos == std::string::npos) continue;
    event.ph = line[ph_pos + 6];
    const auto ts_pos = line.find("\"ts\":");
    if (ts_pos != std::string::npos) {
      event.ts = std::stod(line.substr(ts_pos + 5));
    }
    const auto tid_pos = line.find("\"tid\":");
    if (tid_pos != std::string::npos) {
      event.tid = std::stoi(line.substr(tid_pos + 6));
    }
    events.push_back(event);
  }
  return events;
}

// The two invariants every consumer (Perfetto, tools/check_trace.py) needs:
// globally non-decreasing timestamps, and per-thread B/E pairs that close in
// stack order with matching names.
void ExpectSortedAndBalanced(const std::vector<TraceEvent>& events) {
  double last_ts = -1.0;
  std::map<int, std::vector<std::string>> stacks;
  for (const TraceEvent& event : events) {
    if (event.ph == 'M') continue;
    EXPECT_GE(event.ts, last_ts) << "timestamps regressed at " << event.name;
    last_ts = event.ts;
    if (event.ph == 'B') {
      stacks[event.tid].push_back(event.name);
    } else if (event.ph == 'E') {
      ASSERT_FALSE(stacks[event.tid].empty())
          << "E without matching B: " << event.name;
      EXPECT_EQ(stacks[event.tid].back(), event.name);
      stacks[event.tid].pop_back();
    }
  }
  for (const auto& [tid, stack] : stacks) {
    EXPECT_TRUE(stack.empty()) << "unclosed scopes on tid " << tid;
  }
}

TEST_F(ObsTest, TraceJsonSortedAndBalancedUnderThreadPoolStress) {
  obs::StartTracing();
  {
    ALADDIN_TRACE_SCOPE("test/outer");
    ALADDIN_TRACE_INSTANT("test/marker");
    for (int i = 0; i < 50; ++i) {
      ALADDIN_TRACE_SCOPE("test/inner");
      ALADDIN_TRACE_COUNTER("test/queue", i);
    }
  }
  ThreadPool pool(4);
  ParallelFor(pool, 0, 400, [&](std::size_t i) {
    ALADDIN_TRACE_SCOPE("test/worker");
    if (i % 3 == 0) {
      ALADDIN_TRACE_SCOPE("test/worker_inner");
      ALADDIN_TRACE_INSTANT("test/worker_marker");
    }
  });
  obs::StopTracing();
  EXPECT_EQ(obs::DroppedTraceEvents(), 0u);

  const std::string json = obs::TraceToJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  const std::vector<TraceEvent> events = ParseTrace(json);
  ExpectSortedAndBalanced(events);

  std::map<char, int> by_ph;
  std::map<int, int> by_tid;
  for (const TraceEvent& event : events) {
    ++by_ph[event.ph];
    if (event.ph == 'B') ++by_tid[event.tid];
  }
  EXPECT_EQ(by_ph['B'], by_ph['E']);
  EXPECT_GE(by_ph['B'], 451);  // 1 outer + 50 inner + 400 workers + inners
  EXPECT_GE(by_ph['i'], 1);
  EXPECT_EQ(by_ph['C'], 50);
  // The pool workers record into their own ring buffers, so the merged
  // stream must span more than the main thread.
  EXPECT_GE(by_tid.size(), 2u);
}

TEST_F(ObsTest, TraceRingWraparoundStaysBalanced) {
  obs::TraceOptions options;
  options.ring_capacity = 64;
  obs::StartTracing(options);
  for (int i = 0; i < 1000; ++i) {
    ALADDIN_TRACE_SCOPE("test/wrap_outer");
    ALADDIN_TRACE_SCOPE("test/wrap_inner");
    ALADDIN_TRACE_COUNTER("test/wrap_count", i);
  }
  obs::StopTracing();
  // The ring wrapped many times over; whole records drop, so the surviving
  // suffix still expands to balanced B/E pairs.
  EXPECT_GT(obs::DroppedTraceEvents(), 0u);
  const std::vector<TraceEvent> events = ParseTrace(obs::TraceToJson());
  ExpectSortedAndBalanced(events);
  EXPECT_FALSE(events.empty());
}

TEST_F(ObsTest, TracingDisabledRecordsNoEvents) {
  obs::StartTracing();  // clears the rings...
  obs::StopTracing();   // ...and disarms before anything runs
  {
    ALADDIN_TRACE_SCOPE("test/untraced");
    ALADDIN_TRACE_INSTANT("test/untraced_marker");
    ALADDIN_TRACE_COUNTER("test/untraced_count", 1);
  }
  for (const TraceEvent& event : ParseTrace(obs::TraceToJson())) {
    EXPECT_EQ(event.ph, 'M') << "unexpected event " << event.name;
  }
  // The metrics side stays armed independently of tracing.
  EXPECT_EQ(obs::Registry::Get().GetPhase("test/untraced").Calls(), 1);
}

// --- Prometheus exposition edge cases ----------------------------------------

TEST_F(ObsTest, PrometheusEmptyHistogramRendersZeroSeries) {
  (void)obs::Registry::Get().GetHistogram("test/empty_hist", "ticks");
  const std::string text =
      obs::RenderPrometheus(obs::Registry::Get().Snapshot());
  EXPECT_NE(text.find("# TYPE aladdin_test_empty_hist histogram"),
            std::string::npos);
  EXPECT_NE(text.find("aladdin_test_empty_hist_count 0"), std::string::npos);
  EXPECT_NE(text.find("aladdin_test_empty_hist_sum 0"), std::string::npos);
  // No NaN/inf may leak into the exposition from a zero-sample histogram.
  EXPECT_EQ(text.find("nan"), std::string::npos);
  EXPECT_EQ(text.find("-inf"), std::string::npos);
}

TEST_F(ObsTest, PrometheusSingleObservationBucketsAreCumulative) {
  obs::Histogram& hist =
      obs::Registry::Get().GetHistogram("test/one_obs", "ticks");
  hist.Observe(1.0);
  const std::string text =
      obs::RenderPrometheus(obs::Registry::Get().Snapshot());
  EXPECT_NE(text.find("aladdin_test_one_obs_count 1"), std::string::npos);
  // The +Inf bucket must equal the total count (cumulative contract) —
  // checked within this metric's series only (the registry may hold other
  // interned histograms from earlier tests).
  EXPECT_NE(text.find("aladdin_test_one_obs_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_EQ(text.find("aladdin_test_one_obs_bucket{le=\"+Inf\"} 0"),
            std::string::npos);
}

TEST_F(ObsTest, PrometheusMetricNameSanitization) {
  obs::Registry::Get().GetCounter("slo/violations").Add(2);
  obs::Registry::Get().GetHistogram("admission_wait_ticks", "ticks")
      .Observe(3.0);
  const std::string text =
      obs::RenderPrometheus(obs::Registry::Get().Snapshot());
  // Registry names sanitize into the aladdin_* namespace: '/' and other
  // non-identifier bytes become '_', never escaping into label syntax.
  EXPECT_NE(text.find("aladdin_slo_violations 2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE aladdin_admission_wait_ticks histogram"),
            std::string::npos);
  EXPECT_EQ(text.find("slo/violations"), std::string::npos);
}

// --- end to end through the k8s stack ---------------------------------------

TEST_F(ObsTest, ResolverPhaseBreakdownCoversResolveTime) {
  obs::StartTracing();
  k8s::ResolverOptions options;
  options.aladdin = k8s::Resolver::DefaultOptions();
  options.aladdin.threads = 1;
  k8s::ClusterSimulator sim(options);
  sim.AddNodes(16, cluster::ResourceVector::Cores(32, 64));
  k8s::PodSpec spec;
  spec.requests = cluster::ResourceVector::Cores(2, 4);
  spec.anti_affinity_within = true;
  sim.SubmitDeployment("web", 12, spec);
  sim.SubmitBatchJob("batch", 20, cluster::ResourceVector::Cores(1, 2),
                     /*lifetime_ticks=*/2);
  const k8s::ResolveStats stats = sim.Tick();
  obs::StopTracing();

  ASSERT_FALSE(stats.phases.empty());
  std::vector<std::string> names;
  for (const obs::PhaseDelta& d : stats.phases) names.push_back(d.name);
  for (const char* expected :
       {"k8s/sync_state", "k8s/reconcile", "core/augment", "core/task"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected << " missing from the resolve phase breakdown";
  }
  // Exclusive phases partition the resolve, so their sum cannot exceed the
  // measured wall time by more than clock noise.
  const double covered = obs::ExclusiveSeconds(stats.phases);
  EXPECT_GT(covered, 0.0);
  EXPECT_LE(covered, stats.wall_seconds * 1.25 + 1e-4);

  // The same instrumentation produced trace scopes spanning both layers.
  std::vector<std::string> trace_names;
  for (const TraceEvent& event : ParseTrace(obs::TraceToJson())) {
    if (event.ph == 'B') trace_names.push_back(event.name);
  }
  for (const char* expected : {"k8s/tick", "k8s/sync_state", "core/augment"}) {
    EXPECT_NE(
        std::find(trace_names.begin(), trace_names.end(), expected),
        trace_names.end())
        << expected << " missing from the trace";
  }
}

#endif  // ALADDIN_OBS_ENABLED

}  // namespace
}  // namespace aladdin

// Lifecycle ledger + admission-SLO engine (obs/lifecycle.h, obs/slo.h):
// span state machine and wait math, once-per-epoch violation flagging,
// exact nearest-rank percentiles, attainment/burn accounting, the
// tick-determinism bar (per-tick SLO surfaces bit-identical across thread
// counts and across shards 0/1 — the same bar as the decision journal),
// and the listener's introspection endpoints (/healthz, /statusz, /slo,
// Prometheus fallback) over a live socket.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "common/rng.h"
#include "k8s/simulator.h"
#include "obs/export.h"
#include "obs/lifecycle.h"
#include "obs/metrics.h"
#include "obs/runtime.h"
#include "obs/slo.h"

namespace aladdin {
namespace {

// ------------------------------------------------------ lifecycle ledger ----

TEST(LifecycleLedger, PlacementWaitMath) {
  obs::LifecycleLedger ledger;
  ledger.OnArrival(/*container=*/3, /*app=*/1, /*tick=*/4);
  EXPECT_TRUE(ledger.HasOpenSpan(3));
  EXPECT_EQ(ledger.open_spans(), 1u);

  const obs::LifecycleSpan* span = ledger.SpanPtr(3);
  ASSERT_NE(span, nullptr);
  EXPECT_EQ(span->arrival_tick, 4);
  EXPECT_EQ(span->epoch, 0);
  EXPECT_EQ(span->state, obs::SpanState::kPending);
  EXPECT_EQ(span->PendingAge(4), 1);  // failed-resolve count at tick 4
  EXPECT_EQ(span->PendingAge(6), 3);

  ledger.OnAttempt(3, obs::Cause::kCapacityExhaustedCpu, 5);
  ledger.OnAttempt(3, obs::Cause::kAntiAffinityIntraApp, 6);
  EXPECT_EQ(ledger.SpanPtr(3)->attempts, 2);
  EXPECT_EQ(ledger.SpanPtr(3)->last_cause, obs::Cause::kAntiAffinityIntraApp);

  EXPECT_EQ(ledger.OnPlaced(3, /*machine=*/9, /*shard=*/-1, /*tick=*/7), 3);
  EXPECT_EQ(ledger.SpanPtr(3)->state, obs::SpanState::kPlaced);
  EXPECT_EQ(ledger.SpanPtr(3)->machine, 9);
  EXPECT_EQ(ledger.SpanPtr(3)->WaitTicks(99), 3);
  EXPECT_EQ(ledger.open_spans(), 0u);

  // Placing a non-pending span is a no-op reporting "no wait".
  EXPECT_EQ(ledger.OnPlaced(3, 2, -1, 8), -1);
  EXPECT_EQ(ledger.OnPlaced(1234, 2, -1, 8), -1);
}

TEST(LifecycleLedger, ArrivalIdempotentWhilePending) {
  obs::LifecycleLedger ledger;
  ledger.OnArrival(0, 0, 2);
  ledger.OnArrival(0, 0, 5);  // still pending: keeps the original arrival
  EXPECT_EQ(ledger.SpanPtr(0)->arrival_tick, 2);
  EXPECT_EQ(ledger.SpanPtr(0)->epoch, 0);
  EXPECT_EQ(ledger.open_spans(), 1u);
}

TEST(LifecycleLedger, PreemptionReopensAsNewEpoch) {
  obs::LifecycleLedger ledger;
  ledger.OnArrival(7, 2, 1);
  ASSERT_EQ(ledger.OnPlaced(7, 4, -1, 2), 1);

  ledger.OnPreempted(7, 6);
  const obs::LifecycleSpan* span = ledger.SpanPtr(7);
  ASSERT_NE(span, nullptr);
  EXPECT_EQ(span->state, obs::SpanState::kPending);
  EXPECT_EQ(span->epoch, 1);
  EXPECT_EQ(span->arrival_tick, 6);
  EXPECT_EQ(span->attempts, 0);
  EXPECT_FALSE(span->slo_flagged);
  EXPECT_EQ(ledger.open_spans(), 1u);

  // Preempting an already-pending span changes nothing.
  ledger.OnPreempted(7, 8);
  EXPECT_EQ(ledger.SpanPtr(7)->epoch, 1);
  EXPECT_EQ(ledger.SpanPtr(7)->arrival_tick, 6);
}

TEST(LifecycleLedger, RetirementClosesPendingAndPlacedSpans) {
  obs::LifecycleLedger ledger;
  ledger.OnArrival(0, 0, 1);  // stays pending
  ledger.OnArrival(1, 0, 1);
  ledger.OnPlaced(1, 3, -1, 1);
  EXPECT_EQ(ledger.open_spans(), 1u);

  ledger.OnRetired(0, 4);
  ledger.OnRetired(1, 4);
  EXPECT_EQ(ledger.open_spans(), 0u);
  EXPECT_EQ(ledger.SpanPtr(0)->state, obs::SpanState::kRetired);
  EXPECT_EQ(ledger.SpanPtr(1)->state, obs::SpanState::kRetired);

  // A retired container resubmitted later opens a fresh epoch.
  ledger.OnArrival(1, 0, 9);
  EXPECT_EQ(ledger.SpanPtr(1)->epoch, 1);
  EXPECT_EQ(ledger.SpanPtr(1)->arrival_tick, 9);
}

TEST(LifecycleLedger, OldestPendingOrderedByArrivalThenId) {
  obs::LifecycleLedger ledger;
  ledger.OnArrival(5, 0, 3);
  ledger.OnArrival(2, 0, 1);
  ledger.OnArrival(9, 0, 1);
  ledger.OnArrival(4, 0, 2);
  ledger.OnArrival(8, 0, 5);

  const std::vector<obs::PendingRow> rows = ledger.OldestPending(6, 3);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].container, 2);  // arrival 1, lowest id first
  EXPECT_EQ(rows[1].container, 9);  // arrival 1
  EXPECT_EQ(rows[2].container, 4);  // arrival 2
  EXPECT_EQ(rows[0].age_ticks, 6);
  EXPECT_TRUE(ledger.OldestPending(6, 0).empty());
}

TEST(LifecycleLedger, PendingAgeCountsBucketByAge) {
  obs::LifecycleLedger ledger;
  ledger.OnArrival(0, 0, 0);  // age 5 at tick 4
  ledger.OnArrival(1, 0, 3);  // age 2
  ledger.OnArrival(2, 0, 4);  // age 1
  ledger.OnArrival(3, 0, 4);  // age 1
  ledger.OnPlaced(3, 0, -1, 4);

  const std::vector<std::int64_t> counts = ledger.PendingAgeCounts(4);
  ASSERT_EQ(counts.size(), 6u);
  EXPECT_EQ(counts[1], 1);
  EXPECT_EQ(counts[2], 1);
  EXPECT_EQ(counts[5], 1);
  const obs::PendingAgeStats stats = obs::SummarizePendingAges(counts);
  EXPECT_EQ(stats.open, 3u);
  EXPECT_EQ(stats.max, 5);
  EXPECT_EQ(stats.p50, 2);
}

// ------------------------------------------------------------ SLO engine ----

TEST(SloEngine, PercentileFromCountsIsNearestRank) {
  // 50 zeros, 49 ones, 1 two.
  const std::vector<std::int64_t> counts = {50, 49, 1};
  EXPECT_EQ(obs::PercentileFromCounts(counts, 1, 2), 0);      // p50
  EXPECT_EQ(obs::PercentileFromCounts(counts, 99, 100), 1);   // p99
  EXPECT_EQ(obs::PercentileFromCounts(counts, 999, 1000), 2); // p999
  EXPECT_EQ(obs::PercentileFromCounts({}, 1, 2), 0);
}

TEST(SloEngine, AttainmentCountsWithinAndViolations) {
  obs::SloObjective objective;
  objective.wait_ticks = 1;
  objective.percent = 99.0;
  objective.burn_window_ticks = 4;
  obs::SloEngine slo(objective);
  slo.RegisterApp(0, "web");
  obs::LifecycleLedger ledger;

  slo.BeginTick(0);
  for (std::int32_t c = 0; c < 3; ++c) {
    ledger.OnArrival(c, 0, 0);
    const std::int64_t wait = ledger.OnPlaced(c, c, -1, 0);
    slo.OnAdmitted(*ledger.MutableSpan(c), wait);
  }
  // One pod admitted late (wait 2 > objective 1): violation at admission.
  ledger.OnArrival(3, 0, 0);
  slo.BeginTick(2);
  slo.OnAdmitted(*ledger.MutableSpan(3),
                 ledger.OnPlaced(3, 0, -1, 2));

  const obs::SloSnapshot snap = slo.Snapshot(8);
  EXPECT_EQ(snap.admitted, 4);
  EXPECT_EQ(snap.within, 3);
  EXPECT_EQ(snap.violations, 1);
  EXPECT_DOUBLE_EQ(snap.attainment_pct, 75.0);
  EXPECT_EQ(snap.wait_max, 2);
  ASSERT_EQ(snap.apps.size(), 1u);
  EXPECT_EQ(snap.apps[0].name, "web");
  EXPECT_EQ(snap.apps[0].violations, 1);
}

TEST(SloEngine, ViolationFlaggedOncePerEpoch) {
  obs::SloObjective objective;
  objective.wait_ticks = 2;
  obs::SloEngine slo(objective);
  obs::LifecycleLedger ledger;
  ledger.OnArrival(0, 0, 0);

  slo.BeginTick(0);
  slo.ObservePending(*ledger.MutableSpan(0), 0);  // age 1 <= 2: fine
  EXPECT_EQ(slo.violations(), 0);
  slo.BeginTick(2);
  slo.ObservePending(*ledger.MutableSpan(0), 2);  // age 3 > 2: flags
  EXPECT_EQ(slo.violations(), 1);
  slo.BeginTick(3);
  slo.ObservePending(*ledger.MutableSpan(0), 3);  // already flagged
  EXPECT_EQ(slo.violations(), 1);

  // The eventual late admission does not double-count the violation, but
  // still records the wait distribution.
  slo.BeginTick(5);
  slo.OnAdmitted(*ledger.MutableSpan(0), ledger.OnPlaced(0, 1, -1, 5));
  EXPECT_EQ(slo.violations(), 1);
  EXPECT_EQ(slo.admitted(), 1);

  // A preemption re-opens a fresh epoch that can be flagged again.
  ledger.OnPreempted(0, 6);
  slo.BeginTick(9);
  slo.ObservePending(*ledger.MutableSpan(0), 9);  // age 4 > 2: flags again
  EXPECT_EQ(slo.violations(), 2);
}

TEST(SloEngine, BurnRateWindowsAndExpires) {
  obs::SloObjective objective;
  objective.wait_ticks = 0;   // any wait > 0 violates
  objective.percent = 99.0;   // budget 1%
  objective.burn_window_ticks = 4;
  obs::SloEngine slo(objective);
  obs::LifecycleLedger ledger;

  slo.BeginTick(0);
  for (std::int32_t c = 0; c < 3; ++c) {
    ledger.OnArrival(c, 0, 0);
    slo.OnAdmitted(*ledger.MutableSpan(c), ledger.OnPlaced(c, 0, -1, 0));
  }
  ledger.OnArrival(3, 0, 0);
  slo.ObservePending(*ledger.MutableSpan(3), 0);  // age 1 > 0: bad
  // Window: 3 good, 1 bad -> bad fraction 0.25, burn = 0.25 / 0.01 = 25.
  EXPECT_DOUBLE_EQ(slo.Snapshot(0).burn_rate, 25.0);

  // Rotating the full window out drops the burn to zero; the cumulative
  // attainment keeps the violation forever.
  slo.BeginTick(10);
  const obs::SloSnapshot snap = slo.Snapshot(0);
  EXPECT_DOUBLE_EQ(snap.burn_rate, 0.0);
  EXPECT_EQ(snap.violations, 1);
}

// --------------------------------------------- resolver tick-determinism ----

void RunOverloadScript(k8s::ClusterSimulator& sim, int ticks) {
  // Deliberately oversubscribed so pods queue across ticks and the SLO
  // engine sees real waits, violations, and preemption epochs.
  Rng rng(11);
  std::int64_t apps = 0;
  for (int t = 0; t < ticks; ++t) {
    for (int d = 0; d < 4; ++d) {
      k8s::PodSpec spec;
      spec.requests = cluster::ResourceVector::Cores(rng.UniformInt(2, 8),
                                                     rng.UniformInt(4, 16));
      spec.priority = rng.Bernoulli(0.25)
                          ? static_cast<cluster::Priority>(rng.UniformInt(1, 3))
                          : 0;
      spec.anti_affinity_within = rng.Bernoulli(0.5);
      sim.SubmitDeployment("svc-" + std::to_string(apps++),
                           static_cast<std::size_t>(rng.UniformInt(2, 8)),
                           spec);
    }
    sim.SubmitBatchJob("job-" + std::to_string(t), 20,
                       cluster::ResourceVector::Cores(1, 2),
                       /*lifetime_ticks=*/2);
    sim.Tick();
  }
}

// Per-tick fingerprint of every SLO surface a run exposes via ResolveStats.
std::string SloFingerprint(const k8s::ClusterSimulator& sim) {
  std::string out;
  char buf[256];
  for (const k8s::ResolveStats& s : sim.history()) {
    std::snprintf(
        buf, sizeof(buf),
        "t=%lld adm=%lld w=%lld v=%lld att=%.9f burn=%.9f "
        "wait=(%lld,%lld,%lld,%lld) open=%zu age=(%lld,%lld,%lld,%lld) "
        "apps=%zu\n",
        static_cast<long long>(s.tick),
        static_cast<long long>(s.slo.admitted),
        static_cast<long long>(s.slo.within),
        static_cast<long long>(s.slo.violations), s.slo.attainment_pct,
        s.slo.burn_rate, static_cast<long long>(s.slo.p50),
        static_cast<long long>(s.slo.p99),
        static_cast<long long>(s.slo.p999),
        static_cast<long long>(s.slo.wait_max), s.pending_ages.open,
        static_cast<long long>(s.pending_ages.p50),
        static_cast<long long>(s.pending_ages.p99),
        static_cast<long long>(s.pending_ages.p999),
        static_cast<long long>(s.pending_ages.max), s.slo.apps_total);
    out += buf;
  }
  return out;
}

k8s::ResolverOptions LifecycleOptions(int threads, int shards) {
  k8s::ResolverOptions options;
  options.aladdin = k8s::Resolver::DefaultOptions();
  options.aladdin.threads = threads;
  options.shards = shards;
  options.slo.wait_ticks = 1;  // tight objective: violations guaranteed
  return options;
}

// Runs the script and returns (per-tick fingerprint, final /slo JSON).
std::pair<std::string, std::string> RunAndCapture(int threads, int shards) {
  k8s::ClusterSimulator sim(LifecycleOptions(threads, shards));
  sim.AddNodes(12, cluster::ResourceVector::Cores(16, 32), "node", 4, 2);
  RunOverloadScript(sim, 8);
  return {SloFingerprint(sim), obs::RenderSloJson(obs::IntrospectionSnapshot())};
}

TEST(LifecycleDeterminism, SloBitIdenticalAcrossThreadCounts) {
  const auto serial = RunAndCapture(/*threads=*/1, /*shards=*/0);
  const auto parallel = RunAndCapture(/*threads=*/8, /*shards=*/0);
  EXPECT_EQ(serial.first, parallel.first);
  EXPECT_EQ(serial.second, parallel.second);
  // The run is genuinely overloaded: violations must have been flagged by
  // the final tick, or the identity above proved nothing interesting.
  const std::size_t last_v = serial.first.rfind(" v=");
  ASSERT_NE(last_v, std::string::npos);
  EXPECT_NE(serial.first.substr(last_v, 5), " v=0 ");
}

TEST(LifecycleDeterminism, SloBitIdenticalAcrossThreadCountsSharded) {
  const auto serial = RunAndCapture(/*threads=*/1, /*shards=*/4);
  const auto parallel = RunAndCapture(/*threads=*/8, /*shards=*/4);
  EXPECT_EQ(serial.first, parallel.first);
  EXPECT_EQ(serial.second, parallel.second);
}

TEST(LifecycleDeterminism, OneShardMatchesUnsharded) {
  // Shards 0 vs 1 publish byte-identical snapshots (shard attribution is
  // suppressed at K <= 1, matching the journal's convention).
  const auto unsharded = RunAndCapture(/*threads=*/1, /*shards=*/0);
  const auto one_shard = RunAndCapture(/*threads=*/1, /*shards=*/1);
  EXPECT_EQ(unsharded.first, one_shard.first);
  EXPECT_EQ(unsharded.second, one_shard.second);
}

TEST(LifecycleResolver, OverloadAccountsEveryPendingPod) {
  k8s::ClusterSimulator sim(LifecycleOptions(/*threads=*/1, /*shards=*/0));
  sim.AddNodes(8, cluster::ResourceVector::Cores(8, 16), "node", 2, 2);
  RunOverloadScript(sim, 6);
  const k8s::ResolveStats& last = sim.history().back();
  // Every pod still pending is aged >= 1 and visible in the summary.
  EXPECT_EQ(last.pending_ages.open, sim.adaptor().PendingPods().size());
  if (last.pending_ages.open > 0) {
    EXPECT_GE(last.pending_ages.p50, 1);
    EXPECT_GE(last.pending_ages.max, last.pending_ages.p99);
  }
  // The introspection hub carries the same tick the stats reported.
  ASSERT_TRUE(obs::IntrospectionPublished());
  const obs::IntrospectionStatus status = obs::IntrospectionSnapshot();
  EXPECT_EQ(status.tick, last.tick);
  EXPECT_EQ(status.pending_ages.open, last.pending_ages.open);
  EXPECT_EQ(status.oldest_pending.size(), status.oldest_pending_app.size());
}

TEST(LifecycleResolver, DisablingLifecycleZeroesTheSurfaces) {
  k8s::ResolverOptions options = LifecycleOptions(1, 0);
  options.lifecycle = false;
  k8s::ClusterSimulator sim(options);
  sim.AddNodes(8, cluster::ResourceVector::Cores(8, 16), "node", 2, 2);
  RunOverloadScript(sim, 3);
  const k8s::ResolveStats& last = sim.history().back();
  EXPECT_EQ(last.slo.admitted, 0);
  EXPECT_EQ(last.pending_ages.open, 0u);
}

// ------------------------------------------------- introspection + HTTP ----

std::string HttpGet(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  (void)!::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

obs::IntrospectionStatus SyntheticStatus() {
  obs::IntrospectionStatus status;
  status.tick = 42;
  status.slo.tick = 42;
  status.slo.admitted = 10;
  status.slo.within = 9;
  status.slo.violations = 1;
  status.slo.attainment_pct = 90.0;
  obs::SloAppRow app;
  app.app = 0;
  app.name = "web\"front/end\n";  // exercises the JSON escaper
  app.admitted = 10;
  app.within = 9;
  app.violations = 1;
  status.slo.apps_total = 1;
  status.slo.apps.push_back(app);
  obs::IntrospectionShard shard;
  shard.shard = 0;
  shard.machines = 4;
  status.shards.push_back(shard);
  obs::PendingRow pending;
  pending.container = 7;
  pending.app = 0;
  pending.arrival_tick = 40;
  pending.age_ticks = 3;
  status.oldest_pending.push_back(pending);
  status.oldest_pending_app.push_back("web\"front/end\n");
  return status;
}

TEST(Introspection, EndpointsServeHealthStatusAndSlo) {
  obs::PublishIntrospection(SyntheticStatus());
  obs::SetMetricsEnabled(true);
  obs::Registry::Get().ResetAll();
  obs::Registry::Get().GetCounter("test/endpoint").Add(5);

  obs::PrometheusListener listener;
  ASSERT_TRUE(listener.Start(0));
  const std::uint16_t port = listener.port();
  ASSERT_GT(port, 0);

  const std::string health = HttpGet(port, "/healthz");
  EXPECT_NE(health.find("200 OK"), std::string::npos);
  EXPECT_NE(health.find("ok\n"), std::string::npos);

  const std::string statusz = HttpGet(port, "/statusz");
  EXPECT_NE(statusz.find("aladdin statusz — tick 42"), std::string::npos);
  EXPECT_NE(statusz.find("admitted=10 within=9 violations=1"),
            std::string::npos);
  EXPECT_NE(statusz.find("oldest pending"), std::string::npos);

  const std::string slo = HttpGet(port, "/slo");
  EXPECT_NE(slo.find("application/json"), std::string::npos);
  EXPECT_NE(slo.find("\"attainment_pct\":90"), std::string::npos);
  // The hostile app name survives as escaped JSON, never raw.
  EXPECT_NE(slo.find("web\\\"front/end\\n"), std::string::npos);
  EXPECT_EQ(slo.find("web\"front"), std::string::npos);

  // Any other path stays the Prometheus scrape (back-compat).
  const std::string prom = HttpGet(port, "/metrics");
  EXPECT_NE(prom.find("aladdin_test_endpoint 5"), std::string::npos);

  listener.Stop();
  obs::SetMetricsEnabled(false);
  obs::Registry::Get().ResetAll();
}

TEST(Introspection, RenderersAreDeterministicCopies) {
  const obs::IntrospectionStatus status = SyntheticStatus();
  obs::PublishIntrospection(status);
  ASSERT_TRUE(obs::IntrospectionPublished());
  const obs::IntrospectionStatus copy = obs::IntrospectionSnapshot();
  EXPECT_EQ(obs::RenderStatusz(status), obs::RenderStatusz(copy));
  EXPECT_EQ(obs::RenderSloJson(status), obs::RenderSloJson(copy));
}

}  // namespace
}  // namespace aladdin

// Unit + property tests for the three baseline schedulers: Firmament (cost
// models, multi-round conflict repair), Medea (weighted objective, local
// search), and Go-Kube (scoring, preemption, equivalence cache).
#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/firmament/cost_model.h"
#include "baselines/firmament/scheduler.h"
#include "baselines/gokube/scheduler.h"
#include "baselines/gokube/scoring.h"
#include "baselines/medea/local_search.h"
#include "baselines/medea/objective.h"
#include "baselines/medea/scheduler.h"
#include "cluster/audit.h"
#include "sim/experiment.h"
#include "trace/alibaba_gen.h"

namespace aladdin::baselines {
namespace {

using cluster::ApplicationId;
using cluster::ContainerId;
using cluster::MachineId;
using cluster::ResourceVector;
using cluster::Topology;
using trace::Workload;

// Shared small fixture: two conflicting apps + fillers on 4 machines.
class BaselineFixture : public ::testing::Test {
 protected:
  BaselineFixture()
      : topo_(Topology::Uniform(4, ResourceVector::Cores(32, 64))) {
    a_ = wl_.AddApplication("a", 2, ResourceVector::Cores(8, 16), 1, true);
    b_ = wl_.AddApplication("b", 2, ResourceVector::Cores(4, 8), 0);
    wl_.AddAntiAffinity(a_, b_);
  }
  ContainerId C(ApplicationId app, std::size_t i) const {
    return wl_.application(app).containers[i];
  }
  Topology topo_;
  Workload wl_;
  ApplicationId a_, b_;
};

// ---------------------------------------------------------- cost model ----

TEST_F(BaselineFixture, TrivialCostPrefersPackedMachines) {
  auto state = wl_.MakeState(topo_);
  state.Deploy(C(b_, 0), MachineId(0));  // machine 0 now more packed
  const auto cost_packed = PlacementArcCost(
      FirmamentCostModel::kTrivial, state, C(b_, 1), MachineId(0), 7);
  const auto cost_empty = PlacementArcCost(
      FirmamentCostModel::kTrivial, state, C(b_, 1), MachineId(1), 7);
  EXPECT_LT(cost_packed, cost_empty);
}

TEST_F(BaselineFixture, OctopusCostPrefersFewerContainers) {
  auto state = wl_.MakeState(topo_);
  state.Deploy(C(b_, 0), MachineId(0));
  const auto loaded = PlacementArcCost(FirmamentCostModel::kOctopus, state,
                                       C(b_, 1), MachineId(0), 7);
  const auto empty = PlacementArcCost(FirmamentCostModel::kOctopus, state,
                                      C(b_, 1), MachineId(1), 7);
  EXPECT_GT(loaded, empty);
}

TEST_F(BaselineFixture, QuincyCostIsDeterministicPerContainerRack) {
  auto state = wl_.MakeState(topo_);
  const auto c1 = PlacementArcCost(FirmamentCostModel::kQuincy, state,
                                   C(a_, 0), MachineId(0), 7);
  const auto c2 = PlacementArcCost(FirmamentCostModel::kQuincy, state,
                                   C(a_, 0), MachineId(0), 7);
  EXPECT_EQ(c1, c2);
  // A different salt shifts the preference table.
  const auto c3 = PlacementArcCost(FirmamentCostModel::kQuincy, state,
                                   C(a_, 0), MachineId(0), 8);
  const auto c4 = PlacementArcCost(FirmamentCostModel::kQuincy, state,
                                   C(a_, 1), MachineId(0), 7);
  EXPECT_TRUE(c3 != c1 || c4 != c1);  // salt or task changes the cost
}

TEST_F(BaselineFixture, UnscheduledCostDominatesPlacement) {
  auto state = wl_.MakeState(topo_);
  for (auto model :
       {FirmamentCostModel::kTrivial, FirmamentCostModel::kQuincy,
        FirmamentCostModel::kOctopus}) {
    const auto placement =
        PlacementArcCost(model, state, C(a_, 0), MachineId(0), 7);
    EXPECT_GT(UnscheduledArcCost(model, state, C(a_, 0)), placement);
  }
}

TEST(CostModelNames, Distinct) {
  EXPECT_STREQ(CostModelName(FirmamentCostModel::kTrivial), "TRIVIAL");
  EXPECT_STREQ(CostModelName(FirmamentCostModel::kQuincy), "QUINCY");
  EXPECT_STREQ(CostModelName(FirmamentCostModel::kOctopus), "OCTOPUS");
}

// ----------------------------------------------------------- firmament ----

TEST_F(BaselineFixture, FirmamentPlacesSimpleWorkload) {
  FirmamentScheduler scheduler;
  const auto arrival = trace::MakeArrivalSequence(wl_, trace::ArrivalOrder::kFifo);
  auto state = wl_.MakeState(topo_);
  sim::ScheduleRequest request{&wl_, &arrival};
  const auto outcome = scheduler.Schedule(request, state);
  EXPECT_TRUE(outcome.unplaced.empty());
  EXPECT_TRUE(state.VerifyResourceInvariant());
}

TEST_F(BaselineFixture, FirmamentNeverLeavesColocationViolations) {
  // The defining behaviour (Fig. 1b): rather than violate anti-affinity,
  // Firmament leaves containers unscheduled.
  for (auto model :
       {FirmamentCostModel::kTrivial, FirmamentCostModel::kQuincy,
        FirmamentCostModel::kOctopus}) {
    FirmamentOptions options;
    options.cost_model = model;
    options.reschd = 1;
    FirmamentScheduler scheduler(options);
    const auto arrival =
        trace::MakeArrivalSequence(wl_, trace::ArrivalOrder::kRandom);
    auto state = wl_.MakeState(topo_);
    sim::ScheduleRequest request{&wl_, &arrival};
    scheduler.Schedule(request, state);
    EXPECT_TRUE(cluster::CollectColocationViolations(state).empty())
        << CostModelName(model);
  }
}

TEST(Firmament, NameEncodesModelAndReschd) {
  FirmamentOptions options;
  options.cost_model = FirmamentCostModel::kOctopus;
  options.reschd = 4;
  EXPECT_EQ(FirmamentScheduler(options).name(), "Firmament-OCTOPUS(4)");
}

TEST(Firmament, GeneratedWorkloadInvariants) {
  trace::AlibabaTraceOptions topts;
  topts.scale = 0.02;
  const Workload wl = trace::GenerateAlibabaLike(topts);
  const Topology topo = trace::MakeAlibabaCluster(sim::BenchMachineCount(0.02));
  FirmamentOptions options;
  options.reschd = 8;
  FirmamentScheduler scheduler(options);
  const auto arrival =
      trace::MakeArrivalSequence(wl, trace::ArrivalOrder::kRandom);
  auto state = wl.MakeState(topo);
  sim::ScheduleRequest request{&wl, &arrival};
  const auto outcome = scheduler.Schedule(request, state);
  EXPECT_TRUE(state.VerifyResourceInvariant());
  EXPECT_TRUE(cluster::CollectColocationViolations(state).empty());
  EXPECT_EQ(state.placed_count() + outcome.unplaced.size(),
            wl.container_count());
}

TEST(Firmament, HigherReschdNeverWorse) {
  // More relocation attempts per conflicted machine cannot increase the
  // stranded count on the same deterministic workload.
  trace::AlibabaTraceOptions topts;
  topts.scale = 0.02;
  const Workload wl = trace::GenerateAlibabaLike(topts);
  const Topology topo = trace::MakeAlibabaCluster(sim::BenchMachineCount(0.02));
  const auto arrival =
      trace::MakeArrivalSequence(wl, trace::ArrivalOrder::kRandom);
  std::vector<std::size_t> unplaced;
  for (int reschd : {1, 8}) {
    FirmamentOptions options;
    options.cost_model = FirmamentCostModel::kTrivial;
    options.reschd = reschd;
    FirmamentScheduler scheduler(options);
    auto state = wl.MakeState(topo);
    sim::ScheduleRequest request{&wl, &arrival};
    unplaced.push_back(scheduler.Schedule(request, state).unplaced.size());
  }
  EXPECT_LE(unplaced[1], unplaced[0]);
}

TEST(Firmament, McmfAndGreedyRoundsBothValid) {
  // The exact MCMF round and the cost-model-greedy round are alternative
  // solvers for the same assignment; on an uncontended workload both must
  // place everything without violations.
  trace::AlibabaTraceOptions topts;
  topts.scale = 0.01;
  const Workload wl = trace::GenerateAlibabaLike(topts);
  const Topology topo = trace::MakeAlibabaCluster(140);
  const auto arrival =
      trace::MakeArrivalSequence(wl, trace::ArrivalOrder::kRandom);
  for (const int threshold : {0, 1 << 20}) {  // greedy-only vs MCMF-only
    FirmamentOptions options;
    options.reschd = 8;
    options.mcmf_task_threshold = threshold;
    FirmamentScheduler scheduler(options);
    auto state = wl.MakeState(topo);
    sim::ScheduleRequest request{&wl, &arrival};
    const auto outcome = scheduler.Schedule(request, state);
    EXPECT_TRUE(state.VerifyResourceInvariant()) << "threshold " << threshold;
    EXPECT_TRUE(cluster::CollectColocationViolations(state).empty());
    EXPECT_EQ(state.placed_count() + outcome.unplaced.size(),
              wl.container_count());
    // Both paths should place the overwhelming majority.
    EXPECT_LT(outcome.unplaced.size(), wl.container_count() / 10)
        << "threshold " << threshold;
  }
}

TEST(Firmament, TimeoutBoundsRounds) {
  trace::AlibabaTraceOptions topts;
  topts.scale = 0.01;
  const Workload wl = trace::GenerateAlibabaLike(topts);
  const Topology topo = trace::MakeAlibabaCluster(100);
  FirmamentOptions options;
  options.max_rounds = 2;
  FirmamentScheduler scheduler(options);
  const auto arrival =
      trace::MakeArrivalSequence(wl, trace::ArrivalOrder::kRandom);
  auto state = wl.MakeState(topo);
  sim::ScheduleRequest request{&wl, &arrival};
  const auto outcome = scheduler.Schedule(request, state);
  EXPECT_LE(outcome.rounds, 2);
}

// ---------------------------------------------------------------- medea ----

TEST(MedeaObjective, ToStringFormatsWeights) {
  EXPECT_EQ((MedeaWeights{1, 1, 0.5}).ToString(), "(1,1,0.5)");
  EXPECT_EQ((MedeaWeights{1, 0.5, 0}).ToString(), "(1,0.5,0)");
}

TEST(MedeaObjective, ViolationUnitCostSemantics) {
  // c = 0 forbids violations outright.
  EXPECT_GE(ViolationUnitCost({1, 1, 0.0}), kViolationForbidden);
  // c = 1: violating (1/3) is cheaper than opening a machine (1/2).
  EXPECT_LT(ViolationUnitCost({1, 1, 1.0}), kMachineOpenScale);
  // c = 0.5: opening a machine is cheaper than violating.
  EXPECT_GT(ViolationUnitCost({1, 1, 0.5}), kMachineOpenScale);
  // Everything beats leaving a container unplaced.
  EXPECT_LT(ViolationUnitCost({1, 1, 0.5}), UnplacedCost({1, 1, 0.5}));
}

TEST_F(BaselineFixture, MedeaPlacementCostAccounting) {
  auto state = wl_.MakeState(topo_);
  const MedeaWeights weights{1, 1, 1};
  // Empty machine: machine-open cost only.
  EXPECT_DOUBLE_EQ(PlacementCost(state, C(a_, 0), MachineId(0), weights),
                   kMachineOpenScale);
  state.Deploy(C(a_, 0), MachineId(0));
  // Conflicting tenant: one violation, machine already open.
  EXPECT_DOUBLE_EQ(PlacementCost(state, C(b_, 0), MachineId(0), weights),
                   ViolationUnitCost(weights));
  // Sibling with within-anti-affinity: also one violation.
  EXPECT_DOUBLE_EQ(PlacementCost(state, C(a_, 1), MachineId(0), weights),
                   ViolationUnitCost(weights));
  // Clean open machine is free.
  state.Deploy(C(b_, 0), MachineId(1));
  EXPECT_DOUBLE_EQ(PlacementCost(state, C(b_, 1), MachineId(1), weights),
                   0.0);
}

TEST_F(BaselineFixture, MedeaSolutionObjectiveMatchesIncrementalSum) {
  const MedeaWeights weights{1, 1, 1};
  auto state = wl_.MakeState(topo_);
  double incremental = 0.0;
  // Construct a solution step by step, accumulating incremental costs.
  const struct {
    ContainerId c;
    MachineId m;
  } placements[] = {
      {C(a_, 0), MachineId(0)},
      {C(b_, 0), MachineId(0)},  // violation
      {C(a_, 1), MachineId(1)},
      {C(b_, 1), MachineId(1)},  // violation
  };
  for (const auto& p : placements) {
    incremental += PlacementCost(state, p.c, p.m, weights);
    state.Deploy(p.c, p.m);
  }
  EXPECT_DOUBLE_EQ(SolutionObjective(state, 0, weights), incremental);
}

TEST_F(BaselineFixture, MedeaHardModeNeverViolates) {
  MedeaOptions options;
  options.weights = {1, 1, 0};
  MedeaScheduler scheduler(options);
  const auto arrival =
      trace::MakeArrivalSequence(wl_, trace::ArrivalOrder::kRandom);
  auto state = wl_.MakeState(topo_);
  sim::ScheduleRequest request{&wl_, &arrival};
  scheduler.Schedule(request, state);
  EXPECT_TRUE(cluster::CollectColocationViolations(state).empty());
}

TEST(Medea, HardModeOnGeneratedWorkloadNeverViolates) {
  trace::AlibabaTraceOptions topts;
  topts.scale = 0.02;
  const Workload wl = trace::GenerateAlibabaLike(topts);
  const Topology topo = trace::MakeAlibabaCluster(sim::BenchMachineCount(0.02));
  MedeaOptions options;
  options.weights = {1, 1, 0};
  MedeaScheduler scheduler(options);
  const auto arrival =
      trace::MakeArrivalSequence(wl, trace::ArrivalOrder::kRandom);
  auto state = wl.MakeState(topo);
  sim::ScheduleRequest request{&wl, &arrival};
  scheduler.Schedule(request, state);
  EXPECT_TRUE(cluster::CollectColocationViolations(state).empty());
  EXPECT_TRUE(state.VerifyResourceInvariant());
}

TEST(Medea, SoftModeTradesViolationsForMachines) {
  // On a 2-machine cluster with conflicting pairs: hard mode strands or
  // spreads; soft (c=1) packs with violations.
  Workload wl;
  const auto a = wl.AddApplication("a", 2, ResourceVector::Cores(4, 8));
  const auto b = wl.AddApplication("b", 2, ResourceVector::Cores(4, 8));
  wl.AddAntiAffinity(a, b);
  const Topology topo = Topology::Uniform(1, ResourceVector::Cores(32, 64));
  const auto arrival = trace::MakeArrivalSequence(wl, trace::ArrivalOrder::kFifo);

  MedeaOptions soft;
  soft.weights = {1, 1, 1};
  MedeaScheduler soft_scheduler(soft);
  auto soft_state = wl.MakeState(topo);
  sim::ScheduleRequest request{&wl, &arrival};
  const auto soft_outcome = soft_scheduler.Schedule(request, soft_state);
  EXPECT_TRUE(soft_outcome.unplaced.empty());  // violated but placed
  EXPECT_FALSE(cluster::CollectColocationViolations(soft_state).empty());

  MedeaOptions hard;
  hard.weights = {1, 1, 0};
  MedeaScheduler hard_scheduler(hard);
  auto hard_state = wl.MakeState(topo);
  const auto hard_outcome = hard_scheduler.Schedule(request, hard_state);
  EXPECT_FALSE(hard_outcome.unplaced.empty());  // strands instead
  EXPECT_TRUE(cluster::CollectColocationViolations(hard_state).empty());
}

TEST(Medea, LocalSearchNeverIncreasesObjective) {
  trace::AlibabaTraceOptions topts;
  topts.scale = 0.01;
  const Workload wl = trace::GenerateAlibabaLike(topts);
  const Topology topo = trace::MakeAlibabaCluster(120);
  const MedeaWeights weights{1, 1, 0.5};

  // Greedy-only construction.
  MedeaOptions greedy_only;
  greedy_only.weights = weights;
  greedy_only.run_local_search = false;
  MedeaScheduler greedy(greedy_only);
  const auto arrival =
      trace::MakeArrivalSequence(wl, trace::ArrivalOrder::kRandom);
  auto state = wl.MakeState(topo);
  sim::ScheduleRequest request{&wl, &arrival};
  auto outcome = greedy.Schedule(request, state);
  const double before =
      SolutionObjective(state, outcome.unplaced.size(), weights);

  cluster::FreeIndex index;
  index.Attach(state);
  LocalSearchOptions ls;
  ls.max_iterations = 3000;
  const auto stats =
      ImprovePlacements(state, index, outcome.unplaced, weights, ls);
  const double after =
      SolutionObjective(state, outcome.unplaced.size(), weights);
  EXPECT_LE(after, before + 1e-9);
  EXPECT_TRUE(state.VerifyResourceInvariant());
  (void)stats;
}

TEST(Medea, NameEncodesWeights) {
  MedeaOptions options;
  options.weights = {1, 1, 0.5};
  EXPECT_EQ(MedeaScheduler(options).name(), "Medea(1,1,0.5)");
}

// --------------------------------------------------------------- gokube ----

TEST(GoKubeScoring, LeastRequestedPrefersEmptierMachines) {
  const ResourceVector cap = ResourceVector::Cores(32, 64);
  const double emptier =
      LeastRequestedScore(ResourceVector::Cores(24, 48), cap);
  const double fuller = LeastRequestedScore(ResourceVector::Cores(8, 16), cap);
  EXPECT_GT(emptier, fuller);
  EXPECT_LE(emptier, 10.0);
  EXPECT_GE(fuller, 0.0);
}

TEST(GoKubeScoring, BalancedAllocationPenalisesSkew) {
  const ResourceVector cap = ResourceVector::Cores(32, 64);
  const double balanced =
      BalancedAllocationScore(ResourceVector::Cores(16, 32), cap);
  const double skewed =
      BalancedAllocationScore(ResourceVector(16000, 8 * 1024), cap);
  EXPECT_GT(balanced, skewed);
  EXPECT_DOUBLE_EQ(balanced, 10.0);
}

TEST(GoKubeScoring, SingleDimensionIsAlwaysBalanced) {
  const ResourceVector cap(32000, 0);  // CPU-only
  EXPECT_DOUBLE_EQ(BalancedAllocationScore(ResourceVector(10000, 0), cap),
                   10.0);
}

TEST_F(BaselineFixture, GoKubeRespectsHardAntiAffinity) {
  GoKubeScheduler scheduler;
  const auto arrival =
      trace::MakeArrivalSequence(wl_, trace::ArrivalOrder::kFifo);
  auto state = wl_.MakeState(topo_);
  sim::ScheduleRequest request{&wl_, &arrival};
  scheduler.Schedule(request, state);
  EXPECT_TRUE(cluster::CollectColocationViolations(state).empty());
  EXPECT_TRUE(state.VerifyResourceInvariant());
}

TEST(GoKube, SpreadsAcrossMachines) {
  // LeastRequested picks the emptiest machine: 4 independent containers on
  // 4 machines end up one per machine.
  Workload wl;
  wl.AddApplication("a", 4, ResourceVector::Cores(2, 4));
  const Topology topo = Topology::Uniform(4, ResourceVector::Cores(32, 64));
  GoKubeScheduler scheduler;
  const auto arrival = trace::MakeArrivalSequence(wl, trace::ArrivalOrder::kFifo);
  auto state = wl.MakeState(topo);
  sim::ScheduleRequest request{&wl, &arrival};
  scheduler.Schedule(request, state);
  EXPECT_EQ(state.UsedMachineCount(), 4u);
}

TEST(GoKube, PreemptionEvictsOnlyLowerPriority) {
  // Cluster full of low-priority work; a high-priority arrival preempts.
  Workload wl;
  const auto low = wl.AddApplication("low", 2, ResourceVector::Cores(16, 32), 0);
  const auto high =
      wl.AddApplication("high", 1, ResourceVector::Cores(16, 32), 2);
  const Topology topo = Topology::Uniform(1, ResourceVector::Cores(32, 64));
  GoKubeScheduler scheduler;
  const auto arrival = trace::MakeArrivalSequence(wl, trace::ArrivalOrder::kFifo);
  auto state = wl.MakeState(topo);
  sim::ScheduleRequest request{&wl, &arrival};
  const auto outcome = scheduler.Schedule(request, state);
  EXPECT_TRUE(state.IsPlaced(wl.application(high).containers[0]));
  EXPECT_GE(state.preemptions(), 1);
  // Exactly one low-priority container survives alongside... or was
  // preempted and re-queued; either way no violation and full accounting.
  EXPECT_EQ(state.placed_count() + outcome.unplaced.size(),
            wl.container_count());
  (void)low;
}

TEST(GoKube, NoPreemptionAmongEqualPriority) {
  Workload wl;
  wl.AddApplication("first", 2, ResourceVector::Cores(16, 32), 1);
  const auto late =
      wl.AddApplication("late", 1, ResourceVector::Cores(16, 32), 1);
  const Topology topo = Topology::Uniform(1, ResourceVector::Cores(32, 64));
  GoKubeScheduler scheduler;
  const auto arrival = trace::MakeArrivalSequence(wl, trace::ArrivalOrder::kFifo);
  auto state = wl.MakeState(topo);
  sim::ScheduleRequest request{&wl, &arrival};
  const auto outcome = scheduler.Schedule(request, state);
  ASSERT_EQ(outcome.unplaced.size(), 1u);
  EXPECT_EQ(outcome.unplaced[0], wl.application(late).containers[0]);
  EXPECT_EQ(state.preemptions(), 0);
}

TEST(GoKube, PreemptionNeverClearsBlacklists) {
  // The "handles constraints separately" failure mode: a high-priority
  // container blocked by anti-affinity everywhere stays pending even though
  // it outranks every blocker.
  Workload wl;
  const auto blocker =
      wl.AddApplication("blocker", 2, ResourceVector::Cores(1, 2), 0);
  const auto vip = wl.AddApplication("vip", 1, ResourceVector::Cores(1, 2), 3);
  wl.AddAntiAffinity(blocker, vip);
  const Topology topo = Topology::Uniform(2, ResourceVector::Cores(32, 64));
  GoKubeScheduler scheduler;
  const auto arrival = trace::MakeArrivalSequence(wl, trace::ArrivalOrder::kFifo);
  auto state = wl.MakeState(topo);
  sim::ScheduleRequest request{&wl, &arrival};
  const auto outcome = scheduler.Schedule(request, state);
  ASSERT_EQ(outcome.unplaced.size(), 1u);
  EXPECT_EQ(outcome.unplaced[0], wl.application(vip).containers[0]);
  EXPECT_EQ(state.preemptions(), 0);
}

TEST(GoKube, EquivalenceCacheStrandsSiblings) {
  // Once one replica dead-ends, the cached verdict strands the rest.
  Workload wl;
  const auto blocker =
      wl.AddApplication("blocker", 2, ResourceVector::Cores(1, 2), 0);
  const auto app = wl.AddApplication("app", 3, ResourceVector::Cores(1, 2), 0);
  wl.AddAntiAffinity(blocker, app);
  const Topology topo = Topology::Uniform(2, ResourceVector::Cores(32, 64));
  GoKubeOptions options;
  options.equivalence_cache = true;
  GoKubeScheduler scheduler(options);
  const auto arrival = trace::MakeArrivalSequence(wl, trace::ArrivalOrder::kFifo);
  auto state = wl.MakeState(topo);
  sim::ScheduleRequest request{&wl, &arrival};
  const auto outcome = scheduler.Schedule(request, state);
  // Both machines host blockers by the time `app` arrives; all 3 strand.
  EXPECT_EQ(outcome.unplaced.size(), 3u);
  // Without the cache the result is the same here (every machine is truly
  // blocked), but the cache answers from memory: far fewer probes.
  GoKubeOptions no_cache;
  no_cache.equivalence_cache = false;
  GoKubeScheduler scheduler2(no_cache);
  auto state2 = wl.MakeState(topo);
  const auto outcome2 = scheduler2.Schedule(request, state2);
  EXPECT_EQ(outcome2.unplaced.size(), 3u);
  EXPECT_LT(outcome.explored_paths, outcome2.explored_paths);
}

TEST(GoKube, GeneratedWorkloadInvariants) {
  trace::AlibabaTraceOptions topts;
  topts.scale = 0.02;
  const Workload wl = trace::GenerateAlibabaLike(topts);
  const Topology topo = trace::MakeAlibabaCluster(sim::BenchMachineCount(0.02));
  GoKubeScheduler scheduler;
  const auto arrival =
      trace::MakeArrivalSequence(wl, trace::ArrivalOrder::kRandom);
  auto state = wl.MakeState(topo);
  sim::ScheduleRequest request{&wl, &arrival};
  const auto outcome = scheduler.Schedule(request, state);
  EXPECT_TRUE(state.VerifyResourceInvariant());
  EXPECT_TRUE(cluster::CollectColocationViolations(state).empty());
  EXPECT_EQ(state.placed_count() + outcome.unplaced.size(),
            wl.container_count());
}

}  // namespace
}  // namespace aladdin::baselines

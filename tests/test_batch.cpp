// Batch-incremental solver contract (ISSUE 9):
//
//   * core::AladdinScheduler::ScheduleBatch over any chunking of a wave is
//     bit-identical — placements, unplaced lists, search counters, obs
//     registry — to calling Schedule() once per chunk on a cold engine;
//     the only counters allowed to differ are the network-prep ones
//     (core/net_syncs, core/net_sync_noop, core/weights_cached), because
//     the batch pays the prep once;
//   * flow::RefreshCapacities preserves the previous solve's flow as a warm
//     start whose re-augmented value equals a cold rebuild's, round after
//     round of capacity churn;
//   * the group-decomposed waterfall (AladdinOptions::group_waterfall) is a
//     pure optimisation: identical placements AND search counters with the
//     knob on or off, including anti-affinity fixtures that force the
//     per-container fallback, and it disengages entirely without DL;
//   * core::TaskScheduler::PlaceRun equals per-task PlaceOne(kBestFit);
//   * the resolver's whole-tick batch equals the unbatched resolver
//     bit-identically, a batch deadline only defers (never loses) pods, and
//     batched resolves stay deterministic across thread and shard counts;
//   * Network::Sync() exits early on an empty dirty log
//     (core/net_sync_noop) and PrepareWeights memoises on its fingerprint
//     (core/weights_cached).
//
// These run under the asan/tsan presets too.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "cluster/free_index.h"
#include "common/rng.h"
#include "core/scheduler.h"
#include "core/task_scheduler.h"
#include "flow/max_flow.h"
#include "flow/workspace.h"
#include "k8s/simulator.h"
#include "obs/metrics.h"
#include "obs/runtime.h"
#include "trace/workload.h"

namespace aladdin {
namespace {

using cluster::ApplicationId;
using cluster::ContainerId;
using cluster::MachineId;
using cluster::ResourceVector;
using cluster::Topology;
using trace::Workload;

// Random mixed workload: `apps` applications appended to `wl` (half with
// intra-app anti-affinity), returning the container ids added.
std::vector<ContainerId> GrowWave(Workload& wl, Rng& rng, int apps) {
  std::vector<ContainerId> added;
  for (int a = 0; a < apps; ++a) {
    const std::size_t count = static_cast<std::size_t>(rng.UniformInt(1, 6));
    const std::size_t first = wl.container_count();
    wl.AddApplication(
        "app-" + std::to_string(wl.application_count()), count,
        ResourceVector::Cores(rng.UniformInt(1, 8), rng.UniformInt(2, 16)),
        static_cast<cluster::Priority>(
            rng.Bernoulli(0.2) ? rng.UniformInt(1, 3) : 0),
        rng.Bernoulli(0.5));
    for (std::size_t i = first; i < wl.container_count(); ++i) {
      added.emplace_back(static_cast<std::int32_t>(i));
    }
  }
  return added;
}

std::vector<MachineId> Placements(const cluster::ClusterState& state,
                                  std::size_t containers) {
  std::vector<MachineId> out;
  out.reserve(containers);
  for (std::size_t i = 0; i < containers; ++i) {
    out.push_back(state.PlacementOf(ContainerId(static_cast<std::int32_t>(i))));
  }
  return out;
}

std::map<std::string, std::int64_t> CounterSnapshot() {
  std::map<std::string, std::int64_t> out;
  for (const auto& c : obs::Registry::Get().Snapshot().counters) {
    out[c.name] = c.value;
  }
  return out;
}

std::int64_t CounterValue(const char* name) {
  for (const auto& c : obs::Registry::Get().Snapshot().counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

// The documented exemption set: prep paid once per batch instead of once
// per request. Everything else must match bit for bit.
const std::set<std::string> kBatchExemptCounters = {
    "core/net_syncs", "core/net_sync_noop", "core/weights_cached"};

void ExpectCountersMatchModuloPrep(
    const std::map<std::string, std::int64_t>& batch,
    const std::map<std::string, std::int64_t>& sequential,
    const std::string& label) {
  for (const auto& [name, value] : sequential) {
    if (kBatchExemptCounters.count(name) != 0) continue;
    const auto it = batch.find(name);
    const std::int64_t got = it == batch.end() ? 0 : it->second;
    EXPECT_EQ(got, value) << label << ": counter " << name;
  }
  for (const auto& [name, value] : batch) {
    if (kBatchExemptCounters.count(name) != 0) continue;
    EXPECT_TRUE(sequential.count(name) != 0 || value == 0)
        << label << ": counter " << name << " only on the batch side";
  }
}

// ----------------------------------------- core ScheduleBatch identity ----

// One warm-started solve per chunk == one cold Schedule() per chunk, for
// every chunk size — placements, outcomes, and all non-prep counters.
TEST(ScheduleBatch, MatchesSequentialSchedulesPerChunkSize) {
  const Topology topo =
      Topology::Uniform(32, ResourceVector::Cores(32, 64), 8, 3);
  for (const std::size_t chunk_size : {std::size_t{1}, std::size_t{7},
                                       std::size_t{64}, std::size_t{1 << 20}}) {
    Workload wl;
    Rng rng(2024);
    const std::vector<ContainerId> wave = GrowWave(wl, rng, 30);

    std::vector<std::vector<ContainerId>> chunks;
    for (std::size_t i = 0; i < wave.size(); i += chunk_size) {
      const std::size_t end = std::min(i + chunk_size, wave.size());
      chunks.emplace_back(wave.begin() + static_cast<std::ptrdiff_t>(i),
                          wave.begin() + static_cast<std::ptrdiff_t>(end));
    }
    std::vector<sim::ScheduleRequest> requests(chunks.size());
    for (std::size_t k = 0; k < chunks.size(); ++k) {
      requests[k].workload = &wl;
      requests[k].arrival = &chunks[k];
    }
    const std::string label = "chunk_size=" + std::to_string(chunk_size);

    obs::Registry::Get().ResetAll();
    obs::SetMetricsEnabled(true);
    cluster::ClusterState batch_state = wl.MakeState(topo);
    core::AladdinScheduler batch_engine;
    const auto batch_outcomes = batch_engine.ScheduleBatch(requests,
                                                           batch_state);
    const auto batch_counters = CounterSnapshot();

    obs::Registry::Get().ResetAll();
    cluster::ClusterState seq_state = wl.MakeState(topo);
    core::AladdinScheduler seq_engine;
    std::vector<sim::ScheduleOutcome> seq_outcomes;
    seq_outcomes.reserve(requests.size());
    for (const sim::ScheduleRequest& request : requests) {
      seq_outcomes.push_back(seq_engine.Schedule(request, seq_state));
    }
    const auto seq_counters = CounterSnapshot();
    obs::SetMetricsEnabled(false);

    EXPECT_EQ(Placements(batch_state, wl.container_count()),
              Placements(seq_state, wl.container_count()))
        << label;
    ASSERT_EQ(batch_outcomes.size(), seq_outcomes.size()) << label;
    for (std::size_t k = 0; k < batch_outcomes.size(); ++k) {
      EXPECT_EQ(batch_outcomes[k].unplaced, seq_outcomes[k].unplaced)
          << label << " request " << k;
      EXPECT_EQ(batch_outcomes[k].explored_paths,
                seq_outcomes[k].explored_paths)
          << label << " request " << k;
      EXPECT_EQ(batch_outcomes[k].il_prunes, seq_outcomes[k].il_prunes)
          << label << " request " << k;
      EXPECT_EQ(batch_outcomes[k].dl_stops, seq_outcomes[k].dl_stops)
          << label << " request " << k;
    }
    ExpectCountersMatchModuloPrep(batch_counters, seq_counters, label);
    ASSERT_TRUE(batch_state.CheckConsistency()) << label;
  }
}

// A no-arrival follow-up request hits the Sync() fast path: the dirty log
// is empty after the batch's own mutations were folded in, so the network
// skips the walk and says so in core/net_sync_noop.
TEST(ScheduleBatch, EmptyDirtyLogSyncIsCountedNoop) {
  const Topology topo = Topology::Uniform(8, ResourceVector::Cores(32, 64));
  Workload wl;
  Rng rng(7);
  const std::vector<ContainerId> wave = GrowWave(wl, rng, 6);
  cluster::ClusterState state = wl.MakeState(topo);
  core::AladdinScheduler engine;

  obs::Registry::Get().ResetAll();
  obs::SetMetricsEnabled(true);
  const sim::ScheduleRequest request{&wl, &wave};
  (void)engine.Schedule(request, state);
  const std::int64_t noops_after_first = CounterValue("core/net_sync_noop");

  const std::vector<ContainerId> empty;
  const sim::ScheduleRequest idle{&wl, &empty};
  (void)engine.Schedule(idle, state);
  const std::int64_t noops_after_idle = CounterValue("core/net_sync_noop");
  const std::int64_t dirty = CounterValue("core/net_sync_dirty");
  (void)engine.Schedule(idle, state);
  const std::int64_t dirty_still = CounterValue("core/net_sync_dirty");
  obs::SetMetricsEnabled(false);

  EXPECT_GT(noops_after_idle, noops_after_first)
      << "an idle resolve over a clean state must take the no-op exit";
  EXPECT_EQ(dirty_still, dirty)
      << "a no-op sync must not replay any dirty entries";
}

// PrepareWeights memoises on the workload's content fingerprint: the
// second solve over an unchanged population skips Eq. 3–5 recomputation.
TEST(ScheduleBatch, WeightsAreCachedAcrossRequests) {
  const Topology topo = Topology::Uniform(8, ResourceVector::Cores(32, 64));
  Workload wl;
  Rng rng(11);
  const std::vector<ContainerId> wave = GrowWave(wl, rng, 6);
  cluster::ClusterState state = wl.MakeState(topo);
  core::AladdinScheduler engine;

  obs::Registry::Get().ResetAll();
  obs::SetMetricsEnabled(true);
  const sim::ScheduleRequest request{&wl, &wave};
  (void)engine.Schedule(request, state);
  EXPECT_EQ(CounterValue("core/weights_cached"), 0)
      << "the first solve has nothing to reuse";
  const std::vector<ContainerId> empty;
  const sim::ScheduleRequest idle{&wl, &empty};
  (void)engine.Schedule(idle, state);
  const std::int64_t cached = CounterValue("core/weights_cached");
  obs::SetMetricsEnabled(false);
  EXPECT_EQ(cached, 1) << "an unchanged population must hit the cache";

  // Growing the workload invalidates the fingerprint.
  wl.AddApplication("late", 2, ResourceVector::Cores(2, 4));
  state.SyncWorkloadGrowth();
  obs::SetMetricsEnabled(true);
  (void)engine.Schedule(idle, state);
  obs::SetMetricsEnabled(false);
  EXPECT_EQ(CounterValue("core/weights_cached"), cached)
      << "a changed population must recompute";
}

// -------------------------------------------- warm capacity refreshes ----

flow::Graph LayeredGraph(std::int64_t width, VertexId& source, VertexId& sink,
                         std::uint64_t seed) {
  flow::Graph graph;
  source = graph.AddVertex();
  sink = graph.AddVertex();
  const VertexId tasks = graph.AddVertices(static_cast<std::size_t>(width));
  const VertexId machines =
      graph.AddVertices(static_cast<std::size_t>(width));
  Rng rng(seed);
  for (std::int64_t i = 0; i < width; ++i) {
    const VertexId t(tasks.value() + static_cast<std::int32_t>(i));
    graph.AddArc(source, t, rng.UniformInt(1, 8));
    for (int d = 0; d < 4; ++d) {
      const VertexId n(machines.value() + static_cast<std::int32_t>(
                                              rng.UniformInt(0, width - 1)));
      graph.AddArc(t, n, rng.UniformInt(1, 8));
    }
  }
  for (std::int64_t i = 0; i < width; ++i) {
    const VertexId n(machines.value() + static_cast<std::int32_t>(i));
    graph.AddArc(n, sink, rng.UniformInt(2, 16));
  }
  return graph;
}

// The machine -> sink arcs are the last `width` forward arcs, in order.
std::vector<ArcId> SinkArcs(const flow::Graph& graph, std::int64_t width) {
  std::vector<ArcId> arcs;
  const auto first = static_cast<std::int32_t>(graph.arc_count()) - 2 * width;
  for (std::int64_t i = 0; i < width; ++i) {
    arcs.emplace_back(static_cast<std::int32_t>(first + 2 * i));
  }
  return arcs;
}

// Warm refresh + re-augment reaches the same maximum flow value as a cold
// rebuild over the same capacity schedule, for many consecutive rounds.
TEST(RefreshCapacities, WarmValueMatchesColdRebuildUnderChurn) {
  constexpr std::int64_t kWidth = 48;
  VertexId ws_s{}, ws_t{};
  flow::Graph warm = LayeredGraph(kWidth, ws_s, ws_t, 5);
  VertexId cold_s{}, cold_t{};
  flow::Graph cold = LayeredGraph(kWidth, cold_s, cold_t, 5);
  const std::vector<ArcId> sink_arcs = SinkArcs(warm, kWidth);
  flow::Workspace ws;
  flow::Dinic(warm, ws_s, ws_t, ws);

  Rng rng(13);
  for (int round = 0; round < 12; ++round) {
    // Unique arcs per batch: duplicate retargets would make the batch
    // order-sensitive and the idempotence check below meaningless.
    std::set<std::int32_t> picked;
    std::vector<flow::CapacityUpdate> updates;
    while (updates.size() < 6) {
      const ArcId arc = sink_arcs[static_cast<std::size_t>(
          rng.UniformInt(0, kWidth - 1))];
      if (!picked.insert(arc.value()).second) continue;
      flow::CapacityUpdate update;
      update.arc = arc;
      update.capacity = rng.UniformInt(0, 16);
      updates.push_back(update);
    }
    flow::RefreshCapacities(warm, updates, ws_s, ws_t, ws);
    (void)flow::Dinic(warm, ws_s, ws_t, ws);  // re-augment the frontier

    cold.ResetFlows();
    for (const flow::CapacityUpdate& update : updates) {
      cold.SetCapacity(update.arc, update.capacity);
    }
    const flow::Capacity cold_value =
        flow::Dinic(cold, cold_s, cold_t).value;
    EXPECT_EQ(warm.NetOutflow(ws_s), cold_value) << "round " << round;

    // Re-applying the same targets is a no-op: nothing left to cancel.
    EXPECT_EQ(flow::RefreshCapacities(warm, updates, ws_s, ws_t, ws), 0)
        << "round " << round;
  }
}

// ------------------------------------------- group waterfall identity ----

// The sorted-capacity waterfall replays the per-container walk exactly:
// same placements, same unplaced suffixes, same search counters — on
// workloads full of anti-affinity groups that force the exact-search
// fallback mid-run.
TEST(GroupWaterfall, PlacementsAndCountersMatchPerContainerWalk) {
  const Topology topo =
      Topology::Uniform(32, ResourceVector::Cores(32, 64), 8, 3);
  for (const std::uint64_t seed : {31u, 47u, 101u}) {
    Workload wl;
    Rng rng(seed);
    const std::vector<ContainerId> wave = GrowWave(wl, rng, 28);
    const sim::ScheduleRequest request{&wl, &wave};

    core::AladdinOptions on;
    on.group_waterfall = true;
    core::AladdinOptions off = on;
    off.group_waterfall = false;

    obs::Registry::Get().ResetAll();
    obs::SetMetricsEnabled(true);
    cluster::ClusterState on_state = wl.MakeState(topo);
    core::AladdinScheduler on_engine(on);
    const auto on_outcome = on_engine.Schedule(request, on_state);
    const std::int64_t group_runs = CounterValue("core/group_runs");
    const auto on_counters = CounterSnapshot();

    obs::Registry::Get().ResetAll();
    cluster::ClusterState off_state = wl.MakeState(topo);
    core::AladdinScheduler off_engine(off);
    const auto off_outcome = off_engine.Schedule(request, off_state);
    auto off_counters = CounterSnapshot();
    obs::SetMetricsEnabled(false);

    const std::string label = "seed=" + std::to_string(seed);
    EXPECT_EQ(Placements(on_state, wl.container_count()),
              Placements(off_state, wl.container_count()))
        << label;
    EXPECT_EQ(on_outcome.unplaced, off_outcome.unplaced) << label;
    EXPECT_EQ(on_outcome.explored_paths, off_outcome.explored_paths)
        << label;
    EXPECT_EQ(on_outcome.il_prunes, off_outcome.il_prunes) << label;
    EXPECT_EQ(on_outcome.dl_stops, off_outcome.dl_stops) << label;
    EXPECT_GT(group_runs, 0)
        << label << ": the fixture must actually exercise the waterfall";
    // The waterfall's own accounting is the only divergence allowed.
    for (const char* name : {"core/group_runs", "core/group_placed"}) {
      off_counters[name] = on_counters.count(name) != 0
                               ? on_counters.at(name)
                               : off_counters[name];
    }
    for (const auto& [name, value] : on_counters) {
      const auto it = off_counters.find(name);
      EXPECT_EQ(it == off_counters.end() ? 0 : it->second, value)
          << label << ": counter " << name;
    }
  }
}

// Without DL the search is a full enumeration the waterfall does not
// model: the knob must disengage (no group runs) and stay bit-identical.
TEST(GroupWaterfall, DisengagesWithoutDepthLimiting) {
  const Topology topo =
      Topology::Uniform(24, ResourceVector::Cores(32, 64), 6, 2);
  Workload wl;
  Rng rng(61);
  const std::vector<ContainerId> wave = GrowWave(wl, rng, 18);
  const sim::ScheduleRequest request{&wl, &wave};

  core::AladdinOptions on;
  on.enable_dl = false;
  on.group_waterfall = true;
  core::AladdinOptions off = on;
  off.group_waterfall = false;

  obs::Registry::Get().ResetAll();
  obs::SetMetricsEnabled(true);
  cluster::ClusterState on_state = wl.MakeState(topo);
  core::AladdinScheduler on_engine(on);
  const auto on_outcome = on_engine.Schedule(request, on_state);
  const std::int64_t group_runs = CounterValue("core/group_runs");
  obs::SetMetricsEnabled(false);

  cluster::ClusterState off_state = wl.MakeState(topo);
  core::AladdinScheduler off_engine(off);
  const auto off_outcome = off_engine.Schedule(request, off_state);

  EXPECT_EQ(group_runs, 0) << "no DL means no waterfall runs";
  EXPECT_EQ(Placements(on_state, wl.container_count()),
            Placements(off_state, wl.container_count()));
  EXPECT_EQ(on_outcome.unplaced, off_outcome.unplaced);
  EXPECT_EQ(on_outcome.explored_paths, off_outcome.explored_paths);
}

// ------------------------------------------------ task-run placement ----

// PlaceRun == per-task PlaceOne(kBestFit), including winner exhaustion
// mid-run and the all-fail suffix, under randomized pre-occupancy.
TEST(TaskRunPlacement, PlaceRunMatchesPlaceOnePerTask) {
  for (const std::uint64_t seed : {3u, 17u, 29u, 71u}) {
    Rng rng(seed);
    const Topology topo =
        Topology::Uniform(12, ResourceVector::Cores(16, 32));
    Workload wl;
    // Filler apps to randomise occupancy, then one uniform task app whose
    // containers form the run.
    wl.AddApplication("filler", 20,
                      ResourceVector::Cores(rng.UniformInt(1, 6),
                                            rng.UniformInt(2, 12)));
    const std::size_t run_first = wl.container_count();
    wl.AddApplication("tasks", 30,
                      ResourceVector::Cores(rng.UniformInt(1, 8),
                                            rng.UniformInt(2, 16)));

    cluster::ClusterState run_state = wl.MakeState(topo);
    cluster::ClusterState one_state = wl.MakeState(topo);
    for (std::size_t i = 0; i < run_first; ++i) {
      const ContainerId filler(static_cast<std::int32_t>(i));
      const MachineId m(rng.UniformInt(0, 11));
      if (run_state.Fits(filler, m)) {
        run_state.Deploy(filler, m);
        one_state.Deploy(filler, m);
      }
    }
    cluster::FreeIndex run_index;
    run_index.Attach(run_state);
    cluster::FreeIndex one_index;
    one_index.Attach(one_state);

    std::vector<ContainerId> tasks;
    for (std::size_t i = run_first; i < wl.container_count(); ++i) {
      tasks.emplace_back(static_cast<std::int32_t>(i));
    }
    std::vector<MachineId> run_out(tasks.size(), MachineId::Invalid());
    const std::size_t placed = core::TaskScheduler::PlaceRun(
        run_state, run_index, tasks, run_out);

    std::size_t one_placed = 0;
    std::vector<MachineId> one_out;
    for (const ContainerId task : tasks) {
      const MachineId m = core::TaskScheduler::PlaceOne(
          one_state, one_index, task, core::TaskPlacementPolicy::kBestFit);
      one_out.push_back(m);
      if (m.valid()) ++one_placed;
    }

    const std::string label = "seed=" + std::to_string(seed);
    EXPECT_EQ(run_out, one_out) << label;
    EXPECT_EQ(placed, one_placed) << label;
    EXPECT_EQ(Placements(run_state, wl.container_count()),
              Placements(one_state, wl.container_count()))
        << label;
    // Failures form a suffix.
    bool failing = false;
    for (const MachineId m : run_out) {
      if (!m.valid()) {
        failing = true;
      } else {
        EXPECT_FALSE(failing)
            << label << ": a placement after a failure breaks the suffix";
      }
    }
    ASSERT_TRUE(run_state.CheckConsistency()) << label;
  }
}

// --------------------------------------------- resolver-level batching ----

// Scripted mixed cluster, shared by the resolver equivalence tests below.
void RunScript(k8s::ClusterSimulator& sim, int ticks) {
  Rng rng(7);
  std::int64_t apps = 0;
  for (int t = 0; t < ticks; ++t) {
    for (int d = 0; d < 3; ++d) {
      k8s::PodSpec spec;
      spec.requests = cluster::ResourceVector::Cores(rng.UniformInt(1, 6),
                                                     rng.UniformInt(2, 12));
      spec.priority = rng.Bernoulli(0.2)
                          ? static_cast<cluster::Priority>(rng.UniformInt(1, 3))
                          : 0;
      spec.anti_affinity_within = rng.Bernoulli(0.6);
      sim.SubmitDeployment("svc-" + std::to_string(apps++),
                           static_cast<std::size_t>(rng.UniformInt(1, 5)),
                           spec);
    }
    sim.SubmitBatchJob("job-" + std::to_string(t), 12,
                       cluster::ResourceVector::Cores(1, 2),
                       /*lifetime_ticks=*/2);
    sim.Tick();
  }
}

std::map<k8s::PodUid, std::string> FinalBindings(k8s::ClusterSimulator& sim) {
  std::map<k8s::PodUid, std::string> out;
  for (k8s::PodUid uid : sim.adaptor().BoundPods()) {
    out[uid] = sim.adaptor().FindPod(uid)->node;
  }
  return out;
}

// A chunk covering the whole tick is the sequential solve: identical
// per-tick stats and final bindings, not just convergent ones.
TEST(ResolverBatch, WholeTickBatchMatchesUnbatchedBitForBit) {
  k8s::ResolverOptions unbatched;
  unbatched.aladdin = k8s::Resolver::DefaultOptions();
  k8s::ResolverOptions batched = unbatched;
  batched.batch = 1 << 20;

  k8s::ClusterSimulator a(unbatched);
  k8s::ClusterSimulator b(batched);
  a.AddNodes(16, cluster::ResourceVector::Cores(32, 64), "node", 4, 2);
  b.AddNodes(16, cluster::ResourceVector::Cores(32, 64), "node", 4, 2);
  RunScript(a, 8);
  RunScript(b, 8);

  ASSERT_EQ(a.history().size(), b.history().size());
  for (std::size_t t = 0; t < a.history().size(); ++t) {
    EXPECT_EQ(a.history()[t].new_bindings, b.history()[t].new_bindings)
        << "tick " << t;
    EXPECT_EQ(a.history()[t].unschedulable, b.history()[t].unschedulable)
        << "tick " << t;
    EXPECT_EQ(a.history()[t].migrations, b.history()[t].migrations)
        << "tick " << t;
  }
  EXPECT_EQ(FinalBindings(a), FinalBindings(b));
  EXPECT_EQ(a.completed_tasks(), b.completed_tasks());
}

// Micro-batched resolves stay deterministic across thread counts and
// across the sharded coordinator's K=1 identity.
TEST(ResolverBatch, DeterministicAcrossThreadsAndShards) {
  auto run = [](int batch, int threads, int shards) {
    k8s::ResolverOptions options;
    options.aladdin = k8s::Resolver::DefaultOptions();
    options.aladdin.threads = threads;
    options.batch = batch;
    options.shards = shards;
    k8s::ClusterSimulator sim(options);
    sim.AddNodes(16, cluster::ResourceVector::Cores(32, 64), "node", 4, 2);
    RunScript(sim, 6);
    return FinalBindings(sim);
  };

  const auto serial = run(/*batch=*/7, /*threads=*/1, /*shards=*/0);
  EXPECT_EQ(serial, run(7, 3, 0)) << "thread count changed batched bindings";
  EXPECT_EQ(serial, run(7, 1, 1)) << "K=1 sharding changed batched bindings";
  const auto sharded = run(/*batch=*/7, /*threads=*/1, /*shards=*/2);
  EXPECT_EQ(sharded, run(7, 4, 2))
      << "thread count changed sharded batched bindings";
}

// A deadline defers whole ticks (no long-lived bindings) and catches up on
// the next boundary without losing pods.
TEST(ResolverBatch, DeadlineDefersThenCatchesUp) {
  k8s::ResolverOptions deferred_options;
  deferred_options.aladdin = k8s::Resolver::DefaultOptions();
  deferred_options.batch = 1 << 20;
  deferred_options.batch_deadline_ticks = 2;
  k8s::ClusterSimulator sim(deferred_options);
  sim.AddNodes(16, cluster::ResourceVector::Cores(32, 64), "node", 4, 2);

  k8s::PodSpec spec;
  spec.requests = cluster::ResourceVector::Cores(2, 4);
  for (int t = 0; t < 6; ++t) {
    sim.SubmitDeployment("svc-" + std::to_string(t), 4, spec);
    sim.Tick();
  }

  // The simulator resolves with 1-based ticks, so the deadline boundary
  // ((tick + 1) % 2 == 0) lands on the odd resolver ticks: the first wave
  // binds immediately, then every deferred wave lands together with the
  // next one. The last wave is still parked when the run ends — deferral
  // trades latency, never loses pods that get a boundary.
  const auto& history = sim.history();
  ASSERT_EQ(history.size(), 6u);
  for (std::size_t t = 0; t < history.size(); ++t) {
    const bool boundary = (history[t].tick + 1) % 2 == 0;
    if (boundary) {
      EXPECT_EQ(history[t].new_bindings, t == 0 ? 4 : 8) << "tick " << t;
      EXPECT_EQ(history[t].unschedulable, 0) << "tick " << t;
    } else {
      EXPECT_EQ(history[t].new_bindings, 0) << "tick " << t;
      EXPECT_EQ(history[t].unschedulable, 4)
          << "tick " << t << ": the parked wave must be counted, not lost";
    }
  }
  EXPECT_EQ(FinalBindings(sim).size(), 20u)
      << "every wave that saw a boundary must be bound";
}

}  // namespace
}  // namespace aladdin

// Unit + property tests for the Aladdin core: Eq. 3–5 priority weights, the
// multidimensional nonlinear capacity function (Eq. 6–8), the aggregated
// network search with IL/DL, the migration/preemption repair engine
// (Fig. 3 / Fig. 7), and the end-to-end scheduler.
#include <gtest/gtest.h>

#include <algorithm>

#include "cluster/audit.h"
#include "core/capacity.h"
#include "core/migration.h"
#include "core/network.h"
#include "core/relaxation.h"
#include "core/scheduler.h"
#include "core/task_scheduler.h"
#include "core/weights.h"
#include "sim/experiment.h"
#include "trace/alibaba_gen.h"

namespace aladdin::core {
namespace {

using cluster::ApplicationId;
using cluster::ContainerId;
using cluster::MachineId;
using cluster::ResourceVector;
using cluster::Topology;
using trace::Workload;

// ------------------------------------------------------------- weights ----

TEST(Weights, MinimalWeightsSatisfyEq5) {
  Workload wl;
  wl.AddApplication("low", 5, ResourceVector::Cores(16, 32), 0);
  wl.AddApplication("mid", 5, ResourceVector::Cores(1, 2), 1);
  wl.AddApplication("high", 5, ResourceVector::Cores(2, 4), 2);
  const PriorityWeights w = ComputeMinimalWeights(wl);
  EXPECT_TRUE(SatisfiesEq5(w, wl));
  EXPECT_EQ(w.weight[0], 1);  // Eq. 4
  // Class 1 (min 1000 millis) must beat class 0 (max 16000):
  // w1 * 1000 > 1 * 16000 -> w1 = 17.
  EXPECT_EQ(w.weight[1], 17);
}

TEST(Weights, GeometricBase16SatisfiesEq5ForPaperTrace) {
  // Max request is 16 cores, so base 16 is exactly the paper's choice.
  trace::AlibabaTraceOptions options;
  options.scale = 0.01;
  const Workload wl = trace::GenerateAlibabaLike(options);
  for (std::int64_t base : {16, 32, 64, 128}) {
    EXPECT_TRUE(SatisfiesEq5(
        MakeGeometricWeights(cluster::kPriorityClasses, base), wl))
        << "base " << base;
  }
}

TEST(Weights, TooSmallBaseViolatesEq5) {
  Workload wl;
  wl.AddApplication("low", 1, ResourceVector::Cores(16, 32), 0);
  wl.AddApplication("high", 1, ResourceVector(500, 100), 1);
  // w1 = 2: 2*500 = 1000 <= 1*16000 -> violated.
  EXPECT_FALSE(SatisfiesEq5(
      MakeGeometricWeights(cluster::kPriorityClasses, 2), wl));
  EXPECT_TRUE(SatisfiesEq5(ComputeMinimalWeights(wl), wl));
}

TEST(Weights, WeightedFlowOrdersAcrossClasses) {
  Workload wl;
  const auto low = wl.AddApplication("low", 1, ResourceVector::Cores(16, 32), 0);
  const auto high = wl.AddApplication("high", 1, ResourceVector(500, 100), 1);
  const PriorityWeights w = ComputeMinimalWeights(wl);
  const auto& cl = wl.container(wl.application(low).containers[0]);
  const auto& ch = wl.container(wl.application(high).containers[0]);
  EXPECT_GT(w.WeightedFlow(ch), w.WeightedFlow(cl));
}

TEST(Weights, EmptyClassesInheritPreviousWeight) {
  Workload wl;
  wl.AddApplication("a", 1, ResourceVector::Cores(1, 2), 0);
  wl.AddApplication("b", 1, ResourceVector::Cores(1, 2), 3);  // skip 1, 2
  const PriorityWeights w = ComputeMinimalWeights(wl);
  EXPECT_TRUE(SatisfiesEq5(w, wl));
  EXPECT_EQ(w.weight[1], w.weight[2]);  // absent classes carry forward
}

TEST(Weights, WeightOfClampsOutOfRange) {
  const PriorityWeights w = MakeGeometricWeights(3, 10);
  EXPECT_EQ(w.WeightOf(-5), 1);
  EXPECT_EQ(w.WeightOf(99), 100);
}

// ------------------------------------------------------------ capacity ----

class CapacityTest : public ::testing::Test {
 protected:
  CapacityTest() : topo_(Topology::Uniform(2, ResourceVector::Cores(8, 16))) {
    a_ = wl_.AddApplication("a", 2, ResourceVector::Cores(4, 8), 0, true);
    b_ = wl_.AddApplication("b", 1, ResourceVector::Cores(6, 12), 0);
    wl_.AddAntiAffinity(a_, b_);
  }
  Topology topo_;
  Workload wl_;
  ApplicationId a_, b_;
};

TEST_F(CapacityTest, Eq6ResourceTupleCheck) {
  auto state = wl_.MakeState(topo_);
  const ContainerId b0 = wl_.application(b_).containers[0];
  EXPECT_TRUE(CapacityFunction::Evaluate(state, b0, MachineId(0)).fits);
  state.Deploy(wl_.application(a_).containers[0], MachineId(0));
  // 4 of 8 cores consumed; the 6-core container no longer fits.
  const CapacityCheck check = CapacityFunction::Evaluate(state, b0,
                                                         MachineId(0));
  EXPECT_FALSE(check.fits);
  EXPECT_FALSE(check.Admits());
}

TEST_F(CapacityTest, Eq7BlacklistCheck) {
  auto state = wl_.MakeState(topo_);
  state.Deploy(wl_.application(a_).containers[0], MachineId(0));
  const ContainerId a1 = wl_.application(a_).containers[1];
  const CapacityCheck check = CapacityFunction::Evaluate(state, a1,
                                                         MachineId(0));
  EXPECT_TRUE(check.fits);
  EXPECT_TRUE(check.blacklisted);
  EXPECT_FALSE(check.Admits());
  EXPECT_FALSE(CapacityFunction::Admits(state, a1, MachineId(0)));
  EXPECT_TRUE(CapacityFunction::Admits(state, a1, MachineId(1)));
}

// -------------------------------------------------------------- search ----

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest()
      : topo_(Topology::Uniform(6, ResourceVector::Cores(32, 64), 2, 3)) {
    app_ = wl_.AddApplication("app", 3, ResourceVector::Cores(8, 16), 0,
                              /*anti_affinity_within=*/true);
    filler_ = wl_.AddApplication("filler", 4, ResourceVector::Cores(4, 8));
  }

  ContainerId C(ApplicationId app, std::size_t i) const {
    return wl_.application(app).containers[i];
  }

  Topology topo_;
  Workload wl_;
  ApplicationId app_, filler_;
};

TEST_F(NetworkTest, FindsTightestMachine) {
  auto state = wl_.MakeState(topo_);
  AggregatedNetwork network(topo_);
  network.Attach(&state);
  SearchCounters counters;
  const SearchOptions dl{true, true};

  // Pre-load machine 3 so it is tighter than the empty ones.
  network.Deploy(C(filler_, 0), MachineId(3));
  const MachineId m = network.FindMachine(C(filler_, 1), dl, counters);
  EXPECT_EQ(m, MachineId(3));  // best fit: 28 free < 32 free
}

TEST_F(NetworkTest, AllPoliciesReturnSameMachine) {
  // Property: plain, +IL and +IL+DL traversals are different search orders
  // over the same network and must pick the same (tightest) machine.
  for (int step = 0; step < 7; ++step) {
    auto state = wl_.MakeState(topo_);
    AggregatedNetwork network(topo_);
    network.Attach(&state);
    SearchCounters counters;
    // Build a varied occupancy pattern.
    network.Deploy(C(filler_, 0), MachineId(step % 6));
    network.Deploy(C(filler_, 1), MachineId((step + 2) % 6));
    network.Deploy(C(app_, 0), MachineId((step + 4) % 6));

    const SearchOptions plain{false, false};
    const SearchOptions il{true, false};
    const SearchOptions ildl{true, true};
    const ContainerId probe = C(app_, 1);
    const MachineId m1 = network.FindMachine(probe, plain, counters);
    const MachineId m2 = network.FindMachine(probe, il, counters);
    const MachineId m3 = network.FindMachine(probe, ildl, counters);
    EXPECT_EQ(m1, m2) << "step " << step;
    EXPECT_EQ(m2, m3) << "step " << step;
  }
}

TEST_F(NetworkTest, RespectsBlacklistInSearch) {
  auto state = wl_.MakeState(topo_);
  AggregatedNetwork network(topo_);
  network.Attach(&state);
  SearchCounters counters;
  const SearchOptions options{true, true};
  // Fill all machines with app containers except machine 5... app has only
  // 3 containers; deploy them on 0,1,2. Siblings cannot go there.
  network.Deploy(C(app_, 0), MachineId(0));
  network.Deploy(C(app_, 1), MachineId(1));
  // Make machines 3,4 tighter than 5 so best-fit would prefer them.
  network.Deploy(C(filler_, 0), MachineId(3));
  network.Deploy(C(filler_, 1), MachineId(4));
  const MachineId m = network.FindMachine(C(app_, 2), options, counters);
  // Tightest admissible: 3 or 4 (28 free, no app container there).
  EXPECT_TRUE(m == MachineId(3) || m == MachineId(4));
}

TEST_F(NetworkTest, ExcludeParameterSkipsMachine) {
  auto state = wl_.MakeState(topo_);
  AggregatedNetwork network(topo_);
  network.Attach(&state);
  SearchCounters counters;
  network.Deploy(C(filler_, 0), MachineId(2));
  for (const SearchOptions& options :
       {SearchOptions{false, false}, SearchOptions{true, true}}) {
    const MachineId m = network.FindMachine(C(filler_, 1), options, counters,
                                            /*exclude=*/MachineId(2));
    EXPECT_NE(m, MachineId(2));
    EXPECT_TRUE(m.valid());
  }
}

TEST_F(NetworkTest, ReturnsInvalidWhenNothingAdmits) {
  // One-machine cluster fully blocked by anti-affinity.
  const Topology tiny = Topology::Uniform(1, ResourceVector::Cores(32, 64));
  auto state = wl_.MakeState(tiny);
  AggregatedNetwork network(tiny);
  network.Attach(&state);
  SearchCounters counters;
  network.Deploy(C(app_, 0), MachineId(0));
  for (const SearchOptions& options :
       {SearchOptions{false, false}, SearchOptions{true, true}}) {
    EXPECT_FALSE(
        network.FindMachine(C(app_, 1), options, counters).valid());
  }
}

TEST_F(NetworkTest, IlPrunesSiblingProbes) {
  auto state = wl_.MakeState(topo_);
  AggregatedNetwork network(topo_);
  network.Attach(&state);
  const SearchOptions il{true, false};
  // Block the app everywhere except machine 0: siblings on 1..5 would need
  // within-app anti-affinity failures... instead occupy resources: fill
  // machines 1..5 so the 8-core app container cannot fit there.
  for (int m = 1; m <= 5; ++m) {
    // 32-4=28 free after filler; app needs 8 -> still fits. Fill more:
    for (std::size_t i = 0; i < 4; ++i) {
      // reuse filler containers across machines is impossible (one
      // placement each); craft a dedicated workload below instead.
    }
  }
  // Simpler: use the within-app blacklist. Deploy app/0 on machine 1;
  // sibling app/1 fails on machine 1 once, then IL prunes the re-probe.
  network.Deploy(C(app_, 0), MachineId(1));
  SearchCounters first;
  network.FindMachine(C(app_, 1), il, first);
  SearchCounters second;
  network.FindMachine(C(app_, 2), il, second);
  EXPECT_GT(second.il_prunes, 0);
  EXPECT_LT(second.explored_paths, first.explored_paths);
}

TEST_F(NetworkTest, IlMemoInvalidatedByMachineChange) {
  auto state = wl_.MakeState(topo_);
  AggregatedNetwork network(topo_);
  network.Attach(&state);
  const SearchOptions il{true, true};
  SearchCounters counters;
  // app/0 on machine 0 -> sibling records failure on machine 0.
  network.Deploy(C(app_, 0), MachineId(0));
  const MachineId m1 = network.FindMachine(C(app_, 1), il, counters);
  EXPECT_NE(m1, MachineId(0));
  // Evict app/0: machine 0's epoch changes; memo must not suppress it.
  network.Evict(C(app_, 0));
  // Tie-break: all machines empty again -> machine 0 has the lowest id.
  const MachineId m2 = network.FindMachine(C(app_, 1), il, counters);
  EXPECT_EQ(m2, MachineId(0));
}

TEST_F(NetworkTest, DlStopsEarly) {
  auto state = wl_.MakeState(topo_);
  AggregatedNetwork network(topo_);
  network.Attach(&state);
  SearchCounters plain_counters, dl_counters;
  network.FindMachine(C(filler_, 0), SearchOptions{false, false},
                      plain_counters);
  network.FindMachine(C(filler_, 0), SearchOptions{true, true}, dl_counters);
  EXPECT_EQ(dl_counters.dl_stops, 1);
  EXPECT_LT(dl_counters.explored_paths, plain_counters.explored_paths);
}

TEST_F(NetworkTest, ScansAreOrderedAndBounded) {
  auto state = wl_.MakeState(topo_);
  AggregatedNetwork network(topo_);
  network.Attach(&state);
  network.Deploy(C(filler_, 0), MachineId(1));
  network.Deploy(C(app_, 0), MachineId(2));

  std::vector<std::int64_t> desc;
  network.ScanDescending(3, [&](MachineId m) {
    desc.push_back(state.Free(m).cpu_millis());
    return false;
  });
  EXPECT_EQ(desc.size(), 3u);
  EXPECT_TRUE(std::is_sorted(desc.rbegin(), desc.rend()));

  std::vector<std::int64_t> asc;
  network.ScanAscending(0, 100, [&](MachineId m) {
    asc.push_back(state.Free(m).cpu_millis());
    return false;
  });
  EXPECT_EQ(asc.size(), 6u);
  EXPECT_TRUE(std::is_sorted(asc.begin(), asc.end()));
}

// -------------------------------------------------------------- repair ----

TEST(Repair, MigrationScenarioFig3b) {
  // Fig. 3(b): A (high priority) runs on M; B can only run on M; A can run
  // on both. Expected: A migrates to N, B lands on M.
  Workload wl;
  const auto a = wl.AddApplication("A", 1, ResourceVector::Cores(8, 16), 1);
  const auto b = wl.AddApplication("B", 1, ResourceVector::Cores(24, 48), 0);
  wl.AddAntiAffinity(a, b);
  // Machine M (id 0) is large; machine N (id 1) only fits A.
  Topology topo;
  const auto g = topo.AddSubCluster();
  const auto r = topo.AddRack(g);
  const MachineId m_big = topo.AddMachine(r, ResourceVector::Cores(32, 64));
  const MachineId m_small = topo.AddMachine(r, ResourceVector::Cores(8, 16));

  auto state = wl.MakeState(topo);
  AggregatedNetwork network(topo);
  network.Attach(&state);
  network.Deploy(wl.application(a).containers[0], m_big);

  const PriorityWeights weights = ComputeMinimalWeights(wl);
  RepairEngine repair(network, weights, RepairOptions{});
  SearchCounters counters;
  const auto unplaced = repair.Repair({wl.application(b).containers[0]},
                                      SearchOptions{}, counters);
  EXPECT_TRUE(unplaced.empty());
  EXPECT_EQ(state.PlacementOf(wl.application(a).containers[0]), m_small);
  EXPECT_EQ(state.PlacementOf(wl.application(b).containers[0]), m_big);
  EXPECT_EQ(state.migrations(), 1);
  EXPECT_EQ(state.preemptions(), 0);
  EXPECT_TRUE(state.VerifyResourceInvariant());
}

TEST(Repair, PreemptionOnlyAgainstLowerWeightedFlow) {
  // Fig. 3(a) made safe: a high-priority container may preempt a
  // lower-priority blocker with no alternative machine; the reverse attempt
  // must fail.
  Workload wl;
  const auto low = wl.AddApplication("low", 1, ResourceVector::Cores(4, 8), 0);
  const auto high =
      wl.AddApplication("high", 1, ResourceVector::Cores(4, 8), 2);
  wl.AddAntiAffinity(low, high);
  const Topology topo = Topology::Uniform(1, ResourceVector::Cores(32, 64));

  const PriorityWeights weights = ComputeMinimalWeights(wl);
  {
    // Low-priority blocker in place; high-priority pending -> preempts.
    auto state = wl.MakeState(topo);
    AggregatedNetwork network(topo);
    network.Attach(&state);
    network.Deploy(wl.application(low).containers[0], MachineId(0));
    RepairEngine repair(network, weights, RepairOptions{});
    SearchCounters counters;
    const auto unplaced = repair.Repair({wl.application(high).containers[0]},
                                        SearchOptions{}, counters);
    EXPECT_TRUE(state.IsPlaced(wl.application(high).containers[0]));
    EXPECT_EQ(state.preemptions(), 1);
    // The victim was re-queued but has nowhere to go (1 machine).
    ASSERT_EQ(unplaced.size(), 1u);
    EXPECT_EQ(unplaced[0], wl.application(low).containers[0]);
  }
  {
    // High-priority blocker in place; low-priority pending -> must NOT
    // displace it (weighted flow forbids the preemption of Fig. 3a).
    auto state = wl.MakeState(topo);
    AggregatedNetwork network(topo);
    network.Attach(&state);
    network.Deploy(wl.application(high).containers[0], MachineId(0));
    RepairEngine repair(network, weights, RepairOptions{});
    SearchCounters counters;
    const auto unplaced = repair.Repair({wl.application(low).containers[0]},
                                        SearchOptions{}, counters);
    EXPECT_TRUE(state.IsPlaced(wl.application(high).containers[0]));
    EXPECT_EQ(state.PlacementOf(wl.application(high).containers[0]),
              MachineId(0));
    ASSERT_EQ(unplaced.size(), 1u);
    EXPECT_EQ(state.preemptions(), 0);
  }
}

TEST(Repair, RollbackRestoresStateWhenImpossible) {
  // Two mutually conflicting blockers with nowhere to go and equal weight:
  // repair must fail and leave everything exactly as before.
  Workload wl;
  const auto a = wl.AddApplication("a", 1, ResourceVector::Cores(16, 32), 0);
  const auto b = wl.AddApplication("b", 1, ResourceVector::Cores(16, 32), 0);
  wl.AddAntiAffinity(a, b);
  const Topology topo = Topology::Uniform(1, ResourceVector::Cores(32, 64));
  auto state = wl.MakeState(topo);
  AggregatedNetwork network(topo);
  network.Attach(&state);
  network.Deploy(wl.application(a).containers[0], MachineId(0));

  const PriorityWeights weights = ComputeMinimalWeights(wl);
  RepairEngine repair(network, weights, RepairOptions{});
  SearchCounters counters;
  const auto unplaced = repair.Repair({wl.application(b).containers[0]},
                                      SearchOptions{}, counters);
  ASSERT_EQ(unplaced.size(), 1u);
  EXPECT_EQ(state.PlacementOf(wl.application(a).containers[0]), MachineId(0));
  EXPECT_EQ(state.migrations(), 0);
  EXPECT_EQ(state.preemptions(), 0);
  EXPECT_TRUE(state.VerifyResourceInvariant());
}

TEST(Repair, Fig7TwoDimensionalRescheduling) {
  // Fig. 7: tasks with two-dimensional requirements sit spread across both
  // machines (the adversarial prior placement of 7b); the arriving S3 needs
  // a consolidated machine, so Aladdin "migrates tasks S0, S1, S2 to the
  // other machine" (7c) and then deploys S3.
  Workload wl;
  const auto s0 = wl.AddApplication("S0", 1, ResourceVector(3000, 3 * 1024));
  const auto s1 = wl.AddApplication("S1", 1, ResourceVector(3000, 3 * 1024));
  const auto s2 = wl.AddApplication("S2", 1, ResourceVector(3000, 3 * 1024));
  const auto s3 = wl.AddApplication("S3", 1, ResourceVector(9000, 9 * 1024));
  const Topology topo = Topology::Uniform(2, ResourceVector::Cores(10, 10));

  auto state = wl.MakeState(topo);
  AggregatedNetwork network(topo);
  network.Attach(&state);
  // Adversarial spread: fragments on both machines, S3 fits on neither.
  network.Deploy(wl.application(s0).containers[0], MachineId(0));
  network.Deploy(wl.application(s1).containers[0], MachineId(1));
  network.Deploy(wl.application(s2).containers[0], MachineId(0));
  SearchCounters counters;
  ASSERT_FALSE(network
                   .FindMachine(wl.application(s3).containers[0],
                                SearchOptions{}, counters)
                   .valid());

  const PriorityWeights weights = ComputeMinimalWeights(wl);
  RepairEngine repair(network, weights, RepairOptions{});
  const auto unplaced = repair.Repair({wl.application(s3).containers[0]},
                                      SearchOptions{}, counters);
  EXPECT_TRUE(unplaced.empty());
  EXPECT_TRUE(state.IsPlaced(wl.application(s3).containers[0]));
  // Everyone still placed, both resource dimensions intact.
  EXPECT_EQ(state.placed_count(), 4u);
  EXPECT_GE(state.migrations(), 1);
  EXPECT_TRUE(state.VerifyResourceInvariant());
}

TEST(Repair, CompactionDrainsLightMachines) {
  Workload wl;
  const auto app = wl.AddApplication("a", 4, ResourceVector::Cores(4, 8));
  const Topology topo = Topology::Uniform(4, ResourceVector::Cores(32, 64));
  auto state = wl.MakeState(topo);
  AggregatedNetwork network(topo);
  network.Attach(&state);
  // One container per machine: 4 machines used, trivially compactable.
  for (int i = 0; i < 4; ++i) {
    network.Deploy(wl.application(app).containers[static_cast<std::size_t>(i)],
                   MachineId(i));
  }
  const PriorityWeights weights = ComputeMinimalWeights(wl);
  RepairEngine repair(network, weights, RepairOptions{});
  SearchCounters counters;
  const int freed = repair.Compact(SearchOptions{}, counters, 5, 100);
  EXPECT_GE(freed, 2);
  EXPECT_LE(state.UsedMachineCount(), 2u);
  EXPECT_EQ(state.placed_count(), 4u);
  EXPECT_TRUE(state.VerifyResourceInvariant());
}

TEST(Repair, CompactionRespectsMigrationBudget) {
  Workload wl;
  const auto app = wl.AddApplication("a", 6, ResourceVector::Cores(4, 8));
  const Topology topo = Topology::Uniform(6, ResourceVector::Cores(32, 64));
  auto state = wl.MakeState(topo);
  AggregatedNetwork network(topo);
  network.Attach(&state);
  for (int i = 0; i < 6; ++i) {
    network.Deploy(wl.application(app).containers[static_cast<std::size_t>(i)],
                   MachineId(i));
  }
  const PriorityWeights weights = ComputeMinimalWeights(wl);
  RepairEngine repair(network, weights, RepairOptions{});
  SearchCounters counters;
  repair.Compact(SearchOptions{}, counters, 5, /*migration_budget=*/2);
  EXPECT_LE(state.migrations(), 2);
}

TEST(Repair, CompactionNeverViolatesConstraints) {
  Workload wl;
  const auto app = wl.AddApplication("a", 3, ResourceVector::Cores(2, 4), 0,
                                     /*anti_affinity_within=*/true);
  wl.AddApplication("b", 3, ResourceVector::Cores(2, 4));
  const Topology topo = Topology::Uniform(6, ResourceVector::Cores(32, 64));
  auto state = wl.MakeState(topo);
  AggregatedNetwork network(topo);
  network.Attach(&state);
  for (std::size_t i = 0; i < wl.container_count(); ++i) {
    network.Deploy(ContainerId(static_cast<std::int32_t>(i)),
                   MachineId(static_cast<std::int32_t>(i)));
  }
  (void)app;
  const PriorityWeights weights = ComputeMinimalWeights(wl);
  RepairEngine repair(network, weights, RepairOptions{});
  SearchCounters counters;
  repair.Compact(SearchOptions{}, counters, 5, 100);
  EXPECT_TRUE(cluster::CollectColocationViolations(state).empty());
  EXPECT_EQ(state.placed_count(), 6u);
}

// ----------------------------------------------------------- scheduler ----

TEST(AladdinScheduler, NameReflectsOptions) {
  AladdinOptions plain;
  plain.enable_il = false;
  plain.enable_dl = false;
  EXPECT_EQ(AladdinScheduler(plain).name(), "Aladdin(16)");
  AladdinOptions il;
  il.enable_dl = false;
  EXPECT_EQ(AladdinScheduler(il).name(), "Aladdin(16)+IL");
  EXPECT_EQ(AladdinScheduler().name(), "Aladdin(16)+IL+DL");
  AladdinOptions base32;
  base32.weight_base = 32;
  EXPECT_EQ(AladdinScheduler(base32).name(), "Aladdin(32)+IL+DL");
}

TEST(AladdinScheduler, QuickstartScenarioZeroViolations) {
  Workload wl;
  const auto web = wl.AddApplication("web", 4, ResourceVector::Cores(8, 16),
                                     2, true);
  const auto cache = wl.AddApplication("cache", 2,
                                       ResourceVector::Cores(4, 8), 1, true);
  wl.AddApplication("batch", 10, ResourceVector::Cores(1, 2));
  wl.AddAntiAffinity(web, cache);
  const Topology topo = Topology::Uniform(8, ResourceVector::Cores(32, 64));

  AladdinScheduler scheduler;
  const auto arrival = trace::MakeArrivalSequence(wl, trace::ArrivalOrder::kFifo);
  auto state = wl.MakeState(topo);
  sim::ScheduleRequest request{&wl, &arrival};
  const auto outcome = scheduler.Schedule(request, state);

  EXPECT_TRUE(outcome.unplaced.empty());
  EXPECT_EQ(state.placed_count(), wl.container_count());
  const auto report = cluster::Audit(state);
  EXPECT_EQ(report.TotalViolations(), 0u);
  EXPECT_TRUE(state.VerifyResourceInvariant());
}

TEST(AladdinScheduler, WeightBasesProduceIdenticalPlacements) {
  trace::AlibabaTraceOptions options;
  options.scale = 0.01;
  const Workload wl = trace::GenerateAlibabaLike(options);
  const Topology topo = trace::MakeAlibabaCluster(sim::BenchMachineCount(0.01));
  const auto arrival =
      trace::MakeArrivalSequence(wl, trace::ArrivalOrder::kRandom);

  std::vector<std::vector<std::int32_t>> placements;
  for (std::int64_t base : {16, 32, 64, 128}) {
    AladdinOptions ao;
    ao.weight_base = base;
    AladdinScheduler scheduler(ao);
    auto state = wl.MakeState(topo);
    sim::ScheduleRequest request{&wl, &arrival};
    scheduler.Schedule(request, state);
    std::vector<std::int32_t> placement;
    for (const auto& c : wl.containers()) {
      placement.push_back(state.PlacementOf(c.id).value());
    }
    placements.push_back(std::move(placement));
  }
  for (std::size_t i = 1; i < placements.size(); ++i) {
    EXPECT_EQ(placements[i], placements[0]) << "weight base index " << i;
  }
}

TEST(AladdinScheduler, OutcomeUnplacedMatchesState) {
  // Overloaded cluster: some containers must strand, and the outcome list
  // must agree with the state.
  Workload wl;
  wl.AddApplication("big", 5, ResourceVector::Cores(32, 64));
  const Topology topo = Topology::Uniform(3, ResourceVector::Cores(32, 64));
  AladdinScheduler scheduler;
  const auto arrival = trace::MakeArrivalSequence(wl, trace::ArrivalOrder::kFifo);
  auto state = wl.MakeState(topo);
  sim::ScheduleRequest request{&wl, &arrival};
  const auto outcome = scheduler.Schedule(request, state);
  EXPECT_EQ(outcome.unplaced.size(), 2u);
  for (const auto c : outcome.unplaced) {
    EXPECT_FALSE(state.IsPlaced(c));
  }
  EXPECT_EQ(state.placed_count(), 3u);
}

TEST(AladdinScheduler, DeterministicAcrossRuns) {
  trace::AlibabaTraceOptions options;
  options.scale = 0.01;
  const Workload wl = trace::GenerateAlibabaLike(options);
  const Topology topo = trace::MakeAlibabaCluster(sim::BenchMachineCount(0.01));
  const auto arrival =
      trace::MakeArrivalSequence(wl, trace::ArrivalOrder::kRandom);

  auto run = [&] {
    AladdinScheduler scheduler;
    auto state = wl.MakeState(topo);
    sim::ScheduleRequest request{&wl, &arrival};
    scheduler.Schedule(request, state);
    std::vector<std::int32_t> placement;
    for (const auto& c : wl.containers()) {
      placement.push_back(state.PlacementOf(c.id).value());
    }
    return placement;
  };
  EXPECT_EQ(run(), run());
}

TEST(AladdinScheduler, PoliciesAgreeOnPlacementQuality) {
  // IL/DL are latency optimisations: placements (and therefore machines
  // used) must be identical across the three policies.
  trace::AlibabaTraceOptions options;
  options.scale = 0.01;
  const Workload wl = trace::GenerateAlibabaLike(options);
  const Topology topo = trace::MakeAlibabaCluster(sim::BenchMachineCount(0.01));
  const auto arrival =
      trace::MakeArrivalSequence(wl, trace::ArrivalOrder::kRandom);

  std::vector<std::size_t> used;
  std::vector<std::size_t> unplaced;
  for (const auto& [il, dl] :
       std::vector<std::pair<bool, bool>>{{false, false}, {true, false},
                                          {true, true}}) {
    AladdinOptions ao;
    ao.enable_il = il;
    ao.enable_dl = dl;
    AladdinScheduler scheduler(ao);
    auto state = wl.MakeState(topo);
    sim::ScheduleRequest request{&wl, &arrival};
    const auto outcome = scheduler.Schedule(request, state);
    used.push_back(state.UsedMachineCount());
    unplaced.push_back(outcome.unplaced.size());
  }
  EXPECT_EQ(used[0], used[1]);
  EXPECT_EQ(used[1], used[2]);
  EXPECT_EQ(unplaced[0], unplaced[1]);
  EXPECT_EQ(unplaced[1], unplaced[2]);
}

TEST(AladdinScheduler, SchedulesFullBenchWorkloadCleanly) {
  // The headline property at bench scale: zero violations of any kind.
  const Workload wl = sim::MakeBenchWorkload(0.02);
  const Topology topo = trace::MakeAlibabaCluster(sim::BenchMachineCount(0.02));
  AladdinScheduler scheduler;
  const auto arrival =
      trace::MakeArrivalSequence(wl, trace::ArrivalOrder::kRandom);
  auto state = wl.MakeState(topo);
  sim::ScheduleRequest request{&wl, &arrival};
  const auto outcome = scheduler.Schedule(request, state);
  const auto report = cluster::Audit(state);
  EXPECT_EQ(outcome.unplaced.size(), 0u);
  EXPECT_EQ(report.TotalViolations(), 0u);
  EXPECT_EQ(report.colocation_violations, 0u);
  EXPECT_TRUE(state.VerifyResourceInvariant());
}


// ------------------------------------------------------ task scheduler ----

TEST(TaskScheduler, BestFitPacks) {
  Workload wl;
  wl.AddApplication("batch", 8, ResourceVector::Cores(4, 8));
  const Topology topo = Topology::Uniform(4, ResourceVector::Cores(32, 64));
  TaskScheduler scheduler;  // best-fit default
  const auto arrival = trace::MakeArrivalSequence(wl, trace::ArrivalOrder::kFifo);
  auto state = wl.MakeState(topo);
  sim::ScheduleRequest request{&wl, &arrival};
  const auto outcome = scheduler.Schedule(request, state);
  EXPECT_TRUE(outcome.unplaced.empty());
  EXPECT_EQ(state.UsedMachineCount(), 1u);  // 8 x 4 = 32 cores on one box
}

TEST(TaskScheduler, WorstFitSpreads) {
  Workload wl;
  wl.AddApplication("batch", 4, ResourceVector::Cores(4, 8));
  const Topology topo = Topology::Uniform(4, ResourceVector::Cores(32, 64));
  TaskSchedulerOptions options;
  options.policy = TaskPlacementPolicy::kWorstFit;
  TaskScheduler scheduler(options);
  const auto arrival = trace::MakeArrivalSequence(wl, trace::ArrivalOrder::kFifo);
  auto state = wl.MakeState(topo);
  sim::ScheduleRequest request{&wl, &arrival};
  scheduler.Schedule(request, state);
  EXPECT_EQ(state.UsedMachineCount(), 4u);  // one per machine
}

TEST(TaskScheduler, FirstFitUsesLowestIds) {
  Workload wl;
  const auto app = wl.AddApplication("batch", 3, ResourceVector::Cores(8, 16));
  const Topology topo = Topology::Uniform(4, ResourceVector::Cores(32, 64));
  TaskSchedulerOptions options;
  options.policy = TaskPlacementPolicy::kFirstFit;
  TaskScheduler scheduler(options);
  const auto arrival = trace::MakeArrivalSequence(wl, trace::ArrivalOrder::kFifo);
  auto state = wl.MakeState(topo);
  sim::ScheduleRequest request{&wl, &arrival};
  scheduler.Schedule(request, state);
  for (ContainerId c : wl.application(app).containers) {
    EXPECT_EQ(state.PlacementOf(c), MachineId(0));
  }
}

TEST(TaskScheduler, ReportsUnplacedWhenFull) {
  Workload wl;
  wl.AddApplication("batch", 3, ResourceVector::Cores(32, 64));
  const Topology topo = Topology::Uniform(2, ResourceVector::Cores(32, 64));
  TaskScheduler scheduler;
  const auto arrival = trace::MakeArrivalSequence(wl, trace::ArrivalOrder::kFifo);
  auto state = wl.MakeState(topo);
  sim::ScheduleRequest request{&wl, &arrival};
  const auto outcome = scheduler.Schedule(request, state);
  EXPECT_EQ(outcome.unplaced.size(), 1u);
  EXPECT_TRUE(state.VerifyResourceInvariant());
}

TEST(TaskScheduler, IgnoresAntiAffinityByDesign) {
  // Short-lived tasks have no LLA constraints (SS IV.D): the task path
  // deliberately skips the blacklist, unlike the Aladdin core.
  Workload wl;
  const auto a = wl.AddApplication("a", 2, ResourceVector::Cores(2, 4), 0,
                                   /*anti_affinity_within=*/true);
  const Topology topo = Topology::Uniform(2, ResourceVector::Cores(32, 64));
  TaskScheduler scheduler;
  const auto arrival = trace::MakeArrivalSequence(wl, trace::ArrivalOrder::kFifo);
  auto state = wl.MakeState(topo);
  sim::ScheduleRequest request{&wl, &arrival};
  scheduler.Schedule(request, state);
  // Best-fit stacks both on machine 0 despite the within rule.
  EXPECT_EQ(state.PlacementOf(wl.application(a).containers[0]),
            state.PlacementOf(wl.application(a).containers[1]));
}

// ---------------------------------------------------------- relaxation ----

TEST(Relaxation, BoundIsExactOnUnconstrainedWorkload) {
  // No anti-affinity, divisible-friendly sizes: relaxation == total demand
  // when capacity suffices.
  Workload wl;
  wl.AddApplication("a", 10, ResourceVector::Cores(2, 4));
  const Topology topo = Topology::Uniform(2, ResourceVector::Cores(32, 64));
  const auto state = wl.MakeState(topo);
  const RelaxationBound bound = SolveRelaxation(wl, state);
  EXPECT_EQ(bound.demand_cpu_millis, 20000);
  EXPECT_EQ(bound.placeable_cpu_millis, 20000);
}

TEST(Relaxation, BoundCapsAtFreeCapacity) {
  Workload wl;
  wl.AddApplication("a", 10, ResourceVector::Cores(8, 16));  // 80 cores
  const Topology topo = Topology::Uniform(2, ResourceVector::Cores(32, 64));
  const auto state = wl.MakeState(topo);
  const RelaxationBound bound = SolveRelaxation(wl, state);
  EXPECT_EQ(bound.placeable_cpu_millis, 64000);  // 2 x 32 cores
}

TEST(Relaxation, ExcludesPlacedContainersFromBothSides) {
  Workload wl;
  const auto app = wl.AddApplication("a", 3, ResourceVector::Cores(8, 16));
  const Topology topo = Topology::Uniform(1, ResourceVector::Cores(32, 64));
  auto state = wl.MakeState(topo);
  state.Deploy(wl.application(app).containers[0], cluster::MachineId(0));
  const RelaxationBound bound = SolveRelaxation(wl, state);
  EXPECT_EQ(bound.demand_cpu_millis, 16000);     // two pending containers
  EXPECT_EQ(bound.placeable_cpu_millis, 16000);  // 24 cores free, demand caps
}

TEST(Relaxation, EdgeCountMatchesPaperBound) {
  // O(|T| + |A|·|G| + |G->R| + |R->N| + |N|) — far below |T|·|N|.
  trace::AlibabaTraceOptions options;
  options.scale = 0.02;
  const Workload wl = trace::GenerateAlibabaLike(options);
  const Topology topo = trace::MakeAlibabaCluster(200);
  const auto state = wl.MakeState(topo);
  const RelaxationNetwork net = BuildRelaxationNetwork(wl, state);
  const std::size_t naive = wl.container_count() * topo.machine_count();
  EXPECT_LT(net.edge_count, naive / 10);
}

TEST(Relaxation, AladdinNeverExceedsTheBound) {
  // Property over seeds: audited placed CPU <= the linear relaxation bound
  // computed on the same initial state.
  for (std::uint64_t seed : {42ull, 7ull, 99ull}) {
    trace::AlibabaTraceOptions options;
    options.scale = 0.02;
    options.seed = seed;
    const Workload wl = trace::GenerateAlibabaLike(options);
    const Topology topo = trace::MakeAlibabaCluster(sim::BenchMachineCount(0.02));
    const auto empty_state = wl.MakeState(topo);
    const RelaxationBound bound = SolveRelaxation(wl, empty_state);

    AladdinScheduler scheduler;
    const auto arrival =
        trace::MakeArrivalSequence(wl, trace::ArrivalOrder::kRandom);
    auto state = wl.MakeState(topo);
    sim::ScheduleRequest request{&wl, &arrival};
    scheduler.Schedule(request, state);
    EXPECT_LE(PlacedCpuMillis(state), bound.placeable_cpu_millis)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace aladdin::core

// Unit tests for src/cluster: resources, topology, constraints, mutable
// cluster state (incl. the Eq. 7–8 blacklist), the free index, and the
// violation auditor.
#include <gtest/gtest.h>

#include <algorithm>

#include "cluster/audit.h"
#include "cluster/constraints.h"
#include "cluster/free_index.h"
#include "cluster/resources.h"
#include "cluster/state.h"
#include "cluster/topology.h"
#include "trace/workload.h"

namespace aladdin::cluster {
namespace {

// ---------------------------------------------------------- resources ----

TEST(ResourceVector, CoresConstructor) {
  const ResourceVector r = ResourceVector::Cores(4, 8);
  EXPECT_EQ(r.cpu_millis(), 4000);
  EXPECT_EQ(r.mem_mib(), 8 * 1024);
}

TEST(ResourceVector, FitsInIsComponentwise) {
  EXPECT_TRUE(ResourceVector(1000, 512).FitsIn(ResourceVector(1000, 512)));
  EXPECT_TRUE(ResourceVector(500, 100).FitsIn(ResourceVector(1000, 512)));
  EXPECT_FALSE(ResourceVector(2000, 100).FitsIn(ResourceVector(1000, 512)));
  EXPECT_FALSE(ResourceVector(500, 1024).FitsIn(ResourceVector(1000, 512)));
}

TEST(ResourceVector, Arithmetic) {
  ResourceVector a(1000, 512);
  a += ResourceVector(500, 256);
  EXPECT_EQ(a, ResourceVector(1500, 768));
  a -= ResourceVector(1500, 768);
  EXPECT_TRUE(a.IsZero());
  EXPECT_FALSE(a.AnyNegative());
  a -= ResourceVector(1, 0);
  EXPECT_TRUE(a.AnyNegative());
}

TEST(ResourceVector, DominantShare) {
  const ResourceVector cap = ResourceVector::Cores(32, 64);
  const ResourceVector used(16000, 16 * 1024);
  // CPU share 0.5, memory share 0.25 -> dominant 0.5.
  EXPECT_DOUBLE_EQ(used.DominantShareOf(cap), 0.5);
}

TEST(ResourceVector, DominantShareSkipsZeroCapacity) {
  const ResourceVector cap(32000, 0);  // CPU-only machine view
  const ResourceVector used(8000, 123456);
  EXPECT_DOUBLE_EQ(used.DominantShareOf(cap), 0.25);
}

TEST(ResourceVector, CpuOnlyDropsMemory) {
  const ResourceVector r = ResourceVector(1000, 512).CpuOnly();
  EXPECT_EQ(r.cpu_millis(), 1000);
  EXPECT_EQ(r.mem_mib(), 0);
}

TEST(ResourceVector, MaxMin) {
  const ResourceVector a(1, 10), b(5, 2);
  EXPECT_EQ(Max(a, b), ResourceVector(5, 10));
  EXPECT_EQ(Min(a, b), ResourceVector(1, 2));
}

// ----------------------------------------------------------- topology ----

TEST(Topology, UniformShape) {
  const Topology topo =
      Topology::Uniform(100, ResourceVector::Cores(32, 64), 10, 5);
  EXPECT_EQ(topo.machine_count(), 100u);
  EXPECT_EQ(topo.rack_count(), 10u);       // 100 / 10 per rack
  EXPECT_EQ(topo.subcluster_count(), 2u);  // 10 racks / 5 per subcluster
}

TEST(Topology, UniformPartialLastGroups) {
  const Topology topo =
      Topology::Uniform(25, ResourceVector::Cores(32, 64), 10, 2);
  EXPECT_EQ(topo.machine_count(), 25u);
  EXPECT_EQ(topo.rack_count(), 3u);  // 10 + 10 + 5
  EXPECT_EQ(topo.subcluster_count(), 2u);
}

TEST(Topology, MachineRackMembership) {
  const Topology topo =
      Topology::Uniform(20, ResourceVector::Cores(32, 64), 5, 2);
  for (const Machine& m : topo.machines()) {
    const auto rack_machines = topo.RackMachines(m.rack);
    EXPECT_NE(std::find(rack_machines.begin(), rack_machines.end(), m.id),
              rack_machines.end());
    EXPECT_EQ(topo.RackSubCluster(m.rack), m.subcluster);
  }
}

TEST(Topology, HeterogeneousConstruction) {
  Topology topo;
  const SubClusterId g = topo.AddSubCluster();
  const RackId r = topo.AddRack(g);
  const MachineId big = topo.AddMachine(r, ResourceVector::Cores(64, 128));
  const MachineId small = topo.AddMachine(r, ResourceVector::Cores(8, 16));
  EXPECT_EQ(topo.machine(big).capacity.cpu_millis(), 64000);
  EXPECT_EQ(topo.machine(small).capacity.cpu_millis(), 8000);
  EXPECT_EQ(topo.TotalCapacity().cpu_millis(), 72000);
}

// -------------------------------------------------------- constraints ----

TEST(ConstraintSet, SymmetricConflicts) {
  ConstraintSet cs(3);
  cs.AddAntiAffinity(ApplicationId(0), ApplicationId(1));
  EXPECT_TRUE(cs.Conflicts(ApplicationId(0), ApplicationId(1)));
  EXPECT_TRUE(cs.Conflicts(ApplicationId(1), ApplicationId(0)));
  EXPECT_FALSE(cs.Conflicts(ApplicationId(0), ApplicationId(2)));
}

TEST(ConstraintSet, WithinAppRule) {
  ConstraintSet cs(2);
  cs.AddAntiAffinity(ApplicationId(1), ApplicationId(1));
  EXPECT_TRUE(cs.HasWithinAntiAffinity(ApplicationId(1)));
  EXPECT_FALSE(cs.HasWithinAntiAffinity(ApplicationId(0)));
  EXPECT_TRUE(cs.Conflicts(ApplicationId(1), ApplicationId(1)));
}

TEST(ConstraintSet, DuplicateRulesIgnored) {
  ConstraintSet cs(2);
  cs.AddAntiAffinity(ApplicationId(0), ApplicationId(1));
  cs.AddAntiAffinity(ApplicationId(1), ApplicationId(0));
  cs.AddAntiAffinity(ApplicationId(0), ApplicationId(1));
  EXPECT_EQ(cs.rule_count(), 1u);
  EXPECT_EQ(cs.ConflictsOf(ApplicationId(0)).size(), 1u);
}

TEST(ConstraintSet, GrowsOnDemand) {
  ConstraintSet cs;
  cs.AddAntiAffinity(ApplicationId(5), ApplicationId(2));
  EXPECT_GE(cs.application_count(), 6u);
  EXPECT_TRUE(cs.Conflicts(ApplicationId(2), ApplicationId(5)));
}

TEST(ConstraintSet, ConflictingContainerCount) {
  trace::Workload wl;
  const auto a = wl.AddApplication("a", 3, ResourceVector::Cores(1, 1), 0,
                                   /*anti_affinity_within=*/true);
  const auto b = wl.AddApplication("b", 5, ResourceVector::Cores(1, 1));
  wl.AddApplication("c", 7, ResourceVector::Cores(1, 1));
  wl.AddAntiAffinity(a, b);
  // App a: conflicts with b's 5 containers + its own 2 siblings.
  EXPECT_EQ(wl.constraints().ConflictingContainerCount(a, wl.applications()),
            7);
  // App b: only the cross rule with a (3 containers).
  EXPECT_EQ(wl.constraints().ConflictingContainerCount(b, wl.applications()),
            3);
}

// ------------------------------------------------------------- state ----

class StateTest : public ::testing::Test {
 protected:
  StateTest()
      : topo_(Topology::Uniform(4, ResourceVector::Cores(32, 64), 2, 2)) {
    web_ = wl_.AddApplication("web", 2, ResourceVector::Cores(8, 16), 2,
                              /*anti_affinity_within=*/true);
    db_ = wl_.AddApplication("db", 1, ResourceVector::Cores(4, 8), 0);
    batch_ = wl_.AddApplication("batch", 3, ResourceVector::Cores(1, 2), 0);
    wl_.AddAntiAffinity(web_, db_);
  }

  ContainerId C(ApplicationId app, std::size_t i) const {
    return wl_.application(app).containers[i];
  }

  Topology topo_;
  trace::Workload wl_;
  ApplicationId web_, db_, batch_;
};

TEST_F(StateTest, DeployConsumesResources) {
  ClusterState state = wl_.MakeState(topo_);
  state.Deploy(C(web_, 0), MachineId(0));
  EXPECT_EQ(state.Free(MachineId(0)).cpu_millis(), 24000);
  EXPECT_EQ(state.placed_count(), 1u);
  EXPECT_TRUE(state.IsPlaced(C(web_, 0)));
  EXPECT_EQ(state.PlacementOf(C(web_, 0)), MachineId(0));
  EXPECT_EQ(state.DeployedOn(MachineId(0)).size(), 1u);
}

TEST_F(StateTest, EvictRestoresResources) {
  ClusterState state = wl_.MakeState(topo_);
  state.Deploy(C(web_, 0), MachineId(0));
  state.Evict(C(web_, 0));
  EXPECT_EQ(state.Free(MachineId(0)).cpu_millis(), 32000);
  EXPECT_FALSE(state.IsPlaced(C(web_, 0)));
  EXPECT_EQ(state.placed_count(), 0u);
  EXPECT_TRUE(state.DeployedOn(MachineId(0)).empty());
}

TEST_F(StateTest, BlacklistWithinApplication) {
  // Eq. 7–8: once web/0 runs on machine 0, its sibling is blacklisted there.
  ClusterState state = wl_.MakeState(topo_);
  state.Deploy(C(web_, 0), MachineId(0));
  EXPECT_TRUE(state.Blacklisted(C(web_, 1), MachineId(0)));
  EXPECT_FALSE(state.Blacklisted(C(web_, 1), MachineId(1)));
  EXPECT_FALSE(state.CanPlace(C(web_, 1), MachineId(0)));
  EXPECT_TRUE(state.CanPlace(C(web_, 1), MachineId(1)));
}

TEST_F(StateTest, BlacklistAcrossApplications) {
  ClusterState state = wl_.MakeState(topo_);
  state.Deploy(C(web_, 0), MachineId(0));
  EXPECT_TRUE(state.Blacklisted(C(db_, 0), MachineId(0)));
  // And symmetrically: db deployed first blocks web.
  state.Deploy(C(db_, 0), MachineId(1));
  EXPECT_TRUE(state.Blacklisted(C(web_, 1), MachineId(1)));
  // batch conflicts with nobody.
  EXPECT_FALSE(state.Blacklisted(C(batch_, 0), MachineId(0)));
  EXPECT_FALSE(state.Blacklisted(C(batch_, 0), MachineId(1)));
}

TEST_F(StateTest, BlacklistClearsAfterEvict) {
  ClusterState state = wl_.MakeState(topo_);
  state.Deploy(C(web_, 0), MachineId(0));
  state.Evict(C(web_, 0));
  EXPECT_FALSE(state.Blacklisted(C(db_, 0), MachineId(0)));
}

TEST_F(StateTest, FitsChecksResourcesOnly) {
  ClusterState state = wl_.MakeState(topo_);
  state.Deploy(C(web_, 0), MachineId(0));
  state.Deploy(C(batch_, 0), MachineId(0));
  EXPECT_TRUE(state.Fits(C(batch_, 1), MachineId(0)));
  // A conflicting container still "fits" physically; policy is separate.
  EXPECT_TRUE(state.Fits(C(db_, 0), MachineId(0)));
  EXPECT_TRUE(state.Blacklisted(C(db_, 0), MachineId(0)));
}

TEST_F(StateTest, MigrateCountsAndMoves) {
  ClusterState state = wl_.MakeState(topo_);
  state.Deploy(C(db_, 0), MachineId(0));
  state.Migrate(C(db_, 0), MachineId(2));
  EXPECT_EQ(state.PlacementOf(C(db_, 0)), MachineId(2));
  EXPECT_EQ(state.migrations(), 1);
  EXPECT_EQ(state.Free(MachineId(0)).cpu_millis(), 32000);
  EXPECT_EQ(state.Free(MachineId(2)).cpu_millis(), 28000);
}

TEST_F(StateTest, PreemptCounts) {
  ClusterState state = wl_.MakeState(topo_);
  state.Deploy(C(batch_, 0), MachineId(0));
  state.Preempt(C(batch_, 0));
  EXPECT_EQ(state.preemptions(), 1);
  EXPECT_FALSE(state.IsPlaced(C(batch_, 0)));
}

TEST_F(StateTest, RecordCountersAdjustManually) {
  ClusterState state = wl_.MakeState(topo_);
  state.RecordMigrations(5);
  state.RecordPreemptions(2);
  EXPECT_EQ(state.migrations(), 5);
  EXPECT_EQ(state.preemptions(), 2);
}

TEST_F(StateTest, UtilizationSummary) {
  ClusterState state = wl_.MakeState(topo_);
  state.Deploy(C(web_, 0), MachineId(0));  // 8/32 = 25%
  state.Deploy(C(db_, 0), MachineId(1));   // 4/32 = 12.5%
  const UtilizationSummary u = state.Utilization();
  EXPECT_EQ(u.used_machines, 2u);
  EXPECT_DOUBLE_EQ(u.min_share, 0.125);
  EXPECT_DOUBLE_EQ(u.max_share, 0.25);
  EXPECT_DOUBLE_EQ(u.avg_share, 0.1875);
  EXPECT_EQ(state.UsedMachineCount(), 2u);
}

TEST_F(StateTest, VerifyResourceInvariant) {
  ClusterState state = wl_.MakeState(topo_);
  EXPECT_TRUE(state.VerifyResourceInvariant());
  state.Deploy(C(web_, 0), MachineId(0));
  state.Deploy(C(batch_, 0), MachineId(0));
  state.Migrate(C(batch_, 0), MachineId(3));
  EXPECT_TRUE(state.VerifyResourceInvariant());
}

TEST_F(StateTest, ClearResets) {
  ClusterState state = wl_.MakeState(topo_);
  state.Deploy(C(web_, 0), MachineId(0));
  state.Migrate(C(web_, 0), MachineId(1));
  state.Clear();
  EXPECT_EQ(state.placed_count(), 0u);
  EXPECT_EQ(state.migrations(), 0);
  EXPECT_EQ(state.Free(MachineId(1)).cpu_millis(), 32000);
  EXPECT_TRUE(state.VerifyResourceInvariant());
}

TEST_F(StateTest, AppsOnTracksCounts) {
  ClusterState state = wl_.MakeState(topo_);
  state.Deploy(C(batch_, 0), MachineId(0));
  state.Deploy(C(batch_, 1), MachineId(0));
  const auto& apps = state.AppsOn(MachineId(0));
  ASSERT_EQ(apps.size(), 1u);
  EXPECT_EQ(apps.front().first, batch_.value());
  EXPECT_EQ(apps.front().second, 2);
  state.Evict(C(batch_, 0));
  ASSERT_EQ(state.AppsOn(MachineId(0)).size(), 1u);
  EXPECT_EQ(state.AppsOn(MachineId(0)).front().second, 1);
  state.Evict(C(batch_, 1));
  EXPECT_TRUE(state.AppsOn(MachineId(0)).empty());
}

// --------------------------------------------------------- free index ----

TEST_F(StateTest, FreeIndexTightest) {
  ClusterState state = wl_.MakeState(topo_);
  state.Deploy(C(web_, 0), MachineId(0));  // machine 0 has 24 cores free
  FreeIndex index;
  index.Attach(state);
  // Tightest machine with >= 20 cores free is machine 0 (24 < 32).
  EXPECT_EQ(index.TightestWithAtLeast(20000), MachineId(0));
  // Tightest with >= 30 cores is the first untouched machine.
  EXPECT_EQ(index.TightestWithAtLeast(30000), MachineId(1));
  EXPECT_FALSE(index.TightestWithAtLeast(33000).valid());
}

TEST_F(StateTest, FreeIndexOnChanged) {
  ClusterState state = wl_.MakeState(topo_);
  FreeIndex index;
  index.Attach(state);
  state.Deploy(C(web_, 0), MachineId(2));
  index.OnChanged(MachineId(2));
  EXPECT_EQ(index.TightestWithAtLeast(20000), MachineId(2));
}

TEST_F(StateTest, FreeIndexScanOrder) {
  ClusterState state = wl_.MakeState(topo_);
  state.Deploy(C(web_, 0), MachineId(1));  // 24 free
  state.Deploy(C(db_, 0), MachineId(2));   // 28 free
  FreeIndex index;
  index.Attach(state);
  std::vector<std::int64_t> seen;
  index.ScanAscending(0, [&](MachineId m) {
    seen.push_back(state.Free(m).cpu_millis());
    return false;
  });
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
  EXPECT_EQ(seen.size(), 4u);

  seen.clear();
  index.ScanDescending([&](MachineId m) {
    seen.push_back(state.Free(m).cpu_millis());
    return false;
  });
  EXPECT_TRUE(std::is_sorted(seen.rbegin(), seen.rend()));
}

// -------------------------------------------------------------- audit ----

TEST_F(StateTest, AuditCleanState) {
  ClusterState state = wl_.MakeState(topo_);
  state.Deploy(C(web_, 0), MachineId(0));
  state.Deploy(C(web_, 1), MachineId(1));
  state.Deploy(C(db_, 0), MachineId(2));
  state.Deploy(C(batch_, 0), MachineId(0));
  state.Deploy(C(batch_, 1), MachineId(1));
  state.Deploy(C(batch_, 2), MachineId(2));
  const AuditReport report = Audit(state);
  EXPECT_EQ(report.placed, 6u);
  EXPECT_EQ(report.unplaced, 0u);
  EXPECT_EQ(report.colocation_violations, 0u);
  EXPECT_DOUBLE_EQ(report.ViolationPercent(), 0.0);
}

TEST_F(StateTest, AuditDetectsColocationViolations) {
  ClusterState state = wl_.MakeState(topo_);
  // Deliberately violate: web/0 and web/1 together, plus db with them.
  state.Deploy(C(web_, 0), MachineId(0));
  state.Deploy(C(web_, 1), MachineId(0));
  state.Deploy(C(db_, 0), MachineId(0));
  const auto offenders = CollectColocationViolations(state);
  // web/1 violates against web/0; db violates against both web containers.
  EXPECT_EQ(offenders.size(), 2u);
  const AuditReport report = Audit(state);
  EXPECT_EQ(report.colocation_violations, 2u);
  EXPECT_GT(report.ViolationPercent(), 0.0);
  // Violations: 2 colocations (anti-affinity-typed) + 3 unplaced batch
  // containers (batch has no anti-affinity rule) -> share 2/5.
  EXPECT_DOUBLE_EQ(report.AntiAffinityShare(), 40.0);
}

TEST(Audit, UnplacedCauseResources) {
  // Fill the whole cluster so nothing fits.
  trace::Workload wl;
  const auto big = wl.AddApplication("big", 4, ResourceVector::Cores(32, 64));
  wl.AddApplication("extra", 1, ResourceVector::Cores(1, 1));
  const Topology topo = Topology::Uniform(4, ResourceVector::Cores(32, 64));
  ClusterState state = wl.MakeState(topo);
  for (int i = 0; i < 4; ++i) {
    state.Deploy(wl.application(big).containers[static_cast<std::size_t>(i)],
                 MachineId(i));
  }
  const AuditReport report = Audit(state);
  EXPECT_EQ(report.unplaced, 1u);
  EXPECT_EQ(report.unplaced_resources, 1u);
  EXPECT_EQ(report.unplaced_anti_affinity, 0u);
  EXPECT_EQ(report.unplaced_scheduler, 0u);
}

TEST(Audit, UnplacedCauseAntiAffinity) {
  // Every machine hosts a conflicting container; resources abound.
  trace::Workload wl;
  const auto blocker =
      wl.AddApplication("blocker", 4, ResourceVector::Cores(1, 2));
  const auto victim =
      wl.AddApplication("victim", 1, ResourceVector::Cores(1, 2));
  wl.AddAntiAffinity(blocker, victim);
  const Topology topo = Topology::Uniform(4, ResourceVector::Cores(32, 64));
  ClusterState state = wl.MakeState(topo);
  for (int i = 0; i < 4; ++i) {
    state.Deploy(
        wl.application(blocker).containers[static_cast<std::size_t>(i)],
        MachineId(i));
  }
  (void)victim;
  const AuditReport report = Audit(state);
  EXPECT_EQ(report.unplaced, 1u);
  EXPECT_EQ(report.unplaced_anti_affinity, 1u);
  EXPECT_EQ(report.unplaced_aa_constrained, 1u);
  EXPECT_DOUBLE_EQ(report.AntiAffinityShare(), 100.0);
}

TEST_F(StateTest, AuditUnplacedCauseScheduler) {
  // A feasible machine exists; the "scheduler" just did not use it.
  ClusterState state = wl_.MakeState(topo_);
  state.Deploy(C(web_, 0), MachineId(0));
  // web/1, db, batch all unplaced although machines 1-3 are free.
  const AuditReport report = Audit(state);
  EXPECT_EQ(report.unplaced, 5u);
  EXPECT_EQ(report.unplaced_scheduler, 5u);
}

TEST(Audit, PriorityInversions) {
  // Low-priority container placed while a high-priority one is starved.
  trace::Workload wl;
  const auto low =
      wl.AddApplication("low", 1, ResourceVector::Cores(32, 64), 0);
  wl.AddApplication("high", 1, ResourceVector::Cores(32, 64), 2);
  const Topology topo = Topology::Uniform(1, ResourceVector::Cores(32, 64));
  ClusterState state = wl.MakeState(topo);
  state.Deploy(wl.application(low).containers[0], MachineId(0));
  const AuditReport report = Audit(state);
  EXPECT_EQ(report.unplaced, 1u);
  EXPECT_EQ(report.priority_inversions, 1u);
}

TEST(Audit, ViolationPercentMath) {
  AuditReport report;
  report.total_containers = 200;
  report.unplaced = 10;
  report.colocation_violations = 10;
  EXPECT_DOUBLE_EQ(report.ViolationPercent(), 10.0);
  EXPECT_EQ(report.TotalViolations(), 20u);
}

TEST(Audit, EmptyReportIsZero) {
  AuditReport report;
  EXPECT_DOUBLE_EQ(report.ViolationPercent(), 0.0);
  EXPECT_DOUBLE_EQ(report.AntiAffinityShare(), 0.0);
}

}  // namespace
}  // namespace aladdin::cluster

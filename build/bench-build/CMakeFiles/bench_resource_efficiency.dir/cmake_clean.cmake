file(REMOVE_RECURSE
  "../bench/bench_resource_efficiency"
  "../bench/bench_resource_efficiency.pdb"
  "CMakeFiles/bench_resource_efficiency.dir/bench_resource_efficiency.cpp.o"
  "CMakeFiles/bench_resource_efficiency.dir/bench_resource_efficiency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_resource_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

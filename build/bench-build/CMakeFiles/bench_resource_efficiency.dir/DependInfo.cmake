
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_resource_efficiency.cpp" "bench-build/CMakeFiles/bench_resource_efficiency.dir/bench_resource_efficiency.cpp.o" "gcc" "bench-build/CMakeFiles/bench_resource_efficiency.dir/bench_resource_efficiency.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/aladdin_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aladdin_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aladdin_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aladdin_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aladdin_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aladdin_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aladdin_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

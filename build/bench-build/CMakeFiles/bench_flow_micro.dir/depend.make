# Empty dependencies file for bench_flow_micro.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_flow_micro"
  "../bench/bench_flow_micro.pdb"
  "CMakeFiles/bench_flow_micro.dir/bench_flow_micro.cpp.o"
  "CMakeFiles/bench_flow_micro.dir/bench_flow_micro.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_flow_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

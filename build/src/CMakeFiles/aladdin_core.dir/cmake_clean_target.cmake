file(REMOVE_RECURSE
  "libaladdin_core.a"
)

# Empty dependencies file for aladdin_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/aladdin_core.dir/core/capacity.cpp.o"
  "CMakeFiles/aladdin_core.dir/core/capacity.cpp.o.d"
  "CMakeFiles/aladdin_core.dir/core/migration.cpp.o"
  "CMakeFiles/aladdin_core.dir/core/migration.cpp.o.d"
  "CMakeFiles/aladdin_core.dir/core/network.cpp.o"
  "CMakeFiles/aladdin_core.dir/core/network.cpp.o.d"
  "CMakeFiles/aladdin_core.dir/core/relaxation.cpp.o"
  "CMakeFiles/aladdin_core.dir/core/relaxation.cpp.o.d"
  "CMakeFiles/aladdin_core.dir/core/scheduler.cpp.o"
  "CMakeFiles/aladdin_core.dir/core/scheduler.cpp.o.d"
  "CMakeFiles/aladdin_core.dir/core/task_scheduler.cpp.o"
  "CMakeFiles/aladdin_core.dir/core/task_scheduler.cpp.o.d"
  "CMakeFiles/aladdin_core.dir/core/weights.cpp.o"
  "CMakeFiles/aladdin_core.dir/core/weights.cpp.o.d"
  "libaladdin_core.a"
  "libaladdin_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aladdin_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/capacity.cpp" "src/CMakeFiles/aladdin_core.dir/core/capacity.cpp.o" "gcc" "src/CMakeFiles/aladdin_core.dir/core/capacity.cpp.o.d"
  "/root/repo/src/core/migration.cpp" "src/CMakeFiles/aladdin_core.dir/core/migration.cpp.o" "gcc" "src/CMakeFiles/aladdin_core.dir/core/migration.cpp.o.d"
  "/root/repo/src/core/network.cpp" "src/CMakeFiles/aladdin_core.dir/core/network.cpp.o" "gcc" "src/CMakeFiles/aladdin_core.dir/core/network.cpp.o.d"
  "/root/repo/src/core/relaxation.cpp" "src/CMakeFiles/aladdin_core.dir/core/relaxation.cpp.o" "gcc" "src/CMakeFiles/aladdin_core.dir/core/relaxation.cpp.o.d"
  "/root/repo/src/core/scheduler.cpp" "src/CMakeFiles/aladdin_core.dir/core/scheduler.cpp.o" "gcc" "src/CMakeFiles/aladdin_core.dir/core/scheduler.cpp.o.d"
  "/root/repo/src/core/task_scheduler.cpp" "src/CMakeFiles/aladdin_core.dir/core/task_scheduler.cpp.o" "gcc" "src/CMakeFiles/aladdin_core.dir/core/task_scheduler.cpp.o.d"
  "/root/repo/src/core/weights.cpp" "src/CMakeFiles/aladdin_core.dir/core/weights.cpp.o" "gcc" "src/CMakeFiles/aladdin_core.dir/core/weights.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/aladdin_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aladdin_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aladdin_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aladdin_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aladdin_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

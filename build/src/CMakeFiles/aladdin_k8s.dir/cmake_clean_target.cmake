file(REMOVE_RECURSE
  "libaladdin_k8s.a"
)

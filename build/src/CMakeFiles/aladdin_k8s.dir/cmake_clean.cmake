file(REMOVE_RECURSE
  "CMakeFiles/aladdin_k8s.dir/k8s/adaptor.cpp.o"
  "CMakeFiles/aladdin_k8s.dir/k8s/adaptor.cpp.o.d"
  "CMakeFiles/aladdin_k8s.dir/k8s/events.cpp.o"
  "CMakeFiles/aladdin_k8s.dir/k8s/events.cpp.o.d"
  "CMakeFiles/aladdin_k8s.dir/k8s/objects.cpp.o"
  "CMakeFiles/aladdin_k8s.dir/k8s/objects.cpp.o.d"
  "CMakeFiles/aladdin_k8s.dir/k8s/resolver.cpp.o"
  "CMakeFiles/aladdin_k8s.dir/k8s/resolver.cpp.o.d"
  "CMakeFiles/aladdin_k8s.dir/k8s/simulator.cpp.o"
  "CMakeFiles/aladdin_k8s.dir/k8s/simulator.cpp.o.d"
  "libaladdin_k8s.a"
  "libaladdin_k8s.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aladdin_k8s.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for aladdin_k8s.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libaladdin_baselines.a"
)

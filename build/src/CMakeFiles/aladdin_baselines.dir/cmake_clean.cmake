file(REMOVE_RECURSE
  "CMakeFiles/aladdin_baselines.dir/baselines/firmament/cost_model.cpp.o"
  "CMakeFiles/aladdin_baselines.dir/baselines/firmament/cost_model.cpp.o.d"
  "CMakeFiles/aladdin_baselines.dir/baselines/firmament/scheduler.cpp.o"
  "CMakeFiles/aladdin_baselines.dir/baselines/firmament/scheduler.cpp.o.d"
  "CMakeFiles/aladdin_baselines.dir/baselines/gokube/scheduler.cpp.o"
  "CMakeFiles/aladdin_baselines.dir/baselines/gokube/scheduler.cpp.o.d"
  "CMakeFiles/aladdin_baselines.dir/baselines/gokube/scoring.cpp.o"
  "CMakeFiles/aladdin_baselines.dir/baselines/gokube/scoring.cpp.o.d"
  "CMakeFiles/aladdin_baselines.dir/baselines/medea/local_search.cpp.o"
  "CMakeFiles/aladdin_baselines.dir/baselines/medea/local_search.cpp.o.d"
  "CMakeFiles/aladdin_baselines.dir/baselines/medea/objective.cpp.o"
  "CMakeFiles/aladdin_baselines.dir/baselines/medea/objective.cpp.o.d"
  "CMakeFiles/aladdin_baselines.dir/baselines/medea/scheduler.cpp.o"
  "CMakeFiles/aladdin_baselines.dir/baselines/medea/scheduler.cpp.o.d"
  "libaladdin_baselines.a"
  "libaladdin_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aladdin_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

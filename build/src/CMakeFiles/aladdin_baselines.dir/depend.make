# Empty dependencies file for aladdin_baselines.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/firmament/cost_model.cpp" "src/CMakeFiles/aladdin_baselines.dir/baselines/firmament/cost_model.cpp.o" "gcc" "src/CMakeFiles/aladdin_baselines.dir/baselines/firmament/cost_model.cpp.o.d"
  "/root/repo/src/baselines/firmament/scheduler.cpp" "src/CMakeFiles/aladdin_baselines.dir/baselines/firmament/scheduler.cpp.o" "gcc" "src/CMakeFiles/aladdin_baselines.dir/baselines/firmament/scheduler.cpp.o.d"
  "/root/repo/src/baselines/gokube/scheduler.cpp" "src/CMakeFiles/aladdin_baselines.dir/baselines/gokube/scheduler.cpp.o" "gcc" "src/CMakeFiles/aladdin_baselines.dir/baselines/gokube/scheduler.cpp.o.d"
  "/root/repo/src/baselines/gokube/scoring.cpp" "src/CMakeFiles/aladdin_baselines.dir/baselines/gokube/scoring.cpp.o" "gcc" "src/CMakeFiles/aladdin_baselines.dir/baselines/gokube/scoring.cpp.o.d"
  "/root/repo/src/baselines/medea/local_search.cpp" "src/CMakeFiles/aladdin_baselines.dir/baselines/medea/local_search.cpp.o" "gcc" "src/CMakeFiles/aladdin_baselines.dir/baselines/medea/local_search.cpp.o.d"
  "/root/repo/src/baselines/medea/objective.cpp" "src/CMakeFiles/aladdin_baselines.dir/baselines/medea/objective.cpp.o" "gcc" "src/CMakeFiles/aladdin_baselines.dir/baselines/medea/objective.cpp.o.d"
  "/root/repo/src/baselines/medea/scheduler.cpp" "src/CMakeFiles/aladdin_baselines.dir/baselines/medea/scheduler.cpp.o" "gcc" "src/CMakeFiles/aladdin_baselines.dir/baselines/medea/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/aladdin_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aladdin_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aladdin_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aladdin_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aladdin_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

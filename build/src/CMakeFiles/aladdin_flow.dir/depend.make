# Empty dependencies file for aladdin_flow.
# This may be replaced when dependencies are built.

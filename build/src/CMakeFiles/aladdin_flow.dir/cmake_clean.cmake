file(REMOVE_RECURSE
  "CMakeFiles/aladdin_flow.dir/flow/graph.cpp.o"
  "CMakeFiles/aladdin_flow.dir/flow/graph.cpp.o.d"
  "CMakeFiles/aladdin_flow.dir/flow/max_flow.cpp.o"
  "CMakeFiles/aladdin_flow.dir/flow/max_flow.cpp.o.d"
  "CMakeFiles/aladdin_flow.dir/flow/min_cost_flow.cpp.o"
  "CMakeFiles/aladdin_flow.dir/flow/min_cost_flow.cpp.o.d"
  "CMakeFiles/aladdin_flow.dir/flow/multidim.cpp.o"
  "CMakeFiles/aladdin_flow.dir/flow/multidim.cpp.o.d"
  "CMakeFiles/aladdin_flow.dir/flow/shortest_path.cpp.o"
  "CMakeFiles/aladdin_flow.dir/flow/shortest_path.cpp.o.d"
  "libaladdin_flow.a"
  "libaladdin_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aladdin_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

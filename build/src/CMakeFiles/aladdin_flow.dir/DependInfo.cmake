
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flow/graph.cpp" "src/CMakeFiles/aladdin_flow.dir/flow/graph.cpp.o" "gcc" "src/CMakeFiles/aladdin_flow.dir/flow/graph.cpp.o.d"
  "/root/repo/src/flow/max_flow.cpp" "src/CMakeFiles/aladdin_flow.dir/flow/max_flow.cpp.o" "gcc" "src/CMakeFiles/aladdin_flow.dir/flow/max_flow.cpp.o.d"
  "/root/repo/src/flow/min_cost_flow.cpp" "src/CMakeFiles/aladdin_flow.dir/flow/min_cost_flow.cpp.o" "gcc" "src/CMakeFiles/aladdin_flow.dir/flow/min_cost_flow.cpp.o.d"
  "/root/repo/src/flow/multidim.cpp" "src/CMakeFiles/aladdin_flow.dir/flow/multidim.cpp.o" "gcc" "src/CMakeFiles/aladdin_flow.dir/flow/multidim.cpp.o.d"
  "/root/repo/src/flow/shortest_path.cpp" "src/CMakeFiles/aladdin_flow.dir/flow/shortest_path.cpp.o" "gcc" "src/CMakeFiles/aladdin_flow.dir/flow/shortest_path.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/aladdin_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libaladdin_flow.a"
)

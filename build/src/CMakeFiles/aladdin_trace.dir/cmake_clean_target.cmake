file(REMOVE_RECURSE
  "libaladdin_trace.a"
)

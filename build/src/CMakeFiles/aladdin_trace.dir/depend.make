# Empty dependencies file for aladdin_trace.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/alibaba_gen.cpp" "src/CMakeFiles/aladdin_trace.dir/trace/alibaba_gen.cpp.o" "gcc" "src/CMakeFiles/aladdin_trace.dir/trace/alibaba_gen.cpp.o.d"
  "/root/repo/src/trace/arrival.cpp" "src/CMakeFiles/aladdin_trace.dir/trace/arrival.cpp.o" "gcc" "src/CMakeFiles/aladdin_trace.dir/trace/arrival.cpp.o.d"
  "/root/repo/src/trace/serialize.cpp" "src/CMakeFiles/aladdin_trace.dir/trace/serialize.cpp.o" "gcc" "src/CMakeFiles/aladdin_trace.dir/trace/serialize.cpp.o.d"
  "/root/repo/src/trace/trace_stats.cpp" "src/CMakeFiles/aladdin_trace.dir/trace/trace_stats.cpp.o" "gcc" "src/CMakeFiles/aladdin_trace.dir/trace/trace_stats.cpp.o.d"
  "/root/repo/src/trace/workload.cpp" "src/CMakeFiles/aladdin_trace.dir/trace/workload.cpp.o" "gcc" "src/CMakeFiles/aladdin_trace.dir/trace/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/aladdin_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aladdin_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

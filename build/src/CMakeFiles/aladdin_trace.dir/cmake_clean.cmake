file(REMOVE_RECURSE
  "CMakeFiles/aladdin_trace.dir/trace/alibaba_gen.cpp.o"
  "CMakeFiles/aladdin_trace.dir/trace/alibaba_gen.cpp.o.d"
  "CMakeFiles/aladdin_trace.dir/trace/arrival.cpp.o"
  "CMakeFiles/aladdin_trace.dir/trace/arrival.cpp.o.d"
  "CMakeFiles/aladdin_trace.dir/trace/serialize.cpp.o"
  "CMakeFiles/aladdin_trace.dir/trace/serialize.cpp.o.d"
  "CMakeFiles/aladdin_trace.dir/trace/trace_stats.cpp.o"
  "CMakeFiles/aladdin_trace.dir/trace/trace_stats.cpp.o.d"
  "CMakeFiles/aladdin_trace.dir/trace/workload.cpp.o"
  "CMakeFiles/aladdin_trace.dir/trace/workload.cpp.o.d"
  "libaladdin_trace.a"
  "libaladdin_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aladdin_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for aladdin_sim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libaladdin_sim.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/aladdin_sim.dir/sim/experiment.cpp.o"
  "CMakeFiles/aladdin_sim.dir/sim/experiment.cpp.o.d"
  "CMakeFiles/aladdin_sim.dir/sim/metrics.cpp.o"
  "CMakeFiles/aladdin_sim.dir/sim/metrics.cpp.o.d"
  "CMakeFiles/aladdin_sim.dir/sim/report.cpp.o"
  "CMakeFiles/aladdin_sim.dir/sim/report.cpp.o.d"
  "CMakeFiles/aladdin_sim.dir/sim/scheduler.cpp.o"
  "CMakeFiles/aladdin_sim.dir/sim/scheduler.cpp.o.d"
  "libaladdin_sim.a"
  "libaladdin_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aladdin_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/experiment.cpp" "src/CMakeFiles/aladdin_sim.dir/sim/experiment.cpp.o" "gcc" "src/CMakeFiles/aladdin_sim.dir/sim/experiment.cpp.o.d"
  "/root/repo/src/sim/metrics.cpp" "src/CMakeFiles/aladdin_sim.dir/sim/metrics.cpp.o" "gcc" "src/CMakeFiles/aladdin_sim.dir/sim/metrics.cpp.o.d"
  "/root/repo/src/sim/report.cpp" "src/CMakeFiles/aladdin_sim.dir/sim/report.cpp.o" "gcc" "src/CMakeFiles/aladdin_sim.dir/sim/report.cpp.o.d"
  "/root/repo/src/sim/scheduler.cpp" "src/CMakeFiles/aladdin_sim.dir/sim/scheduler.cpp.o" "gcc" "src/CMakeFiles/aladdin_sim.dir/sim/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/aladdin_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aladdin_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aladdin_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/aladdin_cluster.dir/cluster/application.cpp.o"
  "CMakeFiles/aladdin_cluster.dir/cluster/application.cpp.o.d"
  "CMakeFiles/aladdin_cluster.dir/cluster/audit.cpp.o"
  "CMakeFiles/aladdin_cluster.dir/cluster/audit.cpp.o.d"
  "CMakeFiles/aladdin_cluster.dir/cluster/constraints.cpp.o"
  "CMakeFiles/aladdin_cluster.dir/cluster/constraints.cpp.o.d"
  "CMakeFiles/aladdin_cluster.dir/cluster/free_index.cpp.o"
  "CMakeFiles/aladdin_cluster.dir/cluster/free_index.cpp.o.d"
  "CMakeFiles/aladdin_cluster.dir/cluster/machine.cpp.o"
  "CMakeFiles/aladdin_cluster.dir/cluster/machine.cpp.o.d"
  "CMakeFiles/aladdin_cluster.dir/cluster/resources.cpp.o"
  "CMakeFiles/aladdin_cluster.dir/cluster/resources.cpp.o.d"
  "CMakeFiles/aladdin_cluster.dir/cluster/state.cpp.o"
  "CMakeFiles/aladdin_cluster.dir/cluster/state.cpp.o.d"
  "CMakeFiles/aladdin_cluster.dir/cluster/topology.cpp.o"
  "CMakeFiles/aladdin_cluster.dir/cluster/topology.cpp.o.d"
  "libaladdin_cluster.a"
  "libaladdin_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aladdin_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libaladdin_cluster.a"
)

# Empty compiler generated dependencies file for aladdin_cluster.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/application.cpp" "src/CMakeFiles/aladdin_cluster.dir/cluster/application.cpp.o" "gcc" "src/CMakeFiles/aladdin_cluster.dir/cluster/application.cpp.o.d"
  "/root/repo/src/cluster/audit.cpp" "src/CMakeFiles/aladdin_cluster.dir/cluster/audit.cpp.o" "gcc" "src/CMakeFiles/aladdin_cluster.dir/cluster/audit.cpp.o.d"
  "/root/repo/src/cluster/constraints.cpp" "src/CMakeFiles/aladdin_cluster.dir/cluster/constraints.cpp.o" "gcc" "src/CMakeFiles/aladdin_cluster.dir/cluster/constraints.cpp.o.d"
  "/root/repo/src/cluster/free_index.cpp" "src/CMakeFiles/aladdin_cluster.dir/cluster/free_index.cpp.o" "gcc" "src/CMakeFiles/aladdin_cluster.dir/cluster/free_index.cpp.o.d"
  "/root/repo/src/cluster/machine.cpp" "src/CMakeFiles/aladdin_cluster.dir/cluster/machine.cpp.o" "gcc" "src/CMakeFiles/aladdin_cluster.dir/cluster/machine.cpp.o.d"
  "/root/repo/src/cluster/resources.cpp" "src/CMakeFiles/aladdin_cluster.dir/cluster/resources.cpp.o" "gcc" "src/CMakeFiles/aladdin_cluster.dir/cluster/resources.cpp.o.d"
  "/root/repo/src/cluster/state.cpp" "src/CMakeFiles/aladdin_cluster.dir/cluster/state.cpp.o" "gcc" "src/CMakeFiles/aladdin_cluster.dir/cluster/state.cpp.o.d"
  "/root/repo/src/cluster/topology.cpp" "src/CMakeFiles/aladdin_cluster.dir/cluster/topology.cpp.o" "gcc" "src/CMakeFiles/aladdin_cluster.dir/cluster/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/aladdin_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for aladdin_common.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/aladdin_common.dir/common/csv.cpp.o"
  "CMakeFiles/aladdin_common.dir/common/csv.cpp.o.d"
  "CMakeFiles/aladdin_common.dir/common/flags.cpp.o"
  "CMakeFiles/aladdin_common.dir/common/flags.cpp.o.d"
  "CMakeFiles/aladdin_common.dir/common/log.cpp.o"
  "CMakeFiles/aladdin_common.dir/common/log.cpp.o.d"
  "CMakeFiles/aladdin_common.dir/common/rng.cpp.o"
  "CMakeFiles/aladdin_common.dir/common/rng.cpp.o.d"
  "CMakeFiles/aladdin_common.dir/common/stats.cpp.o"
  "CMakeFiles/aladdin_common.dir/common/stats.cpp.o.d"
  "CMakeFiles/aladdin_common.dir/common/strings.cpp.o"
  "CMakeFiles/aladdin_common.dir/common/strings.cpp.o.d"
  "CMakeFiles/aladdin_common.dir/common/table.cpp.o"
  "CMakeFiles/aladdin_common.dir/common/table.cpp.o.d"
  "CMakeFiles/aladdin_common.dir/common/thread_pool.cpp.o"
  "CMakeFiles/aladdin_common.dir/common/thread_pool.cpp.o.d"
  "libaladdin_common.a"
  "libaladdin_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aladdin_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libaladdin_common.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/test_k8s.dir/test_k8s.cpp.o"
  "CMakeFiles/test_k8s.dir/test_k8s.cpp.o.d"
  "test_k8s"
  "test_k8s.pdb"
  "test_k8s[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_k8s.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/holiday_scaleup.dir/holiday_scaleup.cpp.o"
  "CMakeFiles/holiday_scaleup.dir/holiday_scaleup.cpp.o.d"
  "holiday_scaleup"
  "holiday_scaleup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/holiday_scaleup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

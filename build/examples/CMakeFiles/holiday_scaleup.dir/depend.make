# Empty dependencies file for holiday_scaleup.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/k8s_integration.dir/k8s_integration.cpp.o"
  "CMakeFiles/k8s_integration.dir/k8s_integration.cpp.o.d"
  "k8s_integration"
  "k8s_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/k8s_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for k8s_integration.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for fig1_scenario.
# This may be replaced when dependencies are built.

# Empty dependencies file for failure_domains.
# This may be replaced when dependencies are built.

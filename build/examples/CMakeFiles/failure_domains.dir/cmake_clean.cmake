file(REMOVE_RECURSE
  "CMakeFiles/failure_domains.dir/failure_domains.cpp.o"
  "CMakeFiles/failure_domains.dir/failure_domains.cpp.o.d"
  "failure_domains"
  "failure_domains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failure_domains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#include "sim/report.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "common/csv.h"
#include "common/log.h"
#include "common/strings.h"

namespace aladdin::sim {

void PrintExperimentHeader(const std::string& experiment_id,
                           const std::string& description) {
  std::printf("\n=== %s — %s ===\n", experiment_id.c_str(),
              description.c_str());
}

Table BuildRunTable(const std::vector<RunMetrics>& metrics,
                    const std::vector<std::string>& paper_notes) {
  std::vector<std::string> headers = {
      "scheduler",   "placed",  "unplaced", "violations%", "aa-share%",
      "machines",    "util%",   "migr",     "preempt",     "ms/container"};
  const bool with_notes = !paper_notes.empty();
  if (with_notes) headers.push_back("paper");
  Table table(headers);
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    const RunMetrics& m = metrics[i];
    table.Cell(m.scheduler)
        .Cell(static_cast<std::int64_t>(m.audit.placed))
        .Cell(static_cast<std::int64_t>(m.audit.unplaced))
        .Cell(m.audit.ViolationPercent(), 1)
        .Cell(m.audit.AntiAffinityShare(), 1)
        .Cell(static_cast<std::int64_t>(m.used_machines))
        .Cell(m.util.avg_share * 100.0, 1)
        .Cell(m.migrations)
        .Cell(m.preemptions)
        .Cell(m.latency_ms_per_container, 3);
    if (with_notes) {
      table.Cell(i < paper_notes.size() ? paper_notes[i] : "");
    }
    table.EndRow();
  }
  return table;
}

void PrintRunTable(const std::vector<RunMetrics>& metrics,
                   const std::vector<std::string>& paper_notes) {
  BuildRunTable(metrics, paper_notes).Print();
}

Table BuildEfficiencyTable(const std::vector<RunMetrics>& metrics) {
  std::size_t best = 0;
  for (const auto& m : metrics) {
    if (m.used_machines == 0) continue;
    if (best == 0 || m.used_machines < best) best = m.used_machines;
  }
  Table table({"scheduler", "machines", "efficiency (Eq.10)"});
  for (const auto& m : metrics) {
    table.Cell(m.scheduler)
        .Cell(static_cast<std::int64_t>(m.used_machines))
        .Cell(m.EfficiencyVs(best), 3)
        .EndRow();
  }
  return table;
}

void PrintEfficiencyTable(const std::vector<RunMetrics>& metrics) {
  BuildEfficiencyTable(metrics).Print();
}

bool AppendMetricsCsv(const std::string& path, const std::string& experiment,
                      const std::string& label,
                      const std::vector<RunMetrics>& metrics) {
  const bool fresh = !std::ifstream(path).good();
  std::ofstream os(path, std::ios::app);
  if (!os) return false;
  CsvWriter writer(os);
  if (fresh) {
    for (const char* column :
         {"experiment", "label", "scheduler", "placed", "unplaced",
          "violations_pct", "aa_share_pct", "machines", "avg_util_pct",
          "migrations", "preemptions", "wall_seconds", "ms_per_container"}) {
      writer.Field(std::string_view(column));
    }
    writer.EndRow();
  }
  for (const RunMetrics& m : metrics) {
    writer.Field(experiment)
        .Field(label)
        .Field(m.scheduler)
        .Field(static_cast<std::int64_t>(m.audit.placed))
        .Field(static_cast<std::int64_t>(m.audit.unplaced))
        .Field(m.audit.ViolationPercent())
        .Field(m.audit.AntiAffinityShare())
        .Field(static_cast<std::int64_t>(m.used_machines))
        .Field(m.util.avg_share * 100.0)
        .Field(m.migrations)
        .Field(m.preemptions)
        .Field(m.wall_seconds)
        .Field(m.latency_ms_per_container);
    writer.EndRow();
  }
  return static_cast<bool>(os);
}

Table BuildPhaseTable(const std::vector<obs::PhaseDelta>& phases,
                      double total_seconds) {
  Table table({"phase", "kind", "ms", "calls", "share_pct"});
  // Exclusive phases first (they partition the run), each group by time.
  std::vector<obs::PhaseDelta> sorted = phases;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const obs::PhaseDelta& a, const obs::PhaseDelta& b) {
                     if (a.exclusive != b.exclusive) return a.exclusive;
                     return a.ns > b.ns;
                   });
  for (const obs::PhaseDelta& phase : sorted) {
    const double share = total_seconds > 0.0
                             ? phase.seconds() / total_seconds * 100.0
                             : 0.0;
    table.Cell(phase.name)
        .Cell(phase.exclusive ? "excl" : "nested")
        .Cell(phase.seconds() * 1e3, 3)
        .Cell(phase.calls)
        .Cell(share, 1)
        .EndRow();
  }
  const double covered = obs::ExclusiveSeconds(sorted);
  table.Cell("(exclusive coverage)")
      .Cell("")
      .Cell(covered * 1e3, 3)
      .Cell(std::int64_t{0})
      .Cell(total_seconds > 0.0 ? covered / total_seconds * 100.0 : 0.0, 1)
      .EndRow();
  return table;
}

void PrintPhaseTable(const std::vector<obs::PhaseDelta>& phases,
                     double total_seconds) {
  BuildPhaseTable(phases, total_seconds).Print();
}

Table BuildCauseTable(
    const std::vector<std::pair<obs::Cause, std::int64_t>>& counts) {
  std::int64_t total = 0;
  for (const auto& [cause, n] : counts) total += n;
  Table table({"cause", "count", "share_pct"});
  for (const auto& [cause, n] : counts) {
    if (n == 0) continue;
    table.Cell(obs::CauseName(cause))
        .Cell(n)
        .Cell(total > 0 ? static_cast<double>(n) / static_cast<double>(total) *
                              100.0
                        : 0.0,
              1)
        .EndRow();
  }
  table.Cell("(total)").Cell(total).Cell(100.0, 1).EndRow();
  return table;
}

void PrintCauseTable(
    const std::vector<std::pair<obs::Cause, std::int64_t>>& counts) {
  BuildCauseTable(counts).Print();
}

Table BuildSloTable(const obs::SloSnapshot& snapshot) {
  Table table({"app", "admitted", "within", "violations", "within_pct", "p50",
               "p99", "p999", "max"});
  const auto within_pct = [](std::int64_t within, std::int64_t judged) {
    return judged > 0
               ? static_cast<double>(within) / static_cast<double>(judged) *
                     100.0
               : 100.0;
  };
  for (const obs::SloAppRow& row : snapshot.apps) {
    table.Cell(row.name.empty() ? std::to_string(row.app) : row.name)
        .Cell(row.admitted)
        .Cell(row.within)
        .Cell(row.violations)
        .Cell(within_pct(row.within, row.within + row.violations), 2)
        .Cell(row.p50)
        .Cell(row.p99)
        .Cell(row.p999)
        .Cell(row.wait_max)
        .EndRow();
  }
  if (snapshot.apps_total > snapshot.apps.size()) {
    table.Cell("(+" + std::to_string(snapshot.apps_total -
                                     snapshot.apps.size()) +
               " more apps)")
        .Cell("")
        .Cell("")
        .Cell("")
        .Cell("")
        .Cell("")
        .Cell("")
        .Cell("")
        .Cell("")
        .EndRow();
  }
  table.Cell("(total)")
      .Cell(snapshot.admitted)
      .Cell(snapshot.within)
      .Cell(snapshot.violations)
      .Cell(snapshot.attainment_pct, 2)
      .Cell(snapshot.p50)
      .Cell(snapshot.p99)
      .Cell(snapshot.p999)
      .Cell(snapshot.wait_max)
      .EndRow();
  return table;
}

void PrintSloTable(const obs::SloSnapshot& snapshot) {
  std::printf(
      "admission SLO: %.2f%% within %lld tick(s) — attainment %.2f%%, "
      "burn %.2f\n",
      snapshot.objective.percent,
      static_cast<long long>(snapshot.objective.wait_ticks),
      snapshot.attainment_pct, snapshot.burn_rate);
  BuildSloTable(snapshot).Print();
}

Table BuildAlertTable(const obs::WatchdogSnapshot& snapshot) {
  Table table({"id", "kind", "severity", "subject", "state", "opened",
               "resolved", "observed", "threshold"});
  for (const obs::Alert& alert : snapshot.alerts) {
    table.Cell(static_cast<std::int64_t>(alert.id))
        .Cell(obs::AlertKindName(alert.kind))
        .Cell(obs::AlertSeverityName(alert.severity))
        .Cell(static_cast<std::int64_t>(alert.subject))
        .Cell(alert.state == obs::AlertState::kOpen ? "open" : "resolved")
        .Cell(alert.opened_tick)
        .Cell(alert.resolved_tick)
        .Cell(alert.evidence.observed)
        .Cell(alert.evidence.threshold)
        .EndRow();
  }
  if (snapshot.alerts.empty()) {
    table.Cell("(no alerts)")
        .Cell("")
        .Cell("")
        .Cell("")
        .Cell("")
        .Cell("")
        .Cell("")
        .Cell("")
        .Cell("")
        .EndRow();
  }
  return table;
}

void PrintAlertTable(const obs::WatchdogSnapshot& snapshot) {
  std::printf("watchdog alerts: %lld opened, %lld resolved, %lld open\n",
              static_cast<long long>(snapshot.opened_total),
              static_cast<long long>(snapshot.resolved_total),
              static_cast<long long>(snapshot.open_now));
  BuildAlertTable(snapshot).Print();
}

TimeSeriesWriter::TimeSeriesWriter(const std::string& path)
    : os_(path, std::ios::out | std::ios::trunc) {
  if (!os_) {
    LOG_ERROR << "cannot open timeseries file " << path;
    return;
  }
  const std::string_view suffix = ".jsonl";
  jsonl_ = path.size() >= suffix.size() &&
           path.compare(path.size() - suffix.size(), suffix.size(), suffix) ==
               0;
}

bool TimeSeriesWriter::Append(const TimeSeriesPoint& p) {
  if (!os_) return false;
  if (jsonl_) {
    char buf[768];
    std::snprintf(
        buf, sizeof(buf),
        "{\"tick\":%lld,\"pending\":%zu,\"bindings\":%zu,"
        "\"unschedulable\":%zu,\"migrations\":%zu,\"preemptions\":%zu,"
        "\"used_machines\":%zu,\"avg_util_pct\":%.3f,\"frag_pct\":%.3f,"
        "\"wall_seconds\":%.6f,\"phase_seconds\":%.6f,"
        "\"slo_attainment_pct\":%.3f,\"pending_age_p99\":%lld,"
        "\"alerts_open\":%lld,\"alerts_slo_burn_rate\":%lld,"
        "\"alerts_pending_age_drift\":%lld,\"alerts_app_flapping\":%lld,"
        "\"alerts_shard_imbalance\":%lld,\"alerts_solve_regression\":%lld,"
        "\"alerts_cause_mix_shift\":%lld}",
        static_cast<long long>(p.tick), p.pending, p.bindings, p.unschedulable,
        p.migrations, p.preemptions, p.used_machines, p.avg_util_pct,
        p.frag_pct, p.wall_seconds, p.phase_seconds, p.slo_attainment_pct,
        static_cast<long long>(p.pending_age_p99),
        static_cast<long long>(p.alerts_open),
        static_cast<long long>(p.alerts_open_by_kind[0]),
        static_cast<long long>(p.alerts_open_by_kind[1]),
        static_cast<long long>(p.alerts_open_by_kind[2]),
        static_cast<long long>(p.alerts_open_by_kind[3]),
        static_cast<long long>(p.alerts_open_by_kind[4]),
        static_cast<long long>(p.alerts_open_by_kind[5]));
    os_ << buf << '\n';
    return static_cast<bool>(os_);
  }
  CsvWriter writer(os_);
  if (!wrote_header_) {
    wrote_header_ = true;
    for (const char* column :
         {"tick", "pending", "bindings", "unschedulable", "migrations",
          "preemptions", "used_machines", "avg_util_pct", "frag_pct",
          "wall_seconds", "phase_seconds", "slo_attainment_pct",
          "pending_age_p99", "alerts_open", "alerts_slo_burn_rate",
          "alerts_pending_age_drift", "alerts_app_flapping",
          "alerts_shard_imbalance", "alerts_solve_regression",
          "alerts_cause_mix_shift"}) {
      writer.Field(std::string_view(column));
    }
    writer.EndRow();
  }
  writer.Field(p.tick)
      .Field(static_cast<std::int64_t>(p.pending))
      .Field(static_cast<std::int64_t>(p.bindings))
      .Field(static_cast<std::int64_t>(p.unschedulable))
      .Field(static_cast<std::int64_t>(p.migrations))
      .Field(static_cast<std::int64_t>(p.preemptions))
      .Field(static_cast<std::int64_t>(p.used_machines))
      .Field(p.avg_util_pct)
      .Field(p.frag_pct)
      .Field(p.wall_seconds)
      .Field(p.phase_seconds)
      .Field(p.slo_attainment_pct)
      .Field(p.pending_age_p99)
      .Field(p.alerts_open);
  for (const std::int64_t open : p.alerts_open_by_kind) writer.Field(open);
  writer.EndRow();
  return static_cast<bool>(os_);
}

}  // namespace aladdin::sim

// Experiment driver: builds the cluster, orders the arrivals, times the
// scheduler, audits the result. One call per (scheduler, workload, order)
// cell of the paper's figures.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/metrics.h"
#include "sim/scheduler.h"
#include "trace/alibaba_gen.h"
#include "trace/arrival.h"

namespace aladdin::sim {

struct ExperimentConfig {
  std::size_t machines = 2000;
  trace::ArrivalOrder order = trace::ArrivalOrder::kRandom;
  std::uint64_t arrival_seed = 1;
};

// Runs `scheduler` once over `workload` on a fresh Alibaba-shaped cluster
// and returns the audited metrics. Wall time covers Schedule() only
// (placement latency, Eq. 11), not generation or auditing.
RunMetrics RunExperiment(Scheduler& scheduler, const trace::Workload& workload,
                         const ExperimentConfig& config);

// Same but against a caller-provided topology/state (for incremental or
// heterogeneous scenarios in the examples).
RunMetrics RunExperimentOn(Scheduler& scheduler,
                           const trace::Workload& workload,
                           const cluster::Topology& topology,
                           trace::ArrivalOrder order,
                           std::uint64_t arrival_seed);

// The default scaled workload used by all benches: the paper's trace at
// `scale`, CPU-only, seeded.
trace::Workload MakeBenchWorkload(double scale, std::uint64_t seed = 42);

// The paper's machine/container proportion: 10,000 machines for the scale-1
// trace, scaled linearly (minimum 16).
std::size_t BenchMachineCount(double scale);

// Runs independent experiment jobs across a thread pool (one scheduler
// instance per job — Scheduler implementations are not thread-safe, so jobs
// must construct their own). Results land at the job's index; execution
// order is unspecified but the output is deterministic because each job is.
// threads == 0 uses the hardware concurrency.
std::vector<RunMetrics> RunSweep(
    std::vector<std::function<RunMetrics()>> jobs, std::size_t threads = 0);

}  // namespace aladdin::sim

// Bench-output helpers: consistent headers and paper-vs-measured tables so
// EXPERIMENTS.md can be assembled straight from bench stdout.
#pragma once

#include <string>
#include <vector>

#include "common/table.h"
#include "obs/metrics.h"
#include "sim/metrics.h"

namespace aladdin::sim {

// Prints a banner naming the figure/table being reproduced.
void PrintExperimentHeader(const std::string& experiment_id,
                           const std::string& description);

// Standard per-run row set: scheduler, placed/unplaced, violation %, AA
// share, machines, util, migrations, latency. `paper_note` (optional, same
// length as metrics) annotates each row with the paper's reported number.
Table BuildRunTable(const std::vector<RunMetrics>& metrics,
                    const std::vector<std::string>& paper_notes = {});
void PrintRunTable(const std::vector<RunMetrics>& metrics,
                   const std::vector<std::string>& paper_notes = {});

// Eq. 10 efficiency table relative to the best machine count in the set.
Table BuildEfficiencyTable(const std::vector<RunMetrics>& metrics);
void PrintEfficiencyTable(const std::vector<RunMetrics>& metrics);

// Machine-readable export for plotting: appends one row per run to `path`
// (writing a header first if the file does not exist yet). Columns:
// experiment,label,scheduler,placed,unplaced,violations_pct,aa_share_pct,
// machines,avg_util_pct,migrations,preemptions,wall_seconds,
// ms_per_container. Returns false on I/O failure. Benches expose this via
// their --csv flag.
bool AppendMetricsCsv(const std::string& path, const std::string& experiment,
                      const std::string& label,
                      const std::vector<RunMetrics>& metrics);

// Where-the-time-went breakdown from the obs phase registry (see
// obs/metrics.h). One row per phase: total ms, calls, share of
// `total_seconds` (the measured wall time the deltas are judged against),
// and whether the phase is exclusive (partitions the run) or nested detail.
// Exclusive rows print first; their share-sum is the coverage figure
// bench_online checks against its tick wall time.
Table BuildPhaseTable(const std::vector<obs::PhaseDelta>& phases,
                      double total_seconds);
void PrintPhaseTable(const std::vector<obs::PhaseDelta>& phases,
                     double total_seconds);

}  // namespace aladdin::sim

// Bench-output helpers: consistent headers and paper-vs-measured tables so
// EXPERIMENTS.md can be assembled straight from bench stdout.
#pragma once

#include <array>
#include <cstdint>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "common/table.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/watchdog.h"
#include "sim/metrics.h"

namespace aladdin::sim {

// Prints a banner naming the figure/table being reproduced.
void PrintExperimentHeader(const std::string& experiment_id,
                           const std::string& description);

// Standard per-run row set: scheduler, placed/unplaced, violation %, AA
// share, machines, util, migrations, latency. `paper_note` (optional, same
// length as metrics) annotates each row with the paper's reported number.
Table BuildRunTable(const std::vector<RunMetrics>& metrics,
                    const std::vector<std::string>& paper_notes = {});
void PrintRunTable(const std::vector<RunMetrics>& metrics,
                   const std::vector<std::string>& paper_notes = {});

// Eq. 10 efficiency table relative to the best machine count in the set.
Table BuildEfficiencyTable(const std::vector<RunMetrics>& metrics);
void PrintEfficiencyTable(const std::vector<RunMetrics>& metrics);

// Machine-readable export for plotting: appends one row per run to `path`
// (writing a header first if the file does not exist yet). Columns:
// experiment,label,scheduler,placed,unplaced,violations_pct,aa_share_pct,
// machines,avg_util_pct,migrations,preemptions,wall_seconds,
// ms_per_container. Returns false on I/O failure. Benches expose this via
// their --csv flag.
bool AppendMetricsCsv(const std::string& path, const std::string& experiment,
                      const std::string& label,
                      const std::vector<RunMetrics>& metrics);

// Where-the-time-went breakdown from the obs phase registry (see
// obs/metrics.h). One row per phase: total ms, calls, share of
// `total_seconds` (the measured wall time the deltas are judged against),
// and whether the phase is exclusive (partitions the run) or nested detail.
// Exclusive rows print first; their share-sum is the coverage figure
// bench_online checks against its tick wall time.
Table BuildPhaseTable(const std::vector<obs::PhaseDelta>& phases,
                      double total_seconds);
void PrintPhaseTable(const std::vector<obs::PhaseDelta>& phases,
                     double total_seconds);

// Cause histogram (journal provenance): one row per cause with its count
// and share. Used by bench_online's final summary next to the phase
// breakdown; `counts` entries with zero count are skipped.
Table BuildCauseTable(
    const std::vector<std::pair<obs::Cause, std::int64_t>>& counts);
void PrintCauseTable(
    const std::vector<std::pair<obs::Cause, std::int64_t>>& counts);

// SLO attainment table (obs/slo.h snapshot rows): per-app admitted /
// within-objective / violation counts and exact wait-tick percentiles,
// worst app first, plus a cumulative "(total)" row. Printed by
// bench_online / trace_replay next to the cause histogram.
Table BuildSloTable(const obs::SloSnapshot& snapshot);
void PrintSloTable(const obs::SloSnapshot& snapshot);

// Watchdog alert summary (obs/watchdog.h snapshot): one row per alert in
// id order — kind, severity, subject, open/resolve ticks and the latest
// evidence. Printed by bench_online / drill_runner end-of-run with
// --watchdog; empty snapshots render a single "(no alerts)" row.
Table BuildAlertTable(const obs::WatchdogSnapshot& snapshot);
void PrintAlertTable(const obs::WatchdogSnapshot& snapshot);

// One per-tick time-series sample (bench_online --timeseries).
struct TimeSeriesPoint {
  std::int64_t tick = 0;
  std::size_t pending = 0;        // pending pods before the resolve
  std::size_t bindings = 0;       // new bindings this tick
  std::size_t unschedulable = 0;  // give-ups this tick
  std::size_t migrations = 0;
  std::size_t preemptions = 0;
  std::size_t used_machines = 0;
  double avg_util_pct = 0.0;   // mean dominant share over used machines
  double frag_pct = 0.0;       // 100 - avg_util_pct on used machines
  double wall_seconds = 0.0;   // resolve wall time
  double phase_seconds = 0.0;  // exclusive-phase coverage of the resolve
  // Lifecycle / SLO columns (ResolverOptions::lifecycle; exact ticks).
  double slo_attainment_pct = 100.0;   // cumulative within/(within+bad)
  std::int64_t pending_age_p99 = 0;    // p99 age of still-open spans
  // Watchdog columns (--watchdog): alerts open after this tick, total and
  // per kind (obs::AlertKind order).
  std::int64_t alerts_open = 0;
  std::array<std::int64_t, static_cast<std::size_t>(obs::AlertKind::kCount)>
      alerts_open_by_kind{};
};

// Streams one row per Append() to `path` (truncating on open). The format
// follows the extension: ".jsonl" writes one JSON object per line, anything
// else CSV with a leading header row.
class TimeSeriesWriter {
 public:
  explicit TimeSeriesWriter(const std::string& path);

  // False (with a logged error) when the file could not be opened.
  [[nodiscard]] bool ok() const { return static_cast<bool>(os_); }
  // False on I/O failure.
  bool Append(const TimeSeriesPoint& point);

 private:
  std::ofstream os_;
  bool jsonl_ = false;
  bool wrote_header_ = false;
};

}  // namespace aladdin::sim

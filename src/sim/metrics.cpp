#include "sim/metrics.h"

namespace aladdin::sim {

double RunMetrics::EfficiencyVs(std::size_t best_machines) const {
  // Eq. 10: efficiency_i = num(i) / min{num(...)} - 1 (0 = best; higher =
  // proportionally more machines than the best scheduler needed).
  if (best_machines == 0 || used_machines == 0) return 0.0;
  return static_cast<double>(used_machines) /
             static_cast<double>(best_machines) -
         1.0;
}

RunMetrics ComputeRunMetrics(const std::string& scheduler_name,
                             const cluster::ClusterState& state,
                             ScheduleOutcome outcome, double wall_seconds) {
  RunMetrics m;
  m.scheduler = scheduler_name;
  m.audit = cluster::Audit(state);
  m.util = state.Utilization();
  m.used_machines = m.util.used_machines;
  m.migrations = state.migrations();
  m.preemptions = state.preemptions();
  m.wall_seconds = wall_seconds;
  const auto total = state.containers().size();
  if (total > 0) {
    // Eq. 11: average placement latency per container.
    m.latency_ms_per_container =
        wall_seconds * 1e3 / static_cast<double>(total);
  }
  m.outcome = std::move(outcome);
  return m;
}

}  // namespace aladdin::sim

// Watchdog drills: deterministic pathology-injection scenarios that drive
// a k8s::ClusterSimulator until a specific watchdog detector fires — and a
// quiet baseline that must fire nothing. Each scenario enables exactly the
// detectors it is designed to trip (the per-scenario mask), so the report's
// "fired only the expected kinds" verdict is a stable CI gate instead of a
// bet on every other detector's thresholds; the baseline runs with all six
// detectors armed and asserts a zero-alert stream.
//
// Determinism: every scenario is a fixed event script over the simulator's
// discrete clock — no randomness, no wall-clock dependence — so the alert
// stream (and its fingerprint) is bit-identical across runs, thread counts
// and re-runs in CI.
//
// Layering: sits above k8s (the harness needs the full resolver stack),
// which is why this lives in the aladdin_drill library rather than
// aladdin_sim despite the sim/ directory and namespace.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/watchdog.h"

namespace aladdin::sim {

// One pathology script per watchdog detector, plus the quiet baseline.
enum class DrillScenario : std::uint8_t {  // analyze:closed_enum
  kBaseline = 0,        // steady mixed load; all detectors armed, 0 alerts
  kDrainStorm,          // rolling node drains -> kAppFlapping
  kRoutingSkew,         // one giant app, hash routing -> kShardImbalance
  kArrivalBurst,        // sudden long-lived burst -> kSolveRegression
  kDeadlineStarvation,  // unplaceable backlog -> kSloBurnRate +
                        //                        kPendingAgeDrift
  kCauseShift,          // give-up mix flips cpu->mem -> kCauseMixShift
  kCount
};

[[nodiscard]] const char* DrillScenarioName(DrillScenario scenario);
// Inverse of DrillScenarioName; returns kCount for unknown names.
[[nodiscard]] DrillScenario DrillScenarioFromName(const std::string& name);

struct DrillOptions {
  DrillScenario scenario = DrillScenario::kBaseline;
  // Simulated ticks. Each scenario has a floor below which its pathology
  // cannot complete; Run() clamps up to it.
  std::int64_t ticks = 48;
  // Shard count for the resolver (kRoutingSkew forces >= 4).
  int shards = 0;
  // Solver threads (results are bit-identical for any value).
  int threads = 1;
};

struct DrillReport {
  DrillScenario scenario = DrillScenario::kBaseline;
  std::int64_t ticks = 0;
  // Alert kinds this scenario is designed to fire (empty for kBaseline).
  std::vector<obs::AlertKind> expected;
  // Verdicts: every expected kind opened at least one alert / no alert of
  // any other kind opened. The baseline passes with both true and
  // opened_total == 0.
  bool fired_expected = false;
  bool fired_only_expected = false;
  // Final watchdog state + determinism fingerprint.
  obs::WatchdogSnapshot watchdog;
  std::uint64_t fingerprint = 0;
};

// Alert kinds DrillReport::expected carries for `scenario`.
[[nodiscard]] std::vector<obs::AlertKind> DrillExpectedKinds(
    DrillScenario scenario);

// Runs one scenario to completion and reports the verdict.
[[nodiscard]] DrillReport RunDrill(const DrillOptions& options);

// Human-readable one-scenario summary (drill_runner / bench logs).
[[nodiscard]] std::string RenderDrillReport(const DrillReport& report);

}  // namespace aladdin::sim

#include "sim/scheduler.h"

// Interface anchor TU.
namespace aladdin::sim {}

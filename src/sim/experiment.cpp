#include "sim/experiment.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "obs/trace.h"

namespace aladdin::sim {

RunMetrics RunExperiment(Scheduler& scheduler, const trace::Workload& workload,
                         const ExperimentConfig& config) {
  const cluster::Topology topology =
      trace::MakeAlibabaCluster(config.machines);
  return RunExperimentOn(scheduler, workload, topology, config.order,
                         config.arrival_seed);
}

RunMetrics RunExperimentOn(Scheduler& scheduler,
                           const trace::Workload& workload,
                           const cluster::Topology& topology,
                           trace::ArrivalOrder order,
                           std::uint64_t arrival_seed) {
  ALADDIN_TRACE_SCOPE("sim/replay");
  const auto arrival =
      trace::MakeArrivalSequence(workload, order, arrival_seed);
  cluster::ClusterState state = workload.MakeState(topology);

  ScheduleRequest request;
  request.workload = &workload;
  request.arrival = &arrival;

  WallTimer timer;
  ScheduleOutcome outcome = scheduler.Schedule(request, state);
  const double wall = timer.ElapsedSeconds();

  if (!state.VerifyResourceInvariant()) {
    LOG_ERROR << scheduler.name()
              << " corrupted cluster state (resource invariant violated)";
  }
  return ComputeRunMetrics(scheduler.name(), state, std::move(outcome), wall);
}

trace::Workload MakeBenchWorkload(double scale, std::uint64_t seed) {
  trace::AlibabaTraceOptions options;
  options.scale = scale;
  options.seed = seed;
  return trace::GenerateAlibabaLike(options);
}

std::size_t BenchMachineCount(double scale) {
  return std::max<std::size_t>(
      16, static_cast<std::size_t>(std::llround(10000.0 * scale)));
}

std::vector<RunMetrics> RunSweep(std::vector<std::function<RunMetrics()>> jobs,
                                 std::size_t threads) {
  std::vector<RunMetrics> results(jobs.size());
  ThreadPool pool(threads);
  ParallelFor(pool, 0, jobs.size(),
              [&](std::size_t i) { results[i] = jobs[i](); });
  return results;
}

}  // namespace aladdin::sim

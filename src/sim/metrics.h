// Derived metrics for one scheduling run — the quantities the paper's
// figures plot.
#pragma once

#include <cstdint>

#include "cluster/audit.h"
#include "sim/scheduler.h"

namespace aladdin::sim {

struct RunMetrics {
  std::string scheduler;
  cluster::AuditReport audit;          // Fig. 9: violations / causes
  cluster::UtilizationSummary util;    // Fig. 11: per-machine shares
  std::size_t used_machines = 0;       // Fig. 10
  std::int64_t migrations = 0;         // Fig. 13(b)
  std::int64_t preemptions = 0;        // Fig. 13(b)
  double wall_seconds = 0.0;           // Fig. 13(a): total algorithm overhead
  double latency_ms_per_container = 0.0;  // Fig. 12 (Eq. 11)
  ScheduleOutcome outcome;             // effort counters

  // Eq. 10 needs the best machine count among compared schedulers; computed
  // by the reporter across a set of RunMetrics.
  [[nodiscard]] double EfficiencyVs(std::size_t best_machines) const;
};

// Audits `state` after `scheduler` ran and fills every derived field.
RunMetrics ComputeRunMetrics(const std::string& scheduler_name,
                             const cluster::ClusterState& state,
                             ScheduleOutcome outcome, double wall_seconds);

}  // namespace aladdin::sim

// The scheduler abstraction every engine implements (Aladdin and the three
// baselines), plus the outcome record the experiment driver consumes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/state.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "trace/arrival.h"
#include "trace/workload.h"

namespace aladdin::sim {

struct ScheduleRequest {
  const trace::Workload* workload = nullptr;
  // Submission order of all containers (the CM submits LLAs simultaneously;
  // this is the order they hit the queue, §V.C).
  const std::vector<cluster::ContainerId>* arrival = nullptr;
};

struct ScheduleOutcome {
  // Containers the scheduler gave up on. Everything else is placed in the
  // ClusterState it mutated.
  std::vector<cluster::ContainerId> unplaced;
  // Parallel to `unplaced`: why each container could not be admitted,
  // diagnosed against the final cluster state. Aladdin fills structured
  // causes (capacity vs anti-affinity, obs/journal.h); baselines report
  // obs::Cause::kBaselineUnplaced.
  std::vector<obs::Cause> unplaced_causes;

  // Engine-reported effort counters (instrumentation, not trusted metrics —
  // violations are recounted by the auditor).
  std::int64_t explored_paths = 0;  // machine probes / arcs examined
  std::int64_t rounds = 0;          // scheduling rounds (Firmament) / passes
  std::int64_t il_prunes = 0;       // isomorphism-limiting skips (Aladdin)
  std::int64_t dl_stops = 0;        // depth-limiting terminations (Aladdin)

  // Where the wall time went, from the obs phase registry (empty unless
  // metrics were armed — see obs/runtime.h). Exclusive entries partition
  // the call; nested ones (core/find_machine, flow/*) overlap them.
  std::vector<obs::PhaseDelta> phases;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  // Schedules every container in `request.arrival` onto `state` (which must
  // be empty unless the engine documents incremental use). Implementations
  // must leave `state` resource-consistent; anti-affinity may be violated by
  // engines that trade violations for packing (Medea).
  virtual ScheduleOutcome Schedule(const ScheduleRequest& request,
                                   cluster::ClusterState& state) = 0;
};

}  // namespace aladdin::sim

#include "sim/drill.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

#include "cluster/resources.h"
#include "common/check.h"
#include "k8s/simulator.h"

namespace aladdin::sim {

namespace {

constexpr const char* kScenarioNames[] = {
    "baseline",       "drain_storm",         "routing_skew",
    "arrival_burst",  "deadline_starvation", "cause_shift",
};
static_assert(sizeof(kScenarioNames) / sizeof(kScenarioNames[0]) ==
                  static_cast<std::size_t>(DrillScenario::kCount),
              "kScenarioNames out of sync with DrillScenario");

void AppendF(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out.append(buf, std::min<std::size_t>(n, sizeof(buf) - 1));
}

// Arms exactly the detectors `scenario` is designed to trip. The baseline
// keeps everything armed — its verdict is that nothing fires anyway.
obs::WatchdogOptions MaskFor(DrillScenario scenario) {
  obs::WatchdogOptions options;
  if (scenario == DrillScenario::kBaseline) return options;
  options.slo_burn = false;
  options.pending_drift = false;
  options.app_flapping = false;
  options.shard_imbalance = false;
  options.solve_regression = false;
  options.cause_mix = false;
  for (const obs::AlertKind kind : DrillExpectedKinds(scenario)) {
    switch (kind) {
      case obs::AlertKind::kSloBurnRate:
        options.slo_burn = true;
        break;
      case obs::AlertKind::kPendingAgeDrift:
        options.pending_drift = true;
        break;
      case obs::AlertKind::kAppFlapping:
        options.app_flapping = true;
        break;
      case obs::AlertKind::kShardImbalance:
        options.shard_imbalance = true;
        break;
      case obs::AlertKind::kSolveRegression:
        options.solve_regression = true;
        break;
      case obs::AlertKind::kCauseMixShift:
        options.cause_mix = true;
        break;
      case obs::AlertKind::kCount:
        break;
    }
  }
  return options;
}

k8s::ResolverOptions BaseResolverOptions(const DrillOptions& options) {
  k8s::ResolverOptions resolver;
  resolver.watchdog = true;
  resolver.watchdog_options = MaskFor(options.scenario);
  resolver.shards = options.shards;
  resolver.aladdin.threads = options.threads;
  resolver.aladdin.enable_compaction = false;
  return resolver;
}

// Steady mixed load, generously provisioned: every pod places the tick it
// arrives, nothing is preempted, nothing gives up — all six detectors stay
// quiet or the baseline gate fails.
void RunBaseline(k8s::ClusterSimulator& sim, std::int64_t ticks) {
  sim.AddNodes(8, cluster::ResourceVector::Cores(16, 32));
  k8s::PodSpec web;
  web.app = "web";
  web.requests = cluster::ResourceVector::Cores(1, 2);
  sim.SubmitDeployment("web", 8, web);
  for (std::int64_t t = 0; t < ticks; ++t) {
    if (t > 0 && t % 4 == 0) {
      sim.SubmitDeployment("web", 1, web);
      sim.SubmitBatchJob("batch", 4, cluster::ResourceVector::Cores(1, 1),
                         /*lifetime_ticks=*/2);
    }
    sim.Tick();
  }
}

// Rolling node drains: every other tick one node is removed (its pods
// re-arrive as fresh lifecycle epochs — the flapping signal) and a
// replacement is added so capacity never actually shrinks.
void RunDrainStorm(k8s::ClusterSimulator& sim, std::int64_t ticks) {
  std::vector<std::string> nodes =
      sim.AddNodes(6, cluster::ResourceVector::Cores(8, 16));
  k8s::PodSpec spec;
  spec.app = "flappy";
  spec.requests = cluster::ResourceVector::Cores(2, 4);
  sim.SubmitDeployment("flappy", 12, spec);
  std::size_t drain_cursor = 0;
  for (std::int64_t t = 0; t < ticks; ++t) {
    if (t >= 4 && t % 2 == 0) {
      sim.RemoveNode(nodes[drain_cursor]);
      nodes.erase(nodes.begin() +
                  static_cast<std::ptrdiff_t>(drain_cursor));
      const std::vector<std::string> added =
          sim.AddNodes(1, cluster::ResourceVector::Cores(8, 16));
      nodes.insert(nodes.end(), added.begin(), added.end());
      drain_cursor = (drain_cursor + 1) % nodes.size();
    }
    sim.Tick();
  }
}

// One application, hash routing, K = 4: every replica lands on the app's
// home shard while the others idle, so the hottest shard's utilization
// dwarfs the median (and late spill rounds add the spill-ratio signal).
void RunRoutingSkew(k8s::ClusterSimulator& sim, std::int64_t ticks) {
  sim.AddNodes(16, cluster::ResourceVector::Cores(16, 32));
  k8s::PodSpec spec;
  spec.app = "mono";
  spec.requests = cluster::ResourceVector::Cores(2, 4);
  sim.SubmitDeployment("mono", 16, spec);
  for (std::int64_t t = 0; t < ticks; ++t) {
    // A replica every tick keeps the long-lived solve (and with it the
    // per-shard load stats the detector consumes) running continuously.
    if (t > 0) sim.SubmitDeployment("mono", 1, spec);
    sim.Tick();
  }
}

// Quiet drip, then a sustained arrival burst: the solver's deterministic
// effort counters jump to a large multiple of their trailing mean for
// several consecutive ticks.
void RunArrivalBurst(k8s::ClusterSimulator& sim, std::int64_t ticks) {
  sim.AddNodes(16, cluster::ResourceVector::Cores(32, 64));
  k8s::PodSpec drip;
  drip.app = "drip";
  drip.requests = cluster::ResourceVector::Cores(1, 2);
  k8s::PodSpec burst;
  burst.app = "burst";
  burst.requests = cluster::ResourceVector::Cores(1, 2);
  for (std::int64_t t = 0; t < ticks; ++t) {
    sim.SubmitDeployment("drip", 1, drip);
    if (t >= 20 && t < 24) sim.SubmitDeployment("burst", 200, burst);
    sim.Tick();
  }
}

// Warm phase of instant placements, then a backlog of oversized pods that
// can never fit: pending ages climb past the objective (drift) and the
// once-per-epoch violation flags burn the error budget (SLO burn).
void RunDeadlineStarvation(k8s::ClusterSimulator& sim, std::int64_t ticks) {
  sim.AddNodes(4, cluster::ResourceVector::Cores(8, 16));
  k8s::PodSpec svc;
  svc.app = "svc";
  svc.requests = cluster::ResourceVector::Cores(1, 2);
  k8s::PodSpec greedy;
  greedy.app = "greedy";
  greedy.requests = cluster::ResourceVector::Cores(4, 8);
  for (std::int64_t t = 0; t < ticks; ++t) {
    if (t < 8) sim.SubmitDeployment("svc", 2, svc);
    if (t == 8) sim.SubmitDeployment("greedy", 40, greedy);
    if (t > 8) sim.SubmitDeployment("greedy", 2, greedy);
    sim.Tick();
  }
}

// A backlog failing on CPU, then an equal backlog failing on memory: the
// give-up cause histogram flips and its L1 distance to the trailing
// window crosses the permille threshold. Short-lived pods make the
// diagnosis deterministic (DiagnoseShortLived is a pure resource check).
void RunCauseShift(k8s::ClusterSimulator& sim, std::int64_t ticks) {
  sim.AddNodes(2, cluster::ResourceVector::Cores(8, 8));
  for (std::int64_t t = 0; t < ticks; ++t) {
    if (t == 0) {
      // 12 cores can never fit on an 8-core node: kCapacityExhaustedCpu,
      // re-diagnosed every tick while the backlog pends.
      sim.SubmitBatchJob("cpuhog", 40, cluster::ResourceVector::Cores(12, 1),
                         /*lifetime_ticks=*/4);
    }
    if (t == 20) {
      // CPU fits, 12 GiB never does: kCapacityExhaustedMem.
      sim.SubmitBatchJob("memhog", 40, cluster::ResourceVector::Cores(1, 12),
                         /*lifetime_ticks=*/4);
    }
    sim.Tick();
  }
}

std::int64_t MinTicks(DrillScenario scenario) {
  switch (scenario) {
    case DrillScenario::kBaseline:
      return 8;
    case DrillScenario::kDrainStorm:
      return 24;
    case DrillScenario::kRoutingSkew:
      return 16;
    case DrillScenario::kArrivalBurst:
    case DrillScenario::kDeadlineStarvation:
    case DrillScenario::kCauseShift:
      return 32;
    case DrillScenario::kCount:
      break;
  }
  return 8;
}

}  // namespace

const char* DrillScenarioName(DrillScenario scenario) {
  const auto i = static_cast<std::size_t>(scenario);
  if (i >= static_cast<std::size_t>(DrillScenario::kCount)) return "?";
  return kScenarioNames[i];
}

DrillScenario DrillScenarioFromName(const std::string& name) {
  for (std::size_t i = 0;
       i < static_cast<std::size_t>(DrillScenario::kCount); ++i) {
    if (name == kScenarioNames[i]) return static_cast<DrillScenario>(i);
  }
  return DrillScenario::kCount;
}

std::vector<obs::AlertKind> DrillExpectedKinds(DrillScenario scenario) {
  switch (scenario) {
    case DrillScenario::kBaseline:
      return {};
    case DrillScenario::kDrainStorm:
      return {obs::AlertKind::kAppFlapping};
    case DrillScenario::kRoutingSkew:
      return {obs::AlertKind::kShardImbalance};
    case DrillScenario::kArrivalBurst:
      return {obs::AlertKind::kSolveRegression};
    case DrillScenario::kDeadlineStarvation:
      return {obs::AlertKind::kSloBurnRate, obs::AlertKind::kPendingAgeDrift};
    case DrillScenario::kCauseShift:
      return {obs::AlertKind::kCauseMixShift};
    case DrillScenario::kCount:
      break;
  }
  return {};
}

DrillReport RunDrill(const DrillOptions& options) {
  ALADDIN_CHECK(options.scenario != DrillScenario::kCount)
      << "invalid drill scenario";
  DrillOptions effective = options;
  effective.ticks = std::max(options.ticks, MinTicks(options.scenario));
  if (options.scenario == DrillScenario::kRoutingSkew) {
    effective.shards = std::max(options.shards, 4);
  }
  k8s::ResolverOptions resolver = BaseResolverOptions(effective);
  if (options.scenario == DrillScenario::kRoutingSkew) {
    resolver.routing = core::ShardRouting::kHash;
  }
  k8s::ClusterSimulator sim(resolver);
  switch (effective.scenario) {
    case DrillScenario::kBaseline:
      RunBaseline(sim, effective.ticks);
      break;
    case DrillScenario::kDrainStorm:
      RunDrainStorm(sim, effective.ticks);
      break;
    case DrillScenario::kRoutingSkew:
      RunRoutingSkew(sim, effective.ticks);
      break;
    case DrillScenario::kArrivalBurst:
      RunArrivalBurst(sim, effective.ticks);
      break;
    case DrillScenario::kDeadlineStarvation:
      RunDeadlineStarvation(sim, effective.ticks);
      break;
    case DrillScenario::kCauseShift:
      RunCauseShift(sim, effective.ticks);
      break;
    case DrillScenario::kCount:
      break;
  }

  DrillReport report;
  report.scenario = effective.scenario;
  report.ticks = effective.ticks;
  report.expected = DrillExpectedKinds(effective.scenario);
  report.watchdog = sim.resolver().watchdog().Snapshot();
  report.fingerprint = sim.resolver().watchdog().Fingerprint();
  report.fired_expected = true;
  report.fired_only_expected = true;
  for (std::size_t k = 0;
       k < static_cast<std::size_t>(obs::AlertKind::kCount); ++k) {
    const auto kind = static_cast<obs::AlertKind>(k);
    const bool expected =
        std::find(report.expected.begin(), report.expected.end(), kind) !=
        report.expected.end();
    const bool fired = report.watchdog.opened_by_kind[k] > 0;
    if (expected && !fired) report.fired_expected = false;
    if (!expected && fired) report.fired_only_expected = false;
  }
  return report;
}

std::string RenderDrillReport(const DrillReport& report) {
  std::string out;
  AppendF(out, "drill %s: %lld ticks, %lld alert(s) opened, %lld resolved\n",
          DrillScenarioName(report.scenario),
          static_cast<long long>(report.ticks),
          static_cast<long long>(report.watchdog.opened_total),
          static_cast<long long>(report.watchdog.resolved_total));
  for (std::size_t k = 0;
       k < static_cast<std::size_t>(obs::AlertKind::kCount); ++k) {
    if (report.watchdog.opened_by_kind[k] == 0) continue;
    AppendF(out, "  %-18s opened=%lld\n",
            obs::AlertKindName(static_cast<obs::AlertKind>(k)),
            static_cast<long long>(report.watchdog.opened_by_kind[k]));
  }
  std::string expected;
  for (const obs::AlertKind kind : report.expected) {
    if (!expected.empty()) expected += ',';
    expected += obs::AlertKindName(kind);
  }
  AppendF(out, "  expected=[%s] fired_expected=%s only_expected=%s\n",
          expected.c_str(), report.fired_expected ? "yes" : "NO",
          report.fired_only_expected ? "yes" : "NO");
  AppendF(out, "  fingerprint=%016llx\n",
          static_cast<unsigned long long>(report.fingerprint));
  return out;
}

}  // namespace aladdin::sim

#include "trace/serialize.h"

#include <fstream>
#include <ostream>

#include "common/csv.h"
#include "common/log.h"
#include "common/strings.h"

namespace aladdin::trace {

void SaveWorkload(const Workload& workload, std::ostream& os) {
  os << "#applications\n";
  CsvWriter writer(os);
  for (const auto& app : workload.applications()) {
    writer.Field(static_cast<std::int64_t>(app.id.value()))
        .Field(app.name)
        .Field(static_cast<std::int64_t>(app.containers.size()))
        .Field(app.request.cpu_millis())
        .Field(app.request.mem_mib())
        .Field(static_cast<std::int64_t>(app.priority))
        .Field(static_cast<std::int64_t>(app.anti_affinity_within ? 1 : 0));
    writer.EndRow();
  }
  os << "#rules\n";
  for (const auto& rule : workload.constraints().rules()) {
    if (rule.a == rule.b) continue;  // implied by anti_within
    writer.Field(static_cast<std::int64_t>(rule.a.value()))
        .Field(static_cast<std::int64_t>(rule.b.value()));
    writer.EndRow();
  }
}

bool SaveWorkloadToFile(const Workload& workload, const std::string& path) {
  std::ofstream os(path);
  if (!os) {
    LOG_ERROR << "cannot open " << path << " for writing";
    return false;
  }
  SaveWorkload(workload, os);
  return static_cast<bool>(os);
}

bool LoadWorkload(std::istream& is, Workload& out) {
  out = Workload();
  enum class Section { kNone, kApplications, kRules } section = Section::kNone;
  // Rows come through the CSV reader so quoted fields (application names
  // containing commas) parse exactly as SaveWorkload wrote them.
  CsvReader csv(is);
  std::vector<std::string> fields;
  std::size_t line_no = 0;
  while (csv.NextRow(fields)) {
    ++line_no;
    if (fields.size() == 1) {
      const auto trimmed = Trim(fields[0]);
      if (trimmed.empty()) continue;
      if (trimmed == "#applications") {
        section = Section::kApplications;
        continue;
      }
      if (trimmed == "#rules") {
        section = Section::kRules;
        continue;
      }
    }
    if (section == Section::kApplications) {
      if (fields.size() != 7) {
        LOG_ERROR << "line " << line_no << ": expected 7 fields";
        return false;
      }
      std::int64_t id, count, cpu, mem, priority, anti;
      if (!ParseInt64(fields[0], id) || !ParseInt64(fields[2], count) ||
          !ParseInt64(fields[3], cpu) || !ParseInt64(fields[4], mem) ||
          !ParseInt64(fields[5], priority) || !ParseInt64(fields[6], anti) ||
          count < 1) {
        LOG_ERROR << "line " << line_no << ": malformed application row";
        return false;
      }
      // Ids must be dense and in order — they index the tables directly.
      if (id != static_cast<std::int64_t>(out.application_count())) {
        LOG_ERROR << "line " << line_no << ": non-dense application id " << id;
        return false;
      }
      out.AddApplication(fields[1], static_cast<std::size_t>(count),
                         cluster::ResourceVector(cpu, mem),
                         static_cast<cluster::Priority>(priority), anti != 0);
    } else if (section == Section::kRules) {
      if (fields.size() != 2) {
        LOG_ERROR << "line " << line_no << ": expected 2 fields";
        return false;
      }
      std::int64_t a, b;
      if (!ParseInt64(fields[0], a) || !ParseInt64(fields[1], b) || a < 0 ||
          b < 0 || a >= static_cast<std::int64_t>(out.application_count()) ||
          b >= static_cast<std::int64_t>(out.application_count())) {
        LOG_ERROR << "line " << line_no << ": malformed rule row";
        return false;
      }
      out.AddAntiAffinity(
          cluster::ApplicationId(static_cast<std::int32_t>(a)),
          cluster::ApplicationId(static_cast<std::int32_t>(b)));
    } else {
      LOG_ERROR << "line " << line_no << ": data before a section header";
      return false;
    }
  }
  return true;
}

bool LoadWorkloadFromFile(const std::string& path, Workload& out) {
  std::ifstream is(path);
  if (!is) {
    LOG_ERROR << "cannot open " << path;
    return false;
  }
  return LoadWorkload(is, out);
}

void SaveTopology(const cluster::Topology& topology, std::ostream& os) {
  os << "#machines\n";
  CsvWriter writer(os);
  for (const auto& machine : topology.machines()) {
    writer.Field(static_cast<std::int64_t>(machine.subcluster.value()))
        .Field(static_cast<std::int64_t>(machine.rack.value()))
        .Field(machine.capacity.cpu_millis())
        .Field(machine.capacity.mem_mib());
    writer.EndRow();
  }
}

bool SaveTopologyToFile(const cluster::Topology& topology,
                        const std::string& path) {
  std::ofstream os(path);
  if (!os) {
    LOG_ERROR << "cannot open " << path << " for writing";
    return false;
  }
  SaveTopology(topology, os);
  return static_cast<bool>(os);
}

bool LoadTopology(std::istream& is, cluster::Topology& out) {
  out = cluster::Topology();
  CsvReader csv(is);
  std::vector<std::string> fields;
  bool in_section = false;
  std::size_t line_no = 0;
  // Indices as written by SaveTopology are dense and non-decreasing, so new
  // racks / sub-clusters appear exactly when the index grows by one.
  std::int64_t next_sub = 0;
  std::int64_t next_rack = 0;
  cluster::SubClusterId sub = cluster::SubClusterId::Invalid();
  cluster::RackId rack = cluster::RackId::Invalid();
  while (csv.NextRow(fields)) {
    ++line_no;
    if (fields.size() == 1 && Trim(fields[0]) == "#machines") {
      in_section = true;
      continue;
    }
    if (!in_section || fields.size() != 4) {
      LOG_ERROR << "topology line " << line_no << ": malformed row";
      return false;
    }
    std::int64_t sub_idx, rack_idx, cpu, mem;
    if (!ParseInt64(fields[0], sub_idx) || !ParseInt64(fields[1], rack_idx) ||
        !ParseInt64(fields[2], cpu) || !ParseInt64(fields[3], mem) ||
        cpu < 0 || mem < 0) {
      LOG_ERROR << "topology line " << line_no << ": bad values";
      return false;
    }
    if (sub_idx == next_sub) {
      sub = out.AddSubCluster();
      ++next_sub;
    } else if (sub_idx != next_sub - 1) {
      LOG_ERROR << "topology line " << line_no << ": non-dense sub-cluster";
      return false;
    }
    if (rack_idx == next_rack) {
      rack = out.AddRack(sub);
      ++next_rack;
    } else if (rack_idx != next_rack - 1) {
      LOG_ERROR << "topology line " << line_no << ": non-dense rack";
      return false;
    }
    out.AddMachine(rack, cluster::ResourceVector(cpu, mem));
  }
  return true;
}

bool LoadTopologyFromFile(const std::string& path, cluster::Topology& out) {
  std::ifstream is(path);
  if (!is) {
    LOG_ERROR << "cannot open " << path;
    return false;
  }
  return LoadTopology(is, out);
}

}  // namespace aladdin::trace

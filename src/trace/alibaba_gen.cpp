#include "trace/alibaba_gen.h"

#include <algorithm>
#include <cmath>
#include <span>
#include <string>
#include <vector>

#include "common/log.h"
#include "common/rng.h"

namespace aladdin::trace {

namespace {

// Per-container CPU request classes, in cores (fractional expressed in
// millicores). Heavily skewed toward small requests, as in production LLA
// traces; the resulting mean (~1.7 cores) reproduces the paper's regime of
// sub-50% average machine utilisation at Aladdin's machine counts (§V.D).
struct RequestClass {
  std::int64_t cpu_millis;
  double weight;
};
constexpr RequestClass kNormalRequests[] = {
    {500, 0.25}, {1000, 0.36}, {2000, 0.19},
    {4000, 0.10}, {8000, 0.07}, {16000, 0.03},
};
// High-priority LLAs "always have more instances and larger resource
// requirements" (§V.D) — their requests draw from the upper classes.
constexpr RequestClass kPriorityRequests[] = {
    {2000, 0.40}, {4000, 0.30}, {8000, 0.20}, {16000, 0.10},
};

cluster::ResourceVector DrawRequest(Rng& rng, bool high_priority,
                                    std::int64_t app_size,
                                    std::int64_t max_cores,
                                    std::int64_t max_mem_gib) {
  std::vector<double> weights;
  const std::span<const RequestClass> table =
      high_priority ? std::span<const RequestClass>(kPriorityRequests)
                    : std::span<const RequestClass>(kNormalRequests);
  weights.reserve(table.size());
  for (const auto& rc : table) weights.push_back(rc.weight);
  std::int64_t cpu = table[rng.WeightedIndex(weights)].cpu_millis;
  cpu = std::min(cpu, max_cores * 1000);
  // Per-replica size shrinks as replica count grows (big services run many
  // small replicas); this also bounds total-demand variance — one tail app
  // drawing 16-core replicas would otherwise swing cluster demand by
  // double-digit percents between seeds.
  if (app_size > 200) {
    cpu = std::min<std::int64_t>(cpu, 2000);
  } else if (app_size > 50) {
    cpu = std::min<std::int64_t>(cpu, 4000);
  } else if (app_size > 10) {
    cpu = std::min<std::int64_t>(cpu, 8000);
  }
  // Memory per core varies by workload kind — 1 GiB (compute-bound), 2 GiB
  // (balanced, the machine shape), or 4 GiB (memory-bound) — so the memory
  // dimension genuinely binds for a slice of the containers instead of
  // shadowing CPU; capped at the trace maximum.
  static constexpr std::int64_t kMemPerCoreMib[] = {1024, 2048, 4096};
  std::vector<double> mem_weights = {0.3, 0.5, 0.2};
  const std::int64_t per_core = kMemPerCoreMib[rng.WeightedIndex(mem_weights)];
  const std::int64_t mem_mib =
      std::min(cpu * per_core / 1000, max_mem_gib * 1024);
  return cluster::ResourceVector(cpu, mem_mib);
}

// Application size (container count) distribution fitted to Fig. 8(a):
// 64 % singletons; most of the rest small (Zipf over [2,49]); a thin Zipf
// tail in [50, ~2000]; giants injected separately.
std::int64_t DrawAppSize(Rng& rng, double single_fraction) {
  const double u = rng.UniformDouble();
  if (u < single_fraction) return 1;
  // Within the non-singleton mass: ~84.7 % small, 15.3 % tail; calibrated so
  // the overall mean lands near the paper's 100k/13056 ≈ 7.7.
  if (rng.UniformDouble() < 0.847) {
    return 1 + rng.Zipf(48, 1.1);  // 2 .. 49
  }
  return 49 + rng.Zipf(1951, 1.8);  // 50 .. 2000
}

}  // namespace

std::int64_t AlibabaTraceOptions::ScaledApplications() const {
  return std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::llround(
             static_cast<double>(applications) * scale)));
}

std::int64_t AlibabaTraceOptions::ScaledTargetContainers() const {
  return std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::llround(
             static_cast<double>(target_containers) * scale)));
}

cluster::Topology MakeAlibabaCluster(std::size_t machines) {
  // Homogeneous 32 CPU / 64 GB machines (§V.A).
  return cluster::Topology::Uniform(machines,
                                    cluster::ResourceVector::Cores(32, 64));
}

cluster::Topology MakeHeterogeneousCluster(std::size_t machines,
                                           std::uint64_t seed) {
  Rng rng(seed);
  cluster::Topology topo;
  constexpr std::size_t kMachinesPerRack = 40;
  constexpr std::size_t kRacksPerSubcluster = 10;
  cluster::RackId rack = cluster::RackId::Invalid();
  cluster::SubClusterId sub = cluster::SubClusterId::Invalid();
  for (std::size_t i = 0; i < machines; ++i) {
    if (i % (kMachinesPerRack * kRacksPerSubcluster) == 0) {
      sub = topo.AddSubCluster();
    }
    if (i % kMachinesPerRack == 0) rack = topo.AddRack(sub);
    // SKU mix drawn per machine but deterministic per seed: 50 % standard,
    // 30 % large, 20 % small.
    const double u = rng.UniformDouble();
    cluster::ResourceVector capacity = cluster::ResourceVector::Cores(32, 64);
    if (u >= 0.5 && u < 0.8) {
      capacity = cluster::ResourceVector::Cores(64, 128);
    } else if (u >= 0.8) {
      capacity = cluster::ResourceVector::Cores(16, 32);
    }
    topo.AddMachine(rack, capacity);
  }
  return topo;
}

Workload GenerateAlibabaLike(const AlibabaTraceOptions& options) {
  Rng rng(options.seed);
  Workload workload;

  const std::int64_t n_apps = options.ScaledApplications();
  const std::int64_t target = options.ScaledTargetContainers();

  // --- Pass 1: decide per-application attributes. ------------------------
  struct AppSpec {
    std::int64_t size = 1;
    cluster::Priority priority = 0;
    bool anti_within = false;
    bool giant = false;
    bool heavy_conflicter = false;
  };
  std::vector<AppSpec> specs(static_cast<std::size_t>(n_apps));

  // Giants: "a few LLAs are composed of more than 2,000 containers". Their
  // size scales with the workload so reduced replicas keep the same shape
  // (~2.0–2.6 % of all containers each).
  const std::int64_t n_giants = std::min<std::int64_t>(
      options.giant_apps, std::max<std::int64_t>(1, n_apps / 100));
  for (std::int64_t g = 0; g < n_giants; ++g) {
    auto& spec = specs[static_cast<std::size_t>(g)];
    spec.giant = true;
    const double frac =
        static_cast<double>(rng.UniformInt(options.giant_app_min_size,
                                           options.giant_app_max_size)) /
        static_cast<double>(options.target_containers);
    spec.size = std::max<std::int64_t>(
        2, static_cast<std::int64_t>(std::llround(
               frac * static_cast<double>(target))));
  }
  // No application may exceed ~6 % of the container total: the paper's
  // largest LLAs are ~2.6 % (2,600 of 100k), and a within-anti-affinity app
  // larger than the machine count (= target/10) would be unsatisfiable by
  // pigeonhole at reduced scales.
  const std::int64_t app_size_cap =
      std::max<std::int64_t>(10, target * 6 / 100);
  for (std::int64_t i = n_giants; i < n_apps; ++i) {
    specs[static_cast<std::size_t>(i)].size = std::min(
        app_size_cap, DrawAppSize(rng, options.single_instance_fraction));
  }

  // Calibrate the container total to the (scaled) target within ±2 % so the
  // demand-to-cluster ratio is stable across scales and seeds: trim or grow
  // the multi-container tail (never singletons, never giants — both of
  // those are distributional facts the paper states explicitly).
  {
    auto total = [&specs] {
      std::int64_t sum = 0;
      for (const auto& s : specs) sum += s.size;
      return sum;
    };
    std::vector<std::size_t> multi;
    for (std::size_t i = 0; i < specs.size(); ++i) {
      if (!specs[i].giant && specs[i].size > 1) multi.push_back(i);
    }
    std::sort(multi.begin(), multi.end(), [&](std::size_t a, std::size_t b) {
      return specs[a].size > specs[b].size;
    });
    std::int64_t current = total();
    const std::int64_t tolerance = std::max<std::int64_t>(1, target / 50);
    // Trim the largest tail apps first (proportionally, keeping them large).
    for (std::size_t k = 0; !multi.empty() && current > target + tolerance;
         k = (k + 1) % multi.size()) {
      auto& size = specs[multi[k]].size;
      const std::int64_t cut =
          std::min(current - target, std::max<std::int64_t>(1, size / 8));
      if (size - cut < 2) continue;
      size -= cut;
      current -= cut;
    }
    // Grow the tail round-robin when short, staying below the size cap.
    for (std::size_t k = 0, stuck = 0;
         !multi.empty() && current < target - tolerance &&
         stuck < multi.size();
         k = (k + 1) % multi.size()) {
      auto& size = specs[multi[k]].size;
      if (size >= app_size_cap) {
        ++stuck;
        continue;
      }
      stuck = 0;
      const std::int64_t add = std::min<std::int64_t>(
          {target - current, std::max<std::int64_t>(1, size / 8),
           app_size_cap - size});
      size += add;
      current += add;
    }
  }

  // Priority apps (Fig. 8b: 2,088 / 13,056). Giants lead the list — large
  // high-priority LLAs are exactly the paper's hard cases.
  const auto n_priority = static_cast<std::int64_t>(std::llround(
      options.priority_fraction * static_cast<double>(n_apps)));
  {
    std::int64_t assigned = 0;
    for (auto& spec : specs) {
      if (assigned >= n_priority) break;
      if (spec.giant) {
        spec.priority = 3;
        ++assigned;
      }
    }
    // Remaining priority slots: random apps, classes 1..3 skewed low.
    std::vector<std::size_t> candidates;
    for (std::size_t i = 0; i < specs.size(); ++i) {
      if (specs[i].priority == 0) candidates.push_back(i);
    }
    rng.Shuffle(candidates);
    for (std::size_t i = 0; i < candidates.size() && assigned < n_priority;
         ++i, ++assigned) {
      const double u = rng.UniformDouble();
      specs[candidates[i]].priority = u < 0.70 ? 1 : (u < 0.90 ? 2 : 3);
    }
  }

  // Anti-affinity apps (Fig. 8b: 9,400 / 13,056): within-application
  // spreading. Giants and priority apps are preferentially included.
  const auto n_anti = static_cast<std::int64_t>(std::llround(
      options.anti_affinity_fraction * static_cast<double>(n_apps)));
  {
    std::vector<std::size_t> order(specs.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    rng.Shuffle(order);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       const int ka = (specs[a].giant ? 2 : 0) +
                                      (specs[a].priority > 0 ? 1 : 0);
                       const int kb = (specs[b].giant ? 2 : 0) +
                                      (specs[b].priority > 0 ? 1 : 0);
                       return ka > kb;
                     });
    for (std::int64_t i = 0; i < n_anti && i < n_apps; ++i) {
      specs[order[static_cast<std::size_t>(i)]].anti_within = true;
    }
  }

  // Heavy conflicters: high-priority, large-request apps that may not
  // co-locate with a large container mass (> 5,000 at scale 1.0).
  const std::int64_t n_heavy = std::min<std::int64_t>(
      options.heavy_conflicters, n_giants);
  for (std::int64_t g = 0; g < n_heavy; ++g) {
    specs[static_cast<std::size_t>(g)].heavy_conflicter = true;
  }

  // --- Pass 2: draw requests, calibrate demand, materialise. -------------
  std::vector<cluster::ResourceVector> requests(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    requests[i] = DrawRequest(rng, specs[i].priority > 0, specs[i].size,
                              options.max_request_cores,
                              options.max_request_mem_gib);
  }
  // Calibrate total CPU demand to `target_utilization` of the matching
  // cluster (machines = target/10 at 32 cores each): nudge the biggest
  // contributors down / the smallest up one power-of-two class at a time.
  // Without this, one large app's request draw swings the demand-to-
  // capacity ratio enough to flip experiments between trivial and
  // infeasible across seeds.
  {
    const double capacity_millis = static_cast<double>(target) * 3200.0;
    const auto target_demand = static_cast<std::int64_t>(
        options.target_utilization * capacity_millis);
    auto demand = [&] {
      std::int64_t sum = 0;
      for (std::size_t i = 0; i < specs.size(); ++i) {
        sum += specs[i].size * requests[i].cpu_millis();
      }
      return sum;
    };
    auto set_cpu = [&](std::size_t i, std::int64_t cpu) {
      const std::int64_t mem = std::min(cpu * 2048 / 1000,
                                        options.max_request_mem_gib * 1024);
      requests[i] = cluster::ResourceVector(cpu, mem);
    };
    std::int64_t current = demand();
    for (int guard = 0; guard < 4096; ++guard) {
      if (current > target_demand * 103 / 100) {
        // Shrink the largest contributor whose request can still halve.
        std::size_t best = specs.size();
        std::int64_t best_score = 0;
        for (std::size_t i = 0; i < specs.size(); ++i) {
          if (requests[i].cpu_millis() <= 500) continue;
          const std::int64_t score = specs[i].size * requests[i].cpu_millis();
          if (score > best_score) {
            best_score = score;
            best = i;
          }
        }
        if (best == specs.size()) break;
        current -= specs[best].size * requests[best].cpu_millis() / 2;
        set_cpu(best, requests[best].cpu_millis() / 2);
      } else if (current < target_demand * 97 / 100) {
        // Grow the largest contributor that can still double (fewer, larger
        // nudges converge fast and keep the distribution shape).
        std::size_t best = specs.size();
        std::int64_t best_score = 0;
        for (std::size_t i = 0; i < specs.size(); ++i) {
          const std::int64_t cpu = requests[i].cpu_millis();
          if (cpu * 2 > options.max_request_cores * 1000) continue;
          if (specs[i].size > 10) continue;  // keep the big-app caps intact
          const std::int64_t score = specs[i].size * cpu;
          if (score > best_score) {
            best_score = score;
            best = i;
          }
        }
        if (best == specs.size()) break;
        current += specs[best].size * requests[best].cpu_millis();
        set_cpu(best, requests[best].cpu_millis() * 2);
      } else {
        break;
      }
    }
  }
  for (std::size_t i = 0; i < specs.size(); ++i) {
    workload.AddApplication("lla-" + std::to_string(i),
                            static_cast<std::size_t>(specs[i].size),
                            requests[i], specs[i].priority,
                            specs[i].anti_within);
  }

  // --- Pass 3: cross-application rules. ----------------------------------
  const auto& apps = workload.applications();
  // Cumulative container counts so cross-rule partners can be drawn
  // proportionally to application size — performance interference in the
  // trace concentrates on big LLAs, which is what makes the constraints
  // bind (several apps conflict with thousands of containers, §V.A).
  std::vector<std::int64_t> cumulative(specs.size() + 1, 0);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    cumulative[i + 1] = cumulative[i] + specs[i].size;
  }
  auto draw_partner = [&]() {
    const std::int64_t pick = rng.UniformInt(0, cumulative.back() - 1);
    const auto it =
        std::upper_bound(cumulative.begin(), cumulative.end(), pick);
    return static_cast<std::size_t>(it - cumulative.begin()) - 1;
  };

  // Cross-app anti-affinity over a slice of the AA apps (performance-
  // interference pairs, §II.A). Partners are size-weighted.
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (!specs[i].anti_within || specs[i].giant) continue;
    if (!rng.Bernoulli(options.cross_app_rule_fraction)) continue;
    const std::int64_t rules = rng.UniformInt(1, 3);
    for (std::int64_t r = 0; r < rules; ++r) {
      const std::size_t other = draw_partner();
      if (other == i) continue;
      workload.AddAntiAffinity(apps[i].id, apps[other].id);
    }
  }
  // Heavy conflicters accumulate cross-app rules until the conflicting
  // container mass passes the (scaled) threshold.
  const auto conflict_target = static_cast<std::int64_t>(std::llround(
      static_cast<double>(options.heavy_conflict_containers) * options.scale));
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (!specs[i].heavy_conflicter) continue;
    // "cannot be co-located with at least other 5,000 containers" — the
    // target counts *other* apps' containers, not the app's own replicas.
    auto cross_mass = [&]() {
      std::int64_t mass = workload.constraints().ConflictingContainerCount(
          apps[i].id, apps);
      if (workload.constraints().HasWithinAntiAffinity(apps[i].id)) {
        mass -= static_cast<std::int64_t>(apps[i].containers.size()) - 1;
      }
      return mass;
    };
    std::int64_t guard = 0;
    while (cross_mass() < conflict_target &&
           guard++ < static_cast<std::int64_t>(specs.size()) * 4) {
      const std::size_t other = draw_partner();
      if (other == i || specs[other].giant) continue;
      workload.AddAntiAffinity(apps[i].id, apps[other].id);
    }
  }

  if (options.cpu_only) workload.ProjectCpuOnly();

  LOG_DEBUG << "generated Alibaba-like workload: "
            << workload.application_count() << " apps, "
            << workload.container_count() << " containers (target " << target
            << ")";
  return workload;
}

}  // namespace aladdin::trace

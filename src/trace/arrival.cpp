#include "trace/arrival.h"

#include <algorithm>

#include "common/rng.h"

namespace aladdin::trace {

const char* ArrivalOrderName(ArrivalOrder order) {
  switch (order) {
    case ArrivalOrder::kFifo:
      return "FIFO";
    case ArrivalOrder::kRandom:
      return "random";
    case ArrivalOrder::kHighPriorityFirst:
      return "CHP (high priority first)";
    case ArrivalOrder::kLowPriorityFirst:
      return "CLP (low priority first)";
    case ArrivalOrder::kManyConflictsFirst:
      return "CLA (many anti-affinity first)";
    case ArrivalOrder::kFewConflictsFirst:
      return "CSA (few anti-affinity first)";
  }
  return "?";
}

std::vector<cluster::ContainerId> MakeArrivalSequence(const Workload& workload,
                                                      ArrivalOrder order,
                                                      std::uint64_t seed) {
  std::vector<cluster::ContainerId> sequence;
  sequence.reserve(workload.container_count());
  for (const auto& c : workload.containers()) sequence.push_back(c.id);

  Rng rng(seed);
  if (order == ArrivalOrder::kFifo) return sequence;
  // Shuffle first so equal keys land in seeded-random relative order under
  // the stable sort below.
  rng.Shuffle(sequence);
  if (order == ArrivalOrder::kRandom) return sequence;

  const auto& apps = workload.applications();
  // Per-application sort keys, computed once.
  std::vector<std::int64_t> conflict_mass(apps.size(), -1);
  auto mass_of = [&](cluster::ApplicationId a) {
    auto& slot = conflict_mass[static_cast<std::size_t>(a.value())];
    if (slot < 0) {
      slot = workload.constraints().ConflictingContainerCount(a, apps);
    }
    return slot;
  };
  auto priority_of = [&](cluster::ContainerId c) {
    return workload.container(c).priority;
  };
  auto app_of = [&](cluster::ContainerId c) { return workload.container(c).app; };

  switch (order) {
    case ArrivalOrder::kHighPriorityFirst:
      std::stable_sort(sequence.begin(), sequence.end(),
                       [&](cluster::ContainerId a, cluster::ContainerId b) {
                         return priority_of(a) > priority_of(b);
                       });
      break;
    case ArrivalOrder::kLowPriorityFirst:
      std::stable_sort(sequence.begin(), sequence.end(),
                       [&](cluster::ContainerId a, cluster::ContainerId b) {
                         return priority_of(a) < priority_of(b);
                       });
      break;
    case ArrivalOrder::kManyConflictsFirst:
      std::stable_sort(sequence.begin(), sequence.end(),
                       [&](cluster::ContainerId a, cluster::ContainerId b) {
                         return mass_of(app_of(a)) > mass_of(app_of(b));
                       });
      break;
    case ArrivalOrder::kFewConflictsFirst:
      std::stable_sort(sequence.begin(), sequence.end(),
                       [&](cluster::ContainerId a, cluster::ContainerId b) {
                         return mass_of(app_of(a)) < mass_of(app_of(b));
                       });
      break;
    case ArrivalOrder::kFifo:
    case ArrivalOrder::kRandom:
      break;  // handled above
  }
  return sequence;
}

}  // namespace aladdin::trace

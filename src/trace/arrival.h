// Container arrival orders.
//
// §V.C evaluates four characteristic submission orders; the acronyms are the
// paper's (§V.D): CHP — high priority first, CLP — low priority first,
// CLA — many anti-affinity constraints first, CSA — few anti-affinity
// constraints first. Orders are deterministic: ties break by a seeded
// shuffle so no scheduler can exploit id ordering.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/workload.h"

namespace aladdin::trace {

enum class ArrivalOrder {
  kFifo,              // generation order
  kRandom,            // seeded shuffle
  kHighPriorityFirst, // CHP
  kLowPriorityFirst,  // CLP
  kManyConflictsFirst,// CLA
  kFewConflictsFirst, // CSA
};

const char* ArrivalOrderName(ArrivalOrder order);

// All orders the resource-efficiency experiments sweep (Fig. 10/11/13).
inline constexpr ArrivalOrder kCharacteristicOrders[] = {
    ArrivalOrder::kHighPriorityFirst, ArrivalOrder::kLowPriorityFirst,
    ArrivalOrder::kManyConflictsFirst, ArrivalOrder::kFewConflictsFirst};

// Returns the container ids of `workload` permuted into the given order.
std::vector<cluster::ContainerId> MakeArrivalSequence(const Workload& workload,
                                                      ArrivalOrder order,
                                                      std::uint64_t seed = 1);

}  // namespace aladdin::trace

#include "trace/workload.h"

#include "common/check.h"

namespace aladdin::trace {

cluster::ApplicationId Workload::AddApplication(
    std::string name, std::size_t count, cluster::ResourceVector request,
    cluster::Priority priority, bool anti_affinity_within) {
  ALADDIN_CHECK(count >= 1);
  const cluster::ApplicationId id(
      static_cast<std::int32_t>(applications_.size()));
  cluster::Application app;
  app.id = id;
  app.name = std::move(name);
  app.request = request;
  app.priority = priority;
  app.anti_affinity_within = anti_affinity_within;
  app.containers.reserve(count);  // analyze:allow(A103) one-time sizing at application admission
  for (std::size_t i = 0; i < count; ++i) {
    const cluster::ContainerId cid(
        static_cast<std::int32_t>(containers_.size()));
    containers_.push_back(cluster::Container{cid, id, request, priority});
    app.containers.push_back(cid);
  }
  applications_.push_back(std::move(app));
  constraints_.Resize(applications_.size());
  if (anti_affinity_within) constraints_.AddAntiAffinity(id, id);
  return id;
}

cluster::ContainerId Workload::AddContainer(cluster::ApplicationId app) {
  ALADDIN_CHECK(app.valid() &&
                static_cast<std::size_t>(app.value()) < applications_.size())
      << "AddContainer: unknown application " << app;
  cluster::Application& owner =
      applications_[static_cast<std::size_t>(app.value())];
  const cluster::ContainerId cid(
      static_cast<std::int32_t>(containers_.size()));
  containers_.push_back(
      cluster::Container{cid, app, owner.request, owner.priority});
  owner.containers.push_back(cid);
  return cid;
}

void Workload::AddAntiAffinity(cluster::ApplicationId a,
                               cluster::ApplicationId b) {
  constraints_.AddAntiAffinity(a, b);
  if (a == b) {
    applications_[static_cast<std::size_t>(a.value())].anti_affinity_within =
        true;
  }
}

cluster::ResourceVector Workload::TotalDemand() const {
  cluster::ResourceVector total;
  for (const auto& c : containers_) total += c.request;
  return total;
}

cluster::ClusterState Workload::MakeState(
    const cluster::Topology& topology) const {
  return cluster::ClusterState(topology, containers_, applications_,
                               constraints_);
}

void Workload::ProjectCpuOnly() {
  for (auto& c : containers_) c.request = c.request.CpuOnly();
  for (auto& a : applications_) a.request = a.request.CpuOnly();
}

}  // namespace aladdin::trace

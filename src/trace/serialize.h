// Workload (de)serialisation.
//
// Text format, one file, two sections:
//   #applications
//   id,name,containers,cpu_millis,mem_mib,priority,anti_within
//   #rules
//   app_a,app_b
// Within-app rules are implied by anti_within and not repeated in #rules.
// Round-trips exactly (ids are dense and preserved).
#pragma once

#include <iosfwd>
#include <string>

#include "cluster/topology.h"
#include "trace/workload.h"

namespace aladdin::trace {

void SaveWorkload(const Workload& workload, std::ostream& os);
bool SaveWorkloadToFile(const Workload& workload, const std::string& path);

// Returns false on malformed input (partial reads leave `out` unspecified).
bool LoadWorkload(std::istream& is, Workload& out);
bool LoadWorkloadFromFile(const std::string& path, Workload& out);

// Topology (de)serialisation: one CSV row per machine,
//   subcluster_index,rack_index,cpu_millis,mem_mib
// preceded by a "#machines" header. Rack/sub-cluster indices must be dense
// and non-decreasing (machines are listed in topology order), which is what
// SaveTopology emits. Supports heterogeneous capacities.
void SaveTopology(const cluster::Topology& topology, std::ostream& os);
bool SaveTopologyToFile(const cluster::Topology& topology,
                        const std::string& path);
bool LoadTopology(std::istream& is, cluster::Topology& out);
bool LoadTopologyFromFile(const std::string& path, cluster::Topology& out);

}  // namespace aladdin::trace

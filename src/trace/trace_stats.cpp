#include "trace/trace_stats.h"

#include <algorithm>

namespace aladdin::trace {

WorkloadStats ComputeWorkloadStats(const Workload& workload,
                                   std::int64_t heavy_threshold) {
  WorkloadStats stats;
  stats.applications = workload.application_count();
  stats.containers = workload.container_count();

  std::vector<double> sizes;
  sizes.reserve(stats.applications);
  const auto& apps = workload.applications();
  const auto& constraints = workload.constraints();
  for (const auto& app : apps) {
    const std::size_t size = app.containers.size();
    sizes.push_back(static_cast<double>(size));
    stats.max_app_size = std::max(stats.max_app_size, size);
    if (size == 1) ++stats.single_instance_apps;
    if (size < 50) ++stats.apps_below_50;
    if (size > 2000) ++stats.apps_above_2000;
    if (app.priority > 0) ++stats.apps_with_priority;
    const bool has_aa = app.anti_affinity_within ||
                        !constraints.ConflictsOf(app.id).empty();
    if (has_aa) ++stats.apps_with_anti_affinity;
    stats.max_request = cluster::Max(stats.max_request, app.request);
    if (constraints.ConflictingContainerCount(app.id, apps) >=
        heavy_threshold) {
      ++stats.heavy_conflicter_apps;
    }
  }
  stats.app_size_cdf = BuildCdf(std::move(sizes));
  return stats;
}

}  // namespace aladdin::trace

// Synthetic Alibaba-like LLA trace generator.
//
// The paper replays a proprietary snapshot of an Alibaba production trace
// (§V.A, Fig. 8). That snapshot is not public, so we generate a workload
// fitted to every distributional fact the paper reports:
//   * 13,056 applications, ~100,000 containers;
//   * 64 % of applications have a single container;
//   * 85 % have fewer than 50 containers; a few exceed 2,000;
//   * ~72 % of applications (9,400) carry anti-affinity constraints;
//   * ~16 % (2,088) carry priority constraints;
//   * several high-priority, large-request LLAs conflict with > 5,000
//     containers;
//   * container requests capped at 16 CPUs / 32 GB;
//   * machines homogeneous at 32 CPUs / 64 GB.
// All counts scale linearly through `scale` so benches can run reduced-size
// replicas with the same shape. Generation is deterministic per seed.
#pragma once

#include <cstdint>

#include "trace/workload.h"

namespace aladdin::trace {

struct AlibabaTraceOptions {
  // Linear scale factor over the paper's workload. 1.0 = 13,056 apps /
  // ~100 k containers / sized for a 10,000-machine cluster.
  double scale = 1.0;

  std::uint64_t seed = 42;

  // Paper-reported population figures (at scale 1.0).
  std::int64_t applications = 13056;
  std::int64_t target_containers = 100000;
  double single_instance_fraction = 0.64;   // Fig. 8(a)
  double below_50_fraction = 0.85;          // Fig. 8(a)
  std::int64_t giant_apps = 4;              // "a few LLAs" > 2,000 containers
  std::int64_t giant_app_min_size = 2000;
  std::int64_t giant_app_max_size = 2600;

  double anti_affinity_fraction = 9400.0 / 13056.0;  // Fig. 8(b)
  double priority_fraction = 2088.0 / 13056.0;       // Fig. 8(b)
  // Fraction of anti-affinity apps that also get cross-application rules
  // (partners drawn size-weighted, so conflict mass concentrates on big
  // LLAs as in the trace).
  double cross_app_rule_fraction = 0.25;
  // "several LLAs cannot be co-located with at least other 5,000 containers";
  // count and conflict mass also scale.
  std::int64_t heavy_conflicters = 4;
  std::int64_t heavy_conflict_containers = 8000;

  // Request cap: 16 CPUs / 32 GB (§V.A).
  std::int64_t max_request_cores = 16;
  std::int64_t max_request_mem_gib = 32;

  // Total CPU demand is calibrated to this fraction of the matching
  // cluster's capacity (machines = target_containers/10 at 32 cores each).
  // Keeps the demand-to-capacity ratio stable across scales and seeds so
  // the comparative experiments probe constraint handling, not sampling
  // luck.
  double target_utilization = 0.76;

  // Drop the memory dimension after generation (the evaluation's mode).
  bool cpu_only = true;

  [[nodiscard]] std::int64_t ScaledApplications() const;
  [[nodiscard]] std::int64_t ScaledTargetContainers() const;
};

// The matching homogeneous cluster (32 CPU / 64 GB machines, §V.A).
cluster::Topology MakeAlibabaCluster(std::size_t machines);

// Heterogeneous variant for the paper's future-work direction (§VII,
// "extend the flow-based model to support heterogeneous workloads"): a
// deterministic SKU mix — 50 % standard 32 CPU / 64 GB, 30 % large
// 64 CPU / 128 GB, 20 % small 16 CPU / 32 GB — laid out in homogeneous
// racks per SKU. Total capacity exceeds the homogeneous cluster of equal
// machine count by ~20 %; experiments comparing the two report capacity
// alongside machine counts.
cluster::Topology MakeHeterogeneousCluster(std::size_t machines,
                                           std::uint64_t seed = 5);

Workload GenerateAlibabaLike(const AlibabaTraceOptions& options);

}  // namespace aladdin::trace

// Workload descriptive statistics — the data behind Fig. 8 and the
// generator's self-checks.
#pragma once

#include <cstdint>

#include "common/stats.h"
#include "trace/workload.h"

namespace aladdin::trace {

struct WorkloadStats {
  std::size_t applications = 0;
  std::size_t containers = 0;
  std::size_t apps_with_anti_affinity = 0;  // Fig. 8(b), middle bar
  std::size_t apps_with_priority = 0;       // Fig. 8(b), right bar
  std::size_t single_instance_apps = 0;
  std::size_t apps_below_50 = 0;
  std::size_t max_app_size = 0;
  std::size_t apps_above_2000 = 0;
  // Largest per-container request observed.
  cluster::ResourceVector max_request;
  // Containers belonging to apps with >= `heavy` conflicting containers.
  std::size_t heavy_conflicter_apps = 0;

  // CDF of containers-per-application — Fig. 8(a).
  std::vector<CdfPoint> app_size_cdf;

  [[nodiscard]] double SingleInstanceFraction() const {
    return applications ? static_cast<double>(single_instance_apps) /
                              static_cast<double>(applications)
                        : 0.0;
  }
  [[nodiscard]] double Below50Fraction() const {
    return applications ? static_cast<double>(apps_below_50) /
                              static_cast<double>(applications)
                        : 0.0;
  }
};

WorkloadStats ComputeWorkloadStats(const Workload& workload,
                                   std::int64_t heavy_threshold = 5000);

}  // namespace aladdin::trace

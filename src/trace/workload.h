// A scheduling workload: the application/container tables plus the
// constraint set. Owns the storage that ClusterState and the schedulers
// reference.
#pragma once

#include <string>
#include <vector>

#include "cluster/application.h"
#include "cluster/constraints.h"
#include "cluster/state.h"
#include "cluster/topology.h"

namespace aladdin::trace {

class Workload {
 public:
  Workload() = default;

  // Adds an application with `count` isomorphic containers. Returns its id.
  cluster::ApplicationId AddApplication(std::string name, std::size_t count,
                                        cluster::ResourceVector request,
                                        cluster::Priority priority = 0,
                                        bool anti_affinity_within = false);

  // Appends one more isomorphic container to an existing application
  // (incremental workload growth: pods of a known owner arriving later).
  // Containers are append-only — ids already handed out never move.
  cluster::ContainerId AddContainer(cluster::ApplicationId app);

  // Cross-application anti-affinity rule (a == b for within; usually set via
  // AddApplication's flag instead).
  void AddAntiAffinity(cluster::ApplicationId a, cluster::ApplicationId b);

  [[nodiscard]] const std::vector<cluster::Application>& applications() const {
    return applications_;
  }
  [[nodiscard]] const std::vector<cluster::Container>& containers() const {
    return containers_;
  }
  [[nodiscard]] const cluster::ConstraintSet& constraints() const {
    return constraints_;
  }

  [[nodiscard]] const cluster::Application& application(
      cluster::ApplicationId a) const {
    return applications_[static_cast<std::size_t>(a.value())];
  }
  [[nodiscard]] const cluster::Container& container(
      cluster::ContainerId c) const {
    return containers_[static_cast<std::size_t>(c.value())];
  }

  [[nodiscard]] std::size_t application_count() const {
    return applications_.size();
  }
  [[nodiscard]] std::size_t container_count() const {
    return containers_.size();
  }

  // Sum of all container requests.
  [[nodiscard]] cluster::ResourceVector TotalDemand() const;

  // Fresh empty cluster state bound to this workload's tables.
  [[nodiscard]] cluster::ClusterState MakeState(
      const cluster::Topology& topology) const;

  // Drops the memory dimension of every request (the evaluation's CPU-only
  // mode for a fair comparison with Firmament, §V.A).
  void ProjectCpuOnly();

 private:
  std::vector<cluster::Application> applications_;
  std::vector<cluster::Container> containers_;
  cluster::ConstraintSet constraints_;
};

}  // namespace aladdin::trace

#include "k8s/objects.h"

namespace aladdin::k8s {

const char* PodPhaseName(PodPhase phase) {
  switch (phase) {
    case PodPhase::kPending:
      return "Pending";
    case PodPhase::kBound:
      return "Bound";
    case PodPhase::kSucceeded:
      return "Succeeded";
    case PodPhase::kDeleted:
      return "Deleted";
    case PodPhase::kFailed:
      return "Failed";
  }
  return "?";
}

}  // namespace aladdin::k8s

#include "k8s/resolver.h"

#include <algorithm>
#include <array>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/analysis.h"
#include "common/check.h"
#include "common/log.h"
#include "common/timer.h"
#include "core/task_scheduler.h"
#include "obs/journal.h"
#include "obs/trace.h"

namespace aladdin::k8s {

namespace {

// Per-resolve accumulator behind ResolveStats::unschedulable_causes.
struct CauseCounts {
  std::array<std::size_t, static_cast<std::size_t>(obs::Cause::kCount)>
      counts{};

  void Add(obs::Cause cause) { ++counts[static_cast<std::size_t>(cause)]; }

  void FillStats(ResolveStats& stats) const {
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (counts[i] > 0) {
        stats.unschedulable_causes.emplace_back(static_cast<obs::Cause>(i),
                                                counts[i]);
      }
    }
  }
};

// Why the task-based scheduler could not place a short-lived container:
// best-fit carries no constraint machinery, so the answer is a pure
// resource question against the live state. O(machines), paid only per
// *failed* short-lived placement.
obs::Cause DiagnoseShortLived(const cluster::ClusterState& state,
                              cluster::ContainerId c) {
  const cluster::ResourceVector& request =
      state.containers()[static_cast<std::size_t>(c.value())].request;
  bool cpu_feasible = false;
  for (const auto& machine : state.topology().machines()) {
    const cluster::ResourceVector& free = state.Free(machine.id);
    if (free.cpu_millis() < request.cpu_millis()) continue;
    cpu_feasible = true;
    // A full fit would contradict the failed placement (state raced);
    // fall back to the catch-all rather than fabricate a cause.
    if (request.FitsIn(free)) return obs::Cause::kNoAdmissiblePath;
  }
  return cpu_feasible ? obs::Cause::kCapacityExhaustedMem
                      : obs::Cause::kCapacityExhaustedCpu;
}

// Exact-integer cpu occupancy of a shard in permille, for the watchdog's
// imbalance detector and the /statusz shard table.
std::int64_t ShardUtilPermille(const core::ShardTickStats& s) {
  if (s.capacity_cpu_millis <= 0) return 0;
  return (s.capacity_cpu_millis - s.free_cpu_millis) * 1000 /
         s.capacity_cpu_millis;
}

// Deterministic solve effort of one outcome — the watchdog's regression
// signal. Bit-identical across thread counts (the equivalence tests pin
// the individual counters); wall time never feeds it.
std::int64_t SolveEffort(const sim::ScheduleOutcome& outcome) {
  return outcome.explored_paths + outcome.rounds + outcome.il_prunes +
         outcome.dl_stops;
}

// Shared epilogue of both Resolve() arms: stamp the wall time, surface the
// unschedulable breakdown, diff the phase registry into stats.phases, and
// feed the per-resolve metrics.
void FinishStats(ResolveStats& stats, const WallTimer& timer,
                 const std::vector<obs::PhaseDelta>& phases_before) {
  stats.wall_seconds = timer.ElapsedSeconds();
  if (stats.unschedulable > 0) {
    // analyze:allow(A102) breakdown string built only when pods went unplaced
    std::string breakdown;
    for (const auto& [cause, n] : stats.unschedulable_causes) {
      if (!breakdown.empty()) breakdown += ' ';
      breakdown += obs::CauseName(cause);
      breakdown += '=';
      breakdown += std::to_string(n);
    }
    LOG_INFO << "tick " << stats.tick << ": " << stats.unschedulable
             << " unschedulable pod(s) [" << breakdown << "]";
  }
  if (!obs::MetricsEnabled()) return;
  stats.phases = obs::DiffPhases(phases_before, obs::CapturePhases());
  ALADDIN_METRIC_ADD("k8s/resolves", 1);
  ALADDIN_METRIC_ADD("k8s/bindings", stats.new_bindings);
  ALADDIN_METRIC_ADD("k8s/migrations", stats.migrations);
  ALADDIN_METRIC_ADD("k8s/preemptions", stats.preemptions);
  ALADDIN_METRIC_ADD("k8s/unschedulable", stats.unschedulable);
  ALADDIN_METRIC_OBSERVE("k8s/resolve_ms", "ms", stats.wall_seconds * 1e3);
}

// Row caps for the lifecycle epilogue: per-app SLO rows kept in
// ResolveStats / the introspection snapshot, and the /statusz
// oldest-pending table depth.
constexpr std::size_t kSloSnapshotAppRows = 32;
constexpr std::size_t kOldestPendingRows = 10;

}  // namespace

Resolver::Resolver(ModelAdaptor& adaptor, core::AladdinOptions options)
    : Resolver(adaptor, ResolverOptions{options, true}) {}

Resolver::Resolver(ModelAdaptor& adaptor, ResolverOptions options)
    : adaptor_(adaptor),
      options_(options),
      scheduler_(options.aladdin),
      slo_(options.slo),
      watchdog_(options.watchdog_options) {
  if (options_.shards > 0) {
    sharded_ = std::make_unique<core::ShardedScheduler>(ShardedConfig());
  }
}

core::ShardedOptions Resolver::ShardedConfig() const {
  core::ShardedOptions config;
  config.shards = options_.shards;
  config.routing = options_.routing;
  // The intra-solve search pool knob becomes the shard-solve pool size
  // (the coordinator forces each shard's inner solver serial).
  config.threads = options_.aladdin.threads;
  config.aladdin = options_.aladdin;
  return config;
}

void Resolver::RebuildState(std::int64_t tick) {
  const trace::Workload& workload = adaptor_.workload();
  const cluster::Topology& topology = adaptor_.topology();
  state_.emplace(workload.MakeState(topology));
  built_topology_version_ = adaptor_.topology_version();
  // The rebuild supersedes the retirement journal for state sync, but the
  // lifecycle ledger still needs the spans closed.
  for (cluster::ContainerId c : adaptor_.TakeRetiredContainers()) {
    if (options_.lifecycle) ledger_.OnRetired(c.value(), tick);
  }

  // Pre-deploy bound pods into the fresh state.
  for (PodUid uid : adaptor_.BoundPods()) {
    const Pod* pod = adaptor_.FindPod(uid);
    const auto c = adaptor_.ContainerOf(uid);
    const auto m = adaptor_.MachineOf(pod->node);
    if (!c.valid() || !m.valid() || !state_->Fits(c, m)) {
      // Stale binding (node shrank or vanished between resolves).
      adaptor_.UnbindPod(*adaptor_.MutablePod(uid));
      continue;
    }
    state_->Deploy(c, m);
  }

  // Journals start *after* pre-deployment: the change journal should only
  // carry this-tick scheduling decisions, and index consumers attach below.
  state_->EnableDirtyLog();
  state_->EnableChangeJournal();
  free_index_.Attach(*state_);
  free_index_cursor_ = state_->DirtyLogEnd();
}

void Resolver::SyncState(std::int64_t tick) {
  state_->SyncWorkloadGrowth();
  // Deleted (or externally unbound) pods leave tombstoned containers; evict
  // their placements so the space frees up — via the state directly, so the
  // dirty log carries the change to the network and the free index.
  for (cluster::ContainerId c : adaptor_.TakeRetiredContainers()) {
    if (state_->IsPlaced(c)) state_->Evict(c);
    if (options_.lifecycle) ledger_.OnRetired(c.value(), tick);
    if (obs::JournalEnabled()) {
      obs::EmitDecision(obs::DecisionKind::kEvent, obs::Cause::kPodRetired,
                        c.value());
    }
  }
}

void Resolver::SyncFreeIndex() {
  bool overflowed = false;
  const auto dirty = state_->DirtySince(free_index_cursor_, &overflowed);
  if (overflowed) {
    free_index_.Attach(*state_);
  } else {
    for (cluster::MachineId m : dirty) free_index_.OnChanged(m);
  }
  free_index_cursor_ = state_->DirtyLogEnd();
}

void Resolver::TrackArrivals(const std::vector<PodUid>& pending,
                             const cluster::ClusterState& state,
                             std::int64_t tick) {
  if (!options_.lifecycle) return;
  slo_.BeginTick(tick);
  for (PodUid uid : pending) {
    const cluster::ContainerId c = adaptor_.ContainerOf(uid);
    if (!c.valid() || ledger_.HasOpenSpan(c.value())) continue;
    const cluster::ApplicationId app =
        state.containers()[static_cast<std::size_t>(c.value())].app;
    slo_.RegisterApp(
        app.value(),
        state.applications()[static_cast<std::size_t>(app.value())].name);
    ledger_.OnArrival(c.value(), app.value(), tick);
  }
}

void Resolver::FinishLifecycle(ResolveStats& stats,
                               const cluster::ClusterState& state,
                               std::int64_t tick, std::int64_t solve_cost,
                               std::int64_t solve_wall_micros) {
  if (!options_.lifecycle) return;
  // Once-per-tick summary work, O(tracked spans + apps), never per-pod.
  stats.pending_ages =
      obs::SummarizePendingAges(ledger_.PendingAgeCounts(tick));
  stats.slo = slo_.Snapshot(kSloSnapshotAppRows);

  obs::IntrospectionStatus status;
  status.tick = tick;
  status.slo = stats.slo;
  status.pending_ages = stats.pending_ages;
  // analyze:allow(A103) once-per-tick snapshot, bounded by the shard count
  status.shards.reserve(stats.shards.size());
  for (const core::ShardTickStats& s : stats.shards) {
    obs::IntrospectionShard shard;
    shard.shard = s.shard;
    shard.machines = s.machines;
    shard.routed = s.routed;
    shard.placed = s.placed;
    shard.unplaced = s.unplaced;
    shard.spilled = s.spilled;
    shard.util_permille = ShardUtilPermille(s);
    shard.solve_seconds = s.solve_seconds;
    status.shards.push_back(shard);
  }

  if (options_.watchdog) {
    obs::WatchdogTickInput input;
    input.tick = tick;
    input.slo_good = slo_.tick_good();
    input.slo_bad = slo_.tick_bad();
    input.slo_budget_bp = slo_.budget_bp();
    input.pending_age_p99 = stats.pending_ages.p99;
    input.pending_open = static_cast<std::int64_t>(stats.pending_ages.open);
    input.app_reopens = ledger_.TakeReopens();
    // analyze:allow(A103) once-per-tick input, bounded by the shard count
    input.shards.reserve(stats.shards.size());
    for (const core::ShardTickStats& s : stats.shards) {
      obs::WatchdogShardLoad load;
      load.shard = s.shard;
      load.machines = static_cast<std::int64_t>(s.machines);
      load.routed = static_cast<std::int64_t>(s.routed);
      load.spilled = static_cast<std::int64_t>(s.spilled);
      load.placed = static_cast<std::int64_t>(s.placed);
      load.util_permille = ShardUtilPermille(s);
      input.shards.push_back(load);
    }
    input.solve_cost = solve_cost;
    input.solve_wall_micros = solve_wall_micros;
    // analyze:allow(A103) once-per-tick input, bounded by the cause vocabulary
    input.giveup_causes.reserve(stats.unschedulable_causes.size());
    for (const auto& [cause, n] : stats.unschedulable_causes) {
      input.giveup_causes.emplace_back(cause, static_cast<std::int64_t>(n));
    }
    watchdog_.ObserveTick(input);
    status.watchdog = watchdog_.Snapshot();
  }
  status.oldest_pending = ledger_.OldestPending(tick, kOldestPendingRows);
  // analyze:allow(A103) once-per-tick, bounded by kOldestPendingRows
  status.oldest_pending_app.reserve(status.oldest_pending.size());
  for (const obs::PendingRow& row : status.oldest_pending) {
    const auto app = static_cast<std::size_t>(row.app);
    status.oldest_pending_app.push_back(
        row.app >= 0 && app < state.applications().size()
            ? state.applications()[app].name
            // analyze:allow(A102) once-per-tick, bounded by kOldestPendingRows
            : std::string{});
  }
  obs::PublishIntrospection(std::move(status));
}

ALADDIN_HOT ResolveStats Resolver::Resolve(std::int64_t tick,
                               std::vector<Binding>* bindings) {
  WallTimer timer;
  ResolveStats stats;
  stats.tick = tick;
  // Tick stamp for every journal record this resolve emits; with a JSONL
  // sink configured this also drains the previous tick's rings.
  if (obs::JournalEnabled()) obs::SetJournalTick(tick);
  CauseCounts causes;
  // This tick's deterministic long-lived solve effort (watchdog signal).
  std::int64_t solve_cost = 0;
  // Terminal cause per unplaced container, filled by the scheduling
  // sections and consumed by reconcile (which owns the unschedulable
  // count, so the breakdown always sums to it).
  // analyze:allow(A102) empty unless pods go unplaced; default ctor does not allocate
  std::unordered_map<std::int32_t, obs::Cause> unplaced_cause;
  const auto CauseOf = [&unplaced_cause](cluster::ContainerId c) {
    const auto it = unplaced_cause.find(c.value());
    return it != unplaced_cause.end() ? it->second
                                      : obs::Cause::kNoAdmissiblePath;
  };
  // analyze:allow(A102) metrics-gated snapshot, off by default in production
  const std::vector<obs::PhaseDelta> phases_before =
      obs::MetricsEnabled()
          ? obs::CapturePhases()
          : std::vector<obs::PhaseDelta>{};  // analyze:allow(A102) empty vector, no allocation

  if (!options_.incremental) {
    // Historical rebuild-everything path, kept as the equivalence baseline
    // (and the A/B arm of the benchmarks): fresh state, fresh scheduler,
    // full scans. Identical placements to the incremental path.
    // No state to sync, but the lifecycle ledger still closes retired spans.
    for (cluster::ContainerId c : adaptor_.TakeRetiredContainers()) {
      if (options_.lifecycle) ledger_.OnRetired(c.value(), tick);
    }
    const trace::Workload& workload = adaptor_.workload();
    const cluster::Topology& topology = adaptor_.topology();
    cluster::ClusterState state = workload.MakeState(topology);

    // Pre-deploy bound pods; remember where everything was. std::map: the
    // reconcile loop below appends migrations to `bindings` while walking
    // this — ordered by uid keeps the binding stream replayable.
    std::map<PodUid, std::string> previous_node;
    // analyze:allow(A102) full-rebuild A/B arm, not the steady-state path
    std::vector<cluster::ContainerId> long_lived;
    std::vector<PodUid> short_lived;  // analyze:allow(A102) full-rebuild A/B arm
    const auto pending = adaptor_.PendingPods();
    stats.pending_before = pending.size();
    ALADDIN_TRACE_COUNTER("k8s/pending", pending.size());
    {
      ALADDIN_PHASE_SCOPE("k8s/sync_state");
      for (PodUid uid : adaptor_.BoundPods()) {
        const Pod* pod = adaptor_.FindPod(uid);
        const auto c = adaptor_.ContainerOf(uid);
        const auto m = adaptor_.MachineOf(pod->node);
        if (!c.valid() || !m.valid() || !state.Fits(c, m)) {
          adaptor_.UnbindPod(*adaptor_.MutablePod(uid));
          continue;
        }
        state.Deploy(c, m);
        previous_node[uid] = pod->node;
      }
      for (PodUid uid : pending) {
        const Pod* pod = adaptor_.FindPod(uid);
        if (pod->spec.short_lived()) {
          short_lived.push_back(uid);
        } else {
          long_lived.push_back(adaptor_.ContainerOf(uid));
        }
      }
    }

    TrackArrivals(pending, state, tick);

    // Hoisted past reconcile: the shard plan attributes each placement
    // machine to its owning shard for the lifecycle spans.
    std::unique_ptr<core::ShardedScheduler> fresh_sharded;
    if (!long_lived.empty()) {
      sim::ScheduleRequest request{&workload, &long_lived};
      sim::ScheduleOutcome outcome;
      if (options_.shards > 0) {
        // analyze:allow(A101) full-rebuild A/B arm, not the steady-state path
        fresh_sharded = std::make_unique<core::ShardedScheduler>(
            ShardedConfig());
        outcome = fresh_sharded->Schedule(request, state);
        stats.shards = fresh_sharded->last_shard_stats();
      } else {
        core::AladdinScheduler scheduler(options_.aladdin);
        outcome = scheduler.Schedule(request, state);
      }
      solve_cost += SolveEffort(outcome);
      for (std::size_t i = 0; i < outcome.unplaced.size(); ++i) {
        unplaced_cause[outcome.unplaced[i].value()] =
            outcome.unplaced_causes[i];
      }
    }
    const auto ShardOfMachine =
        [&fresh_sharded](cluster::MachineId m) -> std::int32_t {
      const cluster::ShardPlan* plan =
          fresh_sharded != nullptr ? fresh_sharded->plan() : nullptr;
      return plan != nullptr && plan->shard_count() > 1 ? plan->ShardOf(m)
                                                        : -1;
    };
    if (!short_lived.empty()) {
      ALADDIN_PHASE_SCOPE("core/task");
      cluster::FreeIndex index;
      index.Attach(state);
      for (PodUid uid : short_lived) {
        const cluster::ContainerId c = adaptor_.ContainerOf(uid);
        const cluster::MachineId m = core::TaskScheduler::PlaceOne(
            state, index, c, core::TaskPlacementPolicy::kBestFit);
        if (m.valid()) {
          if (obs::JournalEnabled()) {
            obs::EmitDecision(obs::DecisionKind::kPlace,
                              obs::Cause::kShortLivedBestFit, c.value(),
                              m.value());
          }
        } else {
          const obs::Cause cause = DiagnoseShortLived(state, c);
          unplaced_cause[c.value()] = cause;
          if (obs::JournalEnabled()) {
            obs::EmitDecision(obs::DecisionKind::kUnplaced, cause, c.value());
          }
        }
      }
    }

    {
      ALADDIN_PHASE_SCOPE("k8s/reconcile");
      for (PodUid uid : pending) {
        Pod* pod = adaptor_.MutablePod(uid);
        const auto c = adaptor_.ContainerOf(uid);
        if (state.IsPlaced(c)) {
          const cluster::MachineId m = state.PlacementOf(c);
          adaptor_.BindPod(*pod, adaptor_.NodeOfMachine(m), tick);
          ++stats.new_bindings;
          if (bindings != nullptr) {
            bindings->push_back(Binding{uid, pod->node});
          }
          if (options_.lifecycle) {
            const std::int64_t wait =
                ledger_.OnPlaced(c.value(), m.value(), ShardOfMachine(m),
                                 tick);
            if (wait >= 0) {
              slo_.OnAdmitted(*ledger_.MutableSpan(c.value()), wait);
            }
          }
        } else {
          ++stats.unschedulable;
          const obs::Cause cause = CauseOf(c);
          causes.Add(cause);
          if (options_.lifecycle) {
            ledger_.OnAttempt(c.value(), cause, tick);
            if (obs::LifecycleSpan* span = ledger_.MutableSpan(c.value())) {
              slo_.ObservePending(*span, tick);
            }
          }
        }
      }
      for (const auto& [uid, old_node] : previous_node) {
        Pod* pod = adaptor_.MutablePod(uid);
        const auto c = adaptor_.ContainerOf(uid);
        if (!state.IsPlaced(c)) {
          adaptor_.UnbindPod(*pod);
          ++stats.preemptions;
          if (options_.lifecycle) ledger_.OnPreempted(c.value(), tick);
          continue;
        }
        const std::string& node = adaptor_.NodeOfMachine(state.PlacementOf(c));
        if (node != old_node) {
          pod->node = node;
          pod->bound_at_tick = tick;
          ++stats.migrations;
          if (bindings != nullptr) bindings->push_back(Binding{uid, node});
        }
      }
    }

    causes.FillStats(stats);
    FinishLifecycle(stats, state, tick, solve_cost,
                    static_cast<std::int64_t>(timer.ElapsedSeconds() * 1e6));
    FinishStats(stats, timer, phases_before);
    return stats;
  }

  // --- incremental path --------------------------------------------------
  // Per-tick scratch: member buffers keep their capacity across resolves,
  // the arena rewinds to its retained chunks. (`pending` stays a fresh
  // vector — PendingPods() materialises it on the adaptor side.)
  arena_.Reset();
  std::vector<cluster::ContainerId>& long_lived = long_lived_;
  long_lived.clear();
  std::vector<PodUid>& short_lived = short_lived_;
  short_lived.clear();
  // analyze:allow(A102) pending snapshot materialised per resolve, bounded by churn
  std::vector<PodUid> pending;
  {
    ALADDIN_PHASE_SCOPE("k8s/sync_state");
    (void)adaptor_.workload();  // syncs the workload snapshot
    if (!state_.has_value() ||
        adaptor_.topology_version() != built_topology_version_) {
      ALADDIN_TRACE_INSTANT("k8s/state_rebuild");
      RebuildState(tick);
    } else {
      SyncState(tick);
    }
    ALADDIN_DCHECK(state_->placed_count() == adaptor_.BoundPods().size())
        << "persistent state out of sync with the pod store";

    // Split the pending set.
    pending = adaptor_.PendingPods();
    stats.pending_before = pending.size();
    ALADDIN_TRACE_COUNTER("k8s/pending", pending.size());
    for (PodUid uid : pending) {
      const Pod* pod = adaptor_.FindPod(uid);
      if (pod->spec.short_lived()) {
        short_lived.push_back(uid);
      } else {
        long_lived.push_back(adaptor_.ContainerOf(uid));
      }
    }
  }
  const trace::Workload& workload = adaptor_.workload();  // already synced
  cluster::ClusterState& state = *state_;
  TrackArrivals(pending, state, tick);
  const auto ShardOfMachine = [this](cluster::MachineId m) -> std::int32_t {
    const cluster::ShardPlan* plan =
        sharded_ != nullptr ? sharded_->plan() : nullptr;
    return plan != nullptr && plan->shard_count() > 1 ? plan->ShardOf(m) : -1;
  };

  // Long-lived pods: the Aladdin core. The persistent scheduler reuses its
  // aggregated network, replaying this state's dirty log (our evictions
  // above included) instead of rebuilding it.
  if (!long_lived.empty()) {
    const int deadline = std::max(options_.batch_deadline_ticks, 1);
    if (options_.batch > 0 && (tick + 1) % deadline != 0) {
      // Micro-batch deadline not elapsed: defer the whole long-lived set.
      // No solve runs; reconcile below counts them unschedulable under
      // kBatchDeferred and the lifecycle/SLO clocks keep aging them.
      for (cluster::ContainerId c : long_lived) {
        unplaced_cause[c.value()] = obs::Cause::kBatchDeferred;
      }
      if (obs::JournalEnabled()) {
        obs::EmitDecision(obs::DecisionKind::kEvent,
                          obs::Cause::kBatchDeferred, -1, -1, -1,
                          static_cast<std::int64_t>(long_lived.size()));
      }
    } else if (options_.batch > 0) {
      const auto chunk = static_cast<std::size_t>(options_.batch);
      const std::size_t nchunks = (long_lived.size() + chunk - 1) / chunk;
      // analyze:allow(A103) high-water growth, chunk vectors pooled
      if (batch_chunks_.size() < nchunks) batch_chunks_.resize(nchunks);
      for (std::size_t k = 0; k < nchunks; ++k) {
        const auto begin = long_lived.begin() +
                           static_cast<std::ptrdiff_t>(k * chunk);
        const auto end = long_lived.begin() + static_cast<std::ptrdiff_t>(
            std::min((k + 1) * chunk, long_lived.size()));
        // analyze:allow(A103) pooled scratch, capacity retained across ticks
        batch_chunks_[k].assign(begin, end);
      }
      batch_requests_.clear();
      for (std::size_t k = 0; k < nchunks; ++k) {
        batch_requests_.push_back(
            sim::ScheduleRequest{&workload, &batch_chunks_[k]});
        stats.batch_sizes.push_back(batch_chunks_[k].size());
      }
      // analyze:allow(A102) per-batch outcome list, escapes the solve call
      const std::vector<sim::ScheduleOutcome> outcomes =
          sharded_ != nullptr
              ? sharded_->ScheduleBatch(batch_requests_, state)
              : scheduler_.ScheduleBatch(batch_requests_, state);
      if (sharded_ != nullptr) stats.shards = sharded_->last_shard_stats();
      for (const sim::ScheduleOutcome& outcome : outcomes) {
        solve_cost += SolveEffort(outcome);
        for (std::size_t i = 0; i < outcome.unplaced.size(); ++i) {
          unplaced_cause[outcome.unplaced[i].value()] =
              outcome.unplaced_causes[i];
        }
      }
    } else {
      sim::ScheduleRequest request{&workload, &long_lived};
      sim::ScheduleOutcome outcome;
      if (sharded_ != nullptr) {
        outcome = sharded_->Schedule(request, state);
        stats.shards = sharded_->last_shard_stats();
      } else {
        outcome = scheduler_.Schedule(request, state);
      }
      solve_cost += SolveEffort(outcome);
      for (std::size_t i = 0; i < outcome.unplaced.size(); ++i) {
        unplaced_cause[outcome.unplaced[i].value()] =
            outcome.unplaced_causes[i];
      }
    }
  }

  // Short-lived pods: the traditional task-based scheduler (§IV.D), on the
  // persistent free index synced from the same dirty log. Runs of
  // consecutive pods with identical requests go through the run placer —
  // bit-identical placements, one scan resume instead of a rescan per pod.
  // Failures within a run are a suffix and do not mutate state, so the
  // post-run per-pod journal/diagnosis below matches the serial interleave
  // exactly.
  if (!short_lived.empty()) {
    ALADDIN_PHASE_SCOPE("core/task");
    SyncFreeIndex();
    std::size_t i = 0;
    while (i < short_lived.size()) {
      const cluster::ContainerId c0 = adaptor_.ContainerOf(short_lived[i]);
      std::size_t j = i + 1;
      if (options_.task_run_placement) {
        const cluster::ResourceVector& req =
            state.containers()[static_cast<std::size_t>(c0.value())].request;
        while (j < short_lived.size() &&
               state.containers()[static_cast<std::size_t>(
                                      adaptor_.ContainerOf(short_lived[j])
                                          .value())]
                       .request == req) {
          ++j;
        }
      }
      if (j - i >= 2) {
        task_run_.clear();
        for (std::size_t k = i; k < j; ++k) {
          task_run_.push_back(adaptor_.ContainerOf(short_lived[k]));
        }
        // analyze:allow(A103) pooled scratch, capacity retained across ticks
        task_out_.assign(task_run_.size(), cluster::MachineId::Invalid());
        core::TaskScheduler::PlaceRun(state, free_index_, task_run_,
                                      task_out_);
        for (std::size_t k = 0; k < task_run_.size(); ++k) {
          const cluster::ContainerId c = task_run_[k];
          const cluster::MachineId m = task_out_[k];
          if (m.valid()) {
            if (obs::JournalEnabled()) {
              obs::EmitDecision(obs::DecisionKind::kPlace,
                                obs::Cause::kShortLivedBestFit, c.value(),
                                m.value());
            }
          } else {
            const obs::Cause cause = DiagnoseShortLived(state, c);
            unplaced_cause[c.value()] = cause;
            if (obs::JournalEnabled()) {
              obs::EmitDecision(obs::DecisionKind::kUnplaced, cause,
                                c.value());
            }
          }
        }
        i = j;
        continue;
      }
      const cluster::MachineId m = core::TaskScheduler::PlaceOne(
          state, free_index_, c0, core::TaskPlacementPolicy::kBestFit);
      if (m.valid()) {
        if (obs::JournalEnabled()) {
          obs::EmitDecision(obs::DecisionKind::kPlace,
                            obs::Cause::kShortLivedBestFit, c0.value(),
                            m.value());
        }
      } else {
        const obs::Cause cause = DiagnoseShortLived(state, c0);
        unplaced_cause[c0.value()] = cause;
        if (obs::JournalEnabled()) {
          obs::EmitDecision(obs::DecisionKind::kUnplaced, cause, c0.value());
        }
      }
      ++i;
    }
  }

  // Reconcile: pending pods first, then every other container the
  // schedulers touched — the change journal replaces the full bound-pod
  // scan, so reconciliation is O(pending + changes).
  {
    ALADDIN_PHASE_SCOPE("k8s/reconcile");
    // Sorted arena snapshot + binary search instead of an unordered_set:
    // one bump allocation, no per-node hashing, same membership answers.
    ArenaVector<PodUid> was_pending{ArenaAllocator<PodUid>(&arena_)};
    was_pending.reserve(pending.size());
    was_pending.assign(pending.begin(), pending.end());
    std::sort(was_pending.begin(), was_pending.end());
    const auto WasPending = [&](PodUid uid) {
      return std::binary_search(was_pending.begin(), was_pending.end(), uid);
    };
    for (PodUid uid : pending) {
      Pod* pod = adaptor_.MutablePod(uid);
      const auto c = adaptor_.ContainerOf(uid);
      if (state.IsPlaced(c)) {
        const cluster::MachineId m = state.PlacementOf(c);
        adaptor_.BindPod(*pod, adaptor_.NodeOfMachine(m), tick);
        ++stats.new_bindings;
        if (bindings != nullptr) bindings->push_back(Binding{uid, pod->node});
        if (options_.lifecycle) {
          const std::int64_t wait = ledger_.OnPlaced(
              c.value(), m.value(), ShardOfMachine(m), tick);
          if (wait >= 0) {
            slo_.OnAdmitted(*ledger_.MutableSpan(c.value()), wait);
          }
        }
      } else {
        ++stats.unschedulable;
        const obs::Cause cause = CauseOf(c);
        causes.Add(cause);
        if (options_.lifecycle) {
          ledger_.OnAttempt(c.value(), cause, tick);
          if (obs::LifecycleSpan* span = ledger_.MutableSpan(c.value())) {
            slo_.ObservePending(*span, tick);
          }
        }
      }
    }
    for (cluster::ContainerId c : state.TakeChangedContainers()) {
      const PodUid uid = adaptor_.PodOfContainer(c);
      if (uid < 0) continue;  // tombstone: pod already deleted
      Pod* pod = adaptor_.MutablePod(uid);
      if (pod == nullptr || WasPending(uid)) continue;
      // A pod bound before this tick whose placement the scheduler touched.
      if (!state.IsPlaced(c)) {
        // Preempted by a higher-weighted pending pod; back to the queue.
        adaptor_.UnbindPod(*pod);
        ++stats.preemptions;
        if (options_.lifecycle) ledger_.OnPreempted(c.value(), tick);
        continue;
      }
      const std::string& node = adaptor_.NodeOfMachine(state.PlacementOf(c));
      if (node != pod->node) {
        pod->node = node;
        pod->bound_at_tick = tick;
        ++stats.migrations;
        if (bindings != nullptr) bindings->push_back(Binding{uid, node});
      }
    }
  }

  if (obs::MetricsEnabled()) {
    ALADDIN_METRIC_ADD("k8s/arena_bytes", arena_.bytes_used());
  }
  causes.FillStats(stats);
  FinishLifecycle(stats, state, tick, solve_cost,
                  static_cast<std::int64_t>(timer.ElapsedSeconds() * 1e6));
  FinishStats(stats, timer, phases_before);
  return stats;
}

}  // namespace aladdin::k8s

#include "k8s/resolver.h"

#include <unordered_map>

#include "cluster/free_index.h"
#include "common/log.h"
#include "core/task_scheduler.h"
#include "common/timer.h"

namespace aladdin::k8s {

Resolver::Resolver(ModelAdaptor& adaptor, core::AladdinOptions options)
    : adaptor_(adaptor), options_(options) {}

ResolveStats Resolver::Resolve(std::int64_t tick,
                               std::vector<Binding>* bindings) {
  WallTimer timer;
  ResolveStats stats;
  stats.tick = tick;

  const trace::Workload& workload = adaptor_.workload();
  const cluster::Topology& topology = adaptor_.topology();
  cluster::ClusterState state = workload.MakeState(topology);

  // Pre-deploy bound pods; remember where everything was.
  std::unordered_map<PodUid, std::string> previous_node;
  for (PodUid uid : adaptor_.BoundPods()) {
    const Pod* pod = adaptor_.FindPod(uid);
    const auto c = adaptor_.ContainerOf(uid);
    const auto m = adaptor_.MachineOf(pod->node);
    if (!c.valid() || !m.valid() || !state.Fits(c, m)) {
      // Stale binding (node shrank or vanished between resolves).
      adaptor_.MutablePod(uid)->phase = PodPhase::kPending;
      adaptor_.MutablePod(uid)->node.clear();
      continue;
    }
    state.Deploy(c, m);
    previous_node[uid] = pod->node;
  }

  // Split the pending set.
  std::vector<cluster::ContainerId> long_lived;
  std::vector<PodUid> short_lived;
  const auto pending = adaptor_.PendingPods();
  stats.pending_before = pending.size();
  for (PodUid uid : pending) {
    const Pod* pod = adaptor_.FindPod(uid);
    if (pod->spec.short_lived()) {
      short_lived.push_back(uid);
    } else {
      long_lived.push_back(adaptor_.ContainerOf(uid));
    }
  }

  // Long-lived pods: the Aladdin core (incremental — state is pre-loaded).
  if (!long_lived.empty()) {
    core::AladdinScheduler scheduler(options_);
    sim::ScheduleRequest request{&workload, &long_lived};
    scheduler.Schedule(request, state);
  }

  // Short-lived pods: the traditional task-based scheduler (§IV.D).
  if (!short_lived.empty()) {
    cluster::FreeIndex index;
    index.Attach(state);
    for (PodUid uid : short_lived) {
      core::TaskScheduler::PlaceOne(state, index, adaptor_.ContainerOf(uid),
                                    core::TaskPlacementPolicy::kBestFit);
    }
  }

  // Reconcile placements back into the object store.
  for (PodUid uid : pending) {
    Pod* pod = adaptor_.MutablePod(uid);
    const auto c = adaptor_.ContainerOf(uid);
    if (state.IsPlaced(c)) {
      pod->phase = PodPhase::kBound;
      pod->node = adaptor_.NodeOfMachine(state.PlacementOf(c));
      pod->bound_at_tick = tick;
      ++stats.new_bindings;
      if (bindings != nullptr) bindings->push_back(Binding{uid, pod->node});
    } else {
      ++stats.unschedulable;
    }
  }
  for (const auto& [uid, old_node] : previous_node) {
    Pod* pod = adaptor_.MutablePod(uid);
    const auto c = adaptor_.ContainerOf(uid);
    if (!state.IsPlaced(c)) {
      // Preempted by a higher-weighted pending pod; back to the queue.
      pod->phase = PodPhase::kPending;
      pod->node.clear();
      ++stats.preemptions;
      continue;
    }
    const std::string& node = adaptor_.NodeOfMachine(state.PlacementOf(c));
    if (node != old_node) {
      pod->node = node;
      pod->bound_at_tick = tick;
      ++stats.migrations;
      if (bindings != nullptr) bindings->push_back(Binding{uid, node});
    }
  }

  stats.wall_seconds = timer.ElapsedSeconds();
  return stats;
}

}  // namespace aladdin::k8s

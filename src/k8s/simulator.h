// ClusterSimulator: the deployed system of Fig. 6 in one object — an
// Events Handling Center wired into a Model Adaptor driven by a Resolver,
// plus a discrete clock. It simulates the mixed production cluster of
// §IV.D: long-lived applications scheduled by the Aladdin core side by
// side with short-lived batch tasks that occupy resources for a bounded
// number of ticks and then complete.
//
//   ClusterSimulator sim;
//   sim.AddNodes(32, cluster::ResourceVector::Cores(32, 64));
//   sim.SubmitDeployment("web", 8, web_spec);
//   sim.SubmitBatchJob("nightly", 64, cluster::ResourceVector::Cores(2, 4),
//                      /*lifetime_ticks=*/3);
//   const auto stats = sim.Tick();   // dispatch events + schedule
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "k8s/adaptor.h"
#include "k8s/events.h"
#include "k8s/resolver.h"

namespace aladdin::k8s {

class ClusterSimulator {
 public:
  explicit ClusterSimulator(
      core::AladdinOptions options = Resolver::DefaultOptions());
  // Full control over the resolver (incremental on/off for A/B runs).
  explicit ClusterSimulator(ResolverOptions options);

  // --- provisioning ----------------------------------------------------
  // Adds `count` nodes named <prefix>-<index>, round-robined into racks of
  // `machines_per_rack` within zones of `racks_per_zone` racks.
  std::vector<std::string> AddNodes(std::size_t count,
                                    cluster::ResourceVector capacity,
                                    const std::string& prefix = "node",
                                    std::size_t machines_per_rack = 40,
                                    std::size_t racks_per_zone = 10);
  void RemoveNode(const std::string& name);

  // --- workload submission ---------------------------------------------
  // Long-lived application with `replicas` pods.
  std::vector<PodUid> SubmitDeployment(const std::string& app,
                                       std::size_t replicas,
                                       const PodSpec& spec);
  // Short-lived batch job: `tasks` pods that complete `lifetime_ticks`
  // ticks after binding.
  std::vector<PodUid> SubmitBatchJob(const std::string& job,
                                     std::size_t tasks,
                                     cluster::ResourceVector request,
                                     std::int64_t lifetime_ticks);
  void DeletePod(PodUid uid);
  // Deletes up to `count` pods of `app` (highest uid first). Returns how
  // many deletions were issued.
  std::size_t ScaleDown(const std::string& app, std::size_t count);

  // --- time --------------------------------------------------------------
  // Advances the clock one tick: completes expired batch pods, dispatches
  // queued events, runs one resolve pass.
  ResolveStats Tick(std::vector<Binding>* bindings = nullptr);

  [[nodiscard]] std::int64_t now() const { return now_; }
  [[nodiscard]] std::int64_t completed_tasks() const {
    return completed_tasks_;
  }
  [[nodiscard]] ModelAdaptor& adaptor() { return adaptor_; }
  [[nodiscard]] EventsHandlingCenter& ehc() { return ehc_; }
  [[nodiscard]] const Resolver& resolver() const { return resolver_; }
  [[nodiscard]] const std::vector<ResolveStats>& history() const {
    return history_;
  }

 private:
  PodUid NextUid() { return next_uid_++; }

  EventsHandlingCenter ehc_;
  ModelAdaptor adaptor_;
  Resolver resolver_;
  std::int64_t now_ = 0;
  PodUid next_uid_ = 1;
  std::int64_t node_counter_ = 0;
  std::int64_t completed_tasks_ = 0;
  std::vector<ResolveStats> history_;
};

}  // namespace aladdin::k8s

// Events Handling Center (EHC) — §IV.C, Fig. 6: "EHC receives all kinds of
// changes in the LLAs' life-cycles and resources. Then, it forwards
// pre-processed events to [the model adaptor]".
//
// Pre-processing here means coalescing: an object added and deleted while
// still queued cancels out, duplicate updates collapse to the latest, and
// dispatch order is stable (FIFO over surviving events). Subscribers see a
// clean, minimal stream.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "k8s/objects.h"

namespace aladdin::k8s {

enum class EventType {  // analyze:closed_enum
  kPodAdded,
  kPodDeleted,     // user/controller deletion or completion
  kNodeAdded,
  kNodeRemoved,
};

const char* EventTypeName(EventType type);

struct Event {
  EventType type;
  // One of the two payloads is meaningful depending on the type.
  Pod pod;
  Node node;
};

class EventsHandlingCenter {
 public:
  using Handler = std::function<void(const Event&)>;

  // Subscribers are invoked in registration order on every dispatched
  // event (the model adaptor is the primary subscriber).
  void Subscribe(Handler handler);

  // Queue an event; no dispatch happens until DrainAndDispatch.
  void Submit(Event event);

  // Coalesce the queue, dispatch surviving events to subscribers, and
  // return how many were dispatched.
  std::size_t DrainAndDispatch();

  [[nodiscard]] std::size_t pending() const { return queue_.size(); }
  [[nodiscard]] std::int64_t dispatched_total() const {
    return dispatched_total_;
  }
  [[nodiscard]] std::int64_t coalesced_total() const {
    return coalesced_total_;
  }

 private:
  std::deque<Event> queue_;
  std::vector<Handler> handlers_;
  std::int64_t dispatched_total_ = 0;
  std::int64_t coalesced_total_ = 0;
};

}  // namespace aladdin::k8s

// Minimal Kubernetes-style API objects for the co-design integration
// (§IV.C, Fig. 6). The paper deploys Aladdin next to Kubernetes 1.11 by
// "delegating the watching and binding APIs"; this module is the object
// model those APIs exchange: pods (the container requests), nodes (the
// machines), and bindings (the scheduler's decisions).
//
// Only the fields the scheduling path consumes are modelled; everything is
// a plain value type so the event layer can copy/queue freely.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/application.h"
#include "cluster/resources.h"

namespace aladdin::k8s {

// Owner-level spec: maps onto one LLA / Deployment. Pods of the same owner
// are isomorphic (same requests), matching the paper's IL assumption.
struct PodSpec {
  // Owner (application) name; pods of one owner share constraints.
  std::string app;
  cluster::ResourceVector requests;
  cluster::Priority priority = 0;
  // requiredDuringScheduling pod-anti-affinity against the own owner
  // (spread replicas) ...
  bool anti_affinity_within = false;
  // ... and against other owners by name.
  std::vector<std::string> anti_affinity_apps;
  // Short-lived (batch) pods bypass the flow machinery and go through the
  // "traditional task-based scheduler" (§IV.D). `lifetime_ticks` is their
  // duration in simulator ticks; 0 = long-lived.
  std::int64_t lifetime_ticks = 0;

  [[nodiscard]] bool short_lived() const { return lifetime_ticks > 0; }
};

enum class PodPhase {  // analyze:closed_enum
  kPending,    // submitted, not yet placed
  kBound,      // placed onto a node
  kSucceeded,  // short-lived pod ran to completion
  kDeleted,    // removed by the user / controller
  kFailed,     // unschedulable after the resolver gave up
};

const char* PodPhaseName(PodPhase phase);

using PodUid = std::int64_t;

struct Pod {
  PodUid uid = -1;
  std::string name;
  PodSpec spec;
  PodPhase phase = PodPhase::kPending;
  std::string node;               // bound node name, empty while pending
  std::int64_t bound_at_tick = -1;
};

struct Node {
  std::string name;
  cluster::ResourceVector capacity;
  // Topology labels (failure-domain.beta.kubernetes.io/... analogs).
  std::string rack;
  std::string zone;  // maps onto the sub-cluster vertex G_k
};

// The scheduler's output object: pod -> node, applied by the API server.
struct Binding {
  PodUid pod = -1;
  std::string node;
};

}  // namespace aladdin::k8s

#include "k8s/events.h"

#include <unordered_map>
#include <unordered_set>

#include "obs/metrics.h"

namespace aladdin::k8s {

const char* EventTypeName(EventType type) {
  switch (type) {
    case EventType::kPodAdded:
      return "PodAdded";
    case EventType::kPodDeleted:
      return "PodDeleted";
    case EventType::kNodeAdded:
      return "NodeAdded";
    case EventType::kNodeRemoved:
      return "NodeRemoved";
  }
  return "?";
}

void EventsHandlingCenter::Subscribe(Handler handler) {
  handlers_.push_back(std::move(handler));
}

void EventsHandlingCenter::Submit(Event event) {
  queue_.push_back(std::move(event));
}

std::size_t EventsHandlingCenter::DrainAndDispatch() {
  // Coalescing pass: a pod both added and deleted inside this batch never
  // existed as far as the scheduler is concerned; same for nodes. Keep one
  // event per object, the latest state winning.
  std::unordered_map<PodUid, int> pod_adds;       // uid -> count
  std::unordered_set<PodUid> pod_deletes;
  std::unordered_map<std::string, int> node_adds;
  std::unordered_set<std::string> node_removes;
  for (const Event& e : queue_) {
    switch (e.type) {
      case EventType::kPodAdded:
        ++pod_adds[e.pod.uid];
        break;
      case EventType::kPodDeleted:
        pod_deletes.insert(e.pod.uid);
        break;
      case EventType::kNodeAdded:
        ++node_adds[e.node.name];
        break;
      case EventType::kNodeRemoved:
        node_removes.insert(e.node.name);
        break;
    }
  }

  std::size_t dispatched = 0;
  std::unordered_set<PodUid> pod_emitted;
  std::unordered_set<std::string> node_emitted;
  for (const Event& e : queue_) {
    bool keep = true;
    switch (e.type) {
      case EventType::kPodAdded:
        // Cancelled by a later delete in the same batch.
        keep = !pod_deletes.contains(e.pod.uid) &&
               pod_emitted.insert(e.pod.uid).second;
        break;
      case EventType::kPodDeleted:
        // A delete for a pod added in this batch cancels silently; a
        // delete for a pre-existing pod passes through once.
        keep = !pod_adds.contains(e.pod.uid) &&
               pod_emitted.insert(e.pod.uid).second;
        break;
      case EventType::kNodeAdded:
        keep = !node_removes.contains(e.node.name) &&
               node_emitted.insert(e.node.name).second;
        break;
      case EventType::kNodeRemoved:
        keep = !node_adds.contains(e.node.name) &&
               node_emitted.insert(e.node.name).second;
        break;
    }
    if (!keep) {
      ++coalesced_total_;
      continue;
    }
    for (const Handler& handler : handlers_) handler(e);
    ++dispatched;
  }
  dispatched_total_ += static_cast<std::int64_t>(dispatched);
  ALADDIN_METRIC_ADD("k8s/events_dispatched", dispatched);
  ALADDIN_METRIC_ADD("k8s/events_coalesced",
                     queue_.size() - dispatched);
  queue_.clear();
  return dispatched;
}

}  // namespace aladdin::k8s

#include "k8s/simulator.h"

#include <algorithm>

#include "obs/trace.h"

namespace aladdin::k8s {

ClusterSimulator::ClusterSimulator(core::AladdinOptions options)
    : resolver_(adaptor_, options) {
  adaptor_.Attach(ehc_);
}

ClusterSimulator::ClusterSimulator(ResolverOptions options)
    : resolver_(adaptor_, options) {
  adaptor_.Attach(ehc_);
}

std::vector<std::string> ClusterSimulator::AddNodes(
    std::size_t count, cluster::ResourceVector capacity,
    const std::string& prefix, std::size_t machines_per_rack,
    std::size_t racks_per_zone) {
  std::vector<std::string> names;
  names.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::int64_t index = node_counter_++;
    Node node;
    node.name = prefix + "-" + std::to_string(index);
    node.capacity = capacity;
    const auto rack_index =
        static_cast<std::size_t>(index) / machines_per_rack;
    node.rack = "rack-" + std::to_string(rack_index);
    node.zone = "zone-" + std::to_string(rack_index / racks_per_zone);
    names.push_back(node.name);
    Event event;
    event.type = EventType::kNodeAdded;
    event.node = std::move(node);
    ehc_.Submit(std::move(event));
  }
  return names;
}

void ClusterSimulator::RemoveNode(const std::string& name) {
  Event event;
  event.type = EventType::kNodeRemoved;
  event.node.name = name;
  ehc_.Submit(std::move(event));
}

std::vector<PodUid> ClusterSimulator::SubmitDeployment(const std::string& app,
                                                       std::size_t replicas,
                                                       const PodSpec& spec) {
  std::vector<PodUid> uids;
  uids.reserve(replicas);
  for (std::size_t i = 0; i < replicas; ++i) {
    Pod pod;
    pod.uid = NextUid();
    pod.name = app + "-" + std::to_string(i);
    pod.spec = spec;
    pod.spec.app = app;
    pod.spec.lifetime_ticks = 0;  // long-lived by definition
    uids.push_back(pod.uid);
    Event event;
    event.type = EventType::kPodAdded;
    event.pod = std::move(pod);
    ehc_.Submit(std::move(event));
  }
  return uids;
}

std::vector<PodUid> ClusterSimulator::SubmitBatchJob(
    const std::string& job, std::size_t tasks,
    cluster::ResourceVector request, std::int64_t lifetime_ticks) {
  std::vector<PodUid> uids;
  uids.reserve(tasks);
  for (std::size_t i = 0; i < tasks; ++i) {
    Pod pod;
    pod.uid = NextUid();
    pod.name = job + "-task-" + std::to_string(i);
    pod.spec.app = job;
    pod.spec.requests = request;
    pod.spec.lifetime_ticks = std::max<std::int64_t>(1, lifetime_ticks);
    uids.push_back(pod.uid);
    Event event;
    event.type = EventType::kPodAdded;
    event.pod = std::move(pod);
    ehc_.Submit(std::move(event));
  }
  return uids;
}

void ClusterSimulator::DeletePod(PodUid uid) {
  Event event;
  event.type = EventType::kPodDeleted;
  event.pod.uid = uid;
  ehc_.Submit(std::move(event));
}

std::size_t ClusterSimulator::ScaleDown(const std::string& app,
                                        std::size_t count) {
  // Collect the app's pods, newest (highest uid) first.
  std::vector<PodUid> members;
  for (PodUid uid : adaptor_.PendingPods()) {
    if (adaptor_.FindPod(uid)->spec.app == app) members.push_back(uid);
  }
  for (PodUid uid : adaptor_.BoundPods()) {
    if (adaptor_.FindPod(uid)->spec.app == app) members.push_back(uid);
  }
  std::sort(members.rbegin(), members.rend());
  const std::size_t n = std::min(count, members.size());
  for (std::size_t i = 0; i < n; ++i) DeletePod(members[i]);
  return n;
}

ResolveStats ClusterSimulator::Tick(std::vector<Binding>* bindings) {
  ALADDIN_TRACE_SCOPE("k8s/tick");
  ALADDIN_METRIC_ADD("k8s/ticks", 1);
  ++now_;
  {
    // Complete batch pods whose lifetime elapsed, then deliver the tick's
    // queued cluster events — everything that happens "outside" the
    // resolver, kept exclusive so the tick breakdown separates event
    // handling from scheduling.
    ALADDIN_PHASE_SCOPE("k8s/events");
    // One uid-ascending sweep of the store (same visit order as the old
    // BoundPods() + FindPod-per-uid pair). DeletePod only queues an event,
    // so the store is not mutated until the drain below.
    for (const auto& [uid, pod] : adaptor_.pods()) {
      if (pod.phase != PodPhase::kBound || !pod.spec.short_lived()) continue;
      if (pod.bound_at_tick >= 0 &&
          now_ >= pod.bound_at_tick + pod.spec.lifetime_ticks) {
        ++completed_tasks_;
        DeletePod(uid);
      }
    }
    ehc_.DrainAndDispatch();
  }
  ResolveStats stats = resolver_.Resolve(now_, bindings);
  ALADDIN_METRIC_GAUGE_SET("k8s/pods_pending",
                           stats.pending_before - stats.new_bindings);
  ALADDIN_METRIC_GAUGE_SET("k8s/tasks_completed", completed_tasks_);
  history_.push_back(stats);
  return stats;
}

}  // namespace aladdin::k8s

// Model Adaptor (MA) — §IV.C, Fig. 6: "decouples Kubernetes objects from
// their scheduling implementation by delegating the watching and binding
// APIs".
//
// The adaptor consumes the EHC's pre-processed event stream, maintains the
// live object store (pods, nodes), and materialises the scheduling-side
// view on demand: a trace::Workload (owners -> applications, pods ->
// containers, anti-affinity specs -> constraint rules) and a
// cluster::Topology (zone/rack labels -> sub-cluster/rack vertices), plus
// the uid <-> ContainerId and node-name <-> MachineId translations the
// resolver needs to turn placements back into Bindings.
//
// The workload snapshot is maintained *incrementally*: pods append
// containers in event-arrival order and container/application ids are
// append-only — a ContainerId handed out once never moves, which is what
// lets the resolver keep a ClusterState (and the Aladdin core keep its
// aggregated network) alive across Resolve() calls. A deleted pod leaves a
// tombstoned container behind (never scheduled again; recorded in the
// retired-container journal for the resolver to evict). Node changes are
// rare and structural, so they rebuild the topology from scratch and bump
// topology_version(), signalling every topology-derived cache to rebuild.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cluster/topology.h"
#include "k8s/events.h"
#include "k8s/objects.h"
#include "trace/workload.h"

namespace aladdin::k8s {

class ModelAdaptor {
 public:
  // Wire into an EHC: the adaptor subscribes itself.
  void Attach(EventsHandlingCenter& ehc);

  // Direct event entry (used by Attach's subscription and by tests).
  void OnEvent(const Event& event);

  // --- live object store ---------------------------------------------
  [[nodiscard]] const Pod* FindPod(PodUid uid) const;
  // Callers may mutate any field EXCEPT `phase` through this pointer: the
  // pending/bound indices are keyed on it, so phase transitions must go
  // through BindPod()/UnbindPod() (or an OnEvent).
  Pod* MutablePod(PodUid uid);
  [[nodiscard]] std::size_t pod_count() const { return pods_.size(); }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  // Materialised from the phase indices: O(result), uid-ascending — the
  // same order the historical full-map scans produced.
  [[nodiscard]] std::vector<PodUid> PendingPods() const;
  [[nodiscard]] std::vector<PodUid> BoundPods() const;
  // Whole store, uid-ascending, for consumers that sweep every pod anyway
  // (one ordered scan instead of a uid list plus a FindPod per entry).
  [[nodiscard]] const std::map<PodUid, Pod>& pods() const { return pods_; }

  // Phase transitions, keeping the pending/bound indices in sync. The pod
  // reference must point into this adaptor's store.
  void BindPod(Pod& pod, const std::string& node, std::int64_t tick);
  void UnbindPod(Pod& pod);

  // --- scheduling-side snapshot (lazily synced) -----------------------
  const trace::Workload& workload();
  const cluster::Topology& topology();
  // Snapshot version; bumps whenever the object set changed.
  [[nodiscard]] std::int64_t snapshot_version() const { return version_; }
  // Bumps only on node (topology) changes; consumers holding
  // topology-derived state compare it to decide between incremental sync
  // and full rebuild.
  [[nodiscard]] std::int64_t topology_version() const {
    return topology_version_;
  }

  // Containers whose pods were deleted (or lost their binding to a live
  // topology) since the last call; the consumer evicts them from any
  // persistent state. Cleared by the call. Containers of pods undone by a
  // node removal are NOT reported — topology_version() covers those.
  [[nodiscard]] std::vector<cluster::ContainerId> TakeRetiredContainers();

  // Translations, valid for the current snapshot version.
  [[nodiscard]] cluster::ContainerId ContainerOf(PodUid uid) const;
  [[nodiscard]] PodUid PodOfContainer(cluster::ContainerId c) const;
  [[nodiscard]] cluster::MachineId MachineOf(const std::string& node) const;
  [[nodiscard]] const std::string& NodeOfMachine(cluster::MachineId m) const;

 private:
  void SyncTopologyIfDirty();  // full rebuild; node changes are structural
  void SyncWorkloadIfDirty();  // appends containers for newly seen pods
  void RetireContainer(PodUid uid);
  // Moves `uid` between the pending/bound indices on a phase change.
  void ReindexPhase(PodUid uid, PodPhase from, PodPhase to);

  std::map<PodUid, Pod> pods_;          // ordered: deterministic scans
  std::map<std::string, Node> nodes_;
  // Phase indices over pods_: uid-sorted so PendingPods()/BoundPods() keep
  // the deterministic ascending order without rescanning the whole store.
  std::set<PodUid> pending_index_;
  std::set<PodUid> bound_index_;

  bool topology_dirty_ = true;
  bool workload_dirty_ = false;
  std::int64_t version_ = 0;
  std::int64_t topology_version_ = 0;
  trace::Workload workload_;
  cluster::Topology topology_;

  // Pods whose containers have not been materialised yet, in arrival order.
  std::vector<PodUid> pending_materialise_;
  std::unordered_map<std::string, cluster::ApplicationId> app_of_owner_;
  // Cross-owner anti-affinity rules awaiting their target owner's first
  // pod: target owner name -> source application.
  std::multimap<std::string, cluster::ApplicationId> deferred_rules_;
  std::vector<cluster::ContainerId> retired_;

  std::unordered_map<PodUid, cluster::ContainerId> container_of_pod_;
  std::vector<PodUid> pod_of_container_;          // by container index
  std::unordered_map<std::string, cluster::MachineId> machine_of_node_;
  std::vector<std::string> node_of_machine_;      // by machine index
};

}  // namespace aladdin::k8s

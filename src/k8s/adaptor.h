// Model Adaptor (MA) — §IV.C, Fig. 6: "decouples Kubernetes objects from
// their scheduling implementation by delegating the watching and binding
// APIs".
//
// The adaptor consumes the EHC's pre-processed event stream, maintains the
// live object store (pods, nodes), and materialises the scheduling-side
// view on demand: a trace::Workload (owners -> applications, pods ->
// containers, anti-affinity specs -> constraint rules) and a
// cluster::Topology (zone/rack labels -> sub-cluster/rack vertices), plus
// the uid <-> ContainerId and node-name <-> MachineId translations the
// resolver needs to turn placements back into Bindings.
//
// Snapshots are rebuilt lazily when the object set changed; ids are stable
// within one snapshot version and deterministic across rebuilds (ordered
// by uid / name).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/topology.h"
#include "k8s/events.h"
#include "k8s/objects.h"
#include "trace/workload.h"

namespace aladdin::k8s {

class ModelAdaptor {
 public:
  // Wire into an EHC: the adaptor subscribes itself.
  void Attach(EventsHandlingCenter& ehc);

  // Direct event entry (used by Attach's subscription and by tests).
  void OnEvent(const Event& event);

  // --- live object store ---------------------------------------------
  [[nodiscard]] const Pod* FindPod(PodUid uid) const;
  Pod* MutablePod(PodUid uid);
  [[nodiscard]] std::size_t pod_count() const { return pods_.size(); }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::vector<PodUid> PendingPods() const;
  [[nodiscard]] std::vector<PodUid> BoundPods() const;

  // --- scheduling-side snapshot (lazily rebuilt) ----------------------
  const trace::Workload& workload();
  const cluster::Topology& topology();
  // Snapshot version; bumps whenever a rebuild happened.
  [[nodiscard]] std::int64_t snapshot_version() const { return version_; }

  // Translations, valid for the current snapshot version.
  [[nodiscard]] cluster::ContainerId ContainerOf(PodUid uid) const;
  [[nodiscard]] PodUid PodOfContainer(cluster::ContainerId c) const;
  [[nodiscard]] cluster::MachineId MachineOf(const std::string& node) const;
  [[nodiscard]] const std::string& NodeOfMachine(cluster::MachineId m) const;

 private:
  void MarkDirty() { dirty_ = true; }
  void RebuildIfDirty();

  std::map<PodUid, Pod> pods_;          // ordered: deterministic rebuilds
  std::map<std::string, Node> nodes_;

  bool dirty_ = true;
  std::int64_t version_ = 0;
  trace::Workload workload_;
  cluster::Topology topology_;
  std::unordered_map<PodUid, cluster::ContainerId> container_of_pod_;
  std::vector<PodUid> pod_of_container_;          // by container index
  std::unordered_map<std::string, cluster::MachineId> machine_of_node_;
  std::vector<std::string> node_of_machine_;      // by machine index
};

}  // namespace aladdin::k8s

#include "k8s/adaptor.h"

#include <algorithm>

#include "common/log.h"

namespace aladdin::k8s {

void ModelAdaptor::Attach(EventsHandlingCenter& ehc) {
  ehc.Subscribe([this](const Event& event) { OnEvent(event); });
}

void ModelAdaptor::OnEvent(const Event& event) {
  switch (event.type) {
    case EventType::kPodAdded: {
      Pod pod = event.pod;
      if (pod.phase == PodPhase::kDeleted) break;
      pods_[pod.uid] = std::move(pod);
      MarkDirty();
      break;
    }
    case EventType::kPodDeleted: {
      pods_.erase(event.pod.uid);
      MarkDirty();
      break;
    }
    case EventType::kNodeAdded: {
      nodes_[event.node.name] = event.node;
      MarkDirty();
      break;
    }
    case EventType::kNodeRemoved: {
      nodes_.erase(event.node.name);
      // Pods bound to the lost node fall back to Pending (the controller
      // would recreate them; we keep the same uid for simplicity).
      for (auto& [uid, pod] : pods_) {
        (void)uid;
        if (pod.phase == PodPhase::kBound && pod.node == event.node.name) {
          pod.phase = PodPhase::kPending;
          pod.node.clear();
        }
      }
      MarkDirty();
      break;
    }
  }
}

const Pod* ModelAdaptor::FindPod(PodUid uid) const {
  const auto it = pods_.find(uid);
  return it == pods_.end() ? nullptr : &it->second;
}

Pod* ModelAdaptor::MutablePod(PodUid uid) {
  const auto it = pods_.find(uid);
  return it == pods_.end() ? nullptr : &it->second;
}

std::vector<PodUid> ModelAdaptor::PendingPods() const {
  std::vector<PodUid> out;
  for (const auto& [uid, pod] : pods_) {
    if (pod.phase == PodPhase::kPending) out.push_back(uid);
  }
  return out;
}

std::vector<PodUid> ModelAdaptor::BoundPods() const {
  std::vector<PodUid> out;
  for (const auto& [uid, pod] : pods_) {
    if (pod.phase == PodPhase::kBound) out.push_back(uid);
  }
  return out;
}

const trace::Workload& ModelAdaptor::workload() {
  RebuildIfDirty();
  return workload_;
}

const cluster::Topology& ModelAdaptor::topology() {
  RebuildIfDirty();
  return topology_;
}

cluster::ContainerId ModelAdaptor::ContainerOf(PodUid uid) const {
  const auto it = container_of_pod_.find(uid);
  return it == container_of_pod_.end() ? cluster::ContainerId::Invalid()
                                       : it->second;
}

PodUid ModelAdaptor::PodOfContainer(cluster::ContainerId c) const {
  const auto idx = static_cast<std::size_t>(c.value());
  return idx < pod_of_container_.size() ? pod_of_container_[idx] : -1;
}

cluster::MachineId ModelAdaptor::MachineOf(const std::string& node) const {
  const auto it = machine_of_node_.find(node);
  return it == machine_of_node_.end() ? cluster::MachineId::Invalid()
                                      : it->second;
}

const std::string& ModelAdaptor::NodeOfMachine(cluster::MachineId m) const {
  static const std::string kUnknown;
  const auto idx = static_cast<std::size_t>(m.value());
  return idx < node_of_machine_.size() ? node_of_machine_[idx] : kUnknown;
}

void ModelAdaptor::RebuildIfDirty() {
  if (!dirty_) return;
  dirty_ = false;
  ++version_;

  // ---- topology: zones -> sub-clusters, racks -> racks, by name order.
  topology_ = cluster::Topology();
  machine_of_node_.clear();
  node_of_machine_.clear();
  std::map<std::string, cluster::SubClusterId> zones;
  std::map<std::pair<std::string, std::string>, cluster::RackId> racks;
  for (const auto& [name, node] : nodes_) {
    auto zit = zones.find(node.zone);
    if (zit == zones.end()) {
      zit = zones.emplace(node.zone, topology_.AddSubCluster()).first;
    }
    const auto rack_key = std::make_pair(node.zone, node.rack);
    auto rit = racks.find(rack_key);
    if (rit == racks.end()) {
      rit = racks.emplace(rack_key, topology_.AddRack(zit->second)).first;
    }
    const cluster::MachineId m =
        topology_.AddMachine(rit->second, node.capacity);
    machine_of_node_[name] = m;
    node_of_machine_.push_back(name);
  }

  // ---- workload: group pods by owner, first-seen (lowest uid) order.
  workload_ = trace::Workload();
  container_of_pod_.clear();
  pod_of_container_.clear();
  struct OwnerGroup {
    std::vector<PodUid> members;  // uid order (map iteration)
  };
  std::vector<std::string> owner_order;
  std::map<std::string, OwnerGroup> owners;
  for (const auto& [uid, pod] : pods_) {
    auto [it, inserted] = owners.try_emplace(pod.spec.app);
    if (inserted) owner_order.push_back(pod.spec.app);
    it->second.members.push_back(uid);
  }
  // owner_order is first-seen by uid because pods_ iterates by uid.
  std::map<std::string, cluster::ApplicationId> app_ids;
  for (const std::string& owner : owner_order) {
    const OwnerGroup& group = owners.at(owner);
    const Pod& prototype = pods_.at(group.members.front());
    // Pods of one owner are isomorphic; the prototype's spec is canonical.
    const auto app = workload_.AddApplication(
        owner, group.members.size(), prototype.spec.requests,
        prototype.spec.priority, prototype.spec.anti_affinity_within);
    app_ids[owner] = app;
    const auto& containers = workload_.application(app).containers;
    for (std::size_t i = 0; i < group.members.size(); ++i) {
      container_of_pod_[group.members[i]] = containers[i];
      if (static_cast<std::size_t>(containers[i].value()) >=
          pod_of_container_.size()) {
        pod_of_container_.resize(
            static_cast<std::size_t>(containers[i].value()) + 1, -1);
      }
      pod_of_container_[static_cast<std::size_t>(containers[i].value())] =
          group.members[i];
    }
  }
  // Cross-owner anti-affinity, resolvable only once all owners are known.
  for (const std::string& owner : owner_order) {
    const Pod& prototype = pods_.at(owners.at(owner).members.front());
    for (const std::string& other : prototype.spec.anti_affinity_apps) {
      const auto it = app_ids.find(other);
      if (it == app_ids.end()) {
        LOG_DEBUG << "anti-affinity target '" << other
                  << "' has no pods yet; rule deferred to next rebuild";
        continue;
      }
      workload_.AddAntiAffinity(app_ids.at(owner), it->second);
    }
  }
}

}  // namespace aladdin::k8s

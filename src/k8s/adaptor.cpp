#include "k8s/adaptor.h"

#include <algorithm>
#include <utility>

#include "common/log.h"

namespace aladdin::k8s {

void ModelAdaptor::Attach(EventsHandlingCenter& ehc) {
  ehc.Subscribe([this](const Event& event) { OnEvent(event); });
}

void ModelAdaptor::OnEvent(const Event& event) {
  switch (event.type) {
    case EventType::kPodAdded: {
      Pod pod = event.pod;
      if (pod.phase == PodPhase::kDeleted) break;
      ++version_;
      const auto it = pods_.find(pod.uid);
      if (it != pods_.end()) {
        // Update of a tracked pod. Its container id is already assigned and
        // never moves; if the update dropped or moved the binding, any
        // persistent consumer must evict the old placement.
        if (it->second.phase == PodPhase::kBound &&
            (pod.phase != PodPhase::kBound || pod.node != it->second.node)) {
          RetireContainer(pod.uid);
        }
        ReindexPhase(pod.uid, it->second.phase, pod.phase);
        it->second = std::move(pod);
        break;
      }
      const PodUid uid = pod.uid;
      const PodPhase phase = pod.phase;
      pods_.emplace(uid, std::move(pod));
      if (phase == PodPhase::kPending) pending_index_.insert(uid);
      if (phase == PodPhase::kBound) bound_index_.insert(uid);
      pending_materialise_.push_back(uid);
      workload_dirty_ = true;
      break;
    }
    case EventType::kPodDeleted: {
      const auto it = pods_.find(event.pod.uid);
      if (it == pods_.end()) break;
      ++version_;
      // The container becomes a tombstone: it keeps its id (ids are
      // append-only) but is never scheduled again.
      RetireContainer(event.pod.uid);
      const auto cit = container_of_pod_.find(event.pod.uid);
      if (cit != container_of_pod_.end()) {
        pod_of_container_[static_cast<std::size_t>(cit->second.value())] = -1;
        container_of_pod_.erase(cit);
      }
      if (it->second.phase == PodPhase::kPending) {
        pending_index_.erase(event.pod.uid);
      }
      if (it->second.phase == PodPhase::kBound) {
        bound_index_.erase(event.pod.uid);
      }
      pods_.erase(it);
      break;
    }
    case EventType::kNodeAdded: {
      ++version_;
      nodes_[event.node.name] = event.node;
      topology_dirty_ = true;
      break;
    }
    case EventType::kNodeRemoved: {
      ++version_;
      nodes_.erase(event.node.name);
      // Pods bound to the lost node fall back to Pending (the controller
      // would recreate them; we keep the same uid for simplicity).
      for (auto& [uid, pod] : pods_) {
        if (pod.phase == PodPhase::kBound && pod.node == event.node.name) {
          ReindexPhase(uid, pod.phase, PodPhase::kPending);
          pod.phase = PodPhase::kPending;
          pod.node.clear();
        }
      }
      topology_dirty_ = true;
      break;
    }
  }
}

void ModelAdaptor::RetireContainer(PodUid uid) {
  const auto it = container_of_pod_.find(uid);
  if (it != container_of_pod_.end()) retired_.push_back(it->second);
}

std::vector<cluster::ContainerId> ModelAdaptor::TakeRetiredContainers() {
  return std::exchange(retired_, {});
}

const Pod* ModelAdaptor::FindPod(PodUid uid) const {
  const auto it = pods_.find(uid);
  return it == pods_.end() ? nullptr : &it->second;
}

Pod* ModelAdaptor::MutablePod(PodUid uid) {
  const auto it = pods_.find(uid);
  return it == pods_.end() ? nullptr : &it->second;
}

std::vector<PodUid> ModelAdaptor::PendingPods() const {
  return {pending_index_.begin(), pending_index_.end()};
}

std::vector<PodUid> ModelAdaptor::BoundPods() const {
  return {bound_index_.begin(), bound_index_.end()};
}

void ModelAdaptor::ReindexPhase(PodUid uid, PodPhase from, PodPhase to) {
  if (from == to) return;
  if (from == PodPhase::kPending) pending_index_.erase(uid);
  if (from == PodPhase::kBound) bound_index_.erase(uid);
  if (to == PodPhase::kPending) pending_index_.insert(uid);
  if (to == PodPhase::kBound) bound_index_.insert(uid);
}

void ModelAdaptor::BindPod(Pod& pod, const std::string& node,
                           std::int64_t tick) {
  ReindexPhase(pod.uid, pod.phase, PodPhase::kBound);
  pod.phase = PodPhase::kBound;
  pod.node = node;
  pod.bound_at_tick = tick;
}

void ModelAdaptor::UnbindPod(Pod& pod) {
  ReindexPhase(pod.uid, pod.phase, PodPhase::kPending);
  pod.phase = PodPhase::kPending;
  pod.node.clear();
}

// Either accessor syncs both views: the translation tables (ContainerOf,
// MachineOf) have always been "valid for the current snapshot", regardless
// of which half a caller touched first.

const trace::Workload& ModelAdaptor::workload() {
  SyncTopologyIfDirty();
  SyncWorkloadIfDirty();
  return workload_;
}

const cluster::Topology& ModelAdaptor::topology() {
  SyncTopologyIfDirty();
  SyncWorkloadIfDirty();
  return topology_;
}

cluster::ContainerId ModelAdaptor::ContainerOf(PodUid uid) const {
  const auto it = container_of_pod_.find(uid);
  return it == container_of_pod_.end() ? cluster::ContainerId::Invalid()
                                       : it->second;
}

PodUid ModelAdaptor::PodOfContainer(cluster::ContainerId c) const {
  const auto idx = static_cast<std::size_t>(c.value());
  return idx < pod_of_container_.size() ? pod_of_container_[idx] : -1;
}

cluster::MachineId ModelAdaptor::MachineOf(const std::string& node) const {
  const auto it = machine_of_node_.find(node);
  return it == machine_of_node_.end() ? cluster::MachineId::Invalid()
                                      : it->second;
}

const std::string& ModelAdaptor::NodeOfMachine(cluster::MachineId m) const {
  // analyze:allow(A102) function-local static, constructed once; empty string does not allocate
  static const std::string kUnknown;
  const auto idx = static_cast<std::size_t>(m.value());
  return idx < node_of_machine_.size() ? node_of_machine_[idx] : kUnknown;
}

void ModelAdaptor::SyncTopologyIfDirty() {
  if (!topology_dirty_) return;
  topology_dirty_ = false;
  ++topology_version_;

  // Zones -> sub-clusters, racks -> racks, by name order. Node changes
  // renumber machines, which is why every topology-derived structure keys
  // off topology_version().
  topology_ = cluster::Topology();
  machine_of_node_.clear();
  node_of_machine_.clear();
  // analyze:allow(A102) topology rebuild runs only when a node add/remove dirtied it
  std::map<std::string, cluster::SubClusterId> zones;
  std::map<std::pair<std::string, std::string>, cluster::RackId> racks;  // analyze:allow(A102) rebuild arm, as above
  for (const auto& [name, node] : nodes_) {
    auto zit = zones.find(node.zone);
    if (zit == zones.end()) {
      zit = zones.emplace(node.zone, topology_.AddSubCluster()).first;
    }
    const auto rack_key = std::make_pair(node.zone, node.rack);
    auto rit = racks.find(rack_key);
    if (rit == racks.end()) {
      rit = racks.emplace(rack_key, topology_.AddRack(zit->second)).first;
    }
    const cluster::MachineId m =
        topology_.AddMachine(rit->second, node.capacity);
    machine_of_node_[name] = m;
    node_of_machine_.push_back(name);
  }
}

void ModelAdaptor::SyncWorkloadIfDirty() {
  if (!workload_dirty_) return;
  workload_dirty_ = false;

  for (const PodUid uid : pending_materialise_) {
    const auto pit = pods_.find(uid);
    if (pit == pods_.end()) continue;  // deleted before materialising
    const Pod& pod = pit->second;
    auto ait = app_of_owner_.find(pod.spec.app);
    if (ait == app_of_owner_.end()) {
      // First pod of this owner: it is the prototype, its spec is canonical
      // for every later sibling (pods of one owner are isomorphic).
      const cluster::ApplicationId app = workload_.AddApplication(
          pod.spec.app, 1, pod.spec.requests, pod.spec.priority,
          pod.spec.anti_affinity_within);
      ait = app_of_owner_.emplace(pod.spec.app, app).first;
      // Rules other owners filed against this owner become resolvable now.
      const auto [lo, hi] = deferred_rules_.equal_range(pod.spec.app);
      for (auto rit = lo; rit != hi; ++rit) {
        workload_.AddAntiAffinity(rit->second, app);
      }
      deferred_rules_.erase(lo, hi);
      // The prototype's own cross-owner rules: resolve or defer.
      for (const std::string& other : pod.spec.anti_affinity_apps) {
        const auto oit = app_of_owner_.find(other);
        if (oit == app_of_owner_.end()) {
          LOG_DEBUG << "anti-affinity target '" << other
                    << "' has no pods yet; rule deferred";
          deferred_rules_.emplace(other, app);
        } else {
          workload_.AddAntiAffinity(app, oit->second);
        }
      }
      const cluster::ContainerId c =
          workload_.application(app).containers.front();
      container_of_pod_[uid] = c;
      // analyze:allow(A103) grows with the container high-water mark
      pod_of_container_.resize(workload_.container_count(), -1);
      pod_of_container_[static_cast<std::size_t>(c.value())] = uid;
      continue;
    }
    const cluster::ContainerId c = workload_.AddContainer(ait->second);
    container_of_pod_[uid] = c;
    // analyze:allow(A103) grows with the container high-water mark
    pod_of_container_.resize(workload_.container_count(), -1);
    pod_of_container_[static_cast<std::size_t>(c.value())] = uid;
  }
  pending_materialise_.clear();
}

}  // namespace aladdin::k8s

// Resolver (RE) — §IV.C, Fig. 6: "RE integrates Aladdin to map containers
// to resources."
//
// Each Resolve() builds the scheduling view from the model adaptor's
// snapshot, pre-deploys every bound pod, and then:
//   * long-lived pending pods go through the Aladdin core (which may also
//     migrate or preempt bound pods — §III.B);
//   * short-lived pending pods go through the "traditional task-based
//     scheduler" (§IV.D): plain best-fit on resources, no constraint
//     machinery.
// The resulting placement diff is translated back into Bindings (new
// placements and migrations) and pod-phase updates.
#pragma once

#include <cstdint>
#include <vector>

#include "core/scheduler.h"
#include "k8s/adaptor.h"

namespace aladdin::k8s {

struct ResolveStats {
  std::int64_t tick = 0;
  std::size_t pending_before = 0;
  std::size_t new_bindings = 0;   // previously-pending pods now bound
  std::size_t migrations = 0;     // bound pods moved to a different node
  std::size_t preemptions = 0;    // bound pods returned to pending
  std::size_t unschedulable = 0;  // pending pods the resolver gave up on
  double wall_seconds = 0.0;
};

class Resolver {
 public:
  explicit Resolver(ModelAdaptor& adaptor,
                    core::AladdinOptions options = DefaultOptions());

  // One scheduling pass over the current snapshot. `tick` stamps bindings.
  ResolveStats Resolve(std::int64_t tick, std::vector<Binding>* bindings =
                                              nullptr);

  // Resolver defaults: compaction off — in the live integration a
  // "compaction" is a disruptive pod restart, so the resolver only
  // migrates when a placement needs repair, mirroring Fig. 7's
  // rescheduling rather than continuous defragmentation.
  static core::AladdinOptions DefaultOptions() {
    core::AladdinOptions options;
    options.enable_compaction = false;
    return options;
  }

 private:
  ModelAdaptor& adaptor_;
  core::AladdinOptions options_;
};

}  // namespace aladdin::k8s

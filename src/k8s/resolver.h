// Resolver (RE) — §IV.C, Fig. 6: "RE integrates Aladdin to map containers
// to resources."
//
// Each Resolve() reconciles the scheduling view with the model adaptor's
// snapshot and then:
//   * long-lived pending pods go through the Aladdin core (which may also
//     migrate or preempt bound pods — §III.B);
//   * short-lived pending pods go through the "traditional task-based
//     scheduler" (§IV.D): plain best-fit on resources, no constraint
//     machinery.
// The resulting placement diff is translated back into Bindings (new
// placements and migrations) and pod-phase updates.
//
// By default the resolver is *incremental*: one ClusterState (plus the
// Aladdin scheduler's aggregated network and the task scheduler's free
// index) lives across Resolve() calls, synced from the adaptor's
// retired-container journal and the state's own dirty log — so a tick's
// cost scales with the churn, not the cluster. A topology change (node
// add/remove renumbers machines) falls back to a full rebuild, keyed on
// ModelAdaptor::topology_version(). `incremental = false` reproduces the
// historical rebuild-everything-per-tick path; both modes produce
// identical placements, which the equivalence tests pin down.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "cluster/free_index.h"
#include "common/arena.h"
#include "core/scheduler.h"
#include "core/sharded.h"
#include "k8s/adaptor.h"
#include "obs/journal.h"
#include "obs/lifecycle.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/watchdog.h"

namespace aladdin::k8s {

struct ResolveStats {
  std::int64_t tick = 0;
  std::size_t pending_before = 0;
  std::size_t new_bindings = 0;   // previously-pending pods now bound
  std::size_t migrations = 0;     // bound pods moved to a different node
  std::size_t preemptions = 0;    // bound pods returned to pending
  std::size_t unschedulable = 0;  // pending pods the resolver gave up on
  // Per-cause breakdown of `unschedulable` (non-zero causes only, in
  // obs::Cause enum order; counts sum to `unschedulable`). Long-lived pods
  // carry the Aladdin core's terminal diagnosis, short-lived pods a
  // resource-only one (best-fit has no constraint machinery).
  std::vector<std::pair<obs::Cause, std::size_t>> unschedulable_causes;
  double wall_seconds = 0.0;

  // Phase breakdown of this resolve from the obs registry (empty unless
  // metrics were armed). Exclusive phases partition the resolve; their
  // seconds-sum approximates wall_seconds (the bench coverage check).
  // With shards > 1 the shard solves run concurrently, so the exclusive
  // sum reports aggregate CPU seconds and may exceed wall_seconds.
  std::vector<obs::PhaseDelta> phases;

  // Per-shard breakdown of the long-lived solve (empty unless
  // ResolverOptions::shards > 0).
  std::vector<core::ShardTickStats> shards;

  // Micro-batch sizes the long-lived arm solved this resolve (empty unless
  // ResolverOptions::batch > 0 and the deadline elapsed). One entry per
  // chunk handed to ScheduleBatch; the benches fold these into the batch
  // size histogram.
  std::vector<std::size_t> batch_sizes;

  // Lifecycle / SLO view after this resolve (ResolverOptions::lifecycle).
  // Exact tick integers mutated only from serial sections, so both are
  // bit-identical across thread counts and across shards 0/1 — the same
  // determinism bar as the journal.
  obs::PendingAgeStats pending_ages;  // ages of still-pending spans
  obs::SloSnapshot slo;               // cumulative attainment (capped rows)
};

struct ResolverOptions {
  core::AladdinOptions aladdin;
  // Keep scheduling state alive across Resolve() calls (see file comment).
  bool incremental = true;
  // Shard the long-lived solve across this many disjoint machine
  // partitions, solved concurrently (core::ShardedScheduler). 0 keeps the
  // single-solver path; 1 runs the sharded coordinator with one shard,
  // which produces bit-identical output to 0 (the equivalence tests pin
  // this down). `aladdin.threads` becomes the shard-solve pool size.
  int shards = 0;
  core::ShardRouting routing = core::ShardRouting::kLeastUtilized;
  // Track per-container lifecycle spans and admission-SLO attainment
  // (obs/lifecycle.h, obs/slo.h). Adds O(pending) exact-integer accounting
  // per resolve; placements are unaffected.
  bool lifecycle = true;
  // Admission objective: `slo.percent`% of containers placed within
  // `slo.wait_ticks` ticks of arrival.
  obs::SloObjective slo;
  // Micro-batch size for the long-lived arm (ISSUE 9). 0 keeps the classic
  // one-solve-per-tick path. >0 splits each tick's long-lived arrival into
  // chunks of this size, solved via AladdinScheduler::ScheduleBatch (one
  // warm network refresh, weights hoisted once per batch). A chunk covering
  // the whole tick is bit-identical to batch = 0; smaller chunks reorder
  // the weight sort per chunk, which is the point of micro-batching.
  // Incremental path only (the full-rebuild arm stays the historical
  // baseline).
  int batch = 0;
  // With batch > 0, long-lived pods are only solved on ticks where
  // (tick + 1) is a multiple of this deadline; other ticks defer them
  // (cause kBatchDeferred, SLO clocks keep running). 1 = solve every tick.
  int batch_deadline_ticks = 1;
  // Place runs of consecutive short-lived pods with identical requests via
  // core::TaskScheduler::PlaceRun (bit-identical to per-pod best fit,
  // without the per-task rescan). A/B knob for the equivalence tests.
  bool task_run_placement = true;
  // Run the cluster health watchdog (obs/watchdog.h): six anomaly
  // detectors evaluated once per resolve from the serial epilogue, feeding
  // typed alerts into the journal, metrics and the /alertz endpoint.
  // Requires `lifecycle` (the detectors consume its SLO / pending-age /
  // epoch signals); placements are unaffected either way.
  bool watchdog = false;
  obs::WatchdogOptions watchdog_options;
};

class Resolver {
 public:
  explicit Resolver(ModelAdaptor& adaptor,
                    core::AladdinOptions options = DefaultOptions());
  Resolver(ModelAdaptor& adaptor, ResolverOptions options);

  // One scheduling pass over the current snapshot. `tick` stamps bindings.
  ResolveStats Resolve(std::int64_t tick, std::vector<Binding>* bindings =
                                              nullptr);

  // The health watchdog (alerts, counters, determinism fingerprint). Only
  // fed when ResolverOptions::watchdog is set; snapshotting is always safe.
  [[nodiscard]] const obs::Watchdog& watchdog() const { return watchdog_; }

  // Resolver defaults: compaction off — in the live integration a
  // "compaction" is a disruptive pod restart, so the resolver only
  // migrates when a placement needs repair, mirroring Fig. 7's
  // rescheduling rather than continuous defragmentation.
  static core::AladdinOptions DefaultOptions() {
    core::AladdinOptions options;
    options.enable_compaction = false;
    return options;
  }

 private:
  // Rebuilds state_ / free_index_ from the adaptor snapshot (bound pods
  // pre-deployed) and records the topology version they were built for.
  // `tick` closes the lifecycle spans of containers retired by the rebuild.
  void RebuildState(std::int64_t tick);
  // Brings the persistent state in line with adaptor-side changes since the
  // last tick: workload growth and retired (deleted/unbound) containers.
  void SyncState(std::int64_t tick);
  void SyncFreeIndex();

  // Opens lifecycle spans (and interns app names with the SLO engine) for
  // pending pods not already tracked. Serial section; journals kPodArrived.
  void TrackArrivals(const std::vector<PodUid>& pending,
                     const cluster::ClusterState& state, std::int64_t tick);
  // Shared lifecycle epilogue of both arms: pending-age summary, SLO
  // snapshot into `stats`, watchdog tick (options_.watchdog), introspection
  // publish for /statusz + /slo + /alertz. Expects
  // stats.unschedulable_causes to be filled already (the cause-mix
  // detector's input). `solve_cost` is the tick's deterministic solve
  // effort; `solve_wall_micros` is wall-clock evidence only.
  void FinishLifecycle(ResolveStats& stats,
                       const cluster::ClusterState& state, std::int64_t tick,
                       std::int64_t solve_cost,
                       std::int64_t solve_wall_micros);

  // The sharded-coordinator configuration derived from `options` (inner
  // solver options, pool size, routing policy).
  [[nodiscard]] core::ShardedOptions ShardedConfig() const;

  ModelAdaptor& adaptor_;
  ResolverOptions options_;
  core::AladdinScheduler scheduler_;  // owns the persistent network + pool
  // Sharded long-lived arm (options_.shards > 0): replaces scheduler_ for
  // the persistent path; the full-rebuild arm constructs a fresh one per
  // resolve, mirroring its fresh AladdinScheduler.
  std::unique_ptr<core::ShardedScheduler> sharded_;

  std::optional<cluster::ClusterState> state_;
  cluster::FreeIndex free_index_;
  std::uint64_t free_index_cursor_ = 0;
  std::int64_t built_topology_version_ = -1;

  // Per-tick pooling for the incremental path: the long/short-lived splits
  // persist as member scratch (long_lived_ must stay a std::vector — it is
  // handed to ScheduleRequest by pointer), the reconcile-phase lookup table
  // lives in the arena, reset each Resolve().
  Arena arena_;
  std::vector<cluster::ContainerId> long_lived_;
  std::vector<PodUid> short_lived_;
  // Micro-batch scratch (options_.batch > 0): chunk vectors are built in
  // full *before* any ScheduleRequest takes a pointer to one — the outer
  // vector may reallocate while chunks are appended, so interleaving the
  // two would leave dangling arrival pointers. Inner vectors keep their
  // capacity across resolves.
  std::vector<std::vector<cluster::ContainerId>> batch_chunks_;
  std::vector<sim::ScheduleRequest> batch_requests_;
  // Short-lived run-placement scratch (options_.task_run_placement).
  std::vector<cluster::ContainerId> task_run_;
  std::vector<cluster::MachineId> task_out_;

  // Lifecycle ledger + SLO engine (options_.lifecycle) and the health
  // watchdog (options_.watchdog). Shared by both resolve arms and mutated
  // only from their serial sections.
  obs::LifecycleLedger ledger_;
  obs::SloEngine slo_;
  obs::Watchdog watchdog_;
};

}  // namespace aladdin::k8s

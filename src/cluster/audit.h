// Independent constraint auditor.
//
// Schedulers never self-report violations: after a run, the auditor recounts
// everything from the raw placements in the ClusterState. This is the data
// source for Fig. 9 (constraint violations per scheduler and the
// anti-affinity share of violations) and the machine/utilisation numbers in
// Fig. 10–11.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/state.h"

namespace aladdin::cluster {

// Why an unplaced container could not be deployed, judged post-hoc against
// the final cluster state (§V.B methodology: undeployed containers ARE the
// violation count; Fig. 9e splits them by cause).
enum class UnplacedCause {
  kResources,     // no machine has enough free resources even ignoring policy
  kAntiAffinity,  // resources exist but every fitting machine is blacklisted
  kScheduler,     // a feasible machine exists; the scheduler just missed it
};

struct AuditReport {
  std::size_t total_containers = 0;
  std::size_t placed = 0;
  std::size_t unplaced = 0;

  // Unplaced broken down by cause.
  std::size_t unplaced_resources = 0;
  std::size_t unplaced_anti_affinity = 0;
  std::size_t unplaced_scheduler = 0;

  // Containers placed in violation of an anti-affinity rule (each offending
  // container counted once).
  std::size_t colocation_violations = 0;

  // Unplaced containers whose application carries any anti-affinity rule —
  // their unsatisfied constraint is anti-affinity-typed regardless of the
  // proximate cause above. Drives Fig. 9(e).
  std::size_t unplaced_aa_constrained = 0;

  // Priority inversions: an unplaced container outranked by some placed
  // container whose eviction would have made room on a non-blacklisted
  // machine.
  std::size_t priority_inversions = 0;

  // Paper metric for Fig. 9(a–d): violations as % of total containers.
  // Unplaced containers and violating placements both count.
  [[nodiscard]] double ViolationPercent() const;

  // Fig. 9(e): the share of all violations that are anti-affinity-typed —
  // violating placements plus unplaced containers of anti-affinity-
  // constrained applications, over all violations.
  [[nodiscard]] double AntiAffinityShare() const;

  [[nodiscard]] std::size_t TotalViolations() const {
    return unplaced + colocation_violations;
  }
};

// Full audit of a final state. O(placed + unplaced·scan) where the per-
// unplaced scan terminates at the first feasible machine.
AuditReport Audit(const ClusterState& state);

// Lists each placed container that violates an anti-affinity rule (for
// debugging and the property tests).
std::vector<ContainerId> CollectColocationViolations(const ClusterState& state);

}  // namespace aladdin::cluster

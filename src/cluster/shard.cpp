#include "cluster/shard.h"

#include <algorithm>

#include "common/check.h"

namespace aladdin::cluster {

ShardPlan ShardPlan::Build(const Topology& topology, int shards) {
  const std::size_t machines = topology.machine_count();
  ALADDIN_CHECK(machines > 0) << "ShardPlan: empty topology";
  const int k = std::clamp(shards, 1, static_cast<int>(machines));

  ShardPlan plan;
  plan.shard_of_.assign(machines, 0);
  plan.local_of_.assign(machines, 0);
  plan.shards_.resize(static_cast<std::size_t>(k));

  if (k == 1) {
    // Verbatim copy: local ids equal global ids whatever shape the topology
    // has, so a K=1 shard solve replays the unsharded solve exactly.
    plan.shards_[0].topology = topology;
    plan.shards_[0].to_global.reserve(machines);
    for (std::size_t m = 0; m < machines; ++m) {
      plan.local_of_[m] = static_cast<std::int32_t>(m);
      plan.shards_[0].to_global.push_back(MachineId(static_cast<std::int32_t>(m)));
    }
    return plan;
  }

  // Pick the coarsest partition unit that still yields K non-empty shards:
  // whole subclusters when possible (keeps the flow network's G_k layer
  // intact per shard), then racks, then single machines.
  enum class Unit : std::uint8_t { kSubCluster, kRack, kMachine };
  Unit unit = Unit::kMachine;
  std::size_t unit_count = machines;
  if (topology.subcluster_count() >= static_cast<std::size_t>(k)) {
    unit = Unit::kSubCluster;
    unit_count = topology.subcluster_count();
  } else if (topology.rack_count() >= static_cast<std::size_t>(k)) {
    unit = Unit::kRack;
    unit_count = topology.rack_count();
  }

  // Greedy balance: units in ascending id order, each to the shard with the
  // fewest machines so far (ties to the lowest shard id). Deterministic, and
  // with units in id order the first K units land on K distinct shards.
  std::vector<std::size_t> load(static_cast<std::size_t>(k), 0);
  const auto unit_machines = [&](std::size_t u) {
    std::size_t n = 0;
    switch (unit) {
      case Unit::kSubCluster:
        for (const RackId r :
             topology.SubClusterRacks(SubClusterId(static_cast<std::int32_t>(u))))
          n += topology.RackMachines(r).size();
        break;
      case Unit::kRack:
        n = topology.RackMachines(RackId(static_cast<std::int32_t>(u))).size();
        break;
      case Unit::kMachine:
        n = 1;
        break;
    }
    return n;
  };
  std::vector<std::int32_t> shard_of_unit(unit_count, 0);
  for (std::size_t u = 0; u < unit_count; ++u) {
    std::size_t best = 0;
    for (std::size_t s = 1; s < load.size(); ++s) {
      if (load[s] < load[best]) best = s;
    }
    shard_of_unit[u] = static_cast<std::int32_t>(best);
    load[best] += unit_machines(u);
  }
  const auto shard_of_machine = [&](MachineId m) {
    const Machine& machine = topology.machine(m);
    switch (unit) {
      case Unit::kSubCluster:
        return shard_of_unit[static_cast<std::size_t>(machine.subcluster.value())];
      case Unit::kRack:
        return shard_of_unit[static_cast<std::size_t>(machine.rack.value())];
      case Unit::kMachine:
      default:
        return shard_of_unit[static_cast<std::size_t>(m.value())];
    }
  };

  // Build the per-shard local topologies by walking the global hierarchy in
  // id order, lazily creating each shard's local subcluster/rack on first
  // touch. Iteration order is global-id order, so local machine ids are
  // assigned in ascending global-id order within each shard.
  std::vector<std::int32_t> sub_local(topology.subcluster_count() *
                                          static_cast<std::size_t>(k),
                                      -1);
  std::vector<std::int32_t> rack_local(
      topology.rack_count() * static_cast<std::size_t>(k), -1);
  for (std::size_t g = 0; g < topology.subcluster_count(); ++g) {
    const SubClusterId sub(static_cast<std::int32_t>(g));
    for (const RackId r : topology.SubClusterRacks(sub)) {
      for (const MachineId m : topology.RackMachines(r)) {
        const std::int32_t s = shard_of_machine(m);
        Shard& shard = plan.shards_[static_cast<std::size_t>(s)];
        std::int32_t& lsub =
            sub_local[g * static_cast<std::size_t>(k) +
                      static_cast<std::size_t>(s)];
        if (lsub < 0) lsub = shard.topology.AddSubCluster().value();
        std::int32_t& lrack =
            rack_local[static_cast<std::size_t>(r.value()) *
                           static_cast<std::size_t>(k) +
                       static_cast<std::size_t>(s)];
        if (lrack < 0) lrack = shard.topology.AddRack(SubClusterId(lsub)).value();
        const MachineId local =
            shard.topology.AddMachine(RackId(lrack), topology.machine(m).capacity);
        plan.shard_of_[Idx(m)] = s;
        plan.local_of_[Idx(m)] = local.value();
        shard.to_global.push_back(m);
      }
    }
  }
  return plan;
}

ShardView::ShardView(const ShardPlan& plan, int shard,
                     const ClusterState& global)
    : plan_(&plan),
      shard_(shard),
      state_(plan.shard_topology(shard), global.containers(),
             global.applications(), global.constraints()) {
  MirrorAll(global);
}

void ShardView::MirrorMachine(const ClusterState& global,
                              MachineId global_machine) {
  const MachineId local = plan_->LocalOf(global_machine);
  // Pass 1: evict residents the global machine no longer holds. Copy the
  // list first — Evict mutates DeployedOn in place.
  scratch_.assign(state_.DeployedOn(local).begin(),
                  state_.DeployedOn(local).end());
  for (const ContainerId c : scratch_) {
    if (global.PlacementOf(c) != global_machine) state_.Evict(c);
  }
  // Pass 2: deploy what it gained. Evictions-first means the machine's
  // residual residents are a subset of its final residents, so free space
  // is at least the global end-state's free space and every Deploy fits.
  for (const ContainerId c : global.DeployedOn(global_machine)) {
    const MachineId have = state_.PlacementOf(c);
    if (have == local) continue;
    if (have.valid()) state_.Evict(c);
    state_.Deploy(c, local);
  }
}

void ShardView::MirrorAll(const ClusterState& global) {
  for (const MachineId m : plan_->shard_machines(shard_)) {
    MirrorMachine(global, m);
  }
}

}  // namespace aladdin::cluster

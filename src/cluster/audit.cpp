#include "cluster/audit.h"

#include <algorithm>

namespace aladdin::cluster {

double AuditReport::ViolationPercent() const {
  if (total_containers == 0) return 0.0;
  return 100.0 * static_cast<double>(TotalViolations()) /
         static_cast<double>(total_containers);
}

double AuditReport::AntiAffinityShare() const {
  const std::size_t total = TotalViolations();
  if (total == 0) return 0.0;
  return 100.0 *
         static_cast<double>(unplaced_aa_constrained + colocation_violations) /
         static_cast<double>(total);
}

std::vector<ContainerId> CollectColocationViolations(
    const ClusterState& state) {
  std::vector<ContainerId> offenders;
  const auto& containers = state.containers();
  const auto& constraints = state.constraints();
  const auto machine_count = state.topology().machine_count();
  for (std::size_t mi = 0; mi < machine_count; ++mi) {
    const MachineId m(static_cast<std::int32_t>(mi));
    const auto colocated = state.DeployedOn(m);
    for (std::size_t i = 0; i < colocated.size(); ++i) {
      const ApplicationId app_i = containers[static_cast<std::size_t>(
                                                 colocated[i].value())]
                                      .app;
      for (std::size_t j = i + 1; j < colocated.size(); ++j) {
        const ApplicationId app_j = containers[static_cast<std::size_t>(
                                                   colocated[j].value())]
                                        .app;
        if (constraints.Conflicts(app_i, app_j)) {
          // Blame the later-indexed container; one blame per pair keeps the
          // count stable and order-independent.
          offenders.push_back(colocated[j]);
        }
      }
    }
  }
  // A container violating against several peers is still one offender.
  std::sort(offenders.begin(), offenders.end());
  offenders.erase(std::unique(offenders.begin(), offenders.end()),
                  offenders.end());
  return offenders;
}

AuditReport Audit(const ClusterState& state) {
  AuditReport report;
  const auto& containers = state.containers();
  report.total_containers = containers.size();

  report.colocation_violations = CollectColocationViolations(state).size();

  const auto machine_count = state.topology().machine_count();
  // any_lower_placed[p]: some container with priority < p is deployed, i.e.
  // evicting it could in principle make room for a starved class-p container.
  bool any_lower_placed[kPriorityClasses] = {};
  for (const Container& c : containers) {
    if (!state.IsPlaced(c.id)) continue;
    for (Priority p = c.priority + 1; p < kPriorityClasses; ++p) {
      any_lower_placed[p] = true;
    }
  }

  for (const Container& c : containers) {
    if (state.IsPlaced(c.id)) {
      ++report.placed;
      continue;
    }
    ++report.unplaced;
    const bool aa_constrained =
        state.constraints().HasWithinAntiAffinity(c.app) ||
        !state.constraints().ConflictsOf(c.app).empty();
    if (aa_constrained) ++report.unplaced_aa_constrained;
    // Cause attribution: scan machines until we can classify.
    bool fits_ignoring_policy = false;
    bool fits_with_policy = false;
    for (std::size_t mi = 0; mi < machine_count && !fits_with_policy; ++mi) {
      const MachineId m(static_cast<std::int32_t>(mi));
      if (!state.Fits(c.id, m)) continue;
      fits_ignoring_policy = true;
      if (!state.Blacklisted(c.id, m)) fits_with_policy = true;
    }
    if (fits_with_policy) {
      ++report.unplaced_scheduler;
    } else if (fits_ignoring_policy) {
      ++report.unplaced_anti_affinity;
    } else {
      ++report.unplaced_resources;
    }
    // Priority inversion: this container is starved while some strictly
    // lower-priority container occupies capacity.
    if (c.priority > kLowestPriority && c.priority < kPriorityClasses &&
        any_lower_placed[c.priority]) {
      ++report.priority_inversions;
    }
  }
  return report;
}

}  // namespace aladdin::cluster

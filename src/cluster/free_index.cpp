#include "cluster/free_index.h"

#include "common/check.h"

namespace aladdin::cluster {

void FreeIndex::Attach(const ClusterState& state) {
  state_ = &state;
  const auto& machines = state.topology().machines();

  std::int64_t max_capacity = 0;
  for (const Machine& m : machines) {
    max_capacity = std::max(max_capacity, m.capacity.cpu_millis());
  }
  // Width such that the largest possible free value maps inside the table.
  bucket_width_ = std::max<std::int64_t>(
      1, max_capacity / static_cast<std::int64_t>(kBuckets) + 1);

  // analyze:allow(A103) Attach is the rebuild arm; steady ticks take OnChanged
  buckets_.assign(kBuckets, {});
  indexed_free_.assign(machines.size(), 0);  // analyze:allow(A103) rebuild arm, as above
  for (const Machine& m : machines) {
    const std::int64_t free = state.Free(m.id).cpu_millis();
    indexed_free_[static_cast<std::size_t>(m.id.value())] = free;
    buckets_[BucketOf(free)].keys.push_back({free, m.id.value()});
  }
  for (Bucket& bucket : buckets_) {
    std::sort(bucket.keys.begin(), bucket.keys.end());
  }
}

void FreeIndex::OnChanged(MachineId m) {
  ALADDIN_CHECK(state_ != nullptr);
  const auto mi = static_cast<std::size_t>(m.value());
  const std::int64_t old_free = indexed_free_[mi];
  const std::int64_t now = state_->Free(m).cpu_millis();
  if (now == old_free) return;

  Bucket& from = buckets_[BucketOf(old_free)];
  const auto it =
      std::lower_bound(from.begin(), from.end(), Key{old_free, m.value()});
  ALADDIN_DCHECK(it != from.end() && *it == (Key{old_free, m.value()}));
  from.Erase(it);

  buckets_[BucketOf(now)].Insert({now, m.value()});
  indexed_free_[mi] = now;
}

MachineId FreeIndex::TightestWithAtLeast(std::int64_t need) const {
  MachineId found = MachineId::Invalid();
  ScanAscending(need, [&found](MachineId m) {
    found = m;
    return true;
  });
  return found;
}

}  // namespace aladdin::cluster

#include "cluster/free_index.h"

#include "common/check.h"

namespace aladdin::cluster {

void FreeIndex::Attach(const ClusterState& state) {
  state_ = &state;
  by_free_.clear();
  const auto& machines = state.topology().machines();
  indexed_free_.assign(machines.size(), 0);
  for (const Machine& m : machines) {
    const std::int64_t free = state.Free(m.id).cpu_millis();
    indexed_free_[static_cast<std::size_t>(m.id.value())] = free;
    by_free_.insert({free, m.id.value()});
  }
}

void FreeIndex::OnChanged(MachineId m) {
  ALADDIN_CHECK(state_ != nullptr);
  const auto mi = static_cast<std::size_t>(m.value());
  const std::int64_t now = state_->Free(m).cpu_millis();
  if (now == indexed_free_[mi]) return;
  by_free_.erase({indexed_free_[mi], m.value()});
  by_free_.insert({now, m.value()});
  indexed_free_[mi] = now;
}

bool FreeIndex::ScanAscending(std::int64_t min_free_cpu,
                              const std::function<bool(MachineId)>& fn) const {
  for (auto it = by_free_.lower_bound({min_free_cpu, -1}); it != by_free_.end();
       ++it) {
    if (fn(MachineId(it->second))) return true;
  }
  return false;
}

bool FreeIndex::ScanDescending(const std::function<bool(MachineId)>& fn) const {
  for (auto it = by_free_.rbegin(); it != by_free_.rend(); ++it) {
    if (fn(MachineId(it->second))) return true;
  }
  return false;
}

MachineId FreeIndex::TightestWithAtLeast(std::int64_t need) const {
  const auto it = by_free_.lower_bound({need, -1});
  if (it == by_free_.end()) return MachineId::Invalid();
  return MachineId(it->second);
}

}  // namespace aladdin::cluster

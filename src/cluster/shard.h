// Cluster sharding: a deterministic partition of the topology into K
// disjoint machine sets, plus the per-shard scheduling view built on it.
//
// The aggregated flow network s→T→A→G→R→N→t partitions naturally at the
// subcluster/rack layer (§III.A): no arc crosses a subcluster boundary
// except through the source side, so solving each machine subset on its own
// small network is exact for everything but cross-shard routing quality —
// which the coordinator (core::ShardedScheduler) handles above this layer.
//
// ShardPlan is pure data: the unit-granular split (subclusters when there
// are at least K of them, else racks, else single machines), the
// global↔local machine-id translation, and a per-shard Topology whose
// local ids are dense. ShardView wraps one shard's private ClusterState
// (bound to the shard topology but the *shared* container/application/
// constraint tables, so container ids never need translation) and the
// mirror that keeps it in sync with the global state via the scoped dirty
// log.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cluster/state.h"
#include "cluster/topology.h"
#include "common/ids.h"

namespace aladdin::cluster {

class ShardPlan {
 public:
  // Splits `topology` into min(shards, machine_count) shards (at least 1).
  // Deterministic: units are assigned in id order to the least-loaded shard
  // (by machine count, ties to the lowest shard id), so the same topology
  // and K always produce the same plan. K=1 copies the global topology
  // verbatim — local ids equal global ids — which is what makes the K=1
  // solve bit-identical to the unsharded path on any topology.
  static ShardPlan Build(const Topology& topology, int shards);

  [[nodiscard]] int shard_count() const {
    return static_cast<int>(shards_.size());
  }
  [[nodiscard]] std::int32_t ShardOf(MachineId global) const {
    return shard_of_[Idx(global)];
  }
  [[nodiscard]] MachineId LocalOf(MachineId global) const {
    return MachineId(local_of_[Idx(global)]);
  }
  [[nodiscard]] MachineId GlobalOf(int shard, MachineId local) const {
    return shards_[static_cast<std::size_t>(shard)].to_global[Idx(local)];
  }
  [[nodiscard]] const Topology& shard_topology(int shard) const {
    return shards_[static_cast<std::size_t>(shard)].topology;
  }
  // Local id -> global id, in local-id order (so .size() is the shard size).
  [[nodiscard]] std::span<const MachineId> shard_machines(int shard) const {
    return shards_[static_cast<std::size_t>(shard)].to_global;
  }
  // Machine -> shard, in MachineId order: the exact shape
  // ClusterState::ConfigureDirtyScopes expects.
  [[nodiscard]] const std::vector<std::int32_t>& scope_map() const {
    return shard_of_;
  }

 private:
  struct Shard {
    Topology topology;                 // dense local machine ids
    std::vector<MachineId> to_global;  // local id -> global id
  };

  static std::size_t Idx(MachineId m) {
    return static_cast<std::size_t>(m.value());
  }

  std::vector<Shard> shards_;
  std::vector<std::int32_t> shard_of_;  // per global machine
  std::vector<std::int32_t> local_of_;  // per global machine
};

// One shard's private scheduling view: a ClusterState over the shard
// topology and the global state's container tables. The owning coordinator
// mirrors global-side changes in (MirrorMachine, driven by the scoped dirty
// log) and applies solver-side changes out (via the shard state's change
// journal) — between Schedule calls the shard's machines hold exactly the
// same containers as their global counterparts.
class ShardView {
 public:
  // Builds the view and mirrors the global state's current residents in.
  // `plan` and `global`'s tables must outlive the view.
  ShardView(const ShardPlan& plan, int shard, const ClusterState& global);

  [[nodiscard]] int shard() const { return shard_; }
  [[nodiscard]] ClusterState& state() { return state_; }
  [[nodiscard]] const ClusterState& state() const { return state_; }

  [[nodiscard]] MachineId ToGlobal(MachineId local) const {
    return plan_->GlobalOf(shard_, local);
  }
  [[nodiscard]] MachineId ToLocal(MachineId global) const {
    return plan_->LocalOf(global);
  }

  // Re-syncs one machine: evicts residents the global machine no longer
  // holds, then deploys the ones it gained. Idempotent; safe under any
  // processing order of a dirty batch because evictions happen before
  // deployments per machine and the global end-state respects capacity.
  void MirrorMachine(const ClusterState& global, MachineId global_machine);

  // Full resync of every machine in the shard (attach / overflow fallback).
  void MirrorAll(const ClusterState& global);

 private:
  const ShardPlan* plan_;
  int shard_;
  ClusterState state_;
  std::vector<ContainerId> scratch_;  // resident copy during MirrorMachine
};

}  // namespace aladdin::cluster

#include "cluster/state.h"

#include <algorithm>
#include <cassert>

namespace aladdin::cluster {

ClusterState::ClusterState(const Topology& topology,
                           const std::vector<Container>& containers,
                           const std::vector<Application>& applications,
                           const ConstraintSet& constraints)
    : topology_(&topology),
      containers_(&containers),
      applications_(&applications),
      constraints_(&constraints) {
  free_.reserve(topology.machine_count());
  for (const Machine& m : topology.machines()) free_.push_back(m.capacity);
  deployed_.resize(topology.machine_count());
  apps_on_.resize(topology.machine_count());
  placement_.assign(containers.size(), MachineId::Invalid());
}

bool ClusterState::Fits(ContainerId c, MachineId m) const {
  return (*containers_)[Idx(c)].request.FitsIn(free_[Idx(m)]);
}

bool ClusterState::Blacklisted(ContainerId c, MachineId m) const {
  const ApplicationId app = (*containers_)[Idx(c)].app;
  // Iterate the (few) applications present on the machine and test each
  // against the constraint set — Eq. 7 materialised lazily.
  for (const auto& [other_raw, count] : apps_on_[Idx(m)]) {
    if (count <= 0) continue;
    if (constraints_->Conflicts(app, ApplicationId(other_raw))) return true;
  }
  return false;
}

bool ClusterState::CanPlace(ContainerId c, MachineId m) const {
  return Fits(c, m) && !Blacklisted(c, m);
}

void ClusterState::Deploy(ContainerId c, MachineId m) {
  assert(!IsPlaced(c));
  assert(Fits(c, m));
  const Container& container = (*containers_)[Idx(c)];
  free_[Idx(m)] -= container.request;
  assert(!free_[Idx(m)].AnyNegative());
  deployed_[Idx(m)].push_back(c);
  ++apps_on_[Idx(m)][container.app.value()];
  placement_[Idx(c)] = m;
  ++placed_count_;
}

void ClusterState::Evict(ContainerId c) {
  assert(IsPlaced(c));
  const MachineId m = placement_[Idx(c)];
  const Container& container = (*containers_)[Idx(c)];
  free_[Idx(m)] += container.request;
  auto& list = deployed_[Idx(m)];
  list.erase(std::find(list.begin(), list.end(), c));
  auto it = apps_on_[Idx(m)].find(container.app.value());
  assert(it != apps_on_[Idx(m)].end());
  if (--it->second == 0) apps_on_[Idx(m)].erase(it);
  placement_[Idx(c)] = MachineId::Invalid();
  --placed_count_;
}

void ClusterState::Migrate(ContainerId c, MachineId to) {
  assert(IsPlaced(c));
  assert(PlacementOf(c) != to);
  Evict(c);
  Deploy(c, to);
  ++migrations_;
}

void ClusterState::Preempt(ContainerId c) {
  Evict(c);
  ++preemptions_;
}

std::size_t ClusterState::UsedMachineCount() const {
  std::size_t used = 0;
  for (const auto& list : deployed_) {
    if (!list.empty()) ++used;
  }
  return used;
}

UtilizationSummary ClusterState::Utilization() const {
  UtilizationSummary s;
  double total = 0.0;
  for (std::size_t mi = 0; mi < deployed_.size(); ++mi) {
    if (deployed_[mi].empty()) continue;
    const Machine& machine = topology_->machines()[mi];
    const ResourceVector used = machine.capacity - free_[mi];
    const double share = used.DominantShareOf(machine.capacity);
    if (s.used_machines == 0) {
      s.min_share = s.max_share = share;
    } else {
      s.min_share = std::min(s.min_share, share);
      s.max_share = std::max(s.max_share, share);
    }
    ++s.used_machines;
    total += share;
  }
  if (s.used_machines > 0) {
    s.avg_share = total / static_cast<double>(s.used_machines);
  }
  return s;
}

bool ClusterState::VerifyResourceInvariant() const {
  std::vector<ResourceVector> recomputed;
  recomputed.reserve(free_.size());
  for (const Machine& m : topology_->machines()) {
    recomputed.push_back(m.capacity);
  }
  std::size_t placed = 0;
  for (std::size_t ci = 0; ci < placement_.size(); ++ci) {
    if (!placement_[ci].valid()) continue;
    ++placed;
    recomputed[Idx(placement_[ci])] -= (*containers_)[ci].request;
    if (recomputed[Idx(placement_[ci])].AnyNegative()) return false;
  }
  if (placed != placed_count_) return false;
  for (std::size_t mi = 0; mi < free_.size(); ++mi) {
    if (!(recomputed[mi] == free_[mi])) return false;
  }
  return true;
}

void ClusterState::Clear() {
  free_.clear();
  for (const Machine& m : topology_->machines()) free_.push_back(m.capacity);
  for (auto& list : deployed_) list.clear();
  for (auto& map : apps_on_) map.clear();
  std::fill(placement_.begin(), placement_.end(), MachineId::Invalid());
  placed_count_ = 0;
  migrations_ = 0;
  preemptions_ = 0;
}

}  // namespace aladdin::cluster

#include "cluster/state.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "common/check.h"

namespace aladdin::cluster {

namespace {
// Journal cap: past this many un-consumed entries the oldest half is
// dropped; a straggling consumer then rebuilds instead of replaying. 64k
// entries cover several full-cluster passes at the 10k-machine scale.
constexpr std::size_t kDirtyLogCap = 1 << 16;
}  // namespace

ClusterState::ClusterState(const Topology& topology,
                           const std::vector<Container>& containers,
                           const std::vector<Application>& applications,
                           const ConstraintSet& constraints)
    : topology_(&topology),
      containers_(&containers),
      applications_(&applications),
      constraints_(&constraints) {
  free_.reserve(topology.machine_count());
  for (const Machine& m : topology.machines()) free_.push_back(m.capacity);
  deployed_.resize(topology.machine_count());
  apps_on_.resize(topology.machine_count());
  placement_.assign(containers.size(), MachineId::Invalid());
}

ClusterState::ClusterState(const ClusterState& other)
    : topology_(other.topology_),
      containers_(other.containers_),
      applications_(other.applications_),
      constraints_(other.constraints_),
      free_(other.free_),
      deployed_(other.deployed_),
      apps_on_(other.apps_on_),
      placement_(other.placement_),
      placed_count_(other.placed_count_),
      migrations_(other.migrations_),
      preemptions_(other.preemptions_),
      dirty_log_enabled_(other.dirty_log_enabled_),
      dirty_base_(other.dirty_base_),
      dirty_log_(other.dirty_log_),
      dirty_scope_of_(other.dirty_scope_of_),
      scope_logs_(other.scope_logs_),
      change_journal_enabled_(other.change_journal_enabled_),
      changed_containers_(other.changed_containers_),
      changed_flag_(other.changed_flag_) {}

ClusterState& ClusterState::operator=(const ClusterState& other) {
  if (this == &other) return *this;
  ClusterState copy(other);  // fresh instance id
  *this = std::move(copy);
  return *this;
}

bool ClusterState::Fits(ContainerId c, MachineId m) const {
  return (*containers_)[Idx(c)].request.FitsIn(free_[Idx(m)]);
}

bool ClusterState::Blacklisted(ContainerId c, MachineId m) const {
  const ApplicationId app = (*containers_)[Idx(c)].app;
  // Iterate the (few) applications present on the machine and test each
  // against the constraint set — Eq. 7 materialised lazily.
  for (const auto& [other_raw, count] : apps_on_[Idx(m)]) {
    if (count <= 0) continue;
    if (constraints_->Conflicts(app, ApplicationId(other_raw))) return true;
  }
  return false;
}

bool ClusterState::CanPlace(ContainerId c, MachineId m) const {
  return Fits(c, m) && !Blacklisted(c, m);
}

void ClusterState::Deploy(ContainerId c, MachineId m) {
  ALADDIN_CHECK(!IsPlaced(c))
      << "Deploy: container " << c << " already on machine " << PlacementOf(c);
  ALADDIN_CHECK(Fits(c, m))
      << "Deploy: container " << c << " does not fit on machine " << m
      << " (free " << free_[Idx(m)].ToString() << ")";
  const Container& container = (*containers_)[Idx(c)];
  free_[Idx(m)] -= container.request;
  ALADDIN_DCHECK(!free_[Idx(m)].AnyNegative())
      << "Deploy: machine " << m << " over-committed";
  deployed_[Idx(m)].push_back(c);
  AppCounts& apps = apps_on_[Idx(m)];
  const std::int32_t app = container.app.value();
  const auto slot = std::find_if(apps.begin(), apps.end(),
                                 [app](const auto& e) { return e.first == app; });
  if (slot != apps.end()) {
    ++slot->second;
  } else {
    apps.emplace_back(app, 1);
  }
  placement_[Idx(c)] = m;
  ++placed_count_;
  MarkMachine(m);
  MarkContainer(c);
}

void ClusterState::Evict(ContainerId c) {
  ALADDIN_CHECK(IsPlaced(c)) << "Evict: container " << c << " not placed";
  const MachineId m = placement_[Idx(c)];
  const Container& container = (*containers_)[Idx(c)];
  free_[Idx(m)] += container.request;
  auto& list = deployed_[Idx(m)];
  const auto entry = std::find(list.begin(), list.end(), c);
  ALADDIN_CHECK(entry != list.end())
      << "Evict: container " << c << " missing from machine " << m
      << "'s deployed list (placement map out of sync)";
  list.erase(entry);
  AppCounts& apps = apps_on_[Idx(m)];
  const std::int32_t app = container.app.value();
  const auto it = std::find_if(apps.begin(), apps.end(),
                               [app](const auto& e) { return e.first == app; });
  ALADDIN_CHECK(it != apps.end())
      << "Evict: app " << container.app << " missing from machine " << m
      << "'s app counts";
  if (--it->second == 0) {
    // Swap-with-back erase: entry order is unspecified, and pop_back keeps
    // the vector's capacity so steady-state churn never reallocates.
    *it = apps.back();
    apps.pop_back();
  }
  placement_[Idx(c)] = MachineId::Invalid();
  --placed_count_;
  MarkMachine(m);
  MarkContainer(c);
}

void ClusterState::Migrate(ContainerId c, MachineId to) {
  ALADDIN_CHECK(IsPlaced(c)) << "Migrate: container " << c << " not placed";
  ALADDIN_CHECK(PlacementOf(c) != to)
      << "Migrate: container " << c << " already on " << to;
  Evict(c);
  Deploy(c, to);
  ++migrations_;
}

void ClusterState::Preempt(ContainerId c) {
  Evict(c);
  ++preemptions_;
}

std::size_t ClusterState::UsedMachineCount() const {
  std::size_t used = 0;
  for (const auto& list : deployed_) {
    if (!list.empty()) ++used;
  }
  return used;
}

UtilizationSummary ClusterState::Utilization() const {
  UtilizationSummary s;
  double total = 0.0;
  for (std::size_t mi = 0; mi < deployed_.size(); ++mi) {
    if (deployed_[mi].empty()) continue;
    const Machine& machine = topology_->machines()[mi];
    const ResourceVector used = machine.capacity - free_[mi];
    const double share = used.DominantShareOf(machine.capacity);
    if (s.used_machines == 0) {
      s.min_share = s.max_share = share;
    } else {
      s.min_share = std::min(s.min_share, share);
      s.max_share = std::max(s.max_share, share);
    }
    ++s.used_machines;
    total += share;
  }
  if (s.used_machines > 0) {
    s.avg_share = total / static_cast<double>(s.used_machines);
  }
  return s;
}

namespace {

bool Fail(std::string* error, const std::ostringstream& os) {
  if (error != nullptr) *error = os.str();
  return false;
}

}  // namespace

bool ClusterState::CheckConsistency(std::string* error) const {
  const std::size_t machines = topology_->machine_count();
  const std::size_t containers = containers_->size();
  if (free_.size() != machines || deployed_.size() != machines ||
      apps_on_.size() != machines || placement_.size() != containers) {
    std::ostringstream os;
    os << "table sizes out of sync (machines=" << machines
       << ", containers=" << containers << ", free=" << free_.size()
       << ", deployed=" << deployed_.size() << ", apps_on=" << apps_on_.size()
       << ", placement=" << placement_.size() << ")";
    return Fail(error, os);
  }

  // Pass 1: walk the per-machine deployed lists, recomputing free vectors
  // and app counts and cross-checking the placement map.
  std::vector<std::uint8_t> seen(containers, 0);
  std::size_t listed = 0;
  for (std::size_t mi = 0; mi < machines; ++mi) {
    ResourceVector free = topology_->machines()[mi].capacity;
    std::unordered_map<std::int32_t, std::int32_t> apps;
    for (ContainerId c : deployed_[mi]) {
      if (!c.valid() || Idx(c) >= containers) {
        std::ostringstream os;
        os << "machine " << mi << ": bogus container id " << c
           << " in deployed list";
        return Fail(error, os);
      }
      if (seen[Idx(c)]++) {
        std::ostringstream os;
        os << "container " << c << " deployed twice (second copy on machine "
           << mi << ")";
        return Fail(error, os);
      }
      if (placement_[Idx(c)] != MachineId(static_cast<std::int32_t>(mi))) {
        std::ostringstream os;
        os << "container " << c << " listed on machine " << mi
           << " but placement map says " << placement_[Idx(c)];
        return Fail(error, os);
      }
      const Container& container = (*containers_)[Idx(c)];
      free -= container.request;
      ++apps[container.app.value()];
      ++listed;
    }
    if (free.AnyNegative()) {
      std::ostringstream os;
      os << "machine " << mi << " over-committed: recomputed free "
         << free.ToString();
      return Fail(error, os);
    }
    if (!(free == free_[mi])) {
      std::ostringstream os;
      os << "machine " << mi << ": cached free " << free_[mi].ToString()
         << " != capacity minus placed " << free.ToString();
      return Fail(error, os);
    }
    std::unordered_map<std::int32_t, std::int32_t> cached;
    bool duplicate_entry = false;
    for (const auto& [app, count] : apps_on_[mi]) {
      if (!cached.emplace(app, count).second) duplicate_entry = true;
    }
    if (duplicate_entry || cached != apps) {
      std::ostringstream os;
      os << "machine " << mi << ": app-count map disagrees with a recount of "
         << deployed_[mi].size() << " deployed containers";
      return Fail(error, os);
    }
  }

  // Pass 2: every placement-map entry is backed by a deployed-list entry
  // (pass 1 established the converse), and the counter matches.
  std::size_t placed = 0;
  for (std::size_t ci = 0; ci < containers; ++ci) {
    const MachineId m = placement_[ci];
    if (!m.valid()) continue;
    ++placed;
    if (Idx(m) >= machines) {
      std::ostringstream os;
      os << "container " << ci << " placed on nonexistent machine " << m;
      return Fail(error, os);
    }
    if (!seen[ci]) {
      std::ostringstream os;
      os << "container " << ci << " placed on machine " << m
         << " per the placement map but absent from its deployed list";
      return Fail(error, os);
    }
  }
  if (placed != listed || placed != placed_count_) {
    std::ostringstream os;
    os << "placed_count " << placed_count_ << " != " << placed
       << " valid placements (" << listed << " deployed-list entries)";
    return Fail(error, os);
  }
  return true;
}

void ClusterState::Clear() {
  free_.clear();
  for (const Machine& m : topology_->machines()) free_.push_back(m.capacity);
  for (auto& list : deployed_) list.clear();
  for (auto& apps : apps_on_) apps.clear();
  std::fill(placement_.begin(), placement_.end(), MachineId::Invalid());
  placed_count_ = 0;
  migrations_ = 0;
  preemptions_ = 0;
  ForceFullResync();
  changed_containers_.clear();
  std::fill(changed_flag_.begin(), changed_flag_.end(), std::uint8_t{0});
}

void ClusterState::EnableDirtyLog() {
  if (dirty_log_enabled_) return;
  dirty_log_enabled_ = true;
  dirty_log_.clear();
}

std::span<const MachineId> ClusterState::DirtySince(std::uint64_t since,
                                                    bool* overflowed) const {
  ALADDIN_DCHECK(overflowed != nullptr);
  if (since < dirty_base_) {
    *overflowed = true;
    return {};
  }
  *overflowed = false;
  ALADDIN_DCHECK(since <= DirtyLogEnd())
      << "DirtySince cursor " << since << " beyond log end " << DirtyLogEnd();
  const std::size_t offset = static_cast<std::size_t>(since - dirty_base_);
  return std::span<const MachineId>(dirty_log_).subspan(offset);
}

void ClusterState::ConfigureDirtyScopes(
    const std::vector<std::int32_t>& scope_of_machine,
    std::int32_t scope_count) {
  ALADDIN_CHECK(scope_of_machine.size() == topology_->machine_count())
      << "ConfigureDirtyScopes: map covers " << scope_of_machine.size()
      << " machines, topology has " << topology_->machine_count();
  ALADDIN_CHECK(scope_count > 0);
  for (const std::int32_t scope : scope_of_machine) {
    ALADDIN_CHECK(scope >= 0 && scope < scope_count)
        << "ConfigureDirtyScopes: scope " << scope << " out of range";
  }
  EnableDirtyLog();
  dirty_scope_of_ = scope_of_machine;
  // Restart every scoped sequence space strictly past anything handed out
  // before — the global end AND every previous scope's end (a scope's base
  // starts one past the global end, so its end can lead the global end) —
  // so stale cursors overflow instead of silently reading the new space.
  std::uint64_t base = DirtyLogEnd() + 1;
  for (const ScopeLog& scope : scope_logs_) {
    base = std::max(base, scope.base + scope.log.size() + 1);
  }
  scope_logs_.assign(static_cast<std::size_t>(scope_count), ScopeLog{});
  for (ScopeLog& scope : scope_logs_) scope.base = base;
}

std::uint64_t ClusterState::ScopedDirtyLogEnd(std::int32_t scope) const {
  const auto& log = scope_logs_[static_cast<std::size_t>(scope)];
  return log.base + log.log.size();
}

std::span<const MachineId> ClusterState::ScopedDirtySince(
    std::int32_t scope, std::uint64_t since, bool* overflowed) const {
  ALADDIN_DCHECK(overflowed != nullptr);
  const auto& log = scope_logs_[static_cast<std::size_t>(scope)];
  if (since < log.base) {
    *overflowed = true;
    return {};
  }
  *overflowed = false;
  ALADDIN_DCHECK(since <= ScopedDirtyLogEnd(scope))
      << "ScopedDirtySince cursor " << since << " beyond scope " << scope
      << " end " << ScopedDirtyLogEnd(scope);
  const std::size_t offset = static_cast<std::size_t>(since - log.base);
  return std::span<const MachineId>(log.log).subspan(offset);
}

void ClusterState::EnableChangeJournal() {
  if (change_journal_enabled_) return;
  change_journal_enabled_ = true;
  // analyze:allow(A103) one-time journal enable, not a per-tick path
  changed_flag_.assign(containers_->size(), 0);
}

std::vector<ContainerId> ClusterState::TakeChangedContainers() {
  for (ContainerId c : changed_containers_) changed_flag_[Idx(c)] = 0;
  return std::exchange(changed_containers_, {});
}

void ClusterState::SyncWorkloadGrowth() {
  ALADDIN_CHECK(containers_->size() >= placement_.size())
      << "workload container table shrank under a live state";
  if (containers_->size() == placement_.size()) return;
  // analyze:allow(A103) grows with workload arrivals to the high-water mark
  placement_.resize(containers_->size(), MachineId::Invalid());
  if (change_journal_enabled_) changed_flag_.resize(containers_->size(), 0);  // analyze:allow(A103) same growth
}

void ClusterState::MarkMachine(MachineId m) {
  if (!dirty_log_enabled_) return;
  if (dirty_log_.size() >= kDirtyLogCap) {
    // Drop the oldest half; cursors that fall off the front overflow and
    // trigger a full rebuild in their consumer.
    const std::size_t drop = dirty_log_.size() / 2;
    dirty_log_.erase(dirty_log_.begin(),
                     dirty_log_.begin() + static_cast<std::ptrdiff_t>(drop));
    dirty_base_ += drop;
  }
  dirty_log_.push_back(m);
  if (!scope_logs_.empty()) {
    // Same cap discipline per scope: a hot scope overflowing only forces
    // *its* consumers to rebuild; the other scopes' windows are untouched.
    ScopeLog& scope = scope_logs_[static_cast<std::size_t>(
        dirty_scope_of_[static_cast<std::size_t>(m.value())])];
    if (scope.log.size() >= kDirtyLogCap) {
      const std::size_t drop = scope.log.size() / 2;
      scope.log.erase(scope.log.begin(),
                      scope.log.begin() + static_cast<std::ptrdiff_t>(drop));
      scope.base += drop;
    }
    scope.log.push_back(m);
  }
}

void ClusterState::MarkContainer(ContainerId c) {
  if (!change_journal_enabled_) return;
  if (changed_flag_[Idx(c)]) return;
  changed_flag_[Idx(c)] = 1;
  changed_containers_.push_back(c);
}

void ClusterState::ForceFullResync() {
  dirty_base_ = DirtyLogEnd() + 1;
  dirty_log_.clear();
  for (ScopeLog& scope : scope_logs_) {
    scope.base = scope.base + scope.log.size() + 1;
    scope.log.clear();
  }
}

}  // namespace aladdin::cluster

// Mutable cluster state: which container runs where, what is free, and the
// anti-affinity blacklist view derived from deployments (Eq. 7–8).
//
// Every scheduler mutates one of these through Deploy / Evict / Migrate /
// Preempt. Resource fit is enforced physically (a machine can never be
// over-committed); anti-affinity is policy and deliberately *not* enforced
// here — Medea knowingly places violating containers, and the independent
// auditor (audit.h) recounts violations from raw placements afterwards.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "cluster/application.h"
#include "cluster/constraints.h"
#include "cluster/topology.h"

namespace aladdin::cluster {

struct UtilizationSummary {
  std::size_t used_machines = 0;
  double min_share = 0.0;  // lowest dominant share among used machines
  double max_share = 0.0;
  double avg_share = 0.0;
};

class ClusterState {
 public:
  // References must outlive the state; the tables are owned by the workload.
  ClusterState(const Topology& topology,
               const std::vector<Container>& containers,
               const std::vector<Application>& applications,
               const ConstraintSet& constraints);

  // Copies are distinct states: incremental consumers key their caches on
  // instance_id(), so a copy (or an emplace over a dead state at the same
  // address) must never be mistaken for the original.
  ClusterState(const ClusterState& other);
  ClusterState& operator=(const ClusterState& other);
  ClusterState(ClusterState&&) = default;
  ClusterState& operator=(ClusterState&&) = default;

  [[nodiscard]] const Topology& topology() const { return *topology_; }
  [[nodiscard]] const std::vector<Container>& containers() const {
    return *containers_;
  }
  [[nodiscard]] const std::vector<Application>& applications() const {
    return *applications_;
  }
  [[nodiscard]] const ConstraintSet& constraints() const {
    return *constraints_;
  }

  [[nodiscard]] const ResourceVector& Free(MachineId m) const {
    return free_[Idx(m)];
  }

  // Resource feasibility only (Eq. 6).
  [[nodiscard]] bool Fits(ContainerId c, MachineId m) const;

  // Anti-affinity blacklist membership (Eq. 7–8): true if some container
  // already deployed on `m` belongs to an application that conflicts with
  // `c`'s application (including within-app anti-affinity).
  [[nodiscard]] bool Blacklisted(ContainerId c, MachineId m) const;

  // Fits && !Blacklisted — a constraint-respecting scheduler's predicate.
  [[nodiscard]] bool CanPlace(ContainerId c, MachineId m) const;

  // Places `c` on `m`. Requires Fits (asserts); does NOT require the
  // blacklist check — see class comment. Requires `c` currently unplaced.
  void Deploy(ContainerId c, MachineId m);

  // Removes `c` from its machine. Requires `c` placed.
  void Evict(ContainerId c);

  // Evict + Deploy to `to`, counted as one migration (Fig. 13b metric).
  void Migrate(ContainerId c, MachineId to);

  // Evict recorded as a preemption (the victim is expected to be
  // re-queued or dropped by the caller).
  void Preempt(ContainerId c);

  // Counter adjustments for engines that stage moves as Evict+Deploy and
  // only commit the accounting once a whole repair transaction succeeds
  // (rolled-back transactions must not inflate Fig. 13(b)).
  void RecordMigrations(std::int64_t n) { migrations_ += n; }
  void RecordPreemptions(std::int64_t n) { preemptions_ += n; }

  [[nodiscard]] MachineId PlacementOf(ContainerId c) const {
    return placement_[Idx(c)];
  }
  [[nodiscard]] bool IsPlaced(ContainerId c) const {
    return placement_[Idx(c)].valid();
  }
  [[nodiscard]] std::span<const ContainerId> DeployedOn(MachineId m) const {
    return deployed_[Idx(m)];
  }
  // Per-machine application counts: (app id, container count) entries, one
  // per distinct application present, in unspecified order. Flat vectors
  // rather than hash maps: machines host few distinct apps, so a linear
  // scan beats hashing and the blacklist probe (hot path of every placement
  // search) touches one contiguous cache line instead of chasing buckets.
  using AppCounts = std::vector<std::pair<std::int32_t, std::int32_t>>;

  // Distinct applications with at least one container on `m`, with counts.
  [[nodiscard]] const AppCounts& AppsOn(MachineId m) const {
    return apps_on_[Idx(m)];
  }

  [[nodiscard]] std::size_t placed_count() const { return placed_count_; }
  [[nodiscard]] std::int64_t migrations() const { return migrations_; }
  [[nodiscard]] std::int64_t preemptions() const { return preemptions_; }

  [[nodiscard]] std::size_t UsedMachineCount() const;
  // Dominant-share statistics over used machines (Fig. 11).
  [[nodiscard]] UtilizationSummary Utilization() const;

  // Deep consistency audit over every redundant view of the placement state:
  //   * free resources equal machine capacity minus the sum of requests of
  //     the containers placed there, and are never negative;
  //   * placement_ and the per-machine deployed_ lists agree exactly — every
  //     placed container appears once on its machine and nowhere else (no
  //     container placed twice);
  //   * the per-machine application count maps match a recount;
  //   * placed_count() matches the number of valid placements.
  // Returns true when consistent; otherwise false with a description of the
  // first discrepancy in *error (if non-null). O(machines + containers).
  [[nodiscard]] bool CheckConsistency(std::string* error = nullptr) const;

  // Recomputes free resources from placements and compares; false indicates
  // state corruption (used by tests and debug assertions). Subsumed by —
  // and now implemented as — CheckConsistency().
  [[nodiscard]] bool VerifyResourceInvariant() const {
    return CheckConsistency();
  }

  // Evict everything; counters reset. Forces every dirty-log consumer to
  // resynchronise in full.
  void Clear();

  // --- incremental-consumer support ------------------------------------
  //
  // Derived indices (AggregatedNetwork, FreeIndex) historically rebuilt from
  // scratch per scheduling pass. To reuse them across passes the state keeps
  // an append-only journal of machine mutations; each consumer remembers an
  // absolute sequence cursor and replays only the suffix. The journal is
  // capped: when it overflows, the oldest half is dropped and any consumer
  // whose cursor fell off the front performs a full re-attach instead.

  // Unique per live state object (copies get fresh ids; moves keep them).
  [[nodiscard]] std::uint64_t instance_id() const { return instance_id_; }

  // Turns on the machine dirty log (idempotent). Off by default so callers
  // that never reuse indices pay nothing.
  void EnableDirtyLog();
  [[nodiscard]] bool dirty_log_enabled() const { return dirty_log_enabled_; }

  // Absolute sequence number one past the newest journal entry.
  [[nodiscard]] std::uint64_t DirtyLogEnd() const { return dirty_base_ +
                                                    dirty_log_.size(); }

  // Machines mutated in [since, DirtyLogEnd()), possibly with duplicates.
  // Sets *overflowed (and returns an empty span) when `since` predates the
  // retained window — the consumer must rebuild from scratch.
  [[nodiscard]] std::span<const MachineId> DirtySince(std::uint64_t since,
                                                      bool* overflowed) const;

  // --- scoped dirty logs (sharded consumers) ----------------------------
  //
  // A sharded consumer (core::ShardedScheduler) mirrors disjoint machine
  // subsets into per-shard states. With only the single global log, one
  // shard's runaway churn overflows the shared window and forces *every*
  // shard to fall back to a full rebuild. Scopes give each machine subset
  // its own bounded log with its own sequence space: an overflow invalidates
  // exactly the scope it happened in, and the other shards' incremental
  // warm-starts survive. The global log keeps working unchanged (FreeIndex
  // and the aggregated network stay on it).
  //
  // Configuring scopes implies EnableDirtyLog(). Reconfiguring restarts the
  // scoped sequence spaces past every previously handed-out cursor, so stale
  // consumers see an overflow (full resync), never a silent gap.
  void ConfigureDirtyScopes(const std::vector<std::int32_t>& scope_of_machine,
                            std::int32_t scope_count);
  [[nodiscard]] std::int32_t dirty_scope_count() const {
    return static_cast<std::int32_t>(scope_logs_.size());
  }
  // Absolute sequence one past the newest entry of `scope`'s log.
  [[nodiscard]] std::uint64_t ScopedDirtyLogEnd(std::int32_t scope) const;
  // Machines of `scope` mutated in [since, ScopedDirtyLogEnd(scope)); sets
  // *overflowed (empty span) when `since` predates the retained window.
  [[nodiscard]] std::span<const MachineId> ScopedDirtySince(
      std::int32_t scope, std::uint64_t since, bool* overflowed) const;

  // Turns on the container change journal (idempotent): every container
  // whose placement changes is recorded once until taken.
  void EnableChangeJournal();
  // Containers touched since the last call (deduplicated, in first-touch
  // order); clears the journal.
  [[nodiscard]] std::vector<ContainerId> TakeChangedContainers();

  // Grows the per-container tables after the bound workload appended
  // containers (the container/application vectors this state references are
  // append-only while a state is live).
  void SyncWorkloadGrowth();

 private:
  friend struct ClusterStateTestPeer;  // tests corrupt state to exercise
                                       // CheckConsistency's negative paths

  template <typename T>
  static std::size_t Idx(T id) {
    return static_cast<std::size_t>(id.value());
  }

  const Topology* topology_;
  const std::vector<Container>* containers_;
  const std::vector<Application>* applications_;
  const ConstraintSet* constraints_;

  std::vector<ResourceVector> free_;                // per machine
  std::vector<std::vector<ContainerId>> deployed_;  // per machine
  std::vector<AppCounts> apps_on_;                  // per machine
  std::vector<MachineId> placement_;  // per container
  std::size_t placed_count_ = 0;
  std::int64_t migrations_ = 0;
  std::int64_t preemptions_ = 0;

  static std::uint64_t NextInstanceId() {
    static std::atomic<std::uint64_t> counter{0};
    return ++counter;
  }

  void MarkMachine(MachineId m);
  void MarkContainer(ContainerId c);
  // Invalidates every consumer cursor without logging each machine.
  void ForceFullResync();

  std::uint64_t instance_id_ = NextInstanceId();

  // Machine dirty log: entries dirty_log_[i] carry absolute sequence
  // dirty_base_ + i. Bounded; see kDirtyLogCap in state.cpp.
  bool dirty_log_enabled_ = false;
  std::uint64_t dirty_base_ = 0;
  std::vector<MachineId> dirty_log_;

  // Scoped dirty logs: per-scope bounded journals over a machine partition
  // (ConfigureDirtyScopes). Empty scope_logs_ = scoping off.
  struct ScopeLog {
    std::uint64_t base = 0;
    std::vector<MachineId> log;
  };
  std::vector<std::int32_t> dirty_scope_of_;  // per machine
  std::vector<ScopeLog> scope_logs_;

  // Container change journal (deduplicated via per-container flags).
  bool change_journal_enabled_ = false;
  std::vector<ContainerId> changed_containers_;
  std::vector<std::uint8_t> changed_flag_;  // per container
};

}  // namespace aladdin::cluster

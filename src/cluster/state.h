// Mutable cluster state: which container runs where, what is free, and the
// anti-affinity blacklist view derived from deployments (Eq. 7–8).
//
// Every scheduler mutates one of these through Deploy / Evict / Migrate /
// Preempt. Resource fit is enforced physically (a machine can never be
// over-committed); anti-affinity is policy and deliberately *not* enforced
// here — Medea knowingly places violating containers, and the independent
// auditor (audit.h) recounts violations from raw placements afterwards.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/application.h"
#include "cluster/constraints.h"
#include "cluster/topology.h"

namespace aladdin::cluster {

struct UtilizationSummary {
  std::size_t used_machines = 0;
  double min_share = 0.0;  // lowest dominant share among used machines
  double max_share = 0.0;
  double avg_share = 0.0;
};

class ClusterState {
 public:
  // References must outlive the state; the tables are owned by the workload.
  ClusterState(const Topology& topology,
               const std::vector<Container>& containers,
               const std::vector<Application>& applications,
               const ConstraintSet& constraints);

  [[nodiscard]] const Topology& topology() const { return *topology_; }
  [[nodiscard]] const std::vector<Container>& containers() const {
    return *containers_;
  }
  [[nodiscard]] const std::vector<Application>& applications() const {
    return *applications_;
  }
  [[nodiscard]] const ConstraintSet& constraints() const {
    return *constraints_;
  }

  [[nodiscard]] const ResourceVector& Free(MachineId m) const {
    return free_[Idx(m)];
  }

  // Resource feasibility only (Eq. 6).
  [[nodiscard]] bool Fits(ContainerId c, MachineId m) const;

  // Anti-affinity blacklist membership (Eq. 7–8): true if some container
  // already deployed on `m` belongs to an application that conflicts with
  // `c`'s application (including within-app anti-affinity).
  [[nodiscard]] bool Blacklisted(ContainerId c, MachineId m) const;

  // Fits && !Blacklisted — a constraint-respecting scheduler's predicate.
  [[nodiscard]] bool CanPlace(ContainerId c, MachineId m) const;

  // Places `c` on `m`. Requires Fits (asserts); does NOT require the
  // blacklist check — see class comment. Requires `c` currently unplaced.
  void Deploy(ContainerId c, MachineId m);

  // Removes `c` from its machine. Requires `c` placed.
  void Evict(ContainerId c);

  // Evict + Deploy to `to`, counted as one migration (Fig. 13b metric).
  void Migrate(ContainerId c, MachineId to);

  // Evict recorded as a preemption (the victim is expected to be
  // re-queued or dropped by the caller).
  void Preempt(ContainerId c);

  // Counter adjustments for engines that stage moves as Evict+Deploy and
  // only commit the accounting once a whole repair transaction succeeds
  // (rolled-back transactions must not inflate Fig. 13(b)).
  void RecordMigrations(std::int64_t n) { migrations_ += n; }
  void RecordPreemptions(std::int64_t n) { preemptions_ += n; }

  [[nodiscard]] MachineId PlacementOf(ContainerId c) const {
    return placement_[Idx(c)];
  }
  [[nodiscard]] bool IsPlaced(ContainerId c) const {
    return placement_[Idx(c)].valid();
  }
  [[nodiscard]] std::span<const ContainerId> DeployedOn(MachineId m) const {
    return deployed_[Idx(m)];
  }
  // Distinct applications with at least one container on `m`, with counts.
  [[nodiscard]] const std::unordered_map<std::int32_t, std::int32_t>& AppsOn(
      MachineId m) const {
    return apps_on_[Idx(m)];
  }

  [[nodiscard]] std::size_t placed_count() const { return placed_count_; }
  [[nodiscard]] std::int64_t migrations() const { return migrations_; }
  [[nodiscard]] std::int64_t preemptions() const { return preemptions_; }

  [[nodiscard]] std::size_t UsedMachineCount() const;
  // Dominant-share statistics over used machines (Fig. 11).
  [[nodiscard]] UtilizationSummary Utilization() const;

  // Deep consistency audit over every redundant view of the placement state:
  //   * free resources equal machine capacity minus the sum of requests of
  //     the containers placed there, and are never negative;
  //   * placement_ and the per-machine deployed_ lists agree exactly — every
  //     placed container appears once on its machine and nowhere else (no
  //     container placed twice);
  //   * the per-machine application count maps match a recount;
  //   * placed_count() matches the number of valid placements.
  // Returns true when consistent; otherwise false with a description of the
  // first discrepancy in *error (if non-null). O(machines + containers).
  [[nodiscard]] bool CheckConsistency(std::string* error = nullptr) const;

  // Recomputes free resources from placements and compares; false indicates
  // state corruption (used by tests and debug assertions). Subsumed by —
  // and now implemented as — CheckConsistency().
  [[nodiscard]] bool VerifyResourceInvariant() const {
    return CheckConsistency();
  }

  // Evict everything; counters reset.
  void Clear();

 private:
  friend struct ClusterStateTestPeer;  // tests corrupt state to exercise
                                       // CheckConsistency's negative paths

  template <typename T>
  static std::size_t Idx(T id) {
    return static_cast<std::size_t>(id.value());
  }

  const Topology* topology_;
  const std::vector<Container>* containers_;
  const std::vector<Application>* applications_;
  const ConstraintSet* constraints_;

  std::vector<ResourceVector> free_;                // per machine
  std::vector<std::vector<ContainerId>> deployed_;  // per machine
  // per machine: app id -> container count (small maps; machines host few
  // distinct apps, so blacklist checks iterate these).
  std::vector<std::unordered_map<std::int32_t, std::int32_t>> apps_on_;
  std::vector<MachineId> placement_;  // per container
  std::size_t placed_count_ = 0;
  std::int64_t migrations_ = 0;
  std::int64_t preemptions_ = 0;
};

}  // namespace aladdin::cluster

#include "cluster/machine.h"

// Machine is a plain aggregate; this TU exists so the target always has a
// symbol for the header and to host future out-of-line helpers.
namespace aladdin::cluster {}

// Multidimensional resource arithmetic.
//
// Resources are exact integers: CPU in millicores, memory in MiB. The paper
// evaluates CPU-only "to compare Aladdin with Firmament fairly" (§V.A) but
// discusses arbitrary dimension counts c in its complexity analysis (§IV.D);
// all code here is dimension-generic over kResourceDims.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace aladdin::cluster {

inline constexpr std::size_t kResourceDims = 2;

enum class ResourceKind : std::size_t {  // analyze:closed_enum
  kCpu = 0,
  kMemory = 1,
};

inline const char* ResourceName(ResourceKind k) {
  switch (k) {
    case ResourceKind::kCpu:
      return "cpu_millis";
    case ResourceKind::kMemory:
      return "mem_mib";
  }
  return "?";
}

class ResourceVector {
 public:
  constexpr ResourceVector() : v_{} {}
  constexpr ResourceVector(std::int64_t cpu_millis, std::int64_t mem_mib)
      : v_{cpu_millis, mem_mib} {}

  // Whole cores / whole GiB convenience constructors.
  static constexpr ResourceVector Cores(std::int64_t cores,
                                        std::int64_t mem_gib = 0) {
    return ResourceVector(cores * 1000, mem_gib * 1024);
  }
  static constexpr ResourceVector Zero() { return ResourceVector(); }

  [[nodiscard]] constexpr std::int64_t cpu_millis() const { return v_[0]; }
  [[nodiscard]] constexpr std::int64_t mem_mib() const { return v_[1]; }
  [[nodiscard]] constexpr std::int64_t dim(std::size_t i) const { return v_[i]; }
  void set_dim(std::size_t i, std::int64_t value) { v_[i] = value; }

  // this <= other in every dimension: "the resource requirement of container
  // T_i is less than the resource provisioning of machine N_j" (Eq. 6).
  [[nodiscard]] constexpr bool FitsIn(const ResourceVector& other) const {
    for (std::size_t i = 0; i < kResourceDims; ++i) {
      if (v_[i] > other.v_[i]) return false;
    }
    return true;
  }

  [[nodiscard]] constexpr bool IsZero() const {
    for (std::size_t i = 0; i < kResourceDims; ++i) {
      if (v_[i] != 0) return false;
    }
    return true;
  }

  // Any component negative (used to detect over-commit bugs).
  [[nodiscard]] constexpr bool AnyNegative() const {
    for (std::size_t i = 0; i < kResourceDims; ++i) {
      if (v_[i] < 0) return true;
    }
    return false;
  }

  ResourceVector& operator+=(const ResourceVector& o);
  ResourceVector& operator-=(const ResourceVector& o);
  friend ResourceVector operator+(ResourceVector a, const ResourceVector& b) {
    return a += b;
  }
  friend ResourceVector operator-(ResourceVector a, const ResourceVector& b) {
    return a -= b;
  }
  friend constexpr bool operator==(const ResourceVector& a,
                                   const ResourceVector& b) {
    return a.v_ == b.v_;
  }

  // Largest utilisation fraction across dimensions relative to `capacity`
  // (a.k.a. dominant share). Dimensions with zero capacity are skipped, which
  // is how CPU-only mode ignores memory.
  [[nodiscard]] double DominantShareOf(const ResourceVector& capacity) const;

  // Zeroes every dimension except CPU; the evaluation's CPU-only mode.
  [[nodiscard]] ResourceVector CpuOnly() const {
    return ResourceVector(v_[0], 0);
  }

  [[nodiscard]] std::string ToString() const;

 private:
  std::array<std::int64_t, kResourceDims> v_;
};

// Componentwise max/min, used by packing heuristics.
ResourceVector Max(const ResourceVector& a, const ResourceVector& b);
ResourceVector Min(const ResourceVector& a, const ResourceVector& b);

}  // namespace aladdin::cluster

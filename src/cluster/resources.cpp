#include "cluster/resources.h"

#include <algorithm>
#include <sstream>

namespace aladdin::cluster {

ResourceVector& ResourceVector::operator+=(const ResourceVector& o) {
  for (std::size_t i = 0; i < kResourceDims; ++i) v_[i] += o.v_[i];
  return *this;
}

ResourceVector& ResourceVector::operator-=(const ResourceVector& o) {
  for (std::size_t i = 0; i < kResourceDims; ++i) v_[i] -= o.v_[i];
  return *this;
}

double ResourceVector::DominantShareOf(const ResourceVector& capacity) const {
  double share = 0.0;
  for (std::size_t i = 0; i < kResourceDims; ++i) {
    if (capacity.v_[i] <= 0) continue;
    share = std::max(share, static_cast<double>(v_[i]) /
                                static_cast<double>(capacity.v_[i]));
  }
  return share;
}

std::string ResourceVector::ToString() const {
  std::ostringstream os;  // analyze:allow(A102) diagnostic formatting for logs/CHECK text, not the placement math
  os << "{cpu=" << v_[0] << "m, mem=" << v_[1] << "MiB}";
  return os.str();
}

ResourceVector Max(const ResourceVector& a, const ResourceVector& b) {
  ResourceVector out;
  for (std::size_t i = 0; i < kResourceDims; ++i) {
    out.set_dim(i, std::max(a.dim(i), b.dim(i)));
  }
  return out;
}

ResourceVector Min(const ResourceVector& a, const ResourceVector& b) {
  ResourceVector out;
  for (std::size_t i = 0; i < kResourceDims; ++i) {
    out.set_dim(i, std::min(a.dim(i), b.dim(i)));
  }
  return out;
}

}  // namespace aladdin::cluster

// A machine and its position in the cluster topology.
#pragma once

#include "cluster/resources.h"
#include "common/ids.h"

namespace aladdin::cluster {

struct Machine {
  MachineId id;
  RackId rack;
  SubClusterId subcluster;
  ResourceVector capacity;
};

}  // namespace aladdin::cluster

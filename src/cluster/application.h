// Long-lived applications (LLAs) and their containers.
//
// An LLA comprises one or more isomorphic containers (same resource request —
// the property Aladdin's isomorphism-limiting optimisation exploits, §IV.A)
// plus constraint attributes: an optional within-application anti-affinity
// flag and a priority class.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/resources.h"
#include "common/ids.h"

namespace aladdin::cluster {

// Priority classes. Higher value = more important. The trace uses four
// classes; weights per Eq. 4–5 map onto these (1 for kBatch, then 16/32/64/
// 128 style multipliers upward in the evaluation, §V.B).
using Priority = std::int32_t;
inline constexpr Priority kLowestPriority = 0;
inline constexpr Priority kPriorityClasses = 4;

struct Container {
  ContainerId id;
  ApplicationId app;
  ResourceVector request;
  Priority priority = kLowestPriority;
};

struct Application {
  ApplicationId id;
  std::string name;
  // Ids of this application's containers (isomorphic requests).
  std::vector<ContainerId> containers;
  ResourceVector request;  // per-container request (all containers equal)
  Priority priority = kLowestPriority;
  // Anti-affinity *within* the application: its containers must land on
  // pairwise-distinct machines (hardware-failure isolation, §II.A).
  bool anti_affinity_within = false;

  [[nodiscard]] std::size_t size() const { return containers.size(); }
};

}  // namespace aladdin::cluster

#include "cluster/application.h"

// Aggregates only; TU anchors the header in the cluster library.
namespace aladdin::cluster {}

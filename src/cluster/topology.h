// Cluster topology: machines grouped into racks grouped into sub-clusters.
//
// Aladdin's flow network inserts rack vertices R_x and (sub-)cluster vertices
// G_k between applications and machines to cut the edge count from
// O(|T|·|N|) to O(|T| + |A|·|R| + |N|) (§III.A). The topology object owns
// the machine inventory and the grouping maps those vertices are built from.
#pragma once

#include <span>
#include <vector>

#include "cluster/machine.h"
#include "common/ids.h"

namespace aladdin::cluster {

class Topology {
 public:
  // Uniform builder: `machines` homogeneous machines of `capacity` packed
  // into racks of `machines_per_rack`, racks packed into sub-clusters of
  // `racks_per_subcluster`. The trace's cluster is homogeneous
  // (32 CPU / 64 GB, §V.A); heterogeneous clusters use AddMachine directly.
  static Topology Uniform(std::size_t machines, ResourceVector capacity,
                          std::size_t machines_per_rack = 40,
                          std::size_t racks_per_subcluster = 10);

  Topology() = default;

  // Incremental construction for heterogeneous set-ups.
  SubClusterId AddSubCluster();
  RackId AddRack(SubClusterId g);
  MachineId AddMachine(RackId r, ResourceVector capacity);

  [[nodiscard]] std::size_t machine_count() const { return machines_.size(); }
  [[nodiscard]] std::size_t rack_count() const { return rack_subcluster_.size(); }
  [[nodiscard]] std::size_t subcluster_count() const {
    return subcluster_racks_.size();
  }

  [[nodiscard]] const Machine& machine(MachineId m) const {
    return machines_[static_cast<std::size_t>(m.value())];
  }
  [[nodiscard]] const std::vector<Machine>& machines() const {
    return machines_;
  }

  [[nodiscard]] SubClusterId RackSubCluster(RackId r) const {
    return rack_subcluster_[static_cast<std::size_t>(r.value())];
  }
  [[nodiscard]] std::span<const MachineId> RackMachines(RackId r) const {
    return rack_machines_[static_cast<std::size_t>(r.value())];
  }
  [[nodiscard]] std::span<const RackId> SubClusterRacks(SubClusterId g) const {
    return subcluster_racks_[static_cast<std::size_t>(g.value())];
  }

  // Total capacity over all machines.
  [[nodiscard]] ResourceVector TotalCapacity() const;

 private:
  std::vector<Machine> machines_;
  std::vector<SubClusterId> rack_subcluster_;
  std::vector<std::vector<MachineId>> rack_machines_;
  std::vector<std::vector<RackId>> subcluster_racks_;
};

}  // namespace aladdin::cluster

#include "cluster/topology.h"

#include "common/check.h"

namespace aladdin::cluster {

Topology Topology::Uniform(std::size_t machines, ResourceVector capacity,
                           std::size_t machines_per_rack,
                           std::size_t racks_per_subcluster) {
  ALADDIN_CHECK(machines_per_rack > 0);
  ALADDIN_CHECK(racks_per_subcluster > 0);
  Topology topo;
  RackId rack = RackId::Invalid();
  SubClusterId sub = SubClusterId::Invalid();
  for (std::size_t i = 0; i < machines; ++i) {
    if (i % (machines_per_rack * racks_per_subcluster) == 0) {
      sub = topo.AddSubCluster();
    }
    if (i % machines_per_rack == 0) {
      rack = topo.AddRack(sub);
    }
    topo.AddMachine(rack, capacity);
  }
  return topo;
}

SubClusterId Topology::AddSubCluster() {
  subcluster_racks_.emplace_back();
  return SubClusterId(static_cast<std::int32_t>(subcluster_racks_.size() - 1));
}

RackId Topology::AddRack(SubClusterId g) {
  ALADDIN_CHECK(g.valid() &&
         static_cast<std::size_t>(g.value()) < subcluster_racks_.size());
  rack_subcluster_.push_back(g);
  rack_machines_.emplace_back();
  const RackId r(static_cast<std::int32_t>(rack_subcluster_.size() - 1));
  subcluster_racks_[static_cast<std::size_t>(g.value())].push_back(r);
  return r;
}

MachineId Topology::AddMachine(RackId r, ResourceVector capacity) {
  ALADDIN_CHECK(r.valid() &&
         static_cast<std::size_t>(r.value()) < rack_machines_.size());
  const MachineId m(static_cast<std::int32_t>(machines_.size()));
  machines_.push_back(
      Machine{m, r, RackSubCluster(r), capacity});
  rack_machines_[static_cast<std::size_t>(r.value())].push_back(m);
  return m;
}

ResourceVector Topology::TotalCapacity() const {
  ResourceVector total;
  for (const Machine& m : machines_) total += m.capacity;
  return total;
}

}  // namespace aladdin::cluster

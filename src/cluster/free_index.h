// Sorted index of machines by free CPU, shared by the baseline schedulers
// (best-fit scans for Medea, worst-fit scans for Go-Kube, candidate
// generation for Firmament) and the core task scheduler's per-task
// placement loop. The Aladdin core keeps its own richer index
// (core/network.h) with rack/sub-cluster aggregates.
//
// The index mirrors a ClusterState it is attached to; callers must invoke
// OnChanged(m) after any deploy/evict that touches machine m.
//
// Representation: machines live in fixed-width buckets of free-CPU range,
// each bucket a sorted vector of (free, machine id). Global iteration order
// — ascending (free, id), exactly what a std::set<pair> would produce — is
// preserved, so scan results are bit-identical to the previous tree-based
// index. The flat layout exists for the hot path: the task scheduler runs
// one scan plus one re-key per placed task, and red-black-tree node hops
// (one potential cache miss each) dominated both. A bucket re-key is two
// short binary searches plus a small memmove inside contiguous storage.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "cluster/state.h"

namespace aladdin::cluster {

class FreeIndex {
 public:
  void Attach(const ClusterState& state);

  // Re-key machine m after its free resources changed.
  void OnChanged(MachineId m);

  // Visit machines with free CPU >= min_free_cpu in ascending free order
  // (best-fit first) until fn returns true. Returns whether fn accepted one.
  // Templated on the callable: the task scheduler runs thousands of these
  // scans per tick, and a std::function would heap-allocate its capture
  // block per scan and force an indirect call per visited machine.
  template <typename Fn>
  bool ScanAscending(std::int64_t min_free_cpu, Fn&& fn) const {
    const std::size_t first = BucketOf(min_free_cpu);
    for (std::size_t b = first; b < buckets_.size(); ++b) {
      const Bucket& bucket = buckets_[b];
      auto it = bucket.begin();
      if (b == first) {
        it = std::lower_bound(bucket.begin(), bucket.end(),
                              Key{min_free_cpu, -1});
      }
      for (; it != bucket.end(); ++it) {
        if (fn(MachineId(it->second))) return true;
      }
    }
    return false;
  }

  // Resume a best-fit scan strictly after the key (free_cpu, machine):
  // same ascending (free, id) order as ScanAscending, but every key <= the
  // given one is skipped. The task run placer (core::TaskScheduler::
  // PlaceRun) resumes where the previous winner was discovered — the
  // skipped prefix is exactly the machines that already rejected this
  // request shape and have not changed since, plus exhausted ex-winners
  // re-keyed to smaller keys.
  template <typename Fn>
  bool ScanAscendingFrom(std::int64_t free_cpu, std::int32_t machine,
                         Fn&& fn) const {
    const std::size_t first = BucketOf(free_cpu);
    for (std::size_t b = first; b < buckets_.size(); ++b) {
      const Bucket& bucket = buckets_[b];
      auto it = bucket.begin();
      if (b == first) {
        it = std::lower_bound(bucket.begin(), bucket.end(),
                              Key{free_cpu, machine + 1});
      }
      for (; it != bucket.end(); ++it) {
        if (fn(MachineId(it->second))) return true;
      }
    }
    return false;
  }

  // Visit machines in descending free order (emptiest first).
  template <typename Fn>
  bool ScanDescending(Fn&& fn) const {
    for (auto b = buckets_.rbegin(); b != buckets_.rend(); ++b) {
      for (auto it = std::make_reverse_iterator(b->end());
           it != std::make_reverse_iterator(b->begin()); ++it) {
        if (fn(MachineId(it->second))) return true;
      }
    }
    return false;
  }

  // The single tightest machine with free CPU >= need, or Invalid.
  [[nodiscard]] MachineId TightestWithAtLeast(std::int64_t need) const;

 private:
  using Key = std::pair<std::int64_t, std::int32_t>;

  // Sorted vector with a dead prefix. Best-fit drains a run of equal-free
  // machines (e.g. the all-idle bucket right after Attach) strictly from
  // the front — lowest id first — and a plain vector::erase there memmoves
  // the whole bucket per placement. The head offset turns exactly that
  // pattern into O(1); the dead prefix is compacted away once it outgrows
  // the live part.
  struct Bucket {
    std::vector<Key> keys;
    std::size_t head = 0;

    [[nodiscard]] auto begin() const { return keys.begin() + head; }
    [[nodiscard]] auto end() const { return keys.end(); }

    void Erase(std::vector<Key>::const_iterator it) {
      if (it == begin()) {
        if (++head == keys.size()) {
          keys.clear();
          head = 0;
        } else if (head > 64 && head > keys.size() / 2) {
          keys.erase(keys.begin(),
                     keys.begin() + static_cast<std::ptrdiff_t>(head));
          head = 0;
        }
      } else {
        keys.erase(it);
      }
    }

    void Insert(const Key& key) {
      keys.insert(std::upper_bound(begin(), keys.cend(), key), key);
    }
  };

  // Bucket count trades re-key memmove size (entries per bucket) against
  // empty-bucket skips during scans; 1024 keeps both in cache-line noise
  // at the 10k-machine scale.
  static constexpr std::size_t kBuckets = 1024;

  [[nodiscard]] std::size_t BucketOf(std::int64_t free_cpu) const {
    if (free_cpu <= 0) return 0;
    const auto b = static_cast<std::size_t>(free_cpu / bucket_width_);
    return b < buckets_.size() ? b : buckets_.size() - 1;
  }

  const ClusterState* state_ = nullptr;
  std::int64_t bucket_width_ = 1;
  std::vector<Bucket> buckets_;
  std::vector<std::int64_t> indexed_free_;
};

}  // namespace aladdin::cluster

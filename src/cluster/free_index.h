// Sorted index of machines by free CPU, shared by the baseline schedulers
// (best-fit scans for Medea, worst-fit scans for Go-Kube, candidate
// generation for Firmament). The Aladdin core keeps its own richer index
// (core/network.h) with rack/sub-cluster aggregates.
//
// The index mirrors a ClusterState it is attached to; callers must invoke
// OnChanged(m) after any deploy/evict that touches machine m.
#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <vector>

#include "cluster/state.h"

namespace aladdin::cluster {

class FreeIndex {
 public:
  void Attach(const ClusterState& state);

  // Re-key machine m after its free resources changed.
  void OnChanged(MachineId m);

  // Visit machines with free CPU >= min_free_cpu in ascending free order
  // (best-fit first) until fn returns true. Returns whether fn accepted one.
  bool ScanAscending(std::int64_t min_free_cpu,
                     const std::function<bool(MachineId)>& fn) const;

  // Visit machines in descending free order (emptiest first).
  bool ScanDescending(const std::function<bool(MachineId)>& fn) const;

  // The single tightest machine with free CPU >= need, or Invalid.
  [[nodiscard]] MachineId TightestWithAtLeast(std::int64_t need) const;

 private:
  using Key = std::pair<std::int64_t, std::int32_t>;
  const ClusterState* state_ = nullptr;
  std::set<Key> by_free_;
  std::vector<std::int64_t> indexed_free_;
};

}  // namespace aladdin::cluster

// Placement constraints: anti-affinity (within and across applications) and
// priority ordering.
//
// The paper models an anti-affinity rule as p = {T_a, T_b, 0} — a pair that
// must not share a machine (§III.C). We store rules at application
// granularity (the trace expresses them that way: "several LLAs cannot be
// co-located with at least other 5,000 containers"): a rule (A, B) means no
// container of A may share a machine with a container of B. A == B encodes
// within-application anti-affinity.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_set>
#include <vector>

#include "cluster/application.h"
#include "common/ids.h"

namespace aladdin::cluster {

struct AntiAffinityRule {
  ApplicationId a;
  ApplicationId b;
  friend bool operator==(const AntiAffinityRule&,
                         const AntiAffinityRule&) = default;
};

class ConstraintSet {
 public:
  ConstraintSet() = default;
  explicit ConstraintSet(std::size_t application_count);

  // Declare how many applications exist (adjacency is per-application).
  void Resize(std::size_t application_count);

  // Add a rule; symmetric, idempotent. a == b marks within-app anti-affinity.
  void AddAntiAffinity(ApplicationId a, ApplicationId b);

  [[nodiscard]] std::size_t application_count() const {
    return adjacency_.size();
  }
  [[nodiscard]] std::size_t rule_count() const { return rules_.size(); }
  [[nodiscard]] const std::vector<AntiAffinityRule>& rules() const {
    return rules_;
  }

  // True if containers of `a` and `b` must not share a machine. For a == b
  // this asks about within-application anti-affinity.
  [[nodiscard]] bool Conflicts(ApplicationId a, ApplicationId b) const;

  [[nodiscard]] bool HasWithinAntiAffinity(ApplicationId a) const {
    return Conflicts(a, a);
  }

  // All applications that conflict with `a` (excluding `a` itself).
  [[nodiscard]] std::span<const ApplicationId> ConflictsOf(
      ApplicationId a) const;

  // Number of *containers* that may not co-locate with application `a` —
  // needs the application table to weigh each conflicting app by its size.
  // This drives the CLA/CSA arrival orders (§V.C).
  [[nodiscard]] std::int64_t ConflictingContainerCount(
      ApplicationId a, const std::vector<Application>& apps) const;

 private:
  std::vector<AntiAffinityRule> rules_;
  // adjacency_[a] holds conflicting apps != a; within_[a] holds the self rule.
  std::vector<std::vector<ApplicationId>> adjacency_;
  std::vector<bool> within_;
  // Fast duplicate check: (a << 32) | b with a <= b.
  std::unordered_set<std::uint64_t> rule_keys_;
  static std::uint64_t Key(ApplicationId a, ApplicationId b);
};

}  // namespace aladdin::cluster

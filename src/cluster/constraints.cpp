#include "cluster/constraints.h"

#include <algorithm>

#include "common/check.h"

namespace aladdin::cluster {

ConstraintSet::ConstraintSet(std::size_t application_count) {
  Resize(application_count);
}

void ConstraintSet::Resize(std::size_t application_count) {
  ALADDIN_CHECK(application_count >= adjacency_.size());
  // analyze:allow(A103) grows to the application high-water mark; no-op once sized
  adjacency_.resize(application_count);
  within_.resize(application_count, false);  // analyze:allow(A103) same high-water growth
}

std::uint64_t ConstraintSet::Key(ApplicationId a, ApplicationId b) {
  auto lo = static_cast<std::uint32_t>(std::min(a.value(), b.value()));
  auto hi = static_cast<std::uint32_t>(std::max(a.value(), b.value()));
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

void ConstraintSet::AddAntiAffinity(ApplicationId a, ApplicationId b) {
  ALADDIN_CHECK(a.valid() && b.valid());
  const auto max_id = static_cast<std::size_t>(std::max(a.value(), b.value()));
  if (max_id >= adjacency_.size()) Resize(max_id + 1);
  if (!rule_keys_.insert(Key(a, b)).second) return;  // duplicate
  rules_.push_back(AntiAffinityRule{a, b});
  if (a == b) {
    within_[static_cast<std::size_t>(a.value())] = true;
  } else {
    adjacency_[static_cast<std::size_t>(a.value())].push_back(b);
    adjacency_[static_cast<std::size_t>(b.value())].push_back(a);
  }
}

bool ConstraintSet::Conflicts(ApplicationId a, ApplicationId b) const {
  if (!a.valid() || !b.valid()) return false;
  const auto ai = static_cast<std::size_t>(a.value());
  if (ai >= adjacency_.size()) return false;
  if (a == b) return within_[ai];
  return rule_keys_.contains(Key(a, b));
}

std::span<const ApplicationId> ConstraintSet::ConflictsOf(
    ApplicationId a) const {
  static const std::vector<ApplicationId> kEmpty;
  const auto ai = static_cast<std::size_t>(a.value());
  if (!a.valid() || ai >= adjacency_.size()) return kEmpty;
  return adjacency_[ai];
}

std::int64_t ConstraintSet::ConflictingContainerCount(
    ApplicationId a, const std::vector<Application>& apps) const {
  std::int64_t total = 0;
  for (ApplicationId other : ConflictsOf(a)) {
    total +=
        static_cast<std::int64_t>(apps[static_cast<std::size_t>(other.value())]
                                      .containers.size());
  }
  if (HasWithinAntiAffinity(a)) {
    const auto& self = apps[static_cast<std::size_t>(a.value())];
    total += static_cast<std::int64_t>(self.containers.size()) - 1;
  }
  return total;
}

}  // namespace aladdin::cluster

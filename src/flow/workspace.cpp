#include "flow/workspace.h"

#include "obs/metrics.h"

namespace aladdin::flow {

void Workspace::BeginRun(const Graph& graph) {
  const std::size_t n = graph.vertex_count();
  bool grew = false;
  grew |= dist.Grow(n);
  grew |= parent.Grow(n);
  grew |= level.Grow(n);
  grew |= next_arc.Grow(n);
  grew |= visited.Grow(n);
  grew |= dequeued.Grow(n);
  grew |= queue.Reset(n);
  dist.NextEpoch();
  parent.NextEpoch();
  level.NextEpoch();
  next_arc.NextEpoch();
  visited.NextEpoch();
  dequeued.NextEpoch();
  // Counted per solver run, not per buffer: after warmup every run lands in
  // the reuse bucket and ws_grow stays flat — the steady-state witness.
  if (grew) {
    ALADDIN_METRIC_ADD("flow/ws_grow", 1);
  } else {
    ALADDIN_METRIC_ADD("flow/ws_reuse", 1);
  }
}

Workspace& ThreadLocalWorkspace() {
  thread_local Workspace ws;
  return ws;
}

}  // namespace aladdin::flow

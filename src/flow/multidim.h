// Multidimensional flow networks.
//
// The paper (§III.C, citing Shai 2005 [22]) models capacities as N-tuples
// (x1..xn): a path is augmentable only if it has positive residual in every
// dimension simultaneously, and — the "nonlinear" extension — only if a
// per-edge feasibility predicate admits it. This module is the generic
// substrate: Aladdin's scheduling network specialises the predicate to the
// anti-affinity blacklist test (Eq. 7–8).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/ids.h"

namespace aladdin::flow {

// A point in N-dimensional capacity space. Dimension count is fixed at graph
// construction; all vectors in one graph have the same size.
using DimVector = std::vector<std::int64_t>;

// a <= b componentwise.
bool DimLeq(const DimVector& a, const DimVector& b);
// Componentwise min.
DimVector DimMin(const DimVector& a, const DimVector& b);
// a + b / a - b componentwise.
DimVector DimAdd(const DimVector& a, const DimVector& b);
DimVector DimSub(const DimVector& a, const DimVector& b);
// True if every component is > 0.
bool DimPositive(const DimVector& v);

struct MultiArc {
  VertexId head;
  DimVector capacity;
  DimVector flow;  // same size as capacity
};

// Called before traversing an arc while searching for an augmenting path.
// Returning false makes the arc unusable for that search even if capacity
// remains: this is the set-theoretic / nonlinear part of the capacity
// function (e.g. "container T2 is blacklisted on machine N1").
using ArcPredicate =
    std::function<bool(ArcId arc, VertexId tail, VertexId head)>;

class MultiDimGraph {
 public:
  explicit MultiDimGraph(std::size_t dimensions);

  VertexId AddVertex();
  ArcId AddArc(VertexId tail, VertexId head, DimVector capacity);

  [[nodiscard]] std::size_t dimensions() const { return dims_; }
  [[nodiscard]] std::size_t vertex_count() const { return adjacency_.size(); }
  [[nodiscard]] const MultiArc& arc(ArcId a) const {
    return arcs_[static_cast<std::size_t>(a.value())];
  }
  [[nodiscard]] DimVector Residual(ArcId a) const;

  // Finds one augmenting path (BFS) from source to sink whose residual is
  // positive in all dimensions and admitted by `predicate` on every arc;
  // pushes the bottleneck and returns it (empty vector if no path).
  // Unlike the scalar case, multidimensional augmentation has no residual
  // arcs — flow is monotone — which matches the scheduling use-case where
  // placed containers are only undone via explicit migration.
  DimVector Augment(VertexId source, VertexId sink,
                    const ArcPredicate& predicate = nullptr);

  // Repeated Augment until exhaustion; returns the dimension-wise total.
  DimVector MaxFlow(VertexId source, VertexId sink,
                    const ArcPredicate& predicate = nullptr);

 private:
  std::size_t dims_;
  std::vector<MultiArc> arcs_;
  // analyze:allow(A104) extension graph rebuilt per experiment; CSR freeze not warranted
  std::vector<std::vector<std::int32_t>> adjacency_;
};

}  // namespace aladdin::flow

#include "flow/max_flow.h"

#include <algorithm>
#include <limits>

#include "common/analysis.h"
#include "common/check.h"
#include "obs/trace.h"

namespace aladdin::flow {

namespace {
std::size_t Idx(VertexId v) { return static_cast<std::size_t>(v.value()); }
}  // namespace

ALADDIN_HOT MaxFlowResult EdmondsKarp(Graph& graph, VertexId source,
                                      VertexId sink, Workspace& ws) {
  ALADDIN_TRACE_SCOPE("flow/edmonds_karp");
  ALADDIN_CHECK(source != sink);
  MaxFlowResult result;
  ws.BeginRun(graph);

  for (;;) {
    // ws.parent doubles as the visited mark: stamped == discovered this
    // augmentation (-2 marks the source, which has no parent arc).
    ws.parent.NextEpoch();
    ws.queue.Clear();
    ws.queue.PushBack(source.value());
    ws.parent.Set(Idx(source), -2);
    bool found = false;
    while (!ws.queue.empty() && !found) {
      const VertexId u{ws.queue.PopFront()};
      for (std::int32_t raw : graph.OutArcs(u)) {
        const ArcId a{raw};
        if (graph.Residual(a) <= 0) continue;
        const VertexId v = graph.arc(a).head;
        if (ws.parent.Stamped(Idx(v))) continue;
        ws.parent.Set(Idx(v), raw);
        if (v == sink) {
          found = true;
          break;
        }
        ws.queue.PushBack(v.value());
      }
    }
    if (!found) break;

    // Walk back from sink to source to find the bottleneck, then push.
    Capacity bottleneck = std::numeric_limits<Capacity>::max();
    for (VertexId v = sink; v != source;) {
      const ArcId a{ws.parent.Get(Idx(v), -1)};
      bottleneck = std::min(bottleneck, graph.Residual(a));
      v = graph.Tail(a);
    }
    for (VertexId v = sink; v != source;) {
      const ArcId a{ws.parent.Get(Idx(v), -1)};
      graph.Push(a, bottleneck);
      v = graph.Tail(a);
    }
    result.value += bottleneck;
    ++result.augmentations;
  }
  return result;
}

MaxFlowResult EdmondsKarp(Graph& graph, VertexId source, VertexId sink) {
  return EdmondsKarp(graph, source, sink, ThreadLocalWorkspace());
}

namespace {

// Dinic over workspace scratch: level and the current-arc iterator reset per
// phase via the epoch stamp (O(1)), never std::fill.
class DinicSolver {
 public:
  DinicSolver(Graph& graph, VertexId source, VertexId sink, Workspace& ws)
      : graph_(graph), source_(source), sink_(sink), ws_(ws) {}

  MaxFlowResult Run() {
    MaxFlowResult result;
    ws_.BeginRun(graph_);
    while (BuildLevels()) {
      for (;;) {
        const Capacity pushed =
            Push(source_, std::numeric_limits<Capacity>::max());
        if (pushed == 0) break;
        result.value += pushed;
      }
      ++result.augmentations;  // counts phases for Dinic
    }
    return result;
  }

 private:
  bool BuildLevels() {
    ws_.NextPhase();  // resets level + next_arc in O(1)
    ws_.queue.Clear();
    ws_.queue.PushBack(source_.value());
    ws_.level.Set(Idx(source_), 0);
    while (!ws_.queue.empty()) {
      const VertexId u{ws_.queue.PopFront()};
      for (std::int32_t raw : graph_.OutArcs(u)) {
        const ArcId a{raw};
        if (graph_.Residual(a) <= 0) continue;
        const VertexId v = graph_.arc(a).head;
        if (ws_.level.Stamped(Idx(v))) continue;
        ws_.level.Set(Idx(v), ws_.level.Get(Idx(u), -1) + 1);
        ws_.queue.PushBack(v.value());
      }
    }
    return ws_.level.Stamped(Idx(sink_));
  }

  Capacity Push(VertexId u, Capacity limit) {
    if (u == sink_) return limit;
    const auto arcs = graph_.OutArcs(u);
    const std::int32_t lu = ws_.level.Get(Idx(u), -1);
    for (auto& i = ws_.next_arc.Ref(Idx(u), 0);
         static_cast<std::size_t>(i) < arcs.size(); ++i) {
      const ArcId a{arcs[static_cast<std::size_t>(i)]};
      if (graph_.Residual(a) <= 0) continue;
      const VertexId v = graph_.arc(a).head;
      if (ws_.level.Get(Idx(v), -1) != lu + 1) continue;
      const Capacity pushed =
          Push(v, std::min(limit, graph_.Residual(a)));
      if (pushed > 0) {
        graph_.Push(a, pushed);
        return pushed;
      }
    }
    return 0;
  }

  static std::size_t Idx(VertexId v) {
    return static_cast<std::size_t>(v.value());
  }

  Graph& graph_;
  VertexId source_;
  VertexId sink_;
  Workspace& ws_;
};

}  // namespace

ALADDIN_HOT MaxFlowResult Dinic(Graph& graph, VertexId source, VertexId sink,
                                Workspace& ws) {
  ALADDIN_TRACE_SCOPE("flow/dinic");
  ALADDIN_CHECK(source != sink);
  const MaxFlowResult result = DinicSolver(graph, source, sink, ws).Run();
  ALADDIN_METRIC_ADD("flow/dinic_phases", result.augmentations);
  return result;
}

MaxFlowResult Dinic(Graph& graph, VertexId source, VertexId sink) {
  return Dinic(graph, source, sink, ThreadLocalWorkspace());
}

void ResidualReachableInto(const Graph& graph, VertexId source,
                           Workspace& ws) {
  ws.BeginRun(graph);
  ws.queue.Clear();
  ws.queue.PushBack(source.value());
  ws.visited.Set(Idx(source), 1);
  while (!ws.queue.empty()) {
    const VertexId u{ws.queue.PopFront()};
    for (std::int32_t raw : graph.OutArcs(u)) {
      const ArcId a{raw};
      if (graph.Residual(a) <= 0) continue;
      const VertexId v = graph.arc(a).head;
      if (ws.visited.Stamped(Idx(v))) continue;
      ws.visited.Set(Idx(v), 1);
      ws.queue.PushBack(v.value());
    }
  }
}

std::vector<bool> ResidualReachable(const Graph& graph, VertexId source) {
  Workspace& ws = ThreadLocalWorkspace();
  ResidualReachableInto(graph, source, ws);
  std::vector<bool> seen(graph.vertex_count(), false);
  for (std::size_t v = 0; v < seen.size(); ++v) {
    if (ws.visited.Stamped(v)) seen[v] = true;
  }
  return seen;
}

std::vector<ArcId> MinCutArcs(const Graph& graph, VertexId source) {
  const auto reachable = ResidualReachable(graph, source);
  std::vector<ArcId> cut;  // cold audit path
  for (std::size_t v = 0; v < graph.vertex_count(); ++v) {
    if (!reachable[v]) continue;
    for (std::int32_t raw :
         graph.OutArcs(VertexId(static_cast<std::int32_t>(v)))) {
      if (raw % 2 != 0) continue;  // forward arcs only
      const ArcId a{raw};
      const VertexId head = graph.arc(a).head;
      if (!reachable[static_cast<std::size_t>(head.value())]) {
        cut.push_back(a);
      }
    }
  }
  return cut;
}

std::vector<FlowPath> DecomposePaths(Graph& graph, VertexId source,
                                     VertexId sink) {
  std::vector<FlowPath> paths;  // cold decode path
  const std::size_t n = graph.vertex_count();
  for (;;) {
    // Walk greedily along arcs with positive flow from the source.
    FlowPath path;
    VertexId at = source;
    Capacity bottleneck = std::numeric_limits<Capacity>::max();
    std::size_t hops = 0;
    while (at != sink && hops++ <= n) {
      ArcId next = ArcId::Invalid();
      for (std::int32_t raw : graph.OutArcs(at)) {
        if (raw % 2 != 0) continue;
        const ArcId a{raw};
        if (graph.arc(a).flow > 0) {
          next = a;
          break;
        }
      }
      if (!next.valid()) break;
      path.arcs.push_back(next);
      bottleneck = std::min(bottleneck, graph.arc(next).flow);
      at = graph.arc(next).head;
    }
    if (at != sink || path.arcs.empty()) break;  // no more s->t flow
    path.amount = bottleneck;
    for (ArcId a : path.arcs) {
      // Remove the path's flow (push along the residual twin).
      graph.Push(Graph::Reverse(a), bottleneck);
    }
    paths.push_back(std::move(path));
  }
  // Any remaining flow sits on cycles; drain it so the graph ends clean.
  graph.ResetFlows();
  return paths;
}

Capacity CancelArcFlow(Graph& graph, ArcId a, Capacity amount,
                       VertexId source, VertexId sink, Workspace& ws) {
  ALADDIN_CHECK(a.valid() && a.value() % 2 == 0)
      << "CancelArcFlow wants a forward arc";
  Capacity cancelled = 0;
  while (cancelled < amount && graph.arc(a).flow > 0) {
    Capacity bottleneck = std::min(amount - cancelled, graph.arc(a).flow);

    // Backward segment: from tail(a) to the source, along arcs carrying
    // flow *into* the current vertex. An incoming forward arc appears in
    // the vertex's adjacency as its residual twin (odd id, negative flow);
    // the first match in adjacency order keeps the walk deterministic.
    ws.back_arcs.clear();
    VertexId v = graph.Tail(a);
    std::size_t steps = 0;
    while (v != source) {
      ALADDIN_CHECK(++steps <= graph.vertex_count())
          << "CancelArcFlow: flow cycle through vertex " << v;
      ArcId found = ArcId::Invalid();
      for (std::int32_t raw : graph.OutArcs(v)) {
        if ((raw & 1) != 0 && graph.arc(ArcId(raw)).flow < 0) {
          found = ArcId(raw);
          break;
        }
      }
      ALADDIN_CHECK(found.valid())
          << "CancelArcFlow: conservation violated at vertex " << v;
      ws.back_arcs.push_back(found);
      bottleneck = std::min(bottleneck, -graph.arc(found).flow);
      v = graph.arc(found).head;
    }

    // Forward segment: from head(a) to the sink, along forward arcs
    // carrying flow out of the current vertex.
    ws.fwd_arcs.clear();
    VertexId u = graph.arc(a).head;
    steps = 0;
    while (u != sink) {
      ALADDIN_CHECK(++steps <= graph.vertex_count())
          << "CancelArcFlow: flow cycle through vertex " << u;
      ArcId found = ArcId::Invalid();
      for (std::int32_t raw : graph.OutArcs(u)) {
        if ((raw & 1) == 0 && graph.arc(ArcId(raw)).flow > 0) {
          found = ArcId(raw);
          break;
        }
      }
      ALADDIN_CHECK(found.valid())
          << "CancelArcFlow: conservation violated at vertex " << u;
      ws.fwd_arcs.push_back(found);
      bottleneck = std::min(bottleneck, graph.arc(found).flow);
      u = graph.arc(found).head;
    }

    ALADDIN_DCHECK(bottleneck > 0);
    // Unwind: pushing along a residual twin subtracts from its forward arc.
    for (ArcId t : ws.back_arcs) graph.Push(t, bottleneck);
    graph.Push(Graph::Reverse(a), bottleneck);
    for (ArcId f : ws.fwd_arcs) graph.Push(Graph::Reverse(f), bottleneck);
    cancelled += bottleneck;
  }
  return cancelled;
}

Capacity CancelArcFlow(Graph& graph, ArcId a, Capacity amount,
                       VertexId source, VertexId sink) {
  return CancelArcFlow(graph, a, amount, source, sink,
                       ThreadLocalWorkspace());
}

Capacity RefreshCapacities(Graph& graph,
                           std::span<const CapacityUpdate> updates,
                           VertexId source, VertexId sink, Workspace& ws) {
  Capacity cancelled = 0;
  for (const CapacityUpdate& u : updates) {
    const Arc& arc = graph.arc(u.arc);
    if (arc.capacity == u.capacity) continue;  // warm flow survives as-is
    if (arc.flow > u.capacity) {
      // Shrinking below the carried flow: cancel exactly the excess so the
      // graph stays a valid flow at every step, then retarget.
      cancelled +=
          CancelArcFlow(graph, u.arc, arc.flow - u.capacity, source, sink, ws);
    }
    graph.SetCapacity(u.arc, u.capacity);
  }
  return cancelled;
}

Capacity RefreshCapacities(Graph& graph,
                           std::span<const CapacityUpdate> updates,
                           VertexId source, VertexId sink) {
  return RefreshCapacities(graph, updates, source, sink,
                           ThreadLocalWorkspace());
}

}  // namespace aladdin::flow

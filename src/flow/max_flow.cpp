#include "flow/max_flow.h"

#include <algorithm>
#include <deque>
#include <limits>

#include "common/check.h"
#include "obs/trace.h"

namespace aladdin::flow {

MaxFlowResult EdmondsKarp(Graph& graph, VertexId source, VertexId sink) {
  ALADDIN_TRACE_SCOPE("flow/edmonds_karp");
  ALADDIN_CHECK(source != sink);
  MaxFlowResult result;
  const std::size_t n = graph.vertex_count();
  std::vector<std::int32_t> parent_arc(n);

  for (;;) {
    std::fill(parent_arc.begin(), parent_arc.end(), -1);
    std::deque<VertexId> queue{source};
    parent_arc[static_cast<std::size_t>(source.value())] = -2;  // visited mark
    bool found = false;
    while (!queue.empty() && !found) {
      const VertexId u = queue.front();
      queue.pop_front();
      for (std::int32_t raw : graph.OutArcs(u)) {
        const ArcId a{raw};
        if (graph.Residual(a) <= 0) continue;
        const VertexId v = graph.arc(a).head;
        auto& slot = parent_arc[static_cast<std::size_t>(v.value())];
        if (slot != -1) continue;
        slot = raw;
        if (v == sink) {
          found = true;
          break;
        }
        queue.push_back(v);
      }
    }
    if (!found) break;

    // Walk back from sink to source to find the bottleneck, then push.
    Capacity bottleneck = std::numeric_limits<Capacity>::max();
    for (VertexId v = sink; v != source;) {
      const ArcId a{parent_arc[static_cast<std::size_t>(v.value())]};
      bottleneck = std::min(bottleneck, graph.Residual(a));
      v = graph.Tail(a);
    }
    for (VertexId v = sink; v != source;) {
      const ArcId a{parent_arc[static_cast<std::size_t>(v.value())]};
      graph.Push(a, bottleneck);
      v = graph.Tail(a);
    }
    result.value += bottleneck;
    ++result.augmentations;
  }
  return result;
}

namespace {

// Dinic state bundled to avoid reallocating across phases.
class DinicSolver {
 public:
  DinicSolver(Graph& graph, VertexId source, VertexId sink)
      : graph_(graph),
        source_(source),
        sink_(sink),
        level_(graph.vertex_count()),
        next_arc_(graph.vertex_count()) {}

  MaxFlowResult Run() {
    MaxFlowResult result;
    while (BuildLevels()) {
      std::fill(next_arc_.begin(), next_arc_.end(), 0);
      for (;;) {
        const Capacity pushed =
            Push(source_, std::numeric_limits<Capacity>::max());
        if (pushed == 0) break;
        result.value += pushed;
      }
      ++result.augmentations;  // counts phases for Dinic
    }
    return result;
  }

 private:
  bool BuildLevels() {
    std::fill(level_.begin(), level_.end(), -1);
    std::deque<VertexId> queue{source_};
    level_[Idx(source_)] = 0;
    while (!queue.empty()) {
      const VertexId u = queue.front();
      queue.pop_front();
      for (std::int32_t raw : graph_.OutArcs(u)) {
        const ArcId a{raw};
        if (graph_.Residual(a) <= 0) continue;
        const VertexId v = graph_.arc(a).head;
        if (level_[Idx(v)] != -1) continue;
        level_[Idx(v)] = level_[Idx(u)] + 1;
        queue.push_back(v);
      }
    }
    return level_[Idx(sink_)] != -1;
  }

  Capacity Push(VertexId u, Capacity limit) {
    if (u == sink_) return limit;
    const auto arcs = graph_.OutArcs(u);
    for (auto& i = next_arc_[Idx(u)]; i < arcs.size(); ++i) {
      const ArcId a{arcs[i]};
      if (graph_.Residual(a) <= 0) continue;
      const VertexId v = graph_.arc(a).head;
      if (level_[Idx(v)] != level_[Idx(u)] + 1) continue;
      const Capacity pushed =
          Push(v, std::min(limit, graph_.Residual(a)));
      if (pushed > 0) {
        graph_.Push(a, pushed);
        return pushed;
      }
    }
    return 0;
  }

  static std::size_t Idx(VertexId v) {
    return static_cast<std::size_t>(v.value());
  }

  Graph& graph_;
  VertexId source_;
  VertexId sink_;
  std::vector<std::int32_t> level_;
  std::vector<std::size_t> next_arc_;
};

}  // namespace

MaxFlowResult Dinic(Graph& graph, VertexId source, VertexId sink) {
  ALADDIN_TRACE_SCOPE("flow/dinic");
  ALADDIN_CHECK(source != sink);
  const MaxFlowResult result = DinicSolver(graph, source, sink).Run();
  ALADDIN_METRIC_ADD("flow/dinic_phases", result.augmentations);
  return result;
}

std::vector<ArcId> MinCutArcs(const Graph& graph, VertexId source) {
  const auto reachable = ResidualReachable(graph, source);
  std::vector<ArcId> cut;
  for (std::size_t v = 0; v < graph.vertex_count(); ++v) {
    if (!reachable[v]) continue;
    for (std::int32_t raw :
         graph.OutArcs(VertexId(static_cast<std::int32_t>(v)))) {
      if (raw % 2 != 0) continue;  // forward arcs only
      const ArcId a{raw};
      const VertexId head = graph.arc(a).head;
      if (!reachable[static_cast<std::size_t>(head.value())]) {
        cut.push_back(a);
      }
    }
  }
  return cut;
}

std::vector<FlowPath> DecomposePaths(Graph& graph, VertexId source,
                                     VertexId sink) {
  std::vector<FlowPath> paths;
  const std::size_t n = graph.vertex_count();
  for (;;) {
    // Walk greedily along arcs with positive flow from the source.
    FlowPath path;
    VertexId at = source;
    Capacity bottleneck = std::numeric_limits<Capacity>::max();
    std::size_t hops = 0;
    while (at != sink && hops++ <= n) {
      ArcId next = ArcId::Invalid();
      for (std::int32_t raw : graph.OutArcs(at)) {
        if (raw % 2 != 0) continue;
        const ArcId a{raw};
        if (graph.arc(a).flow > 0) {
          next = a;
          break;
        }
      }
      if (!next.valid()) break;
      path.arcs.push_back(next);
      bottleneck = std::min(bottleneck, graph.arc(next).flow);
      at = graph.arc(next).head;
    }
    if (at != sink || path.arcs.empty()) break;  // no more s->t flow
    path.amount = bottleneck;
    for (ArcId a : path.arcs) {
      // Remove the path's flow (push along the residual twin).
      graph.Push(Graph::Reverse(a), bottleneck);
    }
    paths.push_back(std::move(path));
  }
  // Any remaining flow sits on cycles; drain it so the graph ends clean.
  graph.ResetFlows();
  return paths;
}

Capacity CancelArcFlow(Graph& graph, ArcId a, Capacity amount,
                       VertexId source, VertexId sink) {
  ALADDIN_CHECK(a.valid() && a.value() % 2 == 0)
      << "CancelArcFlow wants a forward arc";
  Capacity cancelled = 0;
  while (cancelled < amount && graph.arc(a).flow > 0) {
    Capacity bottleneck = std::min(amount - cancelled, graph.arc(a).flow);

    // Backward segment: from tail(a) to the source, along arcs carrying
    // flow *into* the current vertex. An incoming forward arc appears in
    // the vertex's adjacency as its residual twin (odd id, negative flow);
    // the first match in adjacency order keeps the walk deterministic.
    std::vector<ArcId> back_twins;
    VertexId v = graph.Tail(a);
    std::size_t steps = 0;
    while (v != source) {
      ALADDIN_CHECK(++steps <= graph.vertex_count())
          << "CancelArcFlow: flow cycle through vertex " << v;
      ArcId found = ArcId::Invalid();
      for (std::int32_t raw : graph.OutArcs(v)) {
        if ((raw & 1) != 0 && graph.arc(ArcId(raw)).flow < 0) {
          found = ArcId(raw);
          break;
        }
      }
      ALADDIN_CHECK(found.valid())
          << "CancelArcFlow: conservation violated at vertex " << v;
      back_twins.push_back(found);
      bottleneck = std::min(bottleneck, -graph.arc(found).flow);
      v = graph.arc(found).head;
    }

    // Forward segment: from head(a) to the sink, along forward arcs
    // carrying flow out of the current vertex.
    std::vector<ArcId> fwd_arcs;
    VertexId u = graph.arc(a).head;
    steps = 0;
    while (u != sink) {
      ALADDIN_CHECK(++steps <= graph.vertex_count())
          << "CancelArcFlow: flow cycle through vertex " << u;
      ArcId found = ArcId::Invalid();
      for (std::int32_t raw : graph.OutArcs(u)) {
        if ((raw & 1) == 0 && graph.arc(ArcId(raw)).flow > 0) {
          found = ArcId(raw);
          break;
        }
      }
      ALADDIN_CHECK(found.valid())
          << "CancelArcFlow: conservation violated at vertex " << u;
      fwd_arcs.push_back(found);
      bottleneck = std::min(bottleneck, graph.arc(found).flow);
      u = graph.arc(found).head;
    }

    ALADDIN_DCHECK(bottleneck > 0);
    // Unwind: pushing along a residual twin subtracts from its forward arc.
    for (ArcId t : back_twins) graph.Push(t, bottleneck);
    graph.Push(Graph::Reverse(a), bottleneck);
    for (ArcId f : fwd_arcs) graph.Push(Graph::Reverse(f), bottleneck);
    cancelled += bottleneck;
  }
  return cancelled;
}

std::vector<bool> ResidualReachable(const Graph& graph, VertexId source) {
  std::vector<bool> seen(graph.vertex_count(), false);
  std::deque<VertexId> queue{source};
  seen[static_cast<std::size_t>(source.value())] = true;
  while (!queue.empty()) {
    const VertexId u = queue.front();
    queue.pop_front();
    for (std::int32_t raw : graph.OutArcs(u)) {
      const ArcId a{raw};
      if (graph.Residual(a) <= 0) continue;
      const VertexId v = graph.arc(a).head;
      if (seen[static_cast<std::size_t>(v.value())]) continue;
      seen[static_cast<std::size_t>(v.value())] = true;
      queue.push_back(v);
    }
  }
  return seen;
}

}  // namespace aladdin::flow

// Directed flow network with residual arcs.
//
// Storage follows the classic paired-arc layout: arc 2k is a forward arc and
// arc 2k+1 is its residual twin, so the reverse of arc a is a ^ 1. Adjacency
// is a frozen CSR (compressed sparse row) view derived from the arc array:
// one flat `offsets[]` array (V+1 entries) and one flat `arc_ids[]` array (A
// entries), grouped by tail in ascending arc-id order — exactly the order the
// old per-vertex vectors produced, so solver iteration order (and therefore
// every placement decision) is bit-identical to the nested-vector layout.
//
// Mutations (AddArc / AddVertex) only touch the arc array and mark the CSR
// dirty; the CSR is (re)built lazily on the next adjacency read, so a batch
// of topology changes between reads costs one O(V + A) re-freeze, not one per
// arc. All capacities, flows and costs are 64-bit integers — the scheduling
// layers express resources in exact milli-units, so the flow substrate never
// touches floating point.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "common/ids.h"

namespace aladdin::flow {

using Capacity = std::int64_t;
using Cost = std::int64_t;

inline constexpr Capacity kInfiniteCapacity =
    std::int64_t{1} << 60;  // effectively unbounded, no overflow when summed

struct Arc {
  VertexId head;       // arc points at this vertex
  Capacity capacity;   // upper bound (residual twin starts at 0)
  Capacity flow;       // current flow; residual = capacity - flow
  Cost cost;           // per-unit cost (twin carries -cost)
};

class Graph {
 public:
  // Index-domain limits. Arc ids and vertex ids are int32_t everywhere (CSR
  // entries, ShortestPathTree::parent_arc, ArcId/VertexId); the arc slot
  // count is additionally kept even (arcs always come in forward/twin pairs)
  // and one below INT32_MAX so CSR offsets fit int32_t too.
  static constexpr std::size_t kMaxVertices =
      static_cast<std::size_t>(std::numeric_limits<std::int32_t>::max());
  static constexpr std::size_t kMaxArcSlots =
      static_cast<std::size_t>(std::numeric_limits<std::int32_t>::max()) - 1;

  Graph() = default;
  explicit Graph(std::size_t vertex_hint) {
    csr_offsets_.reserve(vertex_hint + 1);
  }

  VertexId AddVertex();
  // Bulk variant; returns the id of the first vertex added.
  VertexId AddVertices(std::size_t n);

  // Adds forward arc tail->head plus a zero-capacity residual twin.
  // Returns the forward arc's id; its twin is Reverse(id).
  ArcId AddArc(VertexId tail, VertexId head, Capacity capacity, Cost cost = 0);

  [[nodiscard]] static ArcId Reverse(ArcId a) {
    return ArcId(a.value() ^ 1);
  }

  [[nodiscard]] std::size_t vertex_count() const { return vertex_count_; }
  [[nodiscard]] std::size_t arc_count() const { return arcs_.size(); }

  [[nodiscard]] const Arc& arc(ArcId a) const { return arcs_[Index(a)]; }
  [[nodiscard]] VertexId Tail(ArcId a) const { return arcs_[Index(Reverse(a))].head; }

  [[nodiscard]] Capacity Residual(ArcId a) const {
    const Arc& x = arcs_[Index(a)];
    return x.capacity - x.flow;
  }

  // Pushes `amount` along arc a (and -amount along its twin).
  // Requires 0 <= amount <= Residual(a).
  void Push(ArcId a, Capacity amount);

  // Arc ids leaving vertex v (forward and residual twins both appear in the
  // adjacency of their respective tails), in ascending arc-id order. Lazily
  // re-freezes the CSR if topology changed since the last read; call
  // Freeze() first when sharing a graph read-only across threads.
  [[nodiscard]] std::span<const std::int32_t> OutArcs(VertexId v) const {
    if (csr_dirty_) RebuildCsr();
    const auto i = static_cast<std::size_t>(v.value());
    const auto begin = static_cast<std::size_t>(csr_offsets_[i]);
    const auto end = static_cast<std::size_t>(csr_offsets_[i + 1]);
    return {csr_arcs_.data() + begin, end - begin};
  }

  // Builds the CSR adjacency now (idempotent when already clean). Reads on a
  // frozen graph are safe from multiple threads; a read on a dirty graph
  // re-freezes and is not.
  void Freeze() const {
    if (csr_dirty_) RebuildCsr();
  }

  [[nodiscard]] bool frozen() const { return !csr_dirty_; }

  [[nodiscard]] Capacity Flow(ArcId a) const { return arcs_[Index(a)].flow; }

  // Zero all flows, keeping topology and capacities.
  void ResetFlows();

  // Replace the capacity of an existing arc. Requires new capacity >= flow
  // (cancel excess flow first — see flow::CancelArcFlow in max_flow.h);
  // this is what keeps in-place updates ValidateInvariants()-clean.
  void SetCapacity(ArcId a, Capacity capacity);

  // Relative in-place capacity update; same flow precondition as
  // SetCapacity. Returns the new capacity.
  Capacity AdjustCapacity(ArcId a, Capacity delta);

  // Total flow out of v minus flow into v (positive at a source).
  [[nodiscard]] Capacity NetOutflow(VertexId v) const;

  // Deep structural validation: residual-arc pairing (even/odd twins with
  // zero-capacity reverse, negated flow and cost), 0 <= flow <= capacity on
  // every forward arc, a CSR adjacency that agrees with arc tails (each arc
  // listed exactly once, under its tail, offsets monotone), and flow
  // conservation at every vertex not listed in `exempt` (sources/sinks).
  // Returns true when every invariant holds; otherwise false with a
  // description of the first violation in *error (if non-null). O(V + E).
  [[nodiscard]] bool ValidateInvariants(std::span<const VertexId> exempt = {},
                                        std::string* error = nullptr) const;

  // Legacy spelling kept for existing call sites; same as ValidateInvariants
  // without the error message.
  [[nodiscard]] bool CheckConsistency(std::span<const VertexId> exempt) const {
    return ValidateInvariants(exempt);
  }

 private:
  friend struct GraphTestPeer;  // tests corrupt arcs/CSR to exercise validation
  static std::size_t Index(ArcId a) {
    return static_cast<std::size_t>(a.value());
  }
  // The arc-slot overflow check, split out so the boundary is unit-testable
  // without materialising 2^31 arcs (GraphTestPeer calls it directly).
  static void CheckCanAddArcPair(std::size_t current_arc_slots);

  // Rebuild the CSR arrays from arcs_ (counting sort by tail, ascending
  // arc-id within each tail — an arc's tail is its twin's head, so the arc
  // array alone fully determines the adjacency).
  void RebuildCsr() const;

  std::vector<Arc> arcs_;
  std::size_t vertex_count_ = 0;
  // CSR adjacency, derived from arcs_. `mutable` because the rebuild is a
  // cache fill triggered from const reads.
  mutable std::vector<std::int32_t> csr_offsets_;  // V+1 entries
  mutable std::vector<std::int32_t> csr_arcs_;     // A entries
  mutable bool csr_dirty_ = true;
};

}  // namespace aladdin::flow

// Directed flow network with residual arcs.
//
// Storage follows the classic paired-arc layout: arc 2k is a forward arc and
// arc 2k+1 is its residual twin, so the reverse of arc a is a ^ 1. Adjacency
// is a per-vertex vector of arc indices. All capacities, flows and costs are
// 64-bit integers — the scheduling layers express resources in exact
// milli-units, so the flow substrate never touches floating point.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/ids.h"

namespace aladdin::flow {

using Capacity = std::int64_t;
using Cost = std::int64_t;

inline constexpr Capacity kInfiniteCapacity =
    std::int64_t{1} << 60;  // effectively unbounded, no overflow when summed

struct Arc {
  VertexId head;       // arc points at this vertex
  Capacity capacity;   // upper bound (residual twin starts at 0)
  Capacity flow;       // current flow; residual = capacity - flow
  Cost cost;           // per-unit cost (twin carries -cost)
};

class Graph {
 public:
  Graph() = default;
  explicit Graph(std::size_t vertex_hint) { adjacency_.reserve(vertex_hint); }

  VertexId AddVertex();
  // Bulk variant; returns the id of the first vertex added.
  VertexId AddVertices(std::size_t n);

  // Adds forward arc tail->head plus a zero-capacity residual twin.
  // Returns the forward arc's id; its twin is Reverse(id).
  ArcId AddArc(VertexId tail, VertexId head, Capacity capacity, Cost cost = 0);

  [[nodiscard]] static ArcId Reverse(ArcId a) {
    return ArcId(a.value() ^ 1);
  }

  [[nodiscard]] std::size_t vertex_count() const { return adjacency_.size(); }
  [[nodiscard]] std::size_t arc_count() const { return arcs_.size(); }

  [[nodiscard]] const Arc& arc(ArcId a) const { return arcs_[Index(a)]; }
  [[nodiscard]] VertexId Tail(ArcId a) const { return arcs_[Index(Reverse(a))].head; }

  [[nodiscard]] Capacity Residual(ArcId a) const {
    const Arc& x = arcs_[Index(a)];
    return x.capacity - x.flow;
  }

  // Pushes `amount` along arc a (and -amount along its twin).
  // Requires 0 <= amount <= Residual(a).
  void Push(ArcId a, Capacity amount);

  // Arc ids leaving vertex v (forward and residual twins both appear in the
  // adjacency of their respective tails).
  [[nodiscard]] std::span<const std::int32_t> OutArcs(VertexId v) const {
    return adjacency_[static_cast<std::size_t>(v.value())];
  }

  [[nodiscard]] Capacity Flow(ArcId a) const { return arcs_[Index(a)].flow; }

  // Zero all flows, keeping topology and capacities.
  void ResetFlows();

  // Replace the capacity of an existing arc. Requires new capacity >= flow
  // (cancel excess flow first — see flow::CancelArcFlow in max_flow.h);
  // this is what keeps in-place updates ValidateInvariants()-clean.
  void SetCapacity(ArcId a, Capacity capacity);

  // Relative in-place capacity update; same flow precondition as
  // SetCapacity. Returns the new capacity.
  Capacity AdjustCapacity(ArcId a, Capacity delta);

  // Total flow out of v minus flow into v (positive at a source).
  [[nodiscard]] Capacity NetOutflow(VertexId v) const;

  // Deep structural validation: residual-arc pairing (even/odd twins with
  // zero-capacity reverse, negated flow and cost), 0 <= flow <= capacity on
  // every forward arc, adjacency lists that agree with arc tails (each arc
  // listed exactly once, under its tail), and flow conservation at every
  // vertex not listed in `exempt` (sources/sinks). Returns true when every
  // invariant holds; otherwise false with a description of the first
  // violation in *error (if non-null). O(V + E).
  [[nodiscard]] bool ValidateInvariants(std::span<const VertexId> exempt = {},
                                        std::string* error = nullptr) const;

  // Legacy spelling kept for existing call sites; same as ValidateInvariants
  // without the error message.
  [[nodiscard]] bool CheckConsistency(std::span<const VertexId> exempt) const {
    return ValidateInvariants(exempt);
  }

 private:
  friend struct GraphTestPeer;  // tests corrupt arcs to exercise validation
  static std::size_t Index(ArcId a) {
    return static_cast<std::size_t>(a.value());
  }
  std::vector<Arc> arcs_;
  std::vector<std::vector<std::int32_t>> adjacency_;
};

}  // namespace aladdin::flow

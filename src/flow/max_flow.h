// Classic max-flow solvers over flow::Graph.
//
// Two implementations with the usual trade-off:
//  * EdmondsKarp — BFS augmenting paths, O(V·E²); simple, used as the test
//    oracle for the fancier solvers.
//  * Dinic — level graph + blocking flow, O(V²·E); the workhorse where a raw
//    scalar max flow is needed.
//
// Every solver has two overloads: one taking an explicit flow::Workspace
// (zero steady-state allocations — the caller owns the scratch across runs,
// e.g. core::IncrementalRelaxation) and a convenience overload using the
// per-thread default workspace. Both are bit-identical in results.
#pragma once

#include <span>

#include "flow/graph.h"
#include "flow/workspace.h"

namespace aladdin::flow {

struct MaxFlowResult {
  Capacity value = 0;        // total s->t flow
  std::int64_t augmentations = 0;  // number of augmenting paths / phases found
};

MaxFlowResult EdmondsKarp(Graph& graph, VertexId source, VertexId sink,
                          Workspace& ws);
MaxFlowResult EdmondsKarp(Graph& graph, VertexId source, VertexId sink);

MaxFlowResult Dinic(Graph& graph, VertexId source, VertexId sink,
                    Workspace& ws);
MaxFlowResult Dinic(Graph& graph, VertexId source, VertexId sink);

// Marks the vertices reachable from `source` in the residual graph in
// ws.visited (stamped == reachable) — the source side of a minimum cut once
// a max flow has been computed. Allocation-free.
void ResidualReachableInto(const Graph& graph, VertexId source, Workspace& ws);

// Allocating wrapper over ResidualReachableInto for cold call sites.
std::vector<bool> ResidualReachable(const Graph& graph, VertexId source);

// The saturated forward arcs crossing the minimum cut after a max flow has
// been computed. Their capacities sum to the flow value (max-flow/min-cut).
std::vector<ArcId> MinCutArcs(const Graph& graph, VertexId source);

// One source->sink path carrying positive flow, with the amount it carries.
struct FlowPath {
  std::vector<ArcId> arcs;
  Capacity amount = 0;
};

// Decomposes the current flow into at most |E| source->sink paths (flow
// decomposition theorem; cycles, which our solvers never produce on DAG-like
// scheduling graphs, are drained last and dropped). The graph's flows are
// consumed — it ends with zero flow everywhere.
std::vector<FlowPath> DecomposePaths(Graph& graph, VertexId source,
                                     VertexId sink);

// Incremental-reuse primitive: cancels up to `amount` units of the flow
// currently crossing forward arc `a` by unwinding whole source→…→tail(a)
// and head(a)→…→sink flow-carrying segments, so conservation (and
// ValidateInvariants) holds after every call. The typical use is lowering
// an arc's capacity below its current flow without rebuilding the graph:
// cancel the excess, SetCapacity, then re-run a max-flow solver to
// re-augment from the warm flow. Requires the flow to be acyclic (true for
// anything our solvers produce on the layered scheduling networks).
// Returns the amount actually cancelled (min of `amount` and the arc flow).
Capacity CancelArcFlow(Graph& graph, ArcId a, Capacity amount,
                       VertexId source, VertexId sink, Workspace& ws);
Capacity CancelArcFlow(Graph& graph, ArcId a, Capacity amount,
                       VertexId source, VertexId sink);

// One capacity retarget of a warm-started refresh batch.
struct CapacityUpdate {
  ArcId arc = ArcId::Invalid();
  Capacity capacity = 0;
};

// Batch-incremental capacity refresh (ISSUE 9): applies a micro-batch of
// capacity retargets to a graph that still carries the previous solve's
// flow, preserving it as a warm start. Per update: arcs whose capacity
// already matches are skipped, arcs whose current flow exceeds the new
// capacity get exactly the excess cancelled (CancelArcFlow unwinds whole
// source→…→sink segments, so conservation holds after every step), then the
// capacity is set. Invariants hold on return and the surviving flow is a
// valid (possibly non-maximum) flow — re-run Dinic/EdmondsKarp to
// re-augment only the changed frontier. Returns the total flow cancelled
// (0 means the warm flow survived intact).
Capacity RefreshCapacities(Graph& graph,
                           std::span<const CapacityUpdate> updates,
                           VertexId source, VertexId sink, Workspace& ws);
Capacity RefreshCapacities(Graph& graph,
                           std::span<const CapacityUpdate> updates,
                           VertexId source, VertexId sink);

}  // namespace aladdin::flow

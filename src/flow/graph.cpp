#include "flow/graph.h"

#include <sstream>

#include "common/check.h"

namespace aladdin::flow {

VertexId Graph::AddVertex() {
  adjacency_.emplace_back();
  return VertexId(static_cast<std::int32_t>(adjacency_.size() - 1));
}

VertexId Graph::AddVertices(std::size_t n) {
  const VertexId first(static_cast<std::int32_t>(adjacency_.size()));
  adjacency_.resize(adjacency_.size() + n);
  return first;
}

ArcId Graph::AddArc(VertexId tail, VertexId head, Capacity capacity,
                    Cost cost) {
  ALADDIN_DCHECK(tail.valid() &&
                 static_cast<std::size_t>(tail.value()) < adjacency_.size())
      << "AddArc: bad tail " << tail;
  ALADDIN_DCHECK(head.valid() &&
                 static_cast<std::size_t>(head.value()) < adjacency_.size())
      << "AddArc: bad head " << head;
  ALADDIN_DCHECK(capacity >= 0) << "AddArc: negative capacity " << capacity;
  const auto forward_index = static_cast<std::int32_t>(arcs_.size());
  arcs_.push_back(Arc{head, capacity, 0, cost});
  arcs_.push_back(Arc{tail, 0, 0, -cost});
  adjacency_[static_cast<std::size_t>(tail.value())].push_back(forward_index);
  adjacency_[static_cast<std::size_t>(head.value())].push_back(forward_index +
                                                               1);
  return ArcId(forward_index);
}

void Graph::Push(ArcId a, Capacity amount) {
  ALADDIN_DCHECK(amount >= 0) << "Push: negative amount " << amount;
  ALADDIN_DCHECK(amount <= Residual(a))
      << "Push: amount " << amount << " exceeds residual " << Residual(a)
      << " on arc " << a;
  arcs_[Index(a)].flow += amount;
  arcs_[Index(Reverse(a))].flow -= amount;
}

void Graph::ResetFlows() {
  for (Arc& a : arcs_) a.flow = 0;
}

void Graph::SetCapacity(ArcId a, Capacity capacity) {
  ALADDIN_DCHECK(capacity >= arcs_[Index(a)].flow)
      << "SetCapacity: capacity " << capacity << " below flow "
      << arcs_[Index(a)].flow << " on arc " << a;
  arcs_[Index(a)].capacity = capacity;
}

Capacity Graph::AdjustCapacity(ArcId a, Capacity delta) {
  const Capacity updated = arcs_[Index(a)].capacity + delta;
  SetCapacity(a, updated);
  return updated;
}

Capacity Graph::NetOutflow(VertexId v) const {
  Capacity net = 0;
  for (std::int32_t raw : OutArcs(v)) {
    const Arc& a = arcs_[static_cast<std::size_t>(raw)];
    // Forward arcs (even index) carry positive flow out of v; residual twins
    // carry the negation of their forward arc's flow.
    net += a.flow;
  }
  return net;
}

namespace {

bool Fail(std::string* error, const std::ostringstream& os) {
  if (error != nullptr) *error = os.str();
  return false;
}

}  // namespace

bool Graph::ValidateInvariants(std::span<const VertexId> exempt,
                               std::string* error) const {
  if (arcs_.size() % 2 != 0) {
    std::ostringstream os;
    os << "odd arc count " << arcs_.size() << " (twin pairing broken)";
    return Fail(error, os);
  }
  const auto vertices = vertex_count();
  for (std::size_t i = 0; i < arcs_.size(); i += 2) {
    const Arc& fwd = arcs_[i];
    const Arc& rev = arcs_[i + 1];
    if (!fwd.head.valid() ||
        static_cast<std::size_t>(fwd.head.value()) >= vertices ||
        !rev.head.valid() ||
        static_cast<std::size_t>(rev.head.value()) >= vertices) {
      std::ostringstream os;
      os << "arc pair " << i << ": endpoint out of range (head=" << fwd.head
         << ", tail=" << rev.head << ", vertices=" << vertices << ")";
      return Fail(error, os);
    }
    if (fwd.capacity < 0 || fwd.flow < 0 || fwd.flow > fwd.capacity) {
      std::ostringstream os;
      os << "arc " << i << ": flow " << fwd.flow << " outside [0, capacity="
         << fwd.capacity << "]";
      return Fail(error, os);
    }
    if (rev.capacity != 0) {
      std::ostringstream os;
      os << "arc " << i + 1 << ": residual twin has capacity " << rev.capacity
         << " (must be 0)";
      return Fail(error, os);
    }
    if (rev.flow != -fwd.flow) {
      std::ostringstream os;
      os << "arc pair " << i << ": twin flow " << rev.flow
         << " != -forward flow " << -fwd.flow;
      return Fail(error, os);
    }
    if (rev.cost != -fwd.cost) {
      std::ostringstream os;
      os << "arc pair " << i << ": twin cost " << rev.cost
         << " != -forward cost " << -fwd.cost;
      return Fail(error, os);
    }
  }
  // Adjacency audit: every arc id appears exactly once, in the adjacency of
  // its tail (an arc's tail is its twin's head).
  std::vector<std::uint8_t> seen(arcs_.size(), 0);
  for (std::size_t v = 0; v < vertices; ++v) {
    for (std::int32_t raw : adjacency_[v]) {
      if (raw < 0 || static_cast<std::size_t>(raw) >= arcs_.size()) {
        std::ostringstream os;
        os << "vertex " << v << ": adjacency entry " << raw
           << " outside arc range [0, " << arcs_.size() << ")";
        return Fail(error, os);
      }
      if (seen[static_cast<std::size_t>(raw)]++) {
        std::ostringstream os;
        os << "arc " << raw << " listed in adjacency more than once";
        return Fail(error, os);
      }
      const Arc& twin = arcs_[static_cast<std::size_t>(raw) ^ 1];
      if (static_cast<std::size_t>(twin.head.value()) != v) {
        std::ostringstream os;
        os << "arc " << raw << " listed under vertex " << v
           << " but its tail is " << twin.head;
        return Fail(error, os);
      }
    }
  }
  for (std::size_t i = 0; i < arcs_.size(); ++i) {
    if (!seen[i]) {
      std::ostringstream os;
      os << "arc " << i << " missing from every adjacency list";
      return Fail(error, os);
    }
  }
  // Flow conservation at interior vertices.
  std::vector<std::uint8_t> is_exempt(vertices, 0);
  for (VertexId v : exempt) {
    if (v.valid() && static_cast<std::size_t>(v.value()) < vertices) {
      is_exempt[static_cast<std::size_t>(v.value())] = 1;
    }
  }
  for (std::size_t v = 0; v < vertices; ++v) {
    if (is_exempt[v]) continue;
    const Capacity net = NetOutflow(VertexId(static_cast<std::int32_t>(v)));
    if (net != 0) {
      std::ostringstream os;
      os << "vertex " << v << ": net outflow " << net
         << " at non-exempt vertex (conservation violated)";
      return Fail(error, os);
    }
  }
  return true;
}

}  // namespace aladdin::flow

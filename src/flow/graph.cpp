#include "flow/graph.h"

#include <cassert>

namespace aladdin::flow {

VertexId Graph::AddVertex() {
  adjacency_.emplace_back();
  return VertexId(static_cast<std::int32_t>(adjacency_.size() - 1));
}

VertexId Graph::AddVertices(std::size_t n) {
  const VertexId first(static_cast<std::int32_t>(adjacency_.size()));
  adjacency_.resize(adjacency_.size() + n);
  return first;
}

ArcId Graph::AddArc(VertexId tail, VertexId head, Capacity capacity,
                    Cost cost) {
  assert(tail.valid() && static_cast<std::size_t>(tail.value()) < adjacency_.size());
  assert(head.valid() && static_cast<std::size_t>(head.value()) < adjacency_.size());
  assert(capacity >= 0);
  const auto forward_index = static_cast<std::int32_t>(arcs_.size());
  arcs_.push_back(Arc{head, capacity, 0, cost});
  arcs_.push_back(Arc{tail, 0, 0, -cost});
  adjacency_[static_cast<std::size_t>(tail.value())].push_back(forward_index);
  adjacency_[static_cast<std::size_t>(head.value())].push_back(forward_index +
                                                               1);
  return ArcId(forward_index);
}

void Graph::Push(ArcId a, Capacity amount) {
  assert(amount >= 0);
  assert(amount <= Residual(a));
  arcs_[Index(a)].flow += amount;
  arcs_[Index(Reverse(a))].flow -= amount;
}

void Graph::ResetFlows() {
  for (Arc& a : arcs_) a.flow = 0;
}

void Graph::SetCapacity(ArcId a, Capacity capacity) {
  assert(capacity >= arcs_[Index(a)].flow);
  arcs_[Index(a)].capacity = capacity;
}

Capacity Graph::NetOutflow(VertexId v) const {
  Capacity net = 0;
  for (std::int32_t raw : OutArcs(v)) {
    const Arc& a = arcs_[static_cast<std::size_t>(raw)];
    // Forward arcs (even index) carry positive flow out of v; residual twins
    // carry the negation of their forward arc's flow.
    net += a.flow;
  }
  return net;
}

bool Graph::CheckConsistency(std::span<const VertexId> exempt) const {
  for (std::size_t i = 0; i < arcs_.size(); i += 2) {
    const Arc& fwd = arcs_[i];
    const Arc& rev = arcs_[i + 1];
    if (fwd.flow < 0 || fwd.flow > fwd.capacity) return false;
    if (rev.flow != -fwd.flow) return false;
    if (rev.cost != -fwd.cost) return false;
  }
  std::vector<bool> is_exempt(vertex_count(), false);
  for (VertexId v : exempt) {
    is_exempt[static_cast<std::size_t>(v.value())] = true;
  }
  for (std::size_t v = 0; v < vertex_count(); ++v) {
    if (is_exempt[v]) continue;
    if (NetOutflow(VertexId(static_cast<std::int32_t>(v))) != 0) return false;
  }
  return true;
}

}  // namespace aladdin::flow

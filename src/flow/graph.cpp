#include "flow/graph.h"

#include <sstream>

#include "common/check.h"
#include "obs/metrics.h"

namespace aladdin::flow {

VertexId Graph::AddVertex() {
  ALADDIN_CHECK(vertex_count_ < kMaxVertices)
      << "Graph: vertex count would exceed the int32 id domain ("
      << kMaxVertices << ")";
  csr_dirty_ = true;
  return VertexId(static_cast<std::int32_t>(vertex_count_++));
}

VertexId Graph::AddVertices(std::size_t n) {
  ALADDIN_CHECK(n <= kMaxVertices - vertex_count_)
      << "Graph: adding " << n << " vertices to " << vertex_count_
      << " would exceed the int32 id domain (" << kMaxVertices << ")";
  const VertexId first(static_cast<std::int32_t>(vertex_count_));
  vertex_count_ += n;
  if (n > 0) csr_dirty_ = true;
  return first;
}

void Graph::CheckCanAddArcPair(std::size_t current_arc_slots) {
  // Each AddArc appends two slots (forward + residual twin); every slot id
  // must fit the int32 CSR entries and ShortestPathTree::parent_arc. This is
  // the boundary that used to overflow silently when adjacency stored the
  // truncated int32 of a wider arc index.
  ALADDIN_CHECK(current_arc_slots + 2 <= kMaxArcSlots)
      << "Graph: arc slot count " << current_arc_slots
      << " is at the int32 id domain limit (" << kMaxArcSlots
      << "); cannot add another arc pair";
}

ArcId Graph::AddArc(VertexId tail, VertexId head, Capacity capacity,
                    Cost cost) {
  ALADDIN_DCHECK(tail.valid() &&
                 static_cast<std::size_t>(tail.value()) < vertex_count_)
      << "AddArc: bad tail " << tail;
  ALADDIN_DCHECK(head.valid() &&
                 static_cast<std::size_t>(head.value()) < vertex_count_)
      << "AddArc: bad head " << head;
  ALADDIN_DCHECK(capacity >= 0) << "AddArc: negative capacity " << capacity;
  CheckCanAddArcPair(arcs_.size());
  const auto forward_index = static_cast<std::int32_t>(arcs_.size());
  arcs_.push_back(Arc{head, capacity, 0, cost});
  arcs_.push_back(Arc{tail, 0, 0, -cost});
  csr_dirty_ = true;
  return ArcId(forward_index);
}

void Graph::RebuildCsr() const {
  ALADDIN_METRIC_ADD("flow/csr_refreeze", 1);
  // Counting sort by tail. Pass 1: out-degrees into offsets[tail + 1].
  // analyze:allow(A103) amortised re-freeze: capacity tracks the arc high-water mark
  csr_offsets_.assign(vertex_count_ + 1, 0);
  for (std::size_t a = 0; a < arcs_.size(); ++a) {
    const auto tail = static_cast<std::size_t>(arcs_[a ^ 1].head.value());
    ++csr_offsets_[tail + 1];
  }
  // Pass 2: prefix sums -> start offsets.
  for (std::size_t v = 0; v < vertex_count_; ++v) {
    csr_offsets_[v + 1] += csr_offsets_[v];
  }
  // Pass 3: place arcs in ascending id order, bumping offsets[tail] as the
  // write cursor. Ascending id within each tail reproduces the legacy
  // nested-vector insertion order exactly (AddArc appended ids in order).
  csr_arcs_.resize(arcs_.size());  // analyze:allow(A103) amortised re-freeze, as above
  for (std::size_t a = 0; a < arcs_.size(); ++a) {
    const auto tail = static_cast<std::size_t>(arcs_[a ^ 1].head.value());
    csr_arcs_[static_cast<std::size_t>(csr_offsets_[tail]++)] =
        static_cast<std::int32_t>(a);
  }
  // Pass 4: undo the cursor bumps — offsets[v] now holds end(v) == start(v+1),
  // so shift everything one vertex right and restore offsets[0] = 0.
  for (std::size_t v = vertex_count_; v > 0; --v) {
    csr_offsets_[v] = csr_offsets_[v - 1];
  }
  if (!csr_offsets_.empty()) csr_offsets_[0] = 0;
  csr_dirty_ = false;
}

void Graph::Push(ArcId a, Capacity amount) {
  ALADDIN_DCHECK(amount >= 0) << "Push: negative amount " << amount;
  ALADDIN_DCHECK(amount <= Residual(a))
      << "Push: amount " << amount << " exceeds residual " << Residual(a)
      << " on arc " << a;
  arcs_[Index(a)].flow += amount;
  arcs_[Index(Reverse(a))].flow -= amount;
}

void Graph::ResetFlows() {
  for (Arc& a : arcs_) a.flow = 0;
}

void Graph::SetCapacity(ArcId a, Capacity capacity) {
  ALADDIN_DCHECK(capacity >= arcs_[Index(a)].flow)
      << "SetCapacity: capacity " << capacity << " below flow "
      << arcs_[Index(a)].flow << " on arc " << a;
  arcs_[Index(a)].capacity = capacity;
}

Capacity Graph::AdjustCapacity(ArcId a, Capacity delta) {
  const Capacity updated = arcs_[Index(a)].capacity + delta;
  SetCapacity(a, updated);
  return updated;
}

Capacity Graph::NetOutflow(VertexId v) const {
  Capacity net = 0;
  for (std::int32_t raw : OutArcs(v)) {
    const Arc& a = arcs_[static_cast<std::size_t>(raw)];
    // Forward arcs (even index) carry positive flow out of v; residual twins
    // carry the negation of their forward arc's flow.
    net += a.flow;
  }
  return net;
}

namespace {

bool Fail(std::string* error, const std::ostringstream& os) {
  if (error != nullptr) *error = os.str();
  return false;
}

}  // namespace

bool Graph::ValidateInvariants(std::span<const VertexId> exempt,
                               std::string* error) const {
  if (arcs_.size() % 2 != 0) {
    std::ostringstream os;
    os << "odd arc count " << arcs_.size() << " (twin pairing broken)";
    return Fail(error, os);
  }
  const auto vertices = vertex_count();
  for (std::size_t i = 0; i < arcs_.size(); i += 2) {
    const Arc& fwd = arcs_[i];
    const Arc& rev = arcs_[i + 1];
    if (!fwd.head.valid() ||
        static_cast<std::size_t>(fwd.head.value()) >= vertices ||
        !rev.head.valid() ||
        static_cast<std::size_t>(rev.head.value()) >= vertices) {
      std::ostringstream os;
      os << "arc pair " << i << ": endpoint out of range (head=" << fwd.head
         << ", tail=" << rev.head << ", vertices=" << vertices << ")";
      return Fail(error, os);
    }
    if (fwd.capacity < 0 || fwd.flow < 0 || fwd.flow > fwd.capacity) {
      std::ostringstream os;
      os << "arc " << i << ": flow " << fwd.flow << " outside [0, capacity="
         << fwd.capacity << "]";
      return Fail(error, os);
    }
    if (rev.capacity != 0) {
      std::ostringstream os;
      os << "arc " << i + 1 << ": residual twin has capacity " << rev.capacity
         << " (must be 0)";
      return Fail(error, os);
    }
    if (rev.flow != -fwd.flow) {
      std::ostringstream os;
      os << "arc pair " << i << ": twin flow " << rev.flow
         << " != -forward flow " << -fwd.flow;
      return Fail(error, os);
    }
    if (rev.cost != -fwd.cost) {
      std::ostringstream os;
      os << "arc pair " << i << ": twin cost " << rev.cost
         << " != -forward cost " << -fwd.cost;
      return Fail(error, os);
    }
  }
  // CSR audit: freeze (no-op when clean — a test peer's corruption of the
  // frozen arrays survives this), then check offsets shape and that every
  // arc id appears exactly once, under its tail (an arc's tail is its twin's
  // head).
  Freeze();
  if (csr_offsets_.size() != vertices + 1 || csr_offsets_.front() != 0 ||
      static_cast<std::size_t>(csr_offsets_.back()) != arcs_.size() ||
      csr_arcs_.size() != arcs_.size()) {
    std::ostringstream os;
    os << "CSR shape mismatch: " << csr_offsets_.size() << " offsets / "
       << csr_arcs_.size() << " entries for " << vertices << " vertices / "
       << arcs_.size() << " arcs";
    return Fail(error, os);
  }
  std::vector<std::uint8_t> seen(arcs_.size(), 0);
  for (std::size_t v = 0; v < vertices; ++v) {
    if (csr_offsets_[v] > csr_offsets_[v + 1]) {
      std::ostringstream os;
      os << "CSR offsets not monotone at vertex " << v;
      return Fail(error, os);
    }
    for (std::int32_t raw : OutArcs(VertexId(static_cast<std::int32_t>(v)))) {
      if (raw < 0 || static_cast<std::size_t>(raw) >= arcs_.size()) {
        std::ostringstream os;
        os << "vertex " << v << ": adjacency entry " << raw
           << " outside arc range [0, " << arcs_.size() << ")";
        return Fail(error, os);
      }
      if (seen[static_cast<std::size_t>(raw)]++) {
        std::ostringstream os;
        os << "arc " << raw << " listed in adjacency more than once";
        return Fail(error, os);
      }
      const Arc& twin = arcs_[static_cast<std::size_t>(raw) ^ 1];
      if (static_cast<std::size_t>(twin.head.value()) != v) {
        std::ostringstream os;
        os << "arc " << raw << " listed under vertex " << v
           << " but its tail is " << twin.head;
        return Fail(error, os);
      }
    }
  }
  for (std::size_t i = 0; i < arcs_.size(); ++i) {
    if (!seen[i]) {
      std::ostringstream os;
      os << "arc " << i << " missing from every adjacency list";
      return Fail(error, os);
    }
  }
  // Flow conservation at interior vertices.
  std::vector<std::uint8_t> is_exempt(vertices, 0);
  for (VertexId v : exempt) {
    if (v.valid() && static_cast<std::size_t>(v.value()) < vertices) {
      is_exempt[static_cast<std::size_t>(v.value())] = 1;
    }
  }
  for (std::size_t v = 0; v < vertices; ++v) {
    if (is_exempt[v]) continue;
    const Capacity net = NetOutflow(VertexId(static_cast<std::int32_t>(v)));
    if (net != 0) {
      std::ostringstream os;
      os << "vertex " << v << ": net outflow " << net
         << " at non-exempt vertex (conservation violated)";
      return Fail(error, os);
    }
  }
  return true;
}

}  // namespace aladdin::flow

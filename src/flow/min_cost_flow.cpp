#include "flow/min_cost_flow.h"

#include <algorithm>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "common/check.h"
#include "obs/trace.h"

namespace aladdin::flow {

namespace {

// One augmentation step shared by both pathfinders: pick the bottleneck
// along `path`, push it, and account flow/cost. Returns false when the path
// is empty (sink unreachable — flow is maximum).
bool Augment(Graph& graph, const std::vector<ArcId>& path, Capacity flow_limit,
             MinCostFlowResult& result) {
  if (path.empty()) return false;
  Capacity bottleneck = flow_limit - result.flow;
  for (ArcId a : path) bottleneck = std::min(bottleneck, graph.Residual(a));
  ALADDIN_DCHECK(bottleneck > 0);
  for (ArcId a : path) {
    graph.Push(a, bottleneck);
    result.cost += graph.arc(a).cost * bottleneck;
  }
  result.flow += bottleneck;
  ++result.iterations;
  return true;
}

MinCostFlowResult SolveSpfa(Graph& graph, VertexId source, VertexId sink,
                            Capacity flow_limit) {
  MinCostFlowResult result;
  while (result.flow < flow_limit) {
    ShortestPathTree tree = Spfa(graph, source);
    if (tree.negative_cycle) {
      result.negative_cycle = true;
      break;
    }
    if (!Augment(graph, ExtractPath(graph, tree, source, sink), flow_limit,
                 result)) {
      break;
    }
  }
  return result;
}

// Dijkstra over reduced costs c(u,v) + pi(u) - pi(v). With valid potentials
// every residual arc has non-negative reduced cost, so a binary heap works.
// Vertices with pi == kUnreachable were unreachable when the potentials were
// seeded; augmentations only add residual arcs along already-reachable
// paths, so they stay unreachable and are skipped.
ShortestPathTree DijkstraReduced(const Graph& graph, VertexId source,
                                 const std::vector<Cost>& pi) {
  const std::size_t n = graph.vertex_count();
  ShortestPathTree tree;
  tree.dist.assign(n, kUnreachable);
  tree.parent_arc.assign(n, -1);
  using Entry = std::pair<Cost, std::int32_t>;  // (reduced dist, vertex)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  tree.dist[static_cast<std::size_t>(source.value())] = 0;
  heap.emplace(0, source.value());
  while (!heap.empty()) {
    const auto [d, raw_u] = heap.top();
    heap.pop();
    const auto ui = static_cast<std::size_t>(raw_u);
    if (d > tree.dist[ui]) continue;  // stale entry
    for (std::int32_t raw : graph.OutArcs(VertexId(raw_u))) {
      const ArcId a{raw};
      if (graph.Residual(a) <= 0) continue;
      const VertexId v = graph.arc(a).head;
      const auto vi = static_cast<std::size_t>(v.value());
      if (pi[vi] >= kUnreachable) continue;
      const Cost reduced = graph.arc(a).cost + pi[ui] - pi[vi];
      ALADDIN_DCHECK(reduced >= 0)
          << "negative reduced cost " << reduced << " on arc " << a
          << " (stale potentials)";
      ++tree.relaxations;
      if (d + reduced < tree.dist[vi]) {
        tree.dist[vi] = d + reduced;
        tree.parent_arc[vi] = raw;
        heap.emplace(tree.dist[vi], v.value());
      }
    }
  }
  return tree;
}

MinCostFlowResult SolveDijkstra(Graph& graph, VertexId source, VertexId sink,
                                Capacity flow_limit) {
  MinCostFlowResult result;
  // Seed potentials with one Bellman–Ford pass (costs may be negative).
  ShortestPathTree seed = BellmanFord(graph, source);
  if (seed.negative_cycle) {
    result.negative_cycle = true;
    return result;
  }
  std::vector<Cost> pi = std::move(seed.dist);
  while (result.flow < flow_limit) {
    ShortestPathTree tree = DijkstraReduced(graph, source, pi);
    if (!Augment(graph, ExtractPath(graph, tree, source, sink), flow_limit,
                 result)) {
      break;
    }
    // pi' = pi + dist keeps reduced costs non-negative on the new residual
    // graph; unreached vertices keep their old potential (never visited).
    for (std::size_t v = 0; v < pi.size(); ++v) {
      if (tree.dist[v] < kUnreachable && pi[v] < kUnreachable) {
        pi[v] += tree.dist[v];
      }
    }
  }
  return result;
}

}  // namespace

MinCostFlowResult MinCostMaxFlow(Graph& graph, VertexId source, VertexId sink,
                                 Capacity flow_limit,
                                 MinCostFlowOptions options) {
  ALADDIN_TRACE_SCOPE("flow/ssp");
  ALADDIN_CHECK(source != sink);
  MinCostFlowResult result;
  switch (options.pathfinder) {
    case MinCostFlowOptions::Pathfinder::kDijkstra:
      result = SolveDijkstra(graph, source, sink, flow_limit);
      break;
    case MinCostFlowOptions::Pathfinder::kSpfa:
      result = SolveSpfa(graph, source, sink, flow_limit);
      break;
  }
  ALADDIN_METRIC_ADD("flow/ssp_iterations", result.iterations);
  return result;
}

}  // namespace aladdin::flow

#include "flow/min_cost_flow.h"

#include <algorithm>

#include "common/check.h"

namespace aladdin::flow {

MinCostFlowResult MinCostMaxFlow(Graph& graph, VertexId source, VertexId sink,
                                 Capacity flow_limit) {
  ALADDIN_CHECK(source != sink);
  MinCostFlowResult result;
  while (result.flow < flow_limit) {
    ShortestPathTree tree = Spfa(graph, source);
    if (tree.negative_cycle) {
      result.negative_cycle = true;
      break;
    }
    const auto path = ExtractPath(graph, tree, source, sink);
    if (path.empty()) break;  // sink unreachable: flow is maximum

    Capacity bottleneck = flow_limit - result.flow;
    for (ArcId a : path) bottleneck = std::min(bottleneck, graph.Residual(a));
    ALADDIN_DCHECK(bottleneck > 0);
    for (ArcId a : path) {
      graph.Push(a, bottleneck);
      result.cost += graph.arc(a).cost * bottleneck;
    }
    result.flow += bottleneck;
    ++result.iterations;
  }
  return result;
}

}  // namespace aladdin::flow

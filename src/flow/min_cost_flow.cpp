#include "flow/min_cost_flow.h"

#include <algorithm>
#include <functional>
#include <utility>
#include <vector>

#include "common/analysis.h"
#include "common/check.h"
#include "obs/trace.h"

namespace aladdin::flow {

namespace {

// One augmentation step shared by both pathfinders: pick the bottleneck
// along `path`, push it, and account flow/cost. Returns false when the path
// is empty (sink unreachable — flow is maximum).
bool Augment(Graph& graph, const std::vector<ArcId>& path, Capacity flow_limit,
             MinCostFlowResult& result) {
  if (path.empty()) return false;
  Capacity bottleneck = flow_limit - result.flow;
  for (ArcId a : path) bottleneck = std::min(bottleneck, graph.Residual(a));
  ALADDIN_DCHECK(bottleneck > 0);
  for (ArcId a : path) {
    graph.Push(a, bottleneck);
    result.cost += graph.arc(a).cost * bottleneck;
  }
  result.flow += bottleneck;
  ++result.iterations;
  return true;
}

ALADDIN_HOT MinCostFlowResult SolveSpfa(Graph& graph, VertexId source,
                                        VertexId sink, Capacity flow_limit,
                                        Workspace& ws) {
  MinCostFlowResult result;
  while (result.flow < flow_limit) {
    const ShortestPathStats stats = SpfaInto(graph, source, ws);
    if (stats.negative_cycle) {
      result.negative_cycle = true;
      break;
    }
    ExtractPathInto(graph, source, sink, ws);
    if (!Augment(graph, ws.path, flow_limit, result)) break;
  }
  return result;
}

// Dijkstra over reduced costs c(u,v) + pi(u) - pi(v). With valid potentials
// every residual arc has non-negative reduced cost, so a binary heap works.
// Vertices with pi == kUnreachable were unreachable when the potentials were
// seeded; augmentations only add residual arcs along already-reachable
// paths, so they stay unreachable and are skipped. Distances/parents land in
// ws.dist / ws.parent; the binary heap lives in ws.heap (capacity persists
// across augmentations). Allocation-free after warmup.
std::int64_t DijkstraReducedInto(const Graph& graph, VertexId source,
                                 Workspace& ws) {
  std::int64_t relaxations = 0;
  ws.BeginRun(graph);
  // ws.heap entries are (reduced dist, vertex) pairs, min-heap by distance.
  const std::greater<> cmp;
  ws.heap.clear();
  ws.dist.Set(static_cast<std::size_t>(source.value()), 0);
  ws.heap.emplace_back(0, source.value());
  while (!ws.heap.empty()) {
    std::pop_heap(ws.heap.begin(), ws.heap.end(), cmp);
    const auto [d, raw_u] = ws.heap.back();
    ws.heap.pop_back();
    const auto ui = static_cast<std::size_t>(raw_u);
    if (d > ws.dist.Get(ui, kUnreachable)) continue;  // stale entry
    for (std::int32_t raw : graph.OutArcs(VertexId(raw_u))) {
      const ArcId a{raw};
      if (graph.Residual(a) <= 0) continue;
      const VertexId v = graph.arc(a).head;
      const auto vi = static_cast<std::size_t>(v.value());
      if (ws.pi[vi] >= kUnreachable) continue;
      const Cost reduced = graph.arc(a).cost + ws.pi[ui] - ws.pi[vi];
      ALADDIN_DCHECK(reduced >= 0)
          << "negative reduced cost " << reduced << " on arc " << a
          << " (stale potentials)";
      ++relaxations;
      if (d + reduced < ws.dist.Get(vi, kUnreachable)) {
        ws.dist.Set(vi, d + reduced);
        ws.parent.Set(vi, raw);
        ws.heap.emplace_back(d + reduced, v.value());
        std::push_heap(ws.heap.begin(), ws.heap.end(), cmp);
      }
    }
  }
  return relaxations;
}

ALADDIN_HOT MinCostFlowResult SolveDijkstra(Graph& graph, VertexId source,
                                            VertexId sink,
                                            Capacity flow_limit,
                                            Workspace& ws) {
  MinCostFlowResult result;
  // Seed potentials with one Bellman–Ford pass (costs may be negative).
  // Cold: runs once per solve, not per augmentation.
  ShortestPathTree seed = BellmanFord(graph, source);
  if (seed.negative_cycle) {
    result.negative_cycle = true;
    return result;
  }
  ws.pi.assign(seed.dist.begin(), seed.dist.end());  // warm capacity reused
  while (result.flow < flow_limit) {
    DijkstraReducedInto(graph, source, ws);
    ExtractPathInto(graph, source, sink, ws);
    if (!Augment(graph, ws.path, flow_limit, result)) break;
    // pi' = pi + dist keeps reduced costs non-negative on the new residual
    // graph; unreached vertices keep their old potential (never visited).
    for (std::size_t v = 0; v < ws.pi.size(); ++v) {
      if (ws.dist.Stamped(v) && ws.pi[v] < kUnreachable) {
        ws.pi[v] += ws.dist.Get(v, kUnreachable);
      }
    }
  }
  return result;
}

}  // namespace

ALADDIN_HOT MinCostFlowResult MinCostMaxFlow(Graph& graph, VertexId source,
                                             VertexId sink,
                                             Capacity flow_limit,
                                             MinCostFlowOptions options,
                                             Workspace& ws) {
  ALADDIN_TRACE_SCOPE("flow/ssp");
  ALADDIN_CHECK(source != sink);
  MinCostFlowResult result;
  switch (options.pathfinder) {
    case MinCostFlowOptions::Pathfinder::kDijkstra:
      result = SolveDijkstra(graph, source, sink, flow_limit, ws);
      break;
    case MinCostFlowOptions::Pathfinder::kSpfa:
      result = SolveSpfa(graph, source, sink, flow_limit, ws);
      break;
  }
  ALADDIN_METRIC_ADD("flow/ssp_iterations", result.iterations);
  return result;
}

MinCostFlowResult MinCostMaxFlow(Graph& graph, VertexId source, VertexId sink,
                                 Capacity flow_limit,
                                 MinCostFlowOptions options) {
  return MinCostMaxFlow(graph, source, sink, flow_limit, options,
                        ThreadLocalWorkspace());
}

}  // namespace aladdin::flow

#include "flow/multidim.h"

#include <algorithm>
#include <deque>

#include "common/check.h"

namespace aladdin::flow {

bool DimLeq(const DimVector& a, const DimVector& b) {
  ALADDIN_DCHECK(a.size() == b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) return false;
  }
  return true;
}

DimVector DimMin(const DimVector& a, const DimVector& b) {
  ALADDIN_DCHECK(a.size() == b.size());
  DimVector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = std::min(a[i], b[i]);
  return out;
}

DimVector DimAdd(const DimVector& a, const DimVector& b) {
  ALADDIN_DCHECK(a.size() == b.size());
  DimVector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

DimVector DimSub(const DimVector& a, const DimVector& b) {
  ALADDIN_DCHECK(a.size() == b.size());
  DimVector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

bool DimPositive(const DimVector& v) {
  for (std::int64_t x : v) {
    if (x <= 0) return false;
  }
  return true;
}

MultiDimGraph::MultiDimGraph(std::size_t dimensions) : dims_(dimensions) {
  ALADDIN_DCHECK(dimensions >= 1);
}

VertexId MultiDimGraph::AddVertex() {
  adjacency_.emplace_back();
  return VertexId(static_cast<std::int32_t>(adjacency_.size() - 1));
}

ArcId MultiDimGraph::AddArc(VertexId tail, VertexId head, DimVector capacity) {
  ALADDIN_DCHECK(capacity.size() == dims_);
  const auto index = static_cast<std::int32_t>(arcs_.size());
  arcs_.push_back(MultiArc{head, std::move(capacity), DimVector(dims_, 0)});
  adjacency_[static_cast<std::size_t>(tail.value())].push_back(index);
  return ArcId(index);
}

DimVector MultiDimGraph::Residual(ArcId a) const {
  const MultiArc& x = arcs_[static_cast<std::size_t>(a.value())];
  return DimSub(x.capacity, x.flow);
}

DimVector MultiDimGraph::Augment(VertexId source, VertexId sink,
                                 const ArcPredicate& predicate) {
  const std::size_t n = vertex_count();
  // analyze:allow(A102) multi-dimensional extension, not the per-tick solver
  std::vector<std::int32_t> parent_arc(n, -1);
  std::vector<std::int32_t> parent_vertex(n, -1);  // analyze:allow(A102) extension, as above
  std::deque<VertexId> queue{source};  // analyze:allow(A102) extension, as above
  parent_vertex[static_cast<std::size_t>(source.value())] = source.value();

  bool found = false;
  while (!queue.empty() && !found) {
    const VertexId u = queue.front();
    queue.pop_front();
    for (std::int32_t raw : adjacency_[static_cast<std::size_t>(u.value())]) {
      const ArcId a{raw};
      if (!DimPositive(Residual(a))) continue;
      const VertexId v = arcs_[static_cast<std::size_t>(raw)].head;
      const auto vi = static_cast<std::size_t>(v.value());
      if (parent_vertex[vi] != -1) continue;
      if (predicate && !predicate(a, u, v)) continue;
      parent_vertex[vi] = u.value();
      parent_arc[vi] = raw;
      if (v == sink) {
        found = true;
        break;
      }
      queue.push_back(v);
    }
  }
  if (!found) return {};

  // Bottleneck = componentwise min of residuals along the path.
  DimVector bottleneck = Residual(
      ArcId(parent_arc[static_cast<std::size_t>(sink.value())]));
  for (VertexId v = sink; v != source;) {
    const auto vi = static_cast<std::size_t>(v.value());
    const ArcId a{parent_arc[vi]};
    bottleneck = DimMin(bottleneck, Residual(a));
    v = VertexId(parent_vertex[vi]);
  }
  for (VertexId v = sink; v != source;) {
    const auto vi = static_cast<std::size_t>(v.value());
    auto& arc = arcs_[static_cast<std::size_t>(parent_arc[vi])];
    arc.flow = DimAdd(arc.flow, bottleneck);
    v = VertexId(parent_vertex[vi]);
  }
  return bottleneck;
}

DimVector MultiDimGraph::MaxFlow(VertexId source, VertexId sink,
                                 const ArcPredicate& predicate) {
  DimVector total(dims_, 0);
  for (;;) {
    const DimVector pushed = Augment(source, sink, predicate);
    if (pushed.empty()) break;
    total = DimAdd(total, pushed);
  }
  return total;
}

}  // namespace aladdin::flow

// Reusable solver scratch memory.
//
// Every max-flow / shortest-path invocation used to allocate fresh level /
// parent / distance / queue buffers; at 10k machines that is megabytes of
// malloc traffic per tick. A Workspace owns all of those buffers long-term
// and hands them back to the solvers, so a steady-state solve performs zero
// heap allocations:
//
//  * Per-vertex arrays are *epoch-stamped* (StampedArray): instead of an
//    O(V) std::fill per run, a run bumps a 32-bit epoch and an entry is "at
//    its default" unless its stamp matches the current epoch. Resetting is
//    O(1); reads pay one extra comparison.
//  * The BFS/SPFA work-list is a fixed ring buffer (RingQueue) sized V —
//    both solvers mark vertices before enqueueing, so occupancy never
//    exceeds V and the ring never grows mid-run.
//  * Growth is deterministic (exact doubling to the needed size, never the
//    implementation-defined std::vector factor), so the `flow/ws_grow` /
//    `flow/ws_reuse` counters are bit-identical across runs and across
//    serial vs parallel execution.
//
// Threading: a Workspace is single-threaded state. Solvers take one
// explicitly, or default to ThreadLocalWorkspace() — one instance per
// thread, which is what makes parallel candidate scoring allocation-free
// and race-free at the same time.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"
#include "flow/graph.h"

namespace aladdin::flow {

// Epoch-stamped array. `Get(i)` observes `def` unless `Ref(i)`/`Set` stamped
// slot i in the current epoch; `NextEpoch()` resets every slot in O(1).
template <typename T>
class StampedArray {
 public:
  // Ensures capacity for n slots. Deterministic growth: exact doubling up to
  // the needed size. Returns true when an actual grow happened.
  bool Grow(std::size_t n) {
    if (n <= value_.size()) return false;
    std::size_t target = value_.empty() ? 1 : value_.size();
    while (target < n) target *= 2;
    value_.resize(target);
    stamp_.resize(target, 0);
    return true;
  }

  void NextEpoch() {
    if (++epoch_ == 0) {  // u32 wraparound (once per 4B runs): hard reset
      std::fill(stamp_.begin(), stamp_.end(), 0);
      epoch_ = 1;
    }
  }

  [[nodiscard]] bool Stamped(std::size_t i) const {
    return stamp_[i] == epoch_;
  }

  [[nodiscard]] T Get(std::size_t i, T def) const {
    return Stamped(i) ? value_[i] : def;
  }

  // Stamps slot i (initialising it to `def` if it was stale) and returns a
  // reference valid until the next Grow.
  [[nodiscard]] T& Ref(std::size_t i, T def) {
    if (stamp_[i] != epoch_) {
      stamp_[i] = epoch_;
      value_[i] = def;
    }
    return value_[i];
  }

  void Set(std::size_t i, T v) {
    stamp_[i] = epoch_;
    value_[i] = v;
  }

 private:
  std::vector<T> value_;
  std::vector<std::uint32_t> stamp_;
  std::uint32_t epoch_ = 1;  // stamps start at 0 == "never touched"
};

// Fixed-capacity circular work-list of vertex ids. Capacity must cover peak
// occupancy (V for the marking BFS/SPFA solvers); overflow is a DCHECK.
class RingQueue {
 public:
  // Ensures capacity for n queued vertices and empties the queue. Returns
  // true when the backing buffer actually grew.
  bool Reset(std::size_t n) {
    head_ = tail_ = size_ = 0;
    if (n + 1 <= buf_.size()) return false;
    std::size_t target = buf_.empty() ? 2 : buf_.size();
    while (target < n + 1) target *= 2;
    buf_.resize(target);
    return true;
  }

  // Empties the queue without touching capacity (per-phase reset).
  void Clear() { head_ = tail_ = size_ = 0; }

  [[nodiscard]] bool empty() const { return size_ == 0; }

  void PushBack(std::int32_t v) {
    ALADDIN_DCHECK(size_ + 1 < buf_.size()) << "RingQueue overflow";
    buf_[tail_] = v;
    tail_ = Next(tail_);
    ++size_;
  }

  // SLF heuristic support: promising vertices jump the queue.
  void PushFront(std::int32_t v) {
    ALADDIN_DCHECK(size_ + 1 < buf_.size()) << "RingQueue overflow";
    head_ = Prev(head_);
    buf_[head_] = v;
    ++size_;
  }

  [[nodiscard]] std::int32_t Front() const {
    ALADDIN_DCHECK(size_ > 0);
    return buf_[head_];
  }

  std::int32_t PopFront() {
    ALADDIN_DCHECK(size_ > 0);
    const std::int32_t v = buf_[head_];
    head_ = Next(head_);
    --size_;
    return v;
  }

 private:
  [[nodiscard]] std::size_t Next(std::size_t i) const {
    return i + 1 == buf_.size() ? 0 : i + 1;
  }
  [[nodiscard]] std::size_t Prev(std::size_t i) const {
    return (i == 0 ? buf_.size() : i) - 1;
  }
  std::vector<std::int32_t> buf_;
  std::size_t head_ = 0;
  std::size_t tail_ = 0;
  std::size_t size_ = 0;
};

// All the scratch a flow solver needs, reusable across runs. Members are
// public: this is an internal performance substrate shared by the solvers in
// this directory, not an abstraction boundary.
class Workspace {
 public:
  // Prepares for one solver run over `graph`: bumps every epoch, empties the
  // work-list, grows buffers if the graph outgrew them. Bumps flow/ws_grow
  // when any buffer grew, flow/ws_reuse otherwise — after warmup ws_grow
  // must stay flat (that is the zero-allocation steady-state witness).
  void BeginRun(const Graph& graph);

  // Per-phase O(1) reset for Dinic's level/iterator arrays (a run contains
  // many phases; dist/parent/visited keep their run-scoped epoch).
  void NextPhase() {
    level.NextEpoch();
    next_arc.NextEpoch();
  }

  StampedArray<Cost> dist;              // SPFA / Bellman-Ford / Dijkstra
  StampedArray<std::int32_t> parent;    // parent arc ids (-1 default)
  StampedArray<std::int32_t> level;     // Dinic level graph (-1 default)
  StampedArray<std::int32_t> next_arc;  // Dinic current-arc iterator
  StampedArray<std::uint8_t> visited;   // reachability / in-queue marks
  StampedArray<std::int64_t> dequeued;  // SPFA negative-cycle trip wire
  RingQueue queue;                      // BFS / SPFA work-list

  // Reusable dynamic buffers. Cleared (capacity kept) by their users;
  // steady-state growth is bounded by the graph, so after warmup these never
  // reallocate either.
  std::vector<std::pair<Cost, std::int32_t>> heap;  // Dijkstra binary heap
  std::vector<Cost> pi;                             // Dijkstra potentials
  std::vector<ArcId> path;                          // ExtractPathInto output
  std::vector<ArcId> back_arcs;                     // CancelArcFlow segments
  std::vector<ArcId> fwd_arcs;
};

// One lazily-constructed Workspace per thread — the default scratch for
// every solver overload that is not handed one explicitly.
Workspace& ThreadLocalWorkspace();

}  // namespace aladdin::flow

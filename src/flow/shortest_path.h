// Shortest paths on the residual graph, by arc cost.
//
// The paper's Algorithm 1 is built around SPFA (Shortest Path Faster
// Algorithm, a queue-driven Bellman–Ford) — reference [21] in the paper. We
// provide both the textbook Bellman–Ford (the oracle; also detects negative
// cycles) and SPFA (the fast path used inside min-cost flow and the Aladdin
// search). SPFA additionally has an allocation-free `SpfaInto` form that
// leaves its tree in a flow::Workspace — the form the min-cost-flow inner
// loop uses, since it runs one SPFA per augmentation.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "flow/graph.h"
#include "flow/workspace.h"

namespace aladdin::flow {

inline constexpr Cost kUnreachable = std::numeric_limits<Cost>::max() / 4;

struct ShortestPathTree {
  // dist[v] is the minimum cost from the source over arcs with residual
  // capacity, or kUnreachable.
  std::vector<Cost> dist;
  // parent_arc[v] is the arc id entering v on a shortest path (-1 at the
  // source / unreachable vertices).
  std::vector<std::int32_t> parent_arc;
  bool negative_cycle = false;
  std::int64_t relaxations = 0;  // instrumentation for the ablation bench
};

// Outcome of an Into-style run; distances/parents live in the workspace
// (ws.dist / ws.parent, epoch-stamped: unstamped == unreachable).
struct ShortestPathStats {
  bool negative_cycle = false;
  std::int64_t relaxations = 0;
};

// Textbook Bellman–Ford over residual arcs; O(V·E). Sets negative_cycle if
// one is reachable from the source.
ShortestPathTree BellmanFord(const Graph& graph, VertexId source);

// SPFA: Bellman–Ford with a deque work-list and the SLF (smallest label
// first) heuristic. Same output contract as BellmanFord for graphs without
// negative cycles reachable from the source. A relaxation-count trip wire
// (V·E bound) flags negative cycles. Allocation-free: results land in ws.
ShortestPathStats SpfaInto(const Graph& graph, VertexId source, Workspace& ws);

// Allocating wrapper over SpfaInto returning an owning tree (tests, oracle
// comparisons, call sites that keep the tree beyond the next solver run).
ShortestPathTree Spfa(const Graph& graph, VertexId source);

// Reconstructs the arc ids of the path source -> target from a tree
// (empty if target is unreachable). Path is returned source-first.
std::vector<ArcId> ExtractPath(const Graph& graph,
                               const ShortestPathTree& tree, VertexId source,
                               VertexId target);

// Same reconstruction from workspace state (after SpfaInto or the Dijkstra
// variant in min_cost_flow.cpp), written into ws.path. Allocation-free once
// ws.path has warmed to the longest path length.
void ExtractPathInto(const Graph& graph, VertexId source, VertexId target,
                     Workspace& ws);

}  // namespace aladdin::flow

#include "flow/shortest_path.h"

#include <algorithm>
#include <deque>

#include "common/check.h"

namespace aladdin::flow {

namespace {
std::size_t Idx(VertexId v) { return static_cast<std::size_t>(v.value()); }
}  // namespace

ShortestPathTree BellmanFord(const Graph& graph, VertexId source) {
  const std::size_t n = graph.vertex_count();
  ShortestPathTree tree;
  tree.dist.assign(n, kUnreachable);
  tree.parent_arc.assign(n, -1);
  tree.dist[Idx(source)] = 0;

  bool changed = true;
  for (std::size_t round = 0; round < n && changed; ++round) {
    changed = false;
    for (std::size_t u = 0; u < n; ++u) {
      if (tree.dist[u] >= kUnreachable) continue;
      for (std::int32_t raw :
           graph.OutArcs(VertexId(static_cast<std::int32_t>(u)))) {
        const ArcId a{raw};
        if (graph.Residual(a) <= 0) continue;
        const VertexId v = graph.arc(a).head;
        const Cost candidate = tree.dist[u] + graph.arc(a).cost;
        ++tree.relaxations;
        if (candidate < tree.dist[Idx(v)]) {
          tree.dist[Idx(v)] = candidate;
          tree.parent_arc[Idx(v)] = raw;
          changed = true;
          // A relaxation succeeding on the n-th round proves a reachable
          // negative cycle.
          if (round + 1 == n) tree.negative_cycle = true;
        }
      }
    }
  }
  return tree;
}

ShortestPathTree Spfa(const Graph& graph, VertexId source) {
  const std::size_t n = graph.vertex_count();
  ShortestPathTree tree;
  tree.dist.assign(n, kUnreachable);
  tree.parent_arc.assign(n, -1);
  tree.dist[Idx(source)] = 0;

  std::deque<VertexId> queue{source};
  std::vector<bool> in_queue(n, false);
  std::vector<std::int64_t> dequeued(n, 0);
  in_queue[Idx(source)] = true;

  const std::int64_t cycle_bound = static_cast<std::int64_t>(n) + 1;

  while (!queue.empty()) {
    const VertexId u = queue.front();
    queue.pop_front();
    in_queue[Idx(u)] = false;
    if (++dequeued[Idx(u)] >= cycle_bound) {
      // A vertex processed more than V times implies a negative cycle.
      tree.negative_cycle = true;
      break;
    }
    const Cost du = tree.dist[Idx(u)];
    for (std::int32_t raw : graph.OutArcs(u)) {
      const ArcId a{raw};
      if (graph.Residual(a) <= 0) continue;
      const VertexId v = graph.arc(a).head;
      const Cost candidate = du + graph.arc(a).cost;
      ++tree.relaxations;
      if (candidate < tree.dist[Idx(v)]) {
        tree.dist[Idx(v)] = candidate;
        tree.parent_arc[Idx(v)] = raw;
        if (!in_queue[Idx(v)]) {
          // SLF heuristic: promising vertices jump the queue.
          if (!queue.empty() &&
              candidate < tree.dist[Idx(queue.front())]) {
            queue.push_front(v);
          } else {
            queue.push_back(v);
          }
          in_queue[Idx(v)] = true;
        }
      }
    }
  }
  return tree;
}

std::vector<ArcId> ExtractPath(const Graph& graph,
                               const ShortestPathTree& tree, VertexId source,
                               VertexId target) {
  std::vector<ArcId> path;
  if (Idx(target) >= tree.dist.size() ||
      tree.dist[Idx(target)] >= kUnreachable) {
    return path;
  }
  for (VertexId v = target; v != source;) {
    const std::int32_t raw = tree.parent_arc[Idx(v)];
    ALADDIN_DCHECK(raw >= 0);
    const ArcId a{raw};
    path.push_back(a);
    v = graph.Tail(a);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace aladdin::flow

#include "flow/shortest_path.h"

#include <algorithm>

#include "common/analysis.h"
#include "common/check.h"

namespace aladdin::flow {

namespace {
std::size_t Idx(VertexId v) { return static_cast<std::size_t>(v.value()); }
}  // namespace

ShortestPathTree BellmanFord(const Graph& graph, VertexId source) {
  const std::size_t n = graph.vertex_count();
  ShortestPathTree tree;
  tree.dist.assign(n, kUnreachable);  // analyze:allow(A103) oracle: seeds potentials once per solve
  tree.parent_arc.assign(n, -1);      // analyze:allow(A103) oracle seeding, as above
  tree.dist[Idx(source)] = 0;

  bool changed = true;
  for (std::size_t round = 0; round < n && changed; ++round) {
    changed = false;
    for (std::size_t u = 0; u < n; ++u) {
      if (tree.dist[u] >= kUnreachable) continue;
      for (std::int32_t raw :
           graph.OutArcs(VertexId(static_cast<std::int32_t>(u)))) {
        const ArcId a{raw};
        if (graph.Residual(a) <= 0) continue;
        const VertexId v = graph.arc(a).head;
        const Cost candidate = tree.dist[u] + graph.arc(a).cost;
        ++tree.relaxations;
        if (candidate < tree.dist[Idx(v)]) {
          tree.dist[Idx(v)] = candidate;
          tree.parent_arc[Idx(v)] = raw;
          changed = true;
          // A relaxation succeeding on the n-th round proves a reachable
          // negative cycle.
          if (round + 1 == n) tree.negative_cycle = true;
        }
      }
    }
  }
  return tree;
}

ALADDIN_HOT ShortestPathStats SpfaInto(const Graph& graph, VertexId source,
                                       Workspace& ws) {
  const std::size_t n = graph.vertex_count();
  ShortestPathStats stats;
  ws.BeginRun(graph);
  ws.dist.Set(Idx(source), 0);

  ws.queue.Clear();
  ws.queue.PushBack(source.value());
  ws.visited.Set(Idx(source), 1);  // visited doubles as the in-queue mark

  const std::int64_t cycle_bound = static_cast<std::int64_t>(n) + 1;

  while (!ws.queue.empty()) {
    const VertexId u{ws.queue.PopFront()};
    ws.visited.Ref(Idx(u), 0) = 0;
    if (++ws.dequeued.Ref(Idx(u), 0) >= cycle_bound) {
      // A vertex processed more than V times implies a negative cycle.
      stats.negative_cycle = true;
      break;
    }
    const Cost du = ws.dist.Get(Idx(u), kUnreachable);
    for (std::int32_t raw : graph.OutArcs(u)) {
      const ArcId a{raw};
      if (graph.Residual(a) <= 0) continue;
      const VertexId v = graph.arc(a).head;
      const Cost candidate = du + graph.arc(a).cost;
      ++stats.relaxations;
      if (candidate < ws.dist.Get(Idx(v), kUnreachable)) {
        ws.dist.Set(Idx(v), candidate);
        ws.parent.Set(Idx(v), raw);
        if (ws.visited.Get(Idx(v), 0) == 0) {
          // SLF heuristic: promising vertices jump the queue.
          if (!ws.queue.empty() &&
              candidate <
                  ws.dist.Get(static_cast<std::size_t>(ws.queue.Front()),
                              kUnreachable)) {
            ws.queue.PushFront(v.value());
          } else {
            ws.queue.PushBack(v.value());
          }
          ws.visited.Set(Idx(v), 1);
        }
      }
    }
  }
  return stats;
}

ShortestPathTree Spfa(const Graph& graph, VertexId source) {
  Workspace& ws = ThreadLocalWorkspace();
  const ShortestPathStats stats = SpfaInto(graph, source, ws);
  const std::size_t n = graph.vertex_count();
  ShortestPathTree tree;
  tree.negative_cycle = stats.negative_cycle;
  tree.relaxations = stats.relaxations;
  tree.dist.resize(n);        // owning-tree wrapper
  tree.parent_arc.resize(n);  // owning-tree wrapper
  for (std::size_t v = 0; v < n; ++v) {
    tree.dist[v] = ws.dist.Get(v, kUnreachable);
    tree.parent_arc[v] = ws.parent.Get(v, -1);
  }
  return tree;
}

std::vector<ArcId> ExtractPath(const Graph& graph,
                               const ShortestPathTree& tree, VertexId source,
                               VertexId target) {
  std::vector<ArcId> path;  // owning-tree wrapper
  if (Idx(target) >= tree.dist.size() ||
      tree.dist[Idx(target)] >= kUnreachable) {
    return path;
  }
  for (VertexId v = target; v != source;) {
    const std::int32_t raw = tree.parent_arc[Idx(v)];
    ALADDIN_DCHECK(raw >= 0);
    const ArcId a{raw};
    path.push_back(a);
    v = graph.Tail(a);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

ALADDIN_HOT void ExtractPathInto(const Graph& graph, VertexId source,
                                 VertexId target, Workspace& ws) {
  ws.path.clear();
  if (Idx(target) >= graph.vertex_count() || !ws.dist.Stamped(Idx(target))) {
    return;
  }
  for (VertexId v = target; v != source;) {
    const std::int32_t raw = ws.parent.Get(Idx(v), -1);
    ALADDIN_DCHECK(raw >= 0);
    const ArcId a{raw};
    ws.path.push_back(a);
    v = graph.Tail(a);
  }
  std::reverse(ws.path.begin(), ws.path.end());
}

}  // namespace aladdin::flow

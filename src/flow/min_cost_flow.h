// Minimum-cost maximum-flow via successive shortest augmenting paths.
//
// This is the solver the Firmament baseline runs each scheduling round: the
// scheduling graph's arc costs encode the active cost model (TRIVIAL /
// QUINCY / OCTOPUS) and the resulting min-cost flow is decoded back into
// container -> machine placements. Two pathfinders are available:
//
//   * kSpfa (default) — queue-driven Bellman–Ford per augmentation; handles
//     negative arc costs directly and matches the paper's reference [21].
//   * kDijkstra — Johnson-style reduced costs: one Bellman–Ford pass seeds
//     the vertex potentials, then every augmentation runs binary-heap
//     Dijkstra over costs c(u,v) + pi(u) - pi(v) >= 0. Asymptotically
//     O(F · E log V) instead of SPFA's O(F · V · E) worst case.
//
// Both produce a min-cost max-flow; the flow value and total cost are always
// identical (the flow decomposition itself may differ when ties exist).
#pragma once

#include "flow/graph.h"
#include "flow/shortest_path.h"

namespace aladdin::flow {

struct MinCostFlowOptions {
  enum class Pathfinder {  // analyze:closed_enum
    kSpfa,      // SPFA every augmentation (repo default; no potentials)
    kDijkstra,  // Bellman–Ford once, then Dijkstra with potentials
  };
  Pathfinder pathfinder = Pathfinder::kSpfa;
};

struct MinCostFlowResult {
  Capacity flow = 0;
  Cost cost = 0;
  std::int64_t iterations = 0;   // augmenting paths found
  bool negative_cycle = false;   // input had a reachable negative cycle
};

// Computes a maximum flow of minimum cost from source to sink, mutating the
// graph's flows. `flow_limit` caps the amount routed (default: unlimited).
// The Workspace overload is allocation-free in steady state (one SPFA /
// Dijkstra per augmentation, all scratch reused); the other one borrows the
// per-thread default workspace.
MinCostFlowResult MinCostMaxFlow(Graph& graph, VertexId source, VertexId sink,
                                 Capacity flow_limit, MinCostFlowOptions options,
                                 Workspace& ws);
MinCostFlowResult MinCostMaxFlow(Graph& graph, VertexId source, VertexId sink,
                                 Capacity flow_limit = kInfiniteCapacity,
                                 MinCostFlowOptions options = {});

}  // namespace aladdin::flow

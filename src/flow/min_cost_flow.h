// Minimum-cost maximum-flow via successive shortest augmenting paths.
//
// This is the solver the Firmament baseline runs each scheduling round: the
// scheduling graph's arc costs encode the active cost model (TRIVIAL /
// QUINCY / OCTOPUS) and the resulting min-cost flow is decoded back into
// container -> machine placements. Shortest paths come from SPFA so negative
// arc costs (common in scheduling cost models) are handled without a
// potential-initialisation pass.
#pragma once

#include "flow/graph.h"
#include "flow/shortest_path.h"

namespace aladdin::flow {

struct MinCostFlowResult {
  Capacity flow = 0;
  Cost cost = 0;
  std::int64_t iterations = 0;   // augmenting paths found
  bool negative_cycle = false;   // input had a reachable negative cycle
};

// Computes a maximum flow of minimum cost from source to sink, mutating the
// graph's flows. `flow_limit` caps the amount routed (default: unlimited).
MinCostFlowResult MinCostMaxFlow(Graph& graph, VertexId source, VertexId sink,
                                 Capacity flow_limit = kInfiniteCapacity);

}  // namespace aladdin::flow

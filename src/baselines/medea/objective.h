// Medea's weighted objective (Garefalakis et al., EuroSys'18; §V.A–B here).
//
// Medea places long-running applications by an ILP that balances deployed
// containers, resource fragmentation and (soft) constraint violations via
// an operator-chosen tuple weights(a, b, c):
//   a — weight on deploying containers (leaving one unplaced costs a);
//   b — weight on avoiding fragmentation (opening a fresh machine costs b);
//   c — violation *tolerance*: with c = 0 "Medea cannot tolerate violated
//       constraints" (§V.B) — violations are forbidden outright; larger c
//       makes violating a constraint progressively cheaper than opening
//       another machine, which is how Medea trades violations for packing.
// The paper sweeps (1,1,1), (1,1,0.5), (1,1,0), (1,0.5,0.5).
//
// Our solver is greedy construction + bounded local search over the same
// objective — the paper itself calls Medea's ILP "essentially an
// approximation algorithm" (§V.C), and the weights drive identical
// trade-offs here.
#pragma once

#include <cstdint>
#include <string>

#include "cluster/state.h"

namespace aladdin::baselines {

struct MedeaWeights {
  double a = 1.0;  // deployment weight (unplaced penalty scale)
  double b = 1.0;  // fragmentation weight (new-machine penalty scale)
  double c = 0.0;  // violation tolerance (0 = hard constraints)

  [[nodiscard]] std::string ToString() const;
};

// Calibration of the three weight axes onto one cost scale:
//  * unplaced container:            a · kUnplacedScale (always the worst)
//  * opening a fresh machine:       b · kMachineOpenScale
//  * violating against one tenant:  ∞ when c ≤ 0; 1.25 − c for partial
//    tolerance; ~0 (0.05) at full tolerance c ≥ 1.
// With c = 1 a violation undercuts a machine-open: Medea packs and
// violates. With c = 0.5 it is the other way round. With c = 0 violations
// are forbidden. Exactly the §V.B spectrum.
inline constexpr double kUnplacedScale = 2.0;
inline constexpr double kMachineOpenScale = 0.5;
inline constexpr double kViolationForbidden = 1e18;

double ViolationUnitCost(const MedeaWeights& weights);

// Number of already-deployed containers on `m` that conflict with `c`'s
// application (each is one violation if we place here).
std::size_t ViolationsIfPlaced(const cluster::ClusterState& state,
                               cluster::ContainerId c, cluster::MachineId m);

// Incremental objective cost of placing c on m (resource fit is a
// precondition, not priced). Lower is better.
double PlacementCost(const cluster::ClusterState& state,
                     cluster::ContainerId c, cluster::MachineId m,
                     const MedeaWeights& weights);

// Cost of leaving c unplaced.
inline double UnplacedCost(const MedeaWeights& weights) {
  return weights.a * kUnplacedScale;
}

// Full-solution objective, consistent with summing the incremental costs of
// a construction sequence. Used by the local-search acceptance test and by
// tests as the oracle for the incremental deltas.
double SolutionObjective(const cluster::ClusterState& state,
                         std::size_t unplaced_count,
                         const MedeaWeights& weights);

}  // namespace aladdin::baselines

// Bounded local search refining a Medea solution (the ILP-approximation
// stage). Move types:
//  * place   — try to deploy an unplaced container where the incremental
//              cost beats the unplaced weight a;
//  * relocate — move a placed container to a machine with lower incremental
//              cost (fixing violations, consolidating machines).
// Deterministic per seed; stops on iteration or wall-clock budget.
#pragma once

#include <cstdint>
#include <vector>

#include "baselines/medea/objective.h"
#include "cluster/free_index.h"

namespace aladdin::baselines {

struct LocalSearchOptions {
  std::int64_t max_iterations = 20000;
  double time_budget_seconds = 2.0;
  // Candidate machines examined per move.
  int candidate_scan = 48;
  std::uint64_t seed = 11;
};

struct LocalSearchStats {
  std::int64_t iterations = 0;
  std::int64_t placements = 0;
  std::int64_t relocations = 0;
};

// Mutates `state` and `unplaced` in place; `index` must be attached to
// `state` and is kept in sync.
LocalSearchStats ImprovePlacements(cluster::ClusterState& state,
                                   cluster::FreeIndex& index,
                                   std::vector<cluster::ContainerId>& unplaced,
                                   const MedeaWeights& weights,
                                   const LocalSearchOptions& options);

}  // namespace aladdin::baselines

#include "baselines/medea/local_search.h"

#include <algorithm>

#include "common/rng.h"
#include "common/timer.h"

namespace aladdin::baselines {

namespace {

template <typename T>
std::size_t Idx(T id) {
  return static_cast<std::size_t>(id.value());
}

// Incremental cost container `c` currently contributes at its placement:
// its violating pairs plus the machine-open share if it is the only tenant.
double CurrentCost(const cluster::ClusterState& state, cluster::ContainerId c,
                   const MedeaWeights& weights) {
  const cluster::MachineId m = state.PlacementOf(c);
  const auto app = state.containers()[Idx(c)].app;
  double cost = 0.0;
  const double violation_unit = ViolationUnitCost(weights);
  for (cluster::ContainerId other : state.DeployedOn(m)) {
    if (other == c) continue;
    const auto other_app = state.containers()[Idx(other)].app;
    if (state.constraints().Conflicts(app, other_app)) cost += violation_unit;
  }
  if (state.DeployedOn(m).size() == 1) {
    cost += weights.b * kMachineOpenScale;  // moving away closes the machine
  }
  return cost;
}

// Best candidate machine for c by incremental cost, scanning the tightest
// fits first. Returns Invalid if nothing fits within the scan budget.
cluster::MachineId BestCandidate(const cluster::ClusterState& state,
                                 const cluster::FreeIndex& index,
                                 cluster::ContainerId c,
                                 const MedeaWeights& weights, int budget,
                                 cluster::MachineId exclude,
                                 double& best_cost_out) {
  const auto& request = state.containers()[Idx(c)].request;
  cluster::MachineId best = cluster::MachineId::Invalid();
  double best_cost = 0.0;
  index.ScanAscending(request.cpu_millis(), [&](cluster::MachineId m) {
    if (budget-- <= 0) return true;
    if (m == exclude) return false;
    if (!request.FitsIn(state.Free(m))) return false;
    const double cost = PlacementCost(state, c, m, weights);
    if (!best.valid() || cost < best_cost) {
      best = m;
      best_cost = cost;
      if (cost == 0.0) return true;  // cannot improve on free placement
    }
    return false;
  });
  best_cost_out = best_cost;
  return best;
}

}  // namespace

LocalSearchStats ImprovePlacements(cluster::ClusterState& state,
                                   cluster::FreeIndex& index,
                                   std::vector<cluster::ContainerId>& unplaced,
                                   const MedeaWeights& weights,
                                   const LocalSearchOptions& options) {
  LocalSearchStats stats;
  Rng rng(options.seed);
  WallTimer timer;

  std::vector<cluster::ContainerId> placed;
  placed.reserve(state.placed_count());
  for (const auto& c : state.containers()) {
    if (state.IsPlaced(c.id)) placed.push_back(c.id);
  }

  while (stats.iterations < options.max_iterations &&
         timer.ElapsedSeconds() < options.time_budget_seconds) {
    ++stats.iterations;
    // Alternate: placing strands is worth more than shuffling placements.
    const bool try_place = !unplaced.empty() && (stats.iterations % 2 == 0 ||
                                                 placed.empty());
    if (try_place) {
      const std::size_t pick = static_cast<std::size_t>(rng.UniformInt(
          0, static_cast<std::int64_t>(unplaced.size()) - 1));
      const cluster::ContainerId c = unplaced[pick];
      double cost = 0.0;
      const cluster::MachineId m =
          BestCandidate(state, index, c, weights, options.candidate_scan,
                        cluster::MachineId::Invalid(), cost);
      if (m.valid() && cost < UnplacedCost(weights)) {
        state.Deploy(c, m);
        index.OnChanged(m);
        unplaced.erase(unplaced.begin() +
                       static_cast<std::ptrdiff_t>(pick));
        placed.push_back(c);
        ++stats.placements;
      }
    } else if (!placed.empty()) {
      const std::size_t pick = static_cast<std::size_t>(rng.UniformInt(
          0, static_cast<std::int64_t>(placed.size()) - 1));
      const cluster::ContainerId c = placed[pick];
      const double current = CurrentCost(state, c, weights);
      if (current == 0.0) continue;  // already free of cost
      const cluster::MachineId from = state.PlacementOf(c);
      double cost = 0.0;
      const cluster::MachineId to = BestCandidate(
          state, index, c, weights, options.candidate_scan, from, cost);
      if (to.valid() && cost < current) {
        state.Migrate(c, to);
        index.OnChanged(from);
        index.OnChanged(to);
        ++stats.relocations;
      }
    } else {
      break;
    }
  }
  return stats;
}

}  // namespace aladdin::baselines

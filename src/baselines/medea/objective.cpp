#include "baselines/medea/objective.h"

#include <sstream>

namespace aladdin::baselines {

std::string MedeaWeights::ToString() const {
  std::ostringstream os;
  os << "(" << a << "," << b << "," << c << ")";
  return os.str();
}

double ViolationUnitCost(const MedeaWeights& weights) {
  if (weights.c <= 0.0) return kViolationForbidden;
  // Full tolerance (c = 1) makes a violation almost free — cheaper than any
  // alternative except a clean already-open machine — so Medea packs hard
  // and accumulates violations (the paper's 12.9 % case). Partial tolerance
  // prices a violation above opening a machine but below stranding.
  if (weights.c >= 1.0) return 0.05;
  return 1.25 - weights.c;
}

std::size_t ViolationsIfPlaced(const cluster::ClusterState& state,
                               cluster::ContainerId c, cluster::MachineId m) {
  const auto app =
      state.containers()[static_cast<std::size_t>(c.value())].app;
  std::size_t violations = 0;
  for (const auto& [other_raw, count] : state.AppsOn(m)) {
    if (state.constraints().Conflicts(app,
                                      cluster::ApplicationId(other_raw))) {
      violations += static_cast<std::size_t>(count);
    }
  }
  return violations;
}

double PlacementCost(const cluster::ClusterState& state,
                     cluster::ContainerId c, cluster::MachineId m,
                     const MedeaWeights& weights) {
  double cost = ViolationUnitCost(weights) *
                static_cast<double>(ViolationsIfPlaced(state, c, m));
  if (state.DeployedOn(m).empty()) {
    cost += weights.b * kMachineOpenScale;  // opens a machine
  }
  return cost;
}

double SolutionObjective(const cluster::ClusterState& state,
                         std::size_t unplaced_count,
                         const MedeaWeights& weights) {
  // Violations counted as conflicting co-located pairs, matching the sum of
  // the incremental PlacementCost terms over a construction sequence.
  std::size_t pair_violations = 0;
  const auto& containers = state.containers();
  const auto& constraints = state.constraints();
  for (std::size_t mi = 0; mi < state.topology().machine_count(); ++mi) {
    const auto tenants =
        state.DeployedOn(cluster::MachineId(static_cast<std::int32_t>(mi)));
    for (std::size_t i = 0; i < tenants.size(); ++i) {
      for (std::size_t j = i + 1; j < tenants.size(); ++j) {
        const auto app_i =
            containers[static_cast<std::size_t>(tenants[i].value())].app;
        const auto app_j =
            containers[static_cast<std::size_t>(tenants[j].value())].app;
        if (constraints.Conflicts(app_i, app_j)) ++pair_violations;
      }
    }
  }
  return UnplacedCost(weights) * static_cast<double>(unplaced_count) +
         ViolationUnitCost(weights) * static_cast<double>(pair_violations) +
         weights.b * kMachineOpenScale *
             static_cast<double>(state.UsedMachineCount());
}

}  // namespace aladdin::baselines

// Medea baseline: weighted-objective optimisation for LLA placement
// (Garefalakis et al., EuroSys'18). Greedy global construction over the
// weighted objective, refined by bounded local search — see objective.h for
// why this stands in for the ILP.
#pragma once

#include <string>

#include "baselines/medea/local_search.h"
#include "baselines/medea/objective.h"
#include "sim/scheduler.h"

namespace aladdin::baselines {

struct MedeaOptions {
  MedeaWeights weights{1.0, 1.0, 0.0};
  // Machines examined per container during construction.
  int candidate_scan = 64;
  bool run_local_search = true;
  LocalSearchOptions local_search;
};

class MedeaScheduler : public sim::Scheduler {
 public:
  explicit MedeaScheduler(MedeaOptions options = {});

  [[nodiscard]] std::string name() const override;

  sim::ScheduleOutcome Schedule(const sim::ScheduleRequest& request,
                                cluster::ClusterState& state) override;

 private:
  MedeaOptions options_;
};

}  // namespace aladdin::baselines

#include "baselines/medea/scheduler.h"

#include <algorithm>

#include "cluster/free_index.h"
#include "obs/journal.h"

namespace aladdin::baselines {

namespace {
template <typename T>
std::size_t Idx(T id) {
  return static_cast<std::size_t>(id.value());
}
}  // namespace

MedeaScheduler::MedeaScheduler(MedeaOptions options)
    : options_(std::move(options)) {}

std::string MedeaScheduler::name() const {
  return "Medea" + options_.weights.ToString();
}

sim::ScheduleOutcome MedeaScheduler::Schedule(
    const sim::ScheduleRequest& request, cluster::ClusterState& state) {
  sim::ScheduleOutcome outcome;
  cluster::FreeIndex index;
  index.Attach(state);

  // ILP-style global view: Medea batches the LLA queue and optimises it as a
  // whole, so construction order is an internal choice — hardest first
  // (largest request, then most constrained), independent of arrival order.
  std::vector<cluster::ContainerId> order = *request.arrival;
  const auto& apps = state.applications();
  std::sort(order.begin(), order.end(),
            [&](cluster::ContainerId a, cluster::ContainerId b) {
              const auto& ca = state.containers()[Idx(a)];
              const auto& cb = state.containers()[Idx(b)];
              if (ca.request.cpu_millis() != cb.request.cpu_millis()) {
                return ca.request.cpu_millis() > cb.request.cpu_millis();
              }
              const auto ka = state.constraints().ConflictingContainerCount(
                  ca.app, apps);
              const auto kb = state.constraints().ConflictingContainerCount(
                  cb.app, apps);
              if (ka != kb) return ka > kb;
              return a < b;
            });

  std::vector<cluster::ContainerId> unplaced;
  for (cluster::ContainerId c : order) {
    const auto& request_vec = state.containers()[Idx(c)].request;
    cluster::MachineId best = cluster::MachineId::Invalid();
    double best_cost = 0.0;
    int budget = options_.candidate_scan;
    index.ScanAscending(request_vec.cpu_millis(), [&](cluster::MachineId m) {
      if (budget-- <= 0) return true;
      ++outcome.explored_paths;
      if (!request_vec.FitsIn(state.Free(m))) return false;
      const double cost = PlacementCost(state, c, m, options_.weights);
      if (!best.valid() || cost < best_cost) {
        best = m;
        best_cost = cost;
        if (cost == 0.0) return true;  // tightest zero-cost fit: done
      }
      return false;
    });
    if (!best.valid() || best_cost >= UnplacedCost(options_.weights)) {
      // Rescue pass: the ILP sees the whole cluster, so before stranding a
      // container, walk the full index for the first machine whose cost
      // beats leaving it unplaced (the bounded scan may have burnt its
      // budget on blacklisted machines).
      index.ScanAscending(request_vec.cpu_millis(), [&](cluster::MachineId m) {
        ++outcome.explored_paths;
        if (!request_vec.FitsIn(state.Free(m))) return false;
        const double cost = PlacementCost(state, c, m, options_.weights);
        if (cost >= UnplacedCost(options_.weights)) return false;
        best = m;
        best_cost = cost;
        return true;
      });
    }
    if (best.valid() && best_cost < UnplacedCost(options_.weights)) {
      state.Deploy(c, best);
      index.OnChanged(best);
    } else {
      unplaced.push_back(c);
    }
  }
  outcome.rounds = 1;

  if (options_.run_local_search) {
    ImprovePlacements(state, index, unplaced, options_.weights,
                      options_.local_search);
    ++outcome.rounds;
  }

  outcome.unplaced = std::move(unplaced);
  outcome.unplaced_causes.assign(outcome.unplaced.size(),
                                 obs::Cause::kBaselineUnplaced);
  if (obs::JournalEnabled()) {
    for (cluster::ContainerId c : outcome.unplaced) {
      obs::EmitDecision(obs::DecisionKind::kUnplaced,
                        obs::Cause::kBaselineUnplaced, c.value());
    }
  }
  return outcome;
}

}  // namespace aladdin::baselines

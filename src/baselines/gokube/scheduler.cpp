#include "baselines/gokube/scheduler.h"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "baselines/gokube/scoring.h"
#include "obs/journal.h"

namespace aladdin::baselines {

namespace {
template <typename T>
std::size_t Idx(T id) {
  return static_cast<std::size_t>(id.value());
}
}  // namespace

GoKubeScheduler::GoKubeScheduler(GoKubeOptions options) : options_(options) {}

cluster::MachineId GoKubeScheduler::PickNode(
    const cluster::ClusterState& state, cluster::ContainerId c,
    std::int64_t* explored) const {
  const auto& request = state.containers()[Idx(c)].request;
  cluster::MachineId best = cluster::MachineId::Invalid();
  double best_score = 0.0;
  int budget = options_.nodes_to_score;
  // Sample from the emptiest nodes down — LeastRequested would rank those
  // highest anyway, so the bounded sample sees the max-score region first.
  index_.ScanDescending([&](cluster::MachineId m) {
    if (budget-- <= 0) return true;
    ++*explored;
    if (!request.FitsIn(state.Free(m))) return false;
    if (state.Blacklisted(c, m)) return false;  // hard anti-affinity filter
    const double score = GoKubeScore(state, c, m);
    if (!best.valid() || score > best_score) {
      best = m;
      best_score = score;
    }
    return false;
  });
  return best;
}

bool GoKubeScheduler::TryPreempt(cluster::ClusterState& state,
                                 cluster::ContainerId c,
                                 std::vector<cluster::ContainerId>& requeue,
                                 std::int64_t* explored) {
  const auto& cont = state.containers()[Idx(c)];
  if (cont.priority <= cluster::kLowestPriority) return false;

  // Go-Kube handles priority and anti-affinity *separately* (§V.B): the
  // preemption pass is resource-driven only. It considers machines that
  // already pass the pending container's anti-affinity filter and evicts
  // strictly-lower-priority tenants to free resources — it never evicts a
  // tenant to clear a blacklist. A container blocked by anti-affinity on
  // every machine therefore stays pending, which is exactly the
  // no-global-optimisation failure mode the paper attributes to Go-Kube.
  int budget = options_.preemption_candidates;
  cluster::MachineId target = cluster::MachineId::Invalid();
  std::vector<cluster::ContainerId> plan;
  index_.ScanDescending([&](cluster::MachineId m) {
    if (budget-- <= 0) return true;
    ++*explored;
    if (state.Blacklisted(c, m)) return false;  // hard filter stays hard
    // Victims: strictly lower-priority tenants, cheapest first.
    std::vector<cluster::ContainerId> lower;
    for (cluster::ContainerId v : state.DeployedOn(m)) {
      const auto& vc = state.containers()[Idx(v)];
      if (vc.priority < cont.priority) lower.push_back(v);
    }
    std::sort(lower.begin(), lower.end(),
              [&](cluster::ContainerId x, cluster::ContainerId y) {
                const auto& cx = state.containers()[Idx(x)];
                const auto& cy = state.containers()[Idx(y)];
                if (cx.priority != cy.priority) {
                  return cx.priority < cy.priority;
                }
                return cx.request.cpu_millis() < cy.request.cpu_millis();
              });
    cluster::ResourceVector available = state.Free(m);
    std::vector<cluster::ContainerId> victims;
    for (cluster::ContainerId v : lower) {
      if (cont.request.FitsIn(available)) break;
      victims.push_back(v);
      available += state.containers()[Idx(v)].request;
    }
    if (!cont.request.FitsIn(available)) return false;
    target = m;
    plan = std::move(victims);
    return true;
  });

  if (!target.valid()) return false;
  for (cluster::ContainerId v : plan) {
    state.Preempt(v);
    requeue.push_back(v);
  }
  index_.OnChanged(target);
  state.Deploy(c, target);
  index_.OnChanged(target);
  return true;
}

sim::ScheduleOutcome GoKubeScheduler::Schedule(
    const sim::ScheduleRequest& request, cluster::ClusterState& state) {
  sim::ScheduleOutcome outcome;
  index_.Attach(state);

  std::deque<cluster::ContainerId> queue(request.arrival->begin(),
                                         request.arrival->end());
  std::unordered_map<std::int32_t, int> requeues;
  std::vector<cluster::ContainerId> unplaced;
  // Equivalence cache: applications with a cached unschedulable verdict.
  std::vector<bool> app_unschedulable(state.applications().size(), false);

  while (!queue.empty()) {
    const cluster::ContainerId c = queue.front();
    queue.pop_front();
    const auto app = state.containers()[Idx(c)].app;
    if (options_.equivalence_cache &&
        app_unschedulable[static_cast<std::size_t>(app.value())]) {
      unplaced.push_back(c);  // cached predicate verdict, no re-filter
      continue;
    }

    const cluster::MachineId node =
        PickNode(state, c, &outcome.explored_paths);
    if (node.valid()) {
      state.Deploy(c, node);
      index_.OnChanged(node);
      continue;
    }
    std::vector<cluster::ContainerId> victims;
    if (options_.enable_preemption &&
        TryPreempt(state, c, victims, &outcome.explored_paths)) {
      for (cluster::ContainerId v : victims) {
        if (requeues[v.value()]++ < options_.victim_requeues) {
          queue.push_back(v);
        } else {
          unplaced.push_back(v);
        }
      }
      continue;
    }
    if (options_.equivalence_cache) {
      app_unschedulable[static_cast<std::size_t>(app.value())] = true;
    }
    unplaced.push_back(c);
  }

  outcome.rounds = 1;
  outcome.unplaced = std::move(unplaced);
  outcome.unplaced_causes.assign(outcome.unplaced.size(),
                                 obs::Cause::kBaselineUnplaced);
  if (obs::JournalEnabled()) {
    for (cluster::ContainerId c : outcome.unplaced) {
      obs::EmitDecision(obs::DecisionKind::kUnplaced,
                        obs::Cause::kBaselineUnplaced, c.value());
    }
  }
  return outcome;
}

}  // namespace aladdin::baselines

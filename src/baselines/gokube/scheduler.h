// Go-Kube baseline: Kubernetes-1.11-style queue scheduler (§V.A, Table I).
//
// One container at a time, strictly in arrival order:
//   1. Filter — machines where the request fits AND the (hard) anti-affinity
//      blacklist admits the container. Kubernetes treats
//      requiredDuringScheduling anti-affinity as a filter.
//   2. Score — GoKubeScore over a bounded node sample (k8s samples nodes on
//      large clusters via percentageOfNodesToScore); highest score wins.
//   3. Preemption — if nothing passes the filter and the container outranks
//      others, evict the lowest-priority victims on some machine to make
//      room (victims are re-queued once, then lost).
// Anti-affinity and priority are honoured *separately* — there is no global
// optimisation across both, which is the paper's explanation for Go-Kube's
// 21.2 % undeployed (§V.B) and its arrival-order sensitivity (Fig. 10).
#pragma once

#include <cstdint>
#include <string>

#include "cluster/free_index.h"
#include "sim/scheduler.h"

namespace aladdin::baselines {

struct GoKubeOptions {
  // Nodes scored per container (the k8s sampling knob).
  int nodes_to_score = 256;
  bool enable_preemption = true;
  // A preempted victim is re-queued this many times before being dropped.
  int victim_requeues = 1;
  // Machines examined when looking for a preemption target.
  int preemption_candidates = 64;
  // Kubernetes-1.11 equivalence cache: predicate results are cached per
  // owning controller, so once one replica of an application fails to
  // schedule, its remaining replicas reuse the cached "unschedulable"
  // verdict instead of re-filtering the cluster. The cache was known to go
  // stale (it was removed in later releases for exactly that reason); we
  // model the stale behaviour — no invalidation within the batch — which is
  // a large part of why a queue scheduler strands whole applications while
  // a flow scheduler places them.
  bool equivalence_cache = true;
};

class GoKubeScheduler : public sim::Scheduler {
 public:
  explicit GoKubeScheduler(GoKubeOptions options = {});

  [[nodiscard]] std::string name() const override { return "Go-Kube"; }

  sim::ScheduleOutcome Schedule(const sim::ScheduleRequest& request,
                                cluster::ClusterState& state) override;

 private:
  // Filter + score; Invalid if no feasible node in the sample.
  cluster::MachineId PickNode(const cluster::ClusterState& state,
                              cluster::ContainerId c,
                              std::int64_t* explored) const;

  // k8s-style preemption: returns true if room was made and `c` deployed;
  // victims appended to `requeue`.
  bool TryPreempt(cluster::ClusterState& state, cluster::ContainerId c,
                  std::vector<cluster::ContainerId>& requeue,
                  std::int64_t* explored);

  GoKubeOptions options_;
  cluster::FreeIndex index_;
};

}  // namespace aladdin::baselines

#include "baselines/gokube/scoring.h"

#include <cmath>

namespace aladdin::baselines {

double LeastRequestedScore(const cluster::ResourceVector& free_after,
                           const cluster::ResourceVector& capacity) {
  // k8s: sum over resources of (free / capacity) * 10, averaged.
  double total = 0.0;
  int dims = 0;
  for (std::size_t i = 0; i < cluster::kResourceDims; ++i) {
    if (capacity.dim(i) <= 0) continue;
    total += 10.0 * static_cast<double>(free_after.dim(i)) /
             static_cast<double>(capacity.dim(i));
    ++dims;
  }
  return dims > 0 ? total / dims : 0.0;
}

double BalancedAllocationScore(const cluster::ResourceVector& used_after,
                               const cluster::ResourceVector& capacity) {
  // k8s: 10 - |cpu_fraction - mem_fraction| * 10. With a single active
  // dimension (CPU-only mode) the variance is zero and the score is 10.
  double fractions[cluster::kResourceDims];
  int dims = 0;
  for (std::size_t i = 0; i < cluster::kResourceDims; ++i) {
    if (capacity.dim(i) <= 0) continue;
    fractions[dims++] = static_cast<double>(used_after.dim(i)) /
                        static_cast<double>(capacity.dim(i));
  }
  if (dims < 2) return 10.0;
  double lo = fractions[0];
  double hi = fractions[0];
  for (int i = 1; i < dims; ++i) {
    lo = std::min(lo, fractions[i]);
    hi = std::max(hi, fractions[i]);
  }
  return 10.0 - (hi - lo) * 10.0;
}

double GoKubeScore(const cluster::ClusterState& state, cluster::ContainerId c,
                   cluster::MachineId m) {
  const auto& request =
      state.containers()[static_cast<std::size_t>(c.value())].request;
  const auto& capacity = state.topology().machine(m).capacity;
  const cluster::ResourceVector free_after = state.Free(m) - request;
  const cluster::ResourceVector used_after = capacity - free_after;
  return LeastRequestedScore(free_after, capacity) +
         BalancedAllocationScore(used_after, capacity);
}

}  // namespace aladdin::baselines

// Go-Kube node scoring — "a similar node scoring algorithm [to] Kubernetes
// 1.11" (§V.A): the default priority functions of that release,
// LeastRequestedPriority and BalancedResourceAllocation, each mapping to
// [0, 10], summed. LeastRequested *spreads* load (emptier machines score
// higher) — the root cause of Go-Kube's machine bloat in Fig. 10.
#pragma once

#include "cluster/state.h"

namespace aladdin::baselines {

// Score of placing container c on machine m; higher is better. Assumes the
// request fits (callers filter first).
double GoKubeScore(const cluster::ClusterState& state, cluster::ContainerId c,
                   cluster::MachineId m);

// The two k8s-1.11 priority functions, exposed for tests.
double LeastRequestedScore(const cluster::ResourceVector& free_after,
                           const cluster::ResourceVector& capacity);
double BalancedAllocationScore(const cluster::ResourceVector& used_after,
                               const cluster::ResourceVector& capacity);

}  // namespace aladdin::baselines

#include "baselines/firmament/scheduler.h"

#include <algorithm>
#include <limits>
#include <map>
#include <unordered_map>

#include "cluster/audit.h"
#include "flow/min_cost_flow.h"
#include "obs/journal.h"

namespace aladdin::baselines {

namespace {
template <typename T>
std::size_t Idx(T id) {
  return static_cast<std::size_t>(id.value());
}
}  // namespace

FirmamentScheduler::FirmamentScheduler(FirmamentOptions options)
    : options_(options) {}

std::string FirmamentScheduler::name() const {
  return std::string("Firmament-") + CostModelName(options_.cost_model) + "(" +
         std::to_string(options_.reschd) + ")";
}

void FirmamentScheduler::ForEachCandidate(
    const cluster::ClusterState& state, cluster::ContainerId c,
    const std::function<bool(cluster::MachineId)>& fn) {
  const std::int64_t need = state.containers()[Idx(c)].request.cpu_millis();
  int budget = options_.candidate_machines;
  switch (options_.cost_model) {
    case FirmamentCostModel::kTrivial:
      // Most packed first: ascending free CPU from the tightest fit.
      index_.ScanAscending(need, [&](cluster::MachineId m) {
        if (budget-- <= 0) return true;
        return fn(m);
      });
      break;
    case FirmamentCostModel::kOctopus:
      // Least loaded first: descending free CPU.
      index_.ScanDescending([&](cluster::MachineId m) {
        if (budget-- <= 0) return true;
        return fn(m);
      });
      break;
    case FirmamentCostModel::kQuincy: {
      // Locality-driven: start at the container's preferred machine offset
      // (per-task input locality) and wrap; the cost model scores the
      // candidates.
      const auto& machines = state.topology().machines();
      const std::size_t start =
          (static_cast<std::size_t>(static_cast<std::uint32_t>(c.value())) *
           2654435761u) %
          machines.size();
      for (std::size_t k = 0; k < machines.size() && budget > 0; ++k) {
        const cluster::MachineId m(
            static_cast<std::int32_t>((start + k) % machines.size()));
        if (state.Free(m).cpu_millis() < need) continue;
        --budget;
        if (fn(m)) break;
      }
      break;
    }
  }
}

FirmamentScheduler::RoundStats FirmamentScheduler::SolveRoundGreedy(
    const std::vector<cluster::ContainerId>& queue,
    std::vector<cluster::ContainerId>& leftover,
    cluster::ClusterState& state) {
  RoundStats stats;
  for (cluster::ContainerId c : queue) {
    cluster::MachineId best = cluster::MachineId::Invalid();
    flow::Cost best_cost = std::numeric_limits<flow::Cost>::max();
    ForEachCandidate(state, c, [&](cluster::MachineId m) {
      ++stats.arcs;
      if (!state.Fits(c, m)) return false;
      const flow::Cost cost = PlacementArcCost(
          options_.cost_model, state, c, m, options_.locality_seed);
      if (cost < best_cost) {
        best_cost = cost;
        best = m;
      }
      return false;  // keep scanning the candidate budget
    });
    if (best.valid() &&
        best_cost < UnscheduledArcCost(options_.cost_model, state, c)) {
      state.Deploy(c, best);  // blacklist-oblivious, like the flow solve
      index_.OnChanged(best);
      ++stats.deployed;
    } else {
      leftover.push_back(c);
    }
  }
  return stats;
}

FirmamentScheduler::RoundStats FirmamentScheduler::SolveRoundMcmf(
    const std::vector<cluster::ContainerId>& queue,
    std::vector<cluster::ContainerId>& leftover,
    cluster::ClusterState& state) {
  RoundStats stats;
  flow::Graph graph;
  const VertexId source = graph.AddVertex();
  const VertexId sink = graph.AddVertex();
  const VertexId unscheduled = graph.AddVertex();
  graph.AddArc(unscheduled, sink,
               static_cast<flow::Capacity>(queue.size()), 0);

  // Machine vertices are created lazily for candidate machines only.
  std::unordered_map<std::int32_t, VertexId> machine_vertex;
  std::vector<std::int32_t> machine_of_vertex;  // vertex -> machine id
  auto machine_vx = [&](cluster::MachineId m) {
    auto [it, inserted] = machine_vertex.try_emplace(m.value());
    if (inserted) {
      it->second = graph.AddVertex();
      // Unit = one container. Capacity approximates how many more tasks the
      // machine can take; real resource fit is re-checked at decode.
      const std::int64_t free = state.Free(m).cpu_millis();
      graph.AddArc(it->second, sink, std::max<std::int64_t>(1, free / 500),
                   0);
    }
    return it->second;
  };

  struct TaskArcs {
    cluster::ContainerId task;
    VertexId vertex;
    std::vector<std::pair<ArcId, cluster::MachineId>> arcs;
  };
  std::vector<TaskArcs> tasks;
  tasks.reserve(queue.size());
  for (cluster::ContainerId c : queue) {
    TaskArcs t;
    t.task = c;
    t.vertex = graph.AddVertex();
    graph.AddArc(source, t.vertex, 1, 0);
    ForEachCandidate(state, c, [&](cluster::MachineId m) {
      ++stats.arcs;
      if (!state.Fits(c, m)) return false;
      const ArcId a = graph.AddArc(
          t.vertex, machine_vx(m), 1,
          PlacementArcCost(options_.cost_model, state, c, m,
                           options_.locality_seed));
      t.arcs.emplace_back(a, m);
      return false;
    });
    graph.AddArc(t.vertex, unscheduled, 1,
                 UnscheduledArcCost(options_.cost_model, state, c));
    tasks.push_back(std::move(t));
  }

  flow::MinCostMaxFlow(graph, source, sink);

  // Decode: a task arc carrying flow is a placement decision; it may have
  // become infeasible because the solver over-committed a machine (unit
  // capacities approximate resources) — those tasks stay queued.
  for (const TaskArcs& t : tasks) {
    cluster::MachineId chosen = cluster::MachineId::Invalid();
    for (const auto& [arc, m] : t.arcs) {
      if (graph.arc(arc).flow > 0) {
        chosen = m;
        break;
      }
    }
    if (chosen.valid() && state.Fits(t.task, chosen)) {
      state.Deploy(t.task, chosen);
      index_.OnChanged(chosen);
      ++stats.deployed;
    } else {
      leftover.push_back(t.task);
    }
  }
  return stats;
}

FirmamentScheduler::RoundStats FirmamentScheduler::SolveRound(
    const std::vector<cluster::ContainerId>& queue,
    std::vector<cluster::ContainerId>& leftover,
    cluster::ClusterState& state) {
  if (queue.size() <= static_cast<std::size_t>(options_.mcmf_task_threshold)) {
    return SolveRoundMcmf(queue, leftover, state);
  }
  return SolveRoundGreedy(queue, leftover, state);
}

std::size_t FirmamentScheduler::RepairConflicts(
    cluster::ClusterState& state, std::vector<cluster::ContainerId>& requeue,
    std::vector<cluster::ContainerId>& dropped, std::vector<int>& evictions) {
  // The paper's multi-round mechanism (§V.B): when a machine has constraint
  // conflicts, pick a container and try to reschedule it elsewhere; "the
  // selected one sometimes may not be deployed to other machines to avoid
  // constraint violations — the solution is to choose another container on
  // the same machine to reschedule once again". reschd(i) caps how many
  // such relocation attempts each conflicted machine gets per round; higher
  // i resolves crowded machines, lower i leaves conflicts to churn and
  // eventually time out.
  const auto offenders = cluster::CollectColocationViolations(state);
  // std::map, not unordered: the per-round reschd cap below stops part-way
  // through this loop, so which machines get repair attempts depends on
  // iteration order — ordered by machine id keeps it replayable.
  std::map<std::int32_t, std::vector<cluster::ContainerId>> by_machine;
  for (cluster::ContainerId c : offenders) {
    by_machine[state.PlacementOf(c).value()].push_back(c);
  }
  std::size_t touched = 0;
  auto machine_has_conflict = [&](cluster::MachineId m) {
    const auto tenants = state.DeployedOn(m);
    for (std::size_t i = 0; i < tenants.size(); ++i) {
      const auto app_i = state.containers()[Idx(tenants[i])].app;
      for (std::size_t j = i + 1; j < tenants.size(); ++j) {
        const auto app_j = state.containers()[Idx(tenants[j])].app;
        if (state.constraints().Conflicts(app_i, app_j)) return true;
      }
    }
    return false;
  };
  for (auto& [machine_raw, list] : by_machine) {
    const cluster::MachineId m(machine_raw);
    // Reschedule low-priority (cheap) containers first.
    std::sort(list.begin(), list.end(),
              [&](cluster::ContainerId a, cluster::ContainerId b) {
                const auto& ca = state.containers()[Idx(a)];
                const auto& cb = state.containers()[Idx(b)];
                if (ca.priority != cb.priority) {
                  return ca.priority < cb.priority;
                }
                return a > b;  // newest first
              });
    int attempts = options_.reschd;
    for (cluster::ContainerId v : list) {
      if (attempts-- <= 0) {
        // Out of relocation attempts: the remaining conflicting containers
        // are evicted and re-queued for the oblivious solver (or dropped
        // once their budget is gone).
        if (!state.IsPlaced(v) || state.PlacementOf(v) != m) continue;
        if (state.Blacklisted(v, m)) {
          state.Preempt(v);
          index_.OnChanged(m);
          ++touched;
          if (++evictions[Idx(v)] >= options_.max_evictions_per_container) {
            dropped.push_back(v);
          } else {
            requeue.push_back(v);
          }
        }
        continue;
      }
      if (!state.IsPlaced(v) || state.PlacementOf(v) != m) continue;
      // One relocation attempt: find a machine where v fits without any
      // violation (this check is constraint-aware — it is the repair step,
      // not the flow solve).
      const std::int64_t need = state.containers()[Idx(v)].request.cpu_millis();
      cluster::MachineId target = cluster::MachineId::Invalid();
      int scan = options_.candidate_machines;
      index_.ScanAscending(need, [&](cluster::MachineId cand) {
        if (scan-- <= 0) return true;
        if (cand == m) return false;
        if (!state.CanPlace(v, cand)) return false;
        target = cand;
        return true;
      });
      if (target.valid()) {
        state.Migrate(v, target);
        index_.OnChanged(m);
        index_.OnChanged(target);
        ++touched;
      } else {
        state.Preempt(v);
        index_.OnChanged(m);
        ++touched;
        if (++evictions[Idx(v)] >= options_.max_evictions_per_container) {
          dropped.push_back(v);
        } else {
          requeue.push_back(v);
        }
      }
      // Stop early once the machine is conflict-free.
      if (!machine_has_conflict(m)) break;
    }
  }
  return touched;
}

sim::ScheduleOutcome FirmamentScheduler::Schedule(
    const sim::ScheduleRequest& request, cluster::ClusterState& state) {
  sim::ScheduleOutcome outcome;
  index_.Attach(state);

  std::vector<cluster::ContainerId> queue = *request.arrival;
  std::vector<cluster::ContainerId> dropped;
  std::vector<int> evictions(state.containers().size(), 0);

  for (int round = 0; round < options_.max_rounds && !queue.empty();
       ++round) {
    ++outcome.rounds;
    std::vector<cluster::ContainerId> leftover;
    const RoundStats stats = SolveRound(queue, leftover, state);
    outcome.explored_paths += stats.arcs;

    std::vector<cluster::ContainerId> requeue;
    const std::size_t evicted =
        RepairConflicts(state, requeue, dropped, evictions);

    if (stats.deployed == 0 && evicted == 0) {
      // No progress: everything left is unschedulable under this policy.
      queue = std::move(leftover);
      break;
    }
    queue = std::move(leftover);
    queue.insert(queue.end(), requeue.begin(), requeue.end());
  }

  // Firmament leaves conflicting work unscheduled rather than violating
  // anti-affinity (Fig. 1b): evict any conflicts that survived the rounds.
  for (cluster::ContainerId c : cluster::CollectColocationViolations(state)) {
    const auto m = state.PlacementOf(c);
    state.Preempt(c);
    index_.OnChanged(m);
    dropped.push_back(c);
  }

  outcome.unplaced = std::move(queue);
  outcome.unplaced.insert(outcome.unplaced.end(), dropped.begin(),
                          dropped.end());
  outcome.unplaced_causes.assign(outcome.unplaced.size(),
                                 obs::Cause::kBaselineUnplaced);
  if (obs::JournalEnabled()) {
    for (cluster::ContainerId c : outcome.unplaced) {
      obs::EmitDecision(obs::DecisionKind::kUnplaced,
                        obs::Cause::kBaselineUnplaced, c.value());
    }
  }
  return outcome;
}

}  // namespace aladdin::baselines

#include "baselines/firmament/cost_model.h"

namespace aladdin::baselines {

namespace {
// Deterministic mixing for the synthetic Quincy locality table.
std::uint64_t Mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}
}  // namespace

const char* CostModelName(FirmamentCostModel model) {
  switch (model) {
    case FirmamentCostModel::kTrivial:
      return "TRIVIAL";
    case FirmamentCostModel::kQuincy:
      return "QUINCY";
    case FirmamentCostModel::kOctopus:
      return "OCTOPUS";
  }
  return "?";
}

flow::Cost PlacementArcCost(FirmamentCostModel model,
                            const cluster::ClusterState& state,
                            cluster::ContainerId c, cluster::MachineId m,
                            std::uint64_t locality_salt) {
  switch (model) {
    case FirmamentCostModel::kTrivial: {
      // Pack: cheaper the less free CPU remains (most packed machine wins).
      return state.Free(m).cpu_millis() / 100;
    }
    case FirmamentCostModel::kQuincy: {
      // Synthetic locality: each (container, rack) pair has a stable
      // preference in [0, 64) — Quincy's preference is per task, driven by
      // where that task's input blocks live — plus a mild packing term so
      // ties pack.
      const auto rack = state.topology().machine(m).rack;
      const std::uint64_t h =
          Mix(locality_salt ^ (static_cast<std::uint64_t>(
                                   static_cast<std::uint32_t>(c.value()))
                               << 32) ^
              static_cast<std::uint64_t>(
                  static_cast<std::uint32_t>(rack.value())));
      return static_cast<flow::Cost>(h % 64) +
             state.Free(m).cpu_millis() / 1000;
    }
    case FirmamentCostModel::kOctopus: {
      // Balance container counts.
      return static_cast<flow::Cost>(state.DeployedOn(m).size());
    }
  }
  return 0;
}

flow::Cost UnscheduledArcCost(FirmamentCostModel model,
                              const cluster::ClusterState& state,
                              cluster::ContainerId c) {
  // Leaving a task pending must dominate any placement arc under every
  // model (placement costs stay below ~400 for 32-core machines).
  (void)model;
  (void)state;
  (void)c;
  return 10000;
}

}  // namespace aladdin::baselines

// Firmament cost models (the three most-used policies per §V.A, Table I).
//
// Firmament decides placements by solving min-cost max-flow over a
// scheduling graph whose arc costs come from a pluggable cost model:
//  * TRIVIAL — "containers always scheduled if resources are idle"; §V.B
//    adds that it "always tries to deploy a container to the most packed
//    machines", so the arc cost rewards low residual capacity.
//  * QUINCY — the original Quincy model: data-locality preferences plus an
//    unscheduled penalty. Containers have no input data in the LLA setting,
//    so locality is modelled as a deterministic per-(application, rack)
//    affinity — same structure, synthetic preference table.
//  * OCTOPUS — "simple load balancing based on container counts": arc cost
//    is the number of containers already on the machine.
// All models are anti-affinity- and priority-oblivious — exactly the
// property the paper's multi-round conflict repair has to compensate for.
#pragma once

#include <cstdint>

#include "cluster/state.h"
#include "flow/graph.h"

namespace aladdin::baselines {

enum class FirmamentCostModel { kTrivial, kQuincy, kOctopus };

const char* CostModelName(FirmamentCostModel model);

// Cost of routing container c's unit of flow to machine m under the model.
flow::Cost PlacementArcCost(FirmamentCostModel model,
                            const cluster::ClusterState& state,
                            cluster::ContainerId c, cluster::MachineId m,
                            std::uint64_t locality_salt);

// Cost of routing it to the unscheduled aggregator instead (always large:
// leaving work pending is the last resort).
flow::Cost UnscheduledArcCost(FirmamentCostModel model,
                              const cluster::ClusterState& state,
                              cluster::ContainerId c);

}  // namespace aladdin::baselines

// Firmament baseline: flow-based scheduling with multi-round conflict
// repair and a timeout mechanism (§I, §V.A–B; Gog et al., OSDI'16).
//
// Each round solves a min-cost max-flow over the scheduling graph
// s → task → machine → t (with an unscheduled aggregator), using one of the
// three cost models. The flow solve is anti-affinity- and priority-
// oblivious; conflicts are detected after decoding and repaired by evicting
// up to `reschd` containers per conflicted machine per round — the paper's
// reschd(i) knob (§V.B). Rounds repeat until the queue drains, progress
// stops, or the round budget (timeout) expires; containers still in
// conflict at the end are evicted and reported unscheduled, matching
// Firmament's "unscheduled to avoid anti-affinity constraints" behaviour
// (Fig. 1b).
//
// Scale note: the real Firmament keeps solves fast with incremental
// min-cost flow. We run the exact MCMF (flow/min_cost_flow.h) when a
// round's task count is small and an equivalent cost-model-greedy
// assignment — the same argmin per task — for large rounds; the crossover
// is `mcmf_task_threshold`.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "baselines/firmament/cost_model.h"
#include "cluster/free_index.h"
#include "sim/scheduler.h"

namespace aladdin::baselines {

struct FirmamentOptions {
  FirmamentCostModel cost_model = FirmamentCostModel::kQuincy;
  // reschd(i): max containers rescheduled per conflicted machine per round.
  int reschd = 1;
  // Timeout mechanism: scheduling rounds before giving up. Small on purpose
  // — the interaction between this budget and reschd(i) is what Fig. 9
  // sweeps: with reschd(1) only one conflicting container per machine is
  // rescheduled per round, so crowded machines cannot drain before the
  // timeout and their conflicts end up unscheduled.
  int max_rounds = 6;
  // A container evicted this many times is dropped (stays unscheduled).
  int max_evictions_per_container = 6;
  // Candidate arcs per task in the scheduling graph.
  int candidate_machines = 24;
  // Task-count ceiling for running the exact MCMF solver per round.
  int mcmf_task_threshold = 400;
  std::uint64_t locality_seed = 7;
};

class FirmamentScheduler : public sim::Scheduler {
 public:
  explicit FirmamentScheduler(FirmamentOptions options = {});

  [[nodiscard]] std::string name() const override;

  sim::ScheduleOutcome Schedule(const sim::ScheduleRequest& request,
                                cluster::ClusterState& state) override;

 private:
  struct RoundStats {
    std::size_t deployed = 0;
    std::size_t evicted = 0;
    std::int64_t arcs = 0;
  };

  // Assign-and-deploy one round of `queue`; non-assignable tasks go to
  // `leftover`. Returns stats.
  RoundStats SolveRound(const std::vector<cluster::ContainerId>& queue,
                        std::vector<cluster::ContainerId>& leftover,
                        cluster::ClusterState& state);
  RoundStats SolveRoundMcmf(const std::vector<cluster::ContainerId>& queue,
                            std::vector<cluster::ContainerId>& leftover,
                            cluster::ClusterState& state);
  RoundStats SolveRoundGreedy(const std::vector<cluster::ContainerId>& queue,
                              std::vector<cluster::ContainerId>& leftover,
                              cluster::ClusterState& state);

  // Post-round conflict repair: evict up to reschd violating containers per
  // machine; appends victims to `requeue` (or drops them once their
  // eviction budget is spent).
  std::size_t RepairConflicts(cluster::ClusterState& state,
                              std::vector<cluster::ContainerId>& requeue,
                              std::vector<cluster::ContainerId>& dropped,
                              std::vector<int>& evictions);

  // Candidate machines for task c under the active cost model.
  void ForEachCandidate(const cluster::ClusterState& state,
                        cluster::ContainerId c,
                        const std::function<bool(cluster::MachineId)>& fn);

  FirmamentOptions options_;
  cluster::FreeIndex index_;
};

}  // namespace aladdin::baselines

// Scoped tracing: per-thread ring buffers of scope/instant/counter records,
// flushed to Chrome trace-event JSON that loads directly in Perfetto
// (ui.perfetto.dev) or chrome://tracing.
//
//   obs::StartTracing();
//   ... run the scheduler ...
//   obs::StopTracing();
//   obs::WriteTrace("out.json");
//
// Instrumentation idiom (names must be string literals or otherwise outlive
// the flush — they are stored by pointer):
//
//   void Resolver::Resolve(...) {
//     ALADDIN_PHASE_SCOPE("k8s/sync_state");   // exclusive pipeline phase
//     ...
//   }
//   ALADDIN_TRACE_SCOPE("core/find_machine");  // nested detail scope
//   ALADDIN_TRACE_INSTANT("k8s/topology_changed");
//   ALADDIN_TRACE_COUNTER("k8s/pending", pending.size());
//
// Scopes are recorded at *exit* as complete intervals into a fixed-size
// per-thread ring (oldest records overwritten; drops counted). Because a
// dropped record removes a whole scope, the B/E expansion the writer emits
// stays balanced no matter how much the ring wrapped. Both macros also feed
// the phase-time accumulators in the metrics registry (obs/metrics.h), so
// tracing and the per-tick phase breakdown share one instrumentation point.
//
// Cost when disabled: one relaxed atomic load and a branch per scope — no
// clock read, no allocation. Compile out entirely with ALADDIN_OBS=OFF.
#pragma once

#include <cstdint>
#include <string>

#include "obs/metrics.h"
#include "obs/runtime.h"

namespace aladdin::obs {

struct TraceOptions {
  // Records retained per thread; one record is one scope or point event.
  std::size_t ring_capacity = 1 << 16;
};

// Clears all ring buffers, stamps the trace epoch, arms the tracing bit.
void StartTracing(const TraceOptions& options = {});
void StopTracing();

// Scope/point records overwritten because a ring wrapped since
// StartTracing(). Nonzero means the trace is a suffix of the run.
[[nodiscard]] std::uint64_t DroppedTraceEvents();

// Serialises everything currently buffered as Chrome trace-event JSON
// (object format, one event per line, globally sorted by timestamp with
// balanced B/E pairs per thread). Usable while tracing is stopped or live.
[[nodiscard]] std::string TraceToJson();

// TraceToJson() to `path`; false (with a logged error) on I/O failure.
[[nodiscard]] bool WriteTrace(const std::string& path);

namespace internal {
// Owner-thread depth bookkeeping + record append; see trace.cpp.
void EnterScope();
void ExitScope(const Phase& phase, std::int64_t start_ns, std::int64_t end_ns);
void RecordInstant(const char* name);
void RecordCounter(const char* name, double value);
}  // namespace internal

// RAII scope: snapshots the mode mask once on entry, so a mid-scope toggle
// never produces a half-recorded interval.
class ScopedTrace {
 public:
  explicit ScopedTrace(Phase& phase) : mode_(CurrentMode()) {
    if (mode_ == 0) return;
    phase_ = &phase;
    if ((mode_ & kTracing) != 0) internal::EnterScope();
    start_ns_ = MonotonicNowNs();
  }
  ~ScopedTrace() {
    if (mode_ == 0) return;
    const std::int64_t end_ns = MonotonicNowNs();
    if ((mode_ & kMetrics) != 0) phase_->RecordUnchecked(end_ns - start_ns_);
    if ((mode_ & kTracing) != 0) {
      internal::ExitScope(*phase_, start_ns_, end_ns);
    }
  }
  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

 private:
  std::uint32_t mode_;
  Phase* phase_ = nullptr;
  std::int64_t start_ns_ = 0;
};

#define ALADDIN_OBS_CONCAT_INNER(a, b) a##b
#define ALADDIN_OBS_CONCAT(a, b) ALADDIN_OBS_CONCAT_INNER(a, b)

#if ALADDIN_OBS_ENABLED
#define ALADDIN_OBS_SCOPE_IMPL(name, exclusive)                           \
  static ::aladdin::obs::Phase& ALADDIN_OBS_CONCAT(obs_phase_,            \
                                                   __LINE__) =            \
      ::aladdin::obs::Registry::Get().GetPhase(name, exclusive);          \
  ::aladdin::obs::ScopedTrace ALADDIN_OBS_CONCAT(obs_scope_, __LINE__)(   \
      ALADDIN_OBS_CONCAT(obs_phase_, __LINE__))

// Nested detail scope (search probes, solver inner loops, ...).
#define ALADDIN_TRACE_SCOPE(name) ALADDIN_OBS_SCOPE_IMPL(name, false)
// Exclusive pipeline phase: disjoint in time from every other exclusive
// phase within a tick; participates in the tick-coverage sum.
#define ALADDIN_PHASE_SCOPE(name) ALADDIN_OBS_SCOPE_IMPL(name, true)

#define ALADDIN_TRACE_INSTANT(name)                                       \
  do {                                                                    \
    if (::aladdin::obs::TracingEnabled()) {                               \
      ::aladdin::obs::internal::RecordInstant(name);                      \
    }                                                                     \
  } while (false)
#define ALADDIN_TRACE_COUNTER(name, value)                                \
  do {                                                                    \
    if (::aladdin::obs::TracingEnabled()) {                               \
      ::aladdin::obs::internal::RecordCounter(                            \
          name, static_cast<double>(value));                              \
    }                                                                     \
  } while (false)
#else
#define ALADDIN_TRACE_SCOPE(name) \
  do {                            \
    (void)sizeof(name);           \
  } while (false)
#define ALADDIN_PHASE_SCOPE(name) \
  do {                            \
    (void)sizeof(name);           \
  } while (false)
#define ALADDIN_TRACE_INSTANT(name) \
  do {                              \
    (void)sizeof(name);             \
  } while (false)
#define ALADDIN_TRACE_COUNTER(name, value) \
  do {                                     \
    (void)sizeof(name);                    \
    (void)sizeof(value);                   \
  } while (false)
#endif

}  // namespace aladdin::obs

#include "obs/watchdog.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

#include "common/check.h"
#include "obs/metrics.h"

namespace aladdin::obs {

namespace {

const char* const kAlertKindNames[] = {
    "slo_burn_rate",    "pending_age_drift", "app_flapping",
    "shard_imbalance",  "solve_regression",  "cause_mix_shift",
};
static_assert(sizeof(kAlertKindNames) / sizeof(kAlertKindNames[0]) ==
                  static_cast<std::size_t>(AlertKind::kCount),
              "kAlertKindNames out of sync with AlertKind");

const char* const kAlertSeverityNames[] = {"warning", "critical"};
static_assert(sizeof(kAlertSeverityNames) / sizeof(kAlertSeverityNames[0]) ==
                  static_cast<std::size_t>(AlertSeverity::kCount),
              "kAlertSeverityNames out of sync with AlertSeverity");

// snprintf append helper (same discipline as slo.cpp: the /alertz renderers
// run on the listener's HTTP thread, which must not touch iostream locales).
void AppendF(std::string& out, const char* format, ...) {
  char buf[320];
  va_list args;
  va_start(args, format);
  const int n = std::vsnprintf(buf, sizeof(buf), format, args);
  va_end(args);
  if (n > 0) out.append(buf, std::min(static_cast<std::size_t>(n),
                                      sizeof(buf) - 1));
}

// Evidence-only ratio for display: numerator-per-`scale` of denominator,
// 0 when the denominator is empty. Never feeds a firing decision.
std::int64_t DisplayRatio(std::int64_t num, std::int64_t den,
                          std::int64_t scale) {
  return den > 0 ? num * scale / den : 0;
}

}  // namespace

const char* AlertKindName(AlertKind kind) {
  const auto i = static_cast<std::size_t>(kind);
  if (i >= static_cast<std::size_t>(AlertKind::kCount)) return "?";
  return kAlertKindNames[i];
}

AlertKind AlertKindFromName(const std::string& name) {
  for (std::size_t i = 0; i < static_cast<std::size_t>(AlertKind::kCount);
       ++i) {
    if (name == kAlertKindNames[i]) return static_cast<AlertKind>(i);
  }
  return AlertKind::kCount;
}

const char* AlertSeverityName(AlertSeverity severity) {
  const auto i = static_cast<std::size_t>(severity);
  if (i >= static_cast<std::size_t>(AlertSeverity::kCount)) return "?";
  return kAlertSeverityNames[i];
}

Watchdog::Watchdog(WatchdogOptions options) : options_(options) {
  ALADDIN_CHECK(options_.open_after >= 1) << "watchdog open_after < 1";
  ALADDIN_CHECK(options_.resolve_after >= 1) << "watchdog resolve_after < 1";
  ALADDIN_CHECK(options_.burn_fast_window >= 1 &&
                options_.burn_slow_window >= options_.burn_fast_window)
      << "watchdog burn windows misordered";
  ALADDIN_CHECK(options_.drift_window >= 1) << "empty drift window";
  ALADDIN_CHECK(options_.flap_window >= 1) << "empty flap window";
  ALADDIN_CHECK(options_.latency_window >= 1) << "empty latency window";
  ALADDIN_CHECK(options_.causemix_window >= 1) << "empty cause-mix window";
  burn_fast_ring_.resize(static_cast<std::size_t>(options_.burn_fast_window));
  burn_slow_ring_.resize(static_cast<std::size_t>(options_.burn_slow_window));
  drift_ring_.resize(static_cast<std::size_t>(options_.drift_window), 0);
  flap_ring_.resize(static_cast<std::size_t>(options_.flap_window));
  latency_ring_.resize(static_cast<std::size_t>(options_.latency_window), 0);
  causemix_ring_.resize(static_cast<std::size_t>(options_.causemix_window));
}

void Watchdog::Fold(std::uint64_t value) {
  // FNV-1a, folded per 64-bit word of the transition tuple.
  fingerprint_ = (fingerprint_ ^ value) * 1099511628211ull;
}

Watchdog::SignalState& Watchdog::SubjectSignal(
    std::vector<SignalState>& signals, std::int32_t subject) {
  const auto at = std::lower_bound(
      signals.begin(), signals.end(), subject,
      [](const SignalState& s, std::int32_t key) { return s.subject < key; });
  if (at != signals.end() && at->subject == subject) return *at;
  SignalState fresh;
  fresh.subject = subject;
  return *signals.insert(at, fresh);
}

void Watchdog::OpenAlert(AlertKind kind, SignalState& signal, bool critical,
                         const AlertEvidence& evidence, std::int64_t tick) {
  Alert alert;
  alert.id = static_cast<std::int32_t>(alerts_.size());
  alert.kind = kind;
  alert.severity =
      critical ? AlertSeverity::kCritical : AlertSeverity::kWarning;
  alert.subject = signal.subject;
  alert.opened_tick = tick;
  alert.last_update_tick = tick;
  alert.breach_ticks = signal.breach_streak;
  alert.evidence = evidence;
  alert.state = AlertState::kOpen;
  signal.open_alert = alert.id;
  alerts_.push_back(alert);

  ++opened_total_;
  ++open_now_;
  ++opened_by_kind_[static_cast<std::size_t>(kind)];
  ++open_by_kind_[static_cast<std::size_t>(kind)];
  Fold(1);
  Fold(static_cast<std::uint64_t>(tick));
  Fold(static_cast<std::uint64_t>(kind));
  Fold(static_cast<std::uint64_t>(
      static_cast<std::int64_t>(signal.subject)));
  Fold(static_cast<std::uint64_t>(evidence.observed));
  Fold(static_cast<std::uint64_t>(evidence.threshold));
  EmitDecision(DecisionKind::kEvent, Cause::kAlertOpened, alert.id,
               /*machine=*/static_cast<std::int32_t>(kind),
               /*other=*/signal.subject, /*detail=*/evidence.observed);
  ALADDIN_METRIC_ADD("alerts/opened_total", 1);
}

void Watchdog::ResolveAlert(SignalState& signal, std::int64_t tick) {
  Alert& alert = alerts_[static_cast<std::size_t>(signal.open_alert)];
  alert.state = AlertState::kResolved;
  alert.resolved_tick = tick;
  alert.last_update_tick = tick;
  signal.open_alert = -1;

  ++resolved_total_;
  --open_now_;
  --open_by_kind_[static_cast<std::size_t>(alert.kind)];
  const std::int64_t duration = tick - alert.opened_tick;
  Fold(2);
  Fold(static_cast<std::uint64_t>(tick));
  Fold(static_cast<std::uint64_t>(alert.kind));
  Fold(static_cast<std::uint64_t>(
      static_cast<std::int64_t>(alert.subject)));
  Fold(static_cast<std::uint64_t>(duration));
  EmitDecision(DecisionKind::kEvent, Cause::kAlertResolved, alert.id,
               /*machine=*/static_cast<std::int32_t>(alert.kind),
               /*other=*/alert.subject, /*detail=*/duration);
  ALADDIN_METRIC_ADD("alerts/resolved_total", 1);
}

void Watchdog::StepSignal(AlertKind kind, SignalState& signal, bool breached,
                          bool critical, const AlertEvidence& evidence,
                          std::int64_t tick) {
  if (breached) {
    ++signal.breach_streak;
    signal.clear_streak = 0;
  } else {
    ++signal.clear_streak;
    signal.breach_streak = 0;
  }
  if (signal.open_alert < 0) {
    if (breached && signal.breach_streak >= options_.open_after) {
      OpenAlert(kind, signal, critical, evidence, tick);
    }
    return;
  }
  Alert& alert = alerts_[static_cast<std::size_t>(signal.open_alert)];
  if (breached) {
    alert.last_update_tick = tick;
    ++alert.breach_ticks;
    alert.evidence = evidence;
    if (critical && alert.severity == AlertSeverity::kWarning) {
      alert.severity = AlertSeverity::kCritical;
      Fold(3);
      Fold(static_cast<std::uint64_t>(tick));
      Fold(static_cast<std::uint64_t>(
          static_cast<std::int64_t>(alert.id)));
    }
    return;
  }
  if (signal.clear_streak >= options_.resolve_after) {
    ResolveAlert(signal, tick);
  }
}

void Watchdog::CheckSloBurn(const WatchdogTickInput& input) {
  burn_head_fast_ = (burn_head_fast_ + 1) % burn_fast_ring_.size();
  burn_fast_ring_[burn_head_fast_] = BurnSlot{input.slo_good, input.slo_bad};
  burn_head_slow_ = (burn_head_slow_ + 1) % burn_slow_ring_.size();
  burn_slow_ring_[burn_head_slow_] = BurnSlot{input.slo_good, input.slo_bad};
  ++burn_seen_;

  std::int64_t fast_good = 0;
  std::int64_t fast_bad = 0;
  for (const BurnSlot& slot : burn_fast_ring_) {
    fast_good += slot.good;
    fast_bad += slot.bad;
  }
  std::int64_t slow_good = 0;
  std::int64_t slow_bad = 0;
  for (const BurnSlot& slot : burn_slow_ring_) {
    slow_good += slot.good;
    slow_bad += slot.bad;
  }
  const std::int64_t fast_judged = fast_good + fast_bad;
  const std::int64_t slow_judged = slow_good + slow_bad;
  const std::int64_t budget_bp = std::max<std::int64_t>(input.slo_budget_bp, 1);

  // Both windows must burn at >= multiple x budget: bad/judged >= m * bp/1e4
  // cross-multiplied to exact integers.
  const auto burns_at = [&](std::int64_t multiple) {
    return fast_judged > 0 && slow_judged >= options_.burn_min_judged &&
           fast_bad * 10000 >= multiple * budget_bp * fast_judged &&
           slow_bad * 10000 >= multiple * budget_bp * slow_judged;
  };
  const bool warm = burn_seen_ >= options_.burn_slow_window;
  const bool breached = warm && burns_at(options_.burn_multiple);
  const bool critical = warm && burns_at(2 * options_.burn_multiple);

  AlertEvidence evidence;
  evidence.observed = DisplayRatio(fast_bad, fast_judged, 10000);  // bad bp
  evidence.threshold = options_.burn_multiple * budget_bp;
  evidence.baseline = DisplayRatio(slow_bad, slow_judged, 10000);
  evidence.window = options_.burn_fast_window;
  evidence.extra = slow_judged;
  StepSignal(AlertKind::kSloBurnRate, burn_signal_, breached, critical,
             evidence, input.tick);
}

void Watchdog::CheckPendingDrift(const WatchdogTickInput& input) {
  // Baseline is the trailing window of *previous* ticks' p99 samples; the
  // current tick is pushed after the verdict so a spike cannot dilute its
  // own baseline.
  std::int64_t base_sum = 0;
  for (const std::int64_t sample : drift_ring_) base_sum += sample;
  const std::int64_t n = static_cast<std::int64_t>(drift_ring_.size());
  const std::int64_t p99 = input.pending_age_p99;

  const bool warm = drift_seen_ >= options_.drift_window;
  const auto drifts_at = [&](std::int64_t pct) {
    return p99 >= options_.drift_min_p99 && p99 * 100 * n >= pct * base_sum;
  };
  const bool breached = warm && drifts_at(options_.drift_multiple_pct);
  const bool critical = warm && drifts_at(2 * options_.drift_multiple_pct);

  AlertEvidence evidence;
  evidence.observed = p99;
  evidence.threshold = options_.drift_multiple_pct;
  evidence.baseline = DisplayRatio(base_sum, n, 1);  // trailing mean
  evidence.window = options_.drift_window;
  evidence.extra = input.pending_open;
  StepSignal(AlertKind::kPendingAgeDrift, drift_signal_, breached, critical,
             evidence, input.tick);

  drift_head_ = (drift_head_ + 1) % drift_ring_.size();
  drift_ring_[drift_head_] = p99;
  ++drift_seen_;
}

void Watchdog::CheckAppFlapping(const WatchdogTickInput& input) {
  // Rotate the window: retire the expiring tick's deltas from the running
  // per-app sums, then add this tick's re-opens.
  flap_head_ = (flap_head_ + 1) % flap_ring_.size();
  for (const auto& [app, count] : flap_ring_[flap_head_]) {
    flap_window_sum_[static_cast<std::size_t>(app)] -= count;
  }
  flap_ring_[flap_head_] = input.app_reopens;
  for (const auto& [app, count] : input.app_reopens) {
    if (app < 0) continue;
    const auto i = static_cast<std::size_t>(app);
    // analyze:allow(A103) amortised growth, bounded by the app universe
    if (i >= flap_window_sum_.size()) flap_window_sum_.resize(i + 1, 0);
    flap_window_sum_[i] += count;
  }

  // Step existing signals first (ascending subject), then open signals for
  // newly-breaching apps. Both passes walk ascending app order, so the
  // alert stream is deterministic.
  const auto window_sum = [&](std::int32_t app) {
    const auto i = static_cast<std::size_t>(app);
    return i < flap_window_sum_.size() ? flap_window_sum_[i]
                                       : std::int64_t{0};
  };
  const auto evidence_for = [&](std::int64_t sum, std::int64_t tick_delta) {
    AlertEvidence evidence;
    evidence.observed = sum;
    evidence.threshold = options_.flap_threshold;
    evidence.baseline = 0;
    evidence.window = options_.flap_window;
    evidence.extra = tick_delta;
    return evidence;
  };
  const auto tick_delta = [&](std::int32_t app) {
    for (const auto& [a, count] : input.app_reopens) {
      if (a == app) return count;
    }
    return std::int64_t{0};
  };
  for (SignalState& signal : flap_signals_) {
    const std::int64_t sum = window_sum(signal.subject);
    const bool breached = sum >= options_.flap_threshold;
    const bool critical = sum >= 2 * options_.flap_threshold;
    StepSignal(AlertKind::kAppFlapping, signal, breached, critical,
               evidence_for(sum, tick_delta(signal.subject)), input.tick);
  }
  for (const auto& [app, count] : input.app_reopens) {
    if (app < 0) continue;
    const std::int64_t sum = window_sum(app);
    if (sum < options_.flap_threshold) continue;
    const auto at = std::lower_bound(
        flap_signals_.begin(), flap_signals_.end(), app,
        [](const SignalState& s, std::int32_t key) { return s.subject < key; });
    if (at != flap_signals_.end() && at->subject == app) continue;  // stepped
    SignalState& signal = SubjectSignal(flap_signals_, app);
    StepSignal(AlertKind::kAppFlapping, signal,
               /*breached=*/true, /*critical=*/sum >= 2 * options_.flap_threshold,
               evidence_for(sum, count), input.tick);
  }
  // Drop signals that fully settled (closed alert, no streak) so the scan
  // above stays proportional to the set of misbehaving apps.
  flap_signals_.erase(
      std::remove_if(flap_signals_.begin(), flap_signals_.end(),
                     [](const SignalState& s) {
                       return s.open_alert < 0 && s.breach_streak == 0;
                     }),
      flap_signals_.end());
}

void Watchdog::CheckShardImbalance(const WatchdogTickInput& input) {
  bool breached = false;
  bool critical = false;
  AlertEvidence evidence;
  std::int32_t subject = imbalance_signal_.subject;
  if (input.shards.size() >= 2) {
    std::int64_t max_util = -1;
    std::int32_t max_util_shard = -1;
    std::int64_t max_spill = -1;
    std::int32_t max_spill_shard = -1;
    std::int64_t routed_total = 0;
    std::int64_t spilled_total = 0;
    // analyze:allow(A102) once-per-tick scratch, bounded by shard count
    std::vector<std::int64_t> utils;
    utils.reserve(input.shards.size());  // analyze:allow(A103) per tick
    for (const WatchdogShardLoad& shard : input.shards) {
      utils.push_back(shard.util_permille);
      routed_total += shard.routed;
      spilled_total += shard.spilled;
      if (shard.util_permille > max_util) {
        max_util = shard.util_permille;
        max_util_shard = shard.shard;
      }
      if (shard.spilled > max_spill) {
        max_spill = shard.spilled;
        max_spill_shard = shard.shard;
      }
    }
    std::sort(utils.begin(), utils.end());
    const std::int64_t median = utils[(utils.size() - 1) / 2];

    const auto util_skew_at = [&](std::int64_t pct) {
      return max_util >= options_.imbalance_min_util_permille &&
             max_util * 100 >= pct * median;
    };
    const auto spill_at = [&](std::int64_t permille) {
      return routed_total >= options_.imbalance_min_routed &&
             spilled_total * 1000 >= permille * routed_total;
    };
    const bool util_breach = util_skew_at(options_.imbalance_multiple_pct);
    const bool spill_breach = spill_at(options_.spill_permille);
    breached = util_breach || spill_breach;
    critical = util_skew_at(2 * options_.imbalance_multiple_pct) ||
               spill_at(2 * options_.spill_permille);
    subject = util_breach ? max_util_shard : max_spill_shard;

    evidence.observed = util_breach
                            ? max_util
                            : DisplayRatio(spilled_total, routed_total, 1000);
    evidence.threshold = util_breach ? options_.imbalance_multiple_pct
                                     : options_.spill_permille;
    evidence.baseline = median;
    evidence.window = 1;
    evidence.extra = DisplayRatio(spilled_total, routed_total, 1000);
  }
  // The signal is cluster-wide (one imbalance alert open at a time); the
  // subject pins the hottest shard while no alert is open, and stays with
  // the opening shard for the alert's lifetime.
  if (imbalance_signal_.open_alert < 0) imbalance_signal_.subject = subject;
  StepSignal(AlertKind::kShardImbalance, imbalance_signal_, breached,
             critical, evidence, input.tick);
}

void Watchdog::CheckSolveRegression(const WatchdogTickInput& input) {
  std::int64_t base_sum = 0;
  for (const std::int64_t sample : latency_ring_) base_sum += sample;
  const std::int64_t n = static_cast<std::int64_t>(latency_ring_.size());
  const std::int64_t cost = input.solve_cost;

  const bool warm = latency_seen_ >= options_.latency_window;
  const auto regressed_at = [&](std::int64_t pct) {
    return cost >= options_.latency_min_cost &&
           cost * 100 * n >= pct * base_sum;
  };
  const bool breached = warm && regressed_at(options_.latency_multiple_pct);
  const bool critical =
      warm && regressed_at(2 * options_.latency_multiple_pct);

  AlertEvidence evidence;
  evidence.observed = cost;
  evidence.threshold = options_.latency_multiple_pct;
  evidence.baseline = DisplayRatio(base_sum, n, 1);  // trailing mean
  evidence.window = options_.latency_window;
  evidence.extra = input.solve_wall_micros;  // wall clock: evidence only
  StepSignal(AlertKind::kSolveRegression, latency_signal_, breached, critical,
             evidence, input.tick);

  latency_head_ = (latency_head_ + 1) % latency_ring_.size();
  latency_ring_[latency_head_] = cost;
  ++latency_seen_;
}

void Watchdog::CheckCauseMix(const WatchdogTickInput& input) {
  CauseCounts current{};
  std::int64_t cur_total = 0;
  for (const auto& [cause, count] : input.giveup_causes) {
    current[static_cast<std::size_t>(cause)] += count;
    cur_total += count;
  }
  std::int64_t base_total = 0;
  for (const std::int64_t count : causemix_base_) base_total += count;

  // L1 distance between the tick's distribution and the trailing window's,
  // cross-multiplied: sum_c |cur[c]*B - base[c]*C| * 1000 >= L1 * C * B.
  std::int64_t l1_cross = 0;
  for (std::size_t c = 0; c < current.size(); ++c) {
    const std::int64_t diff =
        current[c] * base_total - causemix_base_[c] * cur_total;
    l1_cross += diff < 0 ? -diff : diff;
  }
  const bool warm = causemix_seen_ >= options_.causemix_window;
  const auto shifted_at = [&](std::int64_t permille) {
    return cur_total >= options_.causemix_min_count &&
           base_total >= options_.causemix_min_count &&
           l1_cross * 1000 >= permille * cur_total * base_total;
  };
  const bool breached = warm && shifted_at(options_.causemix_l1_permille);
  const bool critical = warm && shifted_at(2 * options_.causemix_l1_permille);

  AlertEvidence evidence;
  evidence.observed =
      DisplayRatio(l1_cross * 1000, cur_total * base_total, 1);
  evidence.threshold = options_.causemix_l1_permille;
  evidence.baseline = base_total;
  evidence.window = options_.causemix_window;
  evidence.extra = cur_total;
  StepSignal(AlertKind::kCauseMixShift, causemix_signal_, breached, critical,
             evidence, input.tick);

  // Rotate: retire the expiring tick's histogram, admit the current one.
  causemix_head_ = (causemix_head_ + 1) % causemix_ring_.size();
  for (std::size_t c = 0; c < current.size(); ++c) {
    causemix_base_[c] += current[c] - causemix_ring_[causemix_head_][c];
  }
  causemix_ring_[causemix_head_] = current;
  ++causemix_seen_;
}

void Watchdog::ObserveTick(const WatchdogTickInput& input) {
  tick_ = input.tick;
  if (options_.slo_burn) CheckSloBurn(input);
  if (options_.pending_drift) CheckPendingDrift(input);
  if (options_.app_flapping) CheckAppFlapping(input);
  if (options_.shard_imbalance) CheckShardImbalance(input);
  if (options_.solve_regression) CheckSolveRegression(input);
  if (options_.cause_mix) CheckCauseMix(input);
  ALADDIN_METRIC_GAUGE_SET("alerts/open_now", open_now_);
}

WatchdogSnapshot Watchdog::Snapshot() const {
  WatchdogSnapshot snapshot;
  snapshot.enabled = true;
  snapshot.tick = tick_;
  snapshot.opened_total = opened_total_;
  snapshot.resolved_total = resolved_total_;
  snapshot.open_now = open_now_;
  snapshot.open_by_kind = open_by_kind_;
  snapshot.opened_by_kind = opened_by_kind_;
  snapshot.alerts = alerts_;
  return snapshot;
}

std::string RenderAlertz(const WatchdogSnapshot& snapshot) {
  std::string out;
  out.reserve(1024);
  AppendF(out, "aladdin alertz — tick %lld\n",
          static_cast<long long>(snapshot.tick));
  if (!snapshot.enabled) {
    out += "watchdog: disabled (run with --watchdog)\n";
    return out;
  }
  AppendF(out, "alerts: open=%lld opened=%lld resolved=%lld\n",
          static_cast<long long>(snapshot.open_now),
          static_cast<long long>(snapshot.opened_total),
          static_cast<long long>(snapshot.resolved_total));
  for (std::size_t k = 0; k < snapshot.opened_by_kind.size(); ++k) {
    if (snapshot.opened_by_kind[k] == 0) continue;
    AppendF(out, "  %-18s open=%lld opened=%lld\n",
            AlertKindName(static_cast<AlertKind>(k)),
            static_cast<long long>(snapshot.open_by_kind[k]),
            static_cast<long long>(snapshot.opened_by_kind[k]));
  }
  if (snapshot.alerts.empty()) {
    out += "no alerts\n";
    return out;
  }
  AppendF(out, "\n%4s %-18s %-8s %7s %-8s %7s %9s %9s %9s %9s %6s\n", "id",
          "kind", "sev", "subject", "state", "opened", "resolved", "observed",
          "thresh", "baseline", "breach");
  for (const Alert& alert : snapshot.alerts) {
    char resolved[24];
    if (alert.resolved_tick >= 0) {
      std::snprintf(resolved, sizeof(resolved), "%lld",
                    static_cast<long long>(alert.resolved_tick));
    } else {
      std::snprintf(resolved, sizeof(resolved), "-");
    }
    AppendF(out, "%4d %-18s %-8s %7d %-8s %7lld %9s %9lld %9lld %9lld %6lld\n",
            alert.id, AlertKindName(alert.kind),
            AlertSeverityName(alert.severity), alert.subject,
            alert.state == AlertState::kOpen ? "open" : "resolved",
            static_cast<long long>(alert.opened_tick), resolved,
            static_cast<long long>(alert.evidence.observed),
            static_cast<long long>(alert.evidence.threshold),
            static_cast<long long>(alert.evidence.baseline),
            static_cast<long long>(alert.breach_ticks));
  }
  return out;
}

std::string RenderAlertsJson(const WatchdogSnapshot& snapshot) {
  std::string out;
  out.reserve(1024);
  AppendF(out, "{\"enabled\":%s,\"tick\":%lld,",
          snapshot.enabled ? "true" : "false",
          static_cast<long long>(snapshot.tick));
  AppendF(out, "\"open\":%lld,\"opened_total\":%lld,\"resolved_total\":%lld,",
          static_cast<long long>(snapshot.open_now),
          static_cast<long long>(snapshot.opened_total),
          static_cast<long long>(snapshot.resolved_total));
  out += "\"by_kind\":[";
  bool first = true;
  for (std::size_t k = 0; k < snapshot.opened_by_kind.size(); ++k) {
    if (snapshot.opened_by_kind[k] == 0 && snapshot.open_by_kind[k] == 0) {
      continue;
    }
    if (!first) out += ',';
    first = false;
    AppendF(out, "{\"kind\":\"%s\",\"open\":%lld,\"opened\":%lld}",
            AlertKindName(static_cast<AlertKind>(k)),
            static_cast<long long>(snapshot.open_by_kind[k]),
            static_cast<long long>(snapshot.opened_by_kind[k]));
  }
  out += "],\"alerts\":[";
  for (std::size_t i = 0; i < snapshot.alerts.size(); ++i) {
    const Alert& alert = snapshot.alerts[i];
    if (i > 0) out += ',';
    AppendF(out,
            "{\"id\":%d,\"kind\":\"%s\",\"severity\":\"%s\","
            "\"subject\":%d,\"state\":\"%s\",\"opened_tick\":%lld,"
            "\"resolved_tick\":%lld,\"last_update_tick\":%lld,"
            "\"breach_ticks\":%lld,",
            alert.id, AlertKindName(alert.kind),
            AlertSeverityName(alert.severity), alert.subject,
            alert.state == AlertState::kOpen ? "open" : "resolved",
            static_cast<long long>(alert.opened_tick),
            static_cast<long long>(alert.resolved_tick),
            static_cast<long long>(alert.last_update_tick),
            static_cast<long long>(alert.breach_ticks));
    AppendF(out,
            "\"evidence\":{\"observed\":%lld,\"threshold\":%lld,"
            "\"baseline\":%lld,\"window\":%lld,\"extra\":%lld}}",
            static_cast<long long>(alert.evidence.observed),
            static_cast<long long>(alert.evidence.threshold),
            static_cast<long long>(alert.evidence.baseline),
            static_cast<long long>(alert.evidence.window),
            static_cast<long long>(alert.evidence.extra));
  }
  out += "]}";
  return out;
}

}  // namespace aladdin::obs

#include "obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>

#include "common/bench_json.h"
#include "common/check.h"

namespace aladdin::obs {

namespace internal {

namespace {
std::atomic<std::size_t> g_next_shard{0};
}  // namespace

std::size_t ThisThreadShard() {
  thread_local const std::size_t shard =
      g_next_shard.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return shard;
}

}  // namespace internal

std::int64_t MonotonicNowNs() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              epoch)
      .count();
}

// --- Counter ----------------------------------------------------------------

std::int64_t Counter::Value() const {
  std::int64_t total = 0;
  for (const auto& cell : cells_) {
    total += cell.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (auto& cell : cells_) cell.value.store(0, std::memory_order_relaxed);
}

// --- Histogram --------------------------------------------------------------

Histogram::Histogram(std::string unit, double lo, double growth,
                     std::size_t buckets)
    : unit_(std::move(unit)),
      lo_(lo),
      growth_(growth),
      log_growth_inv_(1.0 / std::log(growth)),
      counts_(buckets) {
  ALADDIN_CHECK(lo > 0.0 && growth > 1.0 && buckets >= 2);
}

std::size_t Histogram::BucketOf(double value) const {
  if (!(value > lo_)) return 0;  // also catches NaN
  const double raw = std::log(value / lo_) * log_growth_inv_;
  const auto bucket = static_cast<std::size_t>(raw) + 1;
  return std::min(bucket, counts_.size() - 1);
}

void Histogram::ObserveUnchecked(double value) {
  counts_[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t n = count_.fetch_add(1, std::memory_order_relaxed);
  double expected = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(expected, expected + value,
                                     std::memory_order_relaxed)) {
  }
  if (n == 0) {
    // First observation seeds the extrema (no sentinel values needed).
    min_.store(value, std::memory_order_relaxed);
    max_.store(value, std::memory_order_relaxed);
    return;
  }
  double lo = min_.load(std::memory_order_relaxed);
  while (value < lo && !min_.compare_exchange_weak(
                           lo, value, std::memory_order_relaxed)) {
  }
  double hi = max_.load(std::memory_order_relaxed);
  while (value > hi && !max_.compare_exchange_weak(
                           hi, value, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.lo = lo_;
  snap.growth = growth_;
  snap.counts.resize(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    snap.counts[i] = counts_[i].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.min = min_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  return snap;
}

void Histogram::Reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

double HistogramSnapshot::BucketLow(std::size_t bucket) const {
  if (bucket == 0) return 0.0;
  return lo * std::pow(growth, static_cast<double>(bucket) - 1.0);
}

double HistogramSnapshot::BucketHigh(std::size_t bucket) const {
  return lo * std::pow(growth, static_cast<double>(bucket));
}

double HistogramSnapshot::Percentile(double p) const {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const auto next = seen + counts[i];
    if (static_cast<double>(next) >= rank) {
      const double low = std::max(BucketLow(i), min);
      const double high = std::min(BucketHigh(i), max);
      if (counts[i] == 0 || high <= low) return low;
      const double inside =
          (rank - static_cast<double>(seen)) / static_cast<double>(counts[i]);
      return low + (high - low) * std::clamp(inside, 0.0, 1.0);
    }
    seen = next;
  }
  return max;
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  if (other.count == 0) return;
  ALADDIN_CHECK(counts.size() == other.counts.size() && lo == other.lo &&
                growth == other.growth)
      << "merging histograms with different bucket geometry";
  for (std::size_t i = 0; i < counts.size(); ++i) counts[i] += other.counts[i];
  if (count == 0) {
    min = other.min;
    max = other.max;
  } else {
    min = std::min(min, other.min);
    max = std::max(max, other.max);
  }
  count += other.count;
  sum += other.sum;
}

// --- Phase ------------------------------------------------------------------

std::int64_t Phase::TotalNs() const {
  std::int64_t total = 0;
  for (const auto& cell : ns_) {
    total += cell.value.load(std::memory_order_relaxed);
  }
  return total;
}

std::int64_t Phase::Calls() const {
  std::int64_t total = 0;
  for (const auto& cell : calls_) {
    total += cell.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Phase::Reset() {
  for (auto& cell : ns_) cell.value.store(0, std::memory_order_relaxed);
  for (auto& cell : calls_) cell.value.store(0, std::memory_order_relaxed);
}

// --- Registry ---------------------------------------------------------------

Registry& Registry::Get() {
  static Registry* instance = new Registry();  // never destroyed
  return *instance;
}

Counter& Registry::GetCounter(std::string_view name) {
  MutexLock lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::GetGauge(std::string_view name) {
  MutexLock lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::GetHistogram(std::string_view name,
                                  std::string_view unit) {
  MutexLock lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::string(unit)))
             .first;
  }
  return *it->second;
}

Phase& Registry::GetPhase(std::string_view name, bool exclusive) {
  MutexLock lock(mutex_);
  auto it = phases_.find(name);
  if (it == phases_.end()) {
    it = phases_
             .emplace(std::string(name),
                      std::make_unique<Phase>(std::string(name), exclusive))
             .first;
  } else {
    ALADDIN_DCHECK(it->second->exclusive() == exclusive)
        << "phase '" << it->second->name()
        << "' declared with conflicting exclusivity";
  }
  return *it->second;
}

MetricsSnapshot Registry::Snapshot() const {
  MutexLock lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters.push_back({name, counter->Value()});
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.push_back({name, gauge->Value()});
  }
  for (const auto& [name, hist] : histograms_) {
    snap.histograms.push_back({name, hist->Snapshot(), hist->unit()});
  }
  for (const auto& [name, phase] : phases_) {
    snap.phases.push_back(
        {name, phase->TotalNs(), phase->Calls(), phase->exclusive()});
  }
  return snap;
}

std::vector<PhaseDelta> Registry::PhaseTotals() const {
  MutexLock lock(mutex_);
  std::vector<PhaseDelta> totals;
  totals.reserve(phases_.size());
  for (const auto& [name, phase] : phases_) {
    totals.push_back(
        {name, phase->TotalNs(), phase->Calls(), phase->exclusive()});
  }
  return totals;
}

void Registry::ResetAll() {
  MutexLock lock(mutex_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
  for (auto& [name, phase] : phases_) phase->Reset();
}

// --- Phase window helpers ---------------------------------------------------

std::vector<PhaseDelta> CapturePhases() {
  return Registry::Get().PhaseTotals();
}

std::vector<PhaseDelta> DiffPhases(const std::vector<PhaseDelta>& before,
                                   const std::vector<PhaseDelta>& after) {
  // Both vectors are name-sorted (registry order); new phases may have
  // appeared in `after`, so walk them as a merge.
  std::vector<PhaseDelta> delta;
  std::size_t i = 0;
  for (const PhaseDelta& cur : after) {
    while (i < before.size() && before[i].name < cur.name) ++i;
    PhaseDelta d = cur;
    if (i < before.size() && before[i].name == cur.name) {
      d.ns -= before[i].ns;
      d.calls -= before[i].calls;
    }
    if (d.calls != 0 || d.ns != 0) delta.push_back(std::move(d));
  }
  return delta;
}

void MergePhaseDeltas(std::vector<PhaseDelta>& into,
                      const std::vector<PhaseDelta>& more) {
  for (const PhaseDelta& d : more) {
    auto it = std::find_if(
        into.begin(), into.end(),
        [&](const PhaseDelta& existing) { return existing.name == d.name; });
    if (it == into.end()) {
      into.push_back(d);
    } else {
      it->ns += d.ns;
      it->calls += d.calls;
    }
  }
  std::sort(into.begin(), into.end(),
            [](const PhaseDelta& a, const PhaseDelta& b) {
              return a.name < b.name;
            });
}

double ExclusiveSeconds(const std::vector<PhaseDelta>& phases) {
  double total = 0.0;
  for (const PhaseDelta& d : phases) {
    if (d.exclusive) total += d.seconds();
  }
  return total;
}

// --- Export -----------------------------------------------------------------

void ExportMetrics(BenchJson& out) {
  const MetricsSnapshot snap = Registry::Get().Snapshot();
  for (const auto& c : snap.counters) {
    out.Metric(c.name, static_cast<double>(c.value), "count");
  }
  for (const auto& g : snap.gauges) {
    out.Metric(g.name, static_cast<double>(g.value), "gauge");
  }
  for (const auto& h : snap.histograms) {
    out.Metric(h.name + "_count", static_cast<double>(h.snapshot.count),
               "count");
    if (h.snapshot.count > 0) {
      out.Metric(h.name + "_p50", h.snapshot.Percentile(50), h.unit);
      out.Metric(h.name + "_p99", h.snapshot.Percentile(99), h.unit);
      out.Metric(h.name + "_max", h.snapshot.max, h.unit);
    }
  }
  for (const auto& p : snap.phases) {
    out.Metric(p.name + "_ms", static_cast<double>(p.ns) * 1e-6, "ms");
    out.Metric(p.name + "_calls", static_cast<double>(p.calls), "count");
  }
}

std::string FormatMetrics() {
  const MetricsSnapshot snap = Registry::Get().Snapshot();
  std::ostringstream os;
  os << "metrics registry:\n";
  for (const auto& c : snap.counters) {
    os << "  counter " << c.name << " = " << c.value << "\n";
  }
  for (const auto& g : snap.gauges) {
    os << "  gauge   " << g.name << " = " << g.value << "\n";
  }
  for (const auto& h : snap.histograms) {
    os << "  histo   " << h.name << " count=" << h.snapshot.count;
    if (h.snapshot.count > 0) {
      os << " p50=" << h.snapshot.Percentile(50)
         << " p99=" << h.snapshot.Percentile(99) << " max=" << h.snapshot.max
         << " " << h.unit;
    }
    os << "\n";
  }
  for (const auto& p : snap.phases) {
    os << "  phase   " << p.name << (p.exclusive ? " [tick]" : "       ")
       << " total_ms=" << static_cast<double>(p.ns) * 1e-6
       << " calls=" << p.calls << "\n";
  }
  return os.str();
}

}  // namespace aladdin::obs

// Shared flag wiring for the observability layer, so every bench / sim /
// tool binary grows the same switches with three lines:
//
//   Flags flags;
//   obs::ObsCli obs_cli(flags);                  // --log-level --metrics
//   ...                                          // --trace --trace_ring
//   if (!flags.Parse(argc, argv)) return 1;
//   if (!obs_cli.Apply()) return 1;              // arm what was requested
//   ...run...
//   obs_cli.Finish(&json);                       // flush trace + metrics
//
// Binaries that only want --log-level (generators, offline tools) pass
// with_obs = false.
#pragma once

#include <cstdint>
#include <string>

namespace aladdin {
class BenchJson;
class Flags;
}  // namespace aladdin

namespace aladdin::obs {

class ObsCli {
 public:
  explicit ObsCli(Flags& flags, bool with_obs = true);

  // Call once after Flags::Parse succeeded. Sets the log level and arms
  // metrics / tracing as requested. Returns false (after logging the
  // offending value) on an unknown --log-level.
  [[nodiscard]] bool Apply();

  // End of run: stops tracing and writes --trace's file (logging the path),
  // prints the --metrics dump to stdout, and, when `json` is given, appends
  // the metrics registry to it for perf_compare.py. Safe to call when
  // nothing was enabled. Returns false if the trace file could not be
  // written.
  [[nodiscard]] bool Finish(BenchJson* json = nullptr);

  [[nodiscard]] bool metrics_requested() const {
    return metrics_ != nullptr && *metrics_;
  }
  [[nodiscard]] const std::string& trace_path() const;

 private:
  std::string* log_level_ = nullptr;
  std::string* trace_path_ = nullptr;
  bool* metrics_ = nullptr;
  std::int64_t* trace_ring_ = nullptr;
};

}  // namespace aladdin::obs

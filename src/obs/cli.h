// Shared flag wiring for the observability layer, so every bench / sim /
// tool binary grows the same switches with three lines:
//
//   Flags flags;
//   obs::ObsCli obs_cli(flags);                  // --log-level --metrics
//   ...                                          // --trace --journal ...
//   if (!flags.Parse(argc, argv)) return 1;
//   if (!obs_cli.Apply()) return 1;              // arm what was requested
//   ...run...
//   obs_cli.Finish(&json);                       // flush trace + metrics
//
// Binaries that only want --log-level (generators, offline tools) pass
// with_obs = false.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

namespace aladdin {
class BenchJson;
class Flags;
}  // namespace aladdin

namespace aladdin::obs {

class PrometheusListener;

class ObsCli {
 public:
  explicit ObsCli(Flags& flags, bool with_obs = true);
  ~ObsCli();

  // Call once after Flags::Parse succeeded. Sets the log level and arms
  // metrics / tracing / the decision journal / the Prometheus listener as
  // requested. Returns false (after logging the offending value) on an
  // unknown --log-level or an unbindable --prom_port.
  [[nodiscard]] bool Apply();

  // End of run: stops tracing and writes --trace's file (logging the path),
  // drains the decision journal to --journal's sink, writes --prom's
  // snapshot, stops the --prom_port listener, prints the --metrics dump to
  // stdout, and, when `json` is given, appends the metrics registry to it
  // for perf_compare.py. Safe to call when nothing was enabled. Returns
  // false if any requested output file could not be written.
  [[nodiscard]] bool Finish(BenchJson* json = nullptr);

  [[nodiscard]] bool metrics_requested() const {
    return metrics_ != nullptr && *metrics_;
  }
  [[nodiscard]] const std::string& trace_path() const;
  [[nodiscard]] const std::string& journal_path() const;
  [[nodiscard]] bool journal_requested() const {
    return journal_path_ != nullptr && !journal_path_->empty();
  }
  // --timeseries is registered here for uniformity but the per-tick writer
  // lives with the binary's tick loop (sim::TimeSeriesWriter).
  [[nodiscard]] const std::string& timeseries_path() const;
  // --watchdog is registered here for uniformity; the engine itself is
  // owned by the binary's resolver (k8s::ResolverOptions::watchdog).
  [[nodiscard]] bool watchdog_requested() const {
    return watchdog_ != nullptr && *watchdog_;
  }

 private:
  std::string* log_level_ = nullptr;
  std::string* trace_path_ = nullptr;
  std::string* journal_path_ = nullptr;
  std::string* timeseries_path_ = nullptr;
  std::string* prom_path_ = nullptr;
  bool* metrics_ = nullptr;
  bool* watchdog_ = nullptr;
  std::int64_t* trace_ring_ = nullptr;
  std::int64_t* journal_ring_ = nullptr;
  std::int64_t* prom_port_ = nullptr;
  std::unique_ptr<PrometheusListener> listener_;
};

}  // namespace aladdin::obs

#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <vector>

#include "common/log.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace aladdin::obs {
namespace {

enum class Kind : std::uint8_t { kScope, kInstant, kCounter };

// One ring slot. Scopes are complete intervals (recorded at exit); point
// events use start_ns only. `name` points at interned registry storage or a
// string literal — both outlive any flush.
struct Record {
  const char* name = nullptr;
  std::int64_t start_ns = 0;
  std::int64_t end_ns = 0;
  std::int32_t depth = 0;
  Kind kind = Kind::kScope;
  double value = 0.0;
};

struct ThreadBuffer {
  explicit ThreadBuffer(std::uint32_t tid_in, std::size_t capacity)
      : tid(tid_in), ring(capacity) {}

  void Append(const Record& record) {
    MutexLock lock(mutex);
    if (ring.empty()) return;
    ring[head] = record;
    head = (head + 1) % ring.size();
    if (size < ring.size()) {
      ++size;
    } else {
      ++dropped;
    }
  }

  const std::uint32_t tid;  // set at registration, immutable after
  Mutex mutex;
  std::vector<Record> ring
      ALADDIN_GUARDED_BY(mutex);  // fixed capacity; oldest overwritten
  std::size_t head ALADDIN_GUARDED_BY(mutex) = 0;  // next write position
  std::size_t size ALADDIN_GUARDED_BY(mutex) = 0;
  std::uint64_t dropped ALADDIN_GUARDED_BY(mutex) = 0;
};

struct BufferRegistry {
  Mutex mutex;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers
      ALADDIN_GUARDED_BY(mutex);
  std::size_t ring_capacity ALADDIN_GUARDED_BY(mutex) =
      TraceOptions{}.ring_capacity;
  std::int64_t epoch_ns ALADDIN_GUARDED_BY(mutex) = 0;
};

BufferRegistry& Buffers() {
  static BufferRegistry* registry = new BufferRegistry();  // never destroyed
  return *registry;
}

// The registry shares ownership, so records survive thread exit and are
// still flushed by WriteTrace() at end of run.
ThreadBuffer& ThisThreadBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    BufferRegistry& registry = Buffers();
    MutexLock lock(registry.mutex);
    auto created = std::make_shared<ThreadBuffer>(
        static_cast<std::uint32_t>(registry.buffers.size() + 1),
        registry.ring_capacity);
    registry.buffers.push_back(created);
    return created;
  }();
  return *buffer;
}

thread_local std::int32_t g_scope_depth = 0;

void AppendEscaped(std::string& out, const char* text) {
  for (const char* p = text; *p != '\0'; ++p) {
    const char c = *p;
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

// A serialisable trace event, pre-sort. `ph` is the Chrome event phase.
struct Event {
  const char* name = nullptr;
  char ph = 'B';
  std::int64_t ts_ns = 0;
  std::uint32_t tid = 0;
  double value = 0.0;
};

void AppendEvent(std::string& out, const Event& event, std::int64_t epoch_ns) {
  const double ts_us =
      static_cast<double>(std::max<std::int64_t>(event.ts_ns - epoch_ns, 0)) /
      1000.0;
  char buf[64];
  out += "{\"name\":\"";
  AppendEscaped(out, event.name);
  out += "\",\"cat\":\"aladdin\",\"ph\":\"";
  out += event.ph;
  out += "\",\"ts\":";
  std::snprintf(buf, sizeof(buf), "%.3f", ts_us);
  out += buf;
  out += ",\"pid\":1,\"tid\":";
  std::snprintf(buf, sizeof(buf), "%u", event.tid);
  out += buf;
  if (event.ph == 'i') {
    out += ",\"s\":\"t\"";
  } else if (event.ph == 'C') {
    out += ",\"args\":{\"value\":";
    std::snprintf(buf, sizeof(buf), "%.17g", event.value);
    out += buf;
    out += "}";
  }
  out += "}";
}

void AppendMetadata(std::string& out, const char* kind, std::uint32_t tid,
                    const std::string& value, bool process_scope) {
  out += "{\"name\":\"";
  out += kind;
  out += "\",\"ph\":\"M\",\"ts\":0,\"pid\":1";
  if (!process_scope) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), ",\"tid\":%u", tid);
    out += buf;
  }
  out += ",\"args\":{\"name\":\"";
  AppendEscaped(out, value.c_str());
  out += "\"}}";
}

// Expands one thread's complete-scope records into a timestamp-sorted B/E
// event stream. Sorting scopes by (begin asc, end desc, depth asc) makes
// every scope appear after any scope that contains it, so a simple stack
// reproduces the original nesting; inner ends never exceed outer ends, so
// the emitted stream is non-decreasing in ts.
std::vector<Event> ExpandScopes(std::vector<Record>& scopes,
                                std::uint32_t tid) {
  std::sort(scopes.begin(), scopes.end(),
            [](const Record& a, const Record& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              if (a.end_ns != b.end_ns) return a.end_ns > b.end_ns;
              return a.depth < b.depth;
            });
  std::vector<Event> events;
  events.reserve(scopes.size() * 2);
  std::vector<const Record*> stack;
  auto close = [&](const Record& record) {
    events.push_back(Event{record.name, 'E', record.end_ns, tid, 0.0});
  };
  for (const Record& scope : scopes) {
    while (!stack.empty() &&
           (stack.back()->end_ns < scope.start_ns ||
            (stack.back()->end_ns == scope.start_ns &&
             stack.back()->depth >= scope.depth))) {
      close(*stack.back());
      stack.pop_back();
    }
    events.push_back(Event{scope.name, 'B', scope.start_ns, tid, 0.0});
    stack.push_back(&scope);
  }
  while (!stack.empty()) {
    close(*stack.back());
    stack.pop_back();
  }
  return events;
}

// Stable two-way merge by timestamp; scope events win ties so a counter
// stamped inside a scope lands between its B and E.
std::vector<Event> MergeByTs(const std::vector<Event>& scopes,
                             const std::vector<Event>& points) {
  std::vector<Event> merged;
  merged.reserve(scopes.size() + points.size());
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < scopes.size() || j < points.size()) {
    if (j >= points.size() ||
        (i < scopes.size() && scopes[i].ts_ns <= points[j].ts_ns)) {
      merged.push_back(scopes[i++]);
    } else {
      merged.push_back(points[j++]);
    }
  }
  return merged;
}

}  // namespace

void StartTracing(const TraceOptions& options) {
  BufferRegistry& registry = Buffers();
  {
    MutexLock lock(registry.mutex);
    registry.ring_capacity = options.ring_capacity;
    for (const std::shared_ptr<ThreadBuffer>& buffer : registry.buffers) {
      MutexLock buffer_lock(buffer->mutex);
      buffer->ring.assign(options.ring_capacity, Record{});
      buffer->head = 0;
      buffer->size = 0;
      buffer->dropped = 0;
    }
    registry.epoch_ns = MonotonicNowNs();
  }
  internal::SetModeBit(kTracing, true);
}

void StopTracing() { internal::SetModeBit(kTracing, false); }

std::uint64_t DroppedTraceEvents() {
  BufferRegistry& registry = Buffers();
  MutexLock lock(registry.mutex);
  std::uint64_t dropped = 0;
  for (const std::shared_ptr<ThreadBuffer>& buffer : registry.buffers) {
    MutexLock buffer_lock(buffer->mutex);
    dropped += buffer->dropped;
  }
  return dropped;
}

std::string TraceToJson() {
  BufferRegistry& registry = Buffers();
  struct Snapshot {
    std::uint32_t tid = 0;
    std::vector<Record> records;  // oldest first
  };
  std::vector<Snapshot> snapshots;
  std::int64_t epoch_ns = 0;
  {
    MutexLock lock(registry.mutex);
    epoch_ns = registry.epoch_ns;
    snapshots.reserve(registry.buffers.size());
    for (const std::shared_ptr<ThreadBuffer>& buffer : registry.buffers) {
      MutexLock buffer_lock(buffer->mutex);
      Snapshot snapshot;
      snapshot.tid = buffer->tid;
      snapshot.records.reserve(buffer->size);
      const std::size_t capacity = buffer->ring.size();
      if (capacity > 0) {
        const std::size_t oldest =
            (buffer->head + capacity - buffer->size) % capacity;
        for (std::size_t k = 0; k < buffer->size; ++k) {
          snapshot.records.push_back(buffer->ring[(oldest + k) % capacity]);
        }
      }
      snapshots.push_back(std::move(snapshot));
    }
  }

  // Per-thread: expand scopes to balanced B/E pairs, merge in point events.
  std::vector<std::vector<Event>> streams;
  streams.reserve(snapshots.size());
  for (Snapshot& snapshot : snapshots) {
    std::vector<Record> scopes;
    std::vector<Event> points;
    for (const Record& record : snapshot.records) {
      if (record.kind == Kind::kScope) {
        scopes.push_back(record);
      } else {
        points.push_back(Event{record.name,
                               record.kind == Kind::kInstant ? 'i' : 'C',
                               record.start_ns, snapshot.tid, record.value});
      }
    }
    std::stable_sort(points.begin(), points.end(),
                     [](const Event& a, const Event& b) {
                       return a.ts_ns < b.ts_ns;
                     });
    streams.push_back(MergeByTs(ExpandScopes(scopes, snapshot.tid), points));
  }

  // Global k-way merge by (ts, tid) so the whole file is timestamp-sorted.
  std::string out;
  out += "{\n\"traceEvents\":[\n";
  bool first = true;
  auto emit = [&](auto&& append) {
    if (!first) out += ",\n";
    first = false;
    append();
  };
  emit([&] { AppendMetadata(out, "process_name", 0, "aladdin", true); });
  for (const std::vector<Event>& stream : streams) {
    if (stream.empty()) continue;
    const std::uint32_t tid = stream.front().tid;
    emit([&] {
      AppendMetadata(out, "thread_name", tid,
                     "thread-" + std::to_string(tid), false);
    });
  }
  std::vector<std::size_t> cursor(streams.size(), 0);
  for (;;) {
    std::size_t best = streams.size();
    for (std::size_t s = 0; s < streams.size(); ++s) {
      if (cursor[s] >= streams[s].size()) continue;
      if (best == streams.size() ||
          streams[s][cursor[s]].ts_ns < streams[best][cursor[best]].ts_ns) {
        best = s;
      }
    }
    if (best == streams.size()) break;
    emit([&] { AppendEvent(out, streams[best][cursor[best]], epoch_ns); });
    ++cursor[best];
  }
  out += "\n],\n\"displayTimeUnit\":\"ms\"\n}\n";
  return out;
}

bool WriteTrace(const std::string& path) {
  std::ofstream file(path, std::ios::out | std::ios::trunc);
  if (!file) {
    LOG_ERROR << "cannot open trace file " << path;
    return false;
  }
  file << TraceToJson();
  file.flush();
  if (!file) {
    LOG_ERROR << "failed writing trace file " << path;
    return false;
  }
  return true;
}

namespace internal {

void EnterScope() { ++g_scope_depth; }

void ExitScope(const Phase& phase, std::int64_t start_ns,
               std::int64_t end_ns) {
  --g_scope_depth;
  Record record;
  record.name = phase.name().c_str();
  record.start_ns = start_ns;
  record.end_ns = end_ns;
  record.depth = g_scope_depth;
  record.kind = Kind::kScope;
  ThisThreadBuffer().Append(record);
}

void RecordInstant(const char* name) {
  Record record;
  record.name = name;
  record.start_ns = MonotonicNowNs();
  record.end_ns = record.start_ns;
  record.kind = Kind::kInstant;
  ThisThreadBuffer().Append(record);
}

void RecordCounter(const char* name, double value) {
  Record record;
  record.name = name;
  record.start_ns = MonotonicNowNs();
  record.end_ns = record.start_ns;
  record.kind = Kind::kCounter;
  record.value = value;
  ThisThreadBuffer().Append(record);
}

}  // namespace internal

}  // namespace aladdin::obs

#include "obs/export.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/log.h"
#include "common/thread_pool.h"
#include "obs/slo.h"
#include "obs/watchdog.h"

namespace aladdin::obs {
namespace {

// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*. The registry's
// slash-separated names map onto one flat namespace under aladdin_.
std::string MetricName(const std::string& name) {
  std::string out = "aladdin_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string EscapeLabel(const std::string& value) {
  std::string out;
  for (const char c : value) {
    if (c == '\\' || c == '"') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

void AppendNumber(std::string& out, double value) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out += buf;
}

// Path component of "<METHOD> <path>[?query] HTTP/1.1". Empty on anything
// that does not parse as a request line.
std::string RequestPath(const char* request) {
  const char* p = std::strchr(request, ' ');
  if (p == nullptr) return {};
  ++p;
  const char* end = p;
  while (*end != '\0' && *end != ' ' && *end != '?' && *end != '\r' &&
         *end != '\n') {
    ++end;
  }
  return std::string(p, end);
}

}  // namespace

std::string RenderPrometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& c : snapshot.counters) {
    const std::string name = MetricName(c.name);
    out += "# TYPE " + name + " counter\n";
    out += name + " " + std::to_string(c.value) + "\n";
  }
  for (const auto& g : snapshot.gauges) {
    const std::string name = MetricName(g.name);
    out += "# TYPE " + name + " gauge\n";
    out += name + " " + std::to_string(g.value) + "\n";
  }
  for (const auto& h : snapshot.histograms) {
    const std::string name = MetricName(h.name);
    out += "# TYPE " + name + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.snapshot.counts.size(); ++i) {
      cumulative += h.snapshot.counts[i];
      out += name + "_bucket{le=\"";
      if (i + 1 == h.snapshot.counts.size()) {
        out += "+Inf";
      } else {
        AppendNumber(out, h.snapshot.BucketHigh(i));
      }
      out += "\"} " + std::to_string(cumulative) + "\n";
    }
    out += name + "_sum ";
    AppendNumber(out, h.snapshot.sum);
    out += "\n" + name + "_count " + std::to_string(h.snapshot.count) + "\n";
  }
  if (!snapshot.phases.empty()) {
    out += "# TYPE aladdin_phase_seconds_total counter\n";
    for (const auto& p : snapshot.phases) {
      out += "aladdin_phase_seconds_total{phase=\"" + EscapeLabel(p.name) +
             "\"} ";
      AppendNumber(out, static_cast<double>(p.ns) * 1e-9);
      out += "\n";
    }
    out += "# TYPE aladdin_phase_calls_total counter\n";
    for (const auto& p : snapshot.phases) {
      out += "aladdin_phase_calls_total{phase=\"" + EscapeLabel(p.name) +
             "\"} " + std::to_string(p.calls) + "\n";
    }
  }
  return out;
}

bool WritePrometheusFile(const std::string& path) {
  std::ofstream file(path, std::ios::out | std::ios::trunc);
  if (!file) {
    LOG_ERROR << "cannot open prometheus file " << path;
    return false;
  }
  file << RenderPrometheus(Registry::Get().Snapshot());
  file.flush();
  if (!file) {
    LOG_ERROR << "failed writing prometheus file " << path;
    return false;
  }
  return true;
}

PrometheusListener::PrometheusListener() = default;

PrometheusListener::~PrometheusListener() { Stop(); }

bool PrometheusListener::Start(std::uint16_t port) {
  if (running()) return true;
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    LOG_ERROR << "prometheus listener: socket() failed";
    return false;
  }
  const int reuse = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 4) < 0) {
    LOG_ERROR << "prometheus listener: cannot bind 127.0.0.1:" << port;
    ::close(fd);
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_.store(ntohs(addr.sin_port), std::memory_order_relaxed);
  } else {
    port_.store(port, std::memory_order_relaxed);
  }
  listen_fd_.store(fd, std::memory_order_relaxed);
  stop_.store(false, std::memory_order_relaxed);
  running_.store(true, std::memory_order_relaxed);
  pool_ = std::make_unique<ThreadPool>(1);
  (void)pool_->Submit([this] { ServeLoop(); });
  LOG_INFO << "prometheus metrics on http://127.0.0.1:"
           << port_.load(std::memory_order_relaxed) << "/";
  return true;
}

void PrometheusListener::Stop() {
  if (!running()) return;
  stop_.store(true, std::memory_order_relaxed);
  pool_.reset();  // joins the serve loop (returns on its next poll timeout)
  const int fd = listen_fd_.exchange(-1, std::memory_order_relaxed);
  if (fd >= 0) ::close(fd);
  running_.store(false, std::memory_order_relaxed);
}

void PrometheusListener::ServeLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    const int fd = listen_fd_.load(std::memory_order_relaxed);
    if (fd < 0) return;
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0 || (pfd.revents & POLLIN) == 0) continue;
    const int client = ::accept(fd, nullptr, nullptr);
    if (client < 0) continue;
    // One recv is enough: request lines fit in a packet and we only route
    // on the path — no headers or body are consulted.
    char request[1024];
    const auto received = ::recv(client, request, sizeof(request) - 1, 0);
    request[received > 0 ? received : 0] = '\0';
    const std::string path = RequestPath(request);
    std::string body;
    const char* content_type = "text/plain; charset=utf-8";
    if (path == "/healthz") {
      body = "ok\n";
    } else if (path == "/statusz") {
      body = RenderStatusz(IntrospectionSnapshot());
    } else if (path == "/slo") {
      body = RenderSloJson(IntrospectionSnapshot());
      content_type = "application/json";
    } else if (path == "/alertz") {
      body = RenderAlertz(IntrospectionSnapshot().watchdog);
    } else if (path == "/alertz.json") {
      body = RenderAlertsJson(IntrospectionSnapshot().watchdog);
      content_type = "application/json";
    } else {
      // Any other path (/, /metrics, scrapers with odd queries) keeps the
      // historical behaviour: the Prometheus exposition.
      body = RenderPrometheus(Registry::Get().Snapshot());
      content_type = "text/plain; version=0.0.4; charset=utf-8";
    }
    char header[192];
    const int header_len = std::snprintf(
        header, sizeof(header),
        "HTTP/1.1 200 OK\r\n"
        "Content-Type: %s\r\n"
        "Content-Length: %zu\r\nConnection: close\r\n\r\n",
        content_type, body.size());
    (void)::send(client, header, static_cast<std::size_t>(header_len), 0);
    (void)::send(client, body.data(), body.size(), 0);
    ::close(client);
  }
}

}  // namespace aladdin::obs

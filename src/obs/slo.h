// Admission-SLO engine: turns lifecycle spans (obs/lifecycle.h) into
// attainment and burn-rate accounting against a configurable objective of
// the form "`percent`% of containers placed within `wait_ticks` ticks".
//
// All state is exact integer counts keyed on ticks, mutated only from
// serial resolver sections — the same determinism bar as the journal, so
// attainment is bit-identical across thread counts and across shards 0/1.
// Doubles appear only in snapshots, derived deterministically from ints.
//
// Violation semantics (counted once per span epoch, journaled as
// Cause::kSloViolated):
//   * a span still pending when its pending-age exceeds the objective is
//     flagged at that crossing tick (its eventual wait is already > N);
//   * a span placed with wait > N that was never flagged while pending is
//     flagged at placement (fast crossings inside one tick window).
// Attainment = within / (within + violations); the burn rate divides the
// trailing-window bad fraction by the error budget (100 - percent)/100, so
// burn > 1 means the window is eating budget faster than the objective
// allows (the standard SRE multi-window burn alert input).
//
// This header also hosts the introspection hub behind the listener's
// /statusz and /slo endpoints: the resolver publishes an
// IntrospectionStatus per tick; the HTTP thread renders the latest one.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/lifecycle.h"
#include "obs/watchdog.h"

namespace aladdin::obs {

struct SloObjective {
  // "percent% of containers placed within wait_ticks ticks of arrival."
  std::int64_t wait_ticks = 4;
  double percent = 99.0;
  // Trailing window (ticks) for the burn rate.
  std::int64_t burn_window_ticks = 8;
};

// Exact integer percentiles over a dense count-by-value array (nearest
// rank): smallest value v with cumulative(v) >= ceil(total * num / den).
// Returns 0 for an empty distribution.
[[nodiscard]] std::int64_t PercentileFromCounts(
    const std::vector<std::int64_t>& counts, std::int64_t num,
    std::int64_t den);

// Per-tick pending-age summary for ResolveStats (exact tick integers).
struct PendingAgeStats {
  std::size_t open = 0;  // spans still pending after this resolve
  std::int64_t p50 = 0;
  std::int64_t p99 = 0;
  std::int64_t p999 = 0;
  std::int64_t max = 0;
};
[[nodiscard]] PendingAgeStats SummarizePendingAges(
    const std::vector<std::int64_t>& age_counts);

// One application's attainment row (snapshot form).
struct SloAppRow {
  std::int32_t app = -1;
  std::string name;
  std::int64_t admitted = 0;    // spans closed by placement
  std::int64_t within = 0;      // admitted with wait <= objective
  std::int64_t violations = 0;  // spans flagged past the objective
  std::int64_t wait_max = 0;
  std::int64_t p50 = 0;  // wait percentiles over admitted spans, in ticks
  std::int64_t p99 = 0;
  std::int64_t p999 = 0;
};

struct SloShardRow {
  std::int32_t shard = -1;
  std::int64_t admitted = 0;
  std::int64_t within = 0;
  std::int64_t wait_max = 0;
};

struct SloSnapshot {
  SloObjective objective;
  std::int64_t tick = -1;
  std::int64_t admitted = 0;
  std::int64_t within = 0;
  std::int64_t violations = 0;
  std::int64_t wait_max = 0;
  std::int64_t p50 = 0;
  std::int64_t p99 = 0;
  std::int64_t p999 = 0;
  double attainment_pct = 100.0;  // within / (within + violations)
  double burn_rate = 0.0;         // trailing-window budget burn multiple
  std::size_t apps_total = 0;     // registered apps (rows may be capped)
  std::vector<SloAppRow> apps;    // worst-first, capped by Snapshot(limit)
  std::vector<SloShardRow> shards;  // K > 1 placements only
};

class SloEngine {
 public:
  explicit SloEngine(SloObjective objective = {});

  [[nodiscard]] const SloObjective& objective() const { return objective_; }

  // Interns the app name for tables / JSON. Idempotent; first name wins.
  void RegisterApp(std::int32_t app, std::string_view name);
  [[nodiscard]] std::string_view AppName(std::int32_t app) const;

  // Rotates the burn-rate window. Call once per resolve, before any
  // OnAdmitted / ObservePending of that tick.
  void BeginTick(std::int64_t tick);

  // A pending span placed this tick: records the wait (global, per app,
  // per shard when shard >= 0) and flags a late placement that was never
  // flagged while pending. Call with the ledger's span, post-OnPlaced.
  void OnAdmitted(LifecycleSpan& span, std::int64_t wait_ticks);

  // A span still pending at the end of `now`: flags (once per epoch) the
  // first crossing of the objective and journals Cause::kSloViolated.
  void ObservePending(LifecycleSpan& span, std::int64_t now);

  // Snapshot with at most `app_rows` per-app rows, ordered worst-first
  // (violations desc, admitted desc, app asc — deterministic).
  [[nodiscard]] SloSnapshot Snapshot(std::size_t app_rows) const;

  [[nodiscard]] std::int64_t admitted() const { return admitted_; }
  [[nodiscard]] std::int64_t violations() const { return violations_; }

  // This tick's burn-slot counts (good = admitted within objective, bad =
  // newly-flagged violations) — exact-integer inputs for the watchdog's
  // dual-window burn detector. Read after the tick's OnAdmitted /
  // ObservePending calls.
  [[nodiscard]] std::int64_t tick_good() const {
    return burn_ring_[burn_head_].good;
  }
  [[nodiscard]] std::int64_t tick_bad() const {
    return burn_ring_[burn_head_].bad;
  }
  // The objective's error budget in basis points: round((100 - percent) *
  // 100), floored at 1. Fixed at configure time, so firing decisions built
  // on it stay exact-integer.
  [[nodiscard]] std::int64_t budget_bp() const;

 private:
  struct AppSlo {
    std::int64_t admitted = 0;
    std::int64_t within = 0;
    std::int64_t violations = 0;
    std::int64_t wait_sum = 0;
    std::int64_t wait_max = 0;
    std::vector<std::int64_t> wait_counts;  // dense by wait, grown on demand
  };
  struct ShardSlo {
    std::int64_t admitted = 0;
    std::int64_t within = 0;
    std::int64_t wait_max = 0;
  };

  void CountViolation(LifecycleSpan& span, std::int64_t age_ticks);
  AppSlo& AppSlot(std::int32_t app);

  SloObjective objective_;
  std::int64_t tick_ = -1;
  std::int64_t admitted_ = 0;
  std::int64_t within_ = 0;
  std::int64_t violations_ = 0;
  std::int64_t wait_max_ = 0;
  std::vector<std::int64_t> wait_counts_;  // global, dense by wait ticks
  std::vector<AppSlo> apps_;               // dense by app id
  std::vector<std::string> app_names_;     // dense by app id
  std::vector<ShardSlo> shards_;           // dense by shard (K > 1 only)
  // Burn window ring: per-tick good (within) / bad (new violations).
  struct BurnSlot {
    std::int64_t good = 0;
    std::int64_t bad = 0;
  };
  std::vector<BurnSlot> burn_ring_;
  std::size_t burn_head_ = 0;
};

// ---------------------------------------------------------------------------
// Introspection hub: the resolver publishes one IntrospectionStatus per
// tick (serial section); the PrometheusListener's HTTP thread renders the
// latest on GET /statusz and /slo. A process-wide slot guarded by a mutex
// — publish is a copy, render is a copy-out, no lock held during I/O.

struct IntrospectionShard {
  std::int32_t shard = -1;
  std::size_t machines = 0;
  std::size_t routed = 0;
  std::size_t placed = 0;
  std::size_t unplaced = 0;
  std::size_t spilled = 0;          // containers re-routed by spill rounds
  std::int64_t util_permille = 0;   // used cpu / capacity, exact permille
  double solve_seconds = 0.0;
};

struct IntrospectionStatus {
  std::int64_t tick = -1;
  SloSnapshot slo;
  PendingAgeStats pending_ages;
  std::vector<IntrospectionShard> shards;       // per-shard load (K > 0)
  std::vector<PendingRow> oldest_pending;       // worst queue residents
  std::vector<std::string> oldest_pending_app;  // app names, same order
  // Watchdog alert state (enabled=false when the resolver runs without
  // --watchdog); rendered by the listener's /alertz endpoint.
  WatchdogSnapshot watchdog;
};

void PublishIntrospection(IntrospectionStatus status);
[[nodiscard]] IntrospectionStatus IntrospectionSnapshot();
// True once any status has been published this process.
[[nodiscard]] bool IntrospectionPublished();

// /statusz: human-readable text tables (per-shard load, SLO attainment,
// oldest-pending). /slo: machine-readable JSON of the same snapshot.
[[nodiscard]] std::string RenderStatusz(const IntrospectionStatus& status);
[[nodiscard]] std::string RenderSloJson(const IntrospectionStatus& status);

}  // namespace aladdin::obs

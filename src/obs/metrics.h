// Metrics registry: process-global named Counters, Gauges, Histograms and
// Phase timers behind the obs/runtime.h kill switches.
//
// Counters and phase timers are *sharded*: each thread writes its own
// cache-line-padded cell (relaxed atomics), so the parallel admissible-path
// search never contends on a metric, and reads sum the shards. Because every
// increment is an exact integer add, counter totals are bit-identical
// between serial and parallel runs of the same work — tools/perf_compare.py
// identity-checks them (unit "count"), while phase times export as time
// units and are only ratio-checked.
//
// Call-site idiom (one registry lookup ever, then a relaxed load + add):
//
//   ALADDIN_METRIC_ADD("core/migrations", moved.size());
//
// Phases are the unit of the per-tick breakdown: a Phase accumulates total
// nanoseconds and call counts, recorded by ALADDIN_TRACE_SCOPE /
// ALADDIN_PHASE_SCOPE (obs/trace.h). Phases created via ALADDIN_PHASE_SCOPE
// are *exclusive*: mutually disjoint in time within a scheduling tick, so
// their deltas sum to (approximately) the tick's wall time — that sum is the
// coverage check bench_online reports.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/runtime.h"

namespace aladdin {
class BenchJson;
}  // namespace aladdin

namespace aladdin::obs {

inline constexpr std::size_t kMetricShards = 16;

namespace internal {
struct alignas(64) ShardCell {
  std::atomic<std::int64_t> value{0};
};
// Stable per-thread shard index in [0, kMetricShards).
[[nodiscard]] std::size_t ThisThreadShard();
}  // namespace internal

// Monotonic clock for phase timing and trace timestamps, in nanoseconds
// since a process-local epoch (steady_clock; comparable across threads).
[[nodiscard]] std::int64_t MonotonicNowNs();

// Monotonically increasing sum, sharded per thread.
class Counter {
 public:
  // Gated add: a no-op unless metrics are enabled.
  void Add(std::int64_t delta = 1) {
    if (MetricsEnabled()) AddUnchecked(delta);
  }
  // Ungated add for call sites that already checked MetricsEnabled().
  void AddUnchecked(std::int64_t delta) {
    cells_[internal::ThisThreadShard()].value.fetch_add(
        delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t Value() const;
  void Reset();

 private:
  internal::ShardCell cells_[kMetricShards];
};

// Last-write-wins scalar (pods bound, queue depth, ...).
class Gauge {
 public:
  void Set(std::int64_t value) {
    if (MetricsEnabled()) value_.store(value, std::memory_order_relaxed);
  }
  void Add(std::int64_t delta) {
    if (MetricsEnabled()) value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t Value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

// Mergeable view of a Histogram (or of several, via Merge): geometric
// buckets plus exact count / sum / min / max.
struct HistogramSnapshot {
  double lo = 0.0;      // upper bound of bucket 0
  double growth = 1.0;  // bucket i covers [lo*growth^(i-1), lo*growth^i)
  std::vector<std::uint64_t> counts;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;

  [[nodiscard]] double mean() const { return count ? sum / count : 0.0; }
  // Linear interpolation inside the bucket holding the p-th percentile
  // (p in [0, 100]); relative error is bounded by growth - 1.
  [[nodiscard]] double Percentile(double p) const;
  // Bucket edges (bucket 0 is (-inf, lo); the last bucket is open-ended).
  [[nodiscard]] double BucketLow(std::size_t bucket) const;
  [[nodiscard]] double BucketHigh(std::size_t bucket) const;

  void Merge(const HistogramSnapshot& other);
};

// Lock-free geometric-bucket histogram. Observe is wait-free on the bucket
// counters; min/max/sum use CAS loops (uncontended in practice — histogram
// observations are per-tick, not per-container).
class Histogram {
 public:
  // ~24 buckets per factor-64 span: growth 2^(1/4), 96 buckets from `lo`
  // covers 7+ orders of magnitude, plenty for ms-scale latencies.
  explicit Histogram(std::string unit = "ms", double lo = 1e-3,
                     double growth = 1.1892071150027210667, // 2^(1/4)
                     std::size_t buckets = 96);

  void Observe(double value) {
    if (MetricsEnabled()) ObserveUnchecked(value);
  }
  void ObserveUnchecked(double value);

  [[nodiscard]] HistogramSnapshot Snapshot() const;
  [[nodiscard]] const std::string& unit() const { return unit_; }
  void Reset();

 private:
  [[nodiscard]] std::size_t BucketOf(double value) const;

  std::string unit_;
  double lo_;
  double growth_;
  double log_growth_inv_;
  std::vector<std::atomic<std::uint64_t>> counts_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

// Named pipeline phase: accumulated wall nanoseconds + call count, sharded
// like Counter. `exclusive` marks phases that partition a scheduling tick.
class Phase {
 public:
  Phase(std::string name, bool exclusive)
      : name_(std::move(name)), exclusive_(exclusive) {}

  void RecordUnchecked(std::int64_t ns) {
    const std::size_t shard = internal::ThisThreadShard();
    ns_[shard].value.fetch_add(ns, std::memory_order_relaxed);
    calls_[shard].value.fetch_add(1, std::memory_order_relaxed);
  }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] bool exclusive() const { return exclusive_; }
  [[nodiscard]] std::int64_t TotalNs() const;
  [[nodiscard]] std::int64_t Calls() const;
  void Reset();

 private:
  std::string name_;
  bool exclusive_;
  internal::ShardCell ns_[kMetricShards];
  internal::ShardCell calls_[kMetricShards];
};

// Phase activity over a window (CapturePhases() start/end diff).
struct PhaseDelta {
  std::string name;
  std::int64_t ns = 0;
  std::int64_t calls = 0;
  bool exclusive = false;

  [[nodiscard]] double seconds() const {
    return static_cast<double>(ns) * 1e-9;
  }
};

struct MetricsSnapshot {
  struct Scalar {
    std::string name;
    std::int64_t value = 0;
  };
  struct Hist {
    std::string name;
    HistogramSnapshot snapshot;
    std::string unit;
  };
  std::vector<Scalar> counters;  // sorted by name
  std::vector<Scalar> gauges;
  std::vector<Hist> histograms;
  std::vector<PhaseDelta> phases;
};

class Registry {
 public:
  // The process-wide registry every macro records into.
  static Registry& Get();

  // Lookups intern by name; the returned reference is stable for the
  // process lifetime. A name identifies one kind of metric — asking for an
  // existing name as a different kind is a programming error (checked).
  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name, std::string_view unit = "ms");
  Phase& GetPhase(std::string_view name, bool exclusive = false);

  [[nodiscard]] MetricsSnapshot Snapshot() const;
  [[nodiscard]] std::vector<PhaseDelta> PhaseTotals() const;

  // Zeroes every registered metric (names stay interned). Tests and benches
  // use this to isolate measurement windows.
  void ResetAll();

 private:
  Registry() = default;

  mutable Mutex mutex_;
  // std::map: deterministic iteration order and node-stable addresses (the
  // pointees are internally synchronised, so handing out references while
  // only the map itself is guarded is sound).
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      ALADDIN_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      ALADDIN_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      ALADDIN_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Phase>, std::less<>> phases_
      ALADDIN_GUARDED_BY(mutex_);
};

// Snapshot of every phase's running totals (sorted by name).
[[nodiscard]] std::vector<PhaseDelta> CapturePhases();
// after - before, dropping phases with no activity in the window.
[[nodiscard]] std::vector<PhaseDelta> DiffPhases(
    const std::vector<PhaseDelta>& before,
    const std::vector<PhaseDelta>& after);
// Accumulates `more` into `into` by phase name (for per-tick aggregation).
void MergePhaseDeltas(std::vector<PhaseDelta>& into,
                      const std::vector<PhaseDelta>& more);
// Sum of the exclusive phases' seconds — the tick-coverage numerator.
[[nodiscard]] double ExclusiveSeconds(const std::vector<PhaseDelta>& phases);

// Appends the registry to an aladdin-bench-v1 file: counters and phase call
// counts as unit "count" (identity-checked by tools/perf_compare.py), phase
// totals as "ms" (ratio-checked), gauges as "gauge" and histogram
// percentiles in the histogram's unit.
void ExportMetrics(BenchJson& out);
// Human-readable dump for --metrics stdout.
[[nodiscard]] std::string FormatMetrics();

#if ALADDIN_OBS_ENABLED
// One interned-lookup-then-add counter bump; no-op while metrics are off.
#define ALADDIN_METRIC_ADD(name, delta)                           \
  do {                                                            \
    if (::aladdin::obs::MetricsEnabled()) {                       \
      static ::aladdin::obs::Counter& obs_counter_ref =           \
          ::aladdin::obs::Registry::Get().GetCounter(name);       \
      obs_counter_ref.AddUnchecked(                               \
          static_cast<std::int64_t>(delta));                      \
    }                                                             \
  } while (false)
#define ALADDIN_METRIC_GAUGE_SET(name, value)                     \
  do {                                                            \
    if (::aladdin::obs::MetricsEnabled()) {                       \
      static ::aladdin::obs::Gauge& obs_gauge_ref =               \
          ::aladdin::obs::Registry::Get().GetGauge(name);         \
      obs_gauge_ref.Set(static_cast<std::int64_t>(value));        \
    }                                                             \
  } while (false)
#define ALADDIN_METRIC_OBSERVE(name, unit, value)                 \
  do {                                                            \
    if (::aladdin::obs::MetricsEnabled()) {                       \
      static ::aladdin::obs::Histogram& obs_hist_ref =            \
          ::aladdin::obs::Registry::Get().GetHistogram(name,      \
                                                       unit);     \
      obs_hist_ref.ObserveUnchecked(                              \
          static_cast<double>(value));                            \
    }                                                             \
  } while (false)
#else
// sizeof keeps the operands type-checked and "used" without evaluating them.
#define ALADDIN_METRIC_ADD(name, delta)              \
  do {                                               \
    (void)sizeof(name);                              \
    (void)sizeof(delta);                             \
  } while (false)
#define ALADDIN_METRIC_GAUGE_SET(name, value)        \
  do {                                               \
    (void)sizeof(name);                              \
    (void)sizeof(value);                             \
  } while (false)
#define ALADDIN_METRIC_OBSERVE(name, unit, value)    \
  do {                                               \
    (void)sizeof(name);                              \
    (void)sizeof(unit);                              \
    (void)sizeof(value);                             \
  } while (false)
#endif

}  // namespace aladdin::obs

// Container lifecycle ledger: stitches the per-decision journal stream into
// end-to-end *spans* — arrival tick → solve attempts (with causes) →
// binding / retirement — so "how long did this container wait?" has a
// first-class, queryable answer instead of a journal grep.
//
// Determinism bar (same as the journal): every quantity is an exact integer
// derived from ticks and counts. No wall clocks, no floats in state, and
// all mutation happens from serial resolver sections — so the ledger is
// bit-identical across `--threads 1` vs N and across `--shards 0` vs `1`
// (and, for a fixed K, across any thread count).
//
// Layering: obs sits below cluster/, so spans speak raw int32 container /
// application ids. The k8s resolver owns the id→name translation.
//
//   LifecycleLedger ledger;
//   ledger.OnArrival(c, app, tick);          // span opens (epoch 0)
//   ledger.OnAttempt(c, cause, tick);        // failed resolve, cause noted
//   ledger.OnPlaced(c, machine, shard, t1);  // span closes, wait = t1 - t0
//   ledger.OnPreempted(c, t2);               // span re-opens (epoch 1)
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "obs/journal.h"

namespace aladdin::obs {

// Where a span currently is. Terminal states are kPlaced and kRetired; a
// preemption re-opens the span as a fresh epoch (kPending again, new
// arrival tick) because the container is back in the admission queue.
enum class SpanState : std::uint8_t {  // analyze:closed_enum
  kNever = 0,  // container id not seen by the ledger yet
  kPending,    // waiting for admission since `arrival_tick`
  kPlaced,     // bound at `terminal_tick`; wait = terminal - arrival
  kRetired,    // pod deleted / externally unbound while tracked
  kCount
};

[[nodiscard]] const char* SpanStateName(SpanState state);

struct LifecycleSpan {
  std::int32_t container = -1;
  std::int32_t app = -1;
  std::int32_t machine = -1;  // placement machine (kPlaced only)
  std::int32_t shard = -1;    // owning shard of the placement; -1 unsharded
  std::int64_t arrival_tick = -1;   // of the current epoch
  std::int64_t terminal_tick = -1;  // -1 while pending
  std::int64_t attempts = 0;        // failed resolves this epoch
  std::int32_t epoch = 0;           // bumped by each preemption re-open
  SpanState state = SpanState::kNever;
  Cause last_cause = Cause::kNone;  // latest attempt / terminal diagnosis
  // Set once per epoch when pending-age first crosses the SLO objective
  // (or a placement lands past it) so violations count exactly once.
  bool slo_flagged = false;

  // Wait so far: `now - arrival` while pending, `terminal - arrival` once
  // closed. A same-tick placement is a 0-tick wait.
  [[nodiscard]] std::int64_t WaitTicks(std::int64_t now) const {
    const std::int64_t end = terminal_tick >= 0 ? terminal_tick : now;
    return end - arrival_tick;
  }
  // Resolves this epoch has failed by the end of tick `now` — the
  // pending-age the SLO engine compares against the objective. Monotone
  // per epoch (check_journal.py pins the journal-visible projection).
  [[nodiscard]] std::int64_t PendingAge(std::int64_t now) const {
    return now - arrival_tick + 1;
  }
};

// One row of the oldest-pending table (/statusz).
struct PendingRow {
  std::int32_t container = -1;
  std::int32_t app = -1;
  std::int64_t arrival_tick = -1;
  std::int64_t age_ticks = 0;
  std::int64_t attempts = 0;
  Cause last_cause = Cause::kNone;
};

class LifecycleLedger {
 public:
  // Opens a span for `container` at `tick` (idempotent: a container already
  // pending keeps its original arrival). A container previously placed or
  // retired re-opens as a new epoch — the rebuild arm's stale-binding path
  // sends bound pods back to pending this way. Emits kPodArrived into the
  // journal (serial sections only) when a span actually opens.
  void OnArrival(std::int32_t container, std::int32_t app, std::int64_t tick);
  // Records a failed resolve for a pending container.
  void OnAttempt(std::int32_t container, Cause cause, std::int64_t tick);
  // Closes the span as placed; returns the wait in ticks (terminal -
  // arrival), or -1 if no span was open (defensive).
  std::int64_t OnPlaced(std::int32_t container, std::int32_t machine,
                        std::int32_t shard, std::int64_t tick);
  // Re-opens a placed span as a fresh pending epoch arriving at `tick`.
  void OnPreempted(std::int32_t container, std::int64_t tick);
  // Closes the span (pending or placed) as retired.
  void OnRetired(std::int32_t container, std::int64_t tick);

  [[nodiscard]] bool HasOpenSpan(std::int32_t container) const {
    return SpanPtr(container) != nullptr &&
           SpanPtr(container)->state == SpanState::kPending;
  }
  // nullptr until the container's first OnArrival.
  [[nodiscard]] const LifecycleSpan* SpanPtr(std::int32_t container) const;
  [[nodiscard]] LifecycleSpan* MutableSpan(std::int32_t container);

  [[nodiscard]] std::size_t open_spans() const { return open_spans_; }
  [[nodiscard]] std::size_t tracked() const { return spans_.size(); }

  // The `limit` oldest open spans, ordered by (arrival_tick, container) —
  // deterministic ties — as /statusz table rows. O(tracked · log limit).
  [[nodiscard]] std::vector<PendingRow> OldestPending(std::int64_t now,
                                                      std::size_t limit) const;

  // Exact pending-age counts at the end of `now`: result[age] = number of
  // open spans whose PendingAge(now) == age. Basis for the per-tick
  // pending-age percentiles in ResolveStats.
  [[nodiscard]] std::vector<std::int64_t> PendingAgeCounts(
      std::int64_t now) const;

  // Epoch re-opens (preemptions / stale-binding re-arrivals) recorded
  // since the last drain, as exact (app, count) pairs in ascending app
  // order — the watchdog's flapping-detector input. Drained once per tick
  // from the resolver's serial section; clears the accumulator.
  [[nodiscard]] std::vector<std::pair<std::int32_t, std::int64_t>>
  TakeReopens();

 private:
  LifecycleSpan& Slot(std::int32_t container);

  // Dense by container id: ids are small ints assigned in arrival order, so
  // a vector keeps iteration deterministic (analyzer rule D1) and O(1).
  std::vector<LifecycleSpan> spans_;
  std::size_t open_spans_ = 0;
  // Re-opens since the last TakeReopens: dense count by app plus the list
  // of touched apps (kept so the drain is proportional to activity).
  std::vector<std::int64_t> reopen_counts_;
  std::vector<std::int32_t> reopen_apps_;
};

}  // namespace aladdin::obs

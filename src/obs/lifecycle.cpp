#include "obs/lifecycle.h"

#include <algorithm>

#include "common/check.h"

namespace aladdin::obs {

const char* SpanStateName(SpanState state) {
  switch (state) {
    case SpanState::kNever:
      return "never";
    case SpanState::kPending:
      return "pending";
    case SpanState::kPlaced:
      return "placed";
    case SpanState::kRetired:
      return "retired";
    case SpanState::kCount:
      break;
  }
  return "?";
}

const LifecycleSpan* LifecycleLedger::SpanPtr(std::int32_t container) const {
  const auto i = static_cast<std::size_t>(container);
  if (container < 0 || i >= spans_.size()) return nullptr;
  const LifecycleSpan& span = spans_[i];
  return span.state == SpanState::kNever ? nullptr : &span;
}

LifecycleSpan* LifecycleLedger::MutableSpan(std::int32_t container) {
  return const_cast<LifecycleSpan*>(SpanPtr(container));
}

LifecycleSpan& LifecycleLedger::Slot(std::int32_t container) {
  ALADDIN_CHECK(container >= 0) << "lifecycle span for invalid container";
  const auto i = static_cast<std::size_t>(container);
  if (i >= spans_.size()) {
    // analyze:allow(A103) amortised growth, bounded by the container universe
    spans_.resize(i + 1);
  }
  return spans_[i];
}

void LifecycleLedger::OnArrival(std::int32_t container, std::int32_t app,
                                std::int64_t tick) {
  LifecycleSpan& span = Slot(container);
  if (span.state == SpanState::kPending) return;  // already open
  const bool reopen = span.state != SpanState::kNever;
  if (reopen && app >= 0) {
    const auto i = static_cast<std::size_t>(app);
    if (i >= reopen_counts_.size()) reopen_counts_.resize(i + 1, 0);
    // analyze:allow(A103) one entry per flapping app per tick
    if (reopen_counts_[i] == 0) reopen_apps_.push_back(app);
    ++reopen_counts_[i];
  }
  span.container = container;
  span.app = app;
  span.machine = -1;
  span.shard = -1;
  span.arrival_tick = tick;
  span.terminal_tick = -1;
  span.attempts = 0;
  if (reopen) ++span.epoch;
  span.state = SpanState::kPending;
  span.last_cause = Cause::kNone;
  span.slo_flagged = false;
  ++open_spans_;
  if (JournalEnabled()) {
    EmitDecision(DecisionKind::kEvent, Cause::kPodArrived, container,
                 /*machine=*/-1, /*other=*/app, /*detail=*/span.epoch);
  }
}

void LifecycleLedger::OnAttempt(std::int32_t container, Cause cause,
                                std::int64_t tick) {
  (void)tick;
  LifecycleSpan* span = MutableSpan(container);
  if (span == nullptr || span->state != SpanState::kPending) return;
  ++span->attempts;
  span->last_cause = cause;
}

std::int64_t LifecycleLedger::OnPlaced(std::int32_t container,
                                       std::int32_t machine,
                                       std::int32_t shard, std::int64_t tick) {
  LifecycleSpan* span = MutableSpan(container);
  if (span == nullptr || span->state != SpanState::kPending) return -1;
  span->machine = machine;
  span->shard = shard;
  span->terminal_tick = tick;
  span->state = SpanState::kPlaced;
  --open_spans_;
  return tick - span->arrival_tick;
}

void LifecycleLedger::OnPreempted(std::int32_t container, std::int64_t tick) {
  LifecycleSpan* span = MutableSpan(container);
  if (span == nullptr) return;
  if (span->state == SpanState::kPending) return;  // nothing to re-open
  OnArrival(container, span->app, tick);
}

void LifecycleLedger::OnRetired(std::int32_t container, std::int64_t tick) {
  LifecycleSpan* span = MutableSpan(container);
  if (span == nullptr || span->state == SpanState::kRetired) return;
  if (span->state == SpanState::kPending) --open_spans_;
  span->terminal_tick = tick;
  span->state = SpanState::kRetired;
}

std::vector<PendingRow> LifecycleLedger::OldestPending(
    std::int64_t now, std::size_t limit) const {
  // analyze:allow(A102) once-per-tick table, bounded by `limit`
  std::vector<PendingRow> rows;
  if (limit == 0) return rows;
  rows.reserve(limit + 1);  // analyze:allow(A103) bounded by `limit`
  const auto older = [](const PendingRow& a, const PendingRow& b) {
    if (a.arrival_tick != b.arrival_tick) {
      return a.arrival_tick < b.arrival_tick;
    }
    return a.container < b.container;
  };
  for (const LifecycleSpan& span : spans_) {
    if (span.state != SpanState::kPending) continue;
    PendingRow row;
    row.container = span.container;
    row.app = span.app;
    row.arrival_tick = span.arrival_tick;
    row.age_ticks = span.PendingAge(now);
    row.attempts = span.attempts;
    row.last_cause = span.last_cause;
    if (rows.size() == limit && !older(row, rows.back())) continue;
    rows.insert(std::upper_bound(rows.begin(), rows.end(), row, older), row);
    if (rows.size() > limit) rows.pop_back();
  }
  return rows;
}

std::vector<std::pair<std::int32_t, std::int64_t>>
LifecycleLedger::TakeReopens() {
  // analyze:allow(A102) once-per-tick drain, proportional to flapping apps
  std::vector<std::pair<std::int32_t, std::int64_t>> out;
  out.reserve(reopen_apps_.size());  // analyze:allow(A103) bounded drain
  std::sort(reopen_apps_.begin(), reopen_apps_.end());
  for (const std::int32_t app : reopen_apps_) {
    const auto i = static_cast<std::size_t>(app);
    out.emplace_back(app, reopen_counts_[i]);
    reopen_counts_[i] = 0;
  }
  reopen_apps_.clear();
  return out;
}

std::vector<std::int64_t> LifecycleLedger::PendingAgeCounts(
    std::int64_t now) const {
  // analyze:allow(A102) once-per-tick histogram, bounded by the max age
  std::vector<std::int64_t> counts;
  for (const LifecycleSpan& span : spans_) {
    if (span.state != SpanState::kPending) continue;
    const std::int64_t age = span.PendingAge(now);
    if (age < 0) continue;  // defensive: arrival in the future
    const auto slot = static_cast<std::size_t>(age);
    // analyze:allow(A103) bounded by the max pending age in ticks
    if (slot >= counts.size()) counts.resize(slot + 1, 0);
    ++counts[slot];
  }
  return counts;
}

}  // namespace aladdin::obs

#include "obs/slo.h"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <utility>

#include "common/check.h"
#include "common/mutex.h"
#include "obs/metrics.h"

namespace aladdin::obs {

namespace {

// snprintf append helper shared by the renderers (obs cannot use iostreams
// on the HTTP path — the listener thread must not touch global locales).
void AppendF(std::string& out, const char* format, ...) {
  char buf[320];
  va_list args;
  va_start(args, format);
  const int n = std::vsnprintf(buf, sizeof(buf), format, args);
  va_end(args);
  if (n > 0) out.append(buf, std::min(static_cast<std::size_t>(n),
                                      sizeof(buf) - 1));
}

// Minimal JSON string escape (quotes, backslashes, control bytes) so app
// names survive the /slo endpoint round-trip verbatim.
void AppendJsonString(std::string& out, std::string_view s) {
  out += '"';
  for (const char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          AppendF(out, "\\u%04x", ch);
        } else {
          out += ch;
        }
    }
  }
  out += '"';
}

}  // namespace

std::int64_t PercentileFromCounts(const std::vector<std::int64_t>& counts,
                                  std::int64_t num, std::int64_t den) {
  std::int64_t total = 0;
  for (const std::int64_t c : counts) total += c;
  if (total == 0) return 0;
  const std::int64_t rank = (total * num + den - 1) / den;  // ceil
  std::int64_t seen = 0;
  for (std::size_t v = 0; v < counts.size(); ++v) {
    seen += counts[v];
    if (seen >= rank) return static_cast<std::int64_t>(v);
  }
  return static_cast<std::int64_t>(counts.size()) - 1;
}

PendingAgeStats SummarizePendingAges(
    const std::vector<std::int64_t>& age_counts) {
  PendingAgeStats stats;
  for (std::size_t age = 0; age < age_counts.size(); ++age) {
    if (age_counts[age] <= 0) continue;
    stats.open += static_cast<std::size_t>(age_counts[age]);
    stats.max = static_cast<std::int64_t>(age);
  }
  if (stats.open == 0) return stats;
  stats.p50 = PercentileFromCounts(age_counts, 1, 2);
  stats.p99 = PercentileFromCounts(age_counts, 99, 100);
  stats.p999 = PercentileFromCounts(age_counts, 999, 1000);
  return stats;
}

SloEngine::SloEngine(SloObjective objective) : objective_(objective) {
  ALADDIN_CHECK(objective_.wait_ticks >= 0) << "negative SLO objective";
  ALADDIN_CHECK(objective_.burn_window_ticks > 0) << "empty burn window";
  burn_ring_.resize(static_cast<std::size_t>(objective_.burn_window_ticks));
}

void SloEngine::RegisterApp(std::int32_t app, std::string_view name) {
  if (app < 0) return;
  const auto i = static_cast<std::size_t>(app);
  // analyze:allow(A103) amortised growth, bounded by the application universe
  if (i >= app_names_.size()) app_names_.resize(i + 1);
  // analyze:allow(A103) interned once per app (first name wins)
  if (app_names_[i].empty()) app_names_[i].assign(name);
}

std::string_view SloEngine::AppName(std::int32_t app) const {
  const auto i = static_cast<std::size_t>(app);
  if (app < 0 || i >= app_names_.size()) return {};
  return app_names_[i];
}

SloEngine::AppSlo& SloEngine::AppSlot(std::int32_t app) {
  ALADDIN_CHECK(app >= 0) << "SLO accounting for invalid app";
  const auto i = static_cast<std::size_t>(app);
  // analyze:allow(A103) amortised growth, bounded by the application universe
  if (i >= apps_.size()) apps_.resize(i + 1);
  return apps_[i];
}

void SloEngine::BeginTick(std::int64_t tick) {
  // Advance the ring one slot per elapsed tick (capped at the window size:
  // a longer gap clears the whole window anyway).
  std::int64_t steps = tick_ < 0 ? 1 : tick - tick_;
  steps = std::min<std::int64_t>(
      std::max<std::int64_t>(steps, 0),
      static_cast<std::int64_t>(burn_ring_.size()));
  for (std::int64_t i = 0; i < steps; ++i) {
    burn_head_ = (burn_head_ + 1) % burn_ring_.size();
    burn_ring_[burn_head_] = BurnSlot{};
  }
  tick_ = tick;
}

void SloEngine::CountViolation(LifecycleSpan& span, std::int64_t age_ticks) {
  span.slo_flagged = true;
  ++violations_;
  ++AppSlot(span.app).violations;
  ++burn_ring_[burn_head_].bad;
  if (JournalEnabled()) {
    EmitDecision(DecisionKind::kEvent, Cause::kSloViolated, span.container,
                 /*machine=*/-1, /*other=*/span.app, /*detail=*/age_ticks);
  }
  ALADDIN_METRIC_ADD("slo/violations", 1);
}

void SloEngine::OnAdmitted(LifecycleSpan& span, std::int64_t wait_ticks) {
  ALADDIN_DCHECK(wait_ticks >= 0) << "negative admission wait";
  // Prometheus: aladdin_admission_wait_ticks (geometric buckets; the exact
  // integer accounting below stays the identity-checked source of truth).
  ALADDIN_METRIC_OBSERVE("admission_wait_ticks", "ticks",
                         static_cast<double>(wait_ticks));
  ++admitted_;
  wait_max_ = std::max(wait_max_, wait_ticks);
  const auto slot = static_cast<std::size_t>(wait_ticks);
  // analyze:allow(A103) dense wait histogram, grows to the max wait seen
  if (slot >= wait_counts_.size()) wait_counts_.resize(slot + 1, 0);
  ++wait_counts_[slot];

  AppSlo& app = AppSlot(span.app);
  ++app.admitted;
  app.wait_sum += wait_ticks;
  app.wait_max = std::max(app.wait_max, wait_ticks);
  // analyze:allow(A103) dense wait histogram, grows to the max wait seen
  if (slot >= app.wait_counts.size()) app.wait_counts.resize(slot + 1, 0);
  ++app.wait_counts[slot];

  if (span.shard >= 0) {
    const auto s = static_cast<std::size_t>(span.shard);
    // analyze:allow(A103) grown once to the shard count
    if (s >= shards_.size()) shards_.resize(s + 1);
    ++shards_[s].admitted;
    shards_[s].wait_max = std::max(shards_[s].wait_max, wait_ticks);
  }

  if (wait_ticks <= objective_.wait_ticks) {
    ++within_;
    ++app.within;
    if (span.shard >= 0) {
      ++shards_[static_cast<std::size_t>(span.shard)].within;
    }
    ++burn_ring_[burn_head_].good;
  } else if (!span.slo_flagged) {
    // Placed late without ever being seen pending past the objective
    // (arrival and crossing inside the same resolve window).
    CountViolation(span, wait_ticks);
  }
}

void SloEngine::ObservePending(LifecycleSpan& span, std::int64_t now) {
  if (span.slo_flagged) return;
  const std::int64_t age = span.PendingAge(now);
  // A span pending at the end of `now` places at `now + 1` at the
  // earliest, so its eventual wait is >= age; crossing is final.
  if (age > objective_.wait_ticks) CountViolation(span, age);
}

std::int64_t SloEngine::budget_bp() const {
  const auto bp =
      static_cast<std::int64_t>(std::llround((100.0 - objective_.percent) *
                                             100.0));
  return std::max<std::int64_t>(bp, 1);
}

SloSnapshot SloEngine::Snapshot(std::size_t app_rows) const {
  SloSnapshot snap;
  snap.objective = objective_;
  snap.tick = tick_;
  snap.admitted = admitted_;
  snap.within = within_;
  snap.violations = violations_;
  snap.wait_max = wait_max_;
  snap.p50 = PercentileFromCounts(wait_counts_, 1, 2);
  snap.p99 = PercentileFromCounts(wait_counts_, 99, 100);
  snap.p999 = PercentileFromCounts(wait_counts_, 999, 1000);
  const std::int64_t judged = within_ + violations_;
  snap.attainment_pct =
      judged == 0 ? 100.0
                  : 100.0 * static_cast<double>(within_) /
                        static_cast<double>(judged);

  std::int64_t good = 0;
  std::int64_t bad = 0;
  for (const BurnSlot& slot : burn_ring_) {
    good += slot.good;
    bad += slot.bad;
  }
  const double budget = std::max((100.0 - objective_.percent) / 100.0, 1e-9);
  snap.burn_rate = (good + bad) == 0
                       ? 0.0
                       : (static_cast<double>(bad) /
                          static_cast<double>(good + bad)) /
                             budget;

  for (std::size_t i = 0; i < apps_.size(); ++i) {
    const AppSlo& app = apps_[i];
    if (app.admitted == 0 && app.violations == 0) continue;
    ++snap.apps_total;
    SloAppRow row;
    row.app = static_cast<std::int32_t>(i);
    row.name = i < app_names_.size() ? app_names_[i] : std::string{};
    row.admitted = app.admitted;
    row.within = app.within;
    row.violations = app.violations;
    row.wait_max = app.wait_max;
    row.p50 = PercentileFromCounts(app.wait_counts, 1, 2);
    row.p99 = PercentileFromCounts(app.wait_counts, 99, 100);
    row.p999 = PercentileFromCounts(app.wait_counts, 999, 1000);
    snap.apps.push_back(std::move(row));
  }
  // Worst-first, deterministic ties: most violations, then most admitted
  // (busiest), then app id.
  std::sort(snap.apps.begin(), snap.apps.end(),
            [](const SloAppRow& a, const SloAppRow& b) {
              if (a.violations != b.violations) {
                return a.violations > b.violations;
              }
              if (a.admitted != b.admitted) return a.admitted > b.admitted;
              return a.app < b.app;
            });
  if (snap.apps.size() > app_rows) snap.apps.resize(app_rows);

  for (std::size_t s = 0; s < shards_.size(); ++s) {
    SloShardRow row;
    row.shard = static_cast<std::int32_t>(s);
    row.admitted = shards_[s].admitted;
    row.within = shards_[s].within;
    row.wait_max = shards_[s].wait_max;
    snap.shards.push_back(row);
  }
  return snap;
}

// ---------------------------------------------------------------------------
// Introspection hub.

namespace {

struct IntrospectionHub {
  Mutex mutex;
  IntrospectionStatus status ALADDIN_GUARDED_BY(mutex);
  bool published ALADDIN_GUARDED_BY(mutex) = false;
};

IntrospectionHub& Hub() {
  // analyze:allow(A101) allocated once per process, intentionally leaked
  static IntrospectionHub* const hub = new IntrospectionHub;
  return *hub;
}

}  // namespace

void PublishIntrospection(IntrospectionStatus status) {
  IntrospectionHub& hub = Hub();
  MutexLock lock(hub.mutex);
  hub.status = std::move(status);
  hub.published = true;
}

IntrospectionStatus IntrospectionSnapshot() {
  IntrospectionHub& hub = Hub();
  MutexLock lock(hub.mutex);
  return hub.status;
}

bool IntrospectionPublished() {
  IntrospectionHub& hub = Hub();
  MutexLock lock(hub.mutex);
  return hub.published;
}

std::string RenderStatusz(const IntrospectionStatus& status) {
  std::string out;
  out.reserve(1024);
  AppendF(out, "aladdin statusz — tick %lld\n",
          static_cast<long long>(status.tick));
  const SloSnapshot& slo = status.slo;
  AppendF(out,
          "objective: %.2f%% of containers placed within %lld tick(s), "
          "burn window %lld tick(s)\n",
          slo.objective.percent,
          static_cast<long long>(slo.objective.wait_ticks),
          static_cast<long long>(slo.objective.burn_window_ticks));
  AppendF(out,
          "slo: admitted=%lld within=%lld violations=%lld "
          "attainment=%.2f%% burn=%.2f\n",
          static_cast<long long>(slo.admitted),
          static_cast<long long>(slo.within),
          static_cast<long long>(slo.violations), slo.attainment_pct,
          slo.burn_rate);
  AppendF(out, "wait ticks: p50=%lld p99=%lld p999=%lld max=%lld\n",
          static_cast<long long>(slo.p50), static_cast<long long>(slo.p99),
          static_cast<long long>(slo.p999),
          static_cast<long long>(slo.wait_max));
  AppendF(out, "pending: open=%zu age p50=%lld p99=%lld p999=%lld max=%lld\n",
          status.pending_ages.open,
          static_cast<long long>(status.pending_ages.p50),
          static_cast<long long>(status.pending_ages.p99),
          static_cast<long long>(status.pending_ages.p999),
          static_cast<long long>(status.pending_ages.max));

  if (!status.shards.empty()) {
    AppendF(out, "\n%5s %9s %8s %8s %9s %9s %9s %8s\n", "shard", "machines",
            "routed", "placed", "unplaced", "solve_ms", "admitted", "within");
    for (const IntrospectionShard& shard : status.shards) {
      std::int64_t admitted = 0;
      std::int64_t within = 0;
      for (const SloShardRow& row : slo.shards) {
        if (row.shard == shard.shard) {
          admitted = row.admitted;
          within = row.within;
          break;
        }
      }
      AppendF(out, "%5d %9zu %8zu %8zu %9zu %9.2f %9lld %8lld\n", shard.shard,
              shard.machines, shard.routed, shard.placed, shard.unplaced,
              shard.solve_seconds * 1e3, static_cast<long long>(admitted),
              static_cast<long long>(within));
    }
  }

  if (!status.oldest_pending.empty()) {
    AppendF(out, "\noldest pending\n%9s %-24s %6s %8s %s\n", "container",
            "app", "age", "attempts", "cause");
    for (std::size_t i = 0; i < status.oldest_pending.size(); ++i) {
      const PendingRow& row = status.oldest_pending[i];
      const char* name = i < status.oldest_pending_app.size()
                             ? status.oldest_pending_app[i].c_str()
                             : "";
      AppendF(out, "%9d %-24s %6lld %8lld %s\n", row.container, name,
              static_cast<long long>(row.age_ticks),
              static_cast<long long>(row.attempts), CauseName(row.last_cause));
    }
  }
  return out;
}

std::string RenderSloJson(const IntrospectionStatus& status) {
  const SloSnapshot& slo = status.slo;
  std::string out;
  out.reserve(1024);
  AppendF(out, "{\"tick\":%lld,", static_cast<long long>(status.tick));
  AppendF(out,
          "\"objective\":{\"wait_ticks\":%lld,\"percent\":%.4f,"
          "\"burn_window_ticks\":%lld},",
          static_cast<long long>(slo.objective.wait_ticks),
          slo.objective.percent,
          static_cast<long long>(slo.objective.burn_window_ticks));
  AppendF(out,
          "\"admitted\":%lld,\"within\":%lld,\"violations\":%lld,"
          "\"attainment_pct\":%.4f,\"burn_rate\":%.4f,",
          static_cast<long long>(slo.admitted),
          static_cast<long long>(slo.within),
          static_cast<long long>(slo.violations), slo.attainment_pct,
          slo.burn_rate);
  AppendF(out, "\"wait\":{\"p50\":%lld,\"p99\":%lld,\"p999\":%lld,\"max\":%lld},",
          static_cast<long long>(slo.p50), static_cast<long long>(slo.p99),
          static_cast<long long>(slo.p999),
          static_cast<long long>(slo.wait_max));
  AppendF(out,
          "\"pending\":{\"open\":%zu,\"p50\":%lld,\"p99\":%lld,"
          "\"p999\":%lld,\"max\":%lld},",
          status.pending_ages.open,
          static_cast<long long>(status.pending_ages.p50),
          static_cast<long long>(status.pending_ages.p99),
          static_cast<long long>(status.pending_ages.p999),
          static_cast<long long>(status.pending_ages.max));
  AppendF(out, "\"apps_total\":%zu,\"apps\":[", slo.apps_total);
  for (std::size_t i = 0; i < slo.apps.size(); ++i) {
    const SloAppRow& row = slo.apps[i];
    if (i > 0) out += ',';
    AppendF(out, "{\"app\":%d,\"name\":", row.app);
    AppendJsonString(out, row.name);
    AppendF(out,
            ",\"admitted\":%lld,\"within\":%lld,\"violations\":%lld,"
            "\"p50\":%lld,\"p99\":%lld,\"p999\":%lld,\"wait_max\":%lld}",
            static_cast<long long>(row.admitted),
            static_cast<long long>(row.within),
            static_cast<long long>(row.violations),
            static_cast<long long>(row.p50), static_cast<long long>(row.p99),
            static_cast<long long>(row.p999),
            static_cast<long long>(row.wait_max));
  }
  out += "],\"shards\":[";
  for (std::size_t i = 0; i < slo.shards.size(); ++i) {
    const SloShardRow& row = slo.shards[i];
    if (i > 0) out += ',';
    AppendF(out,
            "{\"shard\":%d,\"admitted\":%lld,\"within\":%lld,"
            "\"wait_max\":%lld}",
            row.shard, static_cast<long long>(row.admitted),
            static_cast<long long>(row.within),
            static_cast<long long>(row.wait_max));
  }
  out += "]}";
  return out;
}

}  // namespace aladdin::obs

#include "obs/runtime.h"

#include <atomic>

namespace aladdin::obs {

namespace {
std::atomic<std::uint32_t> g_mode{0};
}  // namespace

std::uint32_t CurrentMode() {
  return g_mode.load(std::memory_order_relaxed);
}

void SetMetricsEnabled(bool enabled) {
  internal::SetModeBit(kMetrics, enabled);
}

namespace internal {
void SetModeBit(std::uint32_t bit, bool enabled) {
  if (enabled) {
    g_mode.fetch_or(bit, std::memory_order_relaxed);
  } else {
    g_mode.fetch_and(~bit, std::memory_order_relaxed);
  }
}
}  // namespace internal

}  // namespace aladdin::obs

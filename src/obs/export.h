// Live metrics export: renders the obs registry in Prometheus text
// exposition format (v0.0.4), either to a file per run or continuously via
// a tiny optional HTTP listener.
//
//   obs::WritePrometheusFile("metrics.prom");          // one snapshot
//
//   obs::PrometheusListener listener;
//   listener.Start(9464);                              // GET -> snapshot
//   ... run ...
//   listener.Stop();
//
// Metric names are sanitised ("core/unplaced" -> aladdin_core_unplaced);
// counters map to `counter`, gauges to `gauge`, histograms to cumulative
// `le`-bucketed `histogram` series with _sum/_count, phases to
// aladdin_phase_seconds_total / aladdin_phase_calls_total labelled by phase.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "obs/metrics.h"

namespace aladdin {
class ThreadPool;
}  // namespace aladdin

namespace aladdin::obs {

// Renders one snapshot as Prometheus text exposition format.
[[nodiscard]] std::string RenderPrometheus(const MetricsSnapshot& snapshot);

// RenderPrometheus of the live registry, written (truncating) to `path`.
// False (with a logged error) on I/O failure.
[[nodiscard]] bool WritePrometheusFile(const std::string& path);

// Minimal single-connection HTTP introspection server. Routes:
//   /healthz  -> "ok" (liveness probe)
//   /statusz  -> text tables: SLO attainment, per-shard load,
//                oldest-pending queue residents (obs::RenderStatusz)
//   /slo      -> the same snapshot as JSON (obs::RenderSloJson)
//   any other -> the live registry in Prometheus exposition format
// The accept loop runs on a dedicated one-worker ThreadPool; Stop() (or
// destruction) shuts it down. Best-effort by design: scrape failures are
// the scraper's problem, never the scheduler's.
class PrometheusListener {
 public:
  PrometheusListener();
  ~PrometheusListener();
  PrometheusListener(const PrometheusListener&) = delete;
  PrometheusListener& operator=(const PrometheusListener&) = delete;

  // Binds 127.0.0.1:port and starts serving. False if the socket could not
  // be created/bound (logged).
  [[nodiscard]] bool Start(std::uint16_t port);
  void Stop();

  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_relaxed);
  }
  // Port actually bound (useful with Start(0) picking an ephemeral port).
  [[nodiscard]] std::uint16_t port() const {
    return port_.load(std::memory_order_relaxed);
  }

 private:
  void ServeLoop();

  // Created by Start, destroyed (joined) by Stop; ServeLoop never touches it.
  std::unique_ptr<ThreadPool> pool_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  // Atomics: ServeLoop polls listen_fd_ on the pool thread while port() may
  // be read from any thread; Stop still joins before closing the fd so the
  // loop never sees a dangling descriptor.
  std::atomic<int> listen_fd_{-1};
  std::atomic<std::uint16_t> port_{0};
};

}  // namespace aladdin::obs

#include "obs/journal.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/log.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace aladdin::obs {
namespace {

const char* const kCauseNames[] = {
    "none",
    "admitted_direct",
    "admitted_after_repair",
    "short_lived_best_fit",
    "capacity_exhausted_cpu",
    "capacity_exhausted_mem",
    "anti_affinity_intra_app",
    "anti_affinity_inter_app",
    "no_admissible_path",
    "repair_attempt_budget",
    "migrated_for_repair",
    "migrated_for_rebalance",
    "preempted_by_priority",
    "depth_limit_stop",
    "isomorphism_prune",
    "pod_retired",
    "baseline_unplaced",
    "pod_arrived",
    "shard_routed",
    "shard_spilled",
    "slo_violated",
    "batch_scheduled",
    "batch_deferred",
    "alert_opened",
    "alert_resolved",
};
static_assert(sizeof(kCauseNames) / sizeof(kCauseNames[0]) ==
                  static_cast<std::size_t>(Cause::kCount),
              "kCauseNames out of sync with Cause");

const char* const kKindNames[] = {
    "place", "reject", "migrate", "preempt", "unplaced", "event",
};
static_assert(sizeof(kKindNames) / sizeof(kKindNames[0]) ==
                  static_cast<std::size_t>(DecisionKind::kCount),
              "kKindNames out of sync with DecisionKind");

// Per-thread ring, same discipline as obs/trace: fixed capacity, oldest
// overwritten, drops counted, shared ownership so records survive thread
// exit and are still drained at end of run.
struct ThreadBuffer {
  explicit ThreadBuffer(std::size_t capacity) : ring(capacity) {}

  void Append(const Decision& decision) {
    MutexLock lock(mutex);
    if (ring.empty()) return;
    ring[head] = decision;
    head = (head + 1) % ring.size();
    if (size < ring.size()) {
      ++size;
    } else {
      ++dropped;
    }
  }

  Mutex mutex;
  std::vector<Decision> ring
      ALADDIN_GUARDED_BY(mutex);  // fixed capacity; oldest overwritten
  std::size_t head ALADDIN_GUARDED_BY(mutex) = 0;  // next write position
  std::size_t size ALADDIN_GUARDED_BY(mutex) = 0;
  std::uint64_t dropped ALADDIN_GUARDED_BY(mutex) = 0;
};

struct JournalRegistry {
  Mutex mutex;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers
      ALADDIN_GUARDED_BY(mutex);
  std::size_t ring_capacity ALADDIN_GUARDED_BY(mutex) =
      JournalOptions{}.ring_capacity;
  std::string sink_path ALADDIN_GUARDED_BY(mutex);
  // Open iff sink_path is non-empty and Start succeeded.
  std::ofstream sink ALADDIN_GUARDED_BY(mutex);

  std::atomic<std::uint64_t> next_seq{0};
  std::atomic<std::uint64_t> emitted{0};
  std::atomic<std::int64_t> tick{0};
};

JournalRegistry& Journal() {
  static JournalRegistry* registry = new JournalRegistry();  // never destroyed
  return *registry;
}

ThreadBuffer& ThisThreadBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    JournalRegistry& registry = Journal();
    MutexLock lock(registry.mutex);
    auto created = std::make_shared<ThreadBuffer>(registry.ring_capacity);
    registry.buffers.push_back(created);
    return created;
  }();
  return *buffer;
}

// Collects every buffered record in seq order, optionally clearing the
// rings. The registry lock is held across the buffer sweep so a concurrent
// StartJournal cannot resize rings mid-collection.
std::vector<Decision> Collect(bool clear) {
  JournalRegistry& registry = Journal();
  std::vector<Decision> out;
  MutexLock lock(registry.mutex);
  for (const std::shared_ptr<ThreadBuffer>& buffer : registry.buffers) {
    MutexLock buffer_lock(buffer->mutex);
    const std::size_t capacity = buffer->ring.size();
    if (capacity > 0) {
      const std::size_t oldest =
          (buffer->head + capacity - buffer->size) % capacity;
      for (std::size_t k = 0; k < buffer->size; ++k) {
        out.push_back(buffer->ring[(oldest + k) % capacity]);
      }
    }
    if (clear) {
      buffer->head = 0;
      buffer->size = 0;
    }
  }
  std::sort(out.begin(), out.end(), [](const Decision& a, const Decision& b) {
    return a.seq < b.seq;
  });
  return out;
}

// Flight-recorder dump on ALADDIN_CHECK failure: write whatever the rings
// still hold next to the sink (or to a default name in flight-recorder
// mode), so a crash leaves the last N decisions behind for explain.py.
void CrashDumpJournal() {
  static std::atomic<bool> dumping{false};
  if (dumping.exchange(true)) return;  // re-entrant check: give up
  const std::vector<Decision> decisions = Collect(/*clear=*/false);
  if (decisions.empty()) return;
  std::string path;
  {
    JournalRegistry& registry = Journal();
    MutexLock lock(registry.mutex);
    path = registry.sink_path.empty() ? "aladdin_journal.crash.jsonl"
                                      : registry.sink_path + ".crash";
  }
  // Plain stdio: the process is aborting, so this must not depend on
  // stream-local state; best effort, errors ignored.
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return;
  for (const Decision& d : decisions) {
    const std::string line = DecisionToJson(d);
    std::fwrite(line.data(), 1, line.size(), file);
    std::fputc('\n', file);
  }
  std::fclose(file);
  LOG_ERROR << "journal flight recorder dumped " << decisions.size()
            << " decisions to " << path;
}

// --- minimal JSON field scanners for DecisionFromJson ----------------------

bool FindRawValue(const std::string& line, const std::string& key,
                  std::string* out) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  std::size_t begin = at + needle.size();
  while (begin < line.size() && line[begin] == ' ') ++begin;
  std::size_t end = begin;
  if (begin < line.size() && line[begin] == '"') {
    end = line.find('"', begin + 1);
    if (end == std::string::npos) return false;
    *out = line.substr(begin + 1, end - begin - 1);
    return true;
  }
  while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  if (end == begin) return false;
  *out = line.substr(begin, end - begin);
  return true;
}

bool FindInt(const std::string& line, const std::string& key,
             std::int64_t* out) {
  std::string raw;
  if (!FindRawValue(line, key, &raw)) return false;
  char* parse_end = nullptr;
  const long long value = std::strtoll(raw.c_str(), &parse_end, 10);
  if (parse_end == raw.c_str() || *parse_end != '\0') return false;
  *out = static_cast<std::int64_t>(value);
  return true;
}

// Per-thread deferred-capture state (ScopedDecisionCapture). A raw pointer
// is enough: the capture scope outlives every EmitDecision it redirects.
struct CaptureState {
  std::vector<Decision>* sink = nullptr;
  std::int32_t shard = -1;
};
thread_local CaptureState g_capture;

}  // namespace

const char* CauseName(Cause cause) {
  const auto i = static_cast<std::size_t>(cause);
  if (i >= static_cast<std::size_t>(Cause::kCount)) return "?";
  return kCauseNames[i];
}

Cause CauseFromName(const std::string& name) {
  for (std::size_t i = 0; i < static_cast<std::size_t>(Cause::kCount); ++i) {
    if (name == kCauseNames[i]) return static_cast<Cause>(i);
  }
  return Cause::kCount;
}

const char* DecisionKindName(DecisionKind kind) {
  const auto i = static_cast<std::size_t>(kind);
  if (i >= static_cast<std::size_t>(DecisionKind::kCount)) return "?";
  return kKindNames[i];
}

void StartJournal(const JournalOptions& options) {
  JournalRegistry& registry = Journal();
  {
    MutexLock lock(registry.mutex);
    registry.ring_capacity = options.ring_capacity;
    for (const std::shared_ptr<ThreadBuffer>& buffer : registry.buffers) {
      MutexLock buffer_lock(buffer->mutex);
      buffer->ring.assign(options.ring_capacity, Decision{});
      buffer->head = 0;
      buffer->size = 0;
      buffer->dropped = 0;
    }
    if (registry.sink.is_open()) registry.sink.close();
    registry.sink_path = options.jsonl_path;
    if (!registry.sink_path.empty()) {
      registry.sink.open(registry.sink_path,
                         std::ios::out | std::ios::trunc);
      if (!registry.sink) {
        LOG_ERROR << "cannot open journal sink " << registry.sink_path;
        registry.sink_path.clear();
      }
    }
    registry.next_seq.store(0, std::memory_order_relaxed);
    registry.emitted.store(0, std::memory_order_relaxed);
    registry.tick.store(0, std::memory_order_relaxed);
  }
  SetCheckFailureHook(&CrashDumpJournal);
  internal::SetModeBit(kJournal, true);
}

void StopJournal() { internal::SetModeBit(kJournal, false); }

bool JournalSinkOpen() {
  JournalRegistry& registry = Journal();
  MutexLock lock(registry.mutex);
  return registry.sink.is_open();
}

void SetJournalTick(std::int64_t tick) {
  if (!JournalEnabled()) return;
  JournalRegistry& registry = Journal();
  registry.tick.store(tick, std::memory_order_relaxed);
  bool has_sink = false;
  {
    MutexLock lock(registry.mutex);
    has_sink = registry.sink.is_open();
  }
  if (has_sink) (void)FlushJournal();
}

std::int64_t JournalTick() {
  return Journal().tick.load(std::memory_order_relaxed);
}

void EmitDecision(DecisionKind kind, Cause cause, std::int32_t container,
                  std::int32_t machine, std::int32_t other,
                  std::int64_t detail) {
  if (!JournalEnabled()) return;
  Decision decision;
  decision.kind = kind;
  decision.cause = cause;
  decision.container = container;
  decision.machine = machine;
  decision.other = other;
  decision.detail = detail;
  if (g_capture.sink != nullptr) {
    // Parked: no seq yet — the coordinator's serial replay assigns it.
    decision.shard = g_capture.shard;
    g_capture.sink->push_back(decision);
    return;
  }
  JournalRegistry& registry = Journal();
  decision.seq = registry.next_seq.fetch_add(1, std::memory_order_relaxed);
  decision.tick = registry.tick.load(std::memory_order_relaxed);
  registry.emitted.fetch_add(1, std::memory_order_relaxed);
  ThisThreadBuffer().Append(decision);
}

ScopedDecisionCapture::ScopedDecisionCapture(std::vector<Decision>* sink,
                                             std::int32_t shard)
    : previous_sink_(g_capture.sink), previous_shard_(g_capture.shard) {
  g_capture.sink = sink;
  g_capture.shard = shard;
}

ScopedDecisionCapture::~ScopedDecisionCapture() {
  g_capture.sink = previous_sink_;
  g_capture.shard = previous_shard_;
}

void EmitCapturedDecisions(const std::vector<Decision>& decisions) {
  if (!JournalEnabled() || decisions.empty()) return;
  JournalRegistry& registry = Journal();
  ThreadBuffer& buffer = ThisThreadBuffer();
  for (const Decision& captured : decisions) {
    Decision decision = captured;
    decision.seq = registry.next_seq.fetch_add(1, std::memory_order_relaxed);
    decision.tick = registry.tick.load(std::memory_order_relaxed);
    registry.emitted.fetch_add(1, std::memory_order_relaxed);
    buffer.Append(decision);
  }
}

std::vector<Decision> JournalSnapshot() { return Collect(/*clear=*/false); }

std::uint64_t DroppedJournalDecisions() {
  JournalRegistry& registry = Journal();
  MutexLock lock(registry.mutex);
  std::uint64_t dropped = 0;
  for (const std::shared_ptr<ThreadBuffer>& buffer : registry.buffers) {
    MutexLock buffer_lock(buffer->mutex);
    dropped += buffer->dropped;
  }
  return dropped;
}

std::uint64_t EmittedJournalDecisions() {
  return Journal().emitted.load(std::memory_order_relaxed);
}

std::string DecisionToJson(const Decision& decision) {
  char buf[240];
  // `shard` is emitted only when assigned (>= 0): unsharded and K=1 runs
  // keep the exact pre-sharding line format, which the bit-identity
  // equivalence tests compare byte for byte.
  if (decision.shard >= 0) {
    std::snprintf(buf, sizeof(buf),
                  "{\"seq\":%llu,\"tick\":%lld,\"kind\":\"%s\","
                  "\"cause\":\"%s\",\"container\":%d,\"machine\":%d,"
                  "\"other\":%d,\"detail\":%lld,\"shard\":%d}",
                  static_cast<unsigned long long>(decision.seq),
                  static_cast<long long>(decision.tick),
                  DecisionKindName(decision.kind), CauseName(decision.cause),
                  decision.container, decision.machine, decision.other,
                  static_cast<long long>(decision.detail), decision.shard);
    return buf;
  }
  std::snprintf(buf, sizeof(buf),
                "{\"seq\":%llu,\"tick\":%lld,\"kind\":\"%s\","
                "\"cause\":\"%s\",\"container\":%d,\"machine\":%d,"
                "\"other\":%d,\"detail\":%lld}",
                static_cast<unsigned long long>(decision.seq),
                static_cast<long long>(decision.tick),
                DecisionKindName(decision.kind), CauseName(decision.cause),
                decision.container, decision.machine, decision.other,
                static_cast<long long>(decision.detail));
  return buf;
}

bool DecisionFromJson(const std::string& line, Decision* decision) {
  Decision out;
  std::int64_t value = 0;
  std::string kind;
  std::string cause;
  if (!FindInt(line, "seq", &value)) return false;
  out.seq = static_cast<std::uint64_t>(value);
  if (!FindInt(line, "tick", &out.tick)) return false;
  if (!FindRawValue(line, "kind", &kind) ||
      !FindRawValue(line, "cause", &cause)) {
    return false;
  }
  const Cause parsed_cause = CauseFromName(cause);
  if (parsed_cause == Cause::kCount) return false;
  out.cause = parsed_cause;
  bool kind_found = false;
  for (std::size_t i = 0;
       i < static_cast<std::size_t>(DecisionKind::kCount); ++i) {
    if (kind == kKindNames[i]) {
      out.kind = static_cast<DecisionKind>(i);
      kind_found = true;
      break;
    }
  }
  if (!kind_found) return false;
  if (!FindInt(line, "container", &value)) return false;
  out.container = static_cast<std::int32_t>(value);
  if (!FindInt(line, "machine", &value)) return false;
  out.machine = static_cast<std::int32_t>(value);
  if (!FindInt(line, "other", &value)) return false;
  out.other = static_cast<std::int32_t>(value);
  if (!FindInt(line, "detail", &out.detail)) return false;
  // Optional: absent in unsharded journals (defaults to -1).
  if (FindInt(line, "shard", &value)) {
    out.shard = static_cast<std::int32_t>(value);
  }
  *decision = out;
  return true;
}

std::string JournalToJsonl() {
  const std::vector<Decision> decisions = Collect(/*clear=*/false);
  std::string out;
  out.reserve(decisions.size() * 96);
  for (const Decision& d : decisions) {
    out += DecisionToJson(d);
    out += '\n';
  }
  return out;
}

bool FlushJournal() {
  JournalRegistry& registry = Journal();
  {
    MutexLock lock(registry.mutex);
    if (!registry.sink.is_open()) return true;
  }
  // Collect (which clears the rings) outside the registry write below so the
  // buffer locks are not held while touching the filesystem.
  const std::vector<Decision> decisions = Collect(/*clear=*/true);
  MutexLock lock(registry.mutex);
  if (!registry.sink.is_open()) return true;
  for (const Decision& d : decisions) {
    registry.sink << DecisionToJson(d) << '\n';
  }
  registry.sink.flush();
  if (!registry.sink) {
    LOG_ERROR << "failed writing journal sink " << registry.sink_path;
    return false;
  }
  return true;
}

bool FinishJournal() {
  StopJournal();
  const bool ok = FlushJournal();
  JournalRegistry& registry = Journal();
  MutexLock lock(registry.mutex);
  if (registry.sink.is_open()) registry.sink.close();
  return ok;
}

}  // namespace aladdin::obs

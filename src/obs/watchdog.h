// Cluster health watchdog: a deterministic online anomaly-detection engine
// evaluated once per tick from serial resolver sections.
//
// Six detectors over the signals the observability plane already records
// (SLO burn, pending ages, lifecycle epochs, shard load, solve effort,
// give-up causes) turn raw streams into typed alerts with provenance: a
// closed AlertKind vocabulary, an open/update/resolve lifecycle with
// hysteresis, a severity, and a structured integer evidence payload.
//
// Determinism bar (same as the journal / SLO engine): every firing
// decision is exact integer or fixed-point window math — comparisons are
// cross-multiplications, never divisions, and no float ever feeds a
// threshold. ObserveTick must only be called from serial sections, so the
// alert stream (ids, open/resolve ticks, journal events) is bit-identical
// across `--threads 1` vs N and, for a fixed shard count K, across any
// thread count. Wall-clock time appears only as *evidence* on the
// solve-regression alert; the firing signal is the solver's deterministic
// effort counters (explored paths + rounds + prunes), which the
// equivalence tests already pin across thread counts.
//
// Alerts are first-class journal events (Cause::kAlertOpened /
// kAlertResolved), export as aladdin_alerts_* Prometheus metrics, and
// render on the listener's /alertz endpoint (RenderAlertz / JSON).
//
// Layering: obs sits below cluster/core/k8s, so the engine consumes a
// plain-integer WatchdogTickInput assembled by the k8s resolver.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/journal.h"

namespace aladdin::obs {

// Closed detector vocabulary. tools/explain.py and check_journal.py key on
// the names; extend only together with kAlertKindNames in watchdog.cpp.
enum class AlertKind : std::uint8_t {  // analyze:closed_enum
  kSloBurnRate = 0,   // fast+slow window burn >= multiple x error budget
  kPendingAgeDrift,   // pending-age p99 >= multiple x trailing baseline
  kAppFlapping,       // lifecycle-epoch re-opens per app over a window
  kShardImbalance,    // max/median shard utilization or spill ratio
  kSolveRegression,   // solve effort >= multiple x trailing baseline
  kCauseMixShift,     // give-up cause histogram L1 vs trailing window
  kCount
};

[[nodiscard]] const char* AlertKindName(AlertKind kind);
// Inverse of AlertKindName; returns kCount for unknown names.
[[nodiscard]] AlertKind AlertKindFromName(const std::string& name);

enum class AlertSeverity : std::uint8_t {  // analyze:closed_enum
  kWarning = 0,  // breached the configured threshold
  kCritical,     // breached twice the configured threshold
  kCount
};

[[nodiscard]] const char* AlertSeverityName(AlertSeverity severity);

enum class AlertState : std::uint8_t {  // analyze:closed_enum
  kOpen = 0,
  kResolved,
  kCount
};

// Exact-integer evidence snapshot, refreshed on every breaching tick while
// the alert is open. `observed` / `threshold` / `baseline` share one
// detector-specific fixed-point scale (documented per detector in
// WatchdogOptions); `window` is the tick span the math ran over; `extra`
// is detector-specific context (wall micros for kSolveRegression, spill
// permille for kShardImbalance) that never feeds a firing decision.
struct AlertEvidence {
  std::int64_t observed = 0;
  std::int64_t threshold = 0;
  std::int64_t baseline = 0;
  std::int64_t window = 0;
  std::int64_t extra = 0;
};

struct Alert {
  std::int32_t id = -1;  // assigned in open order (deterministic)
  AlertKind kind = AlertKind::kCount;
  AlertSeverity severity = AlertSeverity::kWarning;
  // Alert scope: app id for kAppFlapping, shard id for kShardImbalance,
  // -1 for cluster-wide detectors.
  std::int32_t subject = -1;
  std::int64_t opened_tick = -1;
  std::int64_t last_update_tick = -1;
  std::int64_t resolved_tick = -1;  // -1 while open
  std::int64_t breach_ticks = 0;    // ticks in breach while open
  AlertEvidence evidence;           // latest breaching observation
  AlertState state = AlertState::kOpen;
};

// All thresholds are exact integers; percentages are *_pct (100 = 1x),
// ratios are permille or basis points as named. Detectors fire only after
// `open_after` consecutive breaching ticks and resolve only after
// `resolve_after` consecutive clear ticks (hysteresis), so a signal riding
// the boundary cannot flap the alert stream.
struct WatchdogOptions {
  std::int64_t open_after = 2;
  std::int64_t resolve_after = 2;

  // (1) kSloBurnRate: fire when BOTH the fast and the slow trailing window
  // burn the error budget at >= burn_multiple x the sustainable rate:
  //   bad * 10000 >= burn_multiple * budget_bp * (good + bad)
  // with budget_bp = (100 - objective.percent) in basis points. The dual
  // window is the standard SRE pattern: the slow window proves the spike
  // is sustained, the fast window makes detection and resolution prompt.
  bool slo_burn = true;
  std::int64_t burn_fast_window = 4;
  std::int64_t burn_slow_window = 16;
  std::int64_t burn_multiple = 8;
  std::int64_t burn_min_judged = 16;  // min good+bad in the slow window

  // (2) kPendingAgeDrift: fire when the per-tick pending-age p99 crosses a
  // multiple of its trailing-window mean:
  //   p99 * 100 * n >= drift_multiple_pct * sum(window)
  // requiring a full window and an absolute floor so an idle cluster
  // (baseline ~0) cannot trip on the first queued pod.
  bool pending_drift = true;
  std::int64_t drift_window = 16;
  std::int64_t drift_multiple_pct = 300;  // p99 >= 3x trailing mean
  std::int64_t drift_min_p99 = 4;         // absolute floor, in ticks

  // (3) kAppFlapping: fire per app when lifecycle-epoch re-opens
  // (preemptions / stale-binding re-arrivals) within the trailing window
  // reach the threshold. Subject = app id.
  bool app_flapping = true;
  std::int64_t flap_window = 8;
  std::int64_t flap_threshold = 3;  // re-opens per window

  // (4) kShardImbalance: fire when the hottest shard's utilization crosses
  // a multiple of the median (max_util * 100 >= multiple_pct * median) or
  // the routing spill ratio crosses spill_permille
  // (spilled * 1000 >= spill_permille * routed). Volume floors keep a
  // near-empty cluster quiet. Subject = the hottest / spill-heaviest shard.
  bool shard_imbalance = true;
  std::int64_t imbalance_multiple_pct = 200;      // max >= 2x median
  std::int64_t imbalance_min_util_permille = 200; // hot-shard floor
  std::int64_t spill_permille = 250;              // spilled/routed ratio
  std::int64_t imbalance_min_routed = 16;         // spill volume floor

  // (5) kSolveRegression: fire when the tick's deterministic solve effort
  // (explored paths + rounds + prunes, bit-identical across threads)
  // crosses a multiple of its trailing-window mean:
  //   cost * 100 * n >= latency_multiple_pct * sum(window)
  // Wall micros ride along as evidence only.
  bool solve_regression = true;
  std::int64_t latency_window = 16;
  std::int64_t latency_multiple_pct = 300;
  std::int64_t latency_min_cost = 256;  // absolute effort floor

  // (6) kCauseMixShift: fire when the tick's give-up cause histogram
  // diverges from the trailing window by L1 distance (over exact counts,
  // cross-multiplied so no normalization is needed):
  //   sum_c |cur[c]*base_total - base[c]*cur_total| * 1000
  //       >= causemix_l1_permille * cur_total * base_total
  // L1 over distributions lives in [0, 2000] permille.
  bool cause_mix = true;
  std::int64_t causemix_window = 16;
  std::int64_t causemix_l1_permille = 600;
  std::int64_t causemix_min_count = 32;  // floor on both totals
};

// Per-shard load sample for the imbalance detector. util_permille is
// used-cpu / capacity-cpu in exact integer permille, computed by the
// supplier (core::ShardedScheduler) from cpu-millis.
struct WatchdogShardLoad {
  std::int32_t shard = -1;
  std::int64_t machines = 0;
  std::int64_t routed = 0;
  std::int64_t spilled = 0;
  std::int64_t placed = 0;
  std::int64_t util_permille = 0;
};

// One tick's detector inputs, assembled by the k8s resolver from the SLO
// engine, lifecycle ledger, shard stats and schedule outcome. Everything
// is an exact integer; vectors are in ascending key order (the supplier's
// obligation) so window state updates deterministically.
struct WatchdogTickInput {
  std::int64_t tick = 0;
  // kSloBurnRate: this tick's burn-slot counts + the objective's budget.
  std::int64_t slo_good = 0;
  std::int64_t slo_bad = 0;
  std::int64_t slo_budget_bp = 100;
  // kPendingAgeDrift.
  std::int64_t pending_age_p99 = 0;
  std::int64_t pending_open = 0;
  // kAppFlapping: (app, re-opens this tick), ascending by app.
  std::vector<std::pair<std::int32_t, std::int64_t>> app_reopens;
  // kShardImbalance: ascending by shard; empty when K <= 1.
  std::vector<WatchdogShardLoad> shards;
  // kSolveRegression: deterministic effort + wall-clock evidence.
  std::int64_t solve_cost = 0;
  std::int64_t solve_wall_micros = 0;  // evidence only, never a signal
  // kCauseMixShift: give-up causes this tick, ascending by cause.
  std::vector<std::pair<Cause, std::int64_t>> giveup_causes;
};

struct WatchdogSnapshot {
  bool enabled = false;
  std::int64_t tick = -1;
  std::int64_t opened_total = 0;
  std::int64_t resolved_total = 0;
  std::int64_t open_now = 0;
  std::array<std::int64_t, static_cast<std::size_t>(AlertKind::kCount)>
      open_by_kind{};
  std::array<std::int64_t, static_cast<std::size_t>(AlertKind::kCount)>
      opened_by_kind{};
  // Every alert ever opened, in id order (open and resolved).
  std::vector<Alert> alerts;
};

class Watchdog {
 public:
  explicit Watchdog(WatchdogOptions options = {});

  [[nodiscard]] const WatchdogOptions& options() const { return options_; }

  // Runs every detector over one tick's inputs and steps each alert's
  // open/update/resolve lifecycle. Serial-section contract as EmitDecision:
  // journal events and alert ids are assigned in call order.
  void ObserveTick(const WatchdogTickInput& input);

  [[nodiscard]] WatchdogSnapshot Snapshot() const;

  [[nodiscard]] std::int64_t opened_total() const { return opened_total_; }
  [[nodiscard]] std::int64_t resolved_total() const { return resolved_total_; }
  [[nodiscard]] std::int64_t open_now() const { return open_now_; }

  // FNV-1a over every alert transition (open/resolve tick, kind, subject,
  // severity, evidence) — the bit-identity fingerprint the determinism
  // tests compare across thread and shard counts.
  [[nodiscard]] std::uint64_t Fingerprint() const { return fingerprint_; }

 private:
  // Hysteresis state for one (kind, subject) signal.
  struct SignalState {
    std::int32_t subject = -1;
    std::int64_t breach_streak = 0;
    std::int64_t clear_streak = 0;
    std::int32_t open_alert = -1;  // index into alerts_, -1 when closed
  };

  // Advances one signal's hysteresis given this tick's breach verdict.
  void StepSignal(AlertKind kind, SignalState& signal, bool breached,
                  bool critical, const AlertEvidence& evidence,
                  std::int64_t tick);
  void OpenAlert(AlertKind kind, SignalState& signal, bool critical,
                 const AlertEvidence& evidence, std::int64_t tick);
  void ResolveAlert(SignalState& signal, std::int64_t tick);
  SignalState& SubjectSignal(std::vector<SignalState>& signals,
                             std::int32_t subject);
  void Fold(std::uint64_t value);

  void CheckSloBurn(const WatchdogTickInput& input);
  void CheckPendingDrift(const WatchdogTickInput& input);
  void CheckAppFlapping(const WatchdogTickInput& input);
  void CheckShardImbalance(const WatchdogTickInput& input);
  void CheckSolveRegression(const WatchdogTickInput& input);
  void CheckCauseMix(const WatchdogTickInput& input);

  WatchdogOptions options_;
  std::int64_t tick_ = -1;
  std::int64_t opened_total_ = 0;
  std::int64_t resolved_total_ = 0;
  std::int64_t open_now_ = 0;
  std::array<std::int64_t, static_cast<std::size_t>(AlertKind::kCount)>
      open_by_kind_{};
  std::array<std::int64_t, static_cast<std::size_t>(AlertKind::kCount)>
      opened_by_kind_{};
  std::vector<Alert> alerts_;  // full history, dense by alert id
  std::uint64_t fingerprint_ = 14695981039346656037ull;  // FNV-1a offset

  // (1) dual burn windows: rings of per-tick (good, bad).
  struct BurnSlot {
    std::int64_t good = 0;
    std::int64_t bad = 0;
  };
  std::vector<BurnSlot> burn_fast_ring_;
  std::vector<BurnSlot> burn_slow_ring_;
  std::size_t burn_head_fast_ = 0;
  std::size_t burn_head_slow_ = 0;
  std::int64_t burn_seen_ = 0;  // ticks observed (window warm-up)
  SignalState burn_signal_;

  // (2) trailing p99 baseline ring (previous ticks, current excluded).
  std::vector<std::int64_t> drift_ring_;
  std::size_t drift_head_ = 0;
  std::int64_t drift_seen_ = 0;
  SignalState drift_signal_;

  // (3) per-app re-open windows: ring of per-tick (app, count) deltas;
  // window sums kept dense by app. Signals keyed by app subject.
  std::vector<std::vector<std::pair<std::int32_t, std::int64_t>>> flap_ring_;
  std::size_t flap_head_ = 0;
  std::vector<std::int64_t> flap_window_sum_;  // dense by app id
  std::vector<SignalState> flap_signals_;      // ascending by subject

  // (4) imbalance: stateless per tick bar the hysteresis signal. The
  // signal is cluster-wide (one imbalance alert at a time); the subject
  // records the hottest shard at open.
  SignalState imbalance_signal_;

  // (5) trailing solve-cost baseline ring.
  std::vector<std::int64_t> latency_ring_;
  std::size_t latency_head_ = 0;
  std::int64_t latency_seen_ = 0;
  SignalState latency_signal_;

  // (6) trailing cause histogram: ring of per-tick dense histograms.
  using CauseCounts =
      std::array<std::int64_t, static_cast<std::size_t>(Cause::kCount)>;
  std::vector<CauseCounts> causemix_ring_;
  std::size_t causemix_head_ = 0;
  std::int64_t causemix_seen_ = 0;
  CauseCounts causemix_base_{};  // running window sum
  SignalState causemix_signal_;
};

// /alertz renderers (human table / JSON) over the published snapshot —
// called from the listener's HTTP thread on a copy, same contract as
// RenderStatusz / RenderSloJson.
[[nodiscard]] std::string RenderAlertz(const WatchdogSnapshot& snapshot);
[[nodiscard]] std::string RenderAlertsJson(const WatchdogSnapshot& snapshot);

}  // namespace aladdin::obs

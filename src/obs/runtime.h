// Observability kill switches.
//
// The obs layer (metrics registry + scoped tracing) must cost nothing when
// nobody is looking at it, so it is gated twice:
//
//  * compile time — building with -DALADDIN_OBS_ENABLED=0 (CMake option
//    ALADDIN_OBS=OFF) compiles every ALADDIN_TRACE_* / ALADDIN_METRIC_*
//    macro down to nothing; the obs library still links so the snapshot /
//    export API keeps working (it just reports an empty registry);
//  * run time — a process-global mode mask, read with one relaxed atomic
//    load at the top of every instrumented scope. With both bits clear a
//    scope is a load + branch; no clock is read, no cell is touched.
//
// The two bits are independent: kMetrics arms the counters, gauges,
// histograms and phase-time accumulators; kTracing arms the per-thread
// trace-event ring buffers. Benches typically enable both (--metrics /
// --trace); the library default is everything off.
#pragma once

#include <cstdint>

#ifndef ALADDIN_OBS_ENABLED
#define ALADDIN_OBS_ENABLED 1
#endif

namespace aladdin::obs {

enum ModeBits : std::uint32_t {
  kMetrics = 1u << 0,  // counters / gauges / histograms / phase timers
  kTracing = 1u << 1,  // trace-event ring buffers
  kJournal = 1u << 2,  // decision provenance journal (obs/journal.h)
};

// Current mode mask (relaxed load; safe from any thread).
[[nodiscard]] std::uint32_t CurrentMode();

[[nodiscard]] inline bool MetricsEnabled() {
  return (CurrentMode() & kMetrics) != 0;
}
[[nodiscard]] inline bool TracingEnabled() {
  return (CurrentMode() & kTracing) != 0;
}
[[nodiscard]] inline bool JournalEnabled() {
#if ALADDIN_OBS_ENABLED
  return (CurrentMode() & kJournal) != 0;
#else
  return false;
#endif
}

// Arms / disarms the metrics side. Cheap; callable at any time.
void SetMetricsEnabled(bool enabled);

// The tracing bit is owned by StartTracing()/StopTracing() in obs/trace.h,
// the journal bit by StartJournal()/StopJournal() in obs/journal.h —
// internal setter shared with those modules.
namespace internal {
void SetModeBit(std::uint32_t bit, bool enabled);
}  // namespace internal

}  // namespace aladdin::obs

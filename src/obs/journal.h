// Decision provenance journal: a typed, per-tick event stream recording why
// every container ended up where it did — placements, rejections,
// migrations, preemptions and terminal give-ups, each stamped with a
// structured cause code plus the machine/arc context at decision time.
//
//   obs::StartJournal({.jsonl_path = "run.journal.jsonl"});
//   ... run the scheduler (resolver calls SetJournalTick per tick) ...
//   obs::FinishJournal();                 // drain the rings to the sink
//
// Emission sites all live in *serial* sections of the pipeline (the
// augmentation loop, repair/compaction transactions, reconcile) — parallel
// search workers never emit — so the global sequence number is assigned in
// program order and the drained stream is bit-identical for --threads 1 and
// --threads N, the same guarantee the metrics registry gives (PR 2/3).
//
// Storage reuses the per-thread ring discipline of obs/trace: fixed-size
// rings, oldest records overwritten, drops counted. With a JSONL sink
// configured the rings are drained at every tick boundary (SetJournalTick)
// so nothing wraps on long runs; without one they act as a bounded
// flight recorder, dumped to disk by a common/check failure hook so a crash
// leaves the last N decisions behind (see StartJournal).
//
// Cost when disabled: call sites guard on obs::JournalEnabled() — one
// relaxed atomic load — and ALADDIN_OBS=OFF compiles that to `false`.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/runtime.h"

namespace aladdin::obs {

// Structured cause codes. Every journal record and every
// ScheduleOutcome::unplaced_causes entry carries one of these — free-form
// cause strings in src/ are banned by tools/lint.py so the vocabulary stays
// closed and greppable.
enum class Cause : std::uint8_t {  // analyze:closed_enum
  kNone = 0,
  // Placement causes.
  kAdmittedDirect,       // admissible path found by Algorithm 1
  kAdmittedAfterRepair,  // placed by the migration/preemption repair engine
  kShortLivedBestFit,    // task-based scheduler placement (§IV.D)
  // Rejection / give-up causes (terminal diagnosis against live state).
  kCapacityExhaustedCpu,  // Eq. 6: no machine has the CPU headroom
  kCapacityExhaustedMem,  // Eq. 6: CPU-feasible machines lack memory
  kAntiAffinityIntraApp,  // Eq. 7–8: blocked by the container's own app
  kAntiAffinityInterApp,  // Eq. 7–8: blocked by conflicting applications
  kNoAdmissiblePath,      // mixed/unknown blockers (defensive fallback)
  kRepairAttemptBudget,   // repair gave up after max_attempts_per_container
  // Movement causes.
  kMigratedForRepair,     // moved aside to admit a blocked container
  kMigratedForRebalance,  // moved by the compaction pass (Fig. 7c)
  kPreemptedByPriority,   // evicted by a strictly heavier aggressor (Eq. 5)
  // Search-effort summary causes (per-Schedule aggregate events, §IV.A).
  kDepthLimitStop,
  kIsomorphismPrune,
  // External / baseline causes.
  kPodRetired,        // container retired by pod deletion / stale binding
  kBaselineUnplaced,  // non-Aladdin engine gave up (catch-all)
  // Lifecycle / SLO causes (obs/lifecycle, obs/slo). All ride on kEvent.
  kPodArrived,    // span open: container first seen pending (other = app)
  kShardRouted,   // routed to shard `other` in round `detail` (K > 1 only)
  kShardSpilled,  // re-routed to shard `other` by spill round `detail`
  kSloViolated,   // pending-age crossed the admission SLO (other = app,
                  // detail = age in ticks at the crossing)
  // Batch-incremental solve markers (ISSUE 9). Both ride on kEvent.
  kBatchScheduled,  // one request of a micro-batch solved (machine = index
                    // within the batch, detail = arrival size)
  kBatchDeferred,   // long-lived arrivals held past an off-deadline tick
                    // (k8s resolver --batch_deadline_ticks)
  // Watchdog alert lifecycle (obs/watchdog). Both ride on kEvent:
  // container = alert id, machine = AlertKind, other = subject (app for
  // flapping, shard for imbalance, -1 cluster-wide), detail = observed
  // fixed-point value at open / open duration in ticks at resolve.
  kAlertOpened,
  kAlertResolved,
  kCount
};

[[nodiscard]] const char* CauseName(Cause cause);
// Inverse of CauseName; returns kCount for unknown names.
[[nodiscard]] Cause CauseFromName(const std::string& name);

enum class DecisionKind : std::uint8_t {  // analyze:closed_enum
  kPlace = 0,  // container bound to a machine
  kReject,     // a scheduling pass could not admit the container (not final)
  kMigrate,    // container moved machine -> machine
  kPreempt,    // container evicted back to pending
  kUnplaced,   // terminal give-up for this Schedule()/Resolve()
  kEvent,      // ambient event (retirements, search-effort summaries)
  kCount
};

[[nodiscard]] const char* DecisionKindName(DecisionKind kind);

// One journal record. Ids are raw int32 values of the cluster:: id types
// (-1 = not applicable) so the record stays a flat POD the rings can copy.
struct Decision {
  std::uint64_t seq = 0;      // global emission order (deterministic)
  std::int64_t tick = 0;      // resolver tick (0 for one-shot Schedule calls)
  DecisionKind kind = DecisionKind::kEvent;
  Cause cause = Cause::kNone;
  std::int32_t container = -1;
  std::int32_t machine = -1;  // destination / rejecting machine
  std::int32_t other = -1;    // context id: source machine for migrations,
                              // aggressor container for preemptions
  std::int64_t detail = 0;    // numeric context (counts, free cpu-millis)
  std::int32_t shard = -1;    // owning shard under core::ShardedScheduler;
                              // -1 (unsharded / K=1) keeps the JSON form
                              // byte-identical to pre-sharding journals
};

struct JournalOptions {
  // Records retained per thread before the oldest are overwritten.
  std::size_t ring_capacity = 1 << 16;
  // JSONL sink; empty means flight-recorder mode (in-memory ring only).
  std::string jsonl_path;
};

// Clears the rings, opens the sink (if any), installs the check-failure
// flight-recorder hook, and arms the journal mode bit. A sink that fails
// to open is reported and dropped (flight-recorder mode); callers that
// must have the file check JournalSinkOpen() afterwards.
void StartJournal(const JournalOptions& options = {});
// True iff a JSONL sink is currently open.
[[nodiscard]] bool JournalSinkOpen();
// Disarms the bit. Buffered records stay readable until the next Start.
void StopJournal();

// Tick stamp for subsequent decisions. With a sink configured this also
// drains the rings, so per-thread buffers never wrap across ticks.
void SetJournalTick(std::int64_t tick);
[[nodiscard]] std::int64_t JournalTick();

// Appends one record (no-op unless the journal bit is armed). Must only be
// called from serial sections — the seq counter is assigned in call order
// and the bit-identity guarantee across --threads depends on it. The one
// sanctioned exception: under a ScopedDecisionCapture the record is parked
// in the capture buffer (no seq assigned) and the serial-section obligation
// moves to the EmitCapturedDecisions replay.
void EmitDecision(DecisionKind kind, Cause cause, std::int32_t container,
                  std::int32_t machine = -1, std::int32_t other = -1,
                  std::int64_t detail = 0);

// Deferred capture for parallel shard solves (core::ShardedScheduler).
//
// While a ScopedDecisionCapture is live on a thread, EmitDecision calls on
// that thread append to `sink` with no sequence number and `shard` stamped,
// instead of reaching the global rings. The coordinator later replays each
// shard's buffer in fixed shard order via EmitCapturedDecisions — which
// assigns seq/tick in call order from a serial section — so the drained
// stream is bit-identical regardless of how many worker threads ran the
// solves. Captures nest (save/restore) and are strictly per-thread.
class ScopedDecisionCapture {
 public:
  ScopedDecisionCapture(std::vector<Decision>* sink, std::int32_t shard);
  ~ScopedDecisionCapture();

  ScopedDecisionCapture(const ScopedDecisionCapture&) = delete;
  ScopedDecisionCapture& operator=(const ScopedDecisionCapture&) = delete;

 private:
  std::vector<Decision>* previous_sink_;
  std::int32_t previous_shard_;
};

// Replays records parked by ScopedDecisionCapture through the normal
// emission path, assigning seq/tick in order. Serial-section contract as
// EmitDecision; the records' shard/kind/cause/id fields pass through.
void EmitCapturedDecisions(const std::vector<Decision>& decisions);

// Everything currently buffered (sink-drained records excluded), in seq
// order. Records overwritten by ring wraparound are gone; see Dropped.
[[nodiscard]] std::vector<Decision> JournalSnapshot();
[[nodiscard]] std::uint64_t DroppedJournalDecisions();
// Records handed to EmitDecision since StartJournal (buffered + drained +
// dropped).
[[nodiscard]] std::uint64_t EmittedJournalDecisions();

// One JSONL line (no trailing newline) / its inverse for round-trip tests
// and offline tooling. FromJson returns false on malformed input.
[[nodiscard]] std::string DecisionToJson(const Decision& decision);
[[nodiscard]] bool DecisionFromJson(const std::string& line,
                                    Decision* decision);

// The current buffer serialised as JSONL (one record per line, seq order).
[[nodiscard]] std::string JournalToJsonl();

// Appends buffered records to the configured sink and clears the rings.
// No-op (true) without a sink. False on I/O failure.
bool FlushJournal();
// StopJournal + final flush + sink close. False on I/O failure.
bool FinishJournal();

}  // namespace aladdin::obs

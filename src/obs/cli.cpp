#include "obs/cli.h"

#include <cstdio>

#include "common/bench_json.h"
#include "common/flags.h"
#include "common/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace aladdin::obs {

ObsCli::ObsCli(Flags& flags, bool with_obs) {
  log_level_ = &flags.String("log-level", "info",
                             "log verbosity: debug|info|warn|error");
  if (with_obs) {
    metrics_ = &flags.Bool("metrics", false,
                           "collect the metrics registry and dump it at exit");
    trace_path_ = &flags.String(
        "trace", "", "write a Chrome/Perfetto trace-event JSON to this path");
    trace_ring_ = &flags.Int64("trace_ring",
                               static_cast<std::int64_t>(
                                   TraceOptions{}.ring_capacity),
                               "per-thread trace ring capacity (records)");
  }
}

bool ObsCli::Apply() {
  LogLevel level = LogLevel::kInfo;
  if (!ParseLogLevel(*log_level_, &level)) {
    LOG_ERROR << "unknown --log-level value \"" << *log_level_
              << "\" (want debug|info|warn|error)";
    return false;
  }
  SetLogLevel(level);
  if (metrics_ != nullptr && *metrics_) SetMetricsEnabled(true);
  if (trace_path_ != nullptr && !trace_path_->empty()) {
    TraceOptions options;
    if (*trace_ring_ > 0) {
      options.ring_capacity = static_cast<std::size_t>(*trace_ring_);
    }
    StartTracing(options);
    // Tracing needs the phase-time half of the registry armed too, so the
    // per-tick breakdown matches what the trace shows.
    SetMetricsEnabled(true);
  }
  return true;
}

bool ObsCli::Finish(BenchJson* json) {
  bool ok = true;
  if (trace_path_ != nullptr && !trace_path_->empty()) {
    StopTracing();
    if (WriteTrace(*trace_path_)) {
      LOG_INFO << "trace written to " << *trace_path_
               << " (dropped=" << DroppedTraceEvents() << ")";
    } else {
      ok = false;
    }
  }
  if (metrics_ != nullptr && *metrics_) {
    const std::string dump = FormatMetrics();
    std::fwrite(dump.data(), 1, dump.size(), stdout);
  }
  if (json != nullptr && MetricsEnabled()) ExportMetrics(*json);
  return ok;
}

const std::string& ObsCli::trace_path() const {
  static const std::string empty;
  return trace_path_ != nullptr ? *trace_path_ : empty;
}

}  // namespace aladdin::obs

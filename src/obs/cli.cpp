#include "obs/cli.h"

#include <cstdio>

#include "common/bench_json.h"
#include "common/flags.h"
#include "common/log.h"
#include "obs/export.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace aladdin::obs {

ObsCli::ObsCli(Flags& flags, bool with_obs) {
  log_level_ = &flags.String("log-level", "info",
                             "log verbosity: debug|info|warn|error");
  if (with_obs) {
    metrics_ = &flags.Bool("metrics", false,
                           "collect the metrics registry and dump it at exit");
    trace_path_ = &flags.String(
        "trace", "", "write a Chrome/Perfetto trace-event JSON to this path");
    trace_ring_ = &flags.Int64("trace_ring",
                               static_cast<std::int64_t>(
                                   TraceOptions{}.ring_capacity),
                               "per-thread trace ring capacity (records)");
    journal_path_ = &flags.String(
        "journal", "",
        "write the decision provenance journal (JSONL) to this path");
    journal_ring_ = &flags.Int64("journal_ring",
                                 static_cast<std::int64_t>(
                                     JournalOptions{}.ring_capacity),
                                 "per-thread journal ring capacity (records)");
    timeseries_path_ = &flags.String(
        "timeseries", "",
        "write per-tick time-series snapshots (.csv or .jsonl) to this path");
    watchdog_ = &flags.Bool(
        "watchdog", false,
        "run the cluster health watchdog (typed alerts on /alertz, in the "
        "journal and the aladdin_alerts_* metrics)");
    prom_path_ = &flags.String(
        "prom", "",
        "write a Prometheus text-format metrics snapshot to this path at exit");
    prom_port_ = &flags.Int64(
        "prom_port", 0,
        "serve live Prometheus metrics on 127.0.0.1:<port> (0 = off)");
  }
}

ObsCli::~ObsCli() = default;

bool ObsCli::Apply() {
  LogLevel level = LogLevel::kInfo;
  if (!ParseLogLevel(*log_level_, &level)) {
    LOG_ERROR << "unknown --log-level value \"" << *log_level_
              << "\" (want debug|info|warn|error)";
    return false;
  }
  SetLogLevel(level);
  if (metrics_ != nullptr && *metrics_) SetMetricsEnabled(true);
  if (trace_path_ != nullptr && !trace_path_->empty()) {
    TraceOptions options;
    if (*trace_ring_ > 0) {
      options.ring_capacity = static_cast<std::size_t>(*trace_ring_);
    }
    StartTracing(options);
    // Tracing needs the phase-time half of the registry armed too, so the
    // per-tick breakdown matches what the trace shows.
    SetMetricsEnabled(true);
  }
  if (journal_path_ != nullptr && !journal_path_->empty()) {
    JournalOptions options;
    if (*journal_ring_ > 0) {
      options.ring_capacity = static_cast<std::size_t>(*journal_ring_);
    }
    options.jsonl_path = *journal_path_;
    StartJournal(options);
    if (!JournalSinkOpen()) {  // StartJournal already logged the error
      StopJournal();
      return false;
    }
  }
  const bool prom_file = prom_path_ != nullptr && !prom_path_->empty();
  const bool prom_live = prom_port_ != nullptr && *prom_port_ > 0;
  if (prom_file || prom_live) {
    // Prometheus output is a view of the registry; arm it.
    SetMetricsEnabled(true);
  }
  if (prom_live) {
    listener_ = std::make_unique<PrometheusListener>();
    if (!listener_->Start(static_cast<std::uint16_t>(*prom_port_))) {
      listener_.reset();
      return false;
    }
  }
  return true;
}

bool ObsCli::Finish(BenchJson* json) {
  bool ok = true;
  if (trace_path_ != nullptr && !trace_path_->empty()) {
    StopTracing();
    if (WriteTrace(*trace_path_)) {
      LOG_INFO << "trace written to " << *trace_path_
               << " (dropped=" << DroppedTraceEvents() << ")";
    } else {
      ok = false;
    }
  }
  if (journal_path_ != nullptr && !journal_path_->empty()) {
    const std::uint64_t emitted = EmittedJournalDecisions();
    const std::uint64_t dropped = DroppedJournalDecisions();
    if (FinishJournal()) {
      LOG_INFO << "journal written to " << *journal_path_
               << " (records=" << emitted << " dropped=" << dropped << ")";
    } else {
      ok = false;
    }
  }
  if (listener_ != nullptr) {
    listener_->Stop();
    listener_.reset();
  }
  if (prom_path_ != nullptr && !prom_path_->empty()) {
    if (WritePrometheusFile(*prom_path_)) {
      LOG_INFO << "prometheus snapshot written to " << *prom_path_;
    } else {
      ok = false;
    }
  }
  if (metrics_ != nullptr && *metrics_) {
    const std::string dump = FormatMetrics();
    std::fwrite(dump.data(), 1, dump.size(), stdout);
  }
  if (json != nullptr && MetricsEnabled()) ExportMetrics(*json);
  return ok;
}

const std::string& ObsCli::trace_path() const {
  static const std::string empty;
  return trace_path_ != nullptr ? *trace_path_ : empty;
}

const std::string& ObsCli::journal_path() const {
  static const std::string empty;
  return journal_path_ != nullptr ? *journal_path_ : empty;
}

const std::string& ObsCli::timeseries_path() const {
  static const std::string empty;
  return timeseries_path_ != nullptr ? *timeseries_path_ : empty;
}

}  // namespace aladdin::obs

#include "core/migration.h"

#include <algorithm>

#include "obs/journal.h"
#include "obs/trace.h"

namespace aladdin::core {

namespace {
template <typename T>
std::size_t Idx(T id) {
  return static_cast<std::size_t>(id.value());
}
}  // namespace

RepairEngine::RepairEngine(AggregatedNetwork& network,
                           const PriorityWeights& weights,
                           const RepairOptions& options, Scratch* scratch)
    : network_(network),
      weights_(weights),
      options_(options),
      scratch_(scratch != nullptr ? *scratch : owned_scratch_) {}

int& RepairEngine::AttemptCount(cluster::ContainerId c) {
  const auto i = static_cast<std::size_t>(c.value());
  if (i >= scratch_.attempt_stamp.size()) {
    // analyze:allow(A103) high-water growth, amortised over the workload
    scratch_.attempt_stamp.resize(i + 1, 0);
    scratch_.attempt_count.resize(i + 1, 0);  // analyze:allow(A103) high-water growth
  }
  if (scratch_.attempt_stamp[i] != scratch_.attempt_epoch) {
    scratch_.attempt_stamp[i] = scratch_.attempt_epoch;
    scratch_.attempt_count[i] = 0;
  }
  return scratch_.attempt_count[i];
}

bool RepairEngine::RepairOnMachine(cluster::ContainerId c,
                                   cluster::MachineId m,
                                   const SearchOptions& search,
                                   SearchCounters& counters,
                                   std::vector<cluster::ContainerId>& requeue) {
  cluster::ClusterState& state = *network_.state();
  const cluster::Container& cont = state.containers()[Idx(c)];
  const std::int64_t c_flow = weights_.WeightedFlow(cont);

  // Blockers that must leave: anti-affinity conflicts with c's application.
  // All four buffers below are per-tick scratch (cleared here, capacity
  // retained across calls); `requeue` alone belongs to the caller.
  std::vector<cluster::ContainerId>& victims = scratch_.victims;
  victims.clear();
  for (cluster::ContainerId v : state.DeployedOn(m)) {
    const auto& vc = state.containers()[Idx(v)];
    if (state.constraints().Conflicts(cont.app, vc.app)) victims.push_back(v);
  }
  if (victims.size() > static_cast<std::size_t>(options_.max_victims)) {
    return false;
  }

  // Filler victims to cover the resource deficit, cheapest weighted flow
  // first (those are the legal preemption targets if no alternative exists).
  cluster::ResourceVector available = state.Free(m);
  for (cluster::ContainerId v : victims) {
    available += state.containers()[Idx(v)].request;
  }
  if (!cont.request.FitsIn(available)) {
    std::vector<cluster::ContainerId>& fillers = scratch_.fillers;
    fillers.clear();
    for (cluster::ContainerId v : state.DeployedOn(m)) {
      if (std::find(victims.begin(), victims.end(), v) == victims.end()) {
        fillers.push_back(v);
      }
    }
    std::sort(fillers.begin(), fillers.end(),
              [&](cluster::ContainerId a, cluster::ContainerId b) {
                return weights_.WeightedFlow(state.containers()[Idx(a)]) <
                       weights_.WeightedFlow(state.containers()[Idx(b)]);
              });
    for (cluster::ContainerId v : fillers) {
      if (cont.request.FitsIn(available)) break;
      if (victims.size() >= static_cast<std::size_t>(options_.max_victims)) {
        return false;
      }
      victims.push_back(v);
      available += state.containers()[Idx(v)].request;
    }
    if (!cont.request.FitsIn(available)) return false;
  }

  // --- Transaction: evict victims, place c, relocate victims. -----------
  for (cluster::ContainerId v : victims) network_.Evict(v);

  auto rollback = [&](const std::vector<
                          std::pair<cluster::ContainerId, cluster::MachineId>>&
                          moved,
                      bool c_deployed) {
    for (const auto& [v, m2] : moved) {
      (void)m2;
      network_.Evict(v);
    }
    if (c_deployed) network_.Evict(c);
    for (cluster::ContainerId v : victims) network_.Deploy(v, m);
  };

  // Victims covered both the resource deficit and every conflicting tenant,
  // so this holds unless the capacity function changed under us.
  if (!state.CanPlace(c, m)) {
    rollback({}, false);
    return false;
  }
  network_.Deploy(c, m);

  // Relocate victims, highest weighted flow first (they get first pick of
  // alternative machines — migration must not degrade high-priority work).
  std::sort(victims.begin(), victims.end(),
            [&](cluster::ContainerId a, cluster::ContainerId b) {
              return weights_.WeightedFlow(state.containers()[Idx(a)]) >
                     weights_.WeightedFlow(state.containers()[Idx(b)]);
            });
  std::vector<std::pair<cluster::ContainerId, cluster::MachineId>>& moved =
      scratch_.moved;
  moved.clear();
  std::vector<cluster::ContainerId>& preempted = scratch_.preempted;
  preempted.clear();
  std::int64_t preempted_flow = 0;
  for (cluster::ContainerId v : victims) {
    cluster::MachineId m2;
    if (options_.allow_migration) {
      m2 = network_.FindMachine(v, search, counters, /*exclude=*/m);
    }
    if (m2.valid()) {
      network_.Deploy(v, m2);  // migration, counted on commit
      moved.emplace_back(v, m2);
      continue;
    }
    const std::int64_t v_flow =
        weights_.WeightedFlow(state.containers()[Idx(v)]);
    // Priority safety (each victim strictly below c) AND Eq. 9
    // monotonicity: the transaction must not displace more weighted flow
    // than it admits, or the "repair" would shrink the objective the
    // network maximises.
    if (options_.allow_preemption && v_flow < c_flow &&
        preempted_flow + v_flow < c_flow) {
      preempted.push_back(v);
      preempted_flow += v_flow;
      continue;
    }
    rollback(moved, /*c_deployed=*/true);
    return false;
  }

  state.RecordMigrations(static_cast<std::int64_t>(moved.size()));
  state.RecordPreemptions(static_cast<std::int64_t>(preempted.size()));
  ALADDIN_METRIC_ADD("core/migrations", moved.size());
  ALADDIN_METRIC_ADD("core/preemptions", preempted.size());
  if (obs::JournalEnabled()) {
    // Emitted only on commit, so rolled-back transactions leave no trace —
    // the journal records what happened, not what was attempted.
    obs::EmitDecision(obs::DecisionKind::kPlace,
                      obs::Cause::kAdmittedAfterRepair, c.value(), m.value());
    for (const auto& [v, m2] : moved) {
      obs::EmitDecision(obs::DecisionKind::kMigrate,
                        obs::Cause::kMigratedForRepair, v.value(), m2.value(),
                        /*other=*/m.value());
    }
    for (cluster::ContainerId v : preempted) {
      obs::EmitDecision(obs::DecisionKind::kPreempt,
                        obs::Cause::kPreemptedByPriority, v.value(), m.value(),
                        /*other=*/c.value());
    }
  }
  requeue.insert(requeue.end(), preempted.begin(), preempted.end());
  return true;
}

bool RepairEngine::TryPlace(cluster::ContainerId c,
                            const SearchOptions& search,
                            SearchCounters& counters,
                            std::vector<cluster::ContainerId>& requeue) {
  const cluster::MachineId direct =
      network_.FindMachine(c, search, counters);
  if (direct.valid()) {
    network_.Deploy(c, direct);
    if (obs::JournalEnabled()) {
      obs::EmitDecision(obs::DecisionKind::kPlace,
                        obs::Cause::kAdmittedAfterRepair, c.value(),
                        direct.value());
    }
    return true;
  }
  if (!options_.allow_migration && !options_.allow_preemption) return false;

  // Two-tier scan, emptiest machines first. Tier 1 spends the main budget
  // on machines whose conflicting tenants all have strictly lower weighted
  // flow than c — those blockers are preemptable as a last resort, so the
  // repair usually lands. Machines pinned by an equal-or-higher-weight
  // blocker are deferred to a smaller tier-2 budget: such a blocker can
  // still *migrate* (Fig. 3b — migration is priority-blind because nobody
  // loses a placement), but when it cannot, the attempt is expensive and
  // hopeless, so we bound how many of those we try.
  const cluster::ClusterState& state = *network_.state();
  const cluster::Container& cont = state.containers()[Idx(c)];
  const std::int64_t c_flow = weights_.WeightedFlow(cont);
  auto has_heavy_blocker = [&](cluster::MachineId m) {
    for (cluster::ContainerId v : state.DeployedOn(m)) {
      const auto& vc = state.containers()[Idx(v)];
      if (weights_.WeightedFlow(vc) >= c_flow &&
          state.constraints().Conflicts(cont.app, vc.app)) {
        return true;
      }
    }
    return false;
  };
  bool placed = false;
  int budget = options_.candidate_machines;
  network_.ScanDescending(
      static_cast<int>(state.topology().machine_count()),
      [&](cluster::MachineId m) {
        if (budget <= 0) return true;
        if (has_heavy_blocker(m)) return false;  // tier 2 handles these
        --budget;
        placed = RepairOnMachine(c, m, search, counters, requeue);
        return placed;
      });
  if (placed) return true;
  int heavy_budget = std::max(4, options_.candidate_machines / 4);
  network_.ScanDescending(
      static_cast<int>(state.topology().machine_count()),
      [&](cluster::MachineId m) {
        if (heavy_budget <= 0) return true;
        if (!has_heavy_blocker(m)) return false;  // tier 1 already tried
        --heavy_budget;
        placed = RepairOnMachine(c, m, search, counters, requeue);
        return placed;
      });
  return placed;
}

std::vector<cluster::ContainerId> RepairEngine::Repair(
    std::vector<cluster::ContainerId> pending, const SearchOptions& search,
    SearchCounters& counters) {
  cluster::ClusterState& state = *network_.state();
  // Highest weighted flow first (Eq. 9: those flows contribute most).
  std::sort(pending.begin(), pending.end(),
            [&](cluster::ContainerId a, cluster::ContainerId b) {
              const auto wa = weights_.WeightedFlow(state.containers()[Idx(a)]);
              const auto wb = weights_.WeightedFlow(state.containers()[Idx(b)]);
              if (wa != wb) return wa > wb;
              return a < b;
            });

  // FIFO over scratch: head cursor instead of deque pops (total pushes are
  // bounded, see Scratch::queue). The moved-in `pending` buffer is recycled
  // as the unplaced output, so a steady-state Repair() allocates nothing.
  std::vector<cluster::ContainerId>& queue = scratch_.queue;
  // analyze:allow(A103) pooled scratch, capacity retained across ticks
  queue.assign(pending.begin(), pending.end());
  std::size_t head = 0;
  pending.clear();  // reused below as the unplaced list
  if (++scratch_.attempt_epoch == 0) {  // u32 wrap: invalidate stale stamps
    std::fill(scratch_.attempt_stamp.begin(), scratch_.attempt_stamp.end(),
              0U);
    scratch_.attempt_epoch = 1;
  }
  while (head < queue.size()) {
    const cluster::ContainerId c = queue[head++];
    if (AttemptCount(c)++ >= options_.max_attempts_per_container) {
      if (obs::JournalEnabled()) {
        obs::EmitDecision(obs::DecisionKind::kReject,
                          obs::Cause::kRepairAttemptBudget, c.value(), -1, -1,
                          options_.max_attempts_per_container);
      }
      pending.push_back(c);
      continue;
    }
    scratch_.requeue.clear();
    if (TryPlace(c, search, counters, scratch_.requeue)) {
      // Preempted victims re-enter the queue; their weighted flow is
      // strictly below c's, so preemption chains terminate.
      for (cluster::ContainerId v : scratch_.requeue) queue.push_back(v);
    } else {
      pending.push_back(c);
    }
  }
  return pending;
}

int RepairEngine::Compact(const SearchOptions& search,
                          SearchCounters& counters, int max_passes,
                          std::int64_t migration_budget) {
  cluster::ClusterState& state = *network_.state();
  int freed_total = 0;
  for (int pass = 0; pass < max_passes; ++pass) {
    // Snapshot used machines, least-loaded first — cheapest to drain.
    std::vector<std::pair<std::int64_t, cluster::MachineId>>& used =
        scratch_.used;
    used.clear();
    for (const auto& machine : state.topology().machines()) {
      const auto tenants = state.DeployedOn(machine.id);
      if (tenants.empty()) continue;
      const std::int64_t used_cpu =
          machine.capacity.cpu_millis() - state.Free(machine.id).cpu_millis();
      used.emplace_back(used_cpu, machine.id);
    }
    std::sort(used.begin(), used.end());

    int freed_this_pass = 0;
    for (const auto& [used_cpu, m] : used) {
      (void)used_cpu;
      if (migration_budget <= 0) return freed_total;
      const auto tenants_span = state.DeployedOn(m);
      if (tenants_span.empty()) continue;  // drained by an earlier move
      if (tenants_span.size() >
          static_cast<std::size_t>(options_.max_victims) * 2) {
        continue;  // too expensive to drain
      }
      if (static_cast<std::int64_t>(tenants_span.size()) > migration_budget) {
        continue;
      }
      std::vector<cluster::ContainerId>& tenants = scratch_.tenants;
      // analyze:allow(A103) pooled scratch, capacity retained across ticks
      tenants.assign(tenants_span.begin(), tenants_span.end());
      std::sort(tenants.begin(), tenants.end(),
                [&](cluster::ContainerId a, cluster::ContainerId b) {
                  return weights_.WeightedFlow(state.containers()[Idx(a)]) >
                         weights_.WeightedFlow(state.containers()[Idx(b)]);
                });
      std::vector<std::pair<cluster::ContainerId, cluster::MachineId>>&
          moved = scratch_.moved;
      moved.clear();
      bool ok = true;
      for (cluster::ContainerId v : tenants) {
        network_.Evict(v);
        const cluster::MachineId m2 =
            network_.FindMachine(v, search, counters, /*exclude=*/m);
        // Moving into an empty machine trades one used machine for another;
        // only accept destinations that are already in use.
        if (m2.valid() && !state.DeployedOn(m2).empty()) {
          network_.Deploy(v, m2);
          moved.emplace_back(v, m2);
        } else {
          ok = false;
          network_.Deploy(v, m);  // put the failed tenant back first
          break;
        }
      }
      if (!ok) {
        for (auto it = moved.rbegin(); it != moved.rend(); ++it) {
          network_.Evict(it->first);
          network_.Deploy(it->first, m);
        }
        continue;
      }
      state.RecordMigrations(static_cast<std::int64_t>(moved.size()));
      ALADDIN_METRIC_ADD("core/migrations", moved.size());
      if (obs::JournalEnabled()) {
        for (const auto& [v, m2] : moved) {
          obs::EmitDecision(obs::DecisionKind::kMigrate,
                            obs::Cause::kMigratedForRebalance, v.value(),
                            m2.value(), /*other=*/m.value());
        }
      }
      migration_budget -= static_cast<std::int64_t>(moved.size());
      ++freed_this_pass;
    }
    freed_total += freed_this_pass;
    if (freed_this_pass == 0) break;
  }
  return freed_total;
}

}  // namespace aladdin::core

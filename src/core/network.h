// Aladdin's aggregated scheduling network (§III.A, Fig. 4) and the
// shortest-path search over it (Algorithm 1).
//
// The network is s → T_i → A_j → G_k → R_x → N_y → t: containers feed their
// application vertex, applications fan out over (sub-)cluster and rack
// aggregation vertices to machines. The aggregation levels exist to cut the
// edge count from O(|T|·|N|) to O(|T| + |A|·|R| + |N|); operationally they
// carry *aggregate residual capacity* (the max free machine beneath them),
// letting a path search skip an entire rack or sub-cluster whose best
// machine cannot admit the container.
//
// "Shortest path" distance is remaining free CPU after placement — i.e. the
// search returns the tightest admissible machine (best-fit), which is what
// minimises used machines (Eq. 9 via §IV's objective discussion).
//
// The two latency optimisations of §IV.A are implemented here:
//  * Isomorphism limiting (IL): containers of one application are identical,
//    so a failed (application, machine) probe is memoised against the
//    machine's change-epoch and siblings skip the probe while the machine
//    is unchanged.
//  * Depth limiting (DL): a container's s→T_i edge saturates after one
//    placement, so the search stops at the *first* admissible machine in
//    best-fit order instead of enumerating all alternatives.
#pragma once

#include <cstdint>
#include <set>
#include <span>
#include <vector>

#include "cluster/state.h"
#include "common/thread_pool.h"
#include "core/capacity.h"
#include "obs/journal.h"

namespace aladdin::core {

struct SearchOptions {
  bool enable_il = true;
  bool enable_dl = true;

  // Optional worker pool for fanning candidate scoring out (§IV.A's path
  // probes are independent reads of the cluster state). Null or a pool with
  // one worker means serial search. The parallel traversals are
  // deterministic: candidates are gathered in the serial visit order,
  // scored concurrently, and reduced in that fixed order — results and
  // SearchCounters are bit-identical to the serial walk for any pool size.
  ThreadPool* pool = nullptr;
};

struct SearchCounters {
  std::int64_t explored_paths = 0;  // machine (and aggregate) probes
  std::int64_t il_prunes = 0;
  std::int64_t dl_stops = 0;

  void Reset() { *this = SearchCounters{}; }
};

class AggregatedNetwork {
 public:
  explicit AggregatedNetwork(const cluster::Topology& topology);

  // Binds to (and rebuilds indices from) a cluster state. All subsequent
  // Deploy/Evict for that state must go through this object so aggregates
  // stay coherent — or, for mutations applied to the state directly by
  // other actors, be replayed later via Sync() (Attach enables the state's
  // machine dirty log for exactly that purpose).
  void Attach(cluster::ClusterState* state);

  // Incremental re-attach (§IV.A taken across Schedule() calls): replays
  // the state's machine dirty log from this network's cursor, reindexing
  // only machines whose residual capacity may have changed since the last
  // Attach()/Sync() — O(changes · log M) instead of the O(M log M) rebuild.
  // Falls back to a full Attach() when the log overflowed. Requires a prior
  // Attach() to the same state. Replayed machines get a fresh change epoch,
  // so memoised IL failures for them are naturally invalidated.
  void Sync();

  // Batch-refresh alias (ROADMAP item 4 / ISSUE 9 vocabulary): apply all of
  // a micro-batch's accumulated arrivals/departures in one replay of the
  // dirty log. Identical to Sync(); the name marks batch call sites.
  void Refresh() { Sync(); }

  // Algorithm 1's getShortestPath for one container: returns the tightest
  // machine admitted by the capacity function, or Invalid. The same machine
  // is returned for every option combination; options only change how much
  // of the network is explored (counted in `counters`).
  // `exclude` (optional) removes one machine from consideration — the
  // repair engine uses it to find an *alternative* machine for a victim.
  cluster::MachineId FindMachine(
      cluster::ContainerId c, const SearchOptions& options,
      SearchCounters& counters,
      cluster::MachineId exclude = cluster::MachineId::Invalid());

  // Group-decomposed placement (ISSUE 9 tentpole): places a *run* of
  // isomorphic siblings — same application, identical request tuple, all
  // currently unplaced — in one sorted-capacity waterfall over flat arrays
  // instead of `run.size()` independent best-fit walks over the by_free_
  // tree. Requires enable_dl (the waterfall IS the first-admissible walk)
  // and run.size() >= 2; callers route other cases through FindMachine.
  //
  // The walk replays the serial per-sibling search *exactly*: machines are
  // considered in the same (free cpu, machine) order each sibling would see,
  // Eq. 6 fit bits are batch-evaluated once per frozen snapshot chunk (the
  // tuple is shared by the whole run), blacklist probes stay live (self-
  // anti-affinity flips mid-run), and IL memo reads/writes land exactly
  // where the serial walk would put them. Deploys happen inside (epoch
  // bumped eagerly, by_free_ re-key deferred to one flush at the end), so
  // placements, SearchCounters, IL memo contents and machine epochs are all
  // bit-identical to calling FindMachine+Deploy per sibling. out[i] gets
  // the machine for run[i] (Invalid = unplaced; failures are a suffix).
  // Returns the number placed.
  std::size_t PlaceGroupRun(std::span<const cluster::ContainerId> run,
                            const SearchOptions& options,
                            SearchCounters& counters,
                            std::span<cluster::MachineId> out);

  // Terminal failure diagnosis for the provenance journal: explains,
  // against the current state, why no admissible path exists for `c`.
  // Classifies every CPU-feasible machine as memory-blocked or
  // anti-affinity-blocked (intra- vs inter-application via the constraint
  // set) and returns the dominant cause; kCapacityExhaustedCpu when not
  // even the emptiest machine has the CPU headroom. Read-only: touches
  // neither SearchCounters nor any registry metric, so perf-gated counter
  // identities are unaffected. Cost is O(CPU-feasible machines), paid only
  // per unplaced container. kNoAdmissiblePath is the defensive fallback
  // (e.g. the state changed between the failed search and the diagnosis).
  [[nodiscard]] obs::Cause DiagnoseFailure(cluster::ContainerId c) const;

  // State mutations, mirrored into the aggregate indices.
  void Deploy(cluster::ContainerId c, cluster::MachineId m);
  void Evict(cluster::ContainerId c);
  void Migrate(cluster::ContainerId c, cluster::MachineId to);
  void Preempt(cluster::ContainerId c);

  // Repair-engine scan: visit machines in descending-free-CPU order (most
  // headroom first) until `fn` returns true or `limit` machines seen.
  // Templated on the callable so repair's capturing lambdas bind directly —
  // a std::function here would heap-allocate per scan on the hot path.
  template <typename Fn>
  void ScanDescending(int limit, Fn&& fn) const {
    int seen = 0;
    for (auto it = by_free_.rbegin(); it != by_free_.rend() && seen < limit;
         ++it, ++seen) {
      if (fn(cluster::MachineId(it->second))) return;
    }
  }

  // Ascending-free (best-fit) scan from the first machine with free CPU >=
  // `min_free_cpu`.
  template <typename Fn>
  void ScanAscending(std::int64_t min_free_cpu, int limit, Fn&& fn) const {
    int seen = 0;
    for (auto it = by_free_.lower_bound({min_free_cpu, -1});
         it != by_free_.end() && seen < limit; ++it, ++seen) {
      if (fn(cluster::MachineId(it->second))) return;
    }
  }

  [[nodiscard]] cluster::ClusterState* state() { return state_; }
  [[nodiscard]] std::uint32_t MachineEpoch(cluster::MachineId m) const {
    return epoch_[static_cast<std::size_t>(m.value())];
  }

 private:
  using Key = std::pair<std::int64_t, std::int32_t>;  // (free cpu, machine)

  void Reindex(cluster::MachineId m);
  // The key-only half of Reindex: re-keys by_free_ / rack / sub-cluster
  // aggregates to the machine's live free CPU *without* bumping its change
  // epoch. Early-outs when the key already matches, so a deferred flush may
  // call it once per deploy of the same machine. PlaceGroupRun pairs it
  // with DeployKeyDeferred, which bumps the epoch at deploy time (matching
  // the serial wrapper) but leaves the sorted keys frozen for the walk.
  void ReindexKeys(cluster::MachineId m);
  void DeployKeyDeferred(cluster::ContainerId c, cluster::MachineId m);
  [[nodiscard]] std::int64_t FreeCpu(cluster::MachineId m) const;

  // Full enumeration through the aggregation vertices (plain / +IL modes).
  cluster::MachineId FindByEnumeration(cluster::ContainerId c,
                                       const SearchOptions& options,
                                       SearchCounters& counters,
                                       cluster::MachineId exclude);
  // Sorted best-fit walk with first-hit termination (+DL mode).
  cluster::MachineId FindByBestFitWalk(cluster::ContainerId c,
                                       const SearchOptions& options,
                                       SearchCounters& counters,
                                       cluster::MachineId exclude);
  // Pool-backed variants; bit-identical results and counters to the serial
  // traversals above (fixed gather/reduction order, not first-finisher).
  cluster::MachineId EnumerateParallel(cluster::ContainerId c,
                                       const SearchOptions& options,
                                       SearchCounters& counters,
                                       cluster::MachineId exclude);
  cluster::MachineId BestFitWalkParallel(cluster::ContainerId c,
                                         const SearchOptions& options,
                                         SearchCounters& counters,
                                         cluster::MachineId exclude);

  // Per-call scratch for the pool-backed walks, hoisted to members so a
  // steady-state search allocates nothing (capacities persist across
  // Schedule() ticks). Written only by the calling thread; ParallelFor
  // workers touch disjoint admitted_/result slots.
  struct WalkItem {
    std::int32_t machine;
    bool pruned;  // IL-pruned at gather time (not scored)
  };
  struct SubResult {
    std::int64_t explored = 0;
    std::int64_t il_prunes = 0;
    std::int32_t best = -1;
    std::int64_t best_free = 0;
    std::vector<std::int32_t> il_failures;  // blacklisted probes, walk order

    void Clear() {
      explored = 0;
      il_prunes = 0;
      best = -1;
      best_free = 0;
      il_failures.clear();  // keeps capacity
    }
  };
  std::vector<WalkItem> walk_items_;
  std::vector<std::size_t> walk_eval_;
  std::vector<std::uint8_t> walk_admitted_;
  std::vector<SubResult> enum_results_;

  // Group-waterfall scratch (PlaceGroupRun), hoisted so steady-state runs
  // allocate nothing. The snapshot is the frozen (free, machine) prefix of
  // by_free_ materialised lazily in chunks; `touched` holds winners
  // re-inserted at their live keys; `moved` collects machines whose by_free_
  // re-key is deferred to the end-of-run flush.
  struct GroupEntry {
    std::int64_t free;
    std::int32_t machine;
    std::uint8_t state;  // kGroupFresh / kGroupFailed / kGroupMoved
    std::uint8_t fit;    // Eq. 6 bit, batch-evaluated (snapshot entries)
  };
  static constexpr std::uint8_t kGroupFresh = 0;
  static constexpr std::uint8_t kGroupFailed = 1;
  static constexpr std::uint8_t kGroupMoved = 2;
  std::vector<GroupEntry> group_snapshot_;
  std::vector<GroupEntry> group_touched_;
  std::vector<GroupEntry> group_prefix_failed_;
  std::vector<std::int32_t> group_moved_;
  std::vector<std::int32_t> group_chunk_machines_;
  std::vector<std::uint8_t> group_chunk_fits_;

  // IL memo: (app, machine) -> machine epoch at failure. A probe is skipped
  // while the machine has not changed since the recorded failure. Only
  // *blacklist* failures are memoised: a resource-fit failure is two integer
  // compares — cheaper than any lookup — while a blacklist probe walks the
  // machine's tenant list, which is exactly the cost isomorphic siblings
  // should not pay twice.
  [[nodiscard]] bool IlPruned(cluster::ApplicationId app,
                              cluster::MachineId m) const;
  void RecordIlFailure(cluster::ApplicationId app, cluster::MachineId m);

  const cluster::Topology* topology_;
  cluster::ClusterState* state_ = nullptr;

  std::set<Key> by_free_;                     // N_y → t residuals, sorted
  std::vector<std::int64_t> indexed_free_;    // key currently in by_free_
  std::vector<std::uint32_t> epoch_;          // per-machine change counter
  // Aggregate residuals for the R_x and G_k vertices.
  std::vector<std::multiset<std::int64_t>> rack_free_;        // per rack
  std::vector<std::multiset<std::int64_t>> subcluster_free_;  // rack maxima
  std::vector<std::int64_t> rack_max_;  // cached current max per rack

  // Per-app memo arrays, lazily sized to machine_count on the app's first
  // recorded failure: entry = machine epoch at failure + 1, 0 = no memo.
  // A direct indexed load replaces the previous bitset + hash-map pair —
  // the memo probe sits inside every search's inner loop, and hashing plus
  // bucket chasing dominated it. 4 bytes/machine is only paid by apps that
  // actually record a blacklist failure. An epoch wrap at most *loses* a
  // memo entry (stored 0 means unset) — it never fabricates a prune beyond
  // the exact-equality collision the hash map already had.
  mutable std::vector<std::vector<std::uint32_t>> il_memo_;

  // Absolute cursor into state_'s machine dirty log: everything before it
  // has been reindexed here. The network's own mutation wrappers Reindex
  // eagerly and advance the cursor past their self-inflicted entries.
  std::uint64_t dirty_cursor_ = 0;
};

}  // namespace aladdin::core
